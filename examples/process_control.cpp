// Process-control scenario: a plant floor with many sensors of mixed
// criticality, demonstrating
//   - admission control as QoS negotiation: rejected registrations retry
//     with relaxed temporal constraints (paper section 4.2's "negotiate for
//     an alternative quality of service"),
//   - a loss storm mid-run (network congestion),
//   - primary crash, failover, and recruitment of a fresh backup while
//     sensing continues.
//
//   ./build/examples/example_process_control
#include <cstdio>
#include <vector>

#include "core/rtpb.hpp"

using namespace rtpb;

namespace {

core::ObjectSpec sensor(core::ObjectId id, Duration period, Duration exec, Duration delta_p,
                        Duration delta_b) {
  core::ObjectSpec s;
  s.id = id;
  s.name = "sensor-" + std::to_string(id);
  s.size_bytes = 128;
  s.client_period = period;
  s.client_exec = exec;
  s.update_exec = micros(300);
  s.delta_primary = delta_p;
  s.delta_backup = delta_b;
  return s;
}

}  // namespace

int main() {
  core::ServiceParams params;
  params.seed = 7;
  params.link.propagation = millis(1);
  params.link.jitter = millis(1);
  core::RtpbService service(params);
  service.start();

  std::printf("=== process-control plant over RTPB ===\n\n");

  // Register 60 sensors.  The demanding specs saturate the primary's CPU
  // partway through; rejected sensors take the admission controller's own
  // counter-offer (paper §4.2's QoS negotiation feedback) and retry.
  std::size_t admitted_first_try = 0, admitted_after_negotiation = 0, refused = 0;
  for (core::ObjectId id = 1; id <= 60; ++id) {
    core::ObjectSpec want = sensor(id, millis(10), millis(1), millis(20), millis(80));
    auto result = service.register_object(want);
    if (result.ok()) {
      ++admitted_first_try;
      continue;
    }
    if (result.error().suggestion.has_value()) {
      result = service.register_object(*result.error().suggestion);
    }
    if (result.ok()) {
      ++admitted_after_negotiation;
    } else {
      ++refused;
    }
  }
  std::printf("admission: %zu at requested QoS, %zu after negotiation, %zu refused\n",
              admitted_first_try, admitted_after_negotiation, refused);
  std::printf("primary CPU utilisation admitted: %.2f\n\n",
              service.primary().admission().total_utilization());

  service.warm_up(seconds(1));

  // Phase 1: healthy plant.
  service.run_for(seconds(10));
  std::printf("phase 1 (healthy 10s): avg max distance %.3f ms, violations %llu\n",
              service.metrics().average_max_distance_ms(),
              static_cast<unsigned long long>(service.metrics().inconsistency_intervals()));

  // Phase 2: congestion — 20% genuine link loss for 10 s.  Heartbeats are
  // tuned to ride through it.
  service.network().set_loss_probability(service.primary().node(), service.backup().node(), 0.2);
  service.run_for(seconds(10));
  service.network().set_loss_probability(service.primary().node(), service.backup().node(), 0.0);
  std::printf("phase 2 (20%% loss 10s) : avg max distance %.3f ms, violations %llu, NACKs %llu\n",
              service.metrics().average_max_distance_ms(),
              static_cast<unsigned long long>(service.metrics().inconsistency_intervals()),
              static_cast<unsigned long long>(service.backup().retransmit_requests_sent()));

  // Phase 3: the primary host dies.
  const TimePoint crash_at = service.simulator().now();
  service.crash_primary();
  service.run_for(seconds(2));
  std::printf("phase 3 (failover)     : backup promoted %.1f ms after crash; role=%s\n",
              (service.backup().promoted_at() - crash_at).millis(),
              core::role_name(service.backup().role()));
  std::printf("                         backup client sensing %zu objects\n",
              service.backup_client().sensing_tasks());

  // Phase 4: recruit a standby and confirm replication resumes.
  core::ReplicaServer& standby = service.add_standby();
  service.run_for(seconds(5));
  std::printf("phase 4 (recruit)      : standby node%u holds %zu/%zu objects\n",
              standby.node(), standby.store().size(), service.backup().store().size());
  const auto v_then = standby.read(1);
  service.run_for(seconds(5));
  const auto v_now = standby.read(1);
  std::printf("                         object 1 on standby: v%llu -> v%llu (stream live)\n",
              v_then ? static_cast<unsigned long long>(v_then->version) : 0ULL,
              v_now ? static_cast<unsigned long long>(v_now->version) : 0ULL);

  service.finish();
  std::printf("\ntotals: %llu client writes, %llu updates applied across backups\n",
              static_cast<unsigned long long>(service.client().writes_issued() +
                                              service.backup_client().writes_issued()),
              static_cast<unsigned long long>(service.backup().updates_applied() +
                                              standby.updates_applied()));
  return 0;
}
