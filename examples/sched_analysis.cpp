// Scheduling-analysis walk-through: exercises the sched library on its own
// — schedulability tests, DCS pinwheel specialisation, analytic
// phase-variance bounds (Theorem 2), and measured phase variance on the
// simulated CPU under EDF, RM and DCS-S_r.  This is the paper's section 2
// in executable form.
//
//   ./build/examples/example_sched_analysis
#include <cstdio>

#include "sched/analysis.hpp"
#include "sched/cpu.hpp"
#include "sched/gantt.hpp"
#include "sched/theory.hpp"
#include "sim/simulator.hpp"

using namespace rtpb;
using namespace rtpb::sched;

int main() {
  // A task set updating four replicated objects.
  TaskSet set;
  auto add = [&set](const char* name, Duration p, Duration e) {
    TaskSpec t;
    t.id = static_cast<TaskId>(set.size() + 1);
    t.name = name;
    t.period = p;
    t.wcet = e;
    set.push_back(t);
  };
  add("radar-track", millis(10), millis(2));
  add("nav-state", millis(25), millis(4));
  add("telemetry", millis(50), millis(5));
  add("display", millis(120), millis(10));

  const double u = total_utilization(set);
  std::printf("=== task set ===\n");
  for (const auto& t : set) {
    std::printf("  %-12s p=%-9s e=%-8s u=%.3f\n", t.name.c_str(), t.period.to_string().c_str(),
                t.wcet.to_string().c_str(), t.utilization());
  }
  std::printf("total utilisation: %.3f\n\n", u);

  std::printf("=== schedulability ===\n");
  std::printf("  Liu-Layland bound n(2^(1/n)-1) for n=%zu : %.4f\n", set.size(),
              liu_layland_bound(set.size()));
  std::printf("  RM utilisation test   : %s\n", rm_utilization_test(set) ? "pass" : "fail");
  std::printf("  RM hyperbolic test    : %s\n", rm_hyperbolic_test(set) ? "pass" : "fail");
  std::printf("  RM exact (resp. time) : %s\n", rm_exact_test(set) ? "pass" : "fail");
  std::printf("  EDF (U <= 1)          : %s\n", edf_test(set) ? "pass" : "fail");
  if (const auto rt = rm_response_times(set)) {
    std::printf("  worst-case response times under RM:\n");
    for (std::size_t i = 0; i < set.size(); ++i) {
      std::printf("    %-12s R=%s\n", set[i].name.c_str(), (*rt)[i].to_string().c_str());
    }
  }

  std::printf("\n=== DCS S_r pinwheel specialisation (Theorem 3) ===\n");
  const DcsSpecialization dcs = dcs_specialize(set);
  std::printf("  base b=%s, specialised density %.3f (%s)\n", dcs.base.to_string().c_str(),
              dcs.density, dcs.feasible() ? "feasible" : "infeasible");
  std::printf("  zero-variance condition sum(e/p) <= n(2^(1/n)-1): %s\n",
              dcs_zero_variance_condition(set) ? "met" : "not met");
  for (std::size_t i = 0; i < set.size(); ++i) {
    std::printf("    %-12s %s -> %s\n", set[i].name.c_str(), set[i].period.to_string().c_str(),
                dcs.periods[i].to_string().c_str());
  }

  std::printf("\n=== phase variance: analytic bound vs measured (20s sim) ===\n");
  std::printf("  %-12s %10s %10s %10s | %10s %10s %10s\n", "task", "eq2.1", "thm2-EDF",
              "thm2-RM", "EDF", "RM", "DCS-Sr");
  struct Measured {
    Duration edf, rm, dcs;
  };
  std::vector<Measured> measured(set.size());
  for (Policy policy : {Policy::kEdf, Policy::kRateMonotonic, Policy::kDcsSr}) {
    sim::Simulator sim(1);
    Cpu cpu(sim, policy);
    std::vector<TaskId> ids;
    for (const auto& t : set) {
      TaskSpec copy = t;
      copy.id = kInvalidTask;
      ids.push_back(cpu.add_task(copy, nullptr));
    }
    cpu.start(TimePoint::zero());
    sim.run_until(TimePoint::zero() + seconds(20));
    for (std::size_t i = 0; i < set.size(); ++i) {
      const Duration v = cpu.tracker(ids[i]).phase_variance();
      if (policy == Policy::kEdf) measured[i].edf = v;
      if (policy == Policy::kRateMonotonic) measured[i].rm = v;
      if (policy == Policy::kDcsSr) measured[i].dcs = v;
    }
  }
  for (std::size_t i = 0; i < set.size(); ++i) {
    std::printf("  %-12s %9.3fms %9.3fms %9.3fms | %9.3fms %9.3fms %9.3fms\n",
                set[i].name.c_str(), phase_variance_bound_universal(set[i]).millis(),
                phase_variance_bound_edf(set[i], u).millis(),
                phase_variance_bound_rm(set[i], u, set.size()).millis(), measured[i].edf.millis(),
                measured[i].rm.millis(), measured[i].dcs.millis());
  }

  std::printf("\n=== schedule close-ups (first 60ms, 1ms columns) ===\n");
  GanttOptions gantt;
  gantt.horizon = millis(60);
  gantt.show_releases = false;
  std::printf("%s\n", render_gantt(set, Policy::kRateMonotonic, gantt).c_str());
  std::printf("%s", render_gantt(set, Policy::kDcsSr, gantt).c_str());
  std::printf("(under DCS-Sr every task finishes at a fixed offset in each period\n"
              " — the zero phase variance of Theorem 3, visible to the eye)\n");

  std::printf("\n=== temporal-consistency admission (Theorem 1) ===\n");
  std::printf("  With measured v under RM, the largest admissible delta_P per object:\n");
  for (std::size_t i = 0; i < set.size(); ++i) {
    // Theorem 1: consistency iff p <= delta - v, so delta >= p + v.
    const Duration min_delta = set[i].period + measured[i].rm;
    std::printf("    %-12s needs delta_P >= %s\n", set[i].name.c_str(),
                min_delta.to_string().c_str());
  }
  return 0;
}
