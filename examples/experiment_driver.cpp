// Config-driven experiment driver: define an RTPB scenario in a plain
// key = value file and run it without writing C++.
//
//   ./build/examples/example_experiment_driver my_experiment.conf
//   ./build/examples/example_experiment_driver            # built-in demo
//
// Recognised keys (defaults in brackets):
//   seed [1]                 objects [5]
//   client_period [10ms]     client_exec [0.2ms]     update_exec [1ms]
//   delta_primary [20ms]     delta_backup [100ms]    object_size [64]
//   update_loss [0.0]        link_loss [0.0]         link_jitter [0.2ms]
//   admission [true]         scheduling [normal|compressed]
//   policy [fifo|rm|edf|dcs] backup_count [1]        slack_factor [2]
//   duration [10s]           warmup [1s]
//   crash_primary_at [unset] add_standby_at [unset]  trace [false]
#include <cstdio>
#include <string>

#include "core/faults.hpp"
#include "core/rtpb.hpp"
#include "util/config.hpp"

using namespace rtpb;

namespace {

sched::Policy parse_policy(const std::string& name) {
  if (name == "rm") return sched::Policy::kRateMonotonic;
  if (name == "edf") return sched::Policy::kEdf;
  if (name == "dcs") return sched::Policy::kDcsSr;
  return sched::Policy::kFifo;
}

constexpr const char* kDemoConfig = R"(
# Built-in demo: five objects, 10% update loss, a primary crash at 6s and
# a standby recruited at 8s.
objects = 5
update_loss = 0.10
duration = 12s
crash_primary_at = 6s
add_standby_at = 8s
)";

}  // namespace

int main(int argc, char** argv) {
  Config config;
  if (argc > 1) {
    const auto loaded = Config::load(argv[1]);
    if (!loaded) {
      std::fprintf(stderr, "cannot read config file %s\n", argv[1]);
      return 1;
    }
    config = *loaded;
    std::printf("experiment: %s\n", argv[1]);
  } else {
    config = Config::parse(kDemoConfig);
    std::printf("experiment: built-in demo (pass a config file to customise)\n");
  }
  for (const auto& err : config.errors()) std::fprintf(stderr, "config: %s\n", err.c_str());

  core::ServiceParams params;
  params.seed = static_cast<std::uint64_t>(config.get_int("seed", 1));
  params.link.propagation = millis(1);
  params.link.jitter = config.get_duration("link_jitter", micros(200));
  params.link.loss_probability = config.get_double("link_loss", 0.0);
  params.config.update_loss_probability = config.get_double("update_loss", 0.0);
  params.config.admission_control_enabled = config.get_bool("admission", true);
  params.config.slack_factor = config.get_int("slack_factor", 2);
  params.config.update_scheduling = config.get_string("scheduling", "normal") == "compressed"
                                        ? core::UpdateScheduling::kCompressed
                                        : core::UpdateScheduling::kNormal;
  params.config.cpu_policy = parse_policy(config.get_string("policy", "fifo"));
  params.backup_count = static_cast<std::size_t>(config.get_int("backup_count", 1));

  core::RtpbService service(params);
  if (config.get_bool("trace", false)) service.simulator().trace().enable();

  core::FaultPlan plan(service);
  const Duration crash_at = config.get_duration("crash_primary_at", Duration{-1});
  if (crash_at >= Duration::zero()) plan.crash_primary(TimePoint::zero() + crash_at);
  const Duration standby_at = config.get_duration("add_standby_at", Duration{-1});
  if (standby_at >= Duration::zero()) plan.add_standby(TimePoint::zero() + standby_at);
  plan.arm();

  service.start();

  const auto n = static_cast<core::ObjectId>(config.get_int("objects", 5));
  std::size_t accepted = 0;
  for (core::ObjectId id = 1; id <= n; ++id) {
    core::ObjectSpec spec;
    spec.id = id;
    spec.name = "obj" + std::to_string(id);
    spec.size_bytes = static_cast<std::uint32_t>(config.get_int("object_size", 64));
    spec.client_period = config.get_duration("client_period", millis(10));
    spec.client_exec = config.get_duration("client_exec", micros(200));
    spec.update_exec = config.get_duration("update_exec", millis(1));
    spec.delta_primary = config.get_duration("delta_primary", millis(20));
    spec.delta_backup = config.get_duration("delta_backup", millis(100));
    if (service.register_object(spec).ok()) ++accepted;
  }

  const auto unused = config.unused_keys();
  for (const auto& key : unused) {
    std::fprintf(stderr, "config: unknown key '%s' (typo?)\n", key.c_str());
  }

  service.warm_up(config.get_duration("warmup", seconds(1)));
  service.run_for(config.get_duration("duration", seconds(10)));
  service.finish();

  const core::Metrics& m = service.metrics();
  std::printf("\n-- results at t=%s --\n", service.simulator().now().to_string().c_str());
  std::printf("objects accepted          : %zu / %u\n", accepted, n);
  std::printf("acting primary            : node%u (%s)\n", service.acting_primary().node(),
              core::role_name(service.acting_primary().role()));
  std::printf("client responses          : %zu (mean %.3f ms, p99 %.3f ms)\n",
              m.response_times().count(), m.response_times().mean(),
              m.response_times().quantile(0.99));
  std::printf("updates sent / applied    : %llu / %llu\n",
              static_cast<unsigned long long>(service.primary().updates_sent() +
                                              service.backup().updates_sent()),
              static_cast<unsigned long long>(service.backup().updates_applied()));
  std::printf("avg max P/B distance      : %.3f ms\n", m.average_max_distance_ms());
  std::printf("window violations         : %llu (mean %.3f ms)\n",
              static_cast<unsigned long long>(m.inconsistency_intervals()),
              m.mean_inconsistency_duration_ms());
  for (const auto& label : plan.fired()) {
    std::printf("fault fired               : %s\n", label.c_str());
  }
  if (config.get_bool("trace", false)) {
    std::printf("\n-- last trace events --\n%s",
                service.simulator().trace().render().c_str());
  }
  return 0;
}
