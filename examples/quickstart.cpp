// Quickstart: stand up the RTPB replication service on a simulated
// two-host LAN, register temporally-constrained objects, watch replication
// run, then kill the primary and watch the backup take over.
//
//   ./build/examples/example_quickstart
#include <cstdio>

#include "core/rtpb.hpp"

using namespace rtpb;

int main() {
  // 1. Configure the deployment: a 10 Mb/s LAN with ~1 ms propagation,
  //    rate-monotonic scheduling on the servers, heartbeats every 100 ms.
  core::ServiceParams params;
  params.seed = 2026;
  params.link.propagation = millis(1);
  params.link.jitter = micros(200);
  params.config.cpu_policy = sched::Policy::kRateMonotonic;

  core::RtpbService service(params);
  service.start();
  std::printf("RTPB service started: primary=node%u backup=node%u (l = %s)\n",
              service.primary().node(), service.backup().node(),
              service.link_delay_bound().to_string().c_str());

  // 2. Register objects.  Each carries its client update period p_i and
  //    the external temporal constraints delta_P (primary) / delta_B (backup).
  for (core::ObjectId id = 1; id <= 3; ++id) {
    core::ObjectSpec spec;
    spec.id = id;
    spec.name = "sensor-" + std::to_string(id);
    spec.size_bytes = 64;
    spec.client_period = millis(10);  // sensor updates every 10 ms
    spec.client_exec = micros(200);
    spec.update_exec = micros(200);
    spec.delta_primary = millis(20);  // primary copy stale by at most 20 ms
    spec.delta_backup = millis(100);  // backup copy stale by at most 100 ms
    const auto result = service.register_object(spec);
    if (result.ok()) {
      std::printf("  admitted %-10s  window=%s  update period r=%s\n", spec.name.c_str(),
                  spec.window().to_string().c_str(),
                  result.value().update_period.to_string().c_str());
    } else {
      std::printf("  REJECTED %-10s: %s\n", spec.name.c_str(),
                  core::admission_error_name(result.code()));
    }
  }

  // An inter-object constraint: objects 1 and 2 must never be seen more
  // than 30 ms apart in time (paper section 3).
  const auto c = service.add_constraint({1, 2, millis(30)});
  std::printf("  inter-object constraint |T1 - T2| <= 30ms: %s\n",
              c.ok() ? "accepted" : core::admission_error_name(c.code()));

  // 3. Run for a while and inspect consistency metrics.
  service.warm_up(seconds(1));
  service.run_for(seconds(10));
  service.finish();

  const auto& m = service.metrics();
  std::printf("\nafter 10s of replication:\n");
  std::printf("  client writes            : %llu\n",
              static_cast<unsigned long long>(service.client().writes_issued()));
  std::printf("  updates sent to backup   : %llu\n",
              static_cast<unsigned long long>(service.primary().updates_sent()));
  std::printf("  median client response   : %.3f ms\n", m.response_times().quantile(0.5));
  std::printf("  avg max P/B distance     : %.3f ms\n", m.average_max_distance_ms());
  std::printf("  windows violated         : %llu\n",
              static_cast<unsigned long long>(m.inconsistency_intervals()));

  // 4. Kill the primary.  The backup's failure detector notices, the
  //    backup promotes itself, rewrites the name-service entry, and
  //    activates its local client application.
  std::printf("\ncrashing primary at t=%s...\n",
              service.simulator().now().to_string().c_str());
  service.crash_primary();
  service.run_for(seconds(1));

  std::printf("  backup role now          : %s\n", core::role_name(service.backup().role()));
  const auto addr = service.names().lookup("rtpb-service");
  std::printf("  name service points at   : node%u\n", addr ? addr->node : 0);
  std::printf("  promoted at              : %s\n",
              service.backup().promoted_at().to_string().c_str());

  // 5. Recruit a fresh backup so the service is fault tolerant again.
  core::ReplicaServer& standby = service.add_standby();
  service.run_for(seconds(2));
  std::printf("  new backup node%u holds %zu objects (replication re-established)\n",
              standby.node(), standby.store().size());

  const auto v = service.backup().read(1);
  std::printf("  object 1 version on new primary: %llu (still advancing)\n",
              v ? static_cast<unsigned long long>(v->version) : 0ULL);
  return 0;
}
