// Avionics scenario: the paper's motivating example (sections 1 and 3).
//
// During takeoff there is a hard time bound between the moment the
// airspeed reading says "rotate" and the moment the altitude reading shows
// the aircraft lifting off — the runway is finite.  Airspeed and altitude
// are therefore registered with an inter-object temporal constraint
// delta_ij, and both also carry external constraints so the ground-station
// replica (the backup) never acts on stale data after a failover.
//
//   ./build/examples/example_avionics
#include <cmath>
#include <cstdio>

#include "core/rtpb.hpp"

using namespace rtpb;

namespace {

constexpr core::ObjectId kAirspeed = 1;
constexpr core::ObjectId kAltitude = 2;
constexpr core::ObjectId kEnginePressure = 3;
constexpr core::ObjectId kFlapPosition = 4;

core::ObjectSpec sensor(core::ObjectId id, const char* name, Duration period,
                        Duration delta_p, Duration delta_b) {
  core::ObjectSpec s;
  s.id = id;
  s.name = name;
  s.size_bytes = 32;
  s.client_period = period;
  s.client_exec = micros(150);
  s.update_exec = micros(150);
  s.delta_primary = delta_p;
  s.delta_backup = delta_b;
  return s;
}

}  // namespace

int main() {
  core::ServiceParams params;
  params.seed = 42;
  params.link.propagation = millis(1);
  params.link.jitter = micros(500);
  // Flight-critical data tolerates some update loss; inject 5% to show the
  // service riding through it (the 2x transmission slack absorbs singles).
  params.config.update_loss_probability = 0.05;

  core::RtpbService service(params);
  service.start();

  std::printf("=== avionics takeoff monitor over RTPB ===\n\n");

  struct Reg {
    core::ObjectSpec spec;
  };
  const Reg regs[] = {
      {sensor(kAirspeed, "airspeed", millis(5), millis(10), millis(60))},
      {sensor(kAltitude, "altitude", millis(5), millis(10), millis(60))},
      {sensor(kEnginePressure, "engine-pressure", millis(20), millis(40), millis(200))},
      {sensor(kFlapPosition, "flap-position", millis(50), millis(100), millis(400))},
  };
  for (const Reg& r : regs) {
    const auto result = service.register_object(r.spec);
    std::printf("register %-16s p=%-8s dP=%-8s dB=%-8s -> %s\n", r.spec.name.c_str(),
                r.spec.client_period.to_string().c_str(),
                r.spec.delta_primary.to_string().c_str(),
                r.spec.delta_backup.to_string().c_str(),
                result.ok() ? "admitted" : core::admission_error_name(result.code()));
  }

  // The takeoff invariant: airspeed and altitude views must never diverge
  // by more than 25 ms, at the primary or at the backup.
  const auto c = service.add_constraint({kAirspeed, kAltitude, millis(25)});
  std::printf("\ninter-object bound |T_airspeed - T_altitude| <= 25ms: %s\n",
              c.ok() ? "accepted" : core::admission_error_name(c.code()));
  std::printf("  airspeed transmission period tightened to %s\n",
              service.primary().admission().update_period(kAirspeed).to_string().c_str());

  // A constraint that cannot be honoured is rejected with a reason the
  // flight software can negotiate on: flap-position is sampled every 50ms,
  // so a 30ms inter-object bound with altitude is unsatisfiable.
  const auto bad = service.add_constraint({kFlapPosition, kAltitude, millis(30)});
  std::printf("infeasible bound |T_flap - T_altitude| <= 30ms: rejected (%s)\n\n",
              bad.ok() ? "?!" : core::admission_error_name(bad.code()));

  // Roll down the runway for 30 simulated seconds.
  service.warm_up(seconds(1));
  service.run_for(seconds(30));
  service.finish();

  const auto& m = service.metrics();
  std::printf("--- 30s takeoff roll, 5%% update loss ---\n");
  std::printf("updates sent/applied/lost : %llu / %llu / %llu\n",
              static_cast<unsigned long long>(service.primary().updates_sent()),
              static_cast<unsigned long long>(service.backup().updates_applied()),
              static_cast<unsigned long long>(service.primary().updates_loss_injected()));
  std::printf("backup NACK requests      : %llu\n",
              static_cast<unsigned long long>(service.backup().retransmit_requests_sent()));
  std::printf("avg max P/B distance      : %.3f ms\n", m.average_max_distance_ms());
  std::printf("window violations         : %llu (total %.3f ms)\n",
              static_cast<unsigned long long>(m.inconsistency_intervals()),
              m.total_inconsistency().millis());
  std::printf("p99 client response       : %.3f ms\n\n", m.response_times().quantile(0.99));

  // Verify the takeoff invariant held at both sites: the paper's Theorem 6
  // machinery means both update streams stayed within delta_ij.
  const auto airspeed = service.backup().read(kAirspeed);
  const auto altitude = service.backup().read(kAltitude);
  if (airspeed && altitude) {
    const Duration divergence = (airspeed->origin_timestamp - altitude->origin_timestamp).abs();
    std::printf("backup view divergence airspeed vs altitude: %s (bound 25ms) %s\n",
                divergence.to_string().c_str(), divergence <= millis(25) ? "OK" : "VIOLATED");
  }
  return 0;
}
