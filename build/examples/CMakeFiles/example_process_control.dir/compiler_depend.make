# Empty compiler generated dependencies file for example_process_control.
# This may be replaced when dependencies are built.
