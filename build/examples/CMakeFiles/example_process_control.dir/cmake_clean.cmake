file(REMOVE_RECURSE
  "CMakeFiles/example_process_control.dir/process_control.cpp.o"
  "CMakeFiles/example_process_control.dir/process_control.cpp.o.d"
  "example_process_control"
  "example_process_control.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_process_control.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
