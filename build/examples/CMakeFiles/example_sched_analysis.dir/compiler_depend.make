# Empty compiler generated dependencies file for example_sched_analysis.
# This may be replaced when dependencies are built.
