file(REMOVE_RECURSE
  "CMakeFiles/example_sched_analysis.dir/sched_analysis.cpp.o"
  "CMakeFiles/example_sched_analysis.dir/sched_analysis.cpp.o.d"
  "example_sched_analysis"
  "example_sched_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_sched_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
