# Empty dependencies file for example_experiment_driver.
# This may be replaced when dependencies are built.
