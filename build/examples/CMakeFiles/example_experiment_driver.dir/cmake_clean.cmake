file(REMOVE_RECURSE
  "CMakeFiles/example_experiment_driver.dir/experiment_driver.cpp.o"
  "CMakeFiles/example_experiment_driver.dir/experiment_driver.cpp.o.d"
  "example_experiment_driver"
  "example_experiment_driver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_experiment_driver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
