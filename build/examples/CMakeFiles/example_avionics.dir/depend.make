# Empty dependencies file for example_avionics.
# This may be replaced when dependencies are built.
