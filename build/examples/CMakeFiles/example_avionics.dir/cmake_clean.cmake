file(REMOVE_RECURSE
  "CMakeFiles/example_avionics.dir/avionics.cpp.o"
  "CMakeFiles/example_avionics.dir/avionics.cpp.o.d"
  "example_avionics"
  "example_avionics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_avionics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
