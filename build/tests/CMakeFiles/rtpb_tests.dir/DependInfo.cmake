
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core_active_test.cpp" "tests/CMakeFiles/rtpb_tests.dir/core_active_test.cpp.o" "gcc" "tests/CMakeFiles/rtpb_tests.dir/core_active_test.cpp.o.d"
  "/root/repo/tests/core_admission_test.cpp" "tests/CMakeFiles/rtpb_tests.dir/core_admission_test.cpp.o" "gcc" "tests/CMakeFiles/rtpb_tests.dir/core_admission_test.cpp.o.d"
  "/root/repo/tests/core_consistency_guarantee_test.cpp" "tests/CMakeFiles/rtpb_tests.dir/core_consistency_guarantee_test.cpp.o" "gcc" "tests/CMakeFiles/rtpb_tests.dir/core_consistency_guarantee_test.cpp.o.d"
  "/root/repo/tests/core_faults_test.cpp" "tests/CMakeFiles/rtpb_tests.dir/core_faults_test.cpp.o" "gcc" "tests/CMakeFiles/rtpb_tests.dir/core_faults_test.cpp.o.d"
  "/root/repo/tests/core_heartbeat_test.cpp" "tests/CMakeFiles/rtpb_tests.dir/core_heartbeat_test.cpp.o" "gcc" "tests/CMakeFiles/rtpb_tests.dir/core_heartbeat_test.cpp.o.d"
  "/root/repo/tests/core_metrics_test.cpp" "tests/CMakeFiles/rtpb_tests.dir/core_metrics_test.cpp.o" "gcc" "tests/CMakeFiles/rtpb_tests.dir/core_metrics_test.cpp.o.d"
  "/root/repo/tests/core_multibackup_test.cpp" "tests/CMakeFiles/rtpb_tests.dir/core_multibackup_test.cpp.o" "gcc" "tests/CMakeFiles/rtpb_tests.dir/core_multibackup_test.cpp.o.d"
  "/root/repo/tests/core_name_service_test.cpp" "tests/CMakeFiles/rtpb_tests.dir/core_name_service_test.cpp.o" "gcc" "tests/CMakeFiles/rtpb_tests.dir/core_name_service_test.cpp.o.d"
  "/root/repo/tests/core_negotiation_test.cpp" "tests/CMakeFiles/rtpb_tests.dir/core_negotiation_test.cpp.o" "gcc" "tests/CMakeFiles/rtpb_tests.dir/core_negotiation_test.cpp.o.d"
  "/root/repo/tests/core_object_store_test.cpp" "tests/CMakeFiles/rtpb_tests.dir/core_object_store_test.cpp.o" "gcc" "tests/CMakeFiles/rtpb_tests.dir/core_object_store_test.cpp.o.d"
  "/root/repo/tests/core_server_edge_test.cpp" "tests/CMakeFiles/rtpb_tests.dir/core_server_edge_test.cpp.o" "gcc" "tests/CMakeFiles/rtpb_tests.dir/core_server_edge_test.cpp.o.d"
  "/root/repo/tests/core_service_test.cpp" "tests/CMakeFiles/rtpb_tests.dir/core_service_test.cpp.o" "gcc" "tests/CMakeFiles/rtpb_tests.dir/core_service_test.cpp.o.d"
  "/root/repo/tests/core_wire_test.cpp" "tests/CMakeFiles/rtpb_tests.dir/core_wire_test.cpp.o" "gcc" "tests/CMakeFiles/rtpb_tests.dir/core_wire_test.cpp.o.d"
  "/root/repo/tests/fuzz_test.cpp" "tests/CMakeFiles/rtpb_tests.dir/fuzz_test.cpp.o" "gcc" "tests/CMakeFiles/rtpb_tests.dir/fuzz_test.cpp.o.d"
  "/root/repo/tests/net_network_test.cpp" "tests/CMakeFiles/rtpb_tests.dir/net_network_test.cpp.o" "gcc" "tests/CMakeFiles/rtpb_tests.dir/net_network_test.cpp.o.d"
  "/root/repo/tests/sched_analysis_test.cpp" "tests/CMakeFiles/rtpb_tests.dir/sched_analysis_test.cpp.o" "gcc" "tests/CMakeFiles/rtpb_tests.dir/sched_analysis_test.cpp.o.d"
  "/root/repo/tests/sched_aperiodic_test.cpp" "tests/CMakeFiles/rtpb_tests.dir/sched_aperiodic_test.cpp.o" "gcc" "tests/CMakeFiles/rtpb_tests.dir/sched_aperiodic_test.cpp.o.d"
  "/root/repo/tests/sched_cpu_test.cpp" "tests/CMakeFiles/rtpb_tests.dir/sched_cpu_test.cpp.o" "gcc" "tests/CMakeFiles/rtpb_tests.dir/sched_cpu_test.cpp.o.d"
  "/root/repo/tests/sched_dcs_dynamic_test.cpp" "tests/CMakeFiles/rtpb_tests.dir/sched_dcs_dynamic_test.cpp.o" "gcc" "tests/CMakeFiles/rtpb_tests.dir/sched_dcs_dynamic_test.cpp.o.d"
  "/root/repo/tests/sched_dcs_test.cpp" "tests/CMakeFiles/rtpb_tests.dir/sched_dcs_test.cpp.o" "gcc" "tests/CMakeFiles/rtpb_tests.dir/sched_dcs_test.cpp.o.d"
  "/root/repo/tests/sched_gantt_test.cpp" "tests/CMakeFiles/rtpb_tests.dir/sched_gantt_test.cpp.o" "gcc" "tests/CMakeFiles/rtpb_tests.dir/sched_gantt_test.cpp.o.d"
  "/root/repo/tests/sched_generator_test.cpp" "tests/CMakeFiles/rtpb_tests.dir/sched_generator_test.cpp.o" "gcc" "tests/CMakeFiles/rtpb_tests.dir/sched_generator_test.cpp.o.d"
  "/root/repo/tests/sched_theory_test.cpp" "tests/CMakeFiles/rtpb_tests.dir/sched_theory_test.cpp.o" "gcc" "tests/CMakeFiles/rtpb_tests.dir/sched_theory_test.cpp.o.d"
  "/root/repo/tests/sim_simulator_test.cpp" "tests/CMakeFiles/rtpb_tests.dir/sim_simulator_test.cpp.o" "gcc" "tests/CMakeFiles/rtpb_tests.dir/sim_simulator_test.cpp.o.d"
  "/root/repo/tests/sim_trace_test.cpp" "tests/CMakeFiles/rtpb_tests.dir/sim_trace_test.cpp.o" "gcc" "tests/CMakeFiles/rtpb_tests.dir/sim_trace_test.cpp.o.d"
  "/root/repo/tests/util_bytebuffer_test.cpp" "tests/CMakeFiles/rtpb_tests.dir/util_bytebuffer_test.cpp.o" "gcc" "tests/CMakeFiles/rtpb_tests.dir/util_bytebuffer_test.cpp.o.d"
  "/root/repo/tests/util_config_test.cpp" "tests/CMakeFiles/rtpb_tests.dir/util_config_test.cpp.o" "gcc" "tests/CMakeFiles/rtpb_tests.dir/util_config_test.cpp.o.d"
  "/root/repo/tests/util_rng_test.cpp" "tests/CMakeFiles/rtpb_tests.dir/util_rng_test.cpp.o" "gcc" "tests/CMakeFiles/rtpb_tests.dir/util_rng_test.cpp.o.d"
  "/root/repo/tests/util_stats_test.cpp" "tests/CMakeFiles/rtpb_tests.dir/util_stats_test.cpp.o" "gcc" "tests/CMakeFiles/rtpb_tests.dir/util_stats_test.cpp.o.d"
  "/root/repo/tests/util_time_test.cpp" "tests/CMakeFiles/rtpb_tests.dir/util_time_test.cpp.o" "gcc" "tests/CMakeFiles/rtpb_tests.dir/util_time_test.cpp.o.d"
  "/root/repo/tests/xkernel_fraglite_test.cpp" "tests/CMakeFiles/rtpb_tests.dir/xkernel_fraglite_test.cpp.o" "gcc" "tests/CMakeFiles/rtpb_tests.dir/xkernel_fraglite_test.cpp.o.d"
  "/root/repo/tests/xkernel_session_test.cpp" "tests/CMakeFiles/rtpb_tests.dir/xkernel_session_test.cpp.o" "gcc" "tests/CMakeFiles/rtpb_tests.dir/xkernel_session_test.cpp.o.d"
  "/root/repo/tests/xkernel_test.cpp" "tests/CMakeFiles/rtpb_tests.dir/xkernel_test.cpp.o" "gcc" "tests/CMakeFiles/rtpb_tests.dir/xkernel_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rtpb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rtpb_xkernel.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rtpb_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rtpb_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rtpb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rtpb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
