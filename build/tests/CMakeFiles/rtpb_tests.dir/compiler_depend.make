# Empty compiler generated dependencies file for rtpb_tests.
# This may be replaced when dependencies are built.
