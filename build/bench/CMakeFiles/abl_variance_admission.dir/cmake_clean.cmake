file(REMOVE_RECURSE
  "CMakeFiles/abl_variance_admission.dir/abl_variance_admission_main.cpp.o"
  "CMakeFiles/abl_variance_admission.dir/abl_variance_admission_main.cpp.o.d"
  "CMakeFiles/abl_variance_admission.dir/common/harness.cpp.o"
  "CMakeFiles/abl_variance_admission.dir/common/harness.cpp.o.d"
  "abl_variance_admission"
  "abl_variance_admission.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_variance_admission.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
