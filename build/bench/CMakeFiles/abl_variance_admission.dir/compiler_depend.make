# Empty compiler generated dependencies file for abl_variance_admission.
# This may be replaced when dependencies are built.
