file(REMOVE_RECURSE
  "CMakeFiles/abl_dcs_schedulers.dir/abl_dcs_schedulers_main.cpp.o"
  "CMakeFiles/abl_dcs_schedulers.dir/abl_dcs_schedulers_main.cpp.o.d"
  "CMakeFiles/abl_dcs_schedulers.dir/common/harness.cpp.o"
  "CMakeFiles/abl_dcs_schedulers.dir/common/harness.cpp.o.d"
  "abl_dcs_schedulers"
  "abl_dcs_schedulers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_dcs_schedulers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
