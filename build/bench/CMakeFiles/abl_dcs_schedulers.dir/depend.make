# Empty dependencies file for abl_dcs_schedulers.
# This may be replaced when dependencies are built.
