file(REMOVE_RECURSE
  "CMakeFiles/fig12_inconsistency_compressed.dir/common/harness.cpp.o"
  "CMakeFiles/fig12_inconsistency_compressed.dir/common/harness.cpp.o.d"
  "CMakeFiles/fig12_inconsistency_compressed.dir/fig12_inconsistency_compressed_main.cpp.o"
  "CMakeFiles/fig12_inconsistency_compressed.dir/fig12_inconsistency_compressed_main.cpp.o.d"
  "fig12_inconsistency_compressed"
  "fig12_inconsistency_compressed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_inconsistency_compressed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
