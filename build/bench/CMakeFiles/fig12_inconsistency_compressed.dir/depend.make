# Empty dependencies file for fig12_inconsistency_compressed.
# This may be replaced when dependencies are built.
