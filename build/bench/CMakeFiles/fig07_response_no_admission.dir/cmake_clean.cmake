file(REMOVE_RECURSE
  "CMakeFiles/fig07_response_no_admission.dir/common/harness.cpp.o"
  "CMakeFiles/fig07_response_no_admission.dir/common/harness.cpp.o.d"
  "CMakeFiles/fig07_response_no_admission.dir/fig07_response_no_admission_main.cpp.o"
  "CMakeFiles/fig07_response_no_admission.dir/fig07_response_no_admission_main.cpp.o.d"
  "fig07_response_no_admission"
  "fig07_response_no_admission.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_response_no_admission.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
