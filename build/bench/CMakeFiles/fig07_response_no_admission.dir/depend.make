# Empty dependencies file for fig07_response_no_admission.
# This may be replaced when dependencies are built.
