# Empty compiler generated dependencies file for val_dcs_zero_variance.
# This may be replaced when dependencies are built.
