file(REMOVE_RECURSE
  "CMakeFiles/val_dcs_zero_variance.dir/common/harness.cpp.o"
  "CMakeFiles/val_dcs_zero_variance.dir/common/harness.cpp.o.d"
  "CMakeFiles/val_dcs_zero_variance.dir/val_dcs_zero_variance_main.cpp.o"
  "CMakeFiles/val_dcs_zero_variance.dir/val_dcs_zero_variance_main.cpp.o.d"
  "val_dcs_zero_variance"
  "val_dcs_zero_variance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/val_dcs_zero_variance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
