# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for val_dcs_zero_variance.
