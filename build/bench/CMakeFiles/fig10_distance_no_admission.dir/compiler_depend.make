# Empty compiler generated dependencies file for fig10_distance_no_admission.
# This may be replaced when dependencies are built.
