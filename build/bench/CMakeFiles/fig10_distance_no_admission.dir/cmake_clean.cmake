file(REMOVE_RECURSE
  "CMakeFiles/fig10_distance_no_admission.dir/common/harness.cpp.o"
  "CMakeFiles/fig10_distance_no_admission.dir/common/harness.cpp.o.d"
  "CMakeFiles/fig10_distance_no_admission.dir/fig10_distance_no_admission_main.cpp.o"
  "CMakeFiles/fig10_distance_no_admission.dir/fig10_distance_no_admission_main.cpp.o.d"
  "fig10_distance_no_admission"
  "fig10_distance_no_admission.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_distance_no_admission.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
