# Empty dependencies file for abl_slack_factor.
# This may be replaced when dependencies are built.
