file(REMOVE_RECURSE
  "CMakeFiles/abl_slack_factor.dir/abl_slack_factor_main.cpp.o"
  "CMakeFiles/abl_slack_factor.dir/abl_slack_factor_main.cpp.o.d"
  "CMakeFiles/abl_slack_factor.dir/common/harness.cpp.o"
  "CMakeFiles/abl_slack_factor.dir/common/harness.cpp.o.d"
  "abl_slack_factor"
  "abl_slack_factor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_slack_factor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
