# Empty dependencies file for fig06_response_admission.
# This may be replaced when dependencies are built.
