file(REMOVE_RECURSE
  "CMakeFiles/fig06_response_admission.dir/common/harness.cpp.o"
  "CMakeFiles/fig06_response_admission.dir/common/harness.cpp.o.d"
  "CMakeFiles/fig06_response_admission.dir/fig06_response_admission_main.cpp.o"
  "CMakeFiles/fig06_response_admission.dir/fig06_response_admission_main.cpp.o.d"
  "fig06_response_admission"
  "fig06_response_admission.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_response_admission.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
