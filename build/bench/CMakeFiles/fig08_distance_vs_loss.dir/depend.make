# Empty dependencies file for fig08_distance_vs_loss.
# This may be replaced when dependencies are built.
