file(REMOVE_RECURSE
  "CMakeFiles/fig08_distance_vs_loss.dir/common/harness.cpp.o"
  "CMakeFiles/fig08_distance_vs_loss.dir/common/harness.cpp.o.d"
  "CMakeFiles/fig08_distance_vs_loss.dir/fig08_distance_vs_loss_main.cpp.o"
  "CMakeFiles/fig08_distance_vs_loss.dir/fig08_distance_vs_loss_main.cpp.o.d"
  "fig08_distance_vs_loss"
  "fig08_distance_vs_loss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_distance_vs_loss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
