# Empty dependencies file for fig11_inconsistency_normal.
# This may be replaced when dependencies are built.
