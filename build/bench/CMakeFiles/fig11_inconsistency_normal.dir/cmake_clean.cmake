file(REMOVE_RECURSE
  "CMakeFiles/fig11_inconsistency_normal.dir/common/harness.cpp.o"
  "CMakeFiles/fig11_inconsistency_normal.dir/common/harness.cpp.o.d"
  "CMakeFiles/fig11_inconsistency_normal.dir/fig11_inconsistency_normal_main.cpp.o"
  "CMakeFiles/fig11_inconsistency_normal.dir/fig11_inconsistency_normal_main.cpp.o.d"
  "fig11_inconsistency_normal"
  "fig11_inconsistency_normal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_inconsistency_normal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
