# Empty compiler generated dependencies file for val_consistency_frontier.
# This may be replaced when dependencies are built.
