file(REMOVE_RECURSE
  "CMakeFiles/val_consistency_frontier.dir/common/harness.cpp.o"
  "CMakeFiles/val_consistency_frontier.dir/common/harness.cpp.o.d"
  "CMakeFiles/val_consistency_frontier.dir/val_consistency_frontier_main.cpp.o"
  "CMakeFiles/val_consistency_frontier.dir/val_consistency_frontier_main.cpp.o.d"
  "val_consistency_frontier"
  "val_consistency_frontier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/val_consistency_frontier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
