file(REMOVE_RECURSE
  "CMakeFiles/supp_object_size.dir/common/harness.cpp.o"
  "CMakeFiles/supp_object_size.dir/common/harness.cpp.o.d"
  "CMakeFiles/supp_object_size.dir/supp_object_size_main.cpp.o"
  "CMakeFiles/supp_object_size.dir/supp_object_size_main.cpp.o.d"
  "supp_object_size"
  "supp_object_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/supp_object_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
