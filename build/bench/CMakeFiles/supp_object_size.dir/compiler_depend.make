# Empty compiler generated dependencies file for supp_object_size.
# This may be replaced when dependencies are built.
