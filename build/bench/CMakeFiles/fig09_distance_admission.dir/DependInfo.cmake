
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/common/harness.cpp" "bench/CMakeFiles/fig09_distance_admission.dir/common/harness.cpp.o" "gcc" "bench/CMakeFiles/fig09_distance_admission.dir/common/harness.cpp.o.d"
  "/root/repo/bench/fig09_distance_admission_main.cpp" "bench/CMakeFiles/fig09_distance_admission.dir/fig09_distance_admission_main.cpp.o" "gcc" "bench/CMakeFiles/fig09_distance_admission.dir/fig09_distance_admission_main.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rtpb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rtpb_xkernel.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rtpb_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rtpb_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rtpb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rtpb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
