# Empty dependencies file for fig09_distance_admission.
# This may be replaced when dependencies are built.
