file(REMOVE_RECURSE
  "CMakeFiles/fig09_distance_admission.dir/common/harness.cpp.o"
  "CMakeFiles/fig09_distance_admission.dir/common/harness.cpp.o.d"
  "CMakeFiles/fig09_distance_admission.dir/fig09_distance_admission_main.cpp.o"
  "CMakeFiles/fig09_distance_admission.dir/fig09_distance_admission_main.cpp.o.d"
  "fig09_distance_admission"
  "fig09_distance_admission.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_distance_admission.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
