file(REMOVE_RECURSE
  "CMakeFiles/abl_coupled_baseline.dir/abl_coupled_baseline_main.cpp.o"
  "CMakeFiles/abl_coupled_baseline.dir/abl_coupled_baseline_main.cpp.o.d"
  "CMakeFiles/abl_coupled_baseline.dir/common/harness.cpp.o"
  "CMakeFiles/abl_coupled_baseline.dir/common/harness.cpp.o.d"
  "abl_coupled_baseline"
  "abl_coupled_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_coupled_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
