# Empty compiler generated dependencies file for abl_coupled_baseline.
# This may be replaced when dependencies are built.
