# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for val_phase_variance_bounds.
