# Empty dependencies file for val_phase_variance_bounds.
# This may be replaced when dependencies are built.
