file(REMOVE_RECURSE
  "CMakeFiles/val_phase_variance_bounds.dir/common/harness.cpp.o"
  "CMakeFiles/val_phase_variance_bounds.dir/common/harness.cpp.o.d"
  "CMakeFiles/val_phase_variance_bounds.dir/val_phase_variance_bounds_main.cpp.o"
  "CMakeFiles/val_phase_variance_bounds.dir/val_phase_variance_bounds_main.cpp.o.d"
  "val_phase_variance_bounds"
  "val_phase_variance_bounds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/val_phase_variance_bounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
