# Empty compiler generated dependencies file for abl_active_vs_passive.
# This may be replaced when dependencies are built.
