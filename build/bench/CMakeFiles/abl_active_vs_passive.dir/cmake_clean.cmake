file(REMOVE_RECURSE
  "CMakeFiles/abl_active_vs_passive.dir/abl_active_vs_passive_main.cpp.o"
  "CMakeFiles/abl_active_vs_passive.dir/abl_active_vs_passive_main.cpp.o.d"
  "CMakeFiles/abl_active_vs_passive.dir/common/harness.cpp.o"
  "CMakeFiles/abl_active_vs_passive.dir/common/harness.cpp.o.d"
  "abl_active_vs_passive"
  "abl_active_vs_passive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_active_vs_passive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
