file(REMOVE_RECURSE
  "CMakeFiles/abl_ack_vs_nack.dir/abl_ack_vs_nack_main.cpp.o"
  "CMakeFiles/abl_ack_vs_nack.dir/abl_ack_vs_nack_main.cpp.o.d"
  "CMakeFiles/abl_ack_vs_nack.dir/common/harness.cpp.o"
  "CMakeFiles/abl_ack_vs_nack.dir/common/harness.cpp.o.d"
  "abl_ack_vs_nack"
  "abl_ack_vs_nack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_ack_vs_nack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
