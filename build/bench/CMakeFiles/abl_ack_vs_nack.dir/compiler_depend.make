# Empty compiler generated dependencies file for abl_ack_vs_nack.
# This may be replaced when dependencies are built.
