# Empty compiler generated dependencies file for rtpb_core.
# This may be replaced when dependencies are built.
