
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/active.cpp" "src/CMakeFiles/rtpb_core.dir/core/active.cpp.o" "gcc" "src/CMakeFiles/rtpb_core.dir/core/active.cpp.o.d"
  "/root/repo/src/core/admission.cpp" "src/CMakeFiles/rtpb_core.dir/core/admission.cpp.o" "gcc" "src/CMakeFiles/rtpb_core.dir/core/admission.cpp.o.d"
  "/root/repo/src/core/client.cpp" "src/CMakeFiles/rtpb_core.dir/core/client.cpp.o" "gcc" "src/CMakeFiles/rtpb_core.dir/core/client.cpp.o.d"
  "/root/repo/src/core/faults.cpp" "src/CMakeFiles/rtpb_core.dir/core/faults.cpp.o" "gcc" "src/CMakeFiles/rtpb_core.dir/core/faults.cpp.o.d"
  "/root/repo/src/core/heartbeat.cpp" "src/CMakeFiles/rtpb_core.dir/core/heartbeat.cpp.o" "gcc" "src/CMakeFiles/rtpb_core.dir/core/heartbeat.cpp.o.d"
  "/root/repo/src/core/metrics.cpp" "src/CMakeFiles/rtpb_core.dir/core/metrics.cpp.o" "gcc" "src/CMakeFiles/rtpb_core.dir/core/metrics.cpp.o.d"
  "/root/repo/src/core/object_store.cpp" "src/CMakeFiles/rtpb_core.dir/core/object_store.cpp.o" "gcc" "src/CMakeFiles/rtpb_core.dir/core/object_store.cpp.o.d"
  "/root/repo/src/core/server.cpp" "src/CMakeFiles/rtpb_core.dir/core/server.cpp.o" "gcc" "src/CMakeFiles/rtpb_core.dir/core/server.cpp.o.d"
  "/root/repo/src/core/service.cpp" "src/CMakeFiles/rtpb_core.dir/core/service.cpp.o" "gcc" "src/CMakeFiles/rtpb_core.dir/core/service.cpp.o.d"
  "/root/repo/src/core/types.cpp" "src/CMakeFiles/rtpb_core.dir/core/types.cpp.o" "gcc" "src/CMakeFiles/rtpb_core.dir/core/types.cpp.o.d"
  "/root/repo/src/core/wire.cpp" "src/CMakeFiles/rtpb_core.dir/core/wire.cpp.o" "gcc" "src/CMakeFiles/rtpb_core.dir/core/wire.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rtpb_xkernel.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rtpb_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rtpb_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rtpb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rtpb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
