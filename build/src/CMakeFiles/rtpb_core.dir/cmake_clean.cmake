file(REMOVE_RECURSE
  "CMakeFiles/rtpb_core.dir/core/active.cpp.o"
  "CMakeFiles/rtpb_core.dir/core/active.cpp.o.d"
  "CMakeFiles/rtpb_core.dir/core/admission.cpp.o"
  "CMakeFiles/rtpb_core.dir/core/admission.cpp.o.d"
  "CMakeFiles/rtpb_core.dir/core/client.cpp.o"
  "CMakeFiles/rtpb_core.dir/core/client.cpp.o.d"
  "CMakeFiles/rtpb_core.dir/core/faults.cpp.o"
  "CMakeFiles/rtpb_core.dir/core/faults.cpp.o.d"
  "CMakeFiles/rtpb_core.dir/core/heartbeat.cpp.o"
  "CMakeFiles/rtpb_core.dir/core/heartbeat.cpp.o.d"
  "CMakeFiles/rtpb_core.dir/core/metrics.cpp.o"
  "CMakeFiles/rtpb_core.dir/core/metrics.cpp.o.d"
  "CMakeFiles/rtpb_core.dir/core/object_store.cpp.o"
  "CMakeFiles/rtpb_core.dir/core/object_store.cpp.o.d"
  "CMakeFiles/rtpb_core.dir/core/server.cpp.o"
  "CMakeFiles/rtpb_core.dir/core/server.cpp.o.d"
  "CMakeFiles/rtpb_core.dir/core/service.cpp.o"
  "CMakeFiles/rtpb_core.dir/core/service.cpp.o.d"
  "CMakeFiles/rtpb_core.dir/core/types.cpp.o"
  "CMakeFiles/rtpb_core.dir/core/types.cpp.o.d"
  "CMakeFiles/rtpb_core.dir/core/wire.cpp.o"
  "CMakeFiles/rtpb_core.dir/core/wire.cpp.o.d"
  "librtpb_core.a"
  "librtpb_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtpb_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
