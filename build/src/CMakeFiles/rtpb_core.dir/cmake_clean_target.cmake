file(REMOVE_RECURSE
  "librtpb_core.a"
)
