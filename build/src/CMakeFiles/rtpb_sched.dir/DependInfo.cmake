
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/analysis.cpp" "src/CMakeFiles/rtpb_sched.dir/sched/analysis.cpp.o" "gcc" "src/CMakeFiles/rtpb_sched.dir/sched/analysis.cpp.o.d"
  "/root/repo/src/sched/cpu.cpp" "src/CMakeFiles/rtpb_sched.dir/sched/cpu.cpp.o" "gcc" "src/CMakeFiles/rtpb_sched.dir/sched/cpu.cpp.o.d"
  "/root/repo/src/sched/gantt.cpp" "src/CMakeFiles/rtpb_sched.dir/sched/gantt.cpp.o" "gcc" "src/CMakeFiles/rtpb_sched.dir/sched/gantt.cpp.o.d"
  "/root/repo/src/sched/generator.cpp" "src/CMakeFiles/rtpb_sched.dir/sched/generator.cpp.o" "gcc" "src/CMakeFiles/rtpb_sched.dir/sched/generator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rtpb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rtpb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
