file(REMOVE_RECURSE
  "CMakeFiles/rtpb_sched.dir/sched/analysis.cpp.o"
  "CMakeFiles/rtpb_sched.dir/sched/analysis.cpp.o.d"
  "CMakeFiles/rtpb_sched.dir/sched/cpu.cpp.o"
  "CMakeFiles/rtpb_sched.dir/sched/cpu.cpp.o.d"
  "CMakeFiles/rtpb_sched.dir/sched/gantt.cpp.o"
  "CMakeFiles/rtpb_sched.dir/sched/gantt.cpp.o.d"
  "CMakeFiles/rtpb_sched.dir/sched/generator.cpp.o"
  "CMakeFiles/rtpb_sched.dir/sched/generator.cpp.o.d"
  "librtpb_sched.a"
  "librtpb_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtpb_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
