# Empty compiler generated dependencies file for rtpb_sched.
# This may be replaced when dependencies are built.
