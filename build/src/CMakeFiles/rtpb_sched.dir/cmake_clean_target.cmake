file(REMOVE_RECURSE
  "librtpb_sched.a"
)
