# Empty compiler generated dependencies file for rtpb_sim.
# This may be replaced when dependencies are built.
