file(REMOVE_RECURSE
  "CMakeFiles/rtpb_sim.dir/sim/simulator.cpp.o"
  "CMakeFiles/rtpb_sim.dir/sim/simulator.cpp.o.d"
  "CMakeFiles/rtpb_sim.dir/sim/trace.cpp.o"
  "CMakeFiles/rtpb_sim.dir/sim/trace.cpp.o.d"
  "librtpb_sim.a"
  "librtpb_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtpb_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
