file(REMOVE_RECURSE
  "librtpb_sim.a"
)
