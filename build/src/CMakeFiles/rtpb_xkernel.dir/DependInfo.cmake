
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/xkernel/fraglite.cpp" "src/CMakeFiles/rtpb_xkernel.dir/xkernel/fraglite.cpp.o" "gcc" "src/CMakeFiles/rtpb_xkernel.dir/xkernel/fraglite.cpp.o.d"
  "/root/repo/src/xkernel/graph.cpp" "src/CMakeFiles/rtpb_xkernel.dir/xkernel/graph.cpp.o" "gcc" "src/CMakeFiles/rtpb_xkernel.dir/xkernel/graph.cpp.o.d"
  "/root/repo/src/xkernel/iplite.cpp" "src/CMakeFiles/rtpb_xkernel.dir/xkernel/iplite.cpp.o" "gcc" "src/CMakeFiles/rtpb_xkernel.dir/xkernel/iplite.cpp.o.d"
  "/root/repo/src/xkernel/simeth.cpp" "src/CMakeFiles/rtpb_xkernel.dir/xkernel/simeth.cpp.o" "gcc" "src/CMakeFiles/rtpb_xkernel.dir/xkernel/simeth.cpp.o.d"
  "/root/repo/src/xkernel/udplite.cpp" "src/CMakeFiles/rtpb_xkernel.dir/xkernel/udplite.cpp.o" "gcc" "src/CMakeFiles/rtpb_xkernel.dir/xkernel/udplite.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rtpb_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rtpb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rtpb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
