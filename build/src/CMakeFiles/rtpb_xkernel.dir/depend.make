# Empty dependencies file for rtpb_xkernel.
# This may be replaced when dependencies are built.
