file(REMOVE_RECURSE
  "librtpb_xkernel.a"
)
