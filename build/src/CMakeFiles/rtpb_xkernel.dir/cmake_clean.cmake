file(REMOVE_RECURSE
  "CMakeFiles/rtpb_xkernel.dir/xkernel/fraglite.cpp.o"
  "CMakeFiles/rtpb_xkernel.dir/xkernel/fraglite.cpp.o.d"
  "CMakeFiles/rtpb_xkernel.dir/xkernel/graph.cpp.o"
  "CMakeFiles/rtpb_xkernel.dir/xkernel/graph.cpp.o.d"
  "CMakeFiles/rtpb_xkernel.dir/xkernel/iplite.cpp.o"
  "CMakeFiles/rtpb_xkernel.dir/xkernel/iplite.cpp.o.d"
  "CMakeFiles/rtpb_xkernel.dir/xkernel/simeth.cpp.o"
  "CMakeFiles/rtpb_xkernel.dir/xkernel/simeth.cpp.o.d"
  "CMakeFiles/rtpb_xkernel.dir/xkernel/udplite.cpp.o"
  "CMakeFiles/rtpb_xkernel.dir/xkernel/udplite.cpp.o.d"
  "librtpb_xkernel.a"
  "librtpb_xkernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtpb_xkernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
