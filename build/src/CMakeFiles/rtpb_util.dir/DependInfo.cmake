
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/util/config.cpp" "src/CMakeFiles/rtpb_util.dir/util/config.cpp.o" "gcc" "src/CMakeFiles/rtpb_util.dir/util/config.cpp.o.d"
  "/root/repo/src/util/log.cpp" "src/CMakeFiles/rtpb_util.dir/util/log.cpp.o" "gcc" "src/CMakeFiles/rtpb_util.dir/util/log.cpp.o.d"
  "/root/repo/src/util/stats.cpp" "src/CMakeFiles/rtpb_util.dir/util/stats.cpp.o" "gcc" "src/CMakeFiles/rtpb_util.dir/util/stats.cpp.o.d"
  "/root/repo/src/util/time.cpp" "src/CMakeFiles/rtpb_util.dir/util/time.cpp.o" "gcc" "src/CMakeFiles/rtpb_util.dir/util/time.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
