# Empty compiler generated dependencies file for rtpb_util.
# This may be replaced when dependencies are built.
