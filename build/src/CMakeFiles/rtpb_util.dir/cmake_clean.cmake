file(REMOVE_RECURSE
  "CMakeFiles/rtpb_util.dir/util/config.cpp.o"
  "CMakeFiles/rtpb_util.dir/util/config.cpp.o.d"
  "CMakeFiles/rtpb_util.dir/util/log.cpp.o"
  "CMakeFiles/rtpb_util.dir/util/log.cpp.o.d"
  "CMakeFiles/rtpb_util.dir/util/stats.cpp.o"
  "CMakeFiles/rtpb_util.dir/util/stats.cpp.o.d"
  "CMakeFiles/rtpb_util.dir/util/time.cpp.o"
  "CMakeFiles/rtpb_util.dir/util/time.cpp.o.d"
  "librtpb_util.a"
  "librtpb_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtpb_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
