file(REMOVE_RECURSE
  "librtpb_util.a"
)
