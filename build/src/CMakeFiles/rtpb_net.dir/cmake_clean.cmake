file(REMOVE_RECURSE
  "CMakeFiles/rtpb_net.dir/net/network.cpp.o"
  "CMakeFiles/rtpb_net.dir/net/network.cpp.o.d"
  "librtpb_net.a"
  "librtpb_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtpb_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
