file(REMOVE_RECURSE
  "librtpb_net.a"
)
