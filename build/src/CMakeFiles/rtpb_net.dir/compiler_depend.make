# Empty compiler generated dependencies file for rtpb_net.
# This may be replaced when dependencies are built.
