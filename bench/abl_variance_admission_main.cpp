// Ablation A4: Lemma 2-aware transmission periods (extension).
//
// The paper's §4.3 rule r = (δ−ℓ)/2 derives from Theorem 5, which charges
// the client period p entirely to δ_P.  Judged against the window itself
// (staleness T_P − T_B ≤ δ), the backup's worst staleness is
// p + r + v' + ℓ — so for a SLOW writer whose p is comparable to its
// window, the paper's rule can overshoot the window with zero message
// loss; response-time jitter on the shared CPU supplies the v' that tips
// it over.  Lemma 2's sufficient condition keeps the −p term:
//     r ≤ (δ − ℓ − p + e') / 2
// and absorbs both the client age and any v' ≤ r − e'.
//
// Setup: six fast objects (p = 10 ms) load the CPU and provide realistic
// queueing jitter; one slow writer (p = 40 ms) sweeps its window across
// the p + r + ℓ boundary.  Zero loss throughout.
#include <cstdio>

#include "common/harness.hpp"

using namespace rtpb;
using namespace rtpb::bench;

int main() {
  banner("Ablation A4: Lemma 2-aware update periods (extension over paper §4.3)",
         "the (δ−ℓ)/2 rule violates a slow writer's window; Lemma 2's −p cap fixes it");

  Table table({"window_ms", "mode", "slow_r_ms", "viol", "mean_inc_ms", "slow_maxd_ms"});
  for (std::int64_t window_ms : {70, 80, 90, 100, 120}) {
    for (int aware = 0; aware <= 1; ++aware) {
      core::ServiceParams params;
      params.seed = 8800;
      params.link.propagation = millis(1);
      params.link.jitter = millis(1);
      params.config.variance_aware_admission = aware == 1;
      core::RtpbService service(params);
      service.start();

      // Fast objects: contention + jitter, generous windows (no violations
      // of their own).
      for (core::ObjectId id = 1; id <= 6; ++id) {
        core::ObjectSpec fast;
        fast.id = id;
        fast.name = "fast" + std::to_string(id);
        fast.client_period = millis(10);
        fast.client_exec = millis(1);
        fast.update_exec = micros(300);
        fast.delta_primary = millis(20);
        fast.delta_backup = millis(120);
        (void)service.register_object(fast);
      }
      core::ObjectSpec slow;
      slow.id = 100;
      slow.name = "slow-writer";
      slow.client_period = millis(40);
      slow.client_exec = millis(1);
      slow.update_exec = micros(300);
      slow.delta_primary = millis(40);  // p ≤ δ_P, as §4.2 requires
      slow.delta_backup = slow.delta_primary + millis(window_ms);
      const auto admitted = service.register_object(slow);
      if (!admitted.ok()) {
        table.add_row({static_cast<double>(window_ms), static_cast<double>(aware), -1.0, -1.0,
                       -1.0, -1.0});
        continue;
      }

      service.warm_up(seconds(1));
      service.run_for(seconds(60));
      service.finish();
      table.add_row({static_cast<double>(window_ms), static_cast<double>(aware),
                     admitted.value().update_period.millis(),
                     static_cast<double>(service.metrics().inconsistency_intervals()),
                     service.metrics().mean_inconsistency_duration_ms(),
                     service.metrics().max_distance(100).millis()});
    }
  }
  table.print();
  std::printf("\n(mode 0 = paper's (δ−ℓ)/2, mode 1 = Lemma 2 cap; zero loss.  mode 0\n"
              " violates when p + r + v' + ℓ crosses δ — the smaller windows; mode 1\n"
              " must show viol = 0 in every row.)\n");
  return 0;
}
