// parallel_scale — the parallel execution engine's scaling baseline.
//
// Runs the SAME 64-group PartitionedCluster workload at 1, 2, 4 and 8
// worker threads and records two kinds of metric into BENCH_parallel.json:
//
//   * deterministic counters (suffix `_deterministic`): per-group trace
//     digests must be identical at every thread count, and the window /
//     event / frontier-record totals are pure functions of the seed.
//     These are what tools/bench_report gates with --stable-only — they
//     are bit-stable across machines, unlike wall-clock.
//   * wall-clock scaling (wall_ms_t*, speedup_t4): informational on any
//     machine, asserted >= 2x at 4 threads only when the host actually
//     has >= 4 hardware threads (CI perf runners do; laptops may not).
//
// The digest oracle is the load-bearing check: a data race or a
// non-deterministic barrier schedule in src/psim shows up here as a
// digest mismatch long before it corrupts an experiment.
//
// Usage: parallel_scale [output.json]   (default BENCH_parallel.json)
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "common/harness.hpp"
#include "psim/partitioned.hpp"

namespace {

using namespace rtpb;

constexpr std::uint32_t kGroups = 64;
constexpr int kObjectsPerGroup = 4;
constexpr Duration kDuration = seconds(5);

core::ObjectSpec light_spec(core::ObjectId id) {
  core::ObjectSpec spec;
  spec.id = id;
  spec.client_period = millis(10);
  spec.client_exec = micros(1);
  spec.update_exec = micros(1);
  spec.size_bytes = 64;
  // The backup window δ_iB − δ_iP sets the update period (~half of it):
  // 100ms keeps UPDATE traffic flowing every ~50ms so the frontier plane
  // actually works during the run, not just at registration.
  spec.delta_primary = millis(200);
  spec.delta_backup = spec.delta_primary + millis(100);
  return spec;
}

struct RunOutcome {
  std::vector<std::uint64_t> digests;
  std::uint64_t events = 0;
  std::uint64_t windows = 0;
  std::uint64_t frontier_published = 0;
  double wall_ms = 0.0;
};

RunOutcome run_at(std::size_t threads) {
  psim::PartitionedClusterParams params;
  params.seed = 42;
  params.group_count = kGroups;
  psim::PartitionedCluster cluster(params);
  for (std::uint32_t g = 0; g < kGroups; ++g) {
    cluster.service(g).simulator().trace().enable();
  }
  cluster.start();
  core::ObjectId next = 1;
  for (std::uint32_t g = 0; g < kGroups; ++g) {
    for (int i = 0; i < kObjectsPerGroup; ++i) {
      if (!cluster.register_object_in(g, light_spec(next++)).ok()) {
        std::fprintf(stderr, "FAIL: group %u rejected light object %u\n", g, next - 1);
        std::exit(1);
      }
    }
  }
  const psim::DriverStats stats = cluster.run_for(kDuration, threads);
  cluster.finish();

  RunOutcome out;
  out.digests = cluster.digests();
  for (std::uint32_t g = 0; g < kGroups; ++g) {
    out.events += cluster.service(g).simulator().fired_events();
  }
  out.windows = stats.windows;
  out.frontier_published = cluster.frontier_records_published();
  out.wall_ms = stats.wall_ms;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_parallel.json";
  bench::banner("parallel scale-out",
                "64 shard groups advance in lock-stepped lookahead windows; "
                "digests are thread-count invariant and 4 threads give >= 2x");

  const unsigned hw = std::thread::hardware_concurrency();
  std::printf("-- %u groups x %d objects, %lld ms simulated, host threads %u --\n", kGroups,
              kObjectsPerGroup, static_cast<long long>(kDuration.nanos() / 1'000'000), hw);

  const std::size_t kThreadCounts[] = {1, 2, 4, 8};
  RunOutcome base;
  bool digests_match = true;
  double wall_ms[4] = {};
  for (std::size_t i = 0; i < 4; ++i) {
    const RunOutcome r = run_at(kThreadCounts[i]);
    wall_ms[i] = r.wall_ms;
    if (i == 0) {
      base = r;
    } else if (r.digests != base.digests || r.events != base.events ||
               r.frontier_published != base.frontier_published) {
      digests_match = false;
    }
    std::printf("  threads %zu: %8.1f ms wall  %llu events  %llu windows  speedup %.2fx\n",
                kThreadCounts[i], r.wall_ms, static_cast<unsigned long long>(r.events),
                static_cast<unsigned long long>(r.windows),
                r.wall_ms > 0 ? wall_ms[0] / r.wall_ms : 0.0);
  }

  if (!digests_match) {
    std::fprintf(stderr,
                 "FAIL: per-group digests or event counts changed with the thread "
                 "count — the conservative engine must be bit-reproducible\n");
    return 1;
  }
  const double speedup4 = wall_ms[2] > 0 ? wall_ms[0] / wall_ms[2] : 0.0;
  if (hw >= 4 && speedup4 < 2.0) {
    std::fprintf(stderr,
                 "FAIL: 4 threads gave only %.2fx over 1 thread on a %u-way host "
                 "(want >= 2x on the 64-group workload)\n",
                 speedup4, hw);
    return 1;
  }
  if (hw < 4) {
    std::printf("  (host has %u hardware threads: speedup gate skipped, digests still checked)\n",
                hw);
  }

  bench::JsonMetrics out("parallel");
  out.add("groups_deterministic", static_cast<double>(kGroups));
  out.add("windows_deterministic", static_cast<double>(base.windows));
  out.add("events_total_deterministic", static_cast<double>(base.events));
  out.add("frontier_records_deterministic", static_cast<double>(base.frontier_published));
  out.add("digest_match_deterministic", digests_match ? 1.0 : 0.0);
  out.add("wall_ms_t1", wall_ms[0]);
  out.add("wall_ms_t2", wall_ms[1]);
  out.add("wall_ms_t4", wall_ms[2]);
  out.add("wall_ms_t8", wall_ms[3]);
  out.add("speedup_t4", speedup4);
  out.write(out_path);
  return 0;
}
