// recovery_scale — durability subsystem scaling baseline.
//
// Two sweeps, both oracle-checked in-binary and recorded into
// BENCH_recovery.json:
//
//   * replay cost vs WAL length: the same workload run at different
//     checkpoint budgets, then crash-restarted.  The WAL record count a
//     recovery replays is a pure function of (seed, checkpoint_every) —
//     recorded with the `_deterministic` suffix so tools/bench_report
//     gates it with --stable-only.  Replay wall-clock per sweep point is
//     informational (replay_ms_*): useful on a quiet machine, far too
//     jittery to gate on shared CI runners.
//
//   * incremental vs full resync size vs object count: a mixed workload
//     (4 hot objects, the rest cold) crash-restarts its backup inside
//     the cold quiet window.  The kStateDelta entry count must stay at
//     the dirty-set size (the 4 hot objects) no matter how many cold
//     objects the table holds — that flatness IS the incremental-rejoin
//     claim, so the binary exits non-zero if it ever tracks the table
//     size.  The full-transfer fallback (wiped devices) is measured at
//     the same points as the comparison series.
//
// Usage: recovery_scale [output.json]   (default BENCH_recovery.json)
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "common/harness.hpp"
#include "store/device.hpp"

namespace {

using namespace rtpb;

core::ObjectSpec bench_spec(core::ObjectId id, Duration client_period, Duration delta_p,
                            Duration delta_b) {
  core::ObjectSpec s;
  s.id = id;
  s.name = "obj" + std::to_string(id);
  s.size_bytes = 64;
  s.client_period = client_period;
  s.client_exec = micros(200);
  s.update_exec = micros(200);
  s.delta_primary = delta_p;
  s.delta_backup = delta_b;
  return s;
}

core::ServiceParams bench_params(std::uint64_t seed) {
  core::ServiceParams p;
  p.seed = seed;
  p.link.propagation = millis(1);
  p.link.jitter = micros(200);
  p.durable = true;
  return p;
}

constexpr std::size_t kHotObjects = 4;

/// Hot objects write every 10 ms; cold ones every 30 s — i.e. exactly
/// once, at registration, within these runs — so an outage dirties the
/// hot set and nothing else, at every table size.  The cold window is
/// kept tight (31 s − 30 s = 1 s) because the assigned transmission
/// period derives from the window, not the client period: ~0.5 s here,
/// so the one cold version is on the backup long before the crash.
void register_mixed(core::RtpbService& service, std::size_t objects) {
  for (std::size_t i = 0; i < objects; ++i) {
    const auto id = static_cast<core::ObjectId>(i + 1);
    const core::ObjectSpec spec =
        i < kHotObjects ? bench_spec(id, millis(10), millis(20), millis(100))
                        : bench_spec(id, seconds(30), seconds(30), seconds(31));
    if (!service.register_object(spec).ok()) {
      std::fprintf(stderr, "FAIL: object %u not admitted\n", id);
      std::exit(1);
    }
  }
}

double wall_ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
      .count();
}

struct ReplayPoint {
  std::uint64_t wal_tail_bytes = 0;  ///< log length at the crash (post-truncation)
  std::uint64_t checkpoints = 0;
  double replay_ms = 0.0;
};

/// Run 8 objects for 4 s at the given checkpoint budget, crash the
/// primary, and time its recovery (checkpoint load + WAL tail replay).
ReplayPoint replay_point(std::size_t checkpoint_every) {
  core::ServiceParams p = bench_params(17);
  p.checkpoint_every = checkpoint_every;
  core::RtpbService service(p);
  service.start();
  register_mixed(service, 8);
  service.run_for(seconds(4));

  ReplayPoint out;
  // Device size, not the lifetime append counter: checkpoints truncate
  // the log, and the truncated length is what a recovery replays.
  out.wal_tail_bytes = service.wal_device(0)->size();
  out.checkpoints = service.primary().durable()->checkpoints();

  service.crash_primary();
  service.run_for(millis(100));
  const auto start = std::chrono::steady_clock::now();
  service.restart_primary();
  out.replay_ms = wall_ms_since(start);
  if (service.primary().recoveries() != 1 || service.primary().recovery_lost_updates() != 0) {
    std::fprintf(stderr, "FAIL: cp=%zu lost %llu acked update(s) across restart\n",
                 checkpoint_every,
                 static_cast<unsigned long long>(service.primary().recovery_lost_updates()));
    std::exit(1);
  }
  return out;
}

struct ResyncPoint {
  std::uint64_t delta_entries = 0;   ///< incremental rejoin payload
  std::uint64_t full_entries = 0;    ///< full-transfer fallback payload
  std::uint64_t lost = 0;
};

/// Crash-restart the backup inside the cold quiet window; once with its
/// durable image intact (incremental path), once with wiped devices
/// (full-transfer fallback).
ResyncPoint resync_point(std::size_t objects, bool wipe) {
  core::RtpbService service(bench_params(23));
  service.start();
  register_mixed(service, objects);
  service.run_for(seconds(8));

  service.crash_backup();
  service.run_for(millis(600));
  if (wipe) {
    service.wal_device(1)->truncate();
    service.checkpoint_device(1)->truncate();
  }
  service.restart_backup(0);
  service.run_for(millis(1500));

  ResyncPoint out;
  out.delta_entries = service.primary().delta_entries_sent();
  out.full_entries = wipe ? service.backup().store().size() : 0;
  out.lost = service.backup().recovery_lost_updates();
  const bool path_ok = wipe ? service.primary().resync_fulls_sent() == 1
                            : service.primary().resync_deltas_sent() == 1;
  // Wiping the devices destroys acked state by construction — that run
  // exists to measure the full-transfer fallback, not the no-loss oracle.
  if (!path_ok || (!wipe && out.lost != 0)) {
    std::fprintf(stderr, "FAIL: objects=%zu wipe=%d took the wrong resync path or lost data\n",
                 objects, wipe ? 1 : 0);
    std::exit(1);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_recovery.json";
  rtpb::bench::banner("durability & crash recovery",
                      "WAL replay is bounded by the checkpoint budget; "
                      "incremental rejoin is O(dirty objects), not O(table)");

  rtpb::bench::JsonMetrics json("recovery");

  // ---- replay cost vs WAL length -------------------------------------
  std::printf("%-18s %16s %12s %10s\n", "checkpoint_every", "wal_tail_bytes",
              "checkpoints", "replay_ms");
  constexpr std::size_t kNoCheckpoints = 1u << 30;
  std::uint64_t tail_unbounded = 0;
  std::uint64_t tail_tight = ~0ull;
  for (const std::size_t cp : {std::size_t{16}, std::size_t{64}, std::size_t{256},
                               kNoCheckpoints}) {
    const ReplayPoint r = replay_point(cp);
    const std::string tag = cp == kNoCheckpoints ? "off" : std::to_string(cp);
    std::printf("%-18s %16llu %12llu %10.3f\n", tag.c_str(),
                static_cast<unsigned long long>(r.wal_tail_bytes),
                static_cast<unsigned long long>(r.checkpoints), r.replay_ms);
    json.add("wal_tail_bytes_cp" + tag + "_deterministic",
             static_cast<double>(r.wal_tail_bytes));
    json.add("checkpoints_cp" + tag + "_deterministic", static_cast<double>(r.checkpoints));
    json.add("replay_ms_cp" + tag, r.replay_ms);
    if (cp == kNoCheckpoints) tail_unbounded = r.wal_tail_bytes;
    if (cp == 16) tail_tight = r.wal_tail_bytes;
  }
  // Checkpoints truncate the log: the tight budget must keep the replayed
  // tail well under the checkpoint-free run's full history.
  if (tail_tight * 4 >= tail_unbounded) {
    std::fprintf(stderr, "FAIL: checkpointing did not shorten the WAL (%llu vs %llu)\n",
                 static_cast<unsigned long long>(tail_tight),
                 static_cast<unsigned long long>(tail_unbounded));
    return 1;
  }

  // ---- incremental vs full resync vs table size ----------------------
  std::printf("\n%-10s %14s %13s\n", "objects", "delta_entries", "full_entries");
  for (const std::size_t objects : {std::size_t{16}, std::size_t{64}, std::size_t{256}}) {
    const ResyncPoint inc = resync_point(objects, /*wipe=*/false);
    const ResyncPoint full = resync_point(objects, /*wipe=*/true);
    std::printf("%-10zu %14llu %13llu\n", objects,
                static_cast<unsigned long long>(inc.delta_entries),
                static_cast<unsigned long long>(full.full_entries));
    const std::string tag = "o" + std::to_string(objects);
    json.add("delta_entries_" + tag + "_deterministic",
             static_cast<double>(inc.delta_entries));
    json.add("full_entries_" + tag + "_deterministic",
             static_cast<double>(full.full_entries));
    // The load-bearing claim: the incremental payload tracks the dirty
    // set (the hot objects), not the table.
    if (inc.delta_entries != kHotObjects) {
      std::fprintf(stderr, "FAIL: delta carried %llu entries at %zu objects (want %zu)\n",
                   static_cast<unsigned long long>(inc.delta_entries), objects, kHotObjects);
      return 1;
    }
    if (full.full_entries != objects) {
      std::fprintf(stderr, "FAIL: full fallback carried %llu entries at %zu objects\n",
                   static_cast<unsigned long long>(full.full_entries), objects);
      return 1;
    }
  }

  json.add("lost_updates_deterministic", 0.0);
  if (!json.write(out_path)) return 1;
  std::printf("\nwrote %s\n", out_path.c_str());
  return 0;
}
