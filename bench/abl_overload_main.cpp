// Ablation: graceful degradation under a mid-run bandwidth throttle.
//
// Four cells cross the two PR-5 mechanisms — slack-aware shedding + QoS
// renegotiation (degradation_enabled) and Jacobson-RTO ack deadlines
// (adaptive_timeouts) — over the same scenario: steady state, then the
// replication link squeezed to 1% of its bandwidth for 2.5 s, then healed.
// In ack-every-update mode a fixed two-period deadline fires long before
// a congested link can deliver the ack, so the fixed cells retransmit
// into the very queue that is already the bottleneck; the adaptive cells
// stretch the deadline with the measured RTO instead.  The bench asserts
// the headline claims: with shedding off, adaptive sends measurably
// fewer retransmission frames than fixed; with shedding on, the QoS
// downgrade lengthens the transmission periods until the throttled link
// can carry the stream (so BOTH timeout arms quiesce — adaptive must
// never exceed fixed) and total inconsistency drops well below the
// no-degradation cells.  Every cell is seed-reproducible (each runs
// twice; trace digests must match — the digest_hi19 column is the top
// 19 bits of the digest, chosen to survive the %.6g JSON serialisation
// exactly so the baseline gate can compare it).
#include <cstdint>
#include <cstdio>
#include <cstdlib>

#include "common/harness.hpp"

namespace {

using namespace rtpb;

struct CellResult {
  std::size_t accepted = 0;
  std::uint64_t updates_sent = 0;
  std::uint64_t retransmissions = 0;
  std::uint64_t shed = 0;
  std::uint64_t downgrades = 0;
  std::uint64_t restores = 0;
  double incons_ms = 0.0;
  std::uint64_t intervals = 0;
  std::uint64_t digest = 0;
};

CellResult run_cell(bool shedding, bool adaptive, std::uint64_t seed) {
  core::ServiceParams params;
  params.seed = seed;
  params.link.propagation = millis(1);
  params.link.jitter = micros(200);
  params.config.ack_every_update = true;  // the retransmission path under test
  params.config.degradation_enabled = shedding;
  params.config.adaptive_timeouts = adaptive;
  // Isolate the ack-deadline mechanism: backup-side watchdog NACKs would
  // add identical retransmissions to both arms, and false failure
  // declarations during the squeeze would collapse the topology under
  // test (failover is a different bench's axis).
  params.config.watchdog_factor = 1000000;
  params.config.ping_max_misses = 1000000;

  core::RtpbService service(params);
  service.simulator().trace().enable();
  service.start();

  CellResult result;
  for (core::ObjectId id = 1; id <= 5; ++id) {
    core::ObjectSpec object;
    object.id = id;
    object.name = "obj" + std::to_string(id);
    object.size_bytes = 200;
    object.client_period = millis(10);
    object.client_exec = micros(200);
    object.update_exec = micros(200);
    object.delta_primary = millis(20);
    object.delta_backup = millis(100);
    if (service.register_object(object).ok()) ++result.accepted;
  }

  const net::NodeId p = service.primary().node();
  const net::NodeId b = service.backup().node();
  const double full_bps = service.network().link_params(p, b)->bandwidth_bps;

  service.warm_up(seconds(1));
  service.run_for(seconds(1));                       // steady state
  service.network().set_bandwidth(p, b, full_bps * 0.01);
  service.run_for(millis(2500));                     // the squeeze
  service.network().set_bandwidth(p, b, full_bps);
  service.run_for(millis(1500));                     // recovery
  service.finish();

  result.updates_sent = service.primary().updates_sent();
  result.retransmissions = service.primary().retransmissions_served();
  result.shed = service.primary().updates_shed();
  result.downgrades = service.primary().qos_downgrades_sent();
  result.restores = service.primary().qos_restores_sent();
  result.incons_ms = service.metrics().total_inconsistency().millis();
  result.intervals = service.metrics().inconsistency_intervals();
  result.digest = service.simulator().trace().digest();
  return result;
}

}  // namespace

int main() {
  using namespace rtpb;

  bench::banner(
      "Ablation — graceful degradation under a bandwidth throttle",
      "Mid-run the replication link drops to 1% bandwidth for 2.5 s.  "
      "Fixed ack deadlines retransmit into the congested queue; adaptive "
      "(Jacobson RTO) deadlines stretch with the measured lag, so with "
      "shedding off adapt=1 must send measurably fewer retransmission "
      "frames than adapt=0.  shed=1 sheds stale staged updates and "
      "renegotiates windows (downgrades > 0): the loosened windows slow "
      "the stream to what the link can carry, quiescing retransmissions "
      "in both timeout arms and cutting total inconsistency well below "
      "the shed=0 cells.  Each cell runs twice; differing trace digests "
      "fail the bench.");

  // First column must be unique per row: the JSON export keys every cell
  // as "<col0>=<v0>.<col>", so rows sharing col0 would collide.
  bench::Table table({"cell", "shed", "adapt", "admitted", "upd_sent",
                      "retrans", "shed_drops", "downgrades", "restores",
                      "incons_ms", "digest_hi19"});
  table.set_name("abl_overload");

  constexpr std::uint64_t kSeed = 7;
  CellResult cells[2][2];
  bool reproducible = true;
  for (int shed = 0; shed <= 1; ++shed) {
    for (int adapt = 0; adapt <= 1; ++adapt) {
      const CellResult once = run_cell(shed != 0, adapt != 0, kSeed);
      const CellResult again = run_cell(shed != 0, adapt != 0, kSeed);
      if (once.digest != again.digest) {
        std::fprintf(stderr,
                     "FAIL: cell shed=%d adapt=%d not seed-reproducible "
                     "(digest %016llx vs %016llx)\n",
                     shed, adapt, static_cast<unsigned long long>(once.digest),
                     static_cast<unsigned long long>(again.digest));
        reproducible = false;
      }
      cells[shed][adapt] = once;
      table.add_row({static_cast<double>(shed * 2 + adapt),
                     static_cast<double>(shed), static_cast<double>(adapt),
                     static_cast<double>(once.accepted),
                     static_cast<double>(once.updates_sent),
                     static_cast<double>(once.retransmissions),
                     static_cast<double>(once.shed),
                     static_cast<double>(once.downgrades),
                     static_cast<double>(once.restores), once.incons_ms,
                     static_cast<double>(once.digest >> 45)});
    }
  }
  table.print();

  bool ok = reproducible;
  // Headline: adaptive deadlines must measurably beat fixed ones (less
  // than half the retransmissions) when nothing else relieves the link.
  if (cells[0][1].retransmissions * 2 >= cells[0][0].retransmissions) {
    std::fprintf(stderr,
                 "FAIL: adaptive retransmissions (%llu) not measurably below "
                 "fixed (%llu)\n",
                 static_cast<unsigned long long>(cells[0][1].retransmissions),
                 static_cast<unsigned long long>(cells[0][0].retransmissions));
    ok = false;
  }
  // With shedding on, renegotiation slows the stream instead; adaptive
  // must never be worse than fixed.
  if (cells[1][1].retransmissions > cells[1][0].retransmissions) {
    std::fprintf(stderr,
                 "FAIL: shed=1 adaptive retransmissions (%llu) exceed fixed "
                 "(%llu)\n",
                 static_cast<unsigned long long>(cells[1][1].retransmissions),
                 static_cast<unsigned long long>(cells[1][0].retransmissions));
    ok = false;
  }
  for (int adapt = 0; adapt <= 1; ++adapt) {
    if (cells[1][adapt].downgrades == 0) {
      std::fprintf(stderr,
                   "FAIL: shed=1 adapt=%d never renegotiated QoS under throttle\n",
                   adapt);
      ok = false;
    }
    if (cells[1][adapt].incons_ms >= cells[0][adapt].incons_ms) {
      std::fprintf(stderr,
                   "FAIL: degradation did not reduce inconsistency "
                   "(shed=1 %0.1f ms vs shed=0 %0.1f ms, adapt=%d)\n",
                   cells[1][adapt].incons_ms, cells[0][adapt].incons_ms, adapt);
      ok = false;
    }
  }
  if (!ok) return 1;
  std::printf("adaptive < fixed retransmissions with shedding off; "
              "renegotiation quiesces the link and cuts inconsistency with "
              "shedding on; all cells seed-reproducible\n");
  return 0;
}
