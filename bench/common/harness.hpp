// Shared harness for the figure-reproduction benches: a standard workload
// factory, a one-shot experiment runner, and aligned table printing.
// Every bench binary sweeps one experiment axis and prints the series the
// corresponding paper figure plots.
#pragma once

#include <string>
#include <vector>

#include "core/rtpb.hpp"

namespace rtpb::bench {

/// One experiment cell: a fully-specified service + workload.
struct ExperimentSpec {
  std::uint64_t seed = 1;

  // Workload.
  std::size_t objects = 5;
  Duration client_period = millis(10);
  Duration client_exec = micros(200);
  Duration update_exec = millis(1);
  Duration delta_primary = millis(20);  ///< δ_iP; δ_iB = δ_iP + window
  Duration window = millis(80);

  // Faults.
  double update_loss = 0.0;

  // Service configuration.
  bool admission_control = true;
  core::UpdateScheduling scheduling = core::UpdateScheduling::kNormal;
  sched::Policy policy = sched::Policy::kFifo;  ///< IPC-queue service model
  double compressed_target_utilization = 0.5;

  // Run length.
  Duration warmup = seconds(1);
  Duration duration = seconds(10);
};

/// Aggregated outcome of one experiment cell.
struct RunResult {
  std::size_t accepted = 0;
  double mean_response_ms = 0.0;
  double p90_response_ms = 0.0;
  double avg_max_distance_ms = 0.0;
  double avg_max_excess_distance_ms = 0.0;
  double mean_inconsistency_ms = 0.0;
  double total_inconsistency_ms = 0.0;
  std::uint64_t violations = 0;
  std::uint64_t updates_sent = 0;
  std::uint64_t retransmissions = 0;
  std::uint64_t nacks = 0;
  std::uint64_t deadline_misses = 0;
};

/// Build the service, register `spec.objects` objects, run, and collect.
[[nodiscard]] RunResult run_experiment(const ExperimentSpec& spec);

/// Run `replications` seeds (spec.seed, +1000, +2000, …) and average the
/// scalar metrics — the stochastic figures (8, 11, 12) report these.
[[nodiscard]] RunResult run_experiment_avg(ExperimentSpec spec, std::size_t replications = 3);

/// Flat machine-readable metrics: an ordered key→value list serialised as
///   {"name": "...", "metrics": {"key": value, ...}}
/// This is the `BENCH_*.json` format tools/bench_report compares across
/// builds; keep keys stable so baselines stay comparable.
class JsonMetrics {
 public:
  explicit JsonMetrics(std::string name) : name_(std::move(name)) {}
  void add(std::string key, double value) { metrics_.emplace_back(std::move(key), value); }
  /// Write to `path`; returns false (and prints a warning) on I/O failure.
  bool write(const std::string& path) const;

 private:
  std::string name_;
  std::vector<std::pair<std::string, double>> metrics_;
};

/// Column-aligned table printing.
class Table {
 public:
  explicit Table(std::vector<std::string> columns) : columns_(std::move(columns)) {}
  /// Name the sweep for machine-readable export (see print()).
  void set_name(std::string name) { name_ = std::move(name); }
  void add_row(std::vector<double> row) { rows_.push_back(std::move(row)); }
  /// Prints the table; additionally, when RTPB_BENCH_JSON=<path> is set,
  /// writes the rows as JsonMetrics keyed "<col0>=<v0>.<col>" per cell.
  void print() const;

 private:
  std::string name_ = "bench";
  std::vector<std::string> columns_;
  std::vector<std::vector<double>> rows_;
};

/// Standard bench banner: what figure this reproduces and what to look for.
void banner(const std::string& figure, const std::string& claim);

}  // namespace rtpb::bench
