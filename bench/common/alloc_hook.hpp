// Allocation-counting hook for the wire-path benches.
//
// alloc_hook.cpp replaces the global operator new/delete with counting
// versions, so any binary that links it can measure allocations-per-
// operation with zero instrumentation in the code under test.  Because
// replacing the global allocator affects the whole binary, the hook is
// linked ONLY into dedicated bench executables (wirepath_bench), never
// into the library, the tests, or the figure benches.
#pragma once

#include <cstdint>

namespace rtpb::bench::alloc_hook {

/// Total allocations / bytes since process start (monotonic).
[[nodiscard]] std::uint64_t count();
[[nodiscard]] std::uint64_t bytes();

/// Snapshot-based counter: construct, run the code under test, read off
/// the deltas.  No reset of the global counters, so scopes may nest.
class Scope {
 public:
  Scope() : count0_(count()), bytes0_(bytes()) {}
  [[nodiscard]] std::uint64_t allocations() const { return count() - count0_; }
  [[nodiscard]] std::uint64_t allocated_bytes() const { return bytes() - bytes0_; }

 private:
  std::uint64_t count0_;
  std::uint64_t bytes0_;
};

}  // namespace rtpb::bench::alloc_hook
