// Global operator new/delete replacement that counts every allocation.
// Link into a bench binary to give alloc_hook::Scope real numbers.
#include "common/alloc_hook.hpp"

#include <atomic>
#include <cstdlib>
#include <new>

namespace {

std::atomic<std::uint64_t> g_count{0};
std::atomic<std::uint64_t> g_bytes{0};

void* counted(std::size_t size) {
  g_count.fetch_add(1, std::memory_order_relaxed);
  g_bytes.fetch_add(size, std::memory_order_relaxed);
  if (void* p = std::malloc(size != 0 ? size : 1)) return p;
  throw std::bad_alloc{};
}

void* counted_aligned(std::size_t size, std::align_val_t align) {
  g_count.fetch_add(1, std::memory_order_relaxed);
  g_bytes.fetch_add(size, std::memory_order_relaxed);
  void* p = nullptr;
  const auto al = static_cast<std::size_t>(align);
  if (posix_memalign(&p, al < sizeof(void*) ? sizeof(void*) : al,
                     size != 0 ? size : 1) != 0) {
    throw std::bad_alloc{};
  }
  return p;
}

}  // namespace

namespace rtpb::bench::alloc_hook {

std::uint64_t count() { return g_count.load(std::memory_order_relaxed); }
std::uint64_t bytes() { return g_bytes.load(std::memory_order_relaxed); }

}  // namespace rtpb::bench::alloc_hook

void* operator new(std::size_t size) { return counted(size); }
void* operator new[](std::size_t size) { return counted(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  return counted_aligned(size, align);
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return counted_aligned(size, align);
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_count.fetch_add(1, std::memory_order_relaxed);
  g_bytes.fetch_add(size, std::memory_order_relaxed);
  return std::malloc(size != 0 ? size : 1);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  g_count.fetch_add(1, std::memory_order_relaxed);
  g_bytes.fetch_add(size, std::memory_order_relaxed);
  return std::malloc(size != 0 ? size : 1);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }
