#include "common/harness.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>

#include "telemetry/export.hpp"

namespace rtpb::bench {

RunResult run_experiment(const ExperimentSpec& spec) {
  core::ServiceParams params;
  params.seed = spec.seed;
  params.link.propagation = millis(1);
  params.link.jitter = micros(200);
  params.config.cpu_policy = spec.policy;
  params.config.update_scheduling = spec.scheduling;
  params.config.compressed_target_utilization = spec.compressed_target_utilization;
  params.config.update_loss_probability = spec.update_loss;
  params.config.admission_control_enabled = spec.admission_control;

  core::RtpbService service(params);
  // RTPB_TRACE_OUT / RTPB_TRACE_JSONL export a causal trace of the run
  // (Chrome trace-event JSON / trace_inspect input).  Each experiment cell
  // overwrites the file, so the export left behind is the LAST cell of the
  // sweep — run a single-cell bench (or pick the cell you want last) when
  // tracing.  Telemetry stays off otherwise; results are unaffected either
  // way since the hub never perturbs the simulation.
  const char* trace_json = std::getenv("RTPB_TRACE_OUT");
  const char* trace_jsonl = std::getenv("RTPB_TRACE_JSONL");
  if (trace_json != nullptr || trace_jsonl != nullptr) {
    service.simulator().telemetry().enable();
  }
  service.start();

  RunResult result;
  for (core::ObjectId id = 1; id <= spec.objects; ++id) {
    core::ObjectSpec object;
    object.id = id;
    object.name = "obj" + std::to_string(id);
    object.size_bytes = 64;
    object.client_period = spec.client_period;
    object.client_exec = spec.client_exec;
    object.update_exec = spec.update_exec;
    object.delta_primary = spec.delta_primary;
    object.delta_backup = spec.delta_primary + spec.window;
    if (service.register_object(object).ok()) ++result.accepted;
  }

  service.warm_up(spec.warmup);
  service.run_for(spec.duration);
  service.finish();

  if (trace_json != nullptr) {
    if (std::ofstream out(trace_json); out) {
      telemetry::write_chrome_trace(service.simulator().telemetry(), out);
    }
  }
  if (trace_jsonl != nullptr) {
    if (std::ofstream out(trace_jsonl); out) {
      telemetry::write_jsonl(service.simulator().telemetry(), out);
    }
  }

  const core::Metrics& m = service.metrics();
  result.mean_response_ms = m.response_times().mean();
  result.p90_response_ms = m.response_times().quantile(0.9);
  result.avg_max_distance_ms = m.average_max_distance_ms();
  result.avg_max_excess_distance_ms = m.average_max_excess_distance_ms();
  result.mean_inconsistency_ms = m.mean_inconsistency_duration_ms();
  result.total_inconsistency_ms = m.total_inconsistency().millis();
  result.violations = m.inconsistency_intervals();
  result.updates_sent = service.primary().updates_sent();
  result.retransmissions = service.primary().retransmissions_served();
  result.nacks = service.backup().retransmit_requests_sent();
  result.deadline_misses = service.primary().cpu().deadline_misses();
  return result;
}

RunResult run_experiment_avg(ExperimentSpec spec, std::size_t replications) {
  RunResult sum;
  for (std::size_t i = 0; i < replications; ++i) {
    const RunResult r = run_experiment(spec);
    sum.accepted += r.accepted;
    sum.mean_response_ms += r.mean_response_ms;
    sum.p90_response_ms += r.p90_response_ms;
    sum.avg_max_distance_ms += r.avg_max_distance_ms;
    sum.avg_max_excess_distance_ms += r.avg_max_excess_distance_ms;
    sum.mean_inconsistency_ms += r.mean_inconsistency_ms;
    sum.total_inconsistency_ms += r.total_inconsistency_ms;
    sum.violations += r.violations;
    sum.updates_sent += r.updates_sent;
    sum.retransmissions += r.retransmissions;
    sum.nacks += r.nacks;
    sum.deadline_misses += r.deadline_misses;
    spec.seed += 1000;
  }
  const auto n = static_cast<double>(replications);
  sum.accepted = static_cast<std::size_t>(static_cast<double>(sum.accepted) / n + 0.5);
  sum.mean_response_ms /= n;
  sum.p90_response_ms /= n;
  sum.avg_max_distance_ms /= n;
  sum.avg_max_excess_distance_ms /= n;
  sum.mean_inconsistency_ms /= n;
  sum.total_inconsistency_ms /= n;
  sum.violations = static_cast<std::uint64_t>(static_cast<double>(sum.violations) / n + 0.5);
  sum.updates_sent = static_cast<std::uint64_t>(static_cast<double>(sum.updates_sent) / n + 0.5);
  sum.retransmissions =
      static_cast<std::uint64_t>(static_cast<double>(sum.retransmissions) / n + 0.5);
  sum.nacks = static_cast<std::uint64_t>(static_cast<double>(sum.nacks) / n + 0.5);
  sum.deadline_misses =
      static_cast<std::uint64_t>(static_cast<double>(sum.deadline_misses) / n + 0.5);
  return sum;
}

namespace {

// %.6g without locale surprises; JSON has no Inf/NaN, map those to null.
void append_json_number(std::string& out, double v) {
  if (v != v || v == std::numeric_limits<double>::infinity() ||
      v == -std::numeric_limits<double>::infinity()) {
    out += "null";
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  out += buf;
}

}  // namespace

bool JsonMetrics::write(const std::string& path) const {
  std::string out = "{\n  \"name\": \"" + name_ + "\",\n  \"metrics\": {\n";
  for (std::size_t i = 0; i < metrics_.size(); ++i) {
    out += "    \"" + metrics_[i].first + "\": ";
    append_json_number(out, metrics_[i].second);
    out += i + 1 < metrics_.size() ? ",\n" : "\n";
  }
  out += "  }\n}\n";
  std::ofstream f(path);
  if (!f || !(f << out)) {
    std::fprintf(stderr, "warning: could not write bench JSON to %s\n", path.c_str());
    return false;
  }
  std::printf("wrote %s\n", path.c_str());
  return true;
}

void Table::print() const {
  // RTPB_BENCH_JSON=<path> additionally dumps the table for bench_report:
  // each cell becomes "<col0>=<row value of col0>.<col>".
  if (const char* json = std::getenv("RTPB_BENCH_JSON"); json != nullptr && json[0] != '\0') {
    JsonMetrics metrics(name_);
    for (const auto& row : rows_) {
      if (row.empty()) continue;
      char rowkey[64];
      std::snprintf(rowkey, sizeof(rowkey), "%s=%.6g", columns_[0].c_str(), row[0]);
      for (std::size_t i = 1; i < row.size() && i < columns_.size(); ++i) {
        metrics.add(std::string(rowkey) + "." + columns_[i], row[i]);
      }
    }
    metrics.write(json);
  }
  // RTPB_BENCH_CSV=1 switches to machine-readable output for plotting.
  if (const char* csv = std::getenv("RTPB_BENCH_CSV"); csv != nullptr && csv[0] == '1') {
    for (std::size_t i = 0; i < columns_.size(); ++i) {
      std::printf("%s%s", i ? "," : "", columns_[i].c_str());
    }
    std::printf("\n");
    for (const auto& row : rows_) {
      for (std::size_t i = 0; i < row.size(); ++i) {
        std::printf("%s%.6g", i ? "," : "", row[i]);
      }
      std::printf("\n");
    }
    return;
  }
  for (const auto& col : columns_) std::printf("%14s", col.c_str());
  std::printf("\n");
  for (const auto& col : columns_) {
    (void)col;
    std::printf("%14s", "------------");
  }
  std::printf("\n");
  for (const auto& row : rows_) {
    for (double v : row) {
      if (v == static_cast<double>(static_cast<long long>(v)) && std::abs(v) < 1e15) {
        std::printf("%14lld", static_cast<long long>(v));
      } else {
        std::printf("%14.3f", v);
      }
    }
    std::printf("\n");
  }
}

void banner(const std::string& figure, const std::string& claim) {
  std::printf("==============================================================================\n");
  std::printf("%s\n", figure.c_str());
  std::printf("paper's claim: %s\n", claim.c_str());
  std::printf("==============================================================================\n");
}

}  // namespace rtpb::bench
