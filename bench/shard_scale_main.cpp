// shard_scale — the sharded scale-out baseline recorder.
//
// Measures the three costs the shard layer exists to bound and writes the
// flat BENCH_shard.json that tools/bench_report gates future PRs against:
//
//   1. directory + per-shard admission at scale: 1,000,000 registrations
//      across 64 shards, timed per decile.  The last decile must not cost
//      more than 3x the first (the running-aggregate admission check is
//      amortised O(1); only the std::map inserts grow, logarithmically),
//      and allocations per registration are recorded.
//   2. frontier maintenance: steady-state FrontierTracker::advance() over
//      a large tracked set must be allocation-free (asserted == 0) and
//      O(1) — the cached-argmin slot design.
//   3. a live ShardCluster frontier exchange: groups actually send and
//      receive kFrontier frames over the simulated wire, and every group
//      ends up observing every remote shard's frontier.
//
// This binary links bench/common/alloc_hook.cpp, which REPLACES the global
// operator new/delete — that is why it is excluded from the *_main.cpp
// glob (see bench/CMakeLists.txt).
//
// Usage: shard_scale [output.json]   (default BENCH_shard.json)
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "common/alloc_hook.hpp"
#include "common/harness.hpp"
#include "shard/admission.hpp"
#include "shard/cluster.hpp"
#include "shard/directory.hpp"
#include "shard/frontier.hpp"

namespace {

using namespace rtpb;
using bench::alloc_hook::Scope;

volatile std::int64_t g_sink = 0;  // defeats dead-code elimination

double now_ns() {
  return static_cast<double>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                 std::chrono::steady_clock::now().time_since_epoch())
                                 .count());
}

/// A registration light enough that 1M of them fit the per-shard RM bound:
/// ~1e-5 utilisation each, so 1M/64 ≈ 15.6k objects per shard sum to ~0.16.
core::ObjectSpec light_spec(core::ObjectId id) {
  core::ObjectSpec spec;
  spec.id = id;
  spec.client_period = millis(100);
  spec.client_exec = micros(1);
  spec.update_exec = micros(1);
  spec.size_bytes = 64;
  spec.delta_primary = millis(200);
  spec.delta_backup = spec.delta_primary + seconds(10);
  return spec;
}

void registration_scale(bench::JsonMetrics& out) {
  constexpr std::size_t kObjects = 1'000'000;
  constexpr shard::ShardId kShards = 64;
  constexpr std::size_t kDecile = kObjects / 10;

  std::printf("-- 1M registrations across %u shards --\n", kShards);
  const shard::ShardDirectory directory(kShards, 1);
  shard::ShardedAdmission admission(directory, core::ServiceConfig{}, millis(2));

  double decile_ns[10] = {};
  Scope scope;
  for (std::size_t d = 0; d < 10; ++d) {
    const double t0 = now_ns();
    for (std::size_t i = 0; i < kDecile; ++i) {
      const auto id = static_cast<core::ObjectId>(d * kDecile + i + 1);
      if (admission.admit(light_spec(id)).ok()) g_sink = g_sink + 1;
    }
    decile_ns[d] = (now_ns() - t0) / static_cast<double>(kDecile);
  }
  const double allocs_per_reg =
      static_cast<double>(scope.allocations()) / static_cast<double>(kObjects);

  const std::size_t admitted = admission.admitted_count();
  const double ratio = decile_ns[9] / decile_ns[0];
  std::printf("  admitted %zu/%zu  first decile %.0f ns/reg  last %.0f ns/reg  "
              "ratio %.2f  allocs/reg %.2f\n",
              admitted, kObjects, decile_ns[0], decile_ns[9], ratio, allocs_per_reg);
  if (admitted != kObjects) {
    std::fprintf(stderr, "FAIL: only %zu of %zu light registrations admitted\n", admitted,
                 kObjects);
    std::exit(1);
  }
  if (ratio > 3.0) {
    std::fprintf(stderr,
                 "FAIL: last registration decile cost %.2fx the first (want <= 3x: "
                 "the admission check is amortised O(1), only map inserts may grow)\n",
                 ratio);
    std::exit(1);
  }

  out.add("reg_admitted", static_cast<double>(admitted));
  out.add("reg_first_decile_ns", decile_ns[0]);
  out.add("reg_last_decile_ns", decile_ns[9]);
  out.add("reg_decile_ratio", ratio);
  out.add("reg_allocs_per_registration", allocs_per_reg);
}

void frontier_scale(bench::JsonMetrics& out) {
  constexpr std::size_t kTracked = 100'000;
  constexpr std::size_t kAdvances = 1'000'000;

  std::printf("-- frontier advance over %zu tracked objects --\n", kTracked);
  shard::FrontierTracker tracker;
  for (std::size_t i = 0; i < kTracked; ++i) {
    tracker.track(static_cast<core::ObjectId>(i + 1), TimePoint::zero());
  }
  // Warm one full round so the lazily cached argmin is established.
  for (std::size_t i = 0; i < kTracked; ++i) {
    tracker.advance(static_cast<core::ObjectId>(i + 1), TimePoint{1});
  }

  Scope scope;
  const double t0 = now_ns();
  std::int64_t stamp = 2;
  for (std::size_t i = 0; i < kAdvances; ++i) {
    const auto id = static_cast<core::ObjectId>(i % kTracked + 1);
    tracker.advance(id, TimePoint{stamp});
    if (id == kTracked) {  // one frontier query per completed round
      g_sink = g_sink + tracker.frontier().nanos();
      ++stamp;
    }
  }
  const double per = (now_ns() - t0) / static_cast<double>(kAdvances);
  const auto allocs = static_cast<double>(scope.allocations());
  std::printf("  %.1f ns/advance  %.0f allocations total\n", per, allocs);
  if (allocs > 0) {
    std::fprintf(stderr,
                 "FAIL: steady-state frontier advance allocated %.0f times "
                 "(the slot vector must make it allocation-free)\n",
                 allocs);
    std::exit(1);
  }

  out.add("frontier_advance_ns", per);
  out.add("frontier_advance_allocs", allocs);
}

void cluster_exchange(bench::JsonMetrics& out) {
  std::printf("-- live cluster frontier exchange --\n");
  shard::ShardClusterParams params;
  params.seed = 1;
  params.shard_count = 4;
  params.group_count = 2;
  shard::ShardCluster cluster(params);
  cluster.start();
  for (core::ObjectId id = 1; id <= 8; ++id) {
    if (!cluster.register_object(light_spec(id)).ok()) {
      std::fprintf(stderr, "FAIL: cluster rejected light object %u\n", id);
      std::exit(1);
    }
  }
  cluster.run_for(millis(500));
  for (int round = 0; round < 5; ++round) {
    cluster.exchange_frontiers();
    cluster.run_for(millis(100));
  }

  double sent = 0;
  double received = 0;
  std::size_t observed = 0;
  for (shard::GroupId g = 0; g < cluster.group_count(); ++g) {
    sent += static_cast<double>(cluster.primary(g).frontier_frames_sent());
    received += static_cast<double>(cluster.primary(g).frontier_frames_received());
    for (shard::ShardId s = 0; s < params.shard_count; ++s) {
      if (cluster.directory().group_of_shard(s) == g) continue;
      if (cluster.observed_frontier(g, s) > TimePoint::zero()) ++observed;
    }
  }
  std::printf("  frontier frames: %.0f sent, %.0f received; %zu remote shards observed\n",
              sent, received, observed);
  if (received == 0 || observed == 0) {
    std::fprintf(stderr, "FAIL: no kFrontier frames crossed the wire\n");
    std::exit(1);
  }

  out.add("cluster_frontier_frames_sent", sent);
  out.add("cluster_frontier_frames_received", received);
  out.add("cluster_remote_shards_observed", static_cast<double>(observed));
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_shard.json";
  bench::banner("shard scale-out",
                "1M-object directory admits at flat per-registration cost; "
                "frontier upkeep is allocation-free; kFrontier frames flow");

  bench::JsonMetrics out("shard");
  registration_scale(out);
  frontier_scale(out);
  cluster_exchange(out);
  out.write(out_path);
  return 0;
}
