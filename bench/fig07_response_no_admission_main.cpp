// Figure 7: client response time vs number of objects, WITHOUT admission
// control, one curve per window size.
//
// Expected shape (paper §5.1): flat while the object count is within what
// the window size could support, then a dramatic blow-up once the
// unchecked load exceeds the server's capacity.
#include <cstdio>

#include "common/harness.hpp"

using namespace rtpb;
using namespace rtpb::bench;

int main() {
  banner("Figure 7: client response time without admission control",
         "response time increases dramatically past the per-window capacity");

  const std::vector<Duration> windows = {millis(40), millis(80), millis(160), millis(320)};
  std::vector<std::string> cols = {"objects"};
  for (Duration w : windows) {
    cols.push_back("ms_w" + std::to_string(w.nanos() / 1'000'000));
  }
  Table table(cols);

  for (std::size_t objects = 4; objects <= 60; objects += 4) {
    std::vector<double> row = {static_cast<double>(objects)};
    for (Duration w : windows) {
      ExperimentSpec spec;
      spec.seed = 200 + objects;
      spec.objects = objects;
      spec.window = w;
      spec.admission_control = false;
      spec.duration = seconds(5);  // queues grow without bound past capacity
      const RunResult r = run_experiment(spec);
      row.push_back(r.mean_response_ms);
    }
    table.add_row(std::move(row));
  }
  table.print();
  std::printf("\n(mean client response in ms; all offered objects are accepted)\n");
  return 0;
}
