// Validation V1: measured phase variance vs the analytic bounds of
// Eq. 2.1 (v <= p - e) and Theorem 2 (EDF: v <= x*p - e;
// RM: v <= x*p/(n(2^{1/n}-1)) - e) across random task sets and a
// utilisation sweep.  Reports, per policy and utilisation, the worst
// observed ratio of measured variance to each bound (<= 1 means the bound
// held everywhere).
#include <algorithm>
#include <cstdio>

#include "common/harness.hpp"
#include "sched/analysis.hpp"
#include "sched/cpu.hpp"
#include "sched/generator.hpp"
#include "util/rng.hpp"

using namespace rtpb;
using namespace rtpb::sched;

namespace {

TaskSet random_set(Rng& rng, std::size_t n, double util) {
  GeneratorParams params;
  params.tasks = n;
  params.total_utilization = util;
  params.min_period = millis(8);
  params.max_period = millis(150);
  params.min_wcet = micros(100);
  return generate_task_set(rng, params);
}

}  // namespace

int main() {
  bench::banner("Validation V1: phase-variance bounds (Eq. 2.1, Theorem 2)",
                "measured v_i never exceeds the analytic bounds under EDF and RM");

  std::printf("%12s%14s%14s%14s%14s\n", "util_pct", "policy", "sets", "max_v/eq21",
              "max_v/thm2");
  for (Policy policy : {Policy::kEdf, Policy::kRateMonotonic}) {
    for (double util : {0.3, 0.5, 0.7}) {
      Rng rng(9000 + static_cast<std::uint64_t>(util * 100));
      double worst_eq21 = 0.0;
      double worst_thm2 = 0.0;
      int sets_run = 0;
      for (int trial = 0; trial < 20; ++trial) {
        TaskSet set = random_set(rng, 5, util);
        if (policy == Policy::kRateMonotonic && !rm_exact_test(set)) continue;
        if (policy == Policy::kEdf && !edf_test(set)) continue;
        ++sets_run;
        const double x = total_utilization(set);
        sim::Simulator sim(static_cast<std::uint64_t>(trial) + 1);
        Cpu cpu(sim, policy);
        std::vector<TaskId> ids;
        for (auto& t : set) ids.push_back(cpu.add_task(t, nullptr));
        cpu.start(TimePoint::zero());
        sim.run_until(TimePoint::zero() + seconds(30));
        for (std::size_t i = 0; i < ids.size(); ++i) {
          const double v = cpu.tracker(ids[i]).phase_variance().millis();
          const double eq21 = phase_variance_bound_universal(set[i]).millis();
          const Duration thm2d = policy == Policy::kEdf
                                     ? phase_variance_bound_edf(set[i], x)
                                     : phase_variance_bound_rm(set[i], x, set.size());
          const double thm2 = thm2d.millis();
          if (eq21 > 0) worst_eq21 = std::max(worst_eq21, v / eq21);
          if (thm2 > 0) worst_thm2 = std::max(worst_thm2, v / thm2);
        }
      }
      std::printf("%12.0f%14s%14d%14.3f%14.3f\n", util * 100,
                  policy_name(policy), sets_run, worst_eq21, worst_thm2);
    }
  }
  std::printf("\n(ratios <= 1.000 mean the bound held for every task in every set)\n");
  return 0;
}
