// M1: google-benchmark microbenchmarks for the building blocks on the
// replication fast path: event queue, x-kernel message header handling,
// RTPB wire encode/decode, UDP checksum, admission control, and the
// preemptive CPU simulation itself.
#include <benchmark/benchmark.h>

#include "core/admission.hpp"
#include "core/wire.hpp"
#include "sched/cpu.hpp"
#include "sim/simulator.hpp"
#include "xkernel/message.hpp"
#include "xkernel/udplite.hpp"

namespace {

using namespace rtpb;

void BM_EventQueueScheduleAndRun(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sim::Simulator sim;
    std::uint64_t sum = 0;
    for (std::size_t i = 0; i < n; ++i) {
      sim.schedule_at(TimePoint{static_cast<std::int64_t>((i * 7919) % 100000)},
                      [&sum] { ++sum; });
    }
    sim.run();
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_EventQueueScheduleAndRun)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_MessageHeaderPushPop(benchmark::State& state) {
  Bytes payload(64, 0xAB);
  Bytes hdr1(14, 1), hdr2(13, 2), hdr3(8, 3);
  for (auto _ : state) {
    xkernel::Message msg(payload);
    msg.push(hdr3);
    msg.push(hdr2);
    msg.push(hdr1);
    benchmark::DoNotOptimize(msg.pop(14));
    benchmark::DoNotOptimize(msg.pop(13));
    benchmark::DoNotOptimize(msg.pop(8));
    benchmark::DoNotOptimize(msg.size());
  }
}
BENCHMARK(BM_MessageHeaderPushPop);

void BM_WireEncodeDecodeUpdate(benchmark::State& state) {
  core::wire::Update u;
  u.object = 7;
  u.version = 123456;
  u.timestamp = TimePoint{987654321};
  u.value = Bytes(static_cast<std::size_t>(state.range(0)), 0x5A);
  for (auto _ : state) {
    const Bytes encoded = core::wire::encode(u);
    auto decoded = core::wire::decode(encoded);
    benchmark::DoNotOptimize(decoded);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_WireEncodeDecodeUpdate)->Arg(64)->Arg(512)->Arg(4096);

void BM_WireEncodeDecodeUpdateBatch(benchmark::State& state) {
  // Per-update cost of the coalesced frame: divide by entry count to
  // compare directly against BM_WireEncodeDecodeUpdate.
  const auto entries = static_cast<std::size_t>(state.range(0));
  core::wire::UpdateBatch batch;
  for (std::size_t i = 0; i < entries; ++i) {
    batch.entries.push_back(core::wire::UpdateBatchEntry{
        static_cast<core::ObjectId>(i + 1), 100 + i,
        TimePoint{static_cast<std::int64_t>(i) * 1000},
        Bytes(64, static_cast<std::uint8_t>(i))});
  }
  batch.epoch = 3;
  for (auto _ : state) {
    const Bytes encoded = core::wire::encode(batch);
    auto decoded = core::wire::decode(encoded);
    benchmark::DoNotOptimize(decoded);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(entries));
}
BENCHMARK(BM_WireEncodeDecodeUpdateBatch)->Arg(2)->Arg(8)->Arg(32);

void BM_MessageSharedFanOut(benchmark::State& state) {
  // Encode-once fan-out: one shared body, N per-peer header pushes.
  const auto peers = static_cast<std::size_t>(state.range(0));
  const Bytes encoded = core::wire::encode(core::wire::Update{
      7, 123456, TimePoint{987654321}, false, Bytes(64, 0x5A), 3});
  const Bytes header(40, 0x11);
  for (auto _ : state) {
    Bytes once = encoded;
    const xkernel::Message frame{std::move(once)};
    std::size_t total = 0;
    for (std::size_t p = 0; p < peers; ++p) {
      xkernel::Message m = frame;
      m.push(header);
      total += m.size();
    }
    benchmark::DoNotOptimize(total);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(peers));
}
BENCHMARK(BM_MessageSharedFanOut)->Arg(1)->Arg(4)->Arg(8);

void BM_UdpChecksum(benchmark::State& state) {
  Bytes data(static_cast<std::size_t>(state.range(0)), 0x77);
  for (auto _ : state) {
    benchmark::DoNotOptimize(xkernel::UdpLite::checksum(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_UdpChecksum)->Arg(64)->Arg(1500);

void BM_AdmissionAdmit(benchmark::State& state) {
  const auto n = static_cast<core::ObjectId>(state.range(0));
  for (auto _ : state) {
    core::AdmissionController ac(core::ServiceConfig{}, millis(2));
    std::size_t admitted = 0;
    for (core::ObjectId id = 1; id <= n; ++id) {
      core::ObjectSpec s;
      s.id = id;
      s.client_period = millis(10);
      s.client_exec = micros(100);
      s.update_exec = micros(100);
      s.delta_primary = millis(20);
      s.delta_backup = millis(100);
      if (ac.admit(s).ok()) ++admitted;
    }
    benchmark::DoNotOptimize(admitted);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_AdmissionAdmit)->Arg(10)->Arg(50);

void BM_CpuSchedulingSecond(benchmark::State& state) {
  // Cost of simulating one virtual second with `range` periodic tasks.
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sim::Simulator sim;
    sched::Cpu cpu(sim, sched::Policy::kRateMonotonic);
    for (std::size_t i = 0; i < n; ++i) {
      sched::TaskSpec t;
      t.period = millis(5 + static_cast<std::int64_t>(i % 20));
      t.wcet = micros(100);
      cpu.add_task(t, nullptr);
    }
    cpu.start(TimePoint::zero());
    sim.run_until(TimePoint::zero() + seconds(1));
    benchmark::DoNotOptimize(cpu.jobs_completed());
  }
}
BENCHMARK(BM_CpuSchedulingSecond)->Arg(5)->Arg(20)->Arg(80);

}  // namespace
