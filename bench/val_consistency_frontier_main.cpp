// Validation V3 (Theorems 4/5): the necessary-and-sufficient frontier for
// external temporal consistency at the backup.
//
// With zero phase variance, consistency at the backup holds iff
//     r <= (delta_B - delta_P) - l    (Theorem 5)
// which, in window terms (staleness d = T_P - T_B vs window = delta_B -
// delta_P, worst case d = p + r + l with p the client period), means
// violations begin as r crosses  window - l - p.  This bench sweeps the
// transmission period r across that frontier with no loss at all and
// reports the number of out-of-window intervals: zero strictly below the
// frontier, non-zero above it.
#include <cstdio>

#include "common/harness.hpp"

using namespace rtpb;
using namespace rtpb::bench;

int main() {
  banner("Validation V3: the Theorem 4/5 consistency frontier",
         "violations are zero iff the transmission period is below the frontier");

  const Duration window = millis(80);
  const Duration client_period = millis(10);

  // Measure the effective l the service computes for its link.
  core::ServiceParams probe;
  Duration ell;
  {
    core::RtpbService s(probe);
    ell = s.link_delay_bound();
  }
  const Duration frontier = window - ell - client_period;
  std::printf("window=%s, l=%s, client period=%s -> frontier r* ~ %s\n\n",
              window.to_string().c_str(), ell.to_string().c_str(),
              client_period.to_string().c_str(), frontier.to_string().c_str());

  Table table({"r_ms", "r/frontier", "violations", "max_dist_ms"});
  for (double frac : {0.50, 0.75, 0.90, 0.97, 1.03, 1.10, 1.25, 1.50}) {
    ExperimentSpec spec;
    spec.seed = 4242;
    spec.objects = 3;
    spec.client_period = client_period;
    spec.window = window;
    spec.update_loss = 0.0;
    spec.duration = seconds(30);
    const Duration r = frontier.scaled(frac);

    core::ServiceParams params;
    params.seed = spec.seed;
    params.link.propagation = millis(1);
    params.link.jitter = micros(200);
    params.config.update_period_override = r;
    core::RtpbService service(params);
    service.start();
    for (core::ObjectId id = 1; id <= spec.objects; ++id) {
      core::ObjectSpec object;
      object.id = id;
      object.name = "obj" + std::to_string(id);
      object.client_period = spec.client_period;
      object.client_exec = micros(200);
      object.update_exec = micros(200);
      object.delta_primary = millis(20);
      object.delta_backup = object.delta_primary + window;
      (void)service.register_object(object);
    }
    service.warm_up(seconds(1));
    service.run_for(spec.duration);
    service.finish();

    table.add_row({r.millis(), frac,
                   static_cast<double>(service.metrics().inconsistency_intervals()),
                   service.metrics().average_max_distance_ms()});
  }
  table.print();
  std::printf("\n(sufficiency: violations must be 0 for r/frontier < 1.\n"
              " necessity is a worst-case-phasing statement: with synchronous release\n"
              " the onset lands slightly above 1 because staleness is quantised by the\n"
              " client period; it must appear by r/frontier ~ 1 + p/window.)\n");
  return 0;
}
