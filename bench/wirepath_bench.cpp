// wirepath_bench — the allocation-lean wire-path baseline recorder.
//
// Measures the primary→backup hot path four ways and writes the flat
// BENCH_wirepath.json that tools/bench_report gates future PRs against:
//
//   1. encode allocations per frame (asserted == 1: exact-size reserve),
//   2. encode/decode wall time per update, single kUpdate vs kUpdateBatch,
//   3. fan-out allocations per update for N∈{1,4,8} peers — the legacy
//      deep-copy-per-peer scheme vs the shared-payload Message, and
//   4. end-to-end RtpbService throughput (updates/sec of wall time) and
//      allocations/update at N∈{1,4,8} backups, batched and unbatched.
//
// This binary links bench/common/alloc_hook.cpp, which REPLACES the global
// operator new/delete — that is why it is not part of the *_main.cpp glob.
//
// Usage: wirepath_bench [output.json]   (default BENCH_wirepath.json)
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "common/alloc_hook.hpp"
#include "common/harness.hpp"
#include "core/wire.hpp"
#include "xkernel/message.hpp"

namespace {

using namespace rtpb;
using bench::alloc_hook::Scope;

volatile std::size_t g_sink = 0;  // defeats dead-code elimination

double now_ns() {
  return static_cast<double>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                 std::chrono::steady_clock::now().time_since_epoch())
                                 .count());
}

core::wire::Update sample_update(std::size_t value_bytes) {
  core::wire::Update u;
  u.object = 7;
  u.version = 123456;
  u.timestamp = TimePoint{987654321};
  u.value = Bytes(value_bytes, 0x5A);
  u.epoch = 3;
  return u;
}

core::wire::UpdateBatch sample_batch(std::size_t entries, std::size_t value_bytes) {
  core::wire::UpdateBatch b;
  for (std::size_t i = 0; i < entries; ++i) {
    b.entries.push_back(core::wire::UpdateBatchEntry{
        static_cast<core::ObjectId>(i + 1), 100 + i,
        TimePoint{static_cast<std::int64_t>(i) * 1000},
        Bytes(value_bytes, static_cast<std::uint8_t>(i))});
  }
  b.epoch = 3;
  return b;
}

// ---- 1. allocations per frame encode -------------------------------------

template <typename Msg>
double encode_allocs(const Msg& msg, const char* what) {
  constexpr int kIters = 1000;
  // Warm up so one-time lazy init does not pollute the count.
  for (int i = 0; i < 8; ++i) g_sink = g_sink + core::wire::encode(msg).size();
  Scope scope;
  for (int i = 0; i < kIters; ++i) g_sink = g_sink + core::wire::encode(msg).size();
  const double per = static_cast<double>(scope.allocations()) / kIters;
  std::printf("  %-28s %.2f allocs/frame\n", what, per);
  if (per > 1.0) {
    std::fprintf(stderr,
                 "FAIL: %s encode took %.2f allocations/frame (expected exactly 1: "
                 "the ByteWriter(encoded_size) reserve must cover the whole frame)\n",
                 what, per);
    std::exit(1);
  }
  return per;
}

// ---- 2. encode/decode wall time ------------------------------------------

template <typename Msg>
double encode_decode_ns(const Msg& msg, std::size_t updates_per_frame) {
  constexpr int kIters = 20000;
  for (int i = 0; i < 100; ++i) {  // warm-up
    const Bytes e = core::wire::encode(msg);
    g_sink = g_sink + (core::wire::decode(e).has_value() ? e.size() : 0);
  }
  const double t0 = now_ns();
  for (int i = 0; i < kIters; ++i) {
    const Bytes e = core::wire::encode(msg);
    g_sink = g_sink + (core::wire::decode(e).has_value() ? e.size() : 0);
  }
  return (now_ns() - t0) / kIters / static_cast<double>(updates_per_frame);
}

// ---- 3. fan-out allocations: legacy deep copy vs shared message ----------

// What the pre-PR4 primary did per peer: copy the encoded payload into a
// fresh Message, then push the per-peer protocol header.
double legacy_fanout_allocs(const Bytes& encoded, std::size_t peers) {
  constexpr int kIters = 2000;
  const Bytes header(40, 0x11);  // stand-in for udplite+iplite+simeth headers
  Scope scope;
  for (int i = 0; i < kIters; ++i) {
    const Bytes once = encoded;  // the single encode-output copy
    for (std::size_t p = 0; p < peers; ++p) {
      Bytes copy = once;                       // deep copy per peer
      xkernel::Message m{std::move(copy)};
      m.push(header);
      g_sink = g_sink + m.size();
    }
  }
  return static_cast<double>(scope.allocations()) / kIters;
}

// The shared path: one ref-counted body; each peer's Message shares it and
// only materialises its own header region.
double shared_fanout_allocs(const Bytes& encoded, std::size_t peers) {
  constexpr int kIters = 2000;
  const Bytes header(40, 0x11);
  Scope scope;
  for (int i = 0; i < kIters; ++i) {
    Bytes once = encoded;  // the single encode-output copy
    const xkernel::Message frame{std::move(once)};
    for (std::size_t p = 0; p < peers; ++p) {
      xkernel::Message m = frame;              // shares the body
      m.push(header);
      g_sink = g_sink + m.size();
    }
  }
  return static_cast<double>(scope.allocations()) / kIters;
}

// ---- 4. end-to-end service throughput ------------------------------------

struct E2eResult {
  double updates_per_sec = 0;   // logical updates propagated per wall second
  double ns_per_update = 0;
  double allocs_per_update = 0;
  double frames_per_update = 0; // < 1 when batching coalesces
};

E2eResult run_e2e(std::size_t backups, bool batched, bool flight_recorder = false) {
  core::ServiceParams params;
  params.seed = 7;
  params.backup_count = backups;
  params.link.propagation = millis(1);
  params.link.jitter = micros(200);
  params.config.batch_updates = batched;

  core::RtpbService service(params);
  // The flight recorder's ring is pre-allocated by enable(), before the
  // alloc Scope opens: recording on the hot path must then be alloc-free.
  if (flight_recorder) service.simulator().telemetry().flight_recorder().enable();
  service.start();
  for (core::ObjectId id = 1; id <= 5; ++id) {
    core::ObjectSpec object;
    object.id = id;
    object.name = "obj" + std::to_string(id);
    object.size_bytes = 64;
    object.client_period = millis(10);
    object.client_exec = micros(200);
    object.update_exec = millis(1);
    object.delta_primary = millis(20);
    object.delta_backup = millis(100);
    (void)service.register_object(object);
  }
  service.warm_up(seconds(1));

  const std::uint64_t sent0 = service.primary().updates_sent();
  const std::uint64_t frames0 = service.primary().update_frames_sent();
  Scope scope;
  const double t0 = now_ns();
  service.run_for(seconds(4));
  const double wall_ns = now_ns() - t0;
  const double allocs = static_cast<double>(scope.allocations());
  service.finish();

  const auto sent = static_cast<double>(service.primary().updates_sent() - sent0);
  const auto frames = static_cast<double>(service.primary().update_frames_sent() - frames0);
  E2eResult r;
  if (sent > 0) {
    r.updates_per_sec = sent / (wall_ns * 1e-9);
    r.ns_per_update = wall_ns / sent;
    r.allocs_per_update = allocs / sent;
    r.frames_per_update = frames / sent;
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_wirepath.json";
  bench::JsonMetrics metrics("wirepath");

  bench::banner("Wire-path baseline: allocations + latency on the update hot path",
                "one allocation per frame encode; shared fan-out >= 2x leaner than "
                "deep copy at N=4; batched propagation cheaper per update");

  std::printf("\n[1] allocations per frame encode (exact-reserve invariant)\n");
  const auto update = sample_update(64);
  const auto batch = sample_batch(8, 64);
  metrics.add("encode_update_allocs", encode_allocs(update, "kUpdate(64B)"));
  metrics.add("encode_batch8_allocs", encode_allocs(batch, "kUpdateBatch(8x64B)"));

  std::printf("\n[2] encode+decode wall time per update\n");
  const double single_ns = encode_decode_ns(update, 1);
  const double batch_ns = encode_decode_ns(batch, batch.entries.size());
  std::printf("  single kUpdate               %.0f ns/update\n", single_ns);
  std::printf("  kUpdateBatch (8 entries)     %.0f ns/update\n", batch_ns);
  metrics.add("codec_single_ns_per_update", single_ns);
  metrics.add("codec_batch8_ns_per_update", batch_ns);

  std::printf("\n[3] fan-out allocations per update, legacy deep-copy vs shared body\n");
  const Bytes encoded = core::wire::encode(update);
  for (std::size_t n : {std::size_t{1}, std::size_t{4}, std::size_t{8}}) {
    const double legacy = legacy_fanout_allocs(encoded, n);
    const double shared = shared_fanout_allocs(encoded, n);
    std::printf("  N=%zu  legacy %.2f  shared %.2f  (%.2fx)\n", n, legacy, shared,
                shared > 0 ? legacy / shared : 0.0);
    char key[64];
    std::snprintf(key, sizeof(key), "fanout_legacy_allocs_n%zu", n);
    metrics.add(key, legacy);
    std::snprintf(key, sizeof(key), "fanout_shared_allocs_n%zu", n);
    metrics.add(key, shared);
    if (n == 4 && !(legacy >= 2.0 * shared)) {
      std::fprintf(stderr,
                   "FAIL: shared fan-out at N=4 is not >=2x leaner than deep copy "
                   "(legacy %.2f vs shared %.2f allocs/update)\n",
                   legacy, shared);
      return 1;
    }
    if (n == 4) metrics.add("fanout_alloc_ratio_n4", legacy / shared);
  }

  std::printf("\n[4] end-to-end RtpbService, 5 objects @ 10 ms, 4 virtual seconds\n");
  std::printf("  %-22s %12s %12s %14s %10s\n", "config", "upd/sec", "ns/update",
              "allocs/update", "frames/upd");
  for (std::size_t n : {std::size_t{1}, std::size_t{4}, std::size_t{8}}) {
    for (const bool batched : {true, false}) {
      const E2eResult r = run_e2e(n, batched);
      std::printf("  N=%zu %-18s %12.0f %12.0f %14.1f %10.2f\n", n,
                  batched ? "batched" : "unbatched", r.updates_per_sec, r.ns_per_update,
                  r.allocs_per_update, r.frames_per_update);
      char key[64];
      const char* mode = batched ? "batched" : "unbatched";
      std::snprintf(key, sizeof(key), "e2e_%s_updates_per_sec_n%zu", mode, n);
      metrics.add(key, r.updates_per_sec);
      std::snprintf(key, sizeof(key), "e2e_%s_ns_per_update_n%zu", mode, n);
      metrics.add(key, r.ns_per_update);
      std::snprintf(key, sizeof(key), "e2e_%s_allocs_per_update_n%zu", mode, n);
      metrics.add(key, r.allocs_per_update);
      std::snprintf(key, sizeof(key), "e2e_%s_frames_per_update_n%zu", mode, n);
      metrics.add(key, r.frames_per_update);
    }
  }

  std::printf("\n[5] flight recorder on the wire path (observability must be free)\n");
  {
    // Same seed → identical virtual trajectory, so any allocation delta is
    // the recorder's doing.  The ring is pre-sized in enable(); per-event
    // record() must not allocate in steady state.
    const E2eResult off = run_e2e(4, true);
    const E2eResult on = run_e2e(4, true, /*flight_recorder=*/true);
    std::printf("  recorder off  %14.2f allocs/update\n", off.allocs_per_update);
    std::printf("  recorder on   %14.2f allocs/update\n", on.allocs_per_update);
    metrics.add("e2e_recorder_off_allocs_per_update_n4", off.allocs_per_update);
    metrics.add("e2e_recorder_on_allocs_per_update_n4", on.allocs_per_update);
    if (on.allocs_per_update > off.allocs_per_update + 0.01) {
      std::fprintf(stderr,
                   "FAIL: enabling the flight recorder cost %.2f -> %.2f allocs/update "
                   "on the wire path (record() must be allocation-free)\n",
                   off.allocs_per_update, on.allocs_per_update);
      return 1;
    }
  }

  std::printf("\n");
  return metrics.write(out_path) ? 0 : 1;
}
