// Ablation A3: the three distance-constrained schedulers the paper cites
// from Han & Lin — S_a (fixed caller base), S_x (base = minimum period)
// and S_r (searched base).  Compares specialised densities and placement
// rates over random task sets: S_r's searched base never does worse than
// S_x, which is why the paper's Theorem 3 is stated for S_r.
#include <algorithm>
#include <cstdio>

#include "common/harness.hpp"
#include "sched/analysis.hpp"
#include "util/rng.hpp"

using namespace rtpb;
using namespace rtpb::sched;

int main() {
  bench::banner("Ablation A3: DCS schedulers S_a / S_x / S_r (Han & Lin)",
                "S_r's searched base dominates S_x; both bound density inflation by 2x");

  bench::Table table({"util_pct", "sets", "sx_density", "sr_density", "sx_feas", "sr_feas",
                      "sr_wins_pct"});
  for (double util : {0.3, 0.45, 0.6, 0.75}) {
    Rng rng(31000 + static_cast<std::uint64_t>(util * 100));
    const int trials = 200;
    double sum_sx = 0.0, sum_sr = 0.0;
    int sx_feasible = 0, sr_feasible = 0, sr_strictly_better = 0;
    for (int trial = 0; trial < trials; ++trial) {
      TaskSet set;
      const std::size_t n = 3 + static_cast<std::size_t>(rng.uniform(0, 4));
      for (std::size_t i = 0; i < n; ++i) {
        TaskSpec t;
        t.period = millis(rng.uniform(10, 300));
        t.wcet = std::max(micros(100), t.period.scaled(util / static_cast<double>(n)));
        set.push_back(t);
      }
      const DcsSpecialization sx = dcs_specialize_sx(set);
      const DcsSpecialization sr = dcs_specialize(set);
      sum_sx += sx.density;
      sum_sr += sr.density;
      if (sx.feasible()) ++sx_feasible;
      if (sr.feasible()) ++sr_feasible;
      if (sr.density < sx.density - 1e-12) ++sr_strictly_better;
    }
    table.add_row({util * 100, static_cast<double>(trials), sum_sx / trials, sum_sr / trials,
                   static_cast<double>(sx_feasible), static_cast<double>(sr_feasible),
                   100.0 * sr_strictly_better / trials});
  }
  table.print();
  std::printf("\n(densities are averages over the random sets; feas = sets with\n"
              " specialised density <= 1, i.e. placeable as a cyclic schedule)\n");
  return 0;
}
