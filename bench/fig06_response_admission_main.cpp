// Figure 6: client response time vs number of objects, WITH admission
// control, one curve per window size.
//
// Expected shape (paper §5.1): response time is flat in the number of
// offered objects because admission caps the accepted set; larger windows
// give slightly better response times (fewer update transmissions steal
// the CPU from client requests).
#include <cstdio>

#include "common/harness.hpp"

using namespace rtpb;
using namespace rtpb::bench;

int main() {
  banner("Figure 6: client response time with admission control",
         "number of objects has little impact; larger window => better response");

  const std::vector<Duration> windows = {millis(40), millis(80), millis(160), millis(320)};
  std::vector<std::string> cols = {"objects"};
  for (Duration w : windows) {
    cols.push_back("acc_w" + std::to_string(w.nanos() / 1'000'000));
    cols.push_back("ms_w" + std::to_string(w.nanos() / 1'000'000));
  }
  Table table(cols);
  table.set_name("fig06_response_admission");

  for (std::size_t objects = 4; objects <= 40; objects += 4) {
    std::vector<double> row = {static_cast<double>(objects)};
    for (Duration w : windows) {
      ExperimentSpec spec;
      spec.seed = 100 + objects;
      spec.objects = objects;
      spec.window = w;
      spec.admission_control = true;
      const RunResult r = run_experiment(spec);
      row.push_back(static_cast<double>(r.accepted));
      row.push_back(r.mean_response_ms);
    }
    table.add_row(std::move(row));
  }
  table.print();
  std::printf("\n(acc_wN = objects accepted at window N ms; ms_wN = mean client response, ms)\n");
  return 0;
}
