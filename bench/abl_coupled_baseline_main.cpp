// Ablation A5: RTPB's decoupled update scheduling vs the coupled
// window-consistent baseline (Mehra et al.), which transmits on every
// client write.
//
// The paper credits its fast client response to "the decoupling of client
// updates from backup updates" (§5.1, §7).  Under coupling, backup traffic
// and transmission CPU time scale with the WRITE rate: at high write rates
// the transmission jobs crowd the IPC service queue and message counts
// balloon, while decoupled RTPB holds both at the window-derived rate.
#include <cstdio>

#include "common/harness.hpp"

using namespace rtpb;
using namespace rtpb::bench;

int main() {
  banner("Ablation A5: decoupled (RTPB) vs coupled (window-consistent baseline)",
         "decoupling keeps response time and update bandwidth independent of write rate");

  Table table({"write_hz", "mode", "updates", "resp_ms", "p90_ms", "dist_ms", "viol"});
  for (std::int64_t period_ms : {20, 10, 5, 2}) {
    for (int coupled = 0; coupled <= 1; ++coupled) {
      core::ServiceParams params;
      params.seed = 9300 + static_cast<std::uint64_t>(period_ms);
      params.link.propagation = millis(1);
      params.link.jitter = micros(200);
      params.config.cpu_policy = sched::Policy::kFifo;
      params.config.update_scheduling = coupled == 1 ? core::UpdateScheduling::kCoupled
                                                     : core::UpdateScheduling::kNormal;
      core::RtpbService service(params);
      service.start();
      for (core::ObjectId id = 1; id <= 10; ++id) {
        core::ObjectSpec object;
        object.id = id;
        object.name = "obj" + std::to_string(id);
        object.client_period = millis(period_ms);
        object.client_exec = micros(200);
        object.update_exec = millis(1);
        object.delta_primary = millis(period_ms);
        object.delta_backup = object.delta_primary + millis(80);
        (void)service.register_object(object);
      }
      service.warm_up(seconds(1));
      service.run_for(seconds(10));
      service.finish();
      const auto& m = service.metrics();
      table.add_row({1000.0 / static_cast<double>(period_ms), static_cast<double>(coupled),
                     static_cast<double>(service.primary().updates_sent()),
                     m.response_times().mean(), m.response_times().quantile(0.9),
                     m.average_max_excess_distance_ms(),
                     static_cast<double>(m.inconsistency_intervals())});
    }
  }
  table.print();
  std::printf("\n(mode 0 = decoupled periodic updates [RTPB], mode 1 = coupled per-write\n"
              " transmission [window-consistent baseline]; 10 objects, zero loss)\n");
  return 0;
}
