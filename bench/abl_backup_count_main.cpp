// Ablation: replication cost and failover behaviour as the backup chain
// grows, N ∈ {1, 2, 4, 8}.  The paper runs one primary and one backup;
// this sweep exercises the multi-backup generalisation (paper §6 future
// work, "support for multiple backups").  Each cell runs a steady-state
// phase, then crashes the primary and lets the designated successor take
// over, measuring promotion latency and whether temporal consistency
// (excess distance, inconsistency time) degrades with chain length.
#include <cstdint>

#include "common/harness.hpp"

namespace {

using namespace rtpb;

struct CellResult {
  std::size_t accepted = 0;
  std::uint64_t updates_sent = 0;
  double applied_per_backup = 0.0;
  double excess_ms = 0.0;
  double incons_ms = 0.0;
  std::uint64_t intervals = 0;
  double failover_ms = 0.0;
  std::uint64_t new_epoch = 0;
};

CellResult run_cell(std::size_t backups, std::uint64_t seed) {
  core::ServiceParams params;
  params.seed = seed;
  params.backup_count = backups;
  params.link.propagation = millis(1);
  params.link.jitter = micros(200);

  core::RtpbService service(params);
  service.start();

  CellResult result;
  for (core::ObjectId id = 1; id <= 5; ++id) {
    core::ObjectSpec object;
    object.id = id;
    object.name = "obj" + std::to_string(id);
    object.size_bytes = 64;
    object.client_period = millis(10);
    object.client_exec = micros(200);
    object.update_exec = millis(1);
    object.delta_primary = millis(20);
    object.delta_backup = millis(100);
    if (service.register_object(object).ok()) ++result.accepted;
  }

  service.warm_up(seconds(1));
  service.run_for(seconds(8));

  // Failover arc: kill the primary, let the successor promote and the
  // remaining chain re-peer behind it, then recruit a fresh standby
  // (§4.4's "waits to recruit a new backup") and keep serving.  Without
  // the recruit step an N=1 chain has no replica left after promotion and
  // its inconsistency clock runs until the end of the experiment.
  const TimePoint crashed_at = service.simulator().now();
  result.updates_sent = service.primary().updates_sent();
  service.crash_primary();
  service.run_for(seconds(1));
  service.add_standby();
  service.run_for(seconds(7));
  service.finish();

  result.failover_ms = (service.backup().promoted_at() - crashed_at).millis();
  result.new_epoch = service.acting_primary().epoch();

  std::uint64_t applied = 0;
  for (const auto& backup : service.backups()) applied += backup->updates_applied();
  result.applied_per_backup =
      static_cast<double>(applied) / static_cast<double>(backups);

  const core::Metrics& m = service.metrics();
  result.excess_ms = m.average_max_excess_distance_ms();
  result.incons_ms = m.total_inconsistency().millis();
  result.intervals = m.inconsistency_intervals();
  return result;
}

}  // namespace

int main() {
  using namespace rtpb;

  bench::banner(
      "Ablation — backup chain length N ∈ {1, 2, 4, 8}",
      "Replication fan-out cost and failover latency as the backup chain "
      "grows.  Expect promotion latency to stay within the detection bound "
      "regardless of N, the post-failover primary to sit at epoch 2, and "
      "chains of N >= 2 to keep inconsistency time near zero across the "
      "failover because a surviving backup covers the window while a "
      "standby is recruited — the N = 1 chain pays that gap in full.");

  bench::Table table({"backups", "admitted", "upd_sent", "applied_per_bkp",
                      "excess_ms", "incons_ms", "intervals", "failover_ms",
                      "epoch"});
  table.set_name("abl_backup_count");
  for (std::size_t n : {std::size_t{1}, std::size_t{2}, std::size_t{4}, std::size_t{8}}) {
    const CellResult r = run_cell(n, /*seed=*/7);
    table.add_row({static_cast<double>(n), static_cast<double>(r.accepted),
                   static_cast<double>(r.updates_sent), r.applied_per_backup,
                   r.excess_ms, r.incons_ms, static_cast<double>(r.intervals),
                   r.failover_ms, static_cast<double>(r.new_epoch)});
  }
  table.print();
  return 0;
}
