// Validation V2 (Theorem 3): under the DCS S_r scheduler, every task's
// phase variance is exactly zero whenever sum(e_i/p_i) <= n(2^{1/n}-1).
// Sweeps random task sets at increasing utilisation and reports how many
// satisfied the paper's condition, how many of those the pinwheel
// specialisation could place, and the largest phase variance observed
// (expected: 0 for all placed sets).
#include <algorithm>
#include <cstdio>

#include "common/harness.hpp"
#include "sched/analysis.hpp"
#include "sched/cpu.hpp"
#include "sched/generator.hpp"
#include "util/rng.hpp"

using namespace rtpb;
using namespace rtpb::sched;

int main() {
  bench::banner("Validation V2: DCS S_r zero phase variance (Theorem 3)",
                "v_i = 0 for every task when sum(e/p) <= n(2^{1/n}-1)");

  bench::Table table({"util_pct", "n_sets", "cond_met", "placed", "max_v_ms"});
  for (double util : {0.2, 0.35, 0.5, 0.65, 0.78}) {
    Rng rng(7000 + static_cast<std::uint64_t>(util * 100));
    int cond_met = 0, placed = 0, sets = 0;
    double max_v = 0.0;
    for (int trial = 0; trial < 30; ++trial) {
      GeneratorParams gen;
      gen.tasks = 3 + static_cast<std::size_t>(rng.uniform(0, 3));
      gen.total_utilization = util;
      gen.min_period = millis(10);
      gen.max_period = millis(200);
      gen.min_wcet = micros(200);
      TaskSet set = generate_task_set(rng, gen);
      ++sets;
      if (!dcs_zero_variance_condition(set)) continue;
      ++cond_met;
      if (!dcs_specialize(set).feasible()) continue;
      ++placed;

      sim::Simulator sim(static_cast<std::uint64_t>(trial) + 17);
      Cpu cpu(sim, Policy::kDcsSr);
      std::vector<TaskId> ids;
      for (auto& t : set) ids.push_back(cpu.add_task(t, nullptr));
      cpu.start(TimePoint::zero());
      sim.run_until(TimePoint::zero() + seconds(30));
      for (TaskId id : ids) {
        max_v = std::max(max_v, cpu.tracker(id).phase_variance().millis());
      }
    }
    table.add_row({util * 100, static_cast<double>(sets), static_cast<double>(cond_met),
                   static_cast<double>(placed), max_v});
  }
  table.print();
  std::printf("\n(max_v_ms must be 0.000 in every row: the pinwheel schedule is cyclic)\n");
  return 0;
}
