// Supplementary S1: the effect of object size (a §5 evaluation parameter
// the paper lists but plots no dedicated figure for).
//
// Two effects appear as objects grow: (a) transmission time on the
// 10 Mb/s link becomes a real fraction of the update period, and (b) past
// the 1500-byte MTU, updates only survive if RTPB runs above FRAGLITE —
// and a lost fragment costs the whole update, so large objects are more
// loss-sensitive even when fragmented.
#include <cstdio>

#include "common/harness.hpp"

using namespace rtpb;
using namespace rtpb::bench;

int main() {
  banner("Supplementary S1: object size vs replication quality",
         "large objects need fragmentation; size amplifies loss sensitivity");

  Table table({"size_B", "frag", "loss_pct", "applied", "timeouts", "dist_ms", "viol"});
  for (std::uint32_t size : {64u, 512u, 2048u, 8192u, 32768u}) {
    for (int frag = 1; frag >= 0; --frag) {
      for (double loss : {0.0, 0.05}) {
        core::ServiceParams params;
        params.seed = 9100 + size;
        params.link.propagation = millis(1);
        params.link.jitter = micros(200);
        params.link.loss_probability = loss;  // genuine per-frame loss
        params.config.enable_fragmentation = frag == 1;
        params.config.ping_max_misses = 1000;  // isolate replication effects
        core::RtpbService service(params);
        service.start();
        core::ObjectSpec object;
        object.id = 1;
        object.name = "blob";
        object.size_bytes = size;
        object.client_period = millis(20);
        object.client_exec = micros(500);
        object.update_exec = millis(1);
        object.delta_primary = millis(40);
        object.delta_backup = millis(200);  // window 160ms
        (void)service.register_object(object);
        service.warm_up(seconds(1));
        service.run_for(seconds(20));
        service.finish();
        table.add_row({static_cast<double>(size), static_cast<double>(frag), loss * 100,
                       static_cast<double>(service.backup().updates_applied()),
                       service.backup().frag() != nullptr
                           ? static_cast<double>(service.backup().frag()->reassembly_timeouts())
                           : 0.0,
                       service.metrics().average_max_distance_ms(),
                       static_cast<double>(service.metrics().inconsistency_intervals())});
      }
    }
  }
  table.print();
  std::printf("\n(frag 1 = RTPB over FRAGLITE [default], frag 0 = raw datagrams; with\n"
              " frag 0, objects past the 1500 B MTU never reach the backup at all —\n"
              " applied = 0 and the distance saturates at the run length)\n");
  return 0;
}
