// Figure 12: duration of backup inconsistency vs message-loss probability
// under COMPRESSED update scheduling, one curve per window size.
//
// Expected shape (paper §5.3): the window-size ordering FLIPS relative to
// Figure 11 — under compressed scheduling the transmission rate is set by
// spare CPU capacity, not by the window, so a larger window means rarer
// and shorter excursions past it.
#include <cstdio>

#include "common/harness.hpp"

using namespace rtpb;
using namespace rtpb::bench;

int main() {
  banner("Figure 12: duration of backup inconsistency, compressed scheduling",
         "ordering flips: larger window => SHORTER inconsistency");

  const std::vector<Duration> windows = {millis(40), millis(80), millis(160)};
  std::vector<std::string> cols = {"loss_pct"};
  for (Duration w : windows) {
    cols.push_back("ms_w" + std::to_string(w.nanos() / 1'000'000));
  }
  Table table(cols);

  for (double loss : {0.05, 0.10, 0.20, 0.30, 0.40, 0.50}) {
    std::vector<double> row = {loss * 100.0};
    for (Duration w : windows) {
      ExperimentSpec spec;
      spec.seed = 700 + static_cast<std::uint64_t>(loss * 1000);
      spec.objects = 5;
      spec.window = w;
      spec.update_loss = loss;
      spec.scheduling = core::UpdateScheduling::kCompressed;
      spec.update_exec = millis(2);
      spec.compressed_target_utilization = 0.5;  // r_compressed ~ 25ms, window-independent
      // Long runs and extra replications: large-window violations under
      // compressed scheduling are rare events (many consecutive losses).
      spec.duration = seconds(120);
      const RunResult r = run_experiment_avg(spec, 5);
      row.push_back(r.mean_inconsistency_ms);
    }
    table.add_row(std::move(row));
  }
  table.print();
  std::printf("\n(mean duration of one out-of-window episode, ms)\n");
  return 0;
}
