// Ablation A1 (design choice, paper §4.3): acknowledge every update vs the
// paper's choice of backup-triggered retransmission (NACK watchdog).
// Compares message overhead and achieved consistency across a loss sweep.
// Expected: per-update acks roughly double the message count for little
// consistency gain at LAN loss rates — the paper's rationale.
#include <cstdio>

#include "common/harness.hpp"

using namespace rtpb;
using namespace rtpb::bench;

int main() {
  banner("Ablation A1: per-update acks vs NACK-triggered retransmission",
         "acks add messages without materially improving the window metrics");

  Table table({"loss_pct", "mode", "updates", "acks+nacks", "retx", "dist_ms", "viol"});
  for (double loss : {0.0, 0.05, 0.10, 0.20, 0.30}) {
    for (int ack_mode = 0; ack_mode <= 1; ++ack_mode) {
      core::ServiceParams params;
      params.seed = 8100 + static_cast<std::uint64_t>(loss * 1000);
      params.link.propagation = millis(1);
      params.link.jitter = micros(200);
      params.config.update_loss_probability = loss;
      params.config.ack_every_update = ack_mode == 1;
      core::RtpbService service(params);
      service.start();
      for (core::ObjectId id = 1; id <= 5; ++id) {
        core::ObjectSpec object;
        object.id = id;
        object.name = "obj" + std::to_string(id);
        object.client_period = millis(10);
        object.client_exec = micros(200);
        object.update_exec = millis(1);
        object.delta_primary = millis(20);
        object.delta_backup = millis(100);
        (void)service.register_object(object);
      }
      service.warm_up(seconds(1));
      service.run_for(seconds(30));
      service.finish();

      table.add_row({loss * 100, static_cast<double>(ack_mode),
                     static_cast<double>(service.primary().updates_sent()),
                     static_cast<double>(service.backup().acks_sent() +
                                         service.backup().retransmit_requests_sent()),
                     static_cast<double>(service.primary().retransmissions_served()),
                     service.metrics().average_max_excess_distance_ms(),
                     static_cast<double>(service.metrics().inconsistency_intervals())});
    }
  }
  table.print();
  std::printf("\n(mode 0 = NACK watchdog [paper's design], mode 1 = ack every update)\n");
  return 0;
}
