// Figure 9: average maximum primary–backup distance vs number of objects,
// WITH admission control, one curve per window size.
//
// Expected shape (paper §5.2): flat — admission keeps the update task set
// schedulable, so staleness stays at its per-window baseline regardless of
// how many objects are offered.
#include <cstdio>

#include "common/harness.hpp"

using namespace rtpb;
using namespace rtpb::bench;

int main() {
  banner("Figure 9: avg max primary/backup distance with admission control",
         "number of objects has little impact on the distance");

  const std::vector<Duration> windows = {millis(40), millis(80), millis(160), millis(320)};
  std::vector<std::string> cols = {"objects"};
  for (Duration w : windows) {
    cols.push_back("ms_w" + std::to_string(w.nanos() / 1'000'000));
  }
  Table table(cols);

  for (std::size_t objects = 4; objects <= 40; objects += 4) {
    std::vector<double> row = {static_cast<double>(objects)};
    for (Duration w : windows) {
      ExperimentSpec spec;
      spec.seed = 400 + objects;
      spec.objects = objects;
      spec.window = w;
      spec.admission_control = true;
      const RunResult r = run_experiment(spec);
      row.push_back(r.avg_max_distance_ms);
    }
    table.add_row(std::move(row));
  }
  table.print();
  std::printf("\n(avg max staleness in ms; rows beyond a window's capacity keep only\n"
              " the admitted subset, which is exactly the point of the figure)\n");
  return 0;
}
