// Figure 10: average maximum primary–backup distance vs number of objects,
// WITHOUT admission control, one curve per window size.
//
// Expected shape (paper §5.2): once the offered load exceeds what the
// window size could support, update transmissions fall behind and the
// distance climbs — the comparison against Figure 9 is the paper's
// argument for an admission-control policy.
#include <cstdio>

#include "common/harness.hpp"

using namespace rtpb;
using namespace rtpb::bench;

int main() {
  banner("Figure 10: avg max primary/backup distance without admission control",
         "distance grows once the accepted objects exceed the window's capacity");

  const std::vector<Duration> windows = {millis(40), millis(80), millis(160), millis(320)};
  std::vector<std::string> cols = {"objects"};
  for (Duration w : windows) {
    cols.push_back("ms_w" + std::to_string(w.nanos() / 1'000'000));
  }
  Table table(cols);

  for (std::size_t objects = 4; objects <= 60; objects += 4) {
    std::vector<double> row = {static_cast<double>(objects)};
    for (Duration w : windows) {
      ExperimentSpec spec;
      spec.seed = 500 + objects;
      spec.objects = objects;
      spec.window = w;
      spec.admission_control = false;
      spec.duration = seconds(5);
      const RunResult r = run_experiment(spec);
      row.push_back(r.avg_max_distance_ms);
    }
    table.add_row(std::move(row));
  }
  table.print();
  std::printf("\n(avg max staleness in ms; everything offered is accepted)\n");
  return 0;
}
