// Figure 11: duration of backup inconsistency vs message-loss probability
// under NORMAL update scheduling, one curve per window size.
//
// Expected shape (paper §5.3): durations grow with loss, and — because the
// transmission period is derived from the window (r = (δ−ℓ)/2) — a LARGER
// window means a LONGER stay out of window once an update is lost.
#include <cstdio>

#include "common/harness.hpp"

using namespace rtpb;
using namespace rtpb::bench;

int main() {
  banner("Figure 11: duration of backup inconsistency, normal scheduling",
         "longer with more loss; larger window => LONGER inconsistency");

  const std::vector<Duration> windows = {millis(40), millis(80), millis(160)};
  std::vector<std::string> cols = {"loss_pct"};
  for (Duration w : windows) {
    cols.push_back("ms_w" + std::to_string(w.nanos() / 1'000'000));
  }
  Table table(cols);

  for (double loss : {0.05, 0.10, 0.20, 0.30, 0.40, 0.50}) {
    std::vector<double> row = {loss * 100.0};
    for (Duration w : windows) {
      ExperimentSpec spec;
      spec.seed = 600 + static_cast<std::uint64_t>(loss * 1000);
      spec.objects = 5;
      spec.window = w;
      spec.update_loss = loss;
      spec.scheduling = core::UpdateScheduling::kNormal;
      spec.duration = seconds(60);
      const RunResult r = run_experiment_avg(spec);
      row.push_back(r.mean_inconsistency_ms);
    }
    table.add_row(std::move(row));
  }
  table.print();
  std::printf("\n(mean duration of one out-of-window episode, ms)\n");
  return 0;
}
