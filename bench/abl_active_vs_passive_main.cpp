// Ablation A6: passive RTPB vs the active (state-machine) baseline.
//
// The paper's §1/§6.1 claim: "schemes based on active replication tend to
// have more overhead in responding to client requests since an agreement
// protocol must be performed".  Same workload, same simulated LAN, both
// schemes on the x-kernel stack: RTPB answers a write as soon as the local
// copy is updated; the active baseline answers after every replica has
// acknowledged the sequenced write.
#include <cstdio>

#include "common/harness.hpp"
#include "core/active.hpp"

using namespace rtpb;
using namespace rtpb::bench;

int main() {
  banner("Ablation A6: passive (RTPB) vs active (state-machine) replication",
         "active agreement inflates client response time; loss makes it worse");

  Table table({"loss_pct", "scheme", "resp_ms", "p99_ms", "msgs_per_wr", "identical"});
  for (double loss : {0.0, 0.05, 0.10, 0.20}) {
    // -- passive RTPB (1 backup) --
    {
      ExperimentSpec spec;
      spec.seed = 9700 + static_cast<std::uint64_t>(loss * 1000);
      spec.objects = 5;
      spec.update_loss = loss;
      spec.duration = seconds(10);
      const RunResult r = run_experiment(spec);
      // writes over 10s at 10ms per object: ~1000 per object.
      const double writes = 5.0 * 10.0 / 0.010;
      table.add_row({loss * 100, 0.0, r.mean_response_ms, r.p90_response_ms,
                     static_cast<double>(r.updates_sent) / writes, 1.0});
    }
    // -- active baseline (1 follower, then 3 followers) --
    for (std::size_t followers : {1u, 3u}) {
      core::ActiveReplicationService::Params params;
      params.seed = 9800 + static_cast<std::uint64_t>(loss * 1000);
      params.link.propagation = millis(1);
      params.link.jitter = micros(200);
      params.followers = followers;
      params.message_loss_probability = loss;
      core::ActiveReplicationService service(params);
      service.start();
      for (core::ObjectId id = 1; id <= 5; ++id) {
        core::ObjectSpec object;
        object.id = id;
        object.name = "obj" + std::to_string(id);
        object.client_period = millis(10);
        object.client_exec = micros(200);
        service.add_object(object);
      }
      service.run_for(seconds(10));
      service.stop_clients();
      service.run_for(seconds(2));
      const double writes = static_cast<double>(service.writes_started());
      table.add_row({loss * 100, static_cast<double>(followers),
                     service.response_times().mean(), service.response_times().quantile(0.99),
                     writes > 0 ? static_cast<double>(service.prepares_sent() +
                                                      service.acks_received()) /
                                      writes
                                : 0.0,
                     service.replicas_identical() ? 1.0 : 0.0});
    }
  }
  table.print();
  std::printf("\n(scheme 0 = passive RTPB with 1 backup; scheme N = active with N\n"
              " followers.  RTPB's response is the local IPC service time — the\n"
              " agreement round is off the client's critical path.  `identical`:\n"
              " active replicas converge bit-for-bit; RTPB trades that for speed\n"
              " inside the temporal window.)\n");
  return 0;
}
