// Figure 8: average maximum primary–backup distance vs message-loss
// probability, one curve per client write rate.
//
// Expected shape (paper §5.2): near zero without loss; grows with the loss
// rate (each lost update extends the backup's staleness by one
// transmission period) and with the client write rate (fast writers make
// every transmission carry a fresh version, so every loss costs; slow
// writers often lose redundant updates).  Paper scale: ~700 ms at 10%
// loss on their testbed.
#include <cstdio>

#include "common/harness.hpp"

using namespace rtpb;
using namespace rtpb::bench;

int main() {
  banner("Figure 8: average maximum primary/backup distance vs message loss",
         "distance ~0 without loss; increases with loss rate and client write rate");

  // Write periods chosen around the transmission period (window 40ms,
  // l~2ms => r ~ 19ms) so redundancy masks losses for slow writers.
  const std::vector<Duration> write_periods = {millis(20), millis(50), millis(100)};
  std::vector<std::string> cols = {"loss_pct"};
  for (Duration p : write_periods) {
    cols.push_back("ms_p" + std::to_string(p.nanos() / 1'000'000));
  }
  Table table(cols);

  for (double loss : {0.0, 0.02, 0.05, 0.10, 0.15, 0.20}) {
    std::vector<double> row = {loss * 100.0};
    for (Duration p : write_periods) {
      ExperimentSpec spec;
      spec.seed = 300 + static_cast<std::uint64_t>(loss * 1000);
      spec.objects = 5;
      spec.client_period = p;
      spec.delta_primary = p;  // client must satisfy p <= delta_P
      spec.window = millis(40);
      spec.update_loss = loss;
      spec.duration = seconds(30);
      const RunResult r = run_experiment_avg(spec);
      row.push_back(r.avg_max_excess_distance_ms);
    }
    table.add_row(std::move(row));
  }
  table.print();
  std::printf("\n(avg over objects of max replication-attributable staleness\n"
              " max(0, max_t (T_P - T_B) - p_i), ms; ms_pN = write period N ms,\n"
              " faster writers left)\n");
  return 0;
}
