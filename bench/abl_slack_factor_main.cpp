// Ablation A2 (design choice, paper §4.3): the transmission-period slack
// factor.  The paper sends at (delta - l)/2 — twice as often as strictly
// necessary — "to compensate for potential message loss".  This bench
// compares slack 1 (send exactly at the window rate), 2 (paper) and 4
// across a loss sweep: slack 1 leaves no headroom (violations even at low
// loss), higher slack buys robustness at the cost of update bandwidth.
#include <cstdio>

#include "common/harness.hpp"

using namespace rtpb;
using namespace rtpb::bench;

int main() {
  banner("Ablation A2: transmission-period slack factor (paper uses 2)",
         "slack 1 violates the window at the first loss; higher slack costs bandwidth");

  Table table({"loss_pct", "slack", "updates", "viol", "mean_inc_ms", "dist_ms"});
  for (double loss : {0.0, 0.05, 0.10, 0.20}) {
    for (std::int64_t slack : {1, 2, 4}) {
      core::ServiceParams params;
      params.seed = 8600 + static_cast<std::uint64_t>(loss * 1000);
      params.link.propagation = millis(1);
      params.link.jitter = micros(200);
      params.config.update_loss_probability = loss;
      params.config.slack_factor = slack;
      core::RtpbService service(params);
      service.start();
      for (core::ObjectId id = 1; id <= 5; ++id) {
        core::ObjectSpec object;
        object.id = id;
        object.name = "obj" + std::to_string(id);
        object.client_period = millis(10);
        object.client_exec = micros(200);
        object.update_exec = millis(1);
        object.delta_primary = millis(20);
        object.delta_backup = millis(100);
        (void)service.register_object(object);
      }
      service.warm_up(seconds(1));
      service.run_for(seconds(30));
      service.finish();

      table.add_row({loss * 100, static_cast<double>(slack),
                     static_cast<double>(service.primary().updates_sent()),
                     static_cast<double>(service.metrics().inconsistency_intervals()),
                     service.metrics().mean_inconsistency_duration_ms(),
                     service.metrics().average_max_excess_distance_ms()});
    }
  }
  table.print();
  std::printf("\n(updates = bandwidth cost; viol/mean_inc = consistency cost)\n");
  return 0;
}
