// explore_main — bounded exhaustive exploration of the failover/epoch
// protocol (see src/explore/explorer.hpp for the model).
//
//   explore_main                          # default acceptance sweep:
//                                         # 2 nodes, 1 object, crash/recruit
//                                         # candidates + 1 droppable frame
//   explore_main --backups 2 --objects 2  # wider cluster, more state
//   explore_main --sabotage split-brain --emit ce.txt
//                                         # self-test: fencing off under a
//                                         # partition MUST yield a
//                                         # cross-epoch-apply counterexample,
//                                         # replayable with
//                                         # chaos_main --replay ce.txt
//
// Exit status: 0 on a clean exhaustive sweep (or, under --sabotage, when
// the expected oracle was caught); 1 otherwise.
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "explore/explorer.hpp"
#include "util/log.hpp"

namespace {

void usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " [options]\n"
      << "  --backups N           backups in the chain (default 1 = 2-node pair)\n"
      << "  --objects N           replicated objects (default 1)\n"
      << "  --seed S              service seed for the non-explored randomness (default 1)\n"
      << "  --horizon-ms MS       virtual time per trajectory (default 1500)\n"
      << "  --grace-ms MS         oracle grace around a fired fault (default 700)\n"
      << "  --crash-primary-at MS add a crash-primary candidate (repeatable)\n"
      << "  --crash-backup-at MS  add a crash-backup candidate (repeatable)\n"
      << "  --standby-at MS       add an add-standby candidate (repeatable)\n"
      << "  --partition-at MS     add a partition-primary candidate (repeatable)\n"
      << "  --crash-restart-primary-at MS  add a crash-restart-primary candidate\n"
      << "                        (repeatable; arms durable replicas)\n"
      << "  --crash-restart-backup-at MS   add a crash-restart-backup candidate\n"
      << "  --restart-delay-ms MS crash-restart outage length (default 400)\n"
      << "  --torn-bytes N        shear N bytes off a fired crash-restart victim's\n"
      << "                        WAL tail (torn-write sabotage; default 0 = off)\n"
      << "  --no-default-faults   empty candidate set (any --*-at also clears defaults)\n"
      << "  --faults N            fault budget per trajectory (default 2)\n"
      << "  --drops N             frame-drop budget per trajectory (default 1)\n"
      << "  --drop-from-ms MS     drop window start (default 101)\n"
      << "  --drop-until-ms MS    drop window end (default 401; end<=start disables)\n"
      << "  --max-trajectories N  DFS size cap (default 20000)\n"
      << "  --max-choices N       choice points per trajectory (default 160)\n"
      << "  --no-prune            disable visited-state expansion pruning\n"
      << "  --no-sleep-sets       disable the commuting-delivery reduction\n"
      << "  --sabotage MODE       none | split-brain | no-failover | torn-write\n"
      << "  --emit FILE           write the first counterexample artifact to FILE;\n"
      << "                        a flight-recorder autopsy of its replay is\n"
      << "                        attached as FILE.postmortem.jsonl\n"
      << "  --metrics-out FILE    write the final metrics registry snapshot JSON of\n"
      << "                        a default-decisions trajectory after the sweep\n"
      << "  --quiet               suppress progress lines\n";
}

}  // namespace

int main(int argc, char** argv) {
  using rtpb::explore::ExploreConfig;

  ExploreConfig cfg;
  // Default acceptance scenario: one droppable-frame window over the
  // pre-failover phase, crash/recruit candidates off the 20 ms grids.
  cfg.bounds.drop_from = rtpb::TimePoint::zero() + rtpb::millis(101);
  cfg.bounds.drop_until = rtpb::TimePoint::zero() + rtpb::millis(401);
  std::string sabotage = "none";
  std::string emit_path;
  std::string metrics_out_path;
  bool default_faults = true;
  bool quiet = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << arg << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    auto next_ms = [&] { return rtpb::millis(std::strtoll(next(), nullptr, 10)); };
    if (arg == "--backups") {
      cfg.backups = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--objects") {
      cfg.objects = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--seed") {
      cfg.service_seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--horizon-ms") {
      cfg.bounds.horizon = next_ms();
    } else if (arg == "--grace-ms") {
      cfg.failover_grace = next_ms();
    } else if (arg == "--crash-primary-at") {
      cfg.crash_primary_at.push_back(next_ms());
      default_faults = false;
    } else if (arg == "--crash-backup-at") {
      cfg.crash_backup_at.push_back(next_ms());
      default_faults = false;
    } else if (arg == "--standby-at") {
      cfg.add_standby_at.push_back(next_ms());
      default_faults = false;
    } else if (arg == "--partition-at") {
      cfg.partition_at.push_back(next_ms());
      default_faults = false;
    } else if (arg == "--crash-restart-primary-at") {
      cfg.crash_restart_primary_at.push_back(next_ms());
      default_faults = false;
    } else if (arg == "--crash-restart-backup-at") {
      cfg.crash_restart_backup_at.push_back(next_ms());
      default_faults = false;
    } else if (arg == "--restart-delay-ms") {
      cfg.restart_delay = next_ms();
    } else if (arg == "--torn-bytes") {
      cfg.torn_tail_bytes = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--no-default-faults") {
      default_faults = false;
    } else if (arg == "--faults") {
      cfg.bounds.fault_budget = static_cast<std::uint32_t>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--drops") {
      cfg.bounds.drop_budget = static_cast<std::uint32_t>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--drop-from-ms") {
      cfg.bounds.drop_from = rtpb::TimePoint::zero() + next_ms();
    } else if (arg == "--drop-until-ms") {
      cfg.bounds.drop_until = rtpb::TimePoint::zero() + next_ms();
    } else if (arg == "--max-trajectories") {
      cfg.bounds.max_trajectories = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--max-choices") {
      cfg.bounds.max_choice_points = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--no-prune") {
      cfg.prune_visited = false;
    } else if (arg == "--no-sleep-sets") {
      cfg.sleep_sets = false;
    } else if (arg == "--sabotage") {
      sabotage = next();
    } else if (arg == "--emit") {
      emit_path = next();
    } else if (arg == "--metrics-out") {
      metrics_out_path = next();
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else {
      std::cerr << "unknown option: " << arg << "\n";
      usage(argv[0]);
      return 2;
    }
  }

  // Thousands of service runs: keep per-run WARN noise (crashed links,
  // dropped frames) out of the sweep output.
  rtpb::Logger::instance().set_level(rtpb::LogLevel::kError);

  // Default candidate set (unless the user named any candidate, or asked
  // for none): a primary crash, a later backup crash, and a standby
  // recruit — all off the 20 ms protocol grids.
  if (default_faults) {
    cfg.crash_primary_at.push_back(rtpb::millis(251));
    cfg.crash_backup_at.push_back(rtpb::millis(451));
    cfg.add_standby_at.push_back(rtpb::millis(601));
  }

  std::string expect_oracle;
  if (sabotage == "split-brain") {
    // Fencing off under a primary↔successor partition: the deposed primary
    // keeps feeding epoch-stale updates to the re-recruited second backup.
    // The exploration MUST find a cross-epoch-apply counterexample.
    cfg.epoch_fencing = false;
    cfg.backups = 2;
    cfg.crash_primary_at.clear();
    cfg.crash_backup_at.clear();
    cfg.add_standby_at.clear();
    cfg.partition_at.assign(1, rtpb::millis(251));
    cfg.bounds.fault_budget = 1;
    cfg.bounds.drop_budget = 0;
    expect_oracle = "cross-epoch-apply";
  } else if (sabotage == "no-failover") {
    // Failure detector never declares (same lobotomy as chaos_main's
    // mode): a crashed primary stays dead and unreplaced, so once the
    // crash epoch closes the cluster has zero primaries.
    // exactly-one-primary must catch it.
    cfg.ping_max_misses = 1000000;
    cfg.crash_primary_at.assign(1, rtpb::millis(251));
    cfg.crash_backup_at.clear();
    cfg.add_standby_at.clear();
    cfg.partition_at.clear();
    cfg.bounds.fault_budget = 1;
    cfg.bounds.drop_budget = 0;
    expect_oracle = "exactly-one-primary";
  } else if (sabotage == "torn-write") {
    // A fired crash-restart loses part of its WAL tail while down: the
    // recovered image silently misses client-acked versions.  The
    // durable-recovery oracle (not merely monotone-versions, which also
    // trips on the rollback) must name the durability hole.
    cfg.crash_primary_at.clear();
    cfg.crash_backup_at.clear();
    cfg.add_standby_at.clear();
    cfg.partition_at.clear();
    cfg.crash_restart_backup_at.assign(1, rtpb::millis(251));
    cfg.torn_tail_bytes = 512;
    cfg.bounds.fault_budget = 1;
    cfg.bounds.drop_budget = 0;
    expect_oracle = "durable-recovery";
  } else if (sabotage != "none") {
    std::cerr << "unknown sabotage mode: " << sabotage << "\n";
    return 2;
  }

  std::cout << "exploring: backups=" << cfg.backups << " objects=" << cfg.objects
            << " fencing=" << (cfg.epoch_fencing ? "on" : "off")
            << " faults<=" << cfg.bounds.fault_budget << " drops<=" << cfg.bounds.drop_budget
            << " horizon=" << cfg.bounds.horizon.millis() << "ms"
            << " candidates=" << cfg.crash_primary_at.size() + cfg.crash_backup_at.size() +
                                     cfg.add_standby_at.size() + cfg.partition_at.size() +
                                     cfg.crash_restart_primary_at.size() +
                                     cfg.crash_restart_backup_at.size()
            << "\n";

  const rtpb::explore::ExploreReport report =
      rtpb::explore::explore(cfg, quiet ? nullptr : &std::cout);
  std::cout << report.summary() << "\n";

  for (const rtpb::explore::Counterexample& ce : report.counterexamples) {
    std::cout << "counterexample: " << ce.oracle << " — " << ce.detail << "\n"
              << "  minimized trace: " << ce.trace.size() << " decisions\n";
    if (!emit_path.empty()) {
      std::ofstream out(emit_path);
      out << ce.to_text();
      std::cout << "  written to " << emit_path << " (replay: chaos_main --replay "
                << emit_path << ")\n";
      // Autopsy: re-run the minimized trace with the flight recorder on and
      // attach the resulting post-mortem next to the artifact.  Replaying
      // with observers attached takes the identical trajectory.
      rtpb::explore::ObserveOptions observe;
      observe.postmortem_path = emit_path + ".postmortem.jsonl";
      (void)rtpb::explore::run_trajectory(ce.config, ce.trace, observe);
      std::cout << "  post-mortem attached: " << observe.postmortem_path << "\n";
    }
  }

  if (!metrics_out_path.empty()) {
    // Instrumented reference trajectory (all-default decisions): gives the
    // sweep a metrics snapshot without perturbing the exploration itself.
    rtpb::explore::ObserveOptions observe;
    observe.telemetry = true;
    observe.metrics_json_path = metrics_out_path;
    (void)rtpb::explore::run_trajectory(cfg, {}, observe);
    std::cout << "metrics written to " << metrics_out_path << "\n";
  }

  if (!expect_oracle.empty()) {
    bool caught = false;
    for (const rtpb::explore::Counterexample& ce : report.counterexamples) {
      if (ce.oracle == expect_oracle) caught = true;
    }
    if (!caught) {
      std::cout << "sabotage '" << sabotage << "' was NOT caught — oracle or explorer gap!\n";
      return 1;
    }
    std::cout << "sabotage '" << sabotage << "' caught as expected\n";
    return 0;
  }
  if (report.hit_trajectory_cap) {
    std::cout << "NOT exhaustive: trajectory cap hit — raise --max-trajectories\n";
  }
  return report.ok() ? 0 : 1;
}
