// bench_report — compare a fresh BENCH_*.json against a committed baseline
// and fail on regression.
//
//   bench_report --baseline bench/baselines/BENCH_wirepath.json
//                --current BENCH_wirepath.json
//                [--max-regression 25] [--stable-only]
//
// Input is the flat format bench::JsonMetrics writes:
//   {"name": "...", "metrics": {"key": number, ...}}
//
// Direction is inferred from the key: anything containing "per_sec" is
// higher-is-better; everything else (ns, ms, allocations, frame counts) is
// lower-is-better.  --stable-only restricts the gate to metrics that are
// deterministic by construction — allocation counts ("allocs" in the key)
// and seed-pure counters (keys ending "_deterministic", e.g. the parallel
// engine's digest/window/event totals) — which are safe to enforce on
// shared CI runners where wall-clock numbers jitter far beyond any useful
// threshold; timing metrics are still printed.
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace {

using Metrics = std::vector<std::pair<std::string, double>>;

bool parse_metrics_file(const std::string& path, Metrics& out) {
  std::ifstream f(path);
  if (!f) {
    std::fprintf(stderr, "bench_report: cannot open %s\n", path.c_str());
    return false;
  }
  std::ostringstream ss;
  ss << f.rdbuf();
  const std::string text = ss.str();

  const std::size_t metrics_at = text.find("\"metrics\"");
  if (metrics_at == std::string::npos) {
    std::fprintf(stderr, "bench_report: %s has no \"metrics\" object\n", path.c_str());
    return false;
  }
  std::size_t pos = text.find('{', metrics_at);
  if (pos == std::string::npos) return false;
  ++pos;
  // Flat object: "key": number pairs until the closing brace.
  while (pos < text.size()) {
    while (pos < text.size() && (std::isspace(static_cast<unsigned char>(text[pos])) != 0 ||
                                 text[pos] == ',')) {
      ++pos;
    }
    if (pos >= text.size() || text[pos] == '}') break;
    if (text[pos] != '"') {
      std::fprintf(stderr, "bench_report: %s: malformed metrics at byte %zu\n",
                   path.c_str(), pos);
      return false;
    }
    const std::size_t key_end = text.find('"', pos + 1);
    if (key_end == std::string::npos) return false;
    const std::string key = text.substr(pos + 1, key_end - pos - 1);
    pos = text.find(':', key_end);
    if (pos == std::string::npos) return false;
    ++pos;
    while (pos < text.size() && std::isspace(static_cast<unsigned char>(text[pos])) != 0) ++pos;
    if (text.compare(pos, 4, "null") == 0) {
      pos += 4;
      continue;  // Inf/NaN placeholder: not comparable, skip.
    }
    char* end = nullptr;
    const double value = std::strtod(text.c_str() + pos, &end);
    if (end == text.c_str() + pos) {
      std::fprintf(stderr, "bench_report: %s: bad number for key %s\n", path.c_str(),
                   key.c_str());
      return false;
    }
    pos = static_cast<std::size_t>(end - text.c_str());
    out.emplace_back(key, value);
  }
  return true;
}

bool higher_is_better(const std::string& key) {
  return key.find("per_sec") != std::string::npos;
}

/// Seed-pure counters: a "_deterministic" suffix promises the value is a
/// pure function of the committed seeds, so ANY drift (either direction)
/// is a behaviour change, not noise.
bool is_exact_metric(const std::string& key) {
  constexpr const char kSuffix[] = "_deterministic";
  constexpr std::size_t kLen = sizeof(kSuffix) - 1;
  return key.size() >= kLen && key.compare(key.size() - kLen, kLen, kSuffix) == 0;
}

bool is_stable_metric(const std::string& key) {
  return key.find("allocs") != std::string::npos || is_exact_metric(key);
}

const double* find(const Metrics& m, const std::string& key) {
  for (const auto& [k, v] : m) {
    if (k == key) return &v;
  }
  return nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  std::string baseline_path;
  std::string current_path;
  double max_regression_pct = 25.0;
  bool stable_only = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--baseline") {
      baseline_path = next();
    } else if (arg == "--current") {
      current_path = next();
    } else if (arg == "--max-regression") {
      max_regression_pct = std::strtod(next(), nullptr);
    } else if (arg == "--stable-only") {
      stable_only = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s --baseline FILE --current FILE"
                   " [--max-regression PCT] [--stable-only]\n",
                   argv[0]);
      return 2;
    }
  }
  if (baseline_path.empty() || current_path.empty()) {
    std::fprintf(stderr, "bench_report: --baseline and --current are required\n");
    return 2;
  }

  Metrics baseline;
  Metrics current;
  if (!parse_metrics_file(baseline_path, baseline) ||
      !parse_metrics_file(current_path, current)) {
    return 2;
  }

  std::printf("%-40s %12s %12s %9s %6s\n", "metric", "baseline", "current", "delta%",
              "gate");
  int regressions = 0;
  int compared = 0;
  for (const auto& [key, cur] : current) {
    const double* base = find(baseline, key);
    if (base == nullptr) {
      std::printf("%-40s %12s %12.6g %9s %6s\n", key.c_str(), "-", cur, "-", "new");
      continue;
    }
    const bool gated = !stable_only || is_stable_metric(key);
    // Positive delta% = worse, whichever direction the metric improves in.
    double delta_pct = 0.0;
    if (*base != 0.0) {
      delta_pct = higher_is_better(key) ? (*base - cur) / *base * 100.0
                                        : (cur - *base) / *base * 100.0;
    } else if (cur != 0.0 && !higher_is_better(key)) {
      delta_pct = 100.0;  // grew from zero: treat as a full regression
    }
    const bool regressed =
        gated && (is_exact_metric(key) ? cur != *base : delta_pct > max_regression_pct);
    if (gated) ++compared;
    if (regressed) ++regressions;
    std::printf("%-40s %12.6g %12.6g %+8.1f%% %6s\n", key.c_str(), *base, cur, delta_pct,
                regressed ? "FAIL" : (gated ? "ok" : "info"));
  }
  for (const auto& [key, base] : baseline) {
    if (find(current, key) == nullptr) {
      std::printf("%-40s %12.6g %12s %9s %6s\n", key.c_str(), base, "-", "-", "gone");
      if (!stable_only || is_stable_metric(key)) ++regressions;
    }
  }

  std::printf("---\n%d gated metrics compared, %d regression(s) beyond %.0f%%%s\n",
              compared, regressions, max_regression_pct,
              stable_only ? " (stable metrics only)" : "");
  return regressions == 0 ? 0 : 1;
}
