// rtpb_top — terminal dashboard over the live health feed.
//
// Input is the JSONL health stream written by `chaos_main --health-out`
// (one {"type":"health",...} line per replica per tick, emitted by
// core::HealthFeed).  The tool renders a per-node panel — role, epoch,
// RTO, send-queue depth, overload / shed / degradation state — and a
// per-object panel with the temporal-consistency margins the SLO monitor
// watches (distance vs negotiated window δ).
//
//   rtpb_top health.jsonl             # post-hoc: final state + run summary
//   rtpb_top health.jsonl --at-ms 1200  # state as of a virtual instant
//   rtpb_top health.jsonl --follow    # tail a growing file, redraw per tick
//
// Like trace_inspect, empty or unparseable input exits non-zero with a
// diagnostic.  The parser understands exactly the flat JSON HealthFeed
// emits, not arbitrary JSON.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <thread>
#include <vector>

namespace {

struct ObjectHealth {
  double distance_ms = 0.0;
  double window_ms = 0.0;
  double margin_ms = 0.0;
  bool downgraded = false;
};

struct NodeHealth {
  double ts_ms = 0.0;
  std::string role;
  std::uint64_t epoch = 0;
  bool crashed = false;
  double rto_ms = 0.0;
  bool overloaded = false;
  std::uint64_t degradation_triggers = 0;
  std::uint64_t queue = 0;
  std::uint64_t shed = 0;
  std::uint64_t updates_sent = 0;
  std::uint64_t updates_applied = 0;
  std::uint64_t max_ack_lag = 0;  ///< max over peers and objects
};

struct Dashboard {
  double latest_ts_ms = 0.0;
  std::uint64_t snapshots = 0;
  std::map<std::uint64_t, NodeHealth> nodes;
  std::map<std::uint64_t, ObjectHealth> objects;
  // Run-wide extrema for the summary footer.
  std::map<std::uint64_t, double> worst_margin_ms;
  std::uint64_t overloaded_snapshots = 0;
};

// --- minimal field extraction (same discipline as trace_inspect) ---------

std::size_t find_key(const std::string& s, std::size_t from, const char* key) {
  const std::string needle = std::string("\"") + key + "\":";
  const std::size_t at = s.find(needle, from);
  return at == std::string::npos ? std::string::npos : at + needle.size();
}

bool get_u64(const std::string& s, std::size_t from, const char* key, std::uint64_t& out) {
  const std::size_t at = find_key(s, from, key);
  if (at == std::string::npos) return false;
  out = std::strtoull(s.c_str() + at, nullptr, 10);
  return true;
}

bool get_double(const std::string& s, std::size_t from, const char* key, double& out) {
  const std::size_t at = find_key(s, from, key);
  if (at == std::string::npos) return false;
  out = std::strtod(s.c_str() + at, nullptr);
  return true;
}

bool get_bool(const std::string& s, std::size_t from, const char* key, bool& out) {
  const std::size_t at = find_key(s, from, key);
  if (at == std::string::npos) return false;
  out = s.compare(at, 4, "true") == 0;
  return true;
}

bool get_string(const std::string& s, std::size_t from, const char* key, std::string& out) {
  std::size_t at = find_key(s, from, key);
  if (at == std::string::npos || at >= s.size() || s[at] != '"') return false;
  out.clear();
  for (++at; at < s.size() && s[at] != '"'; ++at) out.push_back(s[at]);
  return true;
}

/// Ingest one health line into the dashboard.  Returns false when the line
/// is not a health record.
bool ingest(const std::string& line, Dashboard& dash) {
  std::string type;
  if (!get_string(line, 0, "type", type) || type != "health") return false;
  std::uint64_t node = 0;
  if (!get_u64(line, 0, "node", node)) return false;

  NodeHealth& nh = dash.nodes[node];
  get_double(line, 0, "ts_ms", nh.ts_ms);
  get_string(line, 0, "role", nh.role);
  get_u64(line, 0, "epoch", nh.epoch);
  get_bool(line, 0, "crashed", nh.crashed);
  get_double(line, 0, "rto_ms", nh.rto_ms);
  get_bool(line, 0, "overloaded", nh.overloaded);
  get_u64(line, 0, "degradation_triggers", nh.degradation_triggers);
  get_u64(line, 0, "queue", nh.queue);
  get_u64(line, 0, "shed", nh.shed);
  get_u64(line, 0, "updates_sent", nh.updates_sent);
  get_u64(line, 0, "updates_applied", nh.updates_applied);
  if (nh.overloaded) ++dash.overloaded_snapshots;
  if (nh.ts_ms > dash.latest_ts_ms) dash.latest_ts_ms = nh.ts_ms;
  ++dash.snapshots;

  // Peer ack-lag entries: scan each {"node":..,"max_ack_lag":..} pair.
  nh.max_ack_lag = 0;
  const std::size_t peers_at = line.find("\"peers\":[");
  if (peers_at != std::string::npos) {
    std::size_t pos = peers_at;
    std::uint64_t lag = 0;
    while ((pos = find_key(line, pos, "max_ack_lag")) != std::string::npos) {
      lag = std::strtoull(line.c_str() + pos, nullptr, 10);
      if (lag > nh.max_ack_lag) nh.max_ack_lag = lag;
    }
  }

  // Per-object entries (only on the acting primary's line).
  std::size_t obj_at = line.find("\"objects\":[");
  if (obj_at != std::string::npos) {
    std::size_t pos = obj_at;
    std::uint64_t id = 0;
    while ((pos = find_key(line, pos, "id")) != std::string::npos) {
      id = std::strtoull(line.c_str() + pos, nullptr, 10);
      ObjectHealth& oh = dash.objects[id];
      get_double(line, pos, "distance_ms", oh.distance_ms);
      get_double(line, pos, "window_ms", oh.window_ms);
      get_double(line, pos, "margin_ms", oh.margin_ms);
      get_bool(line, pos, "downgraded", oh.downgraded);
      auto [it, inserted] = dash.worst_margin_ms.try_emplace(id, oh.margin_ms);
      if (!inserted && oh.margin_ms < it->second) it->second = oh.margin_ms;
    }
  }
  return true;
}

void render(const Dashboard& dash, bool follow) {
  if (follow) std::printf("\x1b[2J\x1b[H");  // clear + home
  std::printf("rtpb_top — t = %.1f ms  (%llu snapshots)\n", dash.latest_ts_ms,
              static_cast<unsigned long long>(dash.snapshots));
  std::printf("\n%-6s %-8s %6s %8s %9s %6s %6s %8s %8s %8s\n", "node", "role", "epoch",
              "rto_ms", "overload", "queue", "shed", "sent", "applied", "ack-lag");
  for (const auto& [node, nh] : dash.nodes) {
    std::printf("%-6llu %-8s %6llu %8.2f %9s %6llu %6llu %8llu %8llu %8llu%s\n",
                static_cast<unsigned long long>(node),
                nh.crashed ? "CRASHED" : nh.role.c_str(),
                static_cast<unsigned long long>(nh.epoch), nh.rto_ms,
                nh.overloaded ? "YES" : "-", static_cast<unsigned long long>(nh.queue),
                static_cast<unsigned long long>(nh.shed),
                static_cast<unsigned long long>(nh.updates_sent),
                static_cast<unsigned long long>(nh.updates_applied),
                static_cast<unsigned long long>(nh.max_ack_lag),
                nh.degradation_triggers > 0 ? "  !degraded" : "");
  }
  if (!dash.objects.empty()) {
    std::printf("\n%-8s %12s %12s %12s %12s  %s\n", "object", "distance_ms", "window_ms",
                "margin_ms", "worst_margin", "state");
    for (const auto& [id, oh] : dash.objects) {
      const auto worst = dash.worst_margin_ms.find(id);
      const char* state = oh.margin_ms < 0.0          ? "VIOLATING"
                          : oh.downgraded             ? "downgraded"
                          : oh.margin_ms < oh.window_ms * 0.25 ? "near-miss"
                                                      : "ok";
      std::printf("%-8llu %12.3f %12.3f %12.3f %12.3f  %s\n",
                  static_cast<unsigned long long>(id), oh.distance_ms, oh.window_ms,
                  oh.margin_ms,
                  worst == dash.worst_margin_ms.end() ? oh.margin_ms : worst->second, state);
    }
  }
  std::printf("\noverloaded in %llu snapshot(s) over the run\n",
              static_cast<unsigned long long>(dash.overloaded_snapshots));
  std::fflush(stdout);
}

void usage(const char* argv0) {
  std::cerr << "usage: " << argv0 << " HEALTH.jsonl [--follow] [--at-ms MS]\n"
            << "  --follow      tail the file, redrawing as new snapshots arrive\n"
            << "  --at-ms MS    post-hoc: render the state as of virtual instant MS\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  bool follow = false;
  double at_ms = -1.0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--follow") {
      follow = true;
    } else if (arg == "--at-ms") {
      if (i + 1 >= argc) {
        std::cerr << arg << " needs a value\n";
        return 2;
      }
      at_ms = std::strtod(argv[++i], nullptr);
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "unknown option: " << arg << "\n";
      usage(argv[0]);
      return 2;
    } else {
      path = arg;
    }
  }
  if (path.empty()) {
    usage(argv[0]);
    return 2;
  }

  std::ifstream in(path);
  if (!in) {
    std::cerr << "cannot open " << path << "\n";
    return 1;
  }

  Dashboard dash;
  std::uint64_t lines_seen = 0;
  std::string line;

  if (follow) {
    // Tail loop: drain available lines, redraw, sleep, repeat.  Ends at
    // EOF only when the file stops growing AND stdin is closed — in
    // practice the user interrupts; each drained batch redraws once.
    std::uint64_t quiet_polls = 0;
    while (true) {
      bool advanced = false;
      while (std::getline(in, line)) {
        if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
        ++lines_seen;
        if (ingest(line, dash)) advanced = true;
      }
      in.clear();  // clear EOF so the next getline retries
      if (advanced) {
        render(dash, /*follow=*/true);
        quiet_polls = 0;
      } else if (++quiet_polls > 50) {
        break;  // ~5 s with no growth: assume the run is over
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
  } else {
    while (std::getline(in, line)) {
      if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
      ++lines_seen;
      if (at_ms >= 0.0) {
        double ts = 0.0;
        if (get_double(line, 0, "ts_ms", ts) && ts > at_ms) continue;
      }
      ingest(line, dash);
    }
  }

  if (lines_seen == 0) {
    std::cerr << path << ": empty input — no JSONL lines (expected the output of "
              << "chaos_main --health-out)\n";
    return 1;
  }
  if (dash.snapshots == 0) {
    std::cerr << path << ": no parseable health records in "
              << static_cast<unsigned long long>(lines_seen)
              << " line(s) — not a HealthFeed JSONL stream\n";
    return 1;
  }
  if (!follow) render(dash, /*follow=*/false);
  return 0;
}
