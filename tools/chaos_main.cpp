// chaos_main — multi-seed driver for the deterministic chaos harness.
//
// Each seed is a complete experiment: a generated fault schedule, a
// generated workload, a full RtpbService run, and continuous oracle
// checking.  Exit status is 0 iff every seed finished with zero oracle
// violations; every failing seed prints its violations and a
// ready-to-paste FaultPlan reproducer.
//
//   chaos_main --seeds 200                # sweep seeds 0..199
//   chaos_main --seed 42                  # one seed, verbose
//   chaos_main --seeds 16 --duration-ms 30000 --intensity 2
//   chaos_main --seeds 8 --sabotage no-failover   # oracle self-test
//
// The --sabotage modes deliberately break the service to prove the
// oracles catch real bugs: `no-failover` lobotomises the failure
// detector so a primary crash is never failed over (exactly-one-primary
// must fire), `slow-updates` forces an 800 ms transmission period that
// dwarfs every negotiated window (staleness-window must fire),
// `split-brain` disables epoch fencing under a primary↔successor
// partition so the deposed primary keeps feeding stale-epoch updates to
// the surviving backup (cross-epoch-apply must fire), and `no-shedding`
// turns graceful degradation off under pure overload faults so windows
// are violated with no renegotiation notice (no-silent-violation must
// fire).
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "chaos/harness.hpp"
#include "explore/explorer.hpp"
#include "psim/chaos.hpp"
#include "util/log.hpp"

namespace {

/// Replay a counterexample artifact emitted by explore_main --emit.
/// Exit 0 iff the recorded oracle violation reproduces.
int replay_counterexample(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "cannot open " << path << "\n";
    return 2;
  }
  std::ostringstream text;
  text << in.rdbuf();
  const auto ce = rtpb::explore::parse_counterexample(text.str());
  if (!ce) {
    std::cerr << path << ": not a parseable rtpb-explore counterexample\n";
    return 2;
  }
  std::cout << "replaying counterexample (" << ce->trace.size() << " decisions, oracle "
            << ce->oracle << ")\n";
  const rtpb::explore::TrajectoryResult res = rtpb::explore::replay(*ce);
  for (const rtpb::chaos::OracleViolation& v : res.violations) {
    std::cout << "  [" << v.at.to_string() << "] " << v.oracle << ": " << v.detail << "\n";
  }
  if (!rtpb::explore::reproduces(res, ce->oracle)) {
    std::cout << "counterexample did NOT reproduce '" << ce->oracle << "'\n";
    return 1;
  }
  std::cout << "counterexample reproduced '" << ce->oracle << "'\n";
  std::cout << "FaultPlan reproducer:\n" << ce->fault_plan();
  return 0;
}

void usage(const char* argv0) {
  std::cerr << "usage: " << argv0 << " [options]\n"
            << "  --seeds N          number of seeds to sweep (default 16)\n"
            << "  --first-seed S     first seed of the sweep (default 0)\n"
            << "  --seed S           run exactly one seed\n"
            << "  --duration-ms MS   virtual run length per seed (default 20000)\n"
            << "  --intensity X      fault-count multiplier (default 1.0)\n"
            << "  --objects N        objects offered per seed (default 4)\n"
            << "  --backups N        backups in the replication chain (default 1)\n"
            << "  --shards N         shard the workload over N shards and add\n"
            << "                     shard-scoped loss storms (default 1 = off;\n"
            << "                     1 keeps digests identical to unsharded builds)\n"
            << "  --threads N        N > 1: parallel engine — one experiment per\n"
            << "                     shard (needs --shards >= 2), advanced in\n"
            << "                     lock-stepped lookahead windows on N workers;\n"
            << "                     per-shard digests are thread-count-invariant.\n"
            << "                     N <= 1 (default) keeps the classic sequential\n"
            << "                     path, byte-identical to previous builds\n"
            << "  --no-crashes       disable crash/recruit scenarios\n"
            << "  --no-batch         send one kUpdate frame per object instead of\n"
            << "                     coalescing into kUpdateBatch (different digests)\n"
            << "  --partition        partition primary from successor instead of\n"
            << "                     crashing (needs --backups >= 2; replaces crashes)\n"
            << "  --overload         enable the overload fault family (cpu_spike,\n"
            << "                     throttle_bandwidth, inflate_latency)\n"
            << "  --crash-restart    durable replicas: crash one mid-run and power it\n"
            << "                     back up from WAL + checkpoint (incremental rejoin;\n"
            << "                     replaces the plain crash family)\n"
            << "  --sabotage MODE    none | no-failover | slow-updates | split-brain |\n"
            << "                     no-shedding | torn-write\n"
            << "  --log-warnings     keep service WARN lines (hidden by default)\n"
            << "  --telemetry        collect causal spans + metrics (per-seed summary)\n"
            << "  --trace-out FILE   write a Chrome trace (Perfetto-loadable) for the\n"
            << "                     last seed run; implies --telemetry\n"
            << "  --jsonl-out FILE   write the JSONL event stream for the last seed run\n"
            << "                     (input of trace_inspect); implies --telemetry\n"
            << "  --metrics-out FILE write the final metrics registry snapshot JSON;\n"
            << "                     implies --telemetry\n"
            << "  --flight-recorder  keep the in-memory flight recorder on (events\n"
            << "                     ride the ring even if nothing is dumped)\n"
            << "  --postmortem FILE  dump a post-mortem artifact of the last-N flight\n"
            << "                     events on the first oracle violation or crash\n"
            << "                     fault (end-of-run otherwise); implies the recorder\n"
            << "  --health-out FILE  emit per-replica JSONL health snapshots (input of\n"
            << "                     rtpb_top)\n"
            << "  --health-period-ms MS  health snapshot period (default 100)\n"
            << "  --replay FILE      replay an explore_main counterexample artifact;\n"
            << "                     exit 0 iff its oracle violation reproduces\n";
}

}  // namespace

int main(int argc, char** argv) {
  using rtpb::chaos::ChaosOptions;

  std::uint64_t first_seed = 0;
  std::size_t count = 16;
  std::size_t threads = 1;
  bool single = false;
  bool log_warnings = false;
  ChaosOptions opts;
  std::string sabotage = "none";

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << arg << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--seeds") {
      count = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--first-seed") {
      first_seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--seed") {
      first_seed = std::strtoull(next(), nullptr, 10);
      count = 1;
      single = true;
    } else if (arg == "--duration-ms") {
      opts.duration = rtpb::millis(std::strtoll(next(), nullptr, 10));
    } else if (arg == "--intensity") {
      opts.intensity = std::strtod(next(), nullptr);
    } else if (arg == "--objects") {
      opts.objects = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--backups") {
      opts.backups = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--shards") {
      opts.shards = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--threads") {
      threads = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--no-crashes") {
      opts.enable_crashes = false;
    } else if (arg == "--no-batch") {
      opts.config.batch_updates = false;
    } else if (arg == "--partition") {
      opts.enable_partition = true;
    } else if (arg == "--overload") {
      opts.enable_overload = true;
    } else if (arg == "--crash-restart") {
      opts.enable_crash_restart = true;
    } else if (arg == "--sabotage") {
      sabotage = next();
    } else if (arg == "--log-warnings") {
      log_warnings = true;
    } else if (arg == "--telemetry") {
      opts.telemetry = true;
    } else if (arg == "--trace-out") {
      opts.trace_json_path = next();
      opts.telemetry = true;
    } else if (arg == "--jsonl-out") {
      opts.trace_jsonl_path = next();
      opts.telemetry = true;
    } else if (arg == "--metrics-out") {
      opts.metrics_json_path = next();
      opts.telemetry = true;
    } else if (arg == "--flight-recorder") {
      opts.flight_recorder = true;
    } else if (arg == "--postmortem") {
      opts.postmortem_path = next();
      opts.flight_recorder = true;
    } else if (arg == "--health-out") {
      opts.health_jsonl_path = next();
    } else if (arg == "--health-period-ms") {
      opts.health_period = rtpb::millis(std::strtoll(next(), nullptr, 10));
    } else if (arg == "--replay") {
      return replay_counterexample(next());
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else {
      std::cerr << "unknown option: " << arg << "\n";
      usage(argv[0]);
      return 2;
    }
  }

  // Chaos runs *cause* checksum failures and dead links on purpose; the
  // per-event WARN stream would drown the per-seed summaries.
  if (!log_warnings) {
    rtpb::Logger::instance().set_level(rtpb::LogLevel::kError);
  }

  if (sabotage == "no-failover") {
    // Failure detector never declares: a crashed primary stays dead and
    // unreplaced.  exactly-one-primary must catch this on crash seeds.
    opts.config.ping_max_misses = 1000000;
    opts.crash_probability = 1.0;
    opts.crash_backup_bias = 0.0;  // always crash the primary
  } else if (sabotage == "slow-updates") {
    // Transmission period far beyond every negotiated window: distances
    // grow unbounded with zero faults.  staleness-window must catch it.
    opts.config.update_period_override = rtpb::millis(800);
    opts.config.admission_control_enabled = false;
    opts.enable_loss_storms = false;
    opts.enable_link_faults = false;
    opts.enable_crashes = false;
  } else if (sabotage == "split-brain") {
    // Epoch fencing off under a primary↔successor partition: the deposed
    // primary never steps down and keeps feeding stale-epoch updates to
    // the surviving backup, which applies whichever versions run ahead.
    // cross-epoch-apply must catch this.
    opts.config.epoch_fencing = false;
    opts.backups = 2;
    opts.enable_partition = true;
    opts.enable_crashes = false;
  } else if (sabotage == "no-shedding") {
    // Graceful degradation off under pure overload: the primary silently
    // violates windows it never renegotiated.  no-silent-violation must
    // catch this.  Other fault families are disabled so their declared
    // epochs cannot excuse (or cause) the violations being judged.
    opts.config.degradation_enabled = false;
    opts.enable_overload = true;
    opts.enable_loss_storms = false;
    opts.enable_link_faults = false;
    opts.enable_crashes = false;
  } else if (sabotage == "torn-write") {
    // Shear bytes off the downed replica's WAL mid-outage: the recovered
    // image misses client-acked versions.  durable-recovery must catch it.
    // Other fault families are off so every run is a crash-restart arc.
    opts.enable_crash_restart = true;
    opts.torn_tail_bytes = 512;
    opts.enable_loss_storms = false;
    opts.enable_link_faults = false;
    opts.enable_crashes = false;
  } else if (sabotage != "none") {
    std::cerr << "unknown sabotage mode: " << sabotage << "\n";
    return 2;
  }

  if (threads > 1) {
    // Parallel engine: one experiment per shard on a worker pool.  The
    // classic path below stays byte-identical for --threads <= 1.
    if (opts.shards < 2) {
      std::cerr << "--threads " << threads << " needs --shards >= 2 (one partition per shard)\n";
      return 2;
    }
    if (sabotage != "none") {
      std::cerr << "--sabotage is a classic-path oracle self-test; drop --threads\n";
      return 2;
    }
    if (single) {
      const rtpb::psim::ParallelSeedReport report =
          rtpb::psim::run_parallel_seed(first_seed, opts, threads);
      std::cout << report.summary() << "\n";
      for (const rtpb::psim::ShardSeedReport& r : report.shard_reports) {
        if (r.ok()) continue;
        for (const rtpb::chaos::OracleViolation& v : r.violations) {
          std::cout << "  shard " << r.shard << " [" << v.at.to_string() << "] " << v.oracle
                    << ": " << v.detail << "\n";
        }
        std::cout << "  replay: classic harness, seed " << r.shard_seed << "\n"
                  << r.reproducer;
      }
      std::cout << "---\n1 seeds, " << report.oracle_checks() << " oracle checks, "
                << (report.ok() ? 0 : 1) << " failing seeds\n";
      return report.ok() ? 0 : 1;
    }
    const rtpb::psim::ParallelSweepResult result =
        rtpb::psim::run_parallel_sweep(first_seed, count, opts, threads, &std::cout);
    std::cout << "---\n"
              << result.seeds_run << " seeds, " << result.total_checks << " oracle checks, "
              << result.failures.size() << " failing seeds\n";
    return result.ok() ? 0 : 1;
  }

  rtpb::chaos::SweepResult result;
  if (single) {
    // Single-seed mode runs directly so the telemetry summary is printed
    // even when the seed passes (run_sweep only keeps failing reports).
    rtpb::chaos::SeedReport report = rtpb::chaos::run_seed(first_seed, opts);
    result.seeds_run = 1;
    result.total_checks = report.oracle_checks;
    std::cout << report.summary() << "\n";
    if (opts.telemetry) {
      std::cout << "telemetry: " << report.spans_started << " spans ("
                << report.spans_violated << " violated)\n"
                << report.metrics_json << "\n";
    }
    if (report.flight_events > 0) {
      std::cout << "flight recorder: " << report.flight_events << " events recorded";
      if (report.postmortem_written) {
        std::cout << ", post-mortem (" << report.postmortem_reason << ") -> "
                  << opts.postmortem_path;
      }
      std::cout << "\n";
    }
    if (report.health_snapshots > 0) {
      std::cout << "health feed: " << report.health_snapshots << " snapshots -> "
                << opts.health_jsonl_path << "\n";
    }
    if (!report.ok()) {
      for (const rtpb::chaos::OracleViolation& v : report.violations) {
        std::cout << "  [" << v.at.to_string() << "] " << v.oracle << ": " << v.detail << "\n";
      }
      std::cout << report.reproducer;
      result.failures.push_back(std::move(report));
    }
  } else {
    result = rtpb::chaos::run_sweep(first_seed, count, opts, &std::cout);
  }

  std::cout << "---\n"
            << result.seeds_run << " seeds, " << result.total_checks
            << " oracle checks, " << result.failures.size() << " failing seeds\n";

  if (single && !result.failures.empty()) {
    std::cout << "reproduce with: --seed " << first_seed << "\n";
  }
  if (sabotage != "none") {
    // Self-test: sabotage SHOULD be caught.  Succeed iff it was — and for
    // split-brain, iff the *specific* fencing oracle fired (the generic
    // exactly-one-primary catch would mask a cross-epoch-apply gap).
    bool caught = !result.failures.empty();
    if (caught && sabotage == "split-brain") {
      caught = false;
      for (const rtpb::chaos::SeedReport& rep : result.failures) {
        for (const rtpb::chaos::OracleViolation& v : rep.violations) {
          if (v.oracle == "cross-epoch-apply") caught = true;
        }
      }
    }
    if (caught && sabotage == "no-shedding") {
      // Same specificity rule: the silent violation must be caught AS a
      // silent violation, not incidentally by another oracle.
      caught = false;
      for (const rtpb::chaos::SeedReport& rep : result.failures) {
        for (const rtpb::chaos::OracleViolation& v : rep.violations) {
          if (v.oracle == "no-silent-violation") caught = true;
        }
      }
    }
    if (caught && sabotage == "torn-write") {
      // The durability hole must be caught AS a durability hole (the torn
      // tail also regresses versions, which monotone-versions flags).
      caught = false;
      for (const rtpb::chaos::SeedReport& rep : result.failures) {
        for (const rtpb::chaos::OracleViolation& v : rep.violations) {
          if (v.oracle == "durable-recovery") caught = true;
        }
      }
    }
    if (!caught) {
      std::cout << "sabotage '" << sabotage << "' was NOT caught — oracle gap!\n";
      return 1;
    }
    std::cout << "sabotage '" << sabotage << "' caught as expected\n";
    return 0;
  }
  return result.ok() ? 0 : 1;
}
