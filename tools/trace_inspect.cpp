// trace_inspect — offline analysis of a telemetry JSONL stream.
//
// Input is the event stream written by `chaos_main --jsonl-out` (or any
// telemetry::write_jsonl output).  The tool reconstructs each causal span
// (one per client update), sorts its events into a timeline, and prints:
//
//   * per-hop latency quantiles — for every adjacent event pair observed
//     on a span (e.g. update-send → net-deliver), exact p50/p90/p99/max
//     over all spans that crossed that hop
//   * end-to-end latency quantiles (write at the primary → apply at the
//     backup) and the delivered / lost split
//   * culprit table — lost or violated updates grouped by the last event
//     they reached, i.e. which hop ate them
//   * full timelines of the K worst updates (violated first, then the
//     slowest deliveries)
//
//   trace_inspect trace.jsonl
//   trace_inspect trace.jsonl --worst 5 --hops 24
//   trace_inspect postmortem.jsonl        # flight-recorder artifact
//
// Flight-recorder post-mortem artifacts ({"type":"postmortem",...} from
// chaos_main --postmortem or explore_main --emit) are detected and rendered
// as an annotated timeline instead.  Empty or unparseable input exits
// non-zero with a diagnostic rather than printing empty sections.
//
// The parser is deliberately minimal: it understands exactly the flat
// one-object-per-line JSON that write_jsonl emits, not arbitrary JSON.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "util/stats.hpp"

namespace {

struct Event {
  double ts_ms = 0.0;
  std::uint64_t node = 0;
  std::string track;
  std::string name;
  std::string detail;
};

struct Span {
  std::uint64_t id = 0;
  std::uint64_t object = 0;
  std::uint64_t version = 0;
  double begin_ms = 0.0;
  std::string violation;  ///< oracle name, empty if the span stayed clean
  std::vector<Event> events;
};

/// Flight-recorder post-mortem artifact (header + "fr" records).
struct PostmortemHeader {
  bool present = false;
  std::string reason;
  double at_ms = 0.0;
  std::uint64_t version = 0;
  std::uint64_t recorded = 0;
  std::uint64_t retained = 0;
  std::uint64_t overwritten = 0;
};

struct FlightEvent {
  double ts_ms = 0.0;
  std::uint64_t node = 0;
  std::uint64_t object = 0;
  std::uint64_t version = 0;
  std::uint64_t epoch = 0;
  std::uint64_t span = 0;
  std::int64_t arg = 0;
  std::string kind;
  std::string label;
};

// --- minimal field extraction over our own JSONL -------------------------

/// Finds `"key":` and returns the character index just past the colon, or
/// npos.  Keys in write_jsonl output never appear inside string values
/// with the quote-colon suffix, so a plain search is sufficient.
std::size_t find_key(const std::string& line, const char* key) {
  const std::string needle = std::string("\"") + key + "\":";
  const std::size_t at = line.find(needle);
  return at == std::string::npos ? std::string::npos : at + needle.size();
}

bool get_u64(const std::string& line, const char* key, std::uint64_t& out) {
  const std::size_t at = find_key(line, key);
  if (at == std::string::npos) return false;
  out = std::strtoull(line.c_str() + at, nullptr, 10);
  return true;
}

bool get_double(const std::string& line, const char* key, double& out) {
  const std::size_t at = find_key(line, key);
  if (at == std::string::npos) return false;
  out = std::strtod(line.c_str() + at, nullptr);
  return true;
}

bool get_i64(const std::string& line, const char* key, std::int64_t& out) {
  const std::size_t at = find_key(line, key);
  if (at == std::string::npos) return false;
  out = std::strtoll(line.c_str() + at, nullptr, 10);
  return true;
}

bool get_string(const std::string& line, const char* key, std::string& out) {
  std::size_t at = find_key(line, key);
  if (at == std::string::npos || at >= line.size() || line[at] != '"') return false;
  out.clear();
  for (++at; at < line.size(); ++at) {
    const char c = line[at];
    if (c == '"') return true;
    if (c == '\\' && at + 1 < line.size()) {
      const char esc = line[++at];
      switch (esc) {
        case 'n': out.push_back('\n'); break;
        case 't': out.push_back('\t'); break;
        case 'r': out.push_back('\r'); break;
        case 'u': out.push_back('?'); at += 4; break;  // control chars: opaque
        default: out.push_back(esc); break;            // \" \\ \/
      }
    } else {
      out.push_back(c);
    }
  }
  return false;  // unterminated string
}

// --- reporting -----------------------------------------------------------

std::string quantile_row(const rtpb::SampleSet& s) {
  char buf[96];
  std::snprintf(buf, sizeof buf, "%8zu %9.3f %9.3f %9.3f %9.3f", s.count(),
                s.quantile(0.5), s.quantile(0.9), s.quantile(0.99), s.max());
  return buf;
}

void print_timeline(const Span& s) {
  std::printf("  span %llu  obj%llu v%llu  begin %.3f ms%s%s\n",
              static_cast<unsigned long long>(s.id),
              static_cast<unsigned long long>(s.object),
              static_cast<unsigned long long>(s.version), s.begin_ms,
              s.violation.empty() ? "" : "  VIOLATION: ", s.violation.c_str());
  for (const Event& e : s.events) {
    std::printf("    %12.3f ms  node%llu  %-18s %-16s %s\n", e.ts_ms,
                static_cast<unsigned long long>(e.node), e.track.c_str(), e.name.c_str(),
                e.detail.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  std::size_t worst_k = 3;
  std::size_t hop_limit = 20;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << arg << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--worst") {
      worst_k = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--hops") {
      hop_limit = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--help" || arg == "-h") {
      std::cerr << "usage: " << argv[0] << " TRACE.jsonl [--worst K] [--hops N]\n";
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "unknown option: " << arg << "\n";
      return 2;
    } else {
      path = arg;
    }
  }
  if (path.empty()) {
    std::cerr << "usage: " << argv[0] << " TRACE.jsonl [--worst K] [--hops N]\n";
    return 2;
  }

  std::ifstream in(path);
  if (!in) {
    std::cerr << "cannot open " << path << "\n";
    return 1;
  }

  std::uint64_t meta_spans = 0;
  std::uint64_t meta_violated = 0;
  std::uint64_t meta_events = 0;
  std::uint64_t meta_dropped = 0;
  std::map<std::uint64_t, Span> spans;
  std::uint64_t unattributed = 0;
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  PostmortemHeader postmortem;
  std::vector<FlightEvent> flight;
  std::uint64_t lines_seen = 0;
  std::uint64_t lines_parsed = 0;

  std::string line;
  while (std::getline(in, line)) {
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    ++lines_seen;
    std::string type;
    if (!get_string(line, "type", type)) continue;
    if (type != "postmortem" && type != "fr" && type != "meta" && type != "span" &&
        type != "event" && type != "counter" && type != "gauge") {
      continue;  // someone else's JSONL (e.g. a health feed) — not ours
    }
    ++lines_parsed;
    if (type == "postmortem") {
      postmortem.present = true;
      get_string(line, "reason", postmortem.reason);
      get_double(line, "at_ms", postmortem.at_ms);
      get_u64(line, "version", postmortem.version);
      get_u64(line, "recorded", postmortem.recorded);
      get_u64(line, "retained", postmortem.retained);
      get_u64(line, "overwritten", postmortem.overwritten);
    } else if (type == "fr") {
      FlightEvent e;
      get_double(line, "ts_ms", e.ts_ms);
      get_u64(line, "node", e.node);
      get_u64(line, "object", e.object);
      get_u64(line, "version", e.version);
      get_u64(line, "epoch", e.epoch);
      get_u64(line, "span", e.span);
      get_i64(line, "arg", e.arg);
      get_string(line, "kind", e.kind);
      get_string(line, "label", e.label);
      flight.push_back(std::move(e));
    } else if (type == "meta") {
      get_u64(line, "spans_started", meta_spans);
      get_u64(line, "spans_violated", meta_violated);
      get_u64(line, "events_recorded", meta_events);
      get_u64(line, "events_dropped", meta_dropped);
    } else if (type == "span") {
      Span s;
      get_u64(line, "span", s.id);
      get_u64(line, "object", s.object);
      get_u64(line, "version", s.version);
      get_double(line, "begin_ms", s.begin_ms);
      get_string(line, "violation", s.violation);
      spans.emplace(s.id, std::move(s));
    } else if (type == "event") {
      std::uint64_t id = 0;
      get_u64(line, "span", id);
      if (id == 0) {
        ++unattributed;
        continue;
      }
      Event e;
      get_double(line, "ts_ms", e.ts_ms);
      get_u64(line, "node", e.node);
      get_string(line, "track", e.track);
      get_string(line, "name", e.name);
      get_string(line, "detail", e.detail);
      spans[id].events.push_back(std::move(e));
    } else if (type == "counter") {
      std::string name;
      std::uint64_t value = 0;
      if (get_string(line, "name", name) && get_u64(line, "value", value)) {
        counters[name] = value;
      }
    } else if (type == "gauge") {
      std::string name;
      double value = 0.0;
      if (get_string(line, "name", name) && get_double(line, "value", value)) {
        gauges[name] = value;
      }
    }
  }

  // Diagnose useless input loudly instead of printing empty sections: an
  // empty file and a file of unparseable lines both mean the pipeline
  // upstream is broken, and a zero-filled report would hide that.
  if (lines_seen == 0) {
    std::cerr << path << ": empty input — no JSONL lines (expected the output of "
              << "chaos_main --jsonl-out or --postmortem)\n";
    return 1;
  }
  if (lines_parsed == 0) {
    std::cerr << path << ": no parseable telemetry records in "
              << static_cast<unsigned long long>(lines_seen)
              << " line(s) — not a telemetry JSONL / post-mortem artifact\n";
    return 1;
  }

  if (postmortem.present || !flight.empty()) {
    // Post-mortem artifact: render the flight-recorder ring, newest last,
    // flagging the records that trip dumps (violations, crashes, triggers).
    std::printf("post-mortem: %s\n", path.c_str());
    if (postmortem.present) {
      std::printf("reason: %s  (format v%llu, dumped at %.3f ms)\n",
                  postmortem.reason.c_str(),
                  static_cast<unsigned long long>(postmortem.version), postmortem.at_ms);
      std::printf("events: %llu recorded, %llu retained, %llu overwritten\n",
                  static_cast<unsigned long long>(postmortem.recorded),
                  static_cast<unsigned long long>(postmortem.retained),
                  static_cast<unsigned long long>(postmortem.overwritten));
    }
    std::map<std::string, std::size_t> by_kind;
    for (const FlightEvent& e : flight) ++by_kind[e.kind];
    std::printf("\nevent mix (%zu events)\n", flight.size());
    for (const auto& [kind, n] : by_kind) std::printf("  %6zu  %s\n", n, kind.c_str());
    std::printf("\ntimeline (oldest first)\n");
    for (const FlightEvent& e : flight) {
      const bool hot = e.kind == "violation" || e.kind == "crash" || e.kind == "trigger";
      std::string detail;
      if (e.object != 0) detail += " obj" + std::to_string(e.object);
      if (e.version != 0) detail += " v" + std::to_string(e.version);
      if (e.epoch != 0) detail += " epoch " + std::to_string(e.epoch);
      if (e.span != 0) detail += " span " + std::to_string(e.span);
      if (e.arg != 0) detail += " arg " + std::to_string(e.arg);
      if (!e.label.empty()) detail += " [" + e.label + "]";
      std::printf("  %s %12.3f ms  node%llu  %-16s%s\n", hot ? "**" : "  ", e.ts_ms,
                  static_cast<unsigned long long>(e.node), e.kind.c_str(), detail.c_str());
    }
    if (postmortem.present && flight.empty()) {
      std::printf("  (no events retained)\n");
    }
    return 0;
  }

  // Events arrive in record order; retroactive records (sched releases,
  // transmission-job phases) can be out of timestamp order, so sort each
  // span's timeline.  stable_sort keeps record order within a tick.
  for (auto& [id, s] : spans) {
    (void)id;
    std::stable_sort(s.events.begin(), s.events.end(),
                     [](const Event& a, const Event& b) { return a.ts_ms < b.ts_ms; });
  }

  // Per-hop latencies (adjacent event pairs along each span) and
  // end-to-end latency (span begin → last update-apply).
  std::map<std::string, rtpb::SampleSet> hop_latency;
  rtpb::SampleSet end_to_end;
  std::vector<const Span*> delivered;
  std::vector<const Span*> lost;
  std::vector<const Span*> violated;
  for (const auto& [id, s] : spans) {
    (void)id;
    for (std::size_t i = 1; i < s.events.size(); ++i) {
      hop_latency[s.events[i - 1].name + " -> " + s.events[i].name].add(
          s.events[i].ts_ms - s.events[i - 1].ts_ms);
    }
    double applied_at = -1.0;
    for (const Event& e : s.events) {
      if (e.name == "update-apply") applied_at = e.ts_ms;
    }
    if (applied_at >= 0.0) {
      end_to_end.add(applied_at - s.begin_ms);
      delivered.push_back(&s);
    } else {
      lost.push_back(&s);
    }
    if (!s.violation.empty()) violated.push_back(&s);
  }

  std::printf("trace: %s\n", path.c_str());
  std::printf("spans %llu (%llu violated)  events %llu (%llu dropped, %llu unattributed)\n",
              static_cast<unsigned long long>(meta_spans),
              static_cast<unsigned long long>(meta_violated),
              static_cast<unsigned long long>(meta_events),
              static_cast<unsigned long long>(meta_dropped),
              static_cast<unsigned long long>(unattributed));
  std::printf("updates: %zu delivered, %zu never applied at a backup\n\n", delivered.size(),
              lost.size());

  if (!end_to_end.empty()) {
    std::printf("end-to-end latency, write -> backup apply (ms)\n");
    std::printf("  %-44s %8s %9s %9s %9s %9s\n", "", "count", "p50", "p90", "p99", "max");
    std::printf("  %-44s %s\n\n", "write -> update-apply", quantile_row(end_to_end).c_str());
  }

  std::printf("per-hop latency (ms), %zu distinct hops", hop_latency.size());
  if (hop_latency.size() > hop_limit) {
    std::printf(" (showing the %zu busiest; --hops to widen)", hop_limit);
  }
  std::printf("\n  %-44s %8s %9s %9s %9s %9s\n", "hop", "count", "p50", "p90", "p99", "max");
  std::vector<const std::pair<const std::string, rtpb::SampleSet>*> hops;
  hops.reserve(hop_latency.size());
  for (const auto& entry : hop_latency) hops.push_back(&entry);
  std::stable_sort(hops.begin(), hops.end(),
                   [](const auto* a, const auto* b) { return a->second.count() > b->second.count(); });
  if (hops.size() > hop_limit) hops.resize(hop_limit);
  for (const auto* entry : hops) {
    std::printf("  %-44s %s\n", entry->first.c_str(), quantile_row(entry->second).c_str());
  }

  if (!lost.empty() || !violated.empty()) {
    // Which hop ate them: group doomed spans by the last event they reached.
    std::map<std::string, std::size_t> culprits;
    for (const Span* s : lost) {
      culprits[s->events.empty() ? "(no events)"
                                 : s->events.back().track + " " + s->events.back().name]++;
    }
    for (const Span* s : violated) {
      culprits["violation:" + s->violation]++;
    }
    std::vector<std::pair<std::string, std::size_t>> ranked(culprits.begin(), culprits.end());
    std::stable_sort(ranked.begin(), ranked.end(),
                     [](const auto& a, const auto& b) { return a.second > b.second; });
    std::printf("\ntop culprits (last event reached by lost updates, plus violations)\n");
    for (const auto& [where, n] : ranked) {
      std::printf("  %6zu  %s\n", n, where.c_str());
    }
  }

  {
    // Graceful-degradation activity: shedding, QoS renegotiation, adaptive
    // timing.  Only instruments under core.degrade.* — present when the
    // trace came from a telemetry-enabled overload run.
    bool header = false;
    const auto section = [&header] {
      if (!header) std::printf("\ngraceful degradation (core.degrade.*)\n");
      header = true;
    };
    for (const auto& [name, value] : counters) {
      if (name.rfind("core.degrade.", 0) != 0) continue;
      section();
      std::printf("  %-44s %8llu\n", name.c_str(), static_cast<unsigned long long>(value));
    }
    for (const auto& [name, value] : gauges) {
      if (name.rfind("core.degrade.", 0) != 0) continue;
      section();
      std::printf("  %-44s %8.3f  (final)\n", name.c_str(), value);
    }
  }

  {
    // Durability activity: WAL appends, checkpoints, recoveries, replay
    // volume, resync path taken.  Only instruments under core.store.* —
    // present when the trace came from a telemetry-enabled durable run.
    bool header = false;
    const auto section = [&header] {
      if (!header) std::printf("\ndurability & recovery (core.store.*)\n");
      header = true;
    };
    for (const auto& [name, value] : counters) {
      if (name.rfind("core.store.", 0) != 0) continue;
      section();
      std::printf("  %-44s %8llu\n", name.c_str(), static_cast<unsigned long long>(value));
    }
    for (const auto& [name, value] : gauges) {
      if (name.rfind("core.store.", 0) != 0) continue;
      section();
      std::printf("  %-44s %8.3f  (final)\n", name.c_str(), value);
    }
  }

  if (worst_k > 0) {
    // Worst updates: every violated span first, then the slowest deliveries.
    std::vector<const Span*> worst(violated);
    std::vector<const Span*> slow(delivered);
    std::stable_sort(slow.begin(), slow.end(), [](const Span* a, const Span* b) {
      const auto span_latency = [](const Span* s) {
        return s->events.empty() ? 0.0 : s->events.back().ts_ms - s->begin_ms;
      };
      return span_latency(a) > span_latency(b);
    });
    for (const Span* s : slow) {
      if (worst.size() >= worst_k) break;
      if (std::find(worst.begin(), worst.end(), s) == worst.end()) worst.push_back(s);
    }
    if (worst.size() > worst_k) worst.resize(worst_k);
    if (!worst.empty()) {
      std::printf("\n%zu worst updates (violated first, then slowest deliveries)\n",
                  worst.size());
      for (const Span* s : worst) print_timeline(*s);
    }
  }
  return 0;
}
