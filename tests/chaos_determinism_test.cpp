// Determinism regression for the chaos harness: the seed is the whole
// experiment, so running it twice must replay the identical trajectory —
// byte-identical trace digest and equal end-state metrics.  This is the
// contract that makes a failing seed a *reproducer* instead of a flake.
#include <gtest/gtest.h>

#include <set>

#include "chaos/harness.hpp"

namespace rtpb::chaos {
namespace {

ChaosOptions quick_opts() {
  ChaosOptions opts;
  opts.duration = seconds(8);  // below the crash threshold: pure network chaos
  return opts;
}

TEST(ChaosDeterminism, SameSeedTwiceIsBitIdentical) {
  const ChaosOptions opts = quick_opts();
  const SeedReport a = run_seed(11, opts);
  const SeedReport b = run_seed(11, opts);

  EXPECT_EQ(a.trace_digest, b.trace_digest);
  EXPECT_EQ(a.trace_events, b.trace_events);
  EXPECT_EQ(a.sim_events, b.sim_events);
  EXPECT_EQ(a.fired, b.fired);
  EXPECT_EQ(a.violation_count, b.violation_count);
  EXPECT_EQ(a.oracle_checks, b.oracle_checks);
  EXPECT_EQ(a.objects_admitted, b.objects_admitted);
  EXPECT_EQ(a.client_writes, b.client_writes);
  EXPECT_EQ(a.updates_applied, b.updates_applied);
  EXPECT_DOUBLE_EQ(a.avg_max_distance_ms, b.avg_max_distance_ms);
  EXPECT_DOUBLE_EQ(a.total_inconsistency_ms, b.total_inconsistency_ms);
  EXPECT_EQ(a.inconsistency_intervals, b.inconsistency_intervals);

  // The run actually did something worth digesting.
  EXPECT_GT(a.trace_events, 0u);
  EXPECT_GT(a.client_writes, 0u);
}

TEST(ChaosDeterminism, CrashSeedReplaysIdentically) {
  ChaosOptions opts;  // default 20 s: long enough for crash scenarios
  opts.crash_probability = 1.0;
  const SeedReport a = run_seed(3, opts);
  const SeedReport b = run_seed(3, opts);
  EXPECT_EQ(a.trace_digest, b.trace_digest);
  EXPECT_EQ(a.fired, b.fired);
  EXPECT_EQ(a.updates_applied, b.updates_applied);
}

TEST(ChaosDeterminism, TelemetryIsAPureObserver) {
  // The full cross-check of the observer contract: turning telemetry on
  // must not shift a single simulator event — byte-identical trace digest,
  // same event counts, same end-state metrics.  Checked per mode, because
  // each mode exercises different instrumentation sites.
  for (const char* mode : {"default", "no-batch", "overload"}) {
    ChaosOptions opts = quick_opts();
    if (std::string(mode) == "no-batch") opts.config.batch_updates = false;
    if (std::string(mode) == "overload") opts.enable_overload = true;
    ChaosOptions with_telemetry = opts;
    with_telemetry.telemetry = true;

    const SeedReport off = run_seed(17, opts);
    const SeedReport on = run_seed(17, with_telemetry);
    EXPECT_EQ(off.trace_digest, on.trace_digest) << "mode=" << mode;
    EXPECT_EQ(off.trace_events, on.trace_events) << "mode=" << mode;
    EXPECT_EQ(off.sim_events, on.sim_events) << "mode=" << mode;
    EXPECT_EQ(off.client_writes, on.client_writes) << "mode=" << mode;
    EXPECT_EQ(off.updates_applied, on.updates_applied) << "mode=" << mode;
    EXPECT_DOUBLE_EQ(off.avg_max_distance_ms, on.avg_max_distance_ms) << "mode=" << mode;
    // Telemetry was genuinely on — spans were collected.
    EXPECT_GT(on.spans_started, 0u) << "mode=" << mode;
    EXPECT_EQ(off.spans_started, 0u) << "mode=" << mode;
  }
}

TEST(ChaosDeterminism, DigestCrossMatrixStablePerModeDistinctAcrossModes) {
  // Every supported mode must replay bit-identically — and the modes must
  // actually diverge from each other (a shared digest across modes would
  // mean a knob is dead).
  struct Mode {
    const char* name;
    ChaosOptions opts;
  };
  std::vector<Mode> modes;
  {
    Mode m{"default", quick_opts()};
    modes.push_back(m);
  }
  {
    Mode m{"no-batch", quick_opts()};
    m.opts.config.batch_updates = false;
    modes.push_back(m);
  }
  {
    Mode m{"backups-2", quick_opts()};
    m.opts.backups = 2;
    modes.push_back(m);
  }
  {
    Mode m{"backups-3", quick_opts()};
    m.opts.backups = 3;
    modes.push_back(m);
  }
  {
    Mode m{"overload", quick_opts()};
    m.opts.enable_overload = true;
    modes.push_back(m);
  }

  std::set<std::uint64_t> digests;
  for (const Mode& m : modes) {
    const SeedReport a = run_seed(29, m.opts);
    const SeedReport b = run_seed(29, m.opts);
    EXPECT_EQ(a.trace_digest, b.trace_digest) << "mode " << m.name << " is not stable";
    EXPECT_EQ(a.fired, b.fired) << m.name;
    EXPECT_EQ(a.updates_applied, b.updates_applied) << m.name;
    EXPECT_EQ(a.violation_count, b.violation_count) << m.name;
    EXPECT_GT(a.client_writes, 0u) << m.name;
    digests.insert(a.trace_digest);

    // Observability plane on (telemetry + SLO monitor + flight recorder):
    // pure observers, so the digest must EQUAL the base run's — it joins
    // the per-mode equality check, never the cross-mode distinct set.
    ChaosOptions observed = m.opts;
    observed.telemetry = true;
    observed.flight_recorder = true;
    const SeedReport c = run_seed(29, observed);
    EXPECT_EQ(a.trace_digest, c.trace_digest)
        << "mode " << m.name << ": observers (recorder+slo) perturbed the trajectory";
    EXPECT_EQ(a.sim_events, c.sim_events) << m.name;
    EXPECT_EQ(a.updates_applied, c.updates_applied) << m.name;
    EXPECT_EQ(a.violation_count, c.violation_count) << m.name;
    EXPECT_GT(c.flight_events, 0u) << m.name << ": recorder was supposed to be on";
  }
  EXPECT_EQ(digests.size(), modes.size())
      << "two modes share a digest: some option no longer affects the run";
}

TEST(ChaosDeterminism, HealthFeedDoesNotPerturbTheTrace) {
  // The health feed is the one observer that DOES schedule events (its
  // periodic snapshot timer, tagged kTagObserver) — so fired event counts
  // may differ, but the protocol trajectory and its trace digest must not.
  ChaosOptions base = quick_opts();
  ChaosOptions with_feed = base;
  with_feed.health_jsonl_path = "health_determinism_tmp.jsonl";

  const SeedReport off = run_seed(23, base);
  const SeedReport on = run_seed(23, with_feed);
  EXPECT_EQ(off.trace_digest, on.trace_digest)
      << "health feed snapshots changed the protocol trajectory";
  EXPECT_EQ(off.trace_events, on.trace_events);
  EXPECT_EQ(off.client_writes, on.client_writes);
  EXPECT_EQ(off.updates_applied, on.updates_applied);
  EXPECT_DOUBLE_EQ(off.avg_max_distance_ms, on.avg_max_distance_ms);
  EXPECT_GT(on.health_snapshots, 0u) << "feed was supposed to be on";
  EXPECT_EQ(off.health_snapshots, 0u);
}

TEST(ChaosDeterminism, DifferentSeedsDiverge) {
  const ChaosOptions opts = quick_opts();
  std::set<std::uint64_t> digests;
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    digests.insert(run_seed(seed, opts).trace_digest);
  }
  EXPECT_EQ(digests.size(), 6u) << "distinct seeds must produce distinct traces";
}

TEST(ChaosDeterminism, FaultFamiliesDrawFromDecoupledStreams) {
  // Toggling the crash family off must not shift what the loss/link
  // streams generate — each family derives its own sub-seed.
  ChaosOptions with_crashes;
  with_crashes.crash_probability = 1.0;
  ChaosOptions without = with_crashes;
  without.enable_crashes = false;

  const ChaosSchedule a = generate_schedule(21, with_crashes);
  const ChaosSchedule b = generate_schedule(21, without);

  auto network_only = [](const ChaosSchedule& s) {
    std::vector<ChaosEvent> out;
    for (const ChaosEvent& e : s.events) {
      if (e.kind != FaultKind::kCrashPrimary && e.kind != FaultKind::kCrashBackup &&
          e.kind != FaultKind::kAddStandby) {
        out.push_back(e);
      }
    }
    return out;
  };
  const auto net_a = network_only(a);
  const auto net_b = network_only(b);
  ASSERT_EQ(net_a.size(), net_b.size());
  for (std::size_t i = 0; i < net_a.size(); ++i) {
    EXPECT_EQ(net_a[i].kind, net_b[i].kind);
    EXPECT_EQ(net_a[i].at, net_b[i].at);
    EXPECT_EQ(net_a[i].until, net_b[i].until);
    EXPECT_DOUBLE_EQ(net_a[i].probability, net_b[i].probability);
  }
  EXPECT_GT(a.events.size(), net_a.size()) << "crash seed should include crash events";
}

TEST(ChaosDeterminism, ServiceSeedDiffersFromChaosSeed) {
  // The service must not consume the raw chaos seed, or workload and
  // schedule generation would correlate with simulation randomness.
  const ChaosSchedule s = generate_schedule(42, ChaosOptions{});
  EXPECT_EQ(s.seed, 42u);
  EXPECT_NE(s.service_seed, 42u);
}

}  // namespace
}  // namespace rtpb::chaos
