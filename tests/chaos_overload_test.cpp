// Overload fault family + the no-silent-violation oracle: deterministic
// schedules and digests, flag gating, clean sweeps with graceful
// degradation on, and the sabotage drill proving the oracle catches a
// service that violates windows without renegotiating.
#include <gtest/gtest.h>

#include <algorithm>

#include "chaos/harness.hpp"

namespace rtpb::chaos {
namespace {

bool is_overload(FaultKind k) {
  return k == FaultKind::kCpuSpike || k == FaultKind::kThrottleBandwidth ||
         k == FaultKind::kInflateLatency;
}

ChaosOptions overload_opts() {
  ChaosOptions opts;
  opts.enable_overload = true;
  return opts;
}

TEST(ChaosOverload, ScheduleIsGatedByTheFlagAndSeedStable) {
  const ChaosSchedule off = generate_schedule(9, ChaosOptions{});
  EXPECT_TRUE(std::none_of(off.events.begin(), off.events.end(),
                           [](const ChaosEvent& e) { return is_overload(e.kind); }))
      << "overload events must not appear unless opted into";

  const ChaosSchedule a = generate_schedule(9, overload_opts());
  const ChaosSchedule b = generate_schedule(9, overload_opts());
  ASSERT_EQ(a.events.size(), b.events.size());
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].kind, b.events[i].kind);
    EXPECT_EQ(a.events[i].at, b.events[i].at);
    EXPECT_EQ(a.events[i].until, b.events[i].until);
    EXPECT_DOUBLE_EQ(a.events[i].probability, b.events[i].probability);
    EXPECT_EQ(a.events[i].extra, b.events[i].extra);
  }
  EXPECT_TRUE(std::any_of(a.events.begin(), a.events.end(),
                          [](const ChaosEvent& e) { return is_overload(e.kind); }))
      << "the overload stream should actually generate events";
}

TEST(ChaosOverload, OverloadStreamIsDecoupledFromOtherFamilies) {
  // Turning overload on must not shift what the loss/link/crash streams
  // generate — the family draws from its own derived sub-seed.
  const ChaosSchedule without = generate_schedule(13, ChaosOptions{});
  const ChaosSchedule with = generate_schedule(13, overload_opts());

  auto non_overload = [](const ChaosSchedule& s) {
    std::vector<ChaosEvent> out;
    for (const ChaosEvent& e : s.events) {
      if (!is_overload(e.kind)) out.push_back(e);
    }
    return out;
  };
  const auto base = non_overload(without);
  const auto kept = non_overload(with);
  ASSERT_EQ(base.size(), kept.size());
  for (std::size_t i = 0; i < base.size(); ++i) {
    EXPECT_EQ(base[i].kind, kept[i].kind);
    EXPECT_EQ(base[i].at, kept[i].at);
    EXPECT_DOUBLE_EQ(base[i].probability, kept[i].probability);
  }
}

TEST(ChaosOverload, SameSeedTwiceIsBitIdentical) {
  ChaosOptions opts = overload_opts();
  opts.duration = seconds(10);
  const SeedReport a = run_seed(5, opts);
  const SeedReport b = run_seed(5, opts);
  EXPECT_EQ(a.trace_digest, b.trace_digest);
  EXPECT_EQ(a.trace_events, b.trace_events);
  EXPECT_EQ(a.sim_events, b.sim_events);
  EXPECT_EQ(a.fired, b.fired);
  EXPECT_EQ(a.violation_count, b.violation_count);
  EXPECT_EQ(a.updates_applied, b.updates_applied);
  EXPECT_EQ(a.updates_shed, b.updates_shed);
  EXPECT_EQ(a.qos_downgrades, b.qos_downgrades);
  EXPECT_EQ(a.qos_restores, b.qos_restores);
  EXPECT_EQ(a.transfer_give_ups, b.transfer_give_ups);
  EXPECT_GT(a.client_writes, 0u);
}

TEST(ChaosOverload, SweepStaysCleanWithDegradationOn) {
  // With shedding + renegotiation enabled, overload seeds must produce
  // zero oracle violations: every window excursion is announced.
  ChaosOptions opts = overload_opts();
  const SweepResult result = run_sweep(0, 6, opts);
  EXPECT_TRUE(result.ok()) << result.failures.size() << " seed(s) failed";
  EXPECT_EQ(result.seeds_run, 6u);
}

TEST(ChaosOverload, DegradationActivityShowsUpInTheReport) {
  // Seed 1 is a known-busy overload seed (also used by the sabotage
  // drill): graceful degradation must actually engage, not pass idle.
  const SeedReport report = run_seed(1, overload_opts());
  EXPECT_TRUE(report.ok());
  EXPECT_GT(report.qos_downgrades, 0u);
}

TEST(ChaosOverload, NoSheddingSabotageIsCaughtByTheSilentViolationOracle) {
  // The oracle self-test: degradation off under pure overload must be
  // caught, and caught *as* a silent violation (mirrors chaos_main's
  // --sabotage no-shedding driver).
  ChaosOptions opts;
  opts.config.degradation_enabled = false;
  opts.enable_overload = true;
  opts.enable_loss_storms = false;
  opts.enable_link_faults = false;
  opts.enable_crashes = false;

  const SweepResult result = run_sweep(0, 3, opts);
  ASSERT_FALSE(result.ok()) << "sabotage was not caught — oracle gap";
  bool silent = false;
  for (const SeedReport& rep : result.failures) {
    for (const OracleViolation& v : rep.violations) {
      if (v.oracle == "no-silent-violation") silent = true;
    }
  }
  EXPECT_TRUE(silent) << "must be caught by no-silent-violation specifically";
}

}  // namespace
}  // namespace rtpb::chaos
