// Property suite for the admission controller's negotiation contract
// (paper §4.2 "feedback so that the client can negotiate an alternative
// quality of service"): a rejection's suggested spec, when present, is
// documented to pass the same checks against the *current* admitted set.
// The suite round-trips hundreds of randomized rejected specs — across
// normal and compressed scheduling, variance-aware admission, random ℓ
// and random inter-object constraints — through their suggestions and
// requires every one to re-admit.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/admission.hpp"
#include "util/rng.hpp"

namespace rtpb::core {
namespace {

std::string describe(const ObjectSpec& s) {
  return "id=" + std::to_string(s.id) + " p=" + s.client_period.to_string() +
         " e=" + s.client_exec.to_string() + " e'=" + s.update_exec.to_string() +
         " dP=" + s.delta_primary.to_string() + " dB=" + s.delta_backup.to_string();
}

ObjectSpec random_spec(Rng& rng, ObjectId id) {
  ObjectSpec s;
  s.id = id;
  s.name = "o" + std::to_string(id);
  s.client_period = micros(rng.uniform(200, 50'000));
  s.client_exec = micros(rng.uniform(20, 2'000));
  s.update_exec = micros(rng.uniform(20, 2'000));
  s.delta_primary = micros(rng.uniform(100, 100'000));
  s.delta_backup = s.delta_primary + micros(rng.uniform(100, 400'000));
  return s;
}

ServiceConfig random_config(Rng& rng) {
  ServiceConfig config;
  config.update_scheduling =
      rng.bernoulli(0.5) ? UpdateScheduling::kCompressed : UpdateScheduling::kNormal;
  config.variance_aware_admission = rng.bernoulli(0.5);
  config.slack_factor = rng.uniform(1, 4);
  config.compressed_target_utilization = rng.uniform_real(0.3, 0.95);
  return config;
}

// Build a controller with a random admitted population and random
// inter-object constraints, then return it.
AdmissionController random_controller(Rng& rng, ObjectId& next_id) {
  AdmissionController ac(random_config(rng), micros(rng.uniform(100, 20'000)));
  const auto preload = static_cast<int>(rng.uniform(0, 30));
  std::vector<ObjectId> admitted;
  for (int i = 0; i < preload; ++i) {
    if (ac.admit(random_spec(rng, next_id)).ok()) admitted.push_back(next_id);
    ++next_id;
  }
  if (admitted.size() >= 2) {
    const auto ncon = static_cast<int>(rng.uniform(0, 3));
    for (int i = 0; i < ncon; ++i) {
      const ObjectId a = admitted[static_cast<std::size_t>(
          rng.uniform(0, static_cast<std::int64_t>(admitted.size()) - 1))];
      const ObjectId b = admitted[static_cast<std::size_t>(
          rng.uniform(0, static_cast<std::int64_t>(admitted.size()) - 1))];
      if (a != b) (void)ac.add_constraint({a, b, micros(rng.uniform(500, 100'000))});
    }
  }
  return ac;
}

TEST(AdmissionSuggestionProperty, SuggestionsOfRejectedSpecsAlwaysReadmit) {
  std::size_t round_trips = 0;
  for (std::uint64_t round = 0; round_trips < 200 && round < 4000; ++round) {
    Rng rng(derive_stream_seed(0xadf1u, round));
    ObjectId next_id = 1;
    AdmissionController ac = random_controller(rng, next_id);

    // A deliberately demanding candidate most rounds, so rejections (and
    // with them suggestions) actually happen.
    ObjectSpec cand = random_spec(rng, next_id);
    if (rng.bernoulli(0.7)) {
      cand.client_exec = micros(rng.uniform(1'000, 40'000));
      cand.update_exec = micros(rng.uniform(1'000, 40'000));
      cand.delta_backup = cand.delta_primary + micros(rng.uniform(10, 4'000));
    }

    const AdmissionResult r = ac.admit(cand);
    if (r.ok()) continue;
    if (!r.error().suggestion.has_value()) continue;
    ++round_trips;

    const ObjectSpec suggestion = *r.error().suggestion;
    const AdmissionResult again = ac.admit(suggestion);
    EXPECT_TRUE(again.ok()) << "round " << round << ": suggestion failed re-admission with "
                            << admission_error_name(again.code()) << "\n  rejected:   "
                            << describe(cand) << "\n  suggestion: " << describe(suggestion)
                            << "\n  admitted set size " << ac.admitted_count();
    if (again.ok()) ac.remove(suggestion.id);  // keep the population the preload's
  }
  EXPECT_GE(round_trips, 200u) << "random spec generator no longer produces rejections";
}

// The guarantee must hold again immediately after periods shift under
// compressed scheduling: reject, admit an unrelated object (which
// redistributes every compressed period), then resubmit the suggestion.
// The suggestion was computed against the *current* admitted set, so this
// intentionally re-requests it after the set changed — the controller must
// either admit it or have rejected the interleaver; what it must never do
// is admit the interleaver and then refuse a suggestion whose feasibility
// the interleaver did not consume.  We pin the narrower, always-sound
// form: with no interleaving admit, resubmission passes (covered above),
// and with an interleaving *remove* (which only frees capacity), the
// suggestion still passes.
TEST(AdmissionSuggestionProperty, SuggestionSurvivesACapacityFreeingRemove) {
  std::size_t round_trips = 0;
  for (std::uint64_t round = 0; round_trips < 100 && round < 4000; ++round) {
    Rng rng(derive_stream_seed(0xadf2u, round));
    ObjectId next_id = 1;
    AdmissionController ac = random_controller(rng, next_id);
    if (ac.admitted_count() == 0) continue;

    ObjectSpec cand = random_spec(rng, next_id);
    if (rng.bernoulli(0.7)) {
      cand.client_exec = micros(rng.uniform(1'000, 40'000));
      cand.update_exec = micros(rng.uniform(1'000, 40'000));
      cand.delta_backup = cand.delta_primary + micros(rng.uniform(10, 4'000));
    }
    const AdmissionResult r = ac.admit(cand);
    if (r.ok() || !r.error().suggestion.has_value()) continue;
    ++round_trips;

    // Remove one admitted object: strictly frees capacity, so the
    // suggestion must still fit.
    const ObjectId victim = ac.update_periods().begin()->first;
    ac.remove(victim);

    const ObjectSpec suggestion = *r.error().suggestion;
    const AdmissionResult again = ac.admit(suggestion);
    EXPECT_TRUE(again.ok()) << "round " << round
                            << ": suggestion failed after a capacity-freeing remove with "
                            << admission_error_name(again.code()) << "\n  suggestion: "
                            << describe(suggestion);
  }
  EXPECT_GE(round_trips, 100u);
}

}  // namespace
}  // namespace rtpb::core
