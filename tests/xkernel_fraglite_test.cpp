// FRAGLITE fragmentation / reassembly over the simulated stack.
#include "xkernel/fraglite.hpp"

#include <gtest/gtest.h>

#include "xkernel/graph.hpp"

namespace rtpb::xkernel {
namespace {

struct FragPair {
  sim::Simulator sim{99};
  net::Network network{sim};
  HostStack a{network};
  HostStack b{network};
  FragLite frag_a{sim, /*max_fragment_payload=*/100};
  FragLite frag_b{sim, /*max_fragment_payload=*/100};
  std::vector<Bytes> received;
  net::Endpoint last_from;

  explicit FragPair(net::LinkParams params = {}) {
    network.connect(a.node(), b.node(), params);
    frag_a.connect_down(a.udp());
    frag_b.connect_down(b.udp());
    a.udp().bind(50, [this](Message& m, const MsgAttrs& attrs) {
      MsgAttrs copy = attrs;
      frag_a.demux(m, copy);
    });
    b.udp().bind(50, [this](Message& m, const MsgAttrs& attrs) {
      MsgAttrs copy = attrs;
      frag_b.demux(m, copy);
    });
    frag_b.set_handler([this](Message& m, const MsgAttrs& attrs) {
      received.push_back(m.to_bytes());
      last_from = attrs.src;
    });
  }

  void send(const Bytes& payload) {
    Message msg{payload};
    MsgAttrs attrs;
    attrs.src = {a.node(), 50};
    attrs.dst = {b.node(), 50};
    frag_a.push(msg, attrs);
  }
};

Bytes pattern(std::size_t n) {
  Bytes out(n);
  for (std::size_t i = 0; i < n; ++i) out[i] = static_cast<std::uint8_t>(i * 31 + 7);
  return out;
}

TEST(FragLite, SmallMessageSingleFragment) {
  FragPair env;
  env.send(pattern(50));
  env.sim.run();
  ASSERT_EQ(env.received.size(), 1u);
  EXPECT_EQ(env.received[0], pattern(50));
  EXPECT_EQ(env.frag_a.fragments_sent(), 1u);
}

TEST(FragLite, LargeMessageFragmentsAndReassembles) {
  FragPair env;
  env.send(pattern(950));  // 10 fragments of <=100
  env.sim.run();
  ASSERT_EQ(env.received.size(), 1u);
  EXPECT_EQ(env.received[0], pattern(950));
  EXPECT_EQ(env.frag_a.fragments_sent(), 10u);
  EXPECT_EQ(env.frag_b.messages_reassembled(), 1u);
  EXPECT_EQ(env.frag_b.pending_reassemblies(), 0u);
}

TEST(FragLite, ExactMultipleBoundary) {
  FragPair env;
  env.send(pattern(300));  // exactly 3 fragments
  env.sim.run();
  ASSERT_EQ(env.received.size(), 1u);
  EXPECT_EQ(env.received[0], pattern(300));
  EXPECT_EQ(env.frag_a.fragments_sent(), 3u);
}

TEST(FragLite, EmptyMessageSurvives) {
  FragPair env;
  env.send({});
  env.sim.run();
  ASSERT_EQ(env.received.size(), 1u);
  EXPECT_TRUE(env.received[0].empty());
}

TEST(FragLite, InterleavedMessagesReassembleIndependently) {
  FragPair env;
  env.send(pattern(250));
  env.send(pattern(450));
  env.send(pattern(10));
  env.sim.run();
  ASSERT_EQ(env.received.size(), 3u);
  EXPECT_EQ(env.received[0], pattern(250));
  EXPECT_EQ(env.received[1], pattern(450));
  EXPECT_EQ(env.received[2], pattern(10));
}

TEST(FragLite, LostFragmentTimesOutWholeMessage) {
  net::LinkParams lossy;
  lossy.loss_probability = 0.2;  // P(all 5 fragments survive) ~ 0.33
  FragPair env(lossy);
  for (int i = 0; i < 60; ++i) env.send(pattern(500));  // 5 fragments each
  env.sim.run_until(env.sim.now() + seconds(5));
  // Some made it whole, some lost at least one fragment and expired.
  EXPECT_GT(env.received.size(), 0u);
  EXPECT_LT(env.received.size(), 60u);
  EXPECT_GT(env.frag_b.reassembly_timeouts(), 0u);
  EXPECT_EQ(env.frag_b.pending_reassemblies(), 0u);
  // Every message that did arrive is intact.
  for (const auto& m : env.received) EXPECT_EQ(m, pattern(500));
}

TEST(FragLite, RuntFragmentCounted) {
  FragPair env;
  // Deliver garbage straight to the UDP port under FRAGLITE.
  env.a.send_datagram(50, {env.b.node(), 50}, Bytes{1, 2});
  env.sim.run();
  EXPECT_EQ(env.frag_b.bad_fragments(), 1u);
  EXPECT_TRUE(env.received.empty());
}

TEST(FragLite, SourceAttributionPreserved) {
  FragPair env;
  env.send(pattern(300));
  env.sim.run();
  EXPECT_EQ(env.last_from.node, env.a.node());
  EXPECT_EQ(env.last_from.port, 50);
}

TEST(FragLite, MtuDropWithoutFragmentationButNotWith) {
  // A 3 KiB payload over a 1500-byte-MTU link: raw datagrams die at the
  // link, FRAGLITE gets them through.
  net::LinkParams params;  // default mtu 1500
  FragPair env(params);
  Bytes big = pattern(3000);
  // Raw (no FRAGLITE): exceeds MTU, silently dropped.
  env.a.send_datagram(50, {env.b.node(), 50}, big);
  env.sim.run();
  EXPECT_EQ(env.network.stats(env.a.node(), env.b.node()).mtu_drops, 1u);
  EXPECT_TRUE(env.received.empty());
  // Fragmented: arrives whole.
  env.send(big);
  env.sim.run();
  ASSERT_EQ(env.received.size(), 1u);
  EXPECT_EQ(env.received[0], big);
}

}  // namespace
}  // namespace rtpb::xkernel
