// FRAGLITE fragmentation / reassembly over the simulated stack.
#include "xkernel/fraglite.hpp"

#include <gtest/gtest.h>

#include "xkernel/graph.hpp"

namespace rtpb::xkernel {
namespace {

struct FragPair {
  sim::Simulator sim{99};
  net::Network network{sim};
  HostStack a{network};
  HostStack b{network};
  FragLite frag_a{sim, /*max_fragment_payload=*/100};
  FragLite frag_b{sim, /*max_fragment_payload=*/100};
  std::vector<Bytes> received;
  net::Endpoint last_from;

  explicit FragPair(net::LinkParams params = {}) {
    network.connect(a.node(), b.node(), params);
    frag_a.connect_down(a.udp());
    frag_b.connect_down(b.udp());
    a.udp().bind(50, [this](Message& m, const MsgAttrs& attrs) {
      MsgAttrs copy = attrs;
      frag_a.demux(m, copy);
    });
    b.udp().bind(50, [this](Message& m, const MsgAttrs& attrs) {
      MsgAttrs copy = attrs;
      frag_b.demux(m, copy);
    });
    frag_b.set_handler([this](Message& m, const MsgAttrs& attrs) {
      received.push_back(m.to_bytes());
      last_from = attrs.src;
    });
  }

  void send(const Bytes& payload) {
    Message msg{payload};
    MsgAttrs attrs;
    attrs.src = {a.node(), 50};
    attrs.dst = {b.node(), 50};
    frag_a.push(msg, attrs);
  }
};

Bytes pattern(std::size_t n) {
  Bytes out(n);
  for (std::size_t i = 0; i < n; ++i) out[i] = static_cast<std::uint8_t>(i * 31 + 7);
  return out;
}

TEST(FragLite, SmallMessageSingleFragment) {
  FragPair env;
  env.send(pattern(50));
  env.sim.run();
  ASSERT_EQ(env.received.size(), 1u);
  EXPECT_EQ(env.received[0], pattern(50));
  EXPECT_EQ(env.frag_a.fragments_sent(), 1u);
}

TEST(FragLite, LargeMessageFragmentsAndReassembles) {
  FragPair env;
  env.send(pattern(950));  // 10 fragments of <=100
  env.sim.run();
  ASSERT_EQ(env.received.size(), 1u);
  EXPECT_EQ(env.received[0], pattern(950));
  EXPECT_EQ(env.frag_a.fragments_sent(), 10u);
  EXPECT_EQ(env.frag_b.messages_reassembled(), 1u);
  EXPECT_EQ(env.frag_b.pending_reassemblies(), 0u);
}

TEST(FragLite, ExactMultipleBoundary) {
  FragPair env;
  env.send(pattern(300));  // exactly 3 fragments
  env.sim.run();
  ASSERT_EQ(env.received.size(), 1u);
  EXPECT_EQ(env.received[0], pattern(300));
  EXPECT_EQ(env.frag_a.fragments_sent(), 3u);
}

TEST(FragLite, EmptyMessageSurvives) {
  FragPair env;
  env.send({});
  env.sim.run();
  ASSERT_EQ(env.received.size(), 1u);
  EXPECT_TRUE(env.received[0].empty());
}

TEST(FragLite, InterleavedMessagesReassembleIndependently) {
  FragPair env;
  env.send(pattern(250));
  env.send(pattern(450));
  env.send(pattern(10));
  env.sim.run();
  ASSERT_EQ(env.received.size(), 3u);
  EXPECT_EQ(env.received[0], pattern(250));
  EXPECT_EQ(env.received[1], pattern(450));
  EXPECT_EQ(env.received[2], pattern(10));
}

TEST(FragLite, LostFragmentTimesOutWholeMessage) {
  net::LinkParams lossy;
  lossy.loss_probability = 0.2;  // P(all 5 fragments survive) ~ 0.33
  FragPair env(lossy);
  for (int i = 0; i < 60; ++i) env.send(pattern(500));  // 5 fragments each
  env.sim.run_until(env.sim.now() + seconds(5));
  // Some made it whole, some lost at least one fragment and expired.
  EXPECT_GT(env.received.size(), 0u);
  EXPECT_LT(env.received.size(), 60u);
  EXPECT_GT(env.frag_b.reassembly_timeouts(), 0u);
  EXPECT_EQ(env.frag_b.pending_reassemblies(), 0u);
  // Every message that did arrive is intact.
  for (const auto& m : env.received) EXPECT_EQ(m, pattern(500));
}

TEST(FragLite, RuntFragmentCounted) {
  FragPair env;
  // Deliver garbage straight to the UDP port under FRAGLITE.
  env.a.send_datagram(50, {env.b.node(), 50}, Bytes{1, 2});
  env.sim.run();
  EXPECT_EQ(env.frag_b.bad_fragments(), 1u);
  EXPECT_TRUE(env.received.empty());
}

// Hand-built fragment frame, for injecting malformed wire bytes.
Bytes frag_frame(std::uint32_t msg_id, std::uint16_t index, std::uint16_t count,
                 std::uint32_t total, const Bytes& payload) {
  ByteWriter w(FragLite::kHeaderSize + payload.size());
  w.u32(msg_id);
  w.u16(index);
  w.u16(count);
  w.u32(total);
  w.raw(payload);
  return std::move(w).take();
}

TEST(FragLite, OutOfRangeFragmentIndexRejected) {
  FragPair env;
  // index == count and beyond: would index past the fragment table.
  env.a.send_datagram(50, {env.b.node(), 50}, frag_frame(7, 3, 3, 300, pattern(100)));
  env.a.send_datagram(50, {env.b.node(), 50}, frag_frame(7, 0xFFFF, 3, 300, pattern(100)));
  env.sim.run();
  EXPECT_EQ(env.frag_b.bad_fragments(), 2u);
  EXPECT_EQ(env.frag_b.pending_reassemblies(), 0u);
  EXPECT_TRUE(env.received.empty());
}

TEST(FragLite, ZeroFragmentCountRejected) {
  FragPair env;
  env.a.send_datagram(50, {env.b.node(), 50}, frag_frame(8, 0, 0, 100, pattern(50)));
  env.sim.run();
  EXPECT_EQ(env.frag_b.bad_fragments(), 1u);
  EXPECT_TRUE(env.received.empty());
}

TEST(FragLite, AbsurdTotalLengthRejected) {
  FragPair env;
  // No 2-fragment split can exceed 2 * 0xFFFF bytes; a total claiming more
  // is corruption and must not size the reassembly table.
  env.a.send_datagram(50, {env.b.node(), 50},
                      frag_frame(9, 0, 2, 2 * 0xFFFF + 1, pattern(50)));
  env.sim.run();
  EXPECT_EQ(env.frag_b.bad_fragments(), 1u);
  EXPECT_EQ(env.frag_b.pending_reassemblies(), 0u);
}

TEST(FragLite, DuplicateFragmentDoesNotDoubleCount) {
  FragPair env;
  // 2-fragment message; fragment 0 arrives twice (replay), then fragment 1.
  // The duplicate must not overwrite the slot nor count toward completion —
  // pre-hardening, two copies of fragment 0 "completed" the message.
  const Bytes whole = pattern(150);
  const Bytes part0(whole.begin(), whole.begin() + 100);
  const Bytes part1(whole.begin() + 100, whole.end());
  env.a.send_datagram(50, {env.b.node(), 50}, frag_frame(10, 0, 2, 150, part0));
  env.a.send_datagram(50, {env.b.node(), 50}, frag_frame(10, 0, 2, 150, part0));
  env.a.send_datagram(50, {env.b.node(), 50}, frag_frame(10, 1, 2, 150, part1));
  env.sim.run();
  EXPECT_EQ(env.frag_b.duplicate_fragments(), 1u);
  ASSERT_EQ(env.received.size(), 1u);
  EXPECT_EQ(env.received[0], pattern(150));
}

TEST(FragLite, OverlongFragmentRejectedReassemblyKept) {
  FragPair env;
  // Fragment 1 claims 150 payload bytes against a declared total of 150 —
  // together with fragment 0's 100 bytes that overflows the total.  The
  // corrupt fragment is dropped; the good retransmission still completes.
  const Bytes whole = pattern(150);
  const Bytes part0(whole.begin(), whole.begin() + 100);
  const Bytes part1(whole.begin() + 100, whole.end());
  env.a.send_datagram(50, {env.b.node(), 50}, frag_frame(11, 0, 2, 150, part0));
  env.a.send_datagram(50, {env.b.node(), 50}, frag_frame(11, 1, 2, 150, pattern(150)));
  env.a.send_datagram(50, {env.b.node(), 50}, frag_frame(11, 1, 2, 150, part1));
  env.sim.run();
  EXPECT_EQ(env.frag_b.bad_fragments(), 1u);
  ASSERT_EQ(env.received.size(), 1u);
  EXPECT_EQ(env.received[0], pattern(150));
}

TEST(FragLite, ConflictingMetadataDropsReassembly) {
  FragPair env;
  // Same (src, msg id) but a different count: the whole reassembly is
  // poisoned and dropped.
  env.a.send_datagram(50, {env.b.node(), 50}, frag_frame(12, 0, 3, 250, pattern(100)));
  // Bounded run: a full run() would fire the reassembly GC timeout and
  // erase the half-built state before the conflicting fragment lands.
  env.sim.run_until(env.sim.now() + millis(10));
  EXPECT_EQ(env.frag_b.pending_reassemblies(), 1u);
  env.a.send_datagram(50, {env.b.node(), 50}, frag_frame(12, 1, 4, 250, pattern(100)));
  env.sim.run_until(env.sim.now() + millis(10));
  EXPECT_EQ(env.frag_b.bad_fragments(), 1u);
  EXPECT_EQ(env.frag_b.pending_reassemblies(), 0u);
  EXPECT_TRUE(env.received.empty());
}

TEST(FragLite, SumMismatchOnCompletionDropsMessage) {
  FragPair env;
  // All fragments present but their sizes sum short of the declared total.
  env.a.send_datagram(50, {env.b.node(), 50}, frag_frame(13, 0, 2, 300, pattern(100)));
  env.a.send_datagram(50, {env.b.node(), 50}, frag_frame(13, 1, 2, 300, pattern(100)));
  env.sim.run();
  EXPECT_EQ(env.frag_b.bad_fragments(), 1u);
  EXPECT_EQ(env.frag_b.pending_reassemblies(), 0u);
  EXPECT_TRUE(env.received.empty());
}

TEST(FragLite, SourceAttributionPreserved) {
  FragPair env;
  env.send(pattern(300));
  env.sim.run();
  EXPECT_EQ(env.last_from.node, env.a.node());
  EXPECT_EQ(env.last_from.port, 50);
}

TEST(FragLite, MtuDropWithoutFragmentationButNotWith) {
  // A 3 KiB payload over a 1500-byte-MTU link: raw datagrams die at the
  // link, FRAGLITE gets them through.
  net::LinkParams params;  // default mtu 1500
  FragPair env(params);
  Bytes big = pattern(3000);
  // Raw (no FRAGLITE): exceeds MTU, silently dropped.
  env.a.send_datagram(50, {env.b.node(), 50}, big);
  env.sim.run();
  EXPECT_EQ(env.network.stats(env.a.node(), env.b.node()).mtu_drops, 1u);
  EXPECT_TRUE(env.received.empty());
  // Fragmented: arrives whole.
  env.send(big);
  env.sim.run();
  ASSERT_EQ(env.received.size(), 1u);
  EXPECT_EQ(env.received[0], big);
}

}  // namespace
}  // namespace rtpb::xkernel
