// Durability subsystem tests: CRC framing, prefix-durable replay,
// ALICE-style crash-point injection on the simulated device, and
// checkpoint + WAL-tail recovery through DurableStore.
#include "store/durable_store.hpp"

#include <gtest/gtest.h>

#include <cstring>

#include "store/device.hpp"
#include "store/wal.hpp"

namespace rtpb::store {
namespace {

core::ObjectSpec make_spec(core::ObjectId id) {
  core::ObjectSpec s;
  s.id = id;
  s.name = "obj" + std::to_string(id);
  s.size_bytes = 64;
  s.client_period = millis(10);
  s.client_exec = micros(200);
  s.update_exec = micros(200);
  s.delta_primary = millis(20);
  s.delta_backup = millis(100);
  return s;
}

Bytes value_of(std::uint8_t fill, std::size_t n = 8) { return Bytes(n, fill); }

TEST(Crc32, KnownVector) {
  // The canonical IEEE CRC-32 check value: crc32("123456789").
  const char* s = "123456789";
  std::vector<std::uint8_t> data(s, s + std::strlen(s));
  EXPECT_EQ(crc32(data), 0xCBF43926u);
}

TEST(Crc32, EmptyIsZero) { EXPECT_EQ(crc32({}), 0u); }

TEST(WalCodec, InsertRoundTrip) {
  const core::ObjectSpec spec = make_spec(7);
  const Bytes payload = encode(InsertRecord{spec});
  const auto rec = decode_record(payload);
  ASSERT_TRUE(rec.has_value());
  ASSERT_EQ(rec->kind, RecordKind::kInsert);
  EXPECT_EQ(rec->insert->spec.id, spec.id);
  EXPECT_EQ(rec->insert->spec.name, spec.name);
  EXPECT_EQ(rec->insert->spec.delta_backup, spec.delta_backup);
}

TEST(WalCodec, WriteRoundTrip) {
  WriteRecord w;
  w.object = 3;
  w.version = 41;
  w.timestamp = TimePoint{1234567};
  w.origin_timestamp = TimePoint{1234000};
  w.value = value_of(0xAB);
  const auto rec = decode_record(encode(w));
  ASSERT_TRUE(rec.has_value());
  ASSERT_EQ(rec->kind, RecordKind::kWrite);
  EXPECT_EQ(rec->write->object, 3u);
  EXPECT_EQ(rec->write->version, 41u);
  EXPECT_EQ(rec->write->timestamp, TimePoint{1234567});
  EXPECT_EQ(rec->write->origin_timestamp, TimePoint{1234000});
  EXPECT_EQ(rec->write->value, value_of(0xAB));
}

TEST(WalCodec, MetaAndCheckpointRoundTrip) {
  const auto meta = decode_record(encode(MetaRecord{9, 17}));
  ASSERT_TRUE(meta.has_value());
  EXPECT_EQ(meta->meta->epoch, 9u);
  EXPECT_EQ(meta->meta->next_transfer_id, 17u);

  CheckpointRecord ckpt;
  ckpt.epoch = 4;
  ckpt.next_transfer_id = 12;
  core::ObjectState st;
  st.spec = make_spec(2);
  st.value = value_of(0x55);
  st.version = 99;
  st.timestamp = TimePoint{777};
  st.origin_timestamp = TimePoint{700};
  ckpt.states.push_back(st);
  const auto rec = decode_record(encode(ckpt));
  ASSERT_TRUE(rec.has_value());
  ASSERT_EQ(rec->kind, RecordKind::kCheckpoint);
  ASSERT_EQ(rec->checkpoint->states.size(), 1u);
  EXPECT_EQ(rec->checkpoint->states[0].version, 99u);
  EXPECT_EQ(rec->checkpoint->states[0].spec.id, 2u);
  EXPECT_EQ(rec->checkpoint->epoch, 4u);
}

TEST(WalCodec, TruncatedPayloadRejected) {
  Bytes payload = encode(MetaRecord{1, 2});
  for (std::size_t cut = 0; cut < payload.size(); ++cut) {
    Bytes prefix(payload.begin(), payload.begin() + static_cast<std::ptrdiff_t>(cut));
    EXPECT_FALSE(decode_record(prefix).has_value()) << "cut=" << cut;
  }
}

TEST(WalReplay, RoundTripAndPrefixStop) {
  Bytes log;
  const Bytes a = frame_record(encode(MetaRecord{1, 1}));
  const Bytes b = frame_record(encode(WriteRecord{1, 5, TimePoint{10}, TimePoint{9}, value_of(1)}));
  log.insert(log.end(), a.begin(), a.end());
  log.insert(log.end(), b.begin(), b.end());

  std::size_t seen = 0;
  ReplayStats stats = replay(log, [&](auto payload) {
    ++seen;
    EXPECT_TRUE(decode_record(payload).has_value());
  });
  EXPECT_EQ(seen, 2u);
  EXPECT_EQ(stats.records, 2u);
  EXPECT_TRUE(stats.clean);
  EXPECT_EQ(stats.torn_bytes, 0u);

  // A cut exactly at the record boundary is a clean (shorter) log, not a
  // torn one.
  {
    Bytes boundary(log.begin(), log.begin() + static_cast<std::ptrdiff_t>(a.size()));
    ReplayStats s = replay(boundary, [](auto) {});
    EXPECT_EQ(s.records, 1u);
    EXPECT_TRUE(s.clean);
  }

  // Every proper prefix inside record B replays exactly record A, flags a
  // torn tail, and never delivers the partial record.
  for (std::size_t cut = a.size() + 1; cut < log.size(); ++cut) {
    Bytes torn(log.begin(), log.begin() + static_cast<std::ptrdiff_t>(cut));
    std::size_t n = 0;
    ReplayStats s = replay(torn, [&](auto) { ++n; });
    EXPECT_EQ(n, 1u) << "cut=" << cut;
    EXPECT_FALSE(s.clean);
    EXPECT_EQ(s.torn_bytes, cut - a.size());
  }
}

TEST(WalReplay, BitRotStopsAtCorruptRecord) {
  Bytes log;
  for (int i = 1; i <= 3; ++i) {
    const Bytes f = frame_record(
        encode(WriteRecord{1, static_cast<std::uint64_t>(i), TimePoint{}, TimePoint{},
                           value_of(static_cast<std::uint8_t>(i))}));
    log.insert(log.end(), f.begin(), f.end());
  }
  const std::size_t frame_len = log.size() / 3;
  // Rot a byte inside the SECOND record's payload: replay keeps record 1,
  // cuts 2 and (transitively) 3 — a mid-log corruption never lets later
  // records "resurrect" out of order.
  Bytes rotten = log;
  rotten[frame_len + 10] ^= 0x40;
  std::size_t n = 0;
  ReplayStats s = replay(rotten, [&](auto) { ++n; });
  EXPECT_EQ(n, 1u);
  EXPECT_FALSE(s.clean);
  EXPECT_EQ(s.torn_bytes, rotten.size() - frame_len);
}

TEST(SimStorageDevice, CrashBudgetLeavesTornPrefix) {
  SimStorageDevice dev;
  ASSERT_TRUE(dev.append(value_of(0x01, 16)));
  EXPECT_EQ(dev.size(), 16u);

  dev.arm_crash_after(4);
  EXPECT_FALSE(dev.append(value_of(0x02, 16)));  // torn: only 4 bytes land
  EXPECT_TRUE(dev.failed());
  EXPECT_EQ(dev.size(), 20u);
  EXPECT_EQ(dev.torn_appends(), 1u);
  EXPECT_FALSE(dev.append(value_of(0x03, 1)));  // dead until power-cycled

  dev.clear_failure();
  EXPECT_FALSE(dev.failed());
  EXPECT_TRUE(dev.append(value_of(0x04, 2)));
  EXPECT_EQ(dev.size(), 22u);
}

TEST(SimStorageDevice, TearTailAndCorrupt) {
  SimStorageDevice dev;
  ASSERT_TRUE(dev.append(value_of(0xFF, 10)));
  dev.tear_tail(4);
  EXPECT_EQ(dev.size(), 6u);
  dev.corrupt_byte(0);
  EXPECT_EQ(dev.contents()[0], 0xFF ^ 0x40);
  dev.corrupt_byte(1000);  // out of range: ignored
  EXPECT_EQ(dev.size(), 6u);
}

TEST(DurableStore, RecoverReplaysWalOntoCheckpoint) {
  SimStorageDevice wal;
  SimStorageDevice ckpt;
  DurableStore ds(wal, ckpt, /*checkpoint_every=*/1000);

  ASSERT_TRUE(ds.log_insert(make_spec(1)));
  ASSERT_TRUE(ds.log_insert(make_spec(2)));
  ASSERT_TRUE(ds.log_write(1, 1, TimePoint{10}, TimePoint{9}, value_of(0x11)));
  ASSERT_TRUE(ds.log_write(2, 1, TimePoint{11}, TimePoint{10}, value_of(0x22)));
  ASSERT_TRUE(ds.log_write(1, 2, TimePoint{20}, TimePoint{19}, value_of(0x12)));
  ASSERT_TRUE(ds.log_meta(3, 7));

  RecoveryResult rec = ds.recover();
  EXPECT_EQ(rec.epoch, 3u);
  EXPECT_EQ(rec.next_transfer_id, 7u);
  EXPECT_TRUE(!rec.wal_torn && !rec.checkpoint_torn);
  ASSERT_EQ(rec.states.size(), 2u);
  EXPECT_EQ(rec.states[0].spec.id, 1u);
  EXPECT_EQ(rec.states[0].version, 2u);
  EXPECT_EQ(rec.states[0].value, value_of(0x12));
  EXPECT_EQ(rec.states[0].timestamp, TimePoint{20});
  EXPECT_EQ(rec.states[1].version, 1u);
}

TEST(DurableStore, CheckpointTruncatesWalAndWins) {
  SimStorageDevice wal;
  SimStorageDevice ckpt;
  DurableStore ds(wal, ckpt, 1000);

  ASSERT_TRUE(ds.log_insert(make_spec(1)));
  ASSERT_TRUE(ds.log_write(1, 5, TimePoint{50}, TimePoint{49}, value_of(0x05)));

  core::ObjectState st;
  st.spec = make_spec(1);
  st.value = value_of(0x05);
  st.version = 5;
  st.timestamp = TimePoint{50};
  st.origin_timestamp = TimePoint{49};
  ASSERT_TRUE(ds.checkpoint({st}, /*epoch=*/2, /*next_transfer_id=*/4));
  EXPECT_EQ(wal.size(), 0u);  // subsumed log dropped

  // Fresh writes land on the (now empty) WAL and stack on the checkpoint.
  ASSERT_TRUE(ds.log_write(1, 6, TimePoint{60}, TimePoint{59}, value_of(0x06)));
  RecoveryResult rec = ds.recover();
  ASSERT_EQ(rec.states.size(), 1u);
  EXPECT_EQ(rec.states[0].version, 6u);
  EXPECT_EQ(rec.epoch, 2u);
  EXPECT_EQ(rec.next_transfer_id, 4u);

  // A second checkpoint supersedes the first (last-valid-wins), even
  // though both frames sit on the append-only checkpoint device.
  st.version = 6;
  st.value = value_of(0x06);
  ASSERT_TRUE(ds.checkpoint({st}, 2, 9));
  rec = ds.recover();
  EXPECT_EQ(rec.states[0].version, 6u);
  EXPECT_EQ(rec.next_transfer_id, 9u);
  EXPECT_EQ(rec.checkpoint_records, 2u);
}

TEST(DurableStore, StaleWalRecordsAfterCheckpointAreIdempotent) {
  // Crash window: checkpoint appended but the WAL truncate never ran.
  // Replay re-applies records the checkpoint already holds — the version
  // gate must make that a no-op.
  SimStorageDevice wal;
  SimStorageDevice ckpt;
  DurableStore ds(wal, ckpt, 1000);
  ASSERT_TRUE(ds.log_insert(make_spec(1)));
  ASSERT_TRUE(ds.log_write(1, 3, TimePoint{30}, TimePoint{29}, value_of(0x03)));

  core::ObjectState st;
  st.spec = make_spec(1);
  st.value = value_of(0x04);
  st.version = 4;  // checkpoint is AHEAD of the surviving WAL records
  ASSERT_TRUE(ckpt.append(frame_record(encode(CheckpointRecord{1, 1, {st}}))));

  RecoveryResult rec = ds.recover();
  ASSERT_EQ(rec.states.size(), 1u);
  EXPECT_EQ(rec.states[0].version, 4u);
  EXPECT_EQ(rec.states[0].value, value_of(0x04));
}

TEST(DurableStore, CrashPointSweepNeverLosesDurablePrefix) {
  // ALICE-style sweep: build a reference WAL, then recover from every
  // possible torn prefix.  Versions must grow monotonically with the cut
  // point, and a record that was fully framed at cut X must survive at
  // every cut ≥ X.
  SimStorageDevice wal;
  SimStorageDevice ckpt;
  DurableStore ds(wal, ckpt, 1000);
  ASSERT_TRUE(ds.log_insert(make_spec(1)));
  for (std::uint64_t v = 1; v <= 6; ++v) {
    ASSERT_TRUE(ds.log_write(1, v, TimePoint{static_cast<std::int64_t>(v * 10)},
                             TimePoint{static_cast<std::int64_t>(v * 10 - 1)},
                             value_of(static_cast<std::uint8_t>(v))));
  }
  const Bytes full(wal.contents().begin(), wal.contents().end());

  std::uint64_t prev_version = 0;
  for (std::size_t cut = 0; cut <= full.size(); ++cut) {
    SimStorageDevice wal2;
    SimStorageDevice ckpt2;
    if (cut > 0) {
      ASSERT_TRUE(wal2.append(std::span<const std::uint8_t>(full.data(), cut)));
    }
    DurableStore ds2(wal2, ckpt2, 1000);
    RecoveryResult rec = ds2.recover();
    std::uint64_t version = 0;
    if (!rec.states.empty()) version = rec.states[0].version;
    EXPECT_GE(version, prev_version) << "recovery went backwards at cut " << cut;
    prev_version = version;
    if (cut < full.size()) EXPECT_FALSE(rec.wal_torn && rec.states.empty() && cut == 0);
    if (!rec.states.empty() && version > 0) {
      // The recovered value matches the recovered version exactly.
      EXPECT_EQ(rec.states[0].value, value_of(static_cast<std::uint8_t>(version)));
    }
  }
  EXPECT_EQ(prev_version, 6u);  // the untorn log recovers everything
}

TEST(DurableStore, ArmedCrashFailsAppendAndRecoversPrefix) {
  SimStorageDevice wal;
  SimStorageDevice ckpt;
  DurableStore ds(wal, ckpt, 1000);
  ASSERT_TRUE(ds.log_insert(make_spec(1)));
  ASSERT_TRUE(ds.log_write(1, 1, TimePoint{10}, TimePoint{9}, value_of(0x01)));

  wal.arm_crash_after(5);  // the next record tears after 5 bytes
  EXPECT_FALSE(ds.log_write(1, 2, TimePoint{20}, TimePoint{19}, value_of(0x02)));
  EXPECT_TRUE(wal.failed());

  wal.clear_failure();  // power-cycle
  RecoveryResult rec = ds.recover();
  EXPECT_TRUE(rec.wal_torn);
  ASSERT_EQ(rec.states.size(), 1u);
  EXPECT_EQ(rec.states[0].version, 1u);  // v2 was never acked; v1 survives
}

}  // namespace
}  // namespace rtpb::store
