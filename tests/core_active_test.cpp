// The active (state-machine) replication baseline: ordering, agreement,
// loss recovery, and the response-latency cost the paper attributes to it.
#include "core/active.hpp"

#include <gtest/gtest.h>

namespace rtpb::core {
namespace {

ObjectSpec make_spec(ObjectId id, Duration period = millis(10)) {
  ObjectSpec s;
  s.id = id;
  s.name = "obj" + std::to_string(id);
  s.size_bytes = 64;
  s.client_period = period;
  s.client_exec = micros(200);
  s.update_exec = micros(200);
  s.delta_primary = millis(20);
  s.delta_backup = millis(100);
  return s;
}

ActiveReplicationService::Params make_params(std::size_t followers = 2, double loss = 0.0) {
  ActiveReplicationService::Params p;
  p.seed = 21;
  p.link.propagation = millis(1);
  p.link.jitter = micros(200);
  p.followers = followers;
  p.message_loss_probability = loss;
  return p;
}

TEST(ActiveReplication, AgreementCompletesWrites) {
  ActiveReplicationService service(make_params());
  service.start();
  service.add_object(make_spec(1));
  service.run_for(seconds(2));
  EXPECT_GT(service.writes_started(), 150u);
  // Nearly all writes complete (the last few are in flight).
  EXPECT_GE(service.writes_completed() + 5, service.writes_started());
}

TEST(ActiveReplication, ResponseIncludesRoundTrip) {
  ActiveReplicationService service(make_params());
  service.start();
  service.add_object(make_spec(1));
  service.run_for(seconds(2));
  // Response = exec + prepare (>=1ms) + ack (>=1ms): at least ~2.2ms —
  // an order of magnitude above RTPB's local-write response.
  EXPECT_GT(service.response_times().quantile(0.5), 2.0);
}

TEST(ActiveReplication, ReplicasIdenticalAfterDrain) {
  ActiveReplicationService service(make_params(3));
  service.start();
  for (ObjectId id = 1; id <= 3; ++id) service.add_object(make_spec(id));
  service.run_for(seconds(2));
  service.stop_clients();
  service.run_for(seconds(1));  // drain in-flight agreement
  EXPECT_TRUE(service.replicas_identical());
}

TEST(ActiveReplication, LossRecoveredByRetransmission) {
  ActiveReplicationService service(make_params(2, /*loss=*/0.3));
  service.start();
  service.add_object(make_spec(1));
  service.run_for(seconds(3));
  service.stop_clients();
  service.run_for(seconds(2));
  EXPECT_GT(service.retransmissions(), 0u);
  EXPECT_TRUE(service.replicas_identical());
  EXPECT_EQ(service.writes_completed(), service.writes_started());
}

TEST(ActiveReplication, FollowersApplyInOrder) {
  ActiveReplicationService service(make_params(2, /*loss=*/0.4));
  service.start();
  service.add_object(make_spec(1, millis(5)));
  service.run_for(seconds(3));
  service.stop_clients();
  service.run_for(seconds(2));
  // In-order application means follower versions march 1,2,3...; after the
  // drain every replica holds exactly writes_started versions.
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(service.follower_store(i).get(1).version, service.writes_started());
  }
}

TEST(ActiveReplication, MoreFollowersMeanSlowerResponses) {
  auto median_response = [](std::size_t followers) {
    ActiveReplicationService service(make_params(followers));
    service.start();
    service.add_object(make_spec(1));
    service.run_for(seconds(2));
    return service.response_times().quantile(0.5);
  };
  // The slowest follower gates agreement; with per-direction FIFO links
  // and jitter, more followers can only be equal-or-worse.
  EXPECT_GE(median_response(4) + 0.05, median_response(1));
}

TEST(ActiveReplication, MessageCostScalesWithFollowers) {
  auto prepares = [](std::size_t followers) {
    ActiveReplicationService service(make_params(followers));
    service.start();
    service.add_object(make_spec(1));
    service.run_for(seconds(2));
    return service.prepares_sent();
  };
  const auto one = prepares(1);
  const auto four = prepares(4);
  EXPECT_NEAR(static_cast<double>(four), 4.0 * static_cast<double>(one),
              static_cast<double>(one) * 0.1);
}

}  // namespace
}  // namespace rtpb::core
