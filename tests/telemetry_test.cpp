// Telemetry: registry instruments and JSON snapshots, causal span
// lifecycle (mint / lookup / context / violation / eviction), bounded
// event retention, exporter output shape, and the two properties the
// whole design hangs on — a disabled hub is a no-op, and an enabled hub
// never perturbs the simulation (identical chaos digests either way).
#include "telemetry/telemetry.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <sstream>
#include <string>

#include "chaos/harness.hpp"
#include "core/rtpb.hpp"
#include "telemetry/export.hpp"

namespace rtpb::telemetry {
namespace {

// ---------------------------------------------------------------------------
// Registry.
// ---------------------------------------------------------------------------

TEST(TelemetryRegistry, DisabledInstrumentsAreNoOps) {
  Hub hub;  // never enabled
  hub.registry().counter("net.link.drops").add(7);
  hub.registry().gauge("core.service.backups").set(3.0);
  hub.registry().histogram("net.link.delay_ms").record_ms(1.5);

  EXPECT_EQ(hub.registry().counter("net.link.drops").value(), 0u);
  EXPECT_EQ(hub.registry().gauge("core.service.backups").value(), 0.0);
  EXPECT_TRUE(hub.registry().histogram("net.link.delay_ms").samples().empty());
}

TEST(TelemetryRegistry, SameNameReturnsSameInstrument) {
  Hub hub;
  hub.enable();
  Counter& a = hub.registry().counter("core.primary.writes");
  Counter& b = hub.registry().counter("core.primary.writes");
  EXPECT_EQ(&a, &b);
  a.add(2);
  b.add(3);
  EXPECT_EQ(hub.registry().counter("core.primary.writes").value(), 5u);
}

TEST(TelemetryRegistry, JsonNestsAlongDots) {
  Hub hub;
  hub.enable();
  hub.registry().counter("net.link.drops").add(2);
  hub.registry().counter("net.link.sends").add(9);
  hub.registry().counter("sched.preemptions").add(1);
  hub.registry().gauge("core.service.backups").set(1.0);
  hub.registry().histogram("net.link.delay_ms").record_ms(2.0);
  hub.registry().histogram("net.link.delay_ms").record_ms(4.0);

  const std::string json = hub.registry().to_json();
  // Dotted names become nested objects; siblings share one subtree.
  EXPECT_NE(json.find("\"counters\":{\"net\":{\"link\":{\"drops\":2,\"sends\":9}}"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"sched\":{\"preemptions\":1}"), std::string::npos) << json;
  EXPECT_NE(json.find("\"gauges\":{\"core\":{\"service\":{\"backups\":1}}}"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"delay_ms\":{\"count\":2,\"mean_ms\":3"), std::string::npos) << json;
}

// ---------------------------------------------------------------------------
// Spans.
// ---------------------------------------------------------------------------

TEST(TelemetryHub, DisabledHubMintsNoSpansAndRecordsNothing) {
  Hub hub;
  EXPECT_EQ(hub.begin_span(1, 1), kNoSpan);
  hub.record(kNoSpan, 1, EventKind::kInstant, "node1/net", "net-enqueue");
  EXPECT_TRUE(hub.events().empty());
  EXPECT_EQ(hub.recorded_events(), 0u);
  EXPECT_EQ(hub.spans_started(), 0u);
}

TEST(TelemetryHub, SpanLifecycle) {
  Hub hub;
  hub.enable();
  const SpanId s1 = hub.begin_span(7, 1);
  const SpanId s2 = hub.begin_span(7, 2);
  const SpanId s3 = hub.begin_span(8, 1);
  EXPECT_NE(s1, kNoSpan);
  EXPECT_NE(s1, s2);
  EXPECT_EQ(hub.spans_started(), 3u);

  EXPECT_EQ(hub.span_for(7, 1), s1);
  EXPECT_EQ(hub.span_for(7, 2), s2);
  EXPECT_EQ(hub.span_for(7, 99), kNoSpan);
  EXPECT_EQ(hub.latest_span(7), s2);
  EXPECT_EQ(hub.latest_span(8), s3);
  EXPECT_EQ(hub.latest_span(999), kNoSpan);
}

TEST(TelemetryHub, ScopedSpanNestsAndRestores) {
  Hub hub;
  hub.enable();
  const SpanId s1 = hub.begin_span(1, 1);
  const SpanId s2 = hub.begin_span(1, 2);
  EXPECT_EQ(hub.current_span(), kNoSpan);
  {
    ScopedSpan outer(hub, s1);
    EXPECT_EQ(hub.current_span(), s1);
    {
      ScopedSpan inner(hub, s2);
      EXPECT_EQ(hub.current_span(), s2);
    }
    EXPECT_EQ(hub.current_span(), s1);
  }
  EXPECT_EQ(hub.current_span(), kNoSpan);
}

TEST(TelemetryHub, MarkViolationFlagsSpanOnce) {
  Hub hub;
  hub.enable();
  const SpanId s = hub.begin_span(3, 4);
  hub.mark_violation(s, "staleness-window", "out of window");
  hub.mark_violation(s, "staleness-window", "still out");  // same span again
  EXPECT_EQ(hub.spans_violated(), 1u);
  EXPECT_EQ(hub.spans().at(s).violation, "staleness-window");
  // The violation also lands as an event attached to the span.
  ASSERT_FALSE(hub.events().empty());
  EXPECT_EQ(hub.events().back().span, s);
  EXPECT_EQ(hub.events().back().name, "violation:staleness-window");

  hub.mark_violation(kNoSpan, "oracle", "unattributed");  // must not crash
  EXPECT_EQ(hub.spans_violated(), 1u);
}

TEST(TelemetryHub, SpanEvictionIsFifoAndCleansLookups) {
  Hub hub;
  hub.enable(/*event_capacity=*/64, /*span_capacity=*/2);
  const SpanId s1 = hub.begin_span(1, 1);
  const SpanId s2 = hub.begin_span(1, 2);
  const SpanId s3 = hub.begin_span(2, 1);  // evicts s1
  EXPECT_EQ(hub.spans().size(), 2u);
  EXPECT_EQ(hub.span_for(1, 1), kNoSpan) << "evicted span must not resolve";
  EXPECT_EQ(hub.span_for(1, 2), s2);
  EXPECT_EQ(hub.latest_span(2), s3);
  EXPECT_EQ(hub.spans_started(), 3u) << "eviction must not unwind the started count";
  EXPECT_EQ(s1, hub.spans_started() - 2);  // ids stay monotone
}

TEST(TelemetryHub, EventRetentionIsBounded) {
  Hub hub;
  hub.enable(/*event_capacity=*/2, /*span_capacity=*/16);
  hub.record(kNoSpan, 1, EventKind::kInstant, "t", "a");
  hub.record(kNoSpan, 1, EventKind::kInstant, "t", "b");
  hub.record(kNoSpan, 1, EventKind::kInstant, "t", "c");
  EXPECT_EQ(hub.events().size(), 2u);
  EXPECT_EQ(hub.events().front().name, "b");
  EXPECT_EQ(hub.recorded_events(), 3u);
  EXPECT_EQ(hub.dropped_events(), 1u);
}

TEST(TelemetryHub, ClearForgetsDataButStaysEnabled) {
  Hub hub;
  hub.enable();
  hub.begin_span(1, 1);
  hub.record(kNoSpan, 0, EventKind::kInstant, "t", "x");
  hub.registry().counter("a.b").add();
  hub.clear();
  EXPECT_TRUE(hub.enabled());
  EXPECT_TRUE(hub.events().empty());
  EXPECT_TRUE(hub.spans().empty());
  EXPECT_EQ(hub.registry().counter("a.b").value(), 0u);
  EXPECT_NE(hub.begin_span(1, 2), kNoSpan);
}

// ---------------------------------------------------------------------------
// Exporters.
// ---------------------------------------------------------------------------

/// A hub with a fixed clock and a small primary→net→backup journey.
void populate(Hub& hub) {
  hub.enable();
  TimePoint now = TimePoint{} + millis(1);
  hub.set_clock([&now] { return now; });
  const SpanId s = hub.begin_span(5, 9);
  hub.record(s, 1, EventKind::kInstant, "node1/rtpb", "write", "obj5 v9");
  now = now + millis(1);
  hub.record(s, 1, EventKind::kInstant, "node1/net", "net-enqueue", "node1->node2 109B");
  now = now + millis(2);
  hub.record(s, 2, EventKind::kInstant, "node2/net", "net-deliver", "\"quoted\"\n");
  hub.record(s, 2, EventKind::kInstant, "node2/rtpb", "update-apply", "obj5 v9");
  hub.record(kNoSpan, 2, EventKind::kBegin, "cpu2", "job #1");
  now = now + millis(1);
  hub.record(kNoSpan, 2, EventKind::kEnd, "cpu2", "job #1");
}

TEST(TelemetryExport, JsonEscapeHandlesSpecials) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(json_escape("x\ny\tz"), "x\\ny\\tz");
  EXPECT_EQ(json_escape(std::string(1, '\x01')), "\\u0001");
}

TEST(TelemetryExport, ChromeTraceIsWellFormed) {
  Hub hub;
  populate(hub);
  std::ostringstream out;
  write_chrome_trace(hub, out);
  const std::string json = out.str();

  EXPECT_EQ(json.rfind("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[", 0), 0u) << json;
  EXPECT_EQ(json.substr(json.size() - 3), "]}\n");
  // Metadata names every track; slices and instants carry their phase.
  EXPECT_NE(json.find("\"name\":\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("\"node1/rtpb\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"B\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"E\""), std::string::npos);
  // The span renders as one nestable async track with its hops attached.
  EXPECT_NE(json.find("\"ph\":\"b\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"e\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"n\""), std::string::npos);
  // Event details are escaped, never raw.
  EXPECT_NE(json.find("\\\"quoted\\\"\\n"), std::string::npos);
  // Balanced braces/brackets (cheap structural sanity; full parse happens
  // in the CI smoke step via Perfetto-compatible tooling).
  long depth = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (in_string) {
      if (c == '\\') ++i;
      else if (c == '"') in_string = false;
    } else if (c == '"') {
      in_string = true;
    } else if (c == '{' || c == '[') {
      ++depth;
    } else if (c == '}' || c == ']') {
      --depth;
      EXPECT_GE(depth, 0);
    }
  }
  EXPECT_EQ(depth, 0);
  EXPECT_FALSE(in_string);
}

TEST(TelemetryExport, JsonlStreamShape) {
  Hub hub;
  populate(hub);
  std::ostringstream out;
  write_jsonl(hub, out);
  std::istringstream lines(out.str());
  std::string line;

  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_EQ(line.rfind("{\"type\":\"meta\",\"spans_started\":1,", 0), 0u) << line;

  std::size_t span_lines = 0;
  std::size_t event_lines = 0;
  while (std::getline(lines, line)) {
    if (line.rfind("{\"type\":\"span\"", 0) == 0) ++span_lines;
    if (line.rfind("{\"type\":\"event\"", 0) == 0) ++event_lines;
    EXPECT_EQ(line.back(), '}') << line;
  }
  EXPECT_EQ(span_lines, hub.spans().size());
  EXPECT_EQ(event_lines, hub.events().size());
}

// ---------------------------------------------------------------------------
// End to end: spans cross the real service, and telemetry never perturbs it.
// ---------------------------------------------------------------------------

TEST(TelemetryEndToEnd, SpansCrossPrimaryNetBackup) {
  core::ServiceParams params;
  params.seed = 42;
  params.link.propagation = millis(1);
  params.link.jitter = micros(200);
  core::RtpbService service(params);
  service.simulator().telemetry().enable();
  service.start();

  core::ObjectSpec spec;
  spec.id = 1;
  spec.name = "obj1";
  spec.size_bytes = 64;
  spec.client_period = millis(10);
  spec.client_exec = micros(200);
  spec.update_exec = micros(200);
  spec.delta_primary = millis(20);
  spec.delta_backup = millis(100);
  ASSERT_TRUE(service.register_object(spec).ok());
  service.run_for(seconds(2));
  service.finish();

  const Hub& hub = service.simulator().telemetry();
  EXPECT_GT(hub.spans_started(), 100u);  // one span per client write
  const auto& counters = hub.registry().counters();
  EXPECT_GT(counters.at("core.primary.writes")->value(), 100u);
  EXPECT_GT(counters.at("net.link.sends")->value(), 0u);
  EXPECT_GT(counters.at("core.backup.applies")->value(), 0u);

  // At least one span must thread the full journey: write at the primary,
  // x-kernel push, network hop, and apply at the backup — same span id.
  bool crossed = false;
  std::map<SpanId, std::set<std::string>> names_by_span;
  for (const Event& e : hub.events()) {
    if (e.span != kNoSpan) names_by_span[e.span].insert(e.name);
  }
  for (const auto& [span, names] : names_by_span) {
    if (names.count("write") && names.count("udp-push") && names.count("net-deliver") &&
        names.count("update-apply")) {
      crossed = true;
      break;
    }
  }
  EXPECT_TRUE(crossed) << "no span crossed primary -> net -> backup";
}

TEST(TelemetryEndToEnd, ChaosDigestIdenticalWithTelemetryOnAndOff) {
  chaos::ChaosOptions opts;
  opts.duration = millis(3000);
  opts.objects = 2;

  chaos::ChaosOptions with_telemetry = opts;
  with_telemetry.telemetry = true;

  const chaos::SeedReport plain = chaos::run_seed(7, opts);
  const chaos::SeedReport traced = chaos::run_seed(7, with_telemetry);
  EXPECT_EQ(plain.trace_digest, traced.trace_digest)
      << "telemetry must not perturb the simulation";
  EXPECT_EQ(plain.sim_events, traced.sim_events);
  EXPECT_EQ(plain.client_writes, traced.client_writes);
  EXPECT_GT(traced.spans_started, 0u);
  EXPECT_FALSE(traced.metrics_json.empty());
  EXPECT_TRUE(plain.metrics_json.empty());
}

}  // namespace
}  // namespace rtpb::telemetry
