// Crash–restart recovery at the service level: durable replicas power
// back up from checkpoint + WAL, rejoin the cluster through the
// incremental resync protocol (kResyncRequest → kStateDelta, with the
// full-transfer fallback), and never lose a client-acked update.
#include "core/rtpb.hpp"

#include <gtest/gtest.h>

#include "store/device.hpp"

namespace rtpb::core {
namespace {

ObjectSpec make_spec(ObjectId id, Duration client_period = millis(10),
                     Duration delta_p = millis(20), Duration delta_b = millis(100)) {
  ObjectSpec s;
  s.id = id;
  s.name = "obj" + std::to_string(id);
  s.size_bytes = 64;
  s.client_period = client_period;
  s.client_exec = micros(200);
  s.update_exec = micros(200);
  s.delta_primary = delta_p;
  s.delta_backup = delta_b;
  return s;
}

ObjectSpec cold_spec(ObjectId id) {
  // Written every 5 s: admission needs p ≤ δ_P and a window with room past
  // the client period, so the deltas scale too.  Transmission period is
  // window-derived (~2.5 s), so a cold version is on the backup within one
  // transmission period of the write.
  return make_spec(id, seconds(5), seconds(5), seconds(15));
}

ServiceParams make_params(std::uint64_t seed = 42) {
  ServiceParams p;
  p.seed = seed;
  p.link.propagation = millis(1);
  p.link.jitter = micros(200);
  p.durable = true;
  return p;
}

/// Objects 1–2 hot (written every 10 ms), 3–4 cold (30 s period: never
/// written again inside these tests) — so a short outage dirties exactly
/// the hot half and the rejoin can go incremental.
void register_mixed_workload(RtpbService& service) {
  ASSERT_TRUE(service.register_object(make_spec(1)).ok());
  ASSERT_TRUE(service.register_object(make_spec(2)).ok());
  ASSERT_TRUE(service.register_object(cold_spec(3)).ok());
  ASSERT_TRUE(service.register_object(cold_spec(4)).ok());
}

TEST(Recovery, DurabilityIsDigestPure) {
  // WAL appends are synchronous — no sim events, no rng draws — so a
  // durable run that never crashes is trace-identical to an in-memory one.
  std::uint64_t digests[2] = {0, 0};
  for (int durable = 0; durable <= 1; ++durable) {
    ServiceParams p = make_params(7);
    p.durable = durable == 1;
    RtpbService service(p);
    service.simulator().trace().enable();
    service.start();
    register_mixed_workload(service);
    service.run_for(seconds(2));
    digests[durable] = service.simulator().trace().digest();
    EXPECT_GT(service.simulator().trace().recorded(), 100u);
  }
  EXPECT_EQ(digests[0], digests[1]);
}

TEST(Recovery, BackupRestartResyncsIncrementally) {
  RtpbService service(make_params());
  service.start();
  register_mixed_workload(service);
  // Run past the cold objects' 5 s write (plus a transmission period) so
  // their latest versions are on the backup; crash inside the cold quiet
  // window [8 s, 10 s) so the outage dirties only the hot objects.
  service.run_for(seconds(8));

  const auto before = service.backup().read(1);
  ASSERT_TRUE(before.has_value());
  service.crash_backup();
  service.run_for(millis(600));  // primary declares the backup dead
  EXPECT_TRUE(service.backup().peers().empty() || service.primary().peers().empty());

  service.restart_backup(0);
  service.run_for(millis(1200));

  EXPECT_EQ(service.backup().recoveries(), 1u);
  EXPECT_EQ(service.backup().recovery_lost_updates(), 0u);
  // Versions stay monotone across the restart: the recovered store holds
  // at least what the dead incarnation had applied.
  const auto after = service.backup().read(1);
  ASSERT_TRUE(after.has_value());
  EXPECT_GE(after->version, before->version);

  // The rejoin went incremental: only the hot objects travelled.
  EXPECT_EQ(service.primary().resync_deltas_sent(), 1u);
  EXPECT_EQ(service.primary().resync_fulls_sent(), 0u);
  EXPECT_EQ(service.primary().delta_entries_sent(), 2u);

  // Replication resumed: the backup tracks the primary again.
  const auto primary_v = service.primary().read(1)->version;
  EXPECT_GE(service.backup().read(1)->version + 20, primary_v);
  EXPECT_EQ(service.primaries_alive(), 1u);
}

TEST(Recovery, EmptyVectorFallsBackToFullTransfer) {
  // A rejoiner that recovered nothing (fresh devices) asks with an empty
  // vector: the primary must recruit it with a full kStateTransfer.
  RtpbService service(make_params());
  service.start();
  register_mixed_workload(service);
  service.run_for(seconds(1));

  service.crash_backup();
  service.run_for(millis(600));
  // Wipe the backup's durable state before the restart: recovery finds
  // an empty image, as if the disks were replaced.
  service.wal_device(1)->truncate();
  service.checkpoint_device(1)->truncate();
  service.restart_backup(0);
  service.run_for(seconds(1));

  EXPECT_EQ(service.primary().resync_fulls_sent(), 1u);
  EXPECT_EQ(service.primary().resync_deltas_sent(), 0u);
  EXPECT_EQ(service.backup().store().size(), 4u);
  const auto primary_v = service.primary().read(1)->version;
  EXPECT_GE(service.backup().read(1)->version + 20, primary_v);
}

TEST(Recovery, PrimaryRestartRejoinsAsBackup) {
  RtpbService service(make_params());
  service.start();
  register_mixed_workload(service);
  service.run_for(seconds(1));

  const auto acked = service.primary().read(1);
  ASSERT_TRUE(acked.has_value());
  service.crash_primary();
  service.run_for(seconds(1));  // successor promotes (epoch 2)
  ASSERT_EQ(service.backup().role(), Role::kPrimary);
  EXPECT_EQ(service.backup().epoch(), 2u);

  service.restart_primary();
  service.run_for(seconds(1));

  // The old primary rejoined as a fenced backup of the new incarnation.
  EXPECT_EQ(service.primary().role(), Role::kBackup);
  EXPECT_EQ(service.primary().recoveries(), 1u);
  EXPECT_EQ(service.primary().recovery_lost_updates(), 0u);
  EXPECT_EQ(service.primary().epoch(), 2u);  // adopted from accepted traffic
  EXPECT_EQ(service.primaries_alive(), 1u);

  // Everything the dead primary had acked survived the round trip, and the
  // rejoined backup now tracks the new primary.
  const auto recovered = service.primary().read(1);
  ASSERT_TRUE(recovered.has_value());
  EXPECT_GE(recovered->version, acked->version);
  EXPECT_GE(recovered->version + 20, service.backup().read(1)->version);
}

TEST(Recovery, TornWalWriteFailStopsAndRecoversCleanly) {
  RtpbService service(make_params());
  service.start();
  register_mixed_workload(service);
  service.run_for(seconds(1));

  // Kill the backup's WAL device mid-record: the append tears, the
  // replica fail-stops (crashes itself) rather than diverging from its
  // log, and the torn tail is discarded at recovery.
  service.wal_device(1)->arm_crash_after(7);
  service.run_for(millis(600));
  EXPECT_TRUE(service.backup().crashed());
  EXPECT_EQ(service.wal_device(1)->torn_appends(), 1u);

  service.restart_backup(0);
  service.run_for(seconds(1));
  EXPECT_EQ(service.backup().recoveries(), 1u);
  EXPECT_EQ(service.backup().recovery_lost_updates(), 0u);
  const auto primary_v = service.primary().read(1)->version;
  EXPECT_GE(service.backup().read(1)->version + 20, primary_v);
}

TEST(Recovery, CrashRestartRunsAreDeterministic) {
  std::uint64_t digests[2] = {0, 0};
  for (int run = 0; run < 2; ++run) {
    RtpbService service(make_params(11));
    service.simulator().trace().enable();
    service.start();
    register_mixed_workload(service);
    service.run_for(seconds(1));
    service.crash_backup();
    service.run_for(millis(700));
    service.restart_backup(0);
    service.run_for(seconds(1));
    service.crash_primary();
    service.run_for(seconds(1));
    service.restart_primary();
    service.run_for(seconds(1));
    digests[run] = service.simulator().trace().digest();
    EXPECT_EQ(service.primaries_alive(), 1u);
  }
  EXPECT_EQ(digests[0], digests[1]);
}

TEST(Recovery, CheckpointsBoundReplay) {
  // With a small checkpoint budget the WAL stays short: recovery replays
  // O(checkpoint_every) records, not the whole history.
  ServiceParams p = make_params();
  p.checkpoint_every = 32;
  RtpbService service(p);
  service.start();
  register_mixed_workload(service);
  service.run_for(seconds(2));

  ASSERT_GT(service.primary().durable()->checkpoints(), 0u);
  service.crash_primary();
  service.run_for(millis(100));
  service.restart_primary();
  // The replica-side recovery stats are in the flight/trace path; here we
  // just bound the device: the WAL on disk held fewer records than two
  // checkpoint windows at the instant of recovery.
  EXPECT_EQ(service.primary().recoveries(), 1u);
  EXPECT_EQ(service.primary().recovery_lost_updates(), 0u);
}

// ---- state-transfer edge cases across crash-restart --------------------

TEST(Recovery, CrashAgainMidResyncRejoinsOnSecondAttempt) {
  // The rejoiner dies a second time with its kResyncRequest (or the
  // answering kStateDelta) still in flight.  The primary's retry/give-up
  // machinery must not wedge on the orphaned transfer, and the second
  // restart must converge exactly like the first.
  RtpbService service(make_params());
  service.start();
  register_mixed_workload(service);
  service.run_for(seconds(8));

  service.crash_backup();
  service.run_for(millis(600));
  service.restart_backup(0);
  // The resync request goes out immediately on rejoin (link propagation
  // 1 ms): crash again before the delta can possibly be applied.
  service.run_for(micros(500));
  service.crash_backup();
  service.run_for(millis(600));

  service.restart_backup(0);
  service.run_for(seconds(2));

  EXPECT_EQ(service.backup().recoveries(), 2u);
  EXPECT_EQ(service.backup().recovery_lost_updates(), 0u);
  // Both rejoin attempts asked; at least the surviving one was answered
  // and applied.  The first delta may have died with the replica — the
  // primary gives the transfer up when the peer is declared down again
  // instead of retrying into a corpse forever.
  EXPECT_EQ(service.backup().resync_requests_sent(), 2u);
  EXPECT_GE(service.primary().resync_deltas_sent() + service.primary().resync_fulls_sent(), 1u);
  EXPECT_EQ(service.primary().pending_transfer_count(), 0u);

  const auto primary_v = service.primary().read(1)->version;
  EXPECT_GE(service.backup().read(1)->version + 20, primary_v);
  EXPECT_EQ(service.primaries_alive(), 1u);
}

TEST(Recovery, RecruitmentRacingResyncDeltaConverges) {
  // A full kStateTransfer (recruitment) and a kStateDelta (incremental
  // resync) race to the same rejoiner.  Both ride the per-sender
  // transfer-id sequence, so the reorder guard totally orders them: the
  // older one may still apply object entries (versions gate the store)
  // but must not clobber the newer last-writer-wins snapshots.
  RtpbService service(make_params());
  service.start();
  register_mixed_workload(service);
  service.run_for(seconds(8));

  service.crash_backup();
  service.run_for(millis(600));
  service.restart_backup(0);
  // Rejoin sends the resync request; before the delta lands, the test
  // recruits the same endpoint — as an operator re-adding a node by hand
  // would — putting a full transfer in flight right behind it.
  service.primary().recruit_backup(service.backup().endpoint());
  service.run_for(seconds(2));

  EXPECT_EQ(service.primary().resync_deltas_sent(), 1u);
  EXPECT_EQ(service.backup().recoveries(), 1u);
  EXPECT_EQ(service.backup().recovery_lost_updates(), 0u);
  EXPECT_EQ(service.primary().pending_transfer_count(), 0u);
  // Whichever frame lost the race was fenced as a stale transfer id or
  // applied idempotently — either way the stores agree afterwards.
  EXPECT_EQ(service.backup().store().size(), 4u);
  const auto primary_v = service.primary().read(1)->version;
  EXPECT_GE(service.backup().read(1)->version + 20, primary_v);
  EXPECT_EQ(service.primaries_alive(), 1u);
}

TEST(Recovery, RestartedPrimaryMintsTransferIdsAboveItsOldOnes) {
  // The transfer-id high-water guard discards per-sender ids that go
  // backwards.  next_transfer_id_ is therefore persisted: a crashed
  // primary that powers back up and is later re-promoted must mint ids
  // ABOVE everything it sent in its first incarnation, or a peer that
  // stayed alive the whole time would fence its recruitment as a stale
  // retry of the pre-crash transfer.
  ServiceParams p = make_params();
  p.backup_count = 2;
  RtpbService service(p);
  service.start();
  register_mixed_workload(service);
  service.run_for(seconds(1));

  ReplicaServer& node2 = *service.backups()[1];
  const std::uint64_t old_high_water =
      node2.highest_transfer_applied(service.primary().node());
  ASSERT_GT(old_high_water, 0u);  // initial recruitment landed

  // First incarnation dies; the successor promotes and re-recruits node2.
  service.crash_primary();
  service.run_for(seconds(1));
  ASSERT_EQ(service.backup().role(), Role::kPrimary);

  // The old primary recovers its durable image — including the transfer-id
  // counter — and rejoins as a backup of the new incarnation.
  service.restart_primary();
  service.run_for(seconds(1));
  ASSERT_EQ(service.primary().role(), Role::kBackup);

  // Now the new primary dies too.  The service's fixed wiring only ever
  // designates the front backup as successor, so the test promotes the
  // recovered replica by hand (the operator's failover of last resort)
  // and has it recruit the surviving backup.
  service.crash_backup();
  service.run_for(millis(600));
  service.primary().promote();
  service.primary().recruit_backup(node2.endpoint());
  service.run_for(seconds(1));

  // node2 never crashed: its high-water for node0 still reflects the
  // first incarnation.  The re-recruitment only applies because the
  // recovered counter kept minting past it.
  const std::uint64_t new_high_water =
      node2.highest_transfer_applied(service.primary().node());
  EXPECT_GT(new_high_water, old_high_water);
  EXPECT_EQ(service.primary().pending_transfer_count(), 0u);
  EXPECT_EQ(service.primaries_alive(), 1u);
  EXPECT_EQ(node2.role(), Role::kBackup);
  EXPECT_FALSE(node2.crashed());
}

TEST(Recovery, QosDowngradeSurvivesBackupCrashRestart) {
  // QoS renegotiation state is deliberately not durable: a rejoiner's
  // recovered image holds the ORIGINAL spec even when the cluster runs
  // under a downgrade.  The resync version vector carries qos_seq per
  // object, so a version-clean but spec-stale object is still dirty and
  // the rejoiner adopts the sender's (downgraded) spec — otherwise the
  // shared metrics would judge the object against the tight original
  // window and report staleness violations nobody actually caused.
  ServiceParams p = make_params();
  // Keep the downgrade in force across the whole outage: the default
  // 500 ms restore hold would quietly re-tighten the window while the
  // backup is down and void what this test is after.
  p.config.degrade_restore_hold = seconds(60);
  RtpbService service(p);
  service.start();
  register_mixed_workload(service);
  service.run_for(seconds(8));

  // Downgrade a COLD object: it is never written during the outage, so
  // only the qos_seq rule can mark it dirty.
  const Duration original = cold_spec(3).window();
  ASSERT_TRUE(service.primary().downgrade_object(3));
  const Duration downgraded = service.primary().store().find(3)->spec.window();
  ASSERT_GT(downgraded, original);
  service.run_for(millis(100));
  ASSERT_EQ(service.backup().store().find(3)->spec.window(), downgraded);

  service.crash_backup();
  service.run_for(millis(600));
  service.restart_backup(0);
  service.run_for(millis(1200));

  // Incremental rejoin: the two hot objects (version-behind) plus the
  // downgraded cold one (qos-behind) travelled — not the full table.
  EXPECT_EQ(service.primary().resync_deltas_sent(), 1u);
  EXPECT_EQ(service.primary().resync_fulls_sent(), 0u);
  EXPECT_EQ(service.primary().delta_entries_sent(), 3u);

  // The rejoined backup runs under the downgraded window again, and the
  // untouched cold object kept its original spec.
  EXPECT_EQ(service.backup().store().find(3)->spec.window(), downgraded);
  EXPECT_EQ(service.backup().store().find(4)->spec.window(), original);
  EXPECT_EQ(service.backup().recovery_lost_updates(), 0u);
}

}  // namespace
}  // namespace rtpb::core
