// Bounded model-checking harness tests (label: explore — excluded from
// the tier-1 gate because each case runs tens to hundreds of full
// service trajectories).
//
// The two load-bearing claims:
//   1. a healthy 2-node configuration survives the exhaustive bounded
//      sweep with zero violations (the explorer finds nothing to report);
//   2. a sabotaged configuration (fencing off under a partition) yields a
//      counterexample for the right oracle, the artifact round-trips
//      through its text form, and the replay reproduces the violation.
#include <gtest/gtest.h>

#include "explore/explorer.hpp"
#include "util/log.hpp"

namespace rtpb {
namespace {

class ExploreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Crash trajectories log WARN storms by design.
    Logger::instance().set_level(LogLevel::kError);
  }
};

/// The acceptance scenario: 2 nodes, 1 object, crash + recruit candidates
/// and one droppable frame.  Kept in one place so every test explores the
/// same protocol surface.
explore::ExploreConfig healthy_two_node() {
  explore::ExploreConfig cfg;
  cfg.backups = 1;
  cfg.objects = 1;
  cfg.crash_primary_at.push_back(millis(251));
  cfg.crash_backup_at.push_back(millis(451));
  cfg.add_standby_at.push_back(millis(601));
  cfg.bounds.drop_from = TimePoint::zero() + millis(101);
  cfg.bounds.drop_until = TimePoint::zero() + millis(401);
  return cfg;
}

explore::ExploreConfig split_brain_sabotage() {
  explore::ExploreConfig cfg;
  cfg.backups = 2;
  cfg.objects = 1;
  cfg.epoch_fencing = false;
  cfg.partition_at.push_back(millis(251));
  cfg.bounds.fault_budget = 1;
  cfg.bounds.drop_budget = 0;
  return cfg;
}

TEST_F(ExploreTest, HealthyTwoNodeSweepIsExhaustiveAndClean) {
  const explore::ExploreReport report = explore::explore(healthy_two_node());
  EXPECT_TRUE(report.ok()) << report.summary();
  // Exhaustive means exhaustive: nothing capped, nothing truncated.
  EXPECT_FALSE(report.hit_trajectory_cap);
  EXPECT_EQ(report.truncated, 0u);
  // And it genuinely explored: multiple trajectories, a real state count.
  EXPECT_GT(report.trajectories, 10u);
  EXPECT_GT(report.states_visited, 10u);
  EXPECT_GT(report.choice_points, 100u);
}

TEST_F(ExploreTest, DefaultTrajectoryIsViolationFreeAndReplayable) {
  const explore::ExploreConfig cfg = healthy_two_node();
  const explore::TrajectoryResult a = explore::run_trajectory(cfg, {});
  EXPECT_TRUE(a.violations.empty());
  EXPECT_FALSE(a.choice_bound_hit);
  ASSERT_FALSE(a.choices.empty());
  // Replaying the recorded decisions is a fixed point: same choices, same
  // state hashes, same final state (determinism of the trajectory runner).
  const explore::TrajectoryResult b = explore::run_trajectory(cfg, a.decisions());
  EXPECT_EQ(a.decisions(), b.decisions());
  EXPECT_EQ(a.state_hashes, b.state_hashes);
  EXPECT_EQ(a.final_hash, b.final_hash);
}

TEST_F(ExploreTest, CrashTrajectoryFailsOverCleanly) {
  // Force the crash-primary candidate (a trace of all-defaults except a 1
  // at its choice point) and check the run stays violation-free: failover
  // + recruit + catch-up inside the declared epoch.
  const explore::ExploreConfig cfg = healthy_two_node();
  const explore::TrajectoryResult base = explore::run_trajectory(cfg, {});
  std::vector<std::uint16_t> trace;
  bool found = false;
  for (const explore::Choice& c : base.choices) {
    if (c.kind == sim::ChoiceKind::kFault && c.label == "crash-primary") {
      trace.push_back(1);
      found = true;
      break;
    }
    trace.push_back(0);
  }
  ASSERT_TRUE(found) << "crash-primary candidate never offered";
  const explore::TrajectoryResult res = explore::run_trajectory(cfg, trace);
  EXPECT_TRUE(res.violations.empty());
  // The crash and its deterministic standby recovery both happened.
  ASSERT_EQ(res.actions.size(), 2u);
  EXPECT_EQ(res.actions[0].label, "crash-primary");
  EXPECT_EQ(res.actions[1].label, "add-standby");
}

TEST_F(ExploreTest, SplitBrainSabotageYieldsReplayableCounterexample) {
  const explore::ExploreReport report = explore::explore(split_brain_sabotage());
  ASSERT_FALSE(report.counterexamples.empty()) << report.summary();
  const explore::Counterexample& ce = report.counterexamples.front();
  EXPECT_EQ(ce.oracle, "cross-epoch-apply");
  // The minimized witness replays to the same violation.
  EXPECT_TRUE(explore::reproduces(explore::replay(ce), ce.oracle));
  // And it names the partition as the fault that did it.
  ASSERT_FALSE(ce.actions.empty());
  EXPECT_EQ(ce.actions.front().label, "partition-primary");
}

TEST_F(ExploreTest, CounterexampleTextRoundTripsAndStillReproduces) {
  explore::ExploreReport report = explore::explore(split_brain_sabotage());
  ASSERT_FALSE(report.counterexamples.empty());
  const explore::Counterexample& ce = report.counterexamples.front();

  const std::string text = ce.to_text();
  const auto parsed = explore::parse_counterexample(text);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->oracle, ce.oracle);
  EXPECT_EQ(parsed->trace, ce.trace);
  EXPECT_EQ(parsed->config.backups, ce.config.backups);
  EXPECT_EQ(parsed->config.epoch_fencing, ce.config.epoch_fencing);
  EXPECT_EQ(parsed->config.partition_at.size(), ce.config.partition_at.size());
  EXPECT_EQ(parsed->config.bounds.horizon, ce.config.bounds.horizon);
  // The parsed artifact — not the in-memory one — reproduces the bug:
  // exactly what chaos_main --replay does with the emitted file.
  EXPECT_TRUE(explore::reproduces(explore::replay(*parsed), ce.oracle));
  // The embedded FaultPlan snippet names the partition reproducer.
  EXPECT_NE(ce.fault_plan().find("partition_primary"), std::string::npos);
}

TEST_F(ExploreTest, ParserRejectsGarbage) {
  EXPECT_FALSE(explore::parse_counterexample("").has_value());
  EXPECT_FALSE(explore::parse_counterexample("not a counterexample\n").has_value());
  // Versioned header but no oracle: still not replayable.
  EXPECT_FALSE(
      explore::parse_counterexample("# rtpb-explore counterexample v1\nbackups 2\n").has_value());
  // Unknown candidate verbs cannot be replayed faithfully.
  EXPECT_FALSE(explore::parse_counterexample("# rtpb-explore counterexample v1\n"
                                             "oracle staleness-window\n"
                                             "candidate set-cpu-on-fire 1000\n")
                   .has_value());
}

TEST_F(ExploreTest, ReductionsOnlyPrune_NeverChangeTheVerdict) {
  // With visited-state pruning off, the sweep does strictly more work but
  // must reach the same verdict on the healthy scenario.  (Sleep sets stay
  // on: a 2-node run has no commuting deliveries to reorder anyway.)
  explore::ExploreConfig cfg = healthy_two_node();
  // Narrow the drop window to keep the unpruned sweep quick.
  cfg.bounds.drop_until = TimePoint::zero() + millis(201);
  const explore::ExploreReport pruned = explore::explore(cfg);
  cfg.prune_visited = false;
  const explore::ExploreReport full = explore::explore(cfg);
  EXPECT_TRUE(pruned.ok());
  EXPECT_TRUE(full.ok());
  EXPECT_GE(full.trajectories, pruned.trajectories);
}

}  // namespace
}  // namespace rtpb
