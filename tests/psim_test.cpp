// Parallel execution engine: SPSC queue, spin barrier, driver windowing,
// and the partitioned cluster's thread-count-invariant digests.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "psim/barrier.hpp"
#include "psim/driver.hpp"
#include "psim/partitioned.hpp"
#include "psim/spsc.hpp"

namespace rtpb::psim {
namespace {

// ---- SpscQueue ----------------------------------------------------------

TEST(SpscQueue, FifoOrderAndEmpty) {
  SpscQueue<int> q(8);
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(q.pop().has_value());
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(q.push(i));
  EXPECT_FALSE(q.empty());
  for (int i = 0; i < 5; ++i) {
    auto v = q.pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_TRUE(q.empty());
}

TEST(SpscQueue, ReportsOverflowInsteadOfBlocking) {
  SpscQueue<int> q(3);
  EXPECT_TRUE(q.push(1));
  EXPECT_TRUE(q.push(2));
  EXPECT_TRUE(q.push(3));
  EXPECT_FALSE(q.push(4));  // full: capacity slots are usable
  EXPECT_EQ(q.pop().value(), 1);
  EXPECT_TRUE(q.push(4));  // freed slot is reusable (ring wraps)
}

TEST(SpscQueue, WrapsAroundManyTimes) {
  SpscQueue<std::uint64_t> q(4);
  for (std::uint64_t i = 0; i < 1000; ++i) {
    ASSERT_TRUE(q.push(i));
    ASSERT_EQ(q.pop().value(), i);
  }
}

TEST(SpscQueue, ConcurrentProducerConsumer) {
  SpscQueue<std::uint64_t> q(16);
  constexpr std::uint64_t kCount = 100000;
  std::uint64_t sum = 0;
  std::thread consumer([&] {
    std::uint64_t received = 0;
    while (received < kCount) {
      if (auto v = q.pop()) {
        sum += *v;
        ++received;
      }
    }
  });
  for (std::uint64_t i = 1; i <= kCount; ++i) {
    while (!q.push(i)) {
    }
  }
  consumer.join();
  EXPECT_EQ(sum, kCount * (kCount + 1) / 2);
}

// ---- SpinBarrier --------------------------------------------------------

TEST(SpinBarrier, SinglePartyNeverBlocks) {
  SpinBarrier barrier(1);
  barrier.arrive_and_wait();
  barrier.arrive_and_wait();
}

TEST(SpinBarrier, PhasesArePublicationPoints) {
  constexpr std::size_t kThreads = 4;
  constexpr int kPhases = 200;
  SpinBarrier barrier(kThreads);
  std::vector<std::uint64_t> counters(kThreads, 0);
  std::atomic<int> mismatches{0};
  std::vector<std::thread> workers;
  for (std::size_t w = 0; w < kThreads; ++w) {
    workers.emplace_back([&, w] {
      for (int phase = 0; phase < kPhases; ++phase) {
        counters[w] = static_cast<std::uint64_t>(phase + 1);
        barrier.arrive_and_wait();
        // Everyone's phase write happens-before everyone's read here.
        for (std::size_t p = 0; p < kThreads; ++p) {
          if (counters[p] != static_cast<std::uint64_t>(phase + 1)) {
            mismatches.fetch_add(1, std::memory_order_relaxed);
          }
        }
        barrier.arrive_and_wait();
      }
    });
  }
  for (auto& t : workers) t.join();
  EXPECT_EQ(mismatches.load(), 0);
}

// ---- ParallelDriver -----------------------------------------------------

/// Synthetic partition: records every hook invocation; detects ordering
/// violations (begin/advance/end discipline, monotone horizons).
class RecordingTask final : public PartitionTask {
 public:
  void begin_window(TimePoint start) override {
    begins.push_back(start);
    EXPECT_EQ(begins.size(), ends.size() + 1);
  }
  void advance_to(TimePoint horizon) override {
    EXPECT_TRUE(horizons.empty() || horizon >= horizons.back());
    horizons.push_back(horizon);
  }
  void end_window(TimePoint horizon) override {
    EXPECT_EQ(horizons.back(), horizon);
    ends.push_back(horizon);
  }

  std::vector<TimePoint> begins, horizons, ends;
};

TEST(ParallelDriver, WindowsCoverTheIntervalExactly) {
  std::vector<RecordingTask> tasks(3);
  std::vector<PartitionTask*> ptrs;
  for (auto& t : tasks) ptrs.push_back(&t);
  ParallelDriver driver(ptrs, millis(10));
  const DriverStats stats =
      driver.run(TimePoint::zero(), TimePoint::zero() + millis(35), 1);
  EXPECT_EQ(stats.windows, 4u);  // 10, 20, 30, 35 (last clamps)
  EXPECT_EQ(stats.threads, 1u);
  EXPECT_EQ(stats.barriers, 0u);  // inline path has no barrier episodes
  for (const auto& t : tasks) {
    EXPECT_EQ(t.horizons, (std::vector<TimePoint>{
                              TimePoint::zero() + millis(10), TimePoint::zero() + millis(20),
                              TimePoint::zero() + millis(30), TimePoint::zero() + millis(35)}));
    EXPECT_EQ(t.begins.front(), TimePoint::zero());
    EXPECT_EQ(t.ends.back(), TimePoint::zero() + millis(35));
  }
}

TEST(ParallelDriver, ThreadedRunMatchesInlinePerTaskSchedule) {
  std::vector<RecordingTask> inline_tasks(5), threaded_tasks(5);
  std::vector<PartitionTask*> inline_ptrs, threaded_ptrs;
  for (auto& t : inline_tasks) inline_ptrs.push_back(&t);
  for (auto& t : threaded_tasks) threaded_ptrs.push_back(&t);

  ParallelDriver inline_driver(inline_ptrs, millis(7));
  ParallelDriver threaded_driver(threaded_ptrs, millis(7));
  const TimePoint end = TimePoint::zero() + millis(100);
  const DriverStats s1 = inline_driver.run(TimePoint::zero(), end, 1);
  const DriverStats s3 = threaded_driver.run(TimePoint::zero(), end, 3);

  EXPECT_EQ(s1.windows, s3.windows);
  EXPECT_EQ(s3.threads, 3u);
  EXPECT_EQ(s3.barriers, 2 * s3.windows);  // drain+advance | publish phases
  for (std::size_t i = 0; i < inline_tasks.size(); ++i) {
    EXPECT_EQ(threaded_tasks[i].begins, inline_tasks[i].begins);
    EXPECT_EQ(threaded_tasks[i].horizons, inline_tasks[i].horizons);
    EXPECT_EQ(threaded_tasks[i].ends, inline_tasks[i].ends);
  }
}

/// Detects same-window publish/drain overlap.  With the two-phase window
/// the counts below are EXACT at every thread count: when any task begins
/// window k, every task has ended windows 0..k-1 and none has ended k;
/// when any task ends window k, every task has advanced through k and
/// none has advanced past it.  The single-barrier (and old sequential
/// begin/advance/end-per-task) schedule violates both.
class PhaseCheckTask final : public PartitionTask {
 public:
  PhaseCheckTask(std::atomic<std::uint64_t>& advances, std::atomic<std::uint64_t>& ends,
                 std::size_t ntasks)
      : advances_(advances), ends_(ends), ntasks_(ntasks) {}

  void begin_window(TimePoint /*start*/) override {
    EXPECT_EQ(ends_.load(), windows_done_ * ntasks_);
  }
  void advance_to(TimePoint /*horizon*/) override {
    advances_.fetch_add(1);
  }
  void end_window(TimePoint /*horizon*/) override {
    EXPECT_EQ(advances_.load(), (windows_done_ + 1) * ntasks_);
    ++windows_done_;
    ends_.fetch_add(1);
  }

 private:
  std::atomic<std::uint64_t>& advances_;
  std::atomic<std::uint64_t>& ends_;
  const std::size_t ntasks_;
  std::uint64_t windows_done_ = 0;
};

TEST(ParallelDriver, WindowPhasesAreBarrierSeparated) {
  constexpr std::size_t kTasks = 6;
  constexpr std::uint64_t kWindows = 20;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{3}}) {
    std::atomic<std::uint64_t> advances{0};
    std::atomic<std::uint64_t> ends{0};
    std::vector<std::unique_ptr<PhaseCheckTask>> tasks;
    std::vector<PartitionTask*> ptrs;
    for (std::size_t i = 0; i < kTasks; ++i) {
      tasks.push_back(std::make_unique<PhaseCheckTask>(advances, ends, kTasks));
      ptrs.push_back(tasks.back().get());
    }
    ParallelDriver driver(std::move(ptrs), millis(5));
    const DriverStats stats =
        driver.run(TimePoint::zero(),
                   TimePoint::zero() + millis(5) * static_cast<std::int64_t>(kWindows), threads);
    EXPECT_EQ(stats.windows, kWindows);
    EXPECT_EQ(advances.load(), kWindows * kTasks);
    EXPECT_EQ(ends.load(), kWindows * kTasks);
  }
}

TEST(ParallelDriver, ClampsThreadsToPartitionCount) {
  std::vector<RecordingTask> tasks(2);
  std::vector<PartitionTask*> ptrs;
  for (auto& t : tasks) ptrs.push_back(&t);
  ParallelDriver driver(ptrs, millis(5));
  const DriverStats stats =
      driver.run(TimePoint::zero(), TimePoint::zero() + millis(20), 16);
  EXPECT_EQ(stats.threads, 2u);
  EXPECT_EQ(stats.windows, 4u);
}

TEST(ParallelDriver, EmptyIntervalRunsZeroWindows) {
  RecordingTask task;
  ParallelDriver driver({&task}, millis(5));
  const DriverStats stats = driver.run(TimePoint::zero(), TimePoint::zero(), 4);
  EXPECT_EQ(stats.windows, 0u);
  EXPECT_TRUE(task.begins.empty());
}

// ---- PartitionedCluster -------------------------------------------------

core::ObjectSpec light_spec(core::ObjectId id) {
  core::ObjectSpec spec;
  spec.id = id;
  spec.client_period = millis(50);
  spec.client_exec = micros(1);
  spec.update_exec = micros(1);
  spec.size_bytes = 64;
  // Tight backup window => ~50ms update period: the frontier plane stays
  // busy during a 2s run instead of publishing once at registration.
  spec.delta_primary = millis(400);
  spec.delta_backup = spec.delta_primary + millis(100);
  return spec;
}

PartitionedClusterParams cluster_params(std::uint32_t groups) {
  PartitionedClusterParams p;
  p.seed = 1234;
  p.group_count = groups;
  return p;
}

/// Build, load and run a cluster; return its per-group digests.
std::vector<std::uint64_t> run_cluster(std::uint32_t groups, std::size_t threads,
                                       Duration duration) {
  PartitionedCluster cluster(cluster_params(groups));
  for (std::uint32_t g = 0; g < groups; ++g) {
    cluster.service(g).simulator().trace().enable();
  }
  cluster.start();
  core::ObjectId next = 1;
  for (std::uint32_t g = 0; g < groups; ++g) {
    for (int i = 0; i < 3; ++i) {
      EXPECT_TRUE(cluster.register_object_in(g, light_spec(next++)).ok());
    }
  }
  cluster.run_for(duration, threads);
  cluster.finish();
  return cluster.digests();
}

TEST(PartitionedCluster, DigestsAreThreadCountInvariant) {
  const Duration d = seconds(2);
  const std::vector<std::uint64_t> one = run_cluster(4, 1, d);
  const std::vector<std::uint64_t> two = run_cluster(4, 2, d);
  const std::vector<std::uint64_t> four = run_cluster(4, 4, d);
  EXPECT_EQ(two, one);
  EXPECT_EQ(four, one);
  // And distinct groups run distinct seeded streams.
  EXPECT_NE(one[0], one[1]);
}

TEST(PartitionedCluster, FrontiersCrossAtWindowBarriers) {
  PartitionedCluster cluster(cluster_params(3));
  cluster.start();
  core::ObjectId next = 1;
  for (std::uint32_t g = 0; g < 3; ++g) {
    ASSERT_TRUE(cluster.register_object_in(g, light_spec(next++)).ok());
  }
  cluster.run_for(seconds(2), 3);
  cluster.finish();
  EXPECT_GT(cluster.frontier_records_published(), 0u);
  EXPECT_GT(cluster.frontier_records_ingested(), 0u);
  // Each publish fans out to 2 peers; the final window's records may
  // still sit in the queues, never drained.
  EXPECT_LE(cluster.frontier_records_ingested(), cluster.frontier_records_published() * 2);
  // The receiving primaries merged the peers' frontiers.
  std::size_t groups_with_peer_view = 0;
  for (std::uint32_t g = 0; g < 3; ++g) {
    if (!cluster.service(g).acting_primary().peer_frontiers().empty()) {
      ++groups_with_peer_view;
    }
  }
  EXPECT_EQ(groups_with_peer_view, 3u);
}

TEST(PartitionedCluster, PerWindowIngestCountsAreThreadCountInvariant) {
  // Frontier ingestion schedules no events, so the trace digests cannot
  // see a delivery skew: drive two identical clusters WINDOW BY WINDOW
  // and require the cumulative per-partition ingest/publish counts to
  // agree after every window, not just at the end of the run.  With the
  // two-phase window this equality is exact; a same-window drain (the
  // old single-barrier schedule, or the old sequential per-task order)
  // shifts ingests a window early on some partitions.
  constexpr std::uint32_t kGroups = 3;
  auto build = [] {
    auto cluster = std::make_unique<PartitionedCluster>(cluster_params(kGroups));
    cluster->start();
    core::ObjectId next = 1;
    for (std::uint32_t g = 0; g < kGroups; ++g) {
      for (int i = 0; i < 2; ++i) {
        EXPECT_TRUE(cluster->register_object_in(g, light_spec(next++)).ok());
      }
    }
    return cluster;
  };
  auto seq = build();
  auto par = build();
  const Duration w = seq->window();
  ASSERT_EQ(par->window(), w);
  std::uint64_t total_ingested = 0;
  for (int k = 0; k < 120; ++k) {
    seq->run_for(w, 1);
    par->run_for(w, 3);
    for (std::uint32_t g = 0; g < kGroups; ++g) {
      ASSERT_EQ(par->partition(g).records_ingested(), seq->partition(g).records_ingested())
          << "window " << k << " group " << g;
      ASSERT_EQ(par->partition(g).records_published(), seq->partition(g).records_published())
          << "window " << k << " group " << g;
    }
    total_ingested = seq->frontier_records_ingested();
  }
  EXPECT_GT(total_ingested, 0u);  // the frontier plane actually ran
  seq->finish();
  par->finish();
}

TEST(PartitionedCluster, CrossGroupConstraintDecomposesWithPreflight) {
  PartitionedCluster cluster(cluster_params(2));
  cluster.start();
  ASSERT_TRUE(cluster.register_object_in(0, light_spec(1)).ok());
  ASSERT_TRUE(cluster.register_object_in(1, light_spec(2)).ok());

  core::InterObjectConstraint ok_c{1, 2, millis(300)};
  EXPECT_TRUE(cluster.add_constraint(ok_c).ok());
  ASSERT_EQ(cluster.cross_constraints().size(), 1u);

  // An unsatisfiable delta must be rejected by the pre-flight with no
  // residue on either side.
  core::InterObjectConstraint bad{1, 2, micros(1)};
  EXPECT_FALSE(cluster.add_constraint(bad).ok());
  EXPECT_EQ(cluster.cross_constraints().size(), 1u);

  cluster.run_for(seconds(2), 2);
  cluster.finish();
  // Both sides replicated long enough: the frontier check passes at end.
  EXPECT_TRUE(cluster.cross_constraint_satisfied(ok_c, cluster.now()));
}

TEST(PartitionedCluster, WindowDefaultsToLinkDelayBound) {
  PartitionedCluster cluster(cluster_params(2));
  EXPECT_EQ(cluster.window(), cluster.service(0).link_delay_bound());
  EXPECT_GT(cluster.window(), Duration::zero());
}

}  // namespace
}  // namespace rtpb::psim
