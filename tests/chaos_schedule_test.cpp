// Schedule generation: pure function of (seed, options), quantised so the
// rendered reproducer is exact, sorted, bounded, and with fault epochs
// that actually cover the faults they excuse.
#include <gtest/gtest.h>

#include <cmath>

#include "chaos/schedule.hpp"

namespace rtpb::chaos {
namespace {

TEST(ChaosSchedule, GenerationIsPure) {
  const ChaosOptions opts;
  const ChaosSchedule a = generate_schedule(5, opts);
  const ChaosSchedule b = generate_schedule(5, opts);
  ASSERT_EQ(a.events.size(), b.events.size());
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].kind, b.events[i].kind);
    EXPECT_EQ(a.events[i].at, b.events[i].at);
    EXPECT_EQ(a.events[i].until, b.events[i].until);
    EXPECT_DOUBLE_EQ(a.events[i].probability, b.events[i].probability);
    EXPECT_EQ(a.events[i].extra, b.events[i].extra);
    EXPECT_EQ(a.events[i].burst_length, b.events[i].burst_length);
  }
  EXPECT_EQ(a.service_seed, b.service_seed);
}

TEST(ChaosSchedule, EventsAreSortedAndQuantised) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const ChaosSchedule s = generate_schedule(seed, ChaosOptions{});
    EXPECT_FALSE(s.events.empty());
    for (std::size_t i = 1; i < s.events.size(); ++i) {
      EXPECT_LE(s.events[i - 1].at, s.events[i].at) << "seed " << seed;
    }
    for (const ChaosEvent& e : s.events) {
      // 1 ms time grid and 0.01 probability grid: what the reproducer
      // prints with %.2f / at_ms() is exactly what ran.
      EXPECT_EQ(e.at.nanos() % 1'000'000, 0) << "seed " << seed;
      EXPECT_EQ(e.until.nanos() % 1'000'000, 0) << "seed " << seed;
      const double cents = e.probability * 100.0;
      EXPECT_NEAR(cents, std::round(cents), 1e-9) << "seed " << seed;
      EXPECT_LE(e.until.nanos(), ChaosOptions{}.duration.nanos());
    }
  }
}

TEST(ChaosSchedule, LinkLossProbabilitiesRespectDetectorSafetyCap) {
  // Genuine link faults are capped so they cannot plausibly starve the
  // hardened failure detector into a false (split-brain) failover.
  // Update-stream loss storms are exempt: heartbeats still flow there.
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    const ChaosSchedule s = generate_schedule(seed, ChaosOptions{});
    for (const ChaosEvent& e : s.events) {
      if (e.kind == FaultKind::kLinkDegradation) {
        EXPECT_LE(e.probability, 0.35) << "seed " << seed;
      }
      if (e.kind == FaultKind::kBurstLoss) {
        EXPECT_LE(e.probability, 0.04) << "seed " << seed;
        EXPECT_LE(e.burst_length, 6u) << "seed " << seed;
      }
    }
  }
}

TEST(ChaosSchedule, DisablingFamiliesRemovesTheirEvents) {
  ChaosOptions opts;
  opts.enable_loss_storms = false;
  opts.enable_link_faults = false;
  opts.enable_crashes = false;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    EXPECT_TRUE(generate_schedule(seed, opts).events.empty()) << "seed " << seed;
  }
}

TEST(ChaosSchedule, EpochsCoverEveryFaultInterval) {
  const ChaosOptions opts;
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const ChaosSchedule s = generate_schedule(seed, opts);
    const std::vector<FaultEpoch> epochs = declared_epochs(s, opts);
    for (const ChaosEvent& e : s.events) {
      bool covered = false;
      for (const FaultEpoch& ep : epochs) {
        if (ep.from <= e.at && e.until <= ep.until) covered = true;
      }
      EXPECT_TRUE(covered) << "seed " << seed << ": event at " << e.at.to_string()
                           << " not covered by any declared epoch";
    }
  }
}

TEST(ChaosSchedule, CrashEpochExtendsThroughRecruitmentPlusGrace) {
  ChaosOptions opts;
  opts.crash_probability = 1.0;
  // Find a seed whose schedule crashes, then check its epoch shape.
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const ChaosSchedule s = generate_schedule(seed, opts);
    const ChaosEvent* crash = nullptr;
    const ChaosEvent* standby = nullptr;
    for (const ChaosEvent& e : s.events) {
      if (e.kind == FaultKind::kCrashPrimary || e.kind == FaultKind::kCrashBackup)
        crash = &e;
      if (e.kind == FaultKind::kAddStandby) standby = &e;
    }
    ASSERT_NE(crash, nullptr) << "seed " << seed;
    ASSERT_NE(standby, nullptr) << "seed " << seed;
    bool found = false;
    for (const FaultEpoch& ep : declared_epochs(s, opts)) {
      if (ep.cause == crash->kind) {
        found = true;
        EXPECT_EQ(ep.from, crash->at);
        EXPECT_EQ(ep.until, standby->at + opts.failover_grace);
      }
    }
    EXPECT_TRUE(found);
    return;  // one crashing seed is enough
  }
}

TEST(ChaosSchedule, WorkloadIsPureAndPlausible) {
  const ChaosOptions opts;
  const Workload a = generate_workload(13, opts);
  const Workload b = generate_workload(13, opts);
  ASSERT_EQ(a.objects.size(), opts.objects);
  ASSERT_EQ(a.objects.size(), b.objects.size());
  for (std::size_t i = 0; i < a.objects.size(); ++i) {
    EXPECT_EQ(a.objects[i].id, b.objects[i].id);
    EXPECT_EQ(a.objects[i].client_period, b.objects[i].client_period);
    EXPECT_EQ(a.objects[i].size_bytes, b.objects[i].size_bytes);
    // The window formula needs δ_B − δ_P > ℓ and p ≤ δ_P to admit.
    EXPECT_GT(a.objects[i].delta_backup, a.objects[i].delta_primary);
    EXPECT_LE(a.objects[i].client_period, a.objects[i].delta_primary);
  }
}

TEST(ChaosSchedule, ReproducerContainsEveryScheduledAction) {
  ChaosOptions opts;
  opts.crash_probability = 1.0;
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const ChaosSchedule s = generate_schedule(seed, opts);
    const std::string repro = render_reproducer(s, opts);
    std::size_t plan_calls = 0;
    for (std::size_t pos = repro.find("plan."); pos != std::string::npos;
         pos = repro.find("plan.", pos + 1)) {
      ++plan_calls;
    }
    // One call per event plus the trailing plan.arm().
    EXPECT_EQ(plan_calls, s.events.size() + 1) << "seed " << seed << "\n" << repro;
    EXPECT_NE(repro.find("service.run_for"), std::string::npos);
  }
}

}  // namespace
}  // namespace rtpb::chaos
