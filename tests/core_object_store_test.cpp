#include "core/object_store.hpp"

#include <gtest/gtest.h>

namespace rtpb::core {
namespace {

ObjectSpec spec(ObjectId id) {
  ObjectSpec s;
  s.id = id;
  s.name = "obj" + std::to_string(id);
  s.client_period = millis(10);
  s.client_exec = millis(1);
  s.update_exec = millis(1);
  s.delta_primary = millis(20);
  s.delta_backup = millis(60);
  return s;
}

TEST(ObjectStore, InsertAndLookup) {
  ObjectStore store;
  EXPECT_TRUE(store.insert(spec(1)));
  EXPECT_TRUE(store.contains(1));
  EXPECT_FALSE(store.contains(2));
  EXPECT_EQ(store.size(), 1u);
  EXPECT_EQ(store.get(1).version, 0u);
}

TEST(ObjectStore, DuplicateInsertRejected) {
  ObjectStore store;
  EXPECT_TRUE(store.insert(spec(1)));
  EXPECT_FALSE(store.insert(spec(1)));
}

TEST(ObjectStore, WriteBumpsVersionAndTimestamps) {
  ObjectStore store;
  store.insert(spec(1));
  EXPECT_EQ(store.write(1, Bytes{1}, TimePoint{100}), 1u);
  EXPECT_EQ(store.write(1, Bytes{2}, TimePoint{200}), 2u);
  const ObjectState& s = store.get(1);
  EXPECT_EQ(s.version, 2u);
  EXPECT_EQ(s.timestamp, TimePoint{200});
  EXPECT_EQ(s.origin_timestamp, TimePoint{200});
  EXPECT_EQ(s.value, Bytes{2});
}

TEST(ObjectStore, ApplyAcceptsOnlyNewerVersions) {
  ObjectStore store;
  store.insert(spec(1));
  EXPECT_TRUE(store.apply(1, 3, TimePoint{30}, Bytes{3}, TimePoint{35}));
  EXPECT_FALSE(store.apply(1, 3, TimePoint{30}, Bytes{3}, TimePoint{40}));  // duplicate
  EXPECT_FALSE(store.apply(1, 2, TimePoint{20}, Bytes{2}, TimePoint{45}));  // stale
  EXPECT_TRUE(store.apply(1, 5, TimePoint{50}, Bytes{5}, TimePoint{55}));   // gap is fine
  const ObjectState& s = store.get(1);
  EXPECT_EQ(s.version, 5u);
  EXPECT_EQ(s.origin_timestamp, TimePoint{50});
  EXPECT_EQ(s.timestamp, TimePoint{55});  // local apply time
}

TEST(ObjectStore, EraseRemoves) {
  ObjectStore store;
  store.insert(spec(1));
  EXPECT_TRUE(store.erase(1));
  EXPECT_FALSE(store.erase(1));
  EXPECT_FALSE(store.contains(1));
}

TEST(ObjectStore, FindReturnsNulloptForMissing) {
  ObjectStore store;
  EXPECT_FALSE(store.find(9).has_value());
  store.insert(spec(9));
  EXPECT_TRUE(store.find(9).has_value());
}

TEST(ObjectStore, ForEachIteratesInIdOrder) {
  ObjectStore store;
  store.insert(spec(3));
  store.insert(spec(1));
  store.insert(spec(2));
  std::vector<ObjectId> seen;
  store.for_each([&](const ObjectState& s) { seen.push_back(s.spec.id); });
  EXPECT_EQ(seen, (std::vector<ObjectId>{1, 2, 3}));
  EXPECT_EQ(store.ids(), seen);
}

TEST(ObjectSpec, WindowIsDeltaDifference) {
  const ObjectSpec s = spec(1);
  EXPECT_EQ(s.window(), millis(40));
}

}  // namespace
}  // namespace rtpb::core
