#include <gtest/gtest.h>

#include "xkernel/graph.hpp"
#include "xkernel/message.hpp"
#include "xkernel/udplite.hpp"

namespace rtpb::xkernel {
namespace {

TEST(Message, PushPopRoundTrip) {
  Bytes payload{10, 20, 30};
  Message m(payload);
  Bytes hdr{1, 2};
  m.push(hdr);
  EXPECT_EQ(m.size(), 5u);
  auto popped = m.pop(2);
  EXPECT_EQ(Bytes(popped.begin(), popped.end()), hdr);
  EXPECT_EQ(m.to_bytes(), payload);
}

TEST(Message, NestedHeadersStripInReverseOrder) {
  Message m(Bytes{99});
  m.push(Bytes{3});      // inner
  m.push(Bytes{2});      // middle
  m.push(Bytes{1});      // outer
  EXPECT_EQ(m.pop(1)[0], 1);
  EXPECT_EQ(m.pop(1)[0], 2);
  EXPECT_EQ(m.pop(1)[0], 3);
  EXPECT_EQ(m.to_bytes(), Bytes{99});
}

TEST(Message, HeadroomGrowsWhenExceeded) {
  Message m(Bytes{7}, 2);  // tiny headroom
  Bytes big(100, 0xEE);
  m.push(big);             // forces reallocation
  EXPECT_EQ(m.size(), 101u);
  auto hdr = m.pop(100);
  EXPECT_EQ(Bytes(hdr.begin(), hdr.end()), big);
  EXPECT_EQ(m.to_bytes(), Bytes{7});
}

TEST(Message, FromWireHasNoHeadroomButPops) {
  Bytes wire{1, 2, 3, 4};
  Message m = Message::from_wire(wire);
  EXPECT_EQ(m.size(), 4u);
  (void)m.pop(2);
  EXPECT_EQ(m.to_bytes(), (Bytes{3, 4}));
}

// ---------------------------------------------------------------------------
// Shared-payload semantics: copies and from_shared views must share one
// underlying buffer (the encode-once fan-out contract).
// ---------------------------------------------------------------------------

TEST(Message, CopiesShareThePayloadBuffer) {
  auto body = std::make_shared<const Bytes>(Bytes(256, 0x5A));
  Message a = Message::from_shared(body, 0, body->size());
  Message b = a;
  Message c = a;
  // Original + view in a + b + c — and zero new payload allocations.
  EXPECT_EQ(body.use_count(), 4);
  EXPECT_EQ(b.to_bytes(), *body);
  EXPECT_EQ(c.to_bytes(), *body);
}

TEST(Message, PushOnCopyLeavesSiblingsUntouched) {
  Message original{Bytes{1, 2, 3, 4}};
  Message copy = original;
  copy.push(Bytes{0xAA, 0xBB});
  EXPECT_EQ(copy.size(), 6u);
  EXPECT_EQ(original.size(), 4u);
  EXPECT_EQ(original.to_bytes(), (Bytes{1, 2, 3, 4}));
  EXPECT_EQ(copy.to_bytes(), (Bytes{0xAA, 0xBB, 1, 2, 3, 4}));
}

TEST(Message, FromSharedViewsSliceWithoutCopying) {
  auto body = std::make_shared<const Bytes>(Bytes{0, 1, 2, 3, 4, 5, 6, 7, 8, 9});
  Message mid = Message::from_shared(body, 3, 4);
  EXPECT_EQ(mid.size(), 4u);
  EXPECT_EQ(mid.to_bytes(), (Bytes{3, 4, 5, 6}));
  // Pops advance the view in place; no reallocation of the shared buffer.
  (void)mid.pop(2);
  EXPECT_EQ(mid.to_bytes(), (Bytes{5, 6}));
  EXPECT_EQ(body.use_count(), 2);
}

TEST(Message, SharedContentsIsZeroCopyWithoutHeaders) {
  auto body = std::make_shared<const Bytes>(Bytes(64, 0x11));
  Message m = Message::from_shared(body, 8, 32);
  const Message::SharedView v = m.shared_contents();
  EXPECT_EQ(v.buf.get(), body.get());  // same buffer, not a copy
  EXPECT_EQ(v.offset, 8u);
  EXPECT_EQ(v.length, 32u);
}

TEST(Message, SharedContentsLinearisesWhenHeadersPresent) {
  Message m{Bytes{9, 9, 9}};
  m.push(Bytes{1, 2});
  const Message::SharedView v = m.shared_contents();
  ASSERT_NE(v.buf, nullptr);
  const auto s = v.span();
  EXPECT_EQ(Bytes(s.begin(), s.end()), (Bytes{1, 2, 9, 9, 9}));
  // After linearising, the message itself still pops correctly.
  EXPECT_EQ(m.pop(2).size(), 2u);
  EXPECT_EQ(m.to_bytes(), (Bytes{9, 9, 9}));
}

TEST(Message, PopStraddlingHeaderAndBody) {
  Message m{Bytes{5, 6, 7}};
  m.push(Bytes{1, 2});
  const auto popped = m.pop(4);  // 2 header + 2 body bytes
  EXPECT_EQ(Bytes(popped.begin(), popped.end()), (Bytes{1, 2, 5, 6}));
  EXPECT_EQ(m.to_bytes(), Bytes{7});
}

TEST(Message, HeaderAndBodySegmentsGatherToContents) {
  Message m{Bytes{3, 4}};
  m.push(Bytes{1, 2});
  const auto h = m.header_segment();
  const auto b = m.body_segment();
  EXPECT_EQ(Bytes(h.begin(), h.end()), (Bytes{1, 2}));
  EXPECT_EQ(Bytes(b.begin(), b.end()), (Bytes{3, 4}));
}

TEST(UdpChecksum, DetectsCorruption) {
  Bytes data{1, 2, 3, 4, 5};
  const auto good = UdpLite::checksum(data);
  data[2] ^= 0xFF;
  EXPECT_NE(UdpLite::checksum(data), good);
}

TEST(UdpChecksum, OddLengthHandled) {
  Bytes data{1, 2, 3};
  EXPECT_EQ(UdpLite::checksum(data), UdpLite::checksum(data));
}

TEST(UdpChecksum, TwoSegmentGatherMatchesFlat) {
  // The push path checksums (header, body) without linearising; the sum
  // must equal the flat checksum for every split point, including splits
  // that break a 16-bit word across the segments.
  Bytes data(37, 0);
  for (std::size_t i = 0; i < data.size(); ++i) data[i] = static_cast<std::uint8_t>(i * 13 + 5);
  const auto flat = UdpLite::checksum(data);
  const std::span<const std::uint8_t> all(data);
  for (std::size_t split = 0; split <= data.size(); ++split) {
    EXPECT_EQ(UdpLite::checksum(all.subspan(0, split), all.subspan(split)), flat)
        << "split=" << split;
  }
}

TEST(GraphSpec, Parsing) {
  const auto g = parse_graph_spec(" simeth ; iplite;udplite ");
  ASSERT_EQ(g.size(), 3u);
  EXPECT_EQ(g[0], "simeth");
  EXPECT_EQ(g[1], "iplite");
  EXPECT_EQ(g[2], "udplite");
}

struct StackPair {
  sim::Simulator sim{7};
  net::Network network{sim};
  HostStack host_a{network};
  HostStack host_b{network};

  StackPair() { network.connect(host_a.node(), host_b.node(), net::LinkParams{}); }
};

TEST(HostStack, DatagramEndToEnd) {
  StackPair env;
  Bytes received;
  net::Endpoint from;
  env.host_b.udp().bind(1000, [&](Message& msg, const MsgAttrs& attrs) {
    received = msg.to_bytes();
    from = attrs.src;
  });
  Bytes payload{0xDE, 0xAD, 0xBE, 0xEF};
  env.host_a.send_datagram(2000, {env.host_b.node(), 1000}, payload);
  env.sim.run();
  EXPECT_EQ(received, payload);
  EXPECT_EQ(from.node, env.host_a.node());
  EXPECT_EQ(from.port, 2000);
}

TEST(HostStack, UnboundPortCountsNoListener) {
  StackPair env;
  env.host_a.send_datagram(2000, {env.host_b.node(), 4242}, Bytes{1});
  env.sim.run();
  EXPECT_EQ(env.host_b.udp().no_listener(), 1u);
}

TEST(HostStack, ReplyPath) {
  StackPair env;
  int b_got = 0, a_got = 0;
  env.host_b.udp().bind(10, [&](Message&, const MsgAttrs& attrs) {
    ++b_got;
    env.host_b.send_datagram(10, attrs.src, Bytes{2});
  });
  env.host_a.udp().bind(20, [&](Message&, const MsgAttrs&) { ++a_got; });
  env.host_a.send_datagram(20, {env.host_b.node(), 10}, Bytes{1});
  env.sim.run();
  EXPECT_EQ(b_got, 1);
  EXPECT_EQ(a_got, 1);
}

TEST(HostStack, EmptyPayloadSurvivesStack) {
  StackPair env;
  bool got = false;
  std::size_t got_size = 99;
  env.host_b.udp().bind(5, [&](Message& m, const MsgAttrs&) {
    got = true;
    got_size = m.size();
  });
  env.host_a.send_datagram(5, {env.host_b.node(), 5}, Bytes{});
  env.sim.run();
  EXPECT_TRUE(got);
  EXPECT_EQ(got_size, 0u);
}

TEST(HostStack, BindRejectsDuplicatePort) {
  StackPair env;
  env.host_a.udp().bind(9, [](Message&, const MsgAttrs&) {});
  EXPECT_DEATH(env.host_a.udp().bind(9, [](Message&, const MsgAttrs&) {}), "precondition");
}

TEST(HostStack, UnbindStopsDelivery) {
  StackPair env;
  int got = 0;
  env.host_b.udp().bind(7, [&](Message&, const MsgAttrs&) { ++got; });
  env.host_a.send_datagram(7, {env.host_b.node(), 7}, Bytes{1});
  env.sim.run();
  EXPECT_EQ(got, 1);
  env.host_b.udp().unbind(7);
  env.host_a.send_datagram(7, {env.host_b.node(), 7}, Bytes{1});
  env.sim.run();
  EXPECT_EQ(got, 1);
  EXPECT_EQ(env.host_b.udp().no_listener(), 1u);
}

}  // namespace
}  // namespace rtpb::xkernel
