// Logger: level filtering, pluggable sink capture, virtual-clock
// timestamps, and log_format's dynamic growth past the old fixed-buffer
// truncation point.
#include "util/log.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace rtpb {
namespace {

/// Captures records through a sink and restores the logger's global state
/// (level, sink, clock) on teardown — the logger is a process singleton.
class LoggerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    saved_level_ = Logger::instance().level();
    Logger::instance().set_sink([this](const LogRecord& r) { records_.push_back(r); });
  }
  void TearDown() override {
    Logger::instance().clear_sink();
    Logger::instance().clear_clock();
    Logger::instance().set_level(saved_level_);
  }

  std::vector<LogRecord> records_;
  LogLevel saved_level_ = LogLevel::kWarn;
};

TEST_F(LoggerTest, SinkReceivesOnlyRecordsPassingTheLevelFilter) {
  Logger::instance().set_level(LogLevel::kWarn);
  RTPB_DEBUG("comp", "below threshold %d", 1);
  RTPB_INFO("comp", "below threshold %d", 2);
  RTPB_WARN("comp", "warn %d", 3);
  RTPB_ERROR("comp", "error %d", 4);

  ASSERT_EQ(records_.size(), 2u);
  EXPECT_EQ(records_[0].level, LogLevel::kWarn);
  EXPECT_EQ(records_[0].message, "warn 3");
  EXPECT_EQ(records_[1].level, LogLevel::kError);
  EXPECT_EQ(records_[1].message, "error 4");
  EXPECT_STREQ(records_[0].component, "comp");
}

TEST_F(LoggerTest, LoweringTheLevelAdmitsFinerRecords) {
  Logger::instance().set_level(LogLevel::kTrace);
  RTPB_TRACE("t", "visible");
  ASSERT_EQ(records_.size(), 1u);
  EXPECT_EQ(records_[0].level, LogLevel::kTrace);

  Logger::instance().set_level(LogLevel::kOff);
  RTPB_ERROR("t", "suppressed");
  EXPECT_EQ(records_.size(), 1u);
}

TEST_F(LoggerTest, VirtualClockStampsRecords) {
  Logger::instance().set_level(LogLevel::kInfo);
  RTPB_INFO("t", "before clock");

  TimePoint now = TimePoint{} + millis(1234);
  Logger::instance().set_clock([&now] { return now; });
  RTPB_INFO("t", "with clock");
  now = now + millis(1);
  RTPB_INFO("t", "later");

  ASSERT_EQ(records_.size(), 3u);
  EXPECT_FALSE(records_[0].has_time);
  EXPECT_TRUE(records_[1].has_time);
  EXPECT_EQ(records_[1].time.millis(), 1234.0);
  EXPECT_EQ(records_[2].time.millis(), 1235.0);
}

TEST_F(LoggerTest, LogFormatGrowsPastTheStackBuffer) {
  // The old implementation silently truncated at 512 bytes.
  const std::string long_arg(2000, 'x');
  Logger::instance().set_level(LogLevel::kInfo);
  RTPB_INFO("t", "head %s tail", long_arg.c_str());

  ASSERT_EQ(records_.size(), 1u);
  EXPECT_EQ(records_[0].message.size(), 2000u + 10u);
  EXPECT_EQ(records_[0].message.substr(0, 7), "head xx");
  EXPECT_EQ(records_[0].message.substr(records_[0].message.size() - 5), " tail");
}

TEST(LogFormat, ExactBufferBoundary) {
  // Lengths straddling the 512-byte internal buffer must all come through
  // intact (the boundary is where one-pass snprintf would truncate).
  for (const std::size_t len : {510u, 511u, 512u, 513u, 1024u}) {
    const std::string arg(len, 'y');
    EXPECT_EQ(detail::log_format("%s", arg.c_str()).size(), len);
  }
  EXPECT_EQ(detail::log_format("no args"), "no args");
  EXPECT_EQ(detail::log_format("%d-%s", 7, "z"), "7-z");
}

}  // namespace
}  // namespace rtpb
