// Edge cases and hostile inputs at the ReplicaServer level.
#include "core/rtpb.hpp"

#include <gtest/gtest.h>

namespace rtpb::core {
namespace {

ObjectSpec make_spec(ObjectId id) {
  ObjectSpec s;
  s.id = id;
  s.name = "obj" + std::to_string(id);
  s.client_period = millis(10);
  s.client_exec = micros(200);
  s.update_exec = micros(200);
  s.delta_primary = millis(20);
  s.delta_backup = millis(100);
  return s;
}

ServiceParams make_params(std::uint64_t seed = 5) {
  ServiceParams p;
  p.seed = seed;
  p.link.propagation = millis(1);
  return p;
}

TEST(ServerEdge, GarbageDatagramToRtpbPortIsDropped) {
  RtpbService service(make_params());
  service.start();
  ASSERT_TRUE(service.register_object(make_spec(1)).ok());
  // Attach a hostile node and spray garbage at the backup's RTPB port.
  net::NodeId attacker = service.network().add_node([](const net::Packet&) {});
  service.network().connect(attacker, service.backup().node(), net::LinkParams{});
  xkernel::SimEth* eth = nullptr;  // craft raw frames by hand instead
  (void)eth;
  for (int i = 0; i < 50; ++i) {
    // Raw bytes that are not even a valid IPLITE header.
    service.network().send(attacker, service.backup().node(), Bytes(static_cast<std::size_t>(i % 7), 0xEE));
  }
  service.run_for(seconds(1));
  // Service is unharmed and still replicating.
  EXPECT_GT(service.backup().read(1)->version, 0u);
}

TEST(ServerEdge, ReadUnknownObjectReturnsNullopt) {
  RtpbService service(make_params());
  service.start();
  EXPECT_FALSE(service.primary().read(42).has_value());
}

TEST(ServerEdge, CrashIsIdempotent) {
  RtpbService service(make_params());
  service.start();
  ASSERT_TRUE(service.register_object(make_spec(1)).ok());
  service.run_for(millis(500));
  service.crash_primary();
  service.crash_primary();  // second call is a no-op
  EXPECT_TRUE(service.primary().crashed());
  service.run_for(seconds(1));
}

TEST(ServerEdge, RegistrationOnCrashedPrimaryStillRejectedSafely) {
  RtpbService service(make_params());
  service.start();
  service.run_for(millis(100));
  service.crash_primary();
  service.run_for(seconds(1));
  // The backup has been promoted; registering through it works.
  ASSERT_EQ(service.backup().role(), Role::kPrimary);
  EXPECT_TRUE(service.backup().register_object(make_spec(7)).ok());
}

TEST(ServerEdge, ConstraintsSurviveFailover) {
  RtpbService service(make_params());
  service.start();
  ASSERT_TRUE(service.register_object(make_spec(1)).ok());
  ASSERT_TRUE(service.register_object(make_spec(2)).ok());
  ASSERT_TRUE(service.add_constraint({1, 2, millis(30)}).ok());
  service.run_for(seconds(1));
  service.crash_primary();
  service.run_for(seconds(1));
  ASSERT_EQ(service.backup().role(), Role::kPrimary);
  // The replicated constraint still tightens periods on the new primary.
  EXPECT_LE(service.backup().admission().update_period(1), millis(30));
  EXPECT_EQ(service.backup().admission().constraints().size(), 1u);
}

TEST(ServerEdge, StaleUpdatesCounted) {
  // With genuine link reordering absent, stale updates arise from
  // retransmissions racing the periodic stream under loss.
  ServiceParams params = make_params(11);
  params.config.update_loss_probability = 0.5;
  RtpbService service(params);
  service.start();
  ASSERT_TRUE(service.register_object(make_spec(1)).ok());
  service.run_for(seconds(10));
  // At 50% loss with NACK retransmissions some duplicates must arrive.
  EXPECT_GT(service.backup().stale_updates() + service.backup().updates_applied(), 0u);
}

TEST(ServerEdge, CompressedModeSendsMoreOftenThanNormal) {
  auto updates_for = [](UpdateScheduling mode) {
    ServiceParams params = make_params(13);
    params.config.update_scheduling = mode;
    params.config.compressed_target_utilization = 0.5;
    RtpbService service(params);
    service.start();
    ObjectSpec s = make_spec(1);
    s.update_exec = millis(1);
    EXPECT_TRUE(service.register_object(s).ok());
    service.run_for(seconds(5));
    return service.primary().updates_sent();
  };
  EXPECT_GT(updates_for(UpdateScheduling::kCompressed),
            2 * updates_for(UpdateScheduling::kNormal));
}

TEST(ServerEdge, CoupledModeSendsPerWrite) {
  ServiceParams params = make_params(17);
  params.config.update_scheduling = UpdateScheduling::kCoupled;
  RtpbService service(params);
  service.start();
  ASSERT_TRUE(service.register_object(make_spec(1)).ok());
  service.run_for(seconds(2));
  const auto writes = service.client().writes_issued();
  const auto updates = service.primary().updates_sent();
  // One transmission per write (within the tail of in-flight jobs).
  EXPECT_NEAR(static_cast<double>(updates), static_cast<double>(writes),
              static_cast<double>(writes) * 0.05 + 3.0);
  EXPECT_GT(service.backup().updates_applied(), 0u);
}

TEST(ServerEdge, FragmentationStatsExposed) {
  ServiceParams params = make_params(19);
  RtpbService service(params);
  service.start();
  ObjectSpec big = make_spec(1);
  big.size_bytes = 4000;  // > MTU: needs 3 fragments
  ASSERT_TRUE(service.register_object(big).ok());
  service.run_for(seconds(2));
  ASSERT_NE(service.primary().frag(), nullptr);
  EXPECT_GT(service.primary().frag()->fragments_sent(),
            service.primary().frag()->messages_sent());
  EXPECT_GT(service.backup().read(1)->version, 0u);
}

TEST(ServerEdge, DisabledFragmentationStillWorksForSmallObjects) {
  ServiceParams params = make_params(23);
  params.config.enable_fragmentation = false;
  RtpbService service(params);
  service.start();
  ASSERT_TRUE(service.register_object(make_spec(1)).ok());
  service.run_for(seconds(1));
  EXPECT_EQ(service.primary().frag(), nullptr);
  EXPECT_GT(service.backup().read(1)->version, 0u);
}

TEST(ServerEdge, UpdateLossProbabilitySetterBounds) {
  RtpbService service(make_params());
  service.start();
  service.primary().set_update_loss_probability(0.0);
  service.primary().set_update_loss_probability(1.0);
  EXPECT_DEATH(service.primary().set_update_loss_probability(1.5), "precondition");
}

}  // namespace
}  // namespace rtpb::core
