// Concurrency regression for the thread-safe telemetry core (run under
// TSan in CI): N writer threads hammer counters, gauges and histograms —
// including find-or-create races on the registry — while a reader thread
// repeatedly exports to_json() snapshots.  The final counts must be exact
// (no lost increments) and TSan must see no data races.
//
// The span/event side of the Hub is intentionally NOT exercised across
// threads: per the header's thread-safety contract it is single-threaded
// (fed by the deterministic simulator loop only).
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "telemetry/telemetry.hpp"

namespace rtpb::telemetry {
namespace {

TEST(TelemetryConcurrency, CountersExactUnderConcurrentWritersAndExport) {
  Hub hub;
  hub.enable();
  Registry& reg = hub.registry();

  constexpr int kWriters = 8;
  constexpr int kIterations = 20000;

  // Pre-create one shared instrument to race writers on the SAME atomic;
  // per-thread instruments race only the registry's find-or-create path.
  Counter& shared = reg.counter("conc.shared");

  std::atomic<bool> stop{false};
  std::thread exporter([&] {
    std::string last;
    while (!stop.load(std::memory_order_acquire)) {
      last = reg.to_json();  // must be a coherent snapshot, not torn state
    }
    // Dots nest in the JSON: "conc.shared" renders as {"conc":{"shared":..}}.
    EXPECT_NE(last.find("\"shared\""), std::string::npos);
  });

  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int t = 0; t < kWriters; ++t) {
    writers.emplace_back([&, t] {
      // Find-or-create from every thread: same name → same instrument.
      Counter& mine = reg.counter("conc.writer" + std::to_string(t));
      Gauge& gauge = reg.gauge("conc.gauge" + std::to_string(t % 2));
      LatencyHistogram& hist = reg.histogram("conc.hist");
      for (int i = 0; i < kIterations; ++i) {
        shared.add();
        mine.add(2);
        gauge.set(static_cast<double>(i));
        if (i % 16 == 0) hist.record_ms(static_cast<double>(i % 100));
      }
    });
  }
  for (std::thread& w : writers) w.join();
  stop.store(true, std::memory_order_release);
  exporter.join();

  EXPECT_EQ(shared.value(), static_cast<std::uint64_t>(kWriters) * kIterations);
  for (int t = 0; t < kWriters; ++t) {
    EXPECT_EQ(reg.counter("conc.writer" + std::to_string(t)).value(),
              2u * kIterations);
  }
  EXPECT_EQ(reg.histogram("conc.hist").snapshot().count(),
            static_cast<std::size_t>(kWriters) * (kIterations / 16 + (kIterations % 16 ? 1 : 0)));
}

TEST(TelemetryConcurrency, HistogramSnapshotIsConsistentWhileWritersAppend) {
  Hub hub;
  hub.enable();
  LatencyHistogram& hist = hub.registry().histogram("conc.snap");

  constexpr int kWriters = 4;
  constexpr int kIterations = 5000;
  std::atomic<bool> stop{false};

  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      const SampleSet s = hist.snapshot();
      if (!s.empty()) {
        // A coherent copy: quantiles over it must be well-ordered.
        EXPECT_LE(s.quantile(0.5), s.quantile(0.99));
        EXPECT_LE(s.min(), s.max());
      }
    }
  });

  std::vector<std::thread> writers;
  for (int t = 0; t < kWriters; ++t) {
    writers.emplace_back([&] {
      for (int i = 0; i < kIterations; ++i) hist.record_ms(static_cast<double>(i));
    });
  }
  for (std::thread& w : writers) w.join();
  stop.store(true, std::memory_order_release);
  reader.join();

  EXPECT_EQ(hist.snapshot().count(), static_cast<std::size_t>(kWriters) * kIterations);
}

TEST(TelemetryConcurrency, DisabledInstrumentsStayZeroUnderWriters) {
  Hub hub;  // never enabled: every add must be the one-branch no-op
  Registry& reg = hub.registry();
  Counter& c = reg.counter("conc.disabled");

  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&] {
      for (int i = 0; i < 10000; ++i) c.add();
    });
  }
  for (std::thread& w : writers) w.join();
  EXPECT_EQ(c.value(), 0u);
}

}  // namespace
}  // namespace rtpb::telemetry
