// Execution tracing: recorder semantics plus cross-subsystem event
// ordering assertions on a live service.
#include "sim/trace.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "core/rtpb.hpp"
#include "sched/cpu.hpp"

namespace rtpb {
namespace {

TEST(TraceRecorder, DisabledByDefaultAndFree) {
  sim::TraceRecorder trace;
  EXPECT_FALSE(trace.enabled());
  trace.record(TimePoint{1}, sim::TraceCategory::kUser, "ignored");
  EXPECT_TRUE(trace.events().empty());
}

TEST(TraceRecorder, RecordsInOrder) {
  sim::TraceRecorder trace;
  trace.enable();
  trace.record(TimePoint{1}, sim::TraceCategory::kUser, "a");
  trace.record(TimePoint{2}, sim::TraceCategory::kNet, "b", "context");
  ASSERT_EQ(trace.events().size(), 2u);
  EXPECT_EQ(trace.events()[0].label, "a");
  EXPECT_EQ(trace.events()[1].detail, "context");
}

TEST(TraceRecorder, RingBufferKeepsMostRecent) {
  sim::TraceRecorder trace;
  trace.enable(/*capacity=*/3);
  for (int i = 0; i < 10; ++i) {
    trace.record(TimePoint{i}, sim::TraceCategory::kUser, std::to_string(i));
  }
  ASSERT_EQ(trace.events().size(), 3u);
  EXPECT_EQ(trace.events()[0].label, "7");
  EXPECT_EQ(trace.events()[2].label, "9");
  EXPECT_EQ(trace.dropped(), 7u);
}

TEST(TraceRecorder, DigestAndRecordedCoverEvictedEvents) {
  // The digest is the determinism oracle: it must fold over EVERY event
  // ever recorded, not just the bounded window the ring buffer retains.
  sim::TraceRecorder small;
  sim::TraceRecorder large;
  small.enable(/*capacity=*/2);
  large.enable(/*capacity=*/1024);
  for (int i = 0; i < 50; ++i) {
    small.record(TimePoint{i}, sim::TraceCategory::kNet, "ev", std::to_string(i));
    large.record(TimePoint{i}, sim::TraceCategory::kNet, "ev", std::to_string(i));
  }
  EXPECT_EQ(small.digest(), large.digest());
  EXPECT_EQ(small.recorded(), 50u);
  EXPECT_EQ(large.recorded(), 50u);
  EXPECT_EQ(small.events().size(), 2u);
  EXPECT_EQ(small.dropped(), 48u);
  EXPECT_EQ(large.dropped(), 0u);

  // A single divergent event — even one that is later evicted — changes it.
  small.record(TimePoint{50}, sim::TraceCategory::kNet, "ev", "fork");
  large.record(TimePoint{50}, sim::TraceCategory::kNet, "ev", "FORK");
  EXPECT_NE(small.digest(), large.digest());
}

TEST(TraceRecorder, WithLabelSeesOnlyTheRetainedWindow) {
  sim::TraceRecorder trace;
  trace.enable(/*capacity=*/4);
  for (int i = 0; i < 10; ++i) {
    trace.record(TimePoint{i}, sim::TraceCategory::kUser, i % 2 ? "odd" : "even",
                 std::to_string(i));
  }
  // Window holds events 6..9; two of each parity survive the wraparound.
  const auto odd = trace.with_label("odd");
  ASSERT_EQ(odd.size(), 2u);
  EXPECT_EQ(odd[0].detail, "7");
  EXPECT_EQ(odd[1].detail, "9");
  EXPECT_EQ(trace.with_label("even").size(), 2u);
  EXPECT_TRUE(trace.with_label("never-recorded").empty());
}

TEST(TraceRecorder, RenderShowsOneLinePerRetainedEvent) {
  sim::TraceRecorder trace;
  trace.enable(/*capacity=*/2);
  trace.record(TimePoint{}, sim::TraceCategory::kNet, "evicted", "gone");
  trace.record(TimePoint{} + millis(1), sim::TraceCategory::kCpu, "job-start", "task 3");
  trace.record(TimePoint{} + millis(2), sim::TraceCategory::kService, "promote", "node2");

  const std::string out = trace.render();
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 2);
  EXPECT_EQ(out.find("evicted"), std::string::npos);
  EXPECT_NE(out.find("cpu"), std::string::npos);
  EXPECT_NE(out.find("job-start"), std::string::npos);
  EXPECT_NE(out.find("task 3"), std::string::npos);
  EXPECT_NE(out.find("service"), std::string::npos);
  EXPECT_NE(out.find("1.000ms"), std::string::npos);
}

TEST(TraceRecorder, ClearResetsDigestDroppedAndCounts) {
  sim::TraceRecorder trace;
  trace.enable(/*capacity=*/2);
  for (int i = 0; i < 5; ++i) {
    trace.record(TimePoint{i}, sim::TraceCategory::kUser, "x");
  }
  const std::uint64_t first_digest = trace.digest();
  trace.clear();
  EXPECT_TRUE(trace.events().empty());
  EXPECT_EQ(trace.dropped(), 0u);
  EXPECT_EQ(trace.recorded(), 0u);
  EXPECT_TRUE(trace.enabled()) << "clear() forgets data, not the enabled state";

  // Replaying the identical stream reproduces the identical digest.
  for (int i = 0; i < 5; ++i) {
    trace.record(TimePoint{i}, sim::TraceCategory::kUser, "x");
  }
  EXPECT_EQ(trace.digest(), first_digest);
}

TEST(TraceRecorder, FilterByLabelAndRender) {
  sim::TraceRecorder trace;
  trace.enable();
  trace.record(TimePoint{1}, sim::TraceCategory::kCpu, "x");
  trace.record(TimePoint{2}, sim::TraceCategory::kCpu, "y");
  trace.record(TimePoint{3}, sim::TraceCategory::kCpu, "x");
  EXPECT_EQ(trace.with_label("x").size(), 2u);
  EXPECT_NE(trace.render().find("cpu"), std::string::npos);
}

TEST(TraceIntegration, CpuEmitsReleaseStartFinishTriples) {
  sim::Simulator sim;
  sim.trace().enable();
  sched::Cpu cpu(sim, sched::Policy::kRateMonotonic);
  sched::TaskSpec t;
  t.name = "tick";
  t.period = millis(10);
  t.wcet = millis(2);
  cpu.add_task(t, nullptr);
  cpu.start(TimePoint::zero());
  sim.run_until(TimePoint::zero() + millis(35));

  const auto releases = sim.trace().with_label("job-release");
  const auto starts = sim.trace().with_label("job-start");
  const auto finishes = sim.trace().with_label("job-finish");
  EXPECT_EQ(releases.size(), 4u);
  EXPECT_EQ(starts.size(), 4u);
  EXPECT_EQ(finishes.size(), 4u);
  // Per job: release <= start < finish.
  for (std::size_t i = 0; i < finishes.size(); ++i) {
    EXPECT_LE(releases[i].at, starts[i].at);
    EXPECT_LT(starts[i].at, finishes[i].at);
  }
}

TEST(TraceIntegration, FailoverLeavesPromoteMarker) {
  core::ServiceParams params;
  params.link.propagation = millis(1);
  core::RtpbService service(params);
  service.simulator().trace().enable();
  service.start();
  core::ObjectSpec spec;
  spec.id = 1;
  spec.client_period = millis(10);
  spec.client_exec = micros(200);
  spec.update_exec = micros(200);
  spec.delta_primary = millis(20);
  spec.delta_backup = millis(100);
  ASSERT_TRUE(service.register_object(spec).ok());
  service.run_for(seconds(1));
  service.crash_primary();
  service.run_for(seconds(1));

  const auto promotes = service.simulator().trace().with_label("promote");
  ASSERT_EQ(promotes.size(), 1u);
  // The marker names the promoted node and the epoch it minted (the
  // initial primary held epoch 1, so the first failover mints 2).
  EXPECT_EQ(promotes[0].detail, "node" + std::to_string(service.backup().node()) + " epoch2");
  // Network activity was traced too.
  EXPECT_FALSE(service.simulator().trace().with_label("frame-send").empty());
}

}  // namespace
}  // namespace rtpb
