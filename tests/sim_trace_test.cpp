// Execution tracing: recorder semantics plus cross-subsystem event
// ordering assertions on a live service.
#include "sim/trace.hpp"

#include <gtest/gtest.h>

#include "core/rtpb.hpp"
#include "sched/cpu.hpp"

namespace rtpb {
namespace {

TEST(TraceRecorder, DisabledByDefaultAndFree) {
  sim::TraceRecorder trace;
  EXPECT_FALSE(trace.enabled());
  trace.record(TimePoint{1}, sim::TraceCategory::kUser, "ignored");
  EXPECT_TRUE(trace.events().empty());
}

TEST(TraceRecorder, RecordsInOrder) {
  sim::TraceRecorder trace;
  trace.enable();
  trace.record(TimePoint{1}, sim::TraceCategory::kUser, "a");
  trace.record(TimePoint{2}, sim::TraceCategory::kNet, "b", "context");
  ASSERT_EQ(trace.events().size(), 2u);
  EXPECT_EQ(trace.events()[0].label, "a");
  EXPECT_EQ(trace.events()[1].detail, "context");
}

TEST(TraceRecorder, RingBufferKeepsMostRecent) {
  sim::TraceRecorder trace;
  trace.enable(/*capacity=*/3);
  for (int i = 0; i < 10; ++i) {
    trace.record(TimePoint{i}, sim::TraceCategory::kUser, std::to_string(i));
  }
  ASSERT_EQ(trace.events().size(), 3u);
  EXPECT_EQ(trace.events()[0].label, "7");
  EXPECT_EQ(trace.events()[2].label, "9");
  EXPECT_EQ(trace.dropped(), 7u);
}

TEST(TraceRecorder, FilterByLabelAndRender) {
  sim::TraceRecorder trace;
  trace.enable();
  trace.record(TimePoint{1}, sim::TraceCategory::kCpu, "x");
  trace.record(TimePoint{2}, sim::TraceCategory::kCpu, "y");
  trace.record(TimePoint{3}, sim::TraceCategory::kCpu, "x");
  EXPECT_EQ(trace.with_label("x").size(), 2u);
  EXPECT_NE(trace.render().find("cpu"), std::string::npos);
}

TEST(TraceIntegration, CpuEmitsReleaseStartFinishTriples) {
  sim::Simulator sim;
  sim.trace().enable();
  sched::Cpu cpu(sim, sched::Policy::kRateMonotonic);
  sched::TaskSpec t;
  t.name = "tick";
  t.period = millis(10);
  t.wcet = millis(2);
  cpu.add_task(t, nullptr);
  cpu.start(TimePoint::zero());
  sim.run_until(TimePoint::zero() + millis(35));

  const auto releases = sim.trace().with_label("job-release");
  const auto starts = sim.trace().with_label("job-start");
  const auto finishes = sim.trace().with_label("job-finish");
  EXPECT_EQ(releases.size(), 4u);
  EXPECT_EQ(starts.size(), 4u);
  EXPECT_EQ(finishes.size(), 4u);
  // Per job: release <= start < finish.
  for (std::size_t i = 0; i < finishes.size(); ++i) {
    EXPECT_LE(releases[i].at, starts[i].at);
    EXPECT_LT(starts[i].at, finishes[i].at);
  }
}

TEST(TraceIntegration, FailoverLeavesPromoteMarker) {
  core::ServiceParams params;
  params.link.propagation = millis(1);
  core::RtpbService service(params);
  service.simulator().trace().enable();
  service.start();
  core::ObjectSpec spec;
  spec.id = 1;
  spec.client_period = millis(10);
  spec.client_exec = micros(200);
  spec.update_exec = micros(200);
  spec.delta_primary = millis(20);
  spec.delta_backup = millis(100);
  ASSERT_TRUE(service.register_object(spec).ok());
  service.run_for(seconds(1));
  service.crash_primary();
  service.run_for(seconds(1));

  const auto promotes = service.simulator().trace().with_label("promote");
  ASSERT_EQ(promotes.size(), 1u);
  EXPECT_EQ(promotes[0].detail, "node" + std::to_string(service.backup().node()));
  // Network activity was traced too.
  EXPECT_FALSE(service.simulator().trace().with_label("frame-send").empty());
}

}  // namespace
}  // namespace rtpb
