// FaultPlan edge semantics the chaos harness leans on: arm() is
// single-shot, past actions fire deterministically at the current
// instant, and fired() reports virtual-time order regardless of the
// order the plan was scripted in.
#include <gtest/gtest.h>

#include "core/faults.hpp"

namespace rtpb::core {
namespace {

ServiceParams make_params(std::uint64_t seed = 42) {
  ServiceParams p;
  p.seed = seed;
  p.link.propagation = millis(1);
  p.link.jitter = micros(200);
  return p;
}

TimePoint at(std::int64_t ms) { return TimePoint::zero() + millis(ms); }

TEST(FaultPlanEdge, DoubleArmDies) {
  RtpbService service(make_params());
  FaultPlan plan(service);
  plan.at(at(10), "noop", [] {});
  plan.arm();
  EXPECT_DEATH(plan.arm(), "precondition");
}

TEST(FaultPlanEdge, AddingActionsAfterArmDies) {
  RtpbService service(make_params());
  FaultPlan plan(service);
  plan.arm();
  EXPECT_DEATH(plan.at(at(10), "late", [] {}), "precondition");
}

TEST(FaultPlanEdge, NullActionDies) {
  RtpbService service(make_params());
  FaultPlan plan(service);
  EXPECT_DEATH(plan.at(at(10), "null", nullptr), "precondition");
}

TEST(FaultPlanEdge, PastActionsFireImmediatelyAtArmInstant) {
  RtpbService service(make_params());
  service.start();
  service.run_for(millis(500));  // now = 500 ms

  FaultPlan plan(service);
  std::vector<TimePoint> when;
  plan.at(at(100), "past", [&] { when.push_back(service.simulator().now()); });
  plan.at(at(700), "future", [&] { when.push_back(service.simulator().now()); });
  plan.arm();  // "past" is 400 ms stale
  service.run_for(millis(500));

  ASSERT_EQ(plan.fired().size(), 2u);
  EXPECT_EQ(plan.fired()[0], "past");
  EXPECT_EQ(when[0], at(500)) << "stale action fires at the arm instant, not at(100)";
  EXPECT_EQ(plan.fired()[1], "future");
  EXPECT_EQ(when[1], at(700));
}

TEST(FaultPlanEdge, FiredOrderIsVirtualTimeNotInsertionOrder) {
  RtpbService service(make_params());
  FaultPlan plan(service);
  // Scripted deliberately out of order.
  plan.at(at(300), "third", [] {});
  plan.at(at(100), "first", [] {});
  plan.at(at(200), "second", [] {});
  plan.arm();
  service.start();
  service.run_for(millis(400));

  ASSERT_EQ(plan.fired().size(), 3u);
  EXPECT_EQ(plan.fired()[0], "first");
  EXPECT_EQ(plan.fired()[1], "second");
  EXPECT_EQ(plan.fired()[2], "third");
}

TEST(FaultPlanEdge, EqualTimesBreakTiesByInsertionOrder) {
  RtpbService service(make_params());
  FaultPlan plan(service);
  plan.at(at(100), "a", [] {});
  plan.at(at(100), "b", [] {});
  plan.at(at(100), "c", [] {});
  plan.arm();
  service.start();
  service.run_for(millis(200));

  ASSERT_EQ(plan.fired().size(), 3u);
  EXPECT_EQ(plan.fired()[0], "a");
  EXPECT_EQ(plan.fired()[1], "b");
  EXPECT_EQ(plan.fired()[2], "c");
}

TEST(FaultPlanEdge, ChaosVerbsBracketTheirIntervals) {
  RtpbService service(make_params());
  FaultPlan plan(service);
  plan.duplication_burst(at(100), at(200), 0.5);
  plan.reorder_burst(at(150), at(250), 0.5, millis(3));
  plan.burst_loss(at(300), at(400), 0.02, 5);
  plan.corruption_burst(at(350), at(450), 0.2);
  plan.arm();
  service.start();
  service.run_for(millis(500));

  const std::vector<std::string> want = {
      "dup-burst-start",    "reorder-burst-start", "dup-burst-end",
      "reorder-burst-end",  "burst-loss-start",    "corruption-start",
      "burst-loss-end",     "corruption-end",
  };
  EXPECT_EQ(plan.fired(), want);

  // All knobs must be back at zero after the intervals close.
  const auto& primary = service.primary();
  const auto& backup = service.backup();
  const net::LinkFaults& f =
      service.network().faults(primary.node(), backup.node());
  EXPECT_EQ(f.duplicate_probability, 0.0);
  EXPECT_EQ(f.reorder_probability, 0.0);
  EXPECT_EQ(f.corrupt_probability, 0.0);
  EXPECT_EQ(f.burst_loss_probability, 0.0);
}

}  // namespace
}  // namespace rtpb::core
