// x-kernel sessions: open once, push repeatedly with cached addressing.
#include <gtest/gtest.h>

#include "xkernel/graph.hpp"

namespace rtpb::xkernel {
namespace {

struct SessionEnv {
  sim::Simulator sim{5};
  net::Network network{sim};
  HostStack a{network};
  HostStack b{network};
  std::vector<Bytes> received;
  std::vector<net::Endpoint> sources;

  SessionEnv() {
    network.connect(a.node(), b.node(), net::LinkParams{});
    b.udp().bind(300, [this](Message& m, const MsgAttrs& attrs) {
      received.push_back(m.to_bytes());
      sources.push_back(attrs.src);
    });
  }
};

TEST(Session, OpenAndPushDelivers) {
  SessionEnv env;
  auto session = env.a.udp().open({env.a.node(), 200}, {env.b.node(), 300});
  Message msg{Bytes{1, 2, 3}};
  session->push(msg);
  env.sim.run();
  ASSERT_EQ(env.received.size(), 1u);
  EXPECT_EQ(env.received[0], (Bytes{1, 2, 3}));
  EXPECT_EQ(env.sources[0], (net::Endpoint{env.a.node(), 200}));
}

TEST(Session, RepeatedPushesShareTheChannel) {
  SessionEnv env;
  auto session = env.a.udp().open({env.a.node(), 200}, {env.b.node(), 300});
  for (std::uint8_t i = 0; i < 20; ++i) {
    Message msg{Bytes{i}};
    session->push(msg);
  }
  env.sim.run();
  ASSERT_EQ(env.received.size(), 20u);
  for (std::uint8_t i = 0; i < 20; ++i) EXPECT_EQ(env.received[i][0], i);
}

TEST(Session, ExposesParticipants) {
  SessionEnv env;
  auto session = env.a.udp().open({env.a.node(), 200}, {env.b.node(), 300});
  EXPECT_EQ(session->local().port, 200);
  EXPECT_EQ(session->remote().node, env.b.node());
  EXPECT_EQ(session->remote().port, 300);
}

TEST(Session, TwoSessionsToDistinctPeers) {
  SessionEnv env;
  HostStack c{env.network};
  env.network.connect(env.a.node(), c.node(), net::LinkParams{});
  int c_got = 0;
  c.udp().bind(300, [&](Message&, const MsgAttrs&) { ++c_got; });

  auto to_b = env.a.udp().open({env.a.node(), 200}, {env.b.node(), 300});
  auto to_c = env.a.udp().open({env.a.node(), 200}, {c.node(), 300});
  Message m1{Bytes{1}};
  Message m2{Bytes{2}};
  to_b->push(m1);
  to_c->push(m2);
  env.sim.run();
  EXPECT_EQ(env.received.size(), 1u);
  EXPECT_EQ(c_got, 1);
}

}  // namespace
}  // namespace rtpb::xkernel
