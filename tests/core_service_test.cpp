// End-to-end tests of the assembled RTPB service: replication over the
// x-kernel stack, temporal-consistency guarantees, loss handling,
// backup-triggered retransmission, failure detection, failover, and
// new-backup recruitment.
#include "core/rtpb.hpp"

#include <gtest/gtest.h>

namespace rtpb::core {
namespace {

ObjectSpec make_spec(ObjectId id, Duration client_period = millis(10),
                     Duration delta_p = millis(20), Duration delta_b = millis(100)) {
  ObjectSpec s;
  s.id = id;
  s.name = "obj" + std::to_string(id);
  s.size_bytes = 64;
  s.client_period = client_period;
  s.client_exec = micros(200);
  s.update_exec = micros(200);
  s.delta_primary = delta_p;
  s.delta_backup = delta_b;
  return s;
}

/// `update_loss` is the paper's injected update-stream loss; genuine link
/// faults go through p.link.loss_probability instead.
ServiceParams make_params(double update_loss = 0.0, std::uint64_t seed = 42) {
  ServiceParams p;
  p.seed = seed;
  p.link.propagation = millis(1);
  p.link.jitter = micros(200);
  p.config.update_loss_probability = update_loss;
  return p;
}

TEST(RtpbService, ReplicatesWritesToBackup) {
  RtpbService service(make_params());
  service.start();
  ASSERT_TRUE(service.register_object(make_spec(1)).ok());
  service.run_for(seconds(2));

  const auto primary_state = service.primary().read(1);
  const auto backup_state = service.backup().read(1);
  ASSERT_TRUE(primary_state.has_value());
  ASSERT_TRUE(backup_state.has_value());
  EXPECT_GT(primary_state->version, 100u);  // ~200 writes in 2s at 10ms
  EXPECT_GT(backup_state->version, 0u);
  // Backup within one update period of the primary.
  EXPECT_GE(backup_state->version + 10, primary_state->version);
  EXPECT_GT(service.primary().updates_sent(), 0u);
  EXPECT_GT(service.backup().updates_applied(), 0u);
}

TEST(RtpbService, NoLossMeansNoInconsistency) {
  RtpbService service(make_params(0.0));
  service.start();
  for (ObjectId id = 1; id <= 5; ++id) {
    ASSERT_TRUE(service.register_object(make_spec(id)).ok());
  }
  service.warm_up(seconds(1));
  service.run_for(seconds(5));
  service.finish();
  // The window-derived update period guarantees staleness stays inside the
  // window when nothing is lost (Theorem 5 machinery).
  EXPECT_EQ(service.metrics().inconsistency_intervals(), 0u);
  EXPECT_LT(service.metrics().average_max_distance_ms(), 100.0);
}

TEST(RtpbService, DistanceStaysWithinWindowWithoutLoss) {
  RtpbService service(make_params());
  service.start();
  const ObjectSpec spec = make_spec(1);
  ASSERT_TRUE(service.register_object(spec).ok());
  service.warm_up(seconds(1));
  service.run_for(seconds(5));
  service.finish();
  EXPECT_LE(service.metrics().max_distance(1), spec.window());
}

TEST(RtpbService, LossIncreasesDistance) {
  auto run = [](double loss) {
    RtpbService service(make_params(loss, /*seed=*/7));
    service.start();
    for (ObjectId id = 1; id <= 5; ++id) {
      auto r = service.register_object(make_spec(id));
      EXPECT_TRUE(r.ok());
    }
    service.warm_up(seconds(1));
    service.run_for(seconds(10));
    service.finish();
    return service.metrics().average_max_distance_ms();
  };
  const double d0 = run(0.0);
  const double d30 = run(0.3);
  EXPECT_GT(d30, d0);
}

TEST(RtpbService, BackupWatchdogRequestsRetransmission) {
  // Under sustained loss the backup's watchdog must fire NACKs and the
  // primary must serve retransmissions.
  RtpbService service(make_params(0.6, /*seed=*/11));
  service.start();
  ASSERT_TRUE(service.register_object(make_spec(1)).ok());
  service.run_for(seconds(10));
  EXPECT_GT(service.backup().retransmit_requests_sent(), 0u);
  EXPECT_GT(service.primary().retransmissions_served(), 0u);
}

TEST(RtpbService, RegistrationSurvivesLossViaAckedTransfer) {
  // Genuine link-level loss here: every message class is at risk, so the
  // registration must survive through acked retry.  Detection thresholds
  // are loosened so the lossy link is not mistaken for a crash.
  ServiceParams params = make_params(0.0, /*seed=*/13);
  params.link.loss_probability = 0.5;
  params.config.ping_max_misses = 1000;
  RtpbService service(params);
  service.start();
  ASSERT_TRUE(service.register_object(make_spec(1)).ok());
  service.run_for(seconds(3));
  // Despite 50% loss, the acked-and-retried state transfer must land.
  EXPECT_TRUE(service.backup().store().contains(1));
}

TEST(RtpbService, AckModeAcknowledgesUpdates) {
  ServiceParams params = make_params(0.0);
  params.config.ack_every_update = true;
  RtpbService service(params);
  service.start();
  ASSERT_TRUE(service.register_object(make_spec(1)).ok());
  service.run_for(seconds(2));
  EXPECT_GT(service.backup().acks_sent(), 0u);
  // With no loss there is nothing to retransmit.
  EXPECT_EQ(service.primary().retransmissions_served(), 0u);
}

TEST(RtpbService, AckModeRetransmitsOnLoss) {
  ServiceParams params = make_params(0.4, /*seed=*/17);
  params.config.ack_every_update = true;
  RtpbService service(params);
  service.start();
  ASSERT_TRUE(service.register_object(make_spec(1)).ok());
  service.run_for(seconds(5));
  EXPECT_GT(service.primary().retransmissions_served(), 0u);
}

TEST(RtpbService, ResponseTimesRecordedAndSmall) {
  RtpbService service(make_params());
  service.start();
  for (ObjectId id = 1; id <= 3; ++id) {
    ASSERT_TRUE(service.register_object(make_spec(id)).ok());
  }
  service.run_for(seconds(2));
  const auto& rt = service.metrics().response_times();
  EXPECT_GT(rt.count(), 100u);
  // Lightly loaded CPU: responses near the bare execution time (0.2ms).
  EXPECT_LT(rt.quantile(0.5), 2.0);
}

TEST(RtpbService, AdmissionRejectsBeyondCapacity) {
  RtpbService service(make_params());
  service.start();
  std::size_t accepted = 0;
  std::size_t rejected = 0;
  for (ObjectId id = 1; id <= 400; ++id) {
    ObjectSpec s = make_spec(id);
    s.client_exec = millis(1);  // heavier load to hit the RM bound
    if (service.register_object(s).ok()) {
      ++accepted;
    } else {
      ++rejected;
    }
  }
  EXPECT_GT(accepted, 0u);
  EXPECT_GT(rejected, 0u);
  service.run_for(seconds(2));
  EXPECT_EQ(service.primary().cpu().deadline_misses(), 0u);
}

TEST(RtpbService, WithoutAdmissionControlResponseTimesExplode) {
  ServiceParams params = make_params();
  params.config.admission_control_enabled = false;
  // Client requests queue FIFO at the server (the Mach IPC interface of
  // §4.1), which is where overload shows up as response-time blowup.
  params.config.cpu_policy = sched::Policy::kFifo;
  RtpbService service(params);
  service.start();
  for (ObjectId id = 1; id <= 120; ++id) {
    ObjectSpec s = make_spec(id);
    s.client_exec = millis(1);  // 120 objects * >10% util each: overload
    ASSERT_TRUE(service.register_object(s).ok());
  }
  service.run_for(seconds(2));
  EXPECT_GT(service.metrics().response_times().quantile(0.9), 10.0);
  EXPECT_GT(service.primary().cpu().deadline_misses(), 0u);
}

TEST(RtpbService, FailoverPromotesBackup) {
  RtpbService service(make_params());
  service.start();
  ASSERT_TRUE(service.register_object(make_spec(1)).ok());
  service.run_for(seconds(2));

  const auto before = service.names().lookup("rtpb-service");
  ASSERT_TRUE(before.has_value());
  EXPECT_EQ(before->node, service.primary().node());

  const TimePoint crash_at = service.simulator().now();
  service.crash_primary();
  service.run_for(seconds(1));

  EXPECT_EQ(service.backup().role(), Role::kPrimary);
  const auto after = service.names().lookup("rtpb-service");
  ASSERT_TRUE(after.has_value());
  EXPECT_EQ(after->node, service.backup().node());
  // Detection within max_misses pings + timeout (plus scheduling slack).
  EXPECT_LE(service.backup().promoted_at() - crash_at, millis(600));
  // The backup client application took over sensing.
  EXPECT_TRUE(service.backup_client().active());
  EXPECT_GT(service.backup_client().sensing_tasks(), 0u);
}

TEST(RtpbService, NewPrimaryContinuesService) {
  RtpbService service(make_params());
  service.start();
  ASSERT_TRUE(service.register_object(make_spec(1)).ok());
  service.run_for(seconds(2));
  service.crash_primary();
  service.run_for(seconds(1));
  ASSERT_EQ(service.backup().role(), Role::kPrimary);

  const auto v_at_takeover = service.backup().read(1)->version;
  service.run_for(seconds(2));
  const auto v_later = service.backup().read(1)->version;
  // The activated backup client keeps writing.
  EXPECT_GT(v_later, v_at_takeover + 50);
}

TEST(RtpbService, RecruitedStandbyReceivesStateAndUpdates) {
  RtpbService service(make_params());
  service.start();
  ASSERT_TRUE(service.register_object(make_spec(1)).ok());
  service.run_for(seconds(2));
  service.crash_primary();
  service.run_for(seconds(1));
  ASSERT_EQ(service.backup().role(), Role::kPrimary);

  ReplicaServer& standby = service.add_standby();
  service.run_for(seconds(2));

  // Full state transfer landed...
  ASSERT_TRUE(standby.store().contains(1));
  const auto v1 = standby.read(1)->version;
  EXPECT_GT(v1, 0u);
  // ...and the periodic update stream is flowing to the new backup.
  service.run_for(seconds(2));
  EXPECT_GT(standby.read(1)->version, v1);
}

TEST(RtpbService, PrimaryCancelsUpdatesWhenBackupDies) {
  RtpbService service(make_params());
  service.start();
  ASSERT_TRUE(service.register_object(make_spec(1)).ok());
  service.run_for(seconds(1));
  service.crash_backup();
  service.run_for(seconds(1));  // detector fires; update tasks cancelled
  const auto sent_after_detect = service.primary().updates_sent();
  service.run_for(seconds(2));
  EXPECT_EQ(service.primary().updates_sent(), sent_after_detect);
  // The primary keeps serving clients.
  const auto v = service.primary().read(1)->version;
  service.run_for(seconds(1));
  EXPECT_GT(service.primary().read(1)->version, v);
}

TEST(RtpbService, InterObjectConstraintAccepted) {
  RtpbService service(make_params());
  service.start();
  ASSERT_TRUE(service.register_object(make_spec(1)).ok());
  ASSERT_TRUE(service.register_object(make_spec(2)).ok());
  ASSERT_TRUE(service.add_constraint({1, 2, millis(30)}).ok());
  // Update periods tightened to the inter-object bound.
  EXPECT_LE(service.primary().admission().update_period(1), millis(30));
  service.warm_up(seconds(1));
  service.run_for(seconds(3));
  service.finish();
  EXPECT_EQ(service.metrics().inconsistency_intervals(), 0u);
}

TEST(RtpbService, DeterministicAcrossRuns) {
  auto run = [] {
    RtpbService service(make_params(0.2, /*seed=*/99));
    service.start();
    for (ObjectId id = 1; id <= 3; ++id) {
      EXPECT_TRUE(service.register_object(make_spec(id)).ok());
    }
    service.run_for(seconds(5));
    return std::tuple{service.primary().updates_sent(), service.backup().updates_applied(),
                      service.backup().read(1)->version};
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace rtpb::core
