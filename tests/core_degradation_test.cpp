// Graceful-degradation measurement core: Jacobson RTT estimation,
// exponential backoff with seeded jitter, the overload detector's trigger
// paths and hysteresis — plus the server-level plumbing that consumes
// them (derived and adaptive ack timeouts, the state-transfer retry cap).
#include "core/degradation.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "core/rtpb.hpp"

namespace rtpb::core {
namespace {

// ---------------------------------------------------------------------------
// RttEstimator: RFC 6298 arithmetic, exactly.
// ---------------------------------------------------------------------------

TEST(RttEstimator, FirstSampleInitialisesBothEstimators) {
  RttEstimator est;
  EXPECT_FALSE(est.has_sample());
  EXPECT_EQ(est.rto(), Duration::zero());

  est.sample(millis(10));
  ASSERT_TRUE(est.has_sample());
  EXPECT_EQ(est.samples(), 1u);
  EXPECT_EQ(est.srtt(), millis(10));        // SRTT = R
  EXPECT_EQ(est.rttvar(), millis(5));       // RTTVAR = R/2
  EXPECT_EQ(est.rto(), millis(30));         // SRTT + 4·RTTVAR
}

TEST(RttEstimator, EwmaGainsMatchJacobson) {
  RttEstimator est;
  est.sample(millis(10));
  est.sample(millis(20));
  // RTTVAR' = 3/4·5ms + 1/4·|10−20|ms = 6.25 ms (integer nanos: exact).
  EXPECT_EQ(est.rttvar(), micros(6250));
  // SRTT' = 7/8·10ms + 1/8·20ms = 11.25 ms.
  EXPECT_EQ(est.srtt(), micros(11250));
  EXPECT_EQ(est.rto(), micros(11250) + micros(6250) * 4);
}

TEST(RttEstimator, ConvergesToSteadyRttAndSpikeWidensRto) {
  RttEstimator est;
  for (int i = 0; i < 200; ++i) est.sample(millis(4));
  // Steady input: SRTT converges to the input, variance decays to ~0.
  EXPECT_LE((est.srtt() - millis(4)).abs(), micros(50));
  EXPECT_LE(est.rttvar(), micros(50));
  const Duration calm_rto = est.rto();

  est.sample(millis(40));  // one queueing spike
  EXPECT_GT(est.rto(), calm_rto) << "a spike must widen the timeout";
  EXPECT_GT(est.rttvar(), millis(1));
}

TEST(RttEstimator, ResetForgetsEverythingAndIgnoresNegatives) {
  RttEstimator est;
  est.sample(millis(10));
  est.reset();
  EXPECT_FALSE(est.has_sample());
  EXPECT_EQ(est.srtt(), Duration::zero());
  EXPECT_EQ(est.rto(), Duration::zero());

  est.sample(Duration::zero() - millis(1));  // clock skew artefact
  EXPECT_FALSE(est.has_sample());
}

// ---------------------------------------------------------------------------
// BackoffPolicy: exponential ladder, cap, seeded jitter.
// ---------------------------------------------------------------------------

TEST(BackoffPolicy, ExponentialLadderWithoutJitterIsExact) {
  BackoffPolicy backoff({millis(100), millis(1000), /*jitter=*/0.0});
  Rng rng{7};
  EXPECT_EQ(backoff.next(rng), millis(100));
  EXPECT_EQ(backoff.next(rng), millis(200));
  EXPECT_EQ(backoff.next(rng), millis(400));
  EXPECT_EQ(backoff.next(rng), millis(800));
  EXPECT_EQ(backoff.next(rng), millis(1000)) << "cap binds from level 4 on";
  EXPECT_EQ(backoff.next(rng), millis(1000));
  EXPECT_EQ(backoff.level(), 6u);

  backoff.reset();
  EXPECT_EQ(backoff.level(), 0u);
  EXPECT_EQ(backoff.next(rng), millis(100));
}

TEST(BackoffPolicy, JitterIsSeededDeterministicAndBounded) {
  const BackoffPolicy::Params params{millis(100), millis(10000), 0.25};
  BackoffPolicy a(params);
  BackoffPolicy b(params);
  Rng rng_a{42};
  Rng rng_b{42};
  std::set<Duration> distinct;
  for (int i = 0; i < 8; ++i) {
    const Duration da = a.next(rng_a);
    const Duration db = b.next(rng_b);
    EXPECT_EQ(da, db) << "same seed must draw the same jitter at step " << i;
    const Duration nominal = std::min(millis(100) * (std::int64_t{1} << i), millis(10000));
    EXPECT_GE(da, nominal.scaled(0.75));
    EXPECT_LE(da, nominal.scaled(1.25));
    distinct.insert(da);
  }
  EXPECT_GT(distinct.size(), 1u) << "jitter should actually perturb the ladder";
}

TEST(BackoffPolicy, LevelSaturatesInsteadOfOverflowing) {
  BackoffPolicy backoff({nanos(1), Duration::zero(), 0.0});  // no cap
  Rng rng{1};
  Duration last{};
  for (int i = 0; i < 40; ++i) last = backoff.next(rng);
  EXPECT_EQ(backoff.level(), 16u) << "shift saturates at 2^16";
  EXPECT_EQ(last, nanos(1) * (std::int64_t{1} << 16));
}

// ---------------------------------------------------------------------------
// DegradationController: three trigger paths, hold-based hysteresis.
// ---------------------------------------------------------------------------

DegradationController::Params controller_params() {
  DegradationController::Params p;
  p.rtt_baseline = millis(2);  // 2ℓ
  p.rtt_factor = 4.0;
  p.queue_depth = 16;
  p.overload_hold = millis(200);
  return p;
}

TEST(DegradationController, QuiescentControllerReportsCalmForever) {
  DegradationController ctl(controller_params());
  const TimePoint t = TimePoint::zero() + seconds(1);
  EXPECT_FALSE(ctl.overloaded(t));
  EXPECT_EQ(ctl.calm_for(t), Duration::max());
  EXPECT_EQ(ctl.triggers(), 0u);
}

TEST(DegradationController, SmoothedRttAboveFactorTimesBaselineTrips) {
  DegradationController ctl(controller_params());
  const TimePoint t0 = TimePoint::zero() + millis(10);
  // Below 4 × 2 ms: healthy.
  ctl.on_rtt_sample(t0, millis(5));
  EXPECT_FALSE(ctl.overloaded(t0));
  // One huge sample pushes SRTT past 8 ms (EWMA: it takes more than one).
  TimePoint t = t0;
  while (!ctl.overloaded(t)) {
    ASSERT_LT(t, t0 + seconds(1)) << "RTT trigger never tripped";
    t = t + millis(1);
    ctl.on_rtt_sample(t, millis(80));
  }
  EXPECT_GT(ctl.triggers(), 0u);
  EXPECT_GT(ctl.rtt().srtt(), millis(8));
}

TEST(DegradationController, QueueDepthAndMissedWindowTrip) {
  {
    DegradationController ctl(controller_params());
    const TimePoint t = TimePoint::zero() + millis(10);
    ctl.on_queue_depth(t, 16);  // at the threshold: not over it
    EXPECT_FALSE(ctl.overloaded(t));
    ctl.on_queue_depth(t, 17);
    EXPECT_TRUE(ctl.overloaded(t));
  }
  {
    DegradationController ctl(controller_params());
    const TimePoint t = TimePoint::zero() + millis(10);
    ctl.on_missed_window(t);
    EXPECT_TRUE(ctl.overloaded(t));
    EXPECT_EQ(ctl.missed_windows(), 1u);
  }
}

TEST(DegradationController, OverloadClearsOnlyAfterHoldElapses) {
  DegradationController ctl(controller_params());
  const TimePoint t0 = TimePoint::zero() + millis(10);
  ctl.on_missed_window(t0);
  EXPECT_TRUE(ctl.overloaded(t0 + millis(200)));   // inside the hold
  EXPECT_FALSE(ctl.overloaded(t0 + millis(201)));  // hold expired
  EXPECT_EQ(ctl.calm_for(t0 + millis(300)), millis(300));

  // A re-trigger restarts the calm clock.
  ctl.on_queue_depth(t0 + millis(300), 100);
  EXPECT_TRUE(ctl.overloaded(t0 + millis(300)));
  EXPECT_EQ(ctl.calm_for(t0 + millis(350)), millis(50));

  ctl.reset();
  EXPECT_FALSE(ctl.overloaded(t0 + millis(350)));
  EXPECT_EQ(ctl.calm_for(t0 + millis(350)), Duration::max());
  EXPECT_EQ(ctl.missed_windows(), 0u);
}

// ---------------------------------------------------------------------------
// Server plumbing: derived / pinned / adaptive ack timeouts, retry cap.
// ---------------------------------------------------------------------------

ObjectSpec make_spec(ObjectId id) {
  ObjectSpec s;
  s.id = id;
  s.name = "obj" + std::to_string(id);
  s.size_bytes = 64;
  s.client_period = millis(10);
  s.client_exec = micros(200);
  s.update_exec = micros(200);
  s.delta_primary = millis(20);
  s.delta_backup = millis(100);
  return s;
}

ServiceParams make_params(std::uint64_t seed, std::size_t backups = 1) {
  ServiceParams p;
  p.seed = seed;
  p.link.propagation = millis(1);
  p.link.jitter = micros(200);
  p.backup_count = backups;
  return p;
}

TEST(AdaptiveTimeouts, ZeroConfigTimeoutDerivesFromTheLink) {
  ServiceParams params = make_params(101);
  params.config.adaptive_timeouts = false;  // isolate the derived path
  ASSERT_EQ(params.config.ping_ack_timeout, Duration{});  // zero sentinel
  RtpbService service(params);
  service.start();
  service.run_for(millis(50));

  const FailureDetector* det = service.primary().detector(service.backup().node());
  ASSERT_NE(det, nullptr);
  // clamp(4ℓ, 5 ms, ping_period): with ℓ ≈ 1.2 ms + tx this lands well
  // below the old fixed 50 ms default and at or above the 5 ms floor.
  EXPECT_GE(det->ack_timeout(), millis(5));
  EXPECT_LE(det->ack_timeout(), params.config.ping_period);
  EXPECT_LT(det->ack_timeout(), millis(50))
      << "derived timeout should track the (fast) link, not the old default";
}

TEST(AdaptiveTimeouts, NonZeroConfigTimeoutIsPinned) {
  ServiceParams params = make_params(102);
  params.config.adaptive_timeouts = false;
  params.config.ping_ack_timeout = millis(37);
  RtpbService service(params);
  service.start();
  service.run_for(millis(50));

  const FailureDetector* det = service.primary().detector(service.backup().node());
  ASSERT_NE(det, nullptr);
  EXPECT_EQ(det->ack_timeout(), millis(37));
}

TEST(AdaptiveTimeouts, JacobsonRtoDrivesTheDetectorOnceSampled) {
  RtpbService service(make_params(103));
  service.start();
  ASSERT_TRUE(service.register_object(make_spec(1)).ok());
  service.run_for(seconds(2));

  const ReplicaServer& primary = service.primary();
  ASSERT_NE(primary.degradation(), nullptr);
  EXPECT_TRUE(primary.degradation()->rtt().has_sample())
      << "ping acks must feed the estimator";

  const FailureDetector* det = primary.detector(service.backup().node());
  ASSERT_NE(det, nullptr);
  // On a ~2.4 ms RTT link the RTO is tiny; the adaptive clamp floors it at
  // 5 ms and it must stay far under the 100 ms ping period.
  EXPECT_GE(det->ack_timeout(), millis(5));
  EXPECT_LE(det->ack_timeout(), millis(10));
}

TEST(TransferRetry, BackoffLadderCapsAndSuspectsTheSilentPeer) {
  ServiceParams params = make_params(104);
  params.config.ping_max_misses = 1000000;   // heartbeat never declares
  params.config.transfer_retry_limit = 3;    // short ladder for the test
  RtpbService service(params);
  service.start();
  service.run_for(millis(50));

  // Black-hole the replication link *after* start so heartbeats began,
  // then register: the registration state transfer can never be acked.
  const net::NodeId p = service.primary().node();
  const net::NodeId b = service.backup().node();
  service.network().set_loss_probability(p, b, 1.0);
  ASSERT_TRUE(service.register_object(make_spec(1)).ok());

  service.run_for(seconds(8));  // ladder ≈ 0.2 + 0.4 + 0.8 s (× jitter)

  EXPECT_GE(service.primary().transfer_give_ups(), 1u);
  EXPECT_TRUE(service.primary().peers().empty())
      << "the silent peer must be suspected down and removed";
}

TEST(TransferRetry, HealthyTransferNeverHitsTheCap) {
  ServiceParams params = make_params(105);
  params.config.transfer_retry_limit = 3;
  RtpbService service(params);
  service.start();
  ASSERT_TRUE(service.register_object(make_spec(1)).ok());
  service.run_for(seconds(2));
  EXPECT_EQ(service.primary().transfer_give_ups(), 0u);
  EXPECT_EQ(service.primary().peers().size(), 1u);
}

}  // namespace
}  // namespace rtpb::core
