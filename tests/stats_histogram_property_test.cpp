// Property suite pinning the documented Histogram semantics (satellite of
// the observability PR): bucket boundary placement — lower edge inclusive,
// upper edge exclusive, out-of-range clamping — and the quantile
// estimator's exactness at bucket edges.
//
// The edge-pinning property is the one the header promises: when q·total
// lands exactly on a cumulative bucket boundary, quantile(q) returns
// exactly lo + i·w with no interpolation error.  Sample counts are kept to
// powers of two and edges to dyadic values so every asserted equality is
// exact in floating point — EXPECT_EQ on doubles is intentional.
#include <gtest/gtest.h>

#include "util/rng.hpp"
#include "util/stats.hpp"

namespace rtpb {
namespace {

TEST(HistogramBuckets, LowerEdgeInclusiveUpperEdgeExclusive) {
  Histogram h(0.0, 10.0, 10);  // width 1: bucket i covers [i, i+1)
  h.add(3.0);                  // exactly on the edge between buckets 2 and 3
  EXPECT_EQ(h.bucket(2), 0u);
  EXPECT_EQ(h.bucket(3), 1u);  // interior edge lands in the HIGHER bucket
  h.add(3.999999);
  EXPECT_EQ(h.bucket(3), 2u);  // just below the next edge stays put
  h.add(0.0);
  EXPECT_EQ(h.bucket(0), 1u);  // lo itself is in bucket 0
}

TEST(HistogramBuckets, OutOfRangeSamplesClampToEdgeBuckets) {
  Histogram h(0.0, 8.0, 8);
  h.add(-123.0);
  h.add(8.0);     // hi is NOT in range [lo, hi) — clamps to the last bucket
  h.add(1e9);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(7), 2u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(HistogramQuantile, ExactAtBucketEdges) {
  // 4 buckets over [0, 8), width 2, and a power-of-two count per bucket so
  // every cumulative boundary fraction (k/16) is dyadic.
  Histogram h(0.0, 8.0, 4);
  for (int i = 0; i < 4; ++i) h.add(0.5);   // bucket 0: 4 samples
  for (int i = 0; i < 4; ++i) h.add(2.5);   // bucket 1: 4
  for (int i = 0; i < 4; ++i) h.add(4.5);   // bucket 2: 4
  for (int i = 0; i < 4; ++i) h.add(6.5);   // bucket 3: 4
  ASSERT_EQ(h.total(), 16u);

  // q·16 on a cumulative boundary → exactly that bucket edge.
  EXPECT_EQ(h.quantile(0.25), 2.0);   // 4th sample boundary → edge of bucket 1
  EXPECT_EQ(h.quantile(0.5), 4.0);    // 8th → edge of bucket 2
  EXPECT_EQ(h.quantile(0.75), 6.0);   // 12th → edge of bucket 3
  EXPECT_EQ(h.quantile(1.0), 8.0);    // all samples → hi
  EXPECT_EQ(h.quantile(0.0), 0.0);    // zero target → lo (bucket 0's edge)

  // Off-edge targets interpolate uniformly inside the bucket: q = 1/8 is
  // halfway through bucket 0's 4 samples → lo + 0.5·width = 1.
  EXPECT_EQ(h.quantile(0.125), 1.0);
}

TEST(HistogramQuantile, EdgeExactnessHoldsForRandomShapes) {
  // Randomised pinning: random per-bucket counts with a power-of-two TOTAL
  // (256), so q = cum/256 is exactly representable and q·total recovers the
  // integer cum exactly.  Every cumulative boundary cum = sum of the first
  // i buckets must then map back to exactly bucket_lo(i).
  Rng rng(20260809);
  for (int round = 0; round < 50; ++round) {
    const double lo = static_cast<double>(rng.uniform(-4, 4)) * 0.5;
    const std::size_t buckets = static_cast<std::size_t>(rng.uniform(2, 16));
    const double hi = lo + static_cast<double>(buckets);  // width exactly 1
    Histogram h(lo, hi, buckets);

    constexpr std::uint64_t kTotal = 256;  // power of two: cum/256 is exact
    std::vector<std::uint64_t> per_bucket(buckets, 0);
    std::uint64_t assigned = 0;
    for (std::size_t i = 0; i + 1 < buckets; ++i) {
      per_bucket[i] = static_cast<std::uint64_t>(rng.uniform(1, 15));
      assigned += per_bucket[i];
    }
    per_bucket[buckets - 1] = kTotal - assigned;  // ≥ 256 − 15·15 > 0
    for (std::size_t i = 0; i < buckets; ++i) {
      for (std::uint64_t k = 0; k < per_bucket[i]; ++k) {
        h.add(lo + static_cast<double>(i) + 0.5);  // mid-bucket, unambiguous
      }
    }
    ASSERT_EQ(h.total(), kTotal);

    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < buckets; ++i) {
      if (cum > 0) {
        const double q = static_cast<double>(cum) / static_cast<double>(kTotal);
        EXPECT_EQ(h.quantile(q), h.bucket_lo(i))
            << "round " << round << " edge " << i << " cum " << cum;
      }
      cum += per_bucket[i];
    }
    EXPECT_EQ(h.quantile(1.0), hi);
  }
}

TEST(HistogramQuantile, EmptyHistogramReturnsLo) {
  Histogram h(2.0, 10.0, 4);
  EXPECT_EQ(h.quantile(0.0), 2.0);
  EXPECT_EQ(h.quantile(0.5), 2.0);
  EXPECT_EQ(h.quantile(1.0), 2.0);
}

TEST(SampleSetQuantile, ExactAtSampleRanks) {
  // The header's companion promise: q = k/(n−1) returns exactly the k-th
  // sorted sample.
  SampleSet s;
  for (double v : {5.0, 1.0, 9.0, 3.0, 7.0}) s.add(v);  // n = 5, ranks q=k/4
  EXPECT_EQ(s.quantile(0.0), 1.0);
  EXPECT_EQ(s.quantile(0.25), 3.0);
  EXPECT_EQ(s.quantile(0.5), 5.0);
  EXPECT_EQ(s.quantile(0.75), 7.0);
  EXPECT_EQ(s.quantile(1.0), 9.0);
}

}  // namespace
}  // namespace rtpb
