#include "sched/analysis.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace rtpb::sched {
namespace {

TaskSpec task(TaskId id, Duration period, Duration wcet) {
  TaskSpec t;
  t.id = id;
  t.period = period;
  t.wcet = wcet;
  return t;
}

TEST(Analysis, LiuLaylandBound) {
  EXPECT_DOUBLE_EQ(liu_layland_bound(1), 1.0);
  EXPECT_NEAR(liu_layland_bound(2), 0.8284, 1e-3);
  EXPECT_NEAR(liu_layland_bound(3), 0.7798, 1e-3);
  // Approaches ln 2 from above.
  EXPECT_GT(liu_layland_bound(100), std::log(2.0));
  EXPECT_NEAR(liu_layland_bound(1000), std::log(2.0), 1e-3);
}

TEST(Analysis, TotalUtilization) {
  TaskSet set{task(1, millis(10), millis(2)), task(2, millis(20), millis(5))};
  EXPECT_NEAR(total_utilization(set), 0.45, 1e-12);
}

TEST(Analysis, RmUtilizationTestAcceptsLowUtilization) {
  TaskSet set{task(1, millis(10), millis(2)), task(2, millis(20), millis(4))};  // U = 0.4
  EXPECT_TRUE(rm_utilization_test(set));
}

TEST(Analysis, RmUtilizationTestRejectsOverloadedSet) {
  TaskSet set{task(1, millis(10), millis(6)), task(2, millis(20), millis(8))};  // U = 1.0
  EXPECT_FALSE(rm_utilization_test(set));
}

TEST(Analysis, HyperbolicBoundDominatesUtilizationBound) {
  // U = 0.5 + 0.33 = 0.83 exceeds the 2-task Liu-Layland bound (0.8284),
  // but the hyperbolic product 1.5 * 1.33 = 1.995 ≤ 2 still accepts.
  TaskSet set{task(1, millis(10), millis(5)), task(2, millis(100), millis(33))};
  EXPECT_FALSE(rm_utilization_test(set));
  EXPECT_TRUE(rm_hyperbolic_test(set));
  // Any set the utilization bound accepts, hyperbolic accepts too.
  TaskSet easy{task(1, millis(10), millis(2)), task(2, millis(20), millis(4))};
  EXPECT_TRUE(rm_utilization_test(easy));
  EXPECT_TRUE(rm_hyperbolic_test(easy));
}

TEST(Analysis, ResponseTimeAnalysisExactCase) {
  // Lehoczky's classic example: T1=(100,40), T2=(150,40), T3=(350,100).
  TaskSet set{task(1, millis(100), millis(40)), task(2, millis(150), millis(40)),
              task(3, millis(350), millis(100))};
  auto rt = rm_response_times(set);
  ASSERT_TRUE(rt.has_value());
  EXPECT_EQ((*rt)[0], millis(40));
  EXPECT_EQ((*rt)[1], millis(80));
  // T3: R = 100 + ceil(R/100)*40 + ceil(R/150)*40 -> converges at 300.
  EXPECT_EQ((*rt)[2], millis(300));
}

TEST(Analysis, ResponseTimeAnalysisDetectsUnschedulable) {
  TaskSet set{task(1, millis(10), millis(6)), task(2, millis(14), millis(7))};
  EXPECT_FALSE(rm_exact_test(set));
}

TEST(Analysis, ResponseTimeAnalysisAcceptsHarmonicFullUtilization) {
  // Harmonic periods: RM schedules up to U = 1.
  TaskSet set{task(1, millis(10), millis(5)), task(2, millis(20), millis(10))};
  EXPECT_TRUE(rm_exact_test(set));
  EXPECT_FALSE(rm_utilization_test(set));  // utilization bound is pessimistic here
}

TEST(Analysis, EdfTest) {
  TaskSet ok{task(1, millis(10), millis(5)), task(2, millis(20), millis(10))};  // U = 1
  TaskSet bad{task(1, millis(10), millis(6)), task(2, millis(20), millis(10))};
  EXPECT_TRUE(edf_test(ok));
  EXPECT_FALSE(edf_test(bad));
}

TEST(Analysis, DcsSpecializationProducesHarmonicPeriods) {
  TaskSet set{task(1, millis(10), millis(1)), task(2, millis(25), millis(2)),
              task(3, millis(70), millis(5))};
  const DcsSpecialization s = dcs_specialize(set);
  ASSERT_EQ(s.periods.size(), 3u);
  for (std::size_t i = 0; i < set.size(); ++i) {
    EXPECT_LE(s.periods[i], set[i].period) << i;
    // Every specialised period is base * 2^k.
    std::int64_t ratio = s.periods[i].nanos() / s.base.nanos();
    EXPECT_EQ(s.periods[i].nanos() % s.base.nanos(), 0) << i;
    EXPECT_EQ(ratio & (ratio - 1), 0) << "ratio must be a power of two";
  }
  EXPECT_TRUE(s.feasible());
}

TEST(Analysis, DcsSpecializationDensityNeverBelowOriginal) {
  TaskSet set{task(1, millis(12), millis(1)), task(2, millis(17), millis(1))};
  const DcsSpecialization s = dcs_specialize(set);
  EXPECT_GE(s.density, total_utilization(set) - 1e-12);
}

TEST(Analysis, DcsZeroVarianceConditionMatchesPaperFormula) {
  TaskSet set{task(1, millis(10), millis(2)), task(2, millis(20), millis(4))};  // U=0.4
  EXPECT_TRUE(dcs_zero_variance_condition(set));
  TaskSet heavy{task(1, millis(10), millis(5)), task(2, millis(20), millis(8))};  // U=0.9
  EXPECT_FALSE(dcs_zero_variance_condition(heavy));
}

TEST(Analysis, PhaseVarianceBounds) {
  const TaskSpec t = task(1, millis(10), millis(2));
  EXPECT_EQ(phase_variance_bound_universal(t), millis(8));
  // EDF at 50% utilisation: 0.5*10 - 2 = 3ms.
  EXPECT_EQ(phase_variance_bound_edf(t, 0.5), millis(3));
  // RM bound is looser (divides by n(2^{1/n}-1) < 1).
  EXPECT_GT(phase_variance_bound_rm(t, 0.5, 3), phase_variance_bound_edf(t, 0.5));
  // Bounds clamp at zero.
  EXPECT_EQ(phase_variance_bound_edf(t, 0.1), Duration::zero());
}

TEST(Analysis, EmptyTaskSet) {
  TaskSet empty;
  EXPECT_TRUE(rm_utilization_test(empty));
  EXPECT_TRUE(rm_exact_test(empty));
  EXPECT_TRUE(edf_test(empty));
  EXPECT_DOUBLE_EQ(total_utilization(empty), 0.0);
}

}  // namespace
}  // namespace rtpb::sched
