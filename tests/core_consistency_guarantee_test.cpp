// End-to-end checks that the service honours the paper's analytic
// guarantees: the Theorem 5 frontier (sufficiency side), scheduling-policy
// comparisons, and the variance-aware admission extension.
#include <gtest/gtest.h>

#include "core/rtpb.hpp"

namespace rtpb::core {
namespace {

ObjectSpec make_spec(ObjectId id, Duration p, Duration delta_p, Duration delta_b) {
  ObjectSpec s;
  s.id = id;
  s.name = "obj" + std::to_string(id);
  s.client_period = p;
  s.client_exec = micros(200);
  s.update_exec = micros(200);
  s.delta_primary = delta_p;
  s.delta_backup = delta_b;
  return s;
}

struct FrontierParam {
  double fraction;      ///< r as a fraction of the window frontier
  bool expect_violations;
};

class FrontierSweep : public ::testing::TestWithParam<FrontierParam> {};

TEST_P(FrontierSweep, SufficiencyHolds) {
  // With no loss, r strictly below (window − ℓ − p) must yield zero
  // violations (Theorem 5's machinery, window form); see
  // bench/val_consistency_frontier for the full sweep with the necessity
  // discussion.
  const FrontierParam param = GetParam();
  const Duration window = millis(80);
  const Duration p = millis(10);

  ServiceParams params;
  params.seed = 77;
  params.link.propagation = millis(1);
  params.link.jitter = micros(200);
  // This validates the raw Theorem 5 frontier: graceful degradation would
  // renegotiate the window before the over-frontier cases violate, hiding
  // exactly the effect the necessity side asserts.
  params.config.degradation_enabled = false;

  Duration ell;
  {
    RtpbService probe(params);
    ell = probe.link_delay_bound();
  }
  const Duration frontier = window - ell - p;
  params.config.update_period_override = frontier.scaled(param.fraction);

  RtpbService service(params);
  service.start();
  ASSERT_TRUE(service.register_object(make_spec(1, p, millis(20), millis(20) + window)).ok());
  service.warm_up(seconds(1));
  service.run_for(seconds(20));
  service.finish();

  if (param.expect_violations) {
    EXPECT_GT(service.metrics().inconsistency_intervals(), 0u);
  } else {
    EXPECT_EQ(service.metrics().inconsistency_intervals(), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(AroundFrontier, FrontierSweep,
                         ::testing::Values(FrontierParam{0.5, false},
                                           FrontierParam{0.8, false},
                                           FrontierParam{0.95, false},
                                           FrontierParam{1.5, true},
                                           FrontierParam{2.0, true}),
                         [](const ::testing::TestParamInfo<FrontierParam>& param_info) {
                           return "frac" +
                                  std::to_string(static_cast<int>(param_info.param.fraction * 100));
                         });

class PolicyMatrix : public ::testing::TestWithParam<sched::Policy> {};

TEST_P(PolicyMatrix, ServiceHealthyUnderEveryCpuPolicy) {
  ServiceParams params;
  params.seed = 31;
  params.link.propagation = millis(1);
  params.config.cpu_policy = GetParam();
  RtpbService service(params);
  service.start();
  for (ObjectId id = 1; id <= 4; ++id) {
    ASSERT_TRUE(
        service.register_object(make_spec(id, millis(10), millis(20), millis(120))).ok());
  }
  service.warm_up(seconds(1));
  service.run_for(seconds(5));
  service.finish();
  EXPECT_EQ(service.metrics().inconsistency_intervals(), 0u);
  EXPECT_GT(service.backup().updates_applied(), 100u);
  EXPECT_LT(service.metrics().response_times().quantile(0.99), 10.0);
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, PolicyMatrix,
                         ::testing::Values(sched::Policy::kFifo, sched::Policy::kRateMonotonic,
                                           sched::Policy::kEdf, sched::Policy::kDcsSr),
                         [](const ::testing::TestParamInfo<sched::Policy>& param_info) {
                           std::string name(sched::policy_name(param_info.param));
                           std::erase(name, '-');
                           return name;
                         });

TEST(ConsistencyGuarantee, VarianceAwareModeNeverLoosensPeriods) {
  for (bool aware : {false, true}) {
    ServiceParams params;
    params.seed = 41;
    params.config.variance_aware_admission = aware;
    RtpbService service(params);
    service.start();
    const auto r = service.register_object(make_spec(1, millis(10), millis(20), millis(100)));
    ASSERT_TRUE(r.ok());
    if (aware) {
      // Cap (δ−ℓ−p+e')/2 < (δ−ℓ)/2 always.
      EXPECT_LT(r.value().update_period, millis(39));
    } else {
      EXPECT_GT(r.value().update_period, millis(38));
    }
  }
}

TEST(ConsistencyGuarantee, InterObjectBoundHoldsOnBackupViews) {
  // Theorem 6 end-to-end: with δ_ij accepted, the backup's two object
  // views never diverge by more than δ_ij (sampled every client period).
  ServiceParams params;
  params.seed = 43;
  RtpbService service(params);
  service.start();
  ASSERT_TRUE(service.register_object(make_spec(1, millis(10), millis(20), millis(100))).ok());
  ASSERT_TRUE(service.register_object(make_spec(2, millis(10), millis(20), millis(100))).ok());
  const Duration delta_ij = millis(30);
  ASSERT_TRUE(service.add_constraint({1, 2, delta_ij}).ok());
  service.run_for(seconds(1));

  Duration worst = Duration::zero();
  for (int step = 0; step < 2000; ++step) {
    service.run_for(millis(10));
    const auto a = service.backup().read(1);
    const auto b = service.backup().read(2);
    ASSERT_TRUE(a && b);
    if (a->version == 0 || b->version == 0) continue;
    worst = std::max(worst, (a->origin_timestamp - b->origin_timestamp).abs());
  }
  EXPECT_LE(worst, delta_ij);
}

}  // namespace
}  // namespace rtpb::core
