#include "sched/gantt.hpp"

#include <gtest/gtest.h>

namespace rtpb::sched {
namespace {

TaskSpec task(const char* name, Duration period, Duration wcet) {
  TaskSpec t;
  t.name = name;
  t.period = period;
  t.wcet = wcet;
  return t;
}

TEST(Gantt, SingleTaskPattern) {
  TaskSet set{task("tick", millis(10), millis(3))};
  GanttOptions options;
  options.horizon = millis(20);
  options.show_releases = false;
  const std::string chart = render_gantt(set, Policy::kRateMonotonic, options);
  // Executes in the first 3 columns of each 10-column period.
  EXPECT_NE(chart.find("tick |###.......###.......|"), std::string::npos) << chart;
  EXPECT_NE(chart.find("idle |   _______   _______|"), std::string::npos) << chart;
}

TEST(Gantt, PreemptionVisible) {
  TaskSet set{task("hi", millis(10), millis(2)), task("lo", millis(20), millis(10))};
  GanttOptions options;
  options.horizon = millis(20);
  options.show_releases = false;
  const std::string chart = render_gantt(set, Policy::kRateMonotonic, options);
  // hi runs 0-2 and 10-12; lo runs 2-10, is preempted at 10, resumes 12-14.
  EXPECT_NE(chart.find("hi   |##........##........|"), std::string::npos) << chart;
  EXPECT_NE(chart.find("lo   |..########..##......|"), std::string::npos) << chart;
}

TEST(Gantt, ReleaseMarkersAtPeriodBoundaries) {
  TaskSet set{task("t", millis(10), millis(1))};
  GanttOptions options;
  options.horizon = millis(30);
  options.show_releases = true;
  const std::string chart = render_gantt(set, Policy::kRateMonotonic, options);
  EXPECT_NE(chart.find("|^         ^         ^         |"), std::string::npos) << chart;
}

TEST(Gantt, DcsShowsHarmonicCyclicPattern) {
  TaskSet set{task("a", millis(10), millis(2)), task("b", millis(25), millis(3))};
  GanttOptions options;
  options.horizon = millis(40);
  options.show_releases = false;
  const std::string chart = render_gantt(set, Policy::kDcsSr, options);
  // b's period specialises 25 -> 20; the pattern repeats every 20 columns,
  // with b completing at a fixed offset in every one of its periods.
  EXPECT_NE(chart.find("a    |##........##........##........##........|"), std::string::npos)
      << chart;
  EXPECT_NE(chart.find("b    |..###.................###...............|"), std::string::npos)
      << chart;
}

TEST(Gantt, HeaderNamesPolicy) {
  TaskSet set{task("x", millis(10), millis(1))};
  EXPECT_NE(render_gantt(set, Policy::kEdf).find("policy: EDF"), std::string::npos);
}

}  // namespace
}  // namespace rtpb::sched
