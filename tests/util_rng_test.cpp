#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <set>

namespace rtpb {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInRange) {
  Rng r(7);
  for (int i = 0; i < 10'000; ++i) {
    const auto x = r.uniform(-3, 11);
    EXPECT_GE(x, -3);
    EXPECT_LE(x, 11);
  }
}

TEST(Rng, UniformCoversRange) {
  Rng r(9);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(r.uniform(0, 9));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, UniformDegenerateRange) {
  Rng r(11);
  EXPECT_EQ(r.uniform(5, 5), 5);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng r(13);
  for (int i = 0; i < 10'000; ++i) {
    const double x = r.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, BernoulliEdgeCases) {
  Rng r(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.bernoulli(0.0));
    EXPECT_TRUE(r.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliFrequencyMatchesP) {
  Rng r(19);
  int hits = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) {
    if (r.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ForkedStreamsAreIndependentButDeterministic) {
  Rng parent1(123), parent2(123);
  Rng child1 = parent1.fork();
  Rng child2 = parent2.fork();
  for (int i = 0; i < 50; ++i) EXPECT_EQ(child1.next_u64(), child2.next_u64());
}

TEST(Rng, MeanOfUniformReal) {
  Rng r(23);
  double sum = 0.0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) sum += r.uniform_real(10.0, 20.0);
  EXPECT_NEAR(sum / n, 15.0, 0.1);
}

}  // namespace
}  // namespace rtpb
