// Link-level chaos knobs: duplication, FIFO-exempt reordering, correlated
// burst loss and single-bit corruption.  Each knob's statistics must count
// exactly what happened, because the chaos oracles reconcile them against
// transport-layer counters.
#include "net/network.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace rtpb::net {
namespace {

struct TwoNodes {
  sim::Simulator sim{1234};
  Network network{sim};
  std::vector<Packet> at_a;
  std::vector<Packet> at_b;
  NodeId a;
  NodeId b;

  explicit TwoNodes(LinkParams params = {}) {
    a = network.add_node([this](const Packet& p) { at_a.push_back(p); });
    b = network.add_node([this](const Packet& p) { at_b.push_back(p); });
    network.connect(a, b, params);
  }
};

TEST(LinkFaults, SetFaultsAppliesBothDirections) {
  TwoNodes env;
  LinkFaults f;
  f.duplicate_probability = 0.25;
  env.network.set_faults(env.a, env.b, f);
  EXPECT_EQ(env.network.faults(env.a, env.b).duplicate_probability, 0.25);
  EXPECT_EQ(env.network.faults(env.b, env.a).duplicate_probability, 0.25);
}

TEST(LinkFaults, InvalidProbabilityDies) {
  TwoNodes env;
  LinkFaults f;
  f.corrupt_probability = 1.5;
  EXPECT_DEATH(env.network.set_faults(env.a, env.b, f), "precondition");
}

TEST(LinkFaults, CertainDuplicationDeliversEveryFrameTwice) {
  TwoNodes env;
  LinkFaults f;
  f.duplicate_probability = 1.0;
  env.network.set_faults(env.a, env.b, f);

  const int n = 50;
  for (int i = 0; i < n; ++i) {
    env.network.send(env.a, env.b, Bytes{static_cast<std::uint8_t>(i)});
  }
  env.sim.run();
  EXPECT_EQ(env.at_b.size(), 2u * n);
  EXPECT_EQ(env.network.stats(env.a, env.b).duplicated, static_cast<std::uint64_t>(n));
  EXPECT_EQ(env.network.stats(env.a, env.b).delivered, 2u * n);
}

TEST(LinkFaults, ReorderingBreaksFifoDelivery) {
  LinkParams p;
  p.propagation = millis(1);
  TwoNodes env(p);
  LinkFaults f;
  f.reorder_probability = 0.3;
  f.reorder_extra = millis(5);
  env.network.set_faults(env.a, env.b, f);

  // Back-to-back sends: without the knob, FIFO clamping forbids overtaking.
  const int n = 200;
  for (int i = 0; i < n; ++i) {
    env.network.send(env.a, env.b, Bytes{static_cast<std::uint8_t>(i)});
  }
  env.sim.run();
  ASSERT_EQ(env.at_b.size(), static_cast<std::size_t>(n));
  EXPECT_GT(env.network.stats(env.a, env.b).reordered, 0u);

  bool out_of_order = false;
  for (std::size_t i = 1; i < env.at_b.size(); ++i) {
    if (env.at_b[i].payload[0] < env.at_b[i - 1].payload[0]) out_of_order = true;
  }
  EXPECT_TRUE(out_of_order) << "reordered frames should be observably overtaken";
}

TEST(LinkFaults, WithoutReorderKnobDeliveryStaysFifo) {
  LinkParams p;
  p.propagation = millis(1);
  p.jitter = millis(1);  // jitter alone must not break FIFO
  TwoNodes env(p);
  const int n = 200;
  for (int i = 0; i < n; ++i) {
    env.network.send(env.a, env.b, Bytes{static_cast<std::uint8_t>(i)});
  }
  env.sim.run();
  ASSERT_EQ(env.at_b.size(), static_cast<std::size_t>(n));
  for (std::size_t i = 1; i < env.at_b.size(); ++i) {
    EXPECT_GE(env.at_b[i].payload[0], env.at_b[i - 1].payload[0]);
  }
}

TEST(LinkFaults, BurstLossKillsConsecutiveFrames) {
  TwoNodes env;
  LinkFaults f;
  f.burst_loss_probability = 1.0;  // every frame opens (or continues) a burst
  f.burst_length = 4;
  env.network.set_faults(env.a, env.b, f);

  for (int i = 0; i < 8; ++i) env.network.send(env.a, env.b, Bytes{1});
  env.sim.run();
  EXPECT_TRUE(env.at_b.empty());
  EXPECT_EQ(env.network.stats(env.a, env.b).burst_dropped, 8u);
}

TEST(LinkFaults, ClearingBurstKnobClosesAnOpenBurst) {
  TwoNodes env;
  LinkFaults f;
  f.burst_loss_probability = 1.0;
  f.burst_length = 100;
  env.network.set_faults(env.a, env.b, f);
  env.network.send(env.a, env.b, Bytes{1});  // opens a 100-frame burst
  env.sim.run();
  EXPECT_TRUE(env.at_b.empty());

  env.network.set_faults(env.a, env.b, LinkFaults{});  // chaos interval ends
  env.network.send(env.a, env.b, Bytes{2});
  env.sim.run();
  ASSERT_EQ(env.at_b.size(), 1u) << "a stale open burst must not outlive the knob";
}

TEST(LinkFaults, CorruptionFlipsExactlyOneBitAndStillDelivers) {
  TwoNodes env;
  LinkFaults f;
  f.corrupt_probability = 1.0;
  env.network.set_faults(env.a, env.b, f);

  const Bytes sent(32, 0xAB);
  const int n = 20;
  for (int i = 0; i < n; ++i) env.network.send(env.a, env.b, sent);
  env.sim.run();
  ASSERT_EQ(env.at_b.size(), static_cast<std::size_t>(n));
  EXPECT_EQ(env.network.stats(env.a, env.b).corrupted, static_cast<std::uint64_t>(n));

  for (const Packet& got : env.at_b) {
    int flipped_bits = 0;
    ASSERT_EQ(got.payload.size(), sent.size());
    for (std::size_t i = 0; i < sent.size(); ++i) {
      std::uint8_t diff = static_cast<std::uint8_t>(got.payload[i] ^ sent[i]);
      while (diff != 0) {
        flipped_bits += diff & 1;
        diff = static_cast<std::uint8_t>(diff >> 1);
      }
    }
    EXPECT_EQ(flipped_bits, 1);
  }
}

TEST(LinkFaults, CorruptSkipSparesTheFrontBytes) {
  TwoNodes env;
  LinkFaults f;
  f.corrupt_probability = 1.0;
  f.corrupt_skip = 31;  // only the last byte of a 32-byte frame is fair game
  env.network.set_faults(env.a, env.b, f);

  const Bytes sent(32, 0x00);
  for (int i = 0; i < 20; ++i) env.network.send(env.a, env.b, sent);
  env.sim.run();
  ASSERT_EQ(env.at_b.size(), 20u);
  for (const Packet& got : env.at_b) {
    for (std::size_t i = 0; i + 1 < sent.size(); ++i) {
      EXPECT_EQ(got.payload[i], sent[i]) << "byte " << i << " should be spared";
    }
    EXPECT_NE(got.payload[31], sent[31]);
  }
}

TEST(LinkFaults, FaultStatisticsStartAtZero) {
  TwoNodes env;
  const LinkStats& s = env.network.stats(env.a, env.b);
  EXPECT_EQ(s.burst_dropped, 0u);
  EXPECT_EQ(s.duplicated, 0u);
  EXPECT_EQ(s.reordered, 0u);
  EXPECT_EQ(s.corrupted, 0u);
}

}  // namespace
}  // namespace rtpb::net
