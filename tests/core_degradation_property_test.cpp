// Property tests for the degradation measurement/policy core: randomized
// sample streams checked against the algebraic invariants of RFC 6298
// RTT estimation, capped-and-jittered exponential backoff, and the
// overload controller's hysteresis.  Complements core_degradation_test's
// example-based coverage — these run thousands of random streams and
// assert properties that must hold for EVERY stream.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "core/degradation.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace rtpb {
namespace {

Duration random_rtt(Rng& rng) {
  // 50 µs .. 80 ms, log-ish spread: covers LAN and badly congested paths.
  return micros(rng.uniform(50, 80'000));
}

TEST(RttEstimatorProperty, RtoIsAlwaysSrttPlusFourRttvar) {
  Rng rng(0xE57);
  for (int stream = 0; stream < 200; ++stream) {
    core::RttEstimator est;
    EXPECT_EQ(est.rto(), Duration::zero());  // no samples yet
    const int n = static_cast<int>(rng.uniform(1, 40));
    for (int i = 0; i < n; ++i) {
      est.sample(random_rtt(rng));
      // The defining identity, after every sample.
      EXPECT_EQ(est.rto(), est.srtt() + est.rttvar() * 4);
      // RTO can never undershoot the smoothed estimate: the 4·RTTVAR term
      // is nonnegative because RTTVAR is a mean of absolute deviations.
      EXPECT_GE(est.rttvar(), Duration::zero());
      EXPECT_GE(est.rto(), est.srtt());
    }
  }
}

TEST(RttEstimatorProperty, FirstSampleSeedsPerRfc6298) {
  Rng rng(0x6298);
  for (int trial = 0; trial < 500; ++trial) {
    core::RttEstimator est;
    const Duration rtt = random_rtt(rng);
    est.sample(rtt);
    EXPECT_EQ(est.srtt(), rtt);
    EXPECT_EQ(est.rttvar(), rtt / 2);
    EXPECT_EQ(est.rto(), rtt + (rtt / 2) * 4);
  }
}

TEST(RttEstimatorProperty, SrttStaysInsideSampleEnvelope) {
  // SRTT is a convex combination of samples, so it can never leave the
  // [min, max] envelope of what was fed in.  (RTTVAR can exceed individual
  // deviations transiently, but SRTT escaping the envelope would mean the
  // EWMA gains are wrong.)
  Rng rng(0xEAE);
  for (int stream = 0; stream < 200; ++stream) {
    core::RttEstimator est;
    Duration lo = Duration::max();
    Duration hi = Duration::zero();
    const int n = static_cast<int>(rng.uniform(1, 60));
    for (int i = 0; i < n; ++i) {
      const Duration rtt = random_rtt(rng);
      lo = std::min(lo, rtt);
      hi = std::max(hi, rtt);
      est.sample(rtt);
      EXPECT_GE(est.srtt(), lo - nanos(1));
      EXPECT_LE(est.srtt(), hi + nanos(1));
    }
  }
}

TEST(RttEstimatorProperty, ConstantStreamConvergesToZeroVariance) {
  // Feed a constant RTT long enough and RTTVAR must decay towards zero
  // (Karn suppression of ambiguous samples means real streams ARE often
  // constant-ish): RTO then converges to SRTT = the true RTT.
  core::RttEstimator est;
  const Duration rtt = micros(750);
  for (int i = 0; i < 200; ++i) est.sample(rtt);
  EXPECT_EQ(est.srtt(), rtt);
  EXPECT_LT(est.rttvar(), micros(2));
  EXPECT_LT(est.rto() - rtt, micros(8));
}

TEST(RttEstimatorProperty, ResetForgetsEverything) {
  Rng rng(0xF0);
  core::RttEstimator est;
  for (int i = 0; i < 20; ++i) est.sample(random_rtt(rng));
  est.reset();
  EXPECT_FALSE(est.has_sample());
  EXPECT_EQ(est.rto(), Duration::zero());
  const Duration rtt = micros(321);
  est.sample(rtt);  // first-sample rule applies again after reset
  EXPECT_EQ(est.srtt(), rtt);
  EXPECT_EQ(est.rttvar(), rtt / 2);
}

TEST(BackoffPolicyProperty, DelaysStayInsideJitteredCappedLadder) {
  Rng seeds(0xBAC0FF);
  for (int trial = 0; trial < 100; ++trial) {
    const Duration base = micros(seeds.uniform(100, 20'000));
    const Duration cap = base * seeds.uniform(4, 5000);
    const double jitter = 0.25;
    core::BackoffPolicy policy({base, cap, jitter});
    Rng rng(static_cast<std::uint64_t>(seeds.uniform(1, 1 << 30)));
    for (std::uint32_t k = 0; k < 40; ++k) {
      EXPECT_EQ(policy.level(), std::min(k, 16u));
      const Duration d = policy.next(rng);
      // The ideal rung is base·2^min(k,16), capped BEFORE jitter: every
      // drawn delay lives in [ideal·(1-j), ideal·(1+j)] with a little
      // slack for the centi-precision jitter draw.
      const int shift = static_cast<int>(std::min(k, 16u));
      const Duration ideal = std::min(base * (std::int64_t{1} << shift), cap);
      EXPECT_GE(d, ideal.scaled(1.0 - jitter - 0.011)) << "attempt " << k;
      EXPECT_LE(d, ideal.scaled(1.0 + jitter + 0.011)) << "attempt " << k;
    }
  }
}

TEST(BackoffPolicyProperty, LevelCapMakesTailDelaysIdenticallyDistributed) {
  // Past level 16 the ladder must flatten: with jitter disabled the delay
  // is exactly min(base·2^16, cap) forever — no overflow, no runaway.
  core::BackoffPolicy policy({micros(10), seconds(3600), 0.0});
  Rng rng(1);
  Duration last{};
  for (int k = 0; k < 80; ++k) last = policy.next(rng);
  EXPECT_EQ(policy.level(), 16u);
  EXPECT_EQ(last, micros(10) * (std::int64_t{1} << 16));
  EXPECT_EQ(policy.next(rng), last);
}

TEST(BackoffPolicyProperty, DeterministicGivenSameRngSeed) {
  const core::BackoffPolicy::Params params{millis(1), seconds(10), 0.25};
  std::vector<Duration> a;
  std::vector<Duration> b;
  for (auto* out : {&a, &b}) {
    core::BackoffPolicy policy(params);
    Rng rng(0x5EED);
    for (int k = 0; k < 30; ++k) out->push_back(policy.next(rng));
  }
  EXPECT_EQ(a, b);
}

TEST(BackoffPolicyProperty, ResetRestartsTheLadder) {
  core::BackoffPolicy policy({millis(2), seconds(10), 0.0});
  Rng rng(7);
  (void)policy.next(rng);
  (void)policy.next(rng);
  (void)policy.next(rng);
  EXPECT_EQ(policy.level(), 3u);
  policy.reset();
  EXPECT_EQ(policy.level(), 0u);
  EXPECT_EQ(policy.next(rng), millis(2));  // back to the first rung
}

TEST(DegradationControllerProperty, OverloadLatchesForExactlyTheHoldWindow) {
  // For any trigger kind and any trigger time: overloaded() holds through
  // [t, t + hold] and clears strictly after, provided no further trigger.
  const Duration hold = millis(200);
  Rng rng(0xD36);
  for (int trial = 0; trial < 200; ++trial) {
    core::DegradationController ctl({micros(400), 4.0, 8, hold});
    const TimePoint t0{rng.uniform(0, 1'000'000'000)};
    EXPECT_FALSE(ctl.overloaded(t0));
    EXPECT_EQ(ctl.calm_for(t0), Duration::max());  // never triggered
    switch (rng.uniform(0, 2)) {
      case 0: ctl.on_missed_window(t0); break;
      case 1: ctl.on_queue_depth(t0, 9); break;  // depth 9 > 8
      default:
        // One huge RTT sample: first sample seeds SRTT directly, far above
        // rtt_factor × baseline.
        ctl.on_rtt_sample(t0, millis(50));
        break;
    }
    EXPECT_TRUE(ctl.overloaded(t0));
    EXPECT_TRUE(ctl.overloaded(t0 + hold));
    EXPECT_FALSE(ctl.overloaded(t0 + hold + nanos(1)));
    EXPECT_EQ(ctl.calm_for(t0 + hold + millis(5)), hold + millis(5));
  }
}

TEST(DegradationControllerProperty, BenignSignalsNeverTrigger) {
  // Below-threshold queue depths and baseline RTTs must never enter
  // overload, no matter how many arrive or in what order.
  Rng rng(0xBE9);
  core::DegradationController ctl({micros(400), 4.0, 8, millis(200)});
  TimePoint now{};
  for (int i = 0; i < 2000; ++i) {
    now += micros(rng.uniform(1, 500));
    if (rng.bernoulli(0.5)) {
      ctl.on_queue_depth(now, static_cast<std::size_t>(rng.uniform(0, 8)));
    } else {
      // Samples at or below the no-queueing baseline keep SRTT ≤ baseline
      // < factor × baseline.
      ctl.on_rtt_sample(now, micros(rng.uniform(50, 400)));
    }
    ASSERT_FALSE(ctl.overloaded(now)) << "step " << i;
  }
  EXPECT_EQ(ctl.triggers(), 0u);
  EXPECT_EQ(ctl.calm_for(now), Duration::max());
}

TEST(DegradationControllerProperty, RetriggerExtendsTheHold) {
  const Duration hold = millis(100);
  core::DegradationController ctl({micros(400), 4.0, 8, hold});
  const TimePoint t0{1'000'000};
  ctl.on_missed_window(t0);
  const TimePoint t1 = t0 + millis(80);  // still inside the first hold
  ctl.on_missed_window(t1);
  EXPECT_TRUE(ctl.overloaded(t1 + millis(90)));   // t0's hold alone would have cleared
  EXPECT_FALSE(ctl.overloaded(t1 + hold + nanos(1)));
  EXPECT_EQ(ctl.triggers(), 2u);
}

TEST(DegradationControllerProperty, ResetClearsStateAndHistory) {
  core::DegradationController ctl({micros(400), 4.0, 8, millis(200)});
  const TimePoint t0{5'000'000};
  ctl.on_missed_window(t0);
  ctl.on_rtt_sample(t0, millis(20));
  EXPECT_TRUE(ctl.overloaded(t0));
  ctl.reset();
  EXPECT_FALSE(ctl.overloaded(t0));
  EXPECT_EQ(ctl.calm_for(t0), Duration::max());
  EXPECT_EQ(ctl.triggers(), 0u);
  EXPECT_EQ(ctl.missed_windows(), 0u);
  EXPECT_FALSE(ctl.rtt().has_sample());
}

}  // namespace
}  // namespace rtpb
