#include "core/metrics.hpp"

#include <gtest/gtest.h>

namespace rtpb::core {
namespace {

TimePoint at(std::int64_t ms) { return TimePoint::zero() + millis(ms); }

TEST(Metrics, ResponseTimes) {
  Metrics m;
  m.record_response(millis(2));
  m.record_response(millis(4));
  EXPECT_EQ(m.response_times().count(), 2u);
  EXPECT_DOUBLE_EQ(m.response_times().mean(), 3.0);
}

TEST(Metrics, DistanceIsPrimaryMinusBackupOrigin) {
  Metrics m;
  m.track_object(1, millis(50));
  m.on_primary_write(1, at(10));
  m.on_backup_apply(1, at(10), at(12));
  // Primary advances twice without the backup catching up.
  m.on_primary_write(1, at(20));
  m.on_primary_write(1, at(30));
  EXPECT_EQ(m.max_distance(1), millis(20));  // 30 - 10
  EXPECT_DOUBLE_EQ(m.average_max_distance_ms(), 20.0);
}

TEST(Metrics, DistanceDropsWhenBackupCatchesUp) {
  Metrics m;
  m.track_object(1, millis(500));
  m.on_primary_write(1, at(10));
  m.on_backup_apply(1, at(10), at(12));
  m.on_primary_write(1, at(100));           // distance 90
  m.on_backup_apply(1, at(100), at(104));   // distance back to 0
  m.on_primary_write(1, at(110));           // distance 10
  EXPECT_EQ(m.max_distance(1), millis(90));
}

TEST(Metrics, DistanceIgnoredUntilBothSidesSeen) {
  Metrics m;
  m.track_object(1, millis(50));
  m.on_primary_write(1, at(100));
  EXPECT_EQ(m.max_distance(1), Duration::zero());
  // finish() charges objects whose backup never applied anything.
  m.finish(at(200));
  EXPECT_GT(m.max_distance(1), Duration::zero());
}

TEST(Metrics, ViolationOpensWhenDistanceExceedsWindow) {
  Metrics m;
  m.track_object(1, millis(15));
  m.on_primary_write(1, at(10));
  m.on_backup_apply(1, at(10), at(11));
  m.on_primary_write(1, at(30));            // distance 20 > 15: opens at 30
  EXPECT_TRUE(m.in_violation(1));
  m.on_backup_apply(1, at(30), at(34));     // closes at 34
  EXPECT_FALSE(m.in_violation(1));
  m.finish(at(40));
  EXPECT_EQ(m.inconsistency_intervals(), 1u);
  EXPECT_EQ(m.total_inconsistency(), millis(4));
  EXPECT_DOUBLE_EQ(m.mean_inconsistency_duration_ms(), 4.0);
}

TEST(Metrics, ViolationStillOpenAtFinishIsCounted) {
  Metrics m;
  m.track_object(1, millis(5));
  m.on_primary_write(1, at(10));
  m.on_backup_apply(1, at(10), at(11));
  m.on_primary_write(1, at(20));  // distance 10 > 5: opens
  m.finish(at(50));
  EXPECT_EQ(m.inconsistency_intervals(), 1u);
  EXPECT_EQ(m.total_inconsistency(), millis(30));
}

TEST(Metrics, NoViolationWhenDistanceStaysInWindow) {
  Metrics m;
  m.track_object(1, millis(50));
  for (int k = 1; k <= 20; ++k) {
    m.on_primary_write(1, at(10 * k));
    m.on_backup_apply(1, at(10 * k), at(10 * k + 5));
  }
  m.finish(at(250));
  EXPECT_EQ(m.inconsistency_intervals(), 0u);
  EXPECT_EQ(m.max_distance(1), millis(10));  // one write-period of staleness
}

TEST(Metrics, AverageMaxDistanceAcrossObjects) {
  Metrics m;
  m.track_object(1, millis(100));
  m.track_object(2, millis(100));
  for (ObjectId id : {1u, 2u}) {
    m.on_primary_write(id, at(10));
    m.on_backup_apply(id, at(10), at(11));
  }
  m.on_primary_write(1, at(20));  // distance 10
  m.on_primary_write(2, at(40));  // distance 30
  EXPECT_DOUBLE_EQ(m.average_max_distance_ms(), 20.0);
}

TEST(Metrics, ResetStatisticsClearsHistoryButKeepsTracking) {
  Metrics m;
  m.track_object(1, millis(500));
  m.record_response(millis(9));
  m.on_primary_write(1, at(10));
  m.on_backup_apply(1, at(10), at(11));
  m.on_primary_write(1, at(40));
  m.reset_statistics();
  EXPECT_EQ(m.response_times().count(), 0u);
  EXPECT_EQ(m.max_distance(1), Duration::zero());
  m.on_primary_write(1, at(50));
  EXPECT_EQ(m.max_distance(1), millis(40));  // 50 - 10: state survived reset
}

TEST(Metrics, UntrackedObjectIgnored) {
  Metrics m;
  m.on_primary_write(42, at(10));  // no crash, no effect
  EXPECT_DOUBLE_EQ(m.average_max_distance_ms(), 0.0);
}

TEST(Metrics, StaleRetransmissionDoesNotRegressBackupOrigin) {
  Metrics m;
  m.track_object(1, millis(500));
  m.on_primary_write(1, at(10));
  m.on_backup_apply(1, at(10), at(12));
  // A late duplicate with an older origin must not move T_B backwards.
  m.on_backup_apply(1, at(5), at(13));
  m.on_primary_write(1, at(20));
  EXPECT_EQ(m.max_distance(1), millis(10));
}

TEST(Metrics, UntrackStopsAccounting) {
  Metrics m;
  m.track_object(1, millis(10));
  m.on_primary_write(1, at(10));
  m.untrack_object(1);
  m.on_primary_write(1, at(50));  // ignored
  EXPECT_DOUBLE_EQ(m.average_max_distance_ms(), 0.0);
}

}  // namespace
}  // namespace rtpb::core
