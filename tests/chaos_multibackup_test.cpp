// Multi-backup chaos: N-backup chains (N ∈ {2, 3}) driven through the
// full kill → promote → re-follow → recruit cycle under duplication,
// reorder and burst-loss faults, with every oracle armed — including the
// unconditional no-cross-epoch-apply oracle.  The partition seeds run the
// harder split-brain arc that epoch fencing must resolve, and the final
// test disables fencing to prove the oracle actually catches the bug
// class (a silent oracle proves nothing).
#include <gtest/gtest.h>

#include "chaos/harness.hpp"

namespace rtpb::chaos {
namespace {

ChaosOptions chain_opts(std::size_t backups) {
  ChaosOptions opts;
  opts.backups = backups;
  opts.duration = seconds(14);      // long enough for the crash family
  opts.crash_probability = 1.0;     // every seed runs the failover arc...
  opts.crash_backup_bias = 0.0;     // ...by killing the primary
  return opts;
}

void expect_full_cycle(const SeedReport& report) {
  bool crashed = false;
  bool recruited = false;
  for (const std::string& label : report.fired) {
    if (label.find("crash-primary") != std::string::npos) crashed = true;
    if (label.find("add-standby") != std::string::npos) recruited = true;
  }
  EXPECT_TRUE(crashed) << "seed " << report.seed << " never crashed the primary";
  EXPECT_TRUE(recruited) << "seed " << report.seed << " never recruited a standby";
}

TEST(ChaosMultiBackup, TwoBackupChainSurvivesFailoverSweep) {
  const ChaosOptions opts = chain_opts(2);
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    const SeedReport report = run_seed(seed, opts);
    EXPECT_TRUE(report.ok()) << report.summary() << "\n" << report.reproducer;
    EXPECT_EQ(report.cross_epoch_applies, 0u);
    expect_full_cycle(report);
  }
}

TEST(ChaosMultiBackup, ThreeBackupChainSurvivesFailoverSweep) {
  const ChaosOptions opts = chain_opts(3);
  for (std::uint64_t seed = 101; seed <= 108; ++seed) {
    const SeedReport report = run_seed(seed, opts);
    EXPECT_TRUE(report.ok()) << report.summary() << "\n" << report.reproducer;
    EXPECT_EQ(report.cross_epoch_applies, 0u);
    expect_full_cycle(report);
  }
}

TEST(ChaosMultiBackup, FencedPartitionResolvesSplitBrain) {
  // The old primary survives the partition and keeps transmitting; epoch
  // fencing must depose it through the surviving backup, visibly (stale
  // traffic fenced), and without a single cross-epoch apply.
  ChaosOptions opts;
  opts.backups = 2;
  opts.duration = seconds(14);
  opts.enable_partition = true;
  std::uint64_t fenced = 0;
  for (std::uint64_t seed = 201; seed <= 204; ++seed) {
    const SeedReport report = run_seed(seed, opts);
    EXPECT_TRUE(report.ok()) << report.summary() << "\n" << report.reproducer;
    EXPECT_EQ(report.cross_epoch_applies, 0u);
    fenced += report.epoch_rejections;
  }
  EXPECT_GT(fenced, 0u) << "fencing never rejected anything: partition seeds "
                           "are not exercising the split-brain arc";
}

TEST(ChaosMultiBackup, UnfencedPartitionIsCaughtByCrossEpochOracle) {
  ChaosOptions opts;
  opts.backups = 2;
  opts.duration = seconds(14);
  opts.enable_partition = true;
  opts.enable_crashes = false;
  opts.config.epoch_fencing = false;

  const SeedReport report = run_seed(1, opts);
  ASSERT_FALSE(report.ok()) << "disabled fencing under a partition must be caught";
  bool found = false;
  for (const OracleViolation& v : report.violations) {
    if (v.oracle == std::string("cross-epoch-apply")) found = true;
  }
  EXPECT_TRUE(found) << "expected a cross-epoch-apply violation";
  EXPECT_GT(report.cross_epoch_applies, 0u);
}

}  // namespace
}  // namespace rtpb::chaos
