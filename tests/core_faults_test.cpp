// Scripted fault injection and chaos drills: loss storms, link
// degradation, crash + failover + recruitment — verifying the service
// degrades and recovers the way the paper's failure model promises.
#include "core/faults.hpp"

#include <gtest/gtest.h>

namespace rtpb::core {
namespace {

ObjectSpec make_spec(ObjectId id) {
  ObjectSpec s;
  s.id = id;
  s.name = "obj" + std::to_string(id);
  s.client_period = millis(10);
  s.client_exec = micros(200);
  s.update_exec = micros(200);
  s.delta_primary = millis(20);
  s.delta_backup = millis(100);
  return s;
}

ServiceParams make_params(std::uint64_t seed = 42) {
  ServiceParams p;
  p.seed = seed;
  p.link.propagation = millis(1);
  p.link.jitter = micros(200);
  return p;
}

TimePoint at(std::int64_t ms) { return TimePoint::zero() + millis(ms); }

TEST(FaultPlan, ActionsFireAtScheduledTimes) {
  RtpbService service(make_params());
  FaultPlan plan(service);
  std::vector<TimePoint> when;
  plan.at(at(100), "a", [&] { when.push_back(service.simulator().now()); });
  plan.at(at(300), "b", [&] { when.push_back(service.simulator().now()); });
  plan.arm();
  service.start();
  service.run_for(millis(500));
  ASSERT_EQ(plan.fired().size(), 2u);
  EXPECT_EQ(plan.fired()[0], "a");
  EXPECT_EQ(when[0], at(100));
  EXPECT_EQ(when[1], at(300));
}

TEST(FaultPlan, LossStormDegradesThenRecovers) {
  RtpbService service(make_params(7));
  FaultPlan plan(service);
  plan.loss_storm(at(5000), at(10000), 0.6);
  plan.arm();
  service.start();
  ASSERT_TRUE(service.register_object(make_spec(1)).ok());

  // Healthy phase: no violations.
  service.warm_up(seconds(1));
  service.run_for(seconds(3));
  EXPECT_EQ(service.metrics().inconsistency_intervals(), 0u);

  // Storm phase: violations accumulate.
  service.run_for(seconds(7));  // covers 5s..10s storm
  const auto during = service.metrics().inconsistency_intervals();
  EXPECT_GT(during, 0u);

  // Recovery: a long quiet phase adds (almost) no new violations.
  service.run_for(seconds(10));
  service.finish();
  EXPECT_LE(service.metrics().inconsistency_intervals(), during + 1);
}

TEST(FaultPlan, LinkDegradationTriggersNacks) {
  ServiceParams params = make_params(11);
  params.config.ping_max_misses = 1000;  // ride through the degradation
  RtpbService service(params);
  FaultPlan plan(service);
  plan.link_degradation(at(2000), at(8000), 0.7);
  plan.arm();
  service.start();
  ASSERT_TRUE(service.register_object(make_spec(1)).ok());
  service.run_for(seconds(12));
  EXPECT_GT(service.backup().retransmit_requests_sent(), 0u);
  // After the storm the backup converges again.
  const auto vp = service.primary().read(1)->version;
  const auto vb = service.backup().read(1)->version;
  EXPECT_GE(vb + 10, vp);
}

TEST(FaultPlan, FullDisasterDrill) {
  // Loss storm, then primary crash mid-storm, failover, then standby
  // recruitment — service must end healthy with replication flowing.
  RtpbService service(make_params(13));
  FaultPlan plan(service);
  plan.loss_storm(at(2000), at(6000), 0.3)
      .crash_primary(at(4000))
      .add_standby(at(7000));
  plan.arm();
  service.start();
  ASSERT_TRUE(service.register_object(make_spec(1)).ok());
  service.run_for(seconds(12));

  ASSERT_EQ(plan.fired().size(), 4u);
  EXPECT_EQ(service.backup().role(), Role::kPrimary);
  EXPECT_TRUE(service.backup_client().active());

  // The recruited standby holds the object and keeps receiving updates
  // from the promoted primary.
  service.run_for(seconds(2));
  ASSERT_NE(service.standby(), nullptr);
  ASSERT_TRUE(service.standby()->store().contains(1));
  const auto v1 = service.standby()->read(1)->version;
  EXPECT_GT(v1, 0u);
  service.run_for(seconds(2));
  EXPECT_GT(service.standby()->read(1)->version, v1);
}

TEST(FaultPlan, BackupCrashStopsReplicationButNotService) {
  RtpbService service(make_params(17));
  FaultPlan plan(service);
  plan.crash_backup(at(3000));
  plan.arm();
  service.start();
  ASSERT_TRUE(service.register_object(make_spec(1)).ok());
  service.run_for(seconds(8));
  // Primary detected the dead backup and cancelled update events (§4.4).
  const auto sent = service.primary().updates_sent();
  service.run_for(seconds(2));
  EXPECT_EQ(service.primary().updates_sent(), sent);
  // Clients are still served.
  const auto v = service.primary().read(1)->version;
  service.run_for(seconds(1));
  EXPECT_GT(service.primary().read(1)->version, v);
}

}  // namespace
}  // namespace rtpb::core
