// Failover hardening: epoch fencing, the unconditional role guard,
// per-peer ack state, the state-transfer reorder guard, and the
// payload-derived admission frame budget.
//
// The split-brain drills promote a backup WITHOUT crashing the primary —
// the worst case §4.4 never considers: two replicas both believe they are
// primary and the old one keeps transmitting.  Epoch fencing must reject
// the stale incarnation's traffic and depose the zombie; with fencing
// disabled the unconditional role guard must still keep the promoted
// replica's store out of the stale stream's reach.
#include "core/rtpb.hpp"

#include <gtest/gtest.h>

namespace rtpb::core {
namespace {

ObjectSpec make_spec(ObjectId id) {
  ObjectSpec s;
  s.id = id;
  s.name = "obj" + std::to_string(id);
  s.size_bytes = 64;
  s.client_period = millis(10);
  s.client_exec = micros(200);
  s.update_exec = micros(200);
  s.delta_primary = millis(20);
  s.delta_backup = millis(100);
  return s;
}

ServiceParams make_params(std::uint64_t seed, std::size_t backups = 1) {
  ServiceParams p;
  p.seed = seed;
  p.link.propagation = millis(1);
  p.link.jitter = micros(200);
  p.backup_count = backups;
  return p;
}

// ---------------------------------------------------------------------------
// Wire: the epoch rides on every RTPB message type.
// ---------------------------------------------------------------------------

TEST(EpochWire, EpochRoundTripsOnEveryMessageType) {
  {
    wire::Update u;
    u.object = 3;
    u.version = 9;
    u.epoch = 41;
    const auto d = wire::decode(wire::encode(u));
    ASSERT_TRUE(d && d->update);
    EXPECT_EQ(d->update->epoch, 41u);
    EXPECT_EQ(wire::epoch_of(*d), 41u);
  }
  {
    const auto d = wire::decode(wire::encode(wire::UpdateAck{3, 9, 42}));
    ASSERT_TRUE(d && d->update_ack);
    EXPECT_EQ(d->update_ack->epoch, 42u);
    EXPECT_EQ(wire::epoch_of(*d), 42u);
  }
  {
    const auto d = wire::decode(wire::encode(wire::RetransmitRequest{3, 9, 43}));
    ASSERT_TRUE(d && d->retransmit);
    EXPECT_EQ(d->retransmit->epoch, 43u);
    EXPECT_EQ(wire::epoch_of(*d), 43u);
  }
  {
    const auto d = wire::decode(wire::encode(wire::Ping{7, 44}));
    ASSERT_TRUE(d && d->ping);
    EXPECT_EQ(d->ping->epoch, 44u);
    EXPECT_EQ(wire::epoch_of(*d), 44u);
  }
  {
    const auto d = wire::decode(wire::encode(wire::PingAck{7, 45}));
    ASSERT_TRUE(d && d->ping_ack);
    EXPECT_EQ(d->ping_ack->epoch, 45u);
    EXPECT_EQ(wire::epoch_of(*d), 45u);
  }
  {
    wire::StateTransfer st;
    st.transfer_id = 11;
    st.epoch = 46;
    const auto d = wire::decode(wire::encode(st));
    ASSERT_TRUE(d && d->state_transfer);
    EXPECT_EQ(d->state_transfer->epoch, 46u);
    EXPECT_EQ(wire::epoch_of(*d), 46u);
  }
  {
    const auto d = wire::decode(wire::encode(wire::StateTransferAck{11, 47}));
    ASSERT_TRUE(d && d->state_transfer_ack);
    EXPECT_EQ(d->state_transfer_ack->epoch, 47u);
    EXPECT_EQ(wire::epoch_of(*d), 47u);
  }
}

TEST(EpochWire, ActiveReplicationMessagesCarryNoEpoch) {
  // The active baseline predates epochs; epoch_of treats it as the
  // bootstrap wildcard so it can never be fenced by accident.
  wire::ActivePrepare p;
  p.sequence = 5;
  p.object = 1;
  const auto d = wire::decode(wire::encode(p));
  ASSERT_TRUE(d && d->active_prepare);
  EXPECT_EQ(wire::epoch_of(*d), 0u);
  const auto a = wire::decode(wire::encode(wire::ActiveAck{5}));
  ASSERT_TRUE(a && a->active_ack);
  EXPECT_EQ(wire::epoch_of(*a), 0u);
}

// ---------------------------------------------------------------------------
// Split-brain drills.
// ---------------------------------------------------------------------------

TEST(EpochFencing, DrillPromotionFencesAndDeposesTheOldPrimary) {
  RtpbService service(make_params(31));
  service.start();
  ASSERT_TRUE(service.register_object(make_spec(1)).ok());
  service.run_for(seconds(1));

  // Promote the backup while the primary is alive and transmitting.
  service.backup().promote();
  EXPECT_EQ(service.backup().epoch(), 2u);  // minted above the initial 1
  service.run_for(seconds(1));

  // The stale incarnation's traffic was fenced, never applied...
  EXPECT_GT(service.backup().epoch_rejections(), 0u);
  service.for_each_replica(
      [](const ReplicaServer& r) { EXPECT_EQ(r.cross_epoch_applies(), 0u); });
  // ...and the depose notice carried on the fenced ping's ack made the
  // zombie step down: exactly one primary again, no crash required.
  EXPECT_EQ(service.primary().role(), Role::kBackup);
  EXPECT_EQ(service.primary().step_downs(), 1u);
  EXPECT_EQ(service.primary().epoch(), 2u);  // adopted the epoch that deposed it
  EXPECT_EQ(service.primaries_alive(), 1u);
}

TEST(EpochFencing, RoleGuardAloneProtectsTheStoreWithFencingOff) {
  ServiceParams params = make_params(32);
  params.config.epoch_fencing = false;
  RtpbService service(params);
  service.start();
  ASSERT_TRUE(service.register_object(make_spec(1)).ok());
  service.run_for(seconds(1));

  const std::uint64_t applied_before = service.backup().updates_applied();
  service.backup().promote();
  service.run_for(seconds(2));

  // Without fencing the zombie never steps down: split brain persists...
  EXPECT_EQ(service.primaries_alive(), 2u);
  EXPECT_EQ(service.primary().step_downs(), 0u);
  // ...but the unconditional role guard still refuses to apply (or ack)
  // the stale update stream on the promoted replica.
  EXPECT_GT(service.backup().role_rejections(), 0u);
  EXPECT_EQ(service.backup().updates_applied(), applied_before);
  service.for_each_replica(
      [](const ReplicaServer& r) { EXPECT_EQ(r.cross_epoch_applies(), 0u); });
}

TEST(EpochFencing, PartitionedPrimaryIsDeposedThroughTheSurvivingBackup) {
  // N=2 and a genuine partition: the successor cannot reach the primary,
  // declares it dead and promotes — but the old primary keeps running.
  // Its only path to learning of epoch 2 is the surviving second backup,
  // which the new primary recruits.
  RtpbService service(make_params(33, /*backups=*/2));
  service.start();
  ASSERT_TRUE(service.register_object(make_spec(1)).ok());
  service.run_for(seconds(1));

  service.network().set_loss_probability(service.primary().node(),
                                         service.backup().node(), 1.0);
  service.run_for(seconds(4));

  EXPECT_EQ(service.backup().role(), Role::kPrimary);
  EXPECT_EQ(service.primary().role(), Role::kBackup);
  EXPECT_EQ(service.primary().step_downs(), 1u);
  EXPECT_EQ(service.primaries_alive(), 1u);
  service.for_each_replica(
      [](const ReplicaServer& r) { EXPECT_EQ(r.cross_epoch_applies(), 0u); });

  // The chain keeps replicating: the second backup follows the new
  // primary and its store keeps advancing.
  ASSERT_EQ(service.backups()[1]->peers().size(), 1u);
  EXPECT_EQ(service.backups()[1]->peers().front(), service.backup().endpoint());
  const std::uint64_t v = service.backups()[1]->read(1)->version;
  service.run_for(seconds(2));
  EXPECT_GT(service.backups()[1]->read(1)->version, v);
}

TEST(EpochFencing, RecruitedStandbyAdoptsTheNewEpoch) {
  RtpbService service(make_params(34));
  service.start();
  ASSERT_TRUE(service.register_object(make_spec(1)).ok());
  service.run_for(seconds(1));
  service.crash_primary();
  service.run_for(seconds(2));
  ASSERT_EQ(service.backup().role(), Role::kPrimary);
  ASSERT_EQ(service.backup().epoch(), 2u);

  ReplicaServer& standby = service.add_standby();
  service.run_for(seconds(1));
  // The state transfer taught the fresh standby the cluster epoch and its
  // transfer id is tracked for the reorder guard.
  EXPECT_EQ(standby.epoch(), 2u);
  EXPECT_GT(standby.highest_transfer_applied(service.backup().node()), 0u);
  ASSERT_TRUE(standby.read(1).has_value());
  const std::uint64_t v = standby.read(1)->version;
  service.run_for(seconds(1));
  EXPECT_GT(standby.read(1)->version, v);
}

// ---------------------------------------------------------------------------
// Per-peer ack state.
// ---------------------------------------------------------------------------

TEST(PerPeerAcks, FastBackupAckDoesNotCancelRetransmissionForLaggingPeer) {
  // Regression: ack_state_ used to keep ONE shared acked_version per
  // object, so backup[0]'s prompt ack cancelled the retransmission that
  // blacked-out backup[1] depended on — it stayed behind until the next
  // periodic send and, under sustained loss, forever.
  ServiceParams params = make_params(35, /*backups=*/2);
  params.config.ack_every_update = true;
  params.config.watchdog_factor = 1000000;   // no watchdog nacks: the ack
  params.config.ping_max_misses = 1000000;   // path alone must recover it
  RtpbService service(params);
  service.start();
  ASSERT_TRUE(service.register_object(make_spec(1)).ok());
  service.run_for(millis(500));

  const net::NodeId lagging = service.backups()[1]->node();
  service.network().set_loss_probability(service.primary().node(), lagging, 1.0);
  service.run_for(seconds(1));
  // Backup[0] kept acking throughout the blackout; per-peer state must
  // still show backup[1] behind and keep the retransmission loop armed.
  EXPECT_GT(service.primary().retransmissions_served(), 0u);
  EXPECT_LT(service.primary().peer_acked_version(lagging, 1),
            service.primary().peer_acked_version(service.backups()[0]->node(), 1));

  service.network().set_loss_probability(service.primary().node(), lagging, 0.0);
  service.run_for(seconds(1));
  const std::uint64_t v0 = service.backups()[0]->read(1)->version;
  const std::uint64_t v1 = service.backups()[1]->read(1)->version;
  EXPECT_NEAR(static_cast<double>(v1), static_cast<double>(v0), 5.0);
  EXPECT_GT(service.primary().peer_acked_version(lagging, 1), 0u);
}

// ---------------------------------------------------------------------------
// State-transfer reorder guard.
// ---------------------------------------------------------------------------

TEST(TransferReorder, LateOldTransferCannotClobberNewerConstraints) {
  // Registrations replicate under a reorder+dup storm, then the
  // constraint table replicates on a clean link.  Delayed copies of the
  // constraint-free registration transfers arrive AFTER the newer
  // constraint-carrying one; the per-sender high-water id must keep them
  // from wiping the table (their object entries still apply).
  ServiceParams params = make_params(36);
  params.config.ping_period = millis(500);  // retries at 1s: the late frames land first
  RtpbService service(params);
  service.start();

  net::LinkFaults storm;
  storm.reorder_probability = 1.0;
  storm.reorder_extra = millis(300);
  storm.duplicate_probability = 1.0;
  service.network().set_faults(service.primary().node(), service.backup().node(), storm);
  ASSERT_TRUE(service.register_object(make_spec(1)).ok());  // transfer id 1
  ASSERT_TRUE(service.register_object(make_spec(2)).ok());  // transfer id 2
  service.network().set_faults(service.primary().node(), service.backup().node(),
                               net::LinkFaults{});
  ASSERT_TRUE(service.add_constraint({1, 2, millis(30)}).ok());  // transfer id 3

  service.run_for(seconds(2));
  // Every transfer (including the delayed ones) has landed by now.
  EXPECT_EQ(service.backup().highest_transfer_applied(service.primary().node()), 3u);
  EXPECT_TRUE(service.backup().read(1).has_value());
  EXPECT_TRUE(service.backup().read(2).has_value());

  // The constraint survived the storm: after failover the new primary
  // still enforces it.
  service.crash_primary();
  service.run_for(seconds(3));
  ASSERT_EQ(service.backup().role(), Role::kPrimary);
  EXPECT_EQ(service.backup().admission().constraints().size(), 1u);
  EXPECT_LE(service.backup().admission().update_period(1), millis(30));
}

// ---------------------------------------------------------------------------
// Admission frame budget ℓ.
// ---------------------------------------------------------------------------

TEST(FrameBudget, DerivedFromLargestRegisteredPayload) {
  RtpbService service(make_params(37));
  service.start();
  EXPECT_EQ(service.primary().frame_budget(), 1024u);  // historical floor
  const Duration ell_small = service.primary().admission().link_delay_bound();

  // A small object keeps the floor (N=1 behaviour preserved)...
  ASSERT_TRUE(service.register_object(make_spec(1)).ok());
  EXPECT_EQ(service.primary().frame_budget(), 1024u);
  EXPECT_EQ(service.primary().admission().link_delay_bound(), ell_small);

  // ...a 32 KiB object grows the frame and thus ℓ for every later
  // admission (10 Mb/s default link: tx alone adds ~25 ms).
  ObjectSpec big = make_spec(2);
  big.size_bytes = 32768;
  big.delta_primary = millis(50);
  big.delta_backup = seconds(2);
  ASSERT_TRUE(service.register_object(big).ok());
  EXPECT_EQ(service.primary().frame_budget(), 32768u);
  const Duration ell_big = service.primary().admission().link_delay_bound();
  EXPECT_GT(ell_big, ell_small);
  EXPECT_EQ(service.link_delay_bound(), ell_big);

  // The §4.3 period formula r = (δ − ℓ)/slack now sees the bigger ℓ: an
  // identical spec admitted after the growth gets a shorter period.
  ASSERT_TRUE(service.register_object(make_spec(3)).ok());
  const Duration period_after = service.primary().admission().update_period(3);
  // Compare against a service that never saw the big object.
  RtpbService control(make_params(37));
  control.start();
  ASSERT_TRUE(control.register_object(make_spec(1)).ok());
  ASSERT_TRUE(control.register_object(make_spec(3)).ok());
  EXPECT_LT(period_after, control.primary().admission().update_period(3));
}

}  // namespace
}  // namespace rtpb::core
