#include "sched/generator.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "sched/analysis.hpp"

namespace rtpb::sched {
namespace {

TEST(UUniFast, SumsToTarget) {
  Rng rng(1);
  for (int trial = 0; trial < 100; ++trial) {
    const auto utils = uunifast(rng, 6, 0.7);
    const double sum = std::accumulate(utils.begin(), utils.end(), 0.0);
    EXPECT_NEAR(sum, 0.7, 1e-12);
    for (double u : utils) {
      EXPECT_GE(u, 0.0);
      EXPECT_LE(u, 0.7 + 1e-12);
    }
  }
}

TEST(UUniFast, SingleTaskGetsEverything) {
  Rng rng(2);
  const auto utils = uunifast(rng, 1, 0.42);
  ASSERT_EQ(utils.size(), 1u);
  EXPECT_DOUBLE_EQ(utils[0], 0.42);
}

TEST(UUniFast, MeanPerTaskUtilizationIsUniform) {
  // Each slot's expected share is total/n.
  Rng rng(3);
  const std::size_t n = 4;
  std::vector<double> sums(n, 0.0);
  const int trials = 20000;
  for (int trial = 0; trial < trials; ++trial) {
    const auto utils = uunifast(rng, n, 0.8);
    for (std::size_t i = 0; i < n; ++i) sums[i] += utils[i];
  }
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(sums[i] / trials, 0.8 / static_cast<double>(n), 0.01) << i;
  }
}

TEST(Generator, ProducesValidTaskSets) {
  Rng rng(4);
  GeneratorParams params;
  params.tasks = 8;
  params.total_utilization = 0.6;
  for (int trial = 0; trial < 100; ++trial) {
    const TaskSet set = generate_task_set(rng, params);
    ASSERT_EQ(set.size(), 8u);
    for (const auto& t : set) {
      EXPECT_TRUE(t.valid()) << t.name;
      EXPECT_GE(t.period, params.min_period);
      EXPECT_LE(t.period, params.max_period);
      EXPECT_GE(t.wcet, params.min_wcet);
    }
    // min_wcet clamping can only push utilisation up, never down much.
    EXPECT_GE(total_utilization(set), 0.4);
  }
}

TEST(Generator, UtilizationCloseToTargetWhenWcetsUnclamped) {
  Rng rng(5);
  GeneratorParams params;
  params.tasks = 5;
  params.total_utilization = 0.5;
  params.min_period = millis(50);  // long periods: min_wcet never binds
  params.max_period = millis(500);
  params.min_wcet = micros(10);
  for (int trial = 0; trial < 50; ++trial) {
    const TaskSet set = generate_task_set(rng, params);
    EXPECT_NEAR(total_utilization(set), 0.5, 0.02);
  }
}

TEST(Generator, DeterministicForSameRngState) {
  Rng a(6), b(6);
  GeneratorParams params;
  const TaskSet s1 = generate_task_set(a, params);
  const TaskSet s2 = generate_task_set(b, params);
  ASSERT_EQ(s1.size(), s2.size());
  for (std::size_t i = 0; i < s1.size(); ++i) {
    EXPECT_EQ(s1[i].period, s2[i].period);
    EXPECT_EQ(s1[i].wcet, s2[i].wcet);
  }
}

}  // namespace
}  // namespace rtpb::sched
