#include "core/admission.hpp"

#include <gtest/gtest.h>

#include "sched/theory.hpp"

namespace rtpb::core {
namespace {

ObjectSpec spec(ObjectId id, Duration p = millis(10), Duration delta_p = millis(20),
                Duration delta_b = millis(100)) {
  ObjectSpec s;
  s.id = id;
  s.name = "obj" + std::to_string(id);
  s.client_period = p;
  s.client_exec = micros(200);
  s.update_exec = micros(200);
  s.delta_primary = delta_p;
  s.delta_backup = delta_b;
  return s;
}

ServiceConfig default_config() { return {}; }

TEST(Admission, AcceptsWellFormedObject) {
  AdmissionController ac(default_config(), millis(2));
  const auto r = ac.admit(spec(1));
  ASSERT_TRUE(r.ok());
  // window = 80ms, ell = 2ms, slack 2 -> r = 39ms
  EXPECT_EQ(r.value().update_period, millis(39));
  EXPECT_EQ(ac.admitted_count(), 1u);
}

TEST(Admission, RejectsDuplicate) {
  AdmissionController ac(default_config(), millis(2));
  ASSERT_TRUE(ac.admit(spec(1)).ok());
  const auto r = ac.admit(spec(1));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.code(), AdmissionError::kDuplicate);
}

TEST(Admission, RejectsMalformedSpec) {
  AdmissionController ac(default_config(), millis(2));
  ObjectSpec bad = spec(1);
  bad.client_period = Duration::zero();
  const auto r = ac.admit(bad);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.code(), AdmissionError::kInvalidSpec);
}

TEST(Admission, RejectsClientPeriodExceedingDeltaPrimary) {
  // Paper §4.2 check (1): p_i must be ≤ δ_iP.
  AdmissionController ac(default_config(), millis(2));
  const auto r = ac.admit(spec(1, /*p=*/millis(25), /*delta_p=*/millis(20)));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.code(), AdmissionError::kPeriodExceedsDelta);
}

TEST(Admission, RejectsWindowSmallerThanLinkDelay) {
  // Paper §4.2 check (2): δ_i = δ_iB − δ_iP must exceed ℓ.
  AdmissionController ac(default_config(), millis(50));
  const auto r = ac.admit(spec(1, millis(10), millis(20), millis(60)));  // window 40 < ell 50
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.code(), AdmissionError::kWindowTooSmall);
}

TEST(Admission, RejectsWhenUpdateTasksUnschedulable) {
  // Saturate the CPU with heavy client tasks until RM analysis fails.
  AdmissionController ac(default_config(), millis(1));
  ObjectId id = 1;
  bool saw_rejection = false;
  for (; id < 200; ++id) {
    ObjectSpec s = spec(id);
    s.client_exec = millis(4);   // 40% utilisation each
    s.update_exec = millis(2);
    const auto r = ac.admit(s);
    if (!r.ok()) {
      EXPECT_EQ(r.code(), AdmissionError::kUnschedulable);
      saw_rejection = true;
      break;
    }
  }
  EXPECT_TRUE(saw_rejection);
  EXPECT_GE(ac.admitted_count(), 1u);
}

TEST(Admission, DisabledAdmissionAcceptsEverything) {
  ServiceConfig config;
  config.admission_control_enabled = false;
  AdmissionController ac(config, millis(1));
  for (ObjectId id = 1; id <= 100; ++id) {
    ObjectSpec s = spec(id);
    s.client_exec = millis(4);
    EXPECT_TRUE(ac.admit(s).ok()) << id;
  }
  EXPECT_EQ(ac.admitted_count(), 100u);
}

TEST(Admission, UpdatePeriodFollowsWindowFormula) {
  // r_i = (δ_i − ℓ) / slack — §4.3 with the paper's 2x slack.
  const Duration ell = millis(3);
  AdmissionController ac(default_config(), ell);
  const auto r = ac.admit(spec(1, millis(10), millis(20), millis(120)));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().update_period,
            sched::theory::update_period(millis(100), ell, 2));
}

TEST(Admission, SlackFactorOneSendsAtFullWindow) {
  ServiceConfig config;
  config.slack_factor = 1;
  AdmissionController ac(config, millis(2));
  const auto r = ac.admit(spec(1));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().update_period, millis(78));  // (100-20) - 2
}

TEST(Admission, RemoveFreesCapacity) {
  AdmissionController ac(default_config(), millis(1));
  ObjectSpec heavy = spec(1);
  heavy.client_exec = millis(5);
  ASSERT_TRUE(ac.admit(heavy).ok());
  ac.remove(1);
  EXPECT_EQ(ac.admitted_count(), 0u);
  heavy.id = 2;
  EXPECT_TRUE(ac.admit(heavy).ok());
}

TEST(Admission, InterObjectConstraintRequiresKnownObjects) {
  AdmissionController ac(default_config(), millis(1));
  ASSERT_TRUE(ac.admit(spec(1)).ok());
  const auto s = ac.add_constraint({1, 99, millis(50)});
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), AdmissionError::kUnknownObject);
}

TEST(Admission, InterObjectConstraintRejectsSlowClients) {
  // §3: both client periods must be within δ_ij.
  AdmissionController ac(default_config(), millis(1));
  ASSERT_TRUE(ac.admit(spec(1, millis(10))).ok());
  ASSERT_TRUE(ac.admit(spec(2, millis(18))).ok());
  const auto s = ac.add_constraint({1, 2, millis(15)});
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), AdmissionError::kInterObjectViolation);
}

TEST(Admission, InterObjectConstraintTightensUpdatePeriods) {
  AdmissionController ac(default_config(), millis(2));
  ASSERT_TRUE(ac.admit(spec(1)).ok());
  ASSERT_TRUE(ac.admit(spec(2)).ok());
  const Duration before = ac.update_period(1);
  ASSERT_GT(before, millis(15));
  ASSERT_TRUE(ac.add_constraint({1, 2, millis(15)}).ok());
  EXPECT_EQ(ac.update_period(1), millis(15));
  EXPECT_EQ(ac.update_period(2), millis(15));
}

TEST(Admission, InterObjectConstraintLooserThanWindowChangesNothing) {
  AdmissionController ac(default_config(), millis(2));
  ASSERT_TRUE(ac.admit(spec(1)).ok());
  ASSERT_TRUE(ac.admit(spec(2)).ok());
  const Duration before = ac.update_period(1);
  ASSERT_TRUE(ac.add_constraint({1, 2, millis(500)}).ok());
  EXPECT_EQ(ac.update_period(1), before);
}

TEST(Admission, CompressedSchedulingUsesSpareCapacity) {
  ServiceConfig config;
  config.update_scheduling = UpdateScheduling::kCompressed;
  config.compressed_target_utilization = 0.8;
  AdmissionController ac(config, millis(2));
  ASSERT_TRUE(ac.admit(spec(1)).ok());
  // One object, client util = 0.02: update task gets ~0.78 utilisation:
  // r ≈ e'/0.78 ≈ 0.256ms — far more often than the window-derived 39ms.
  EXPECT_LT(ac.update_period(1), millis(1));
  const Duration solo = ac.update_period(1);
  // Admitting more objects shares the spare capacity: periods grow.
  ASSERT_TRUE(ac.admit(spec(2)).ok());
  EXPECT_GT(ac.update_period(1), solo);
}

TEST(Admission, CompressedPeriodIndependentOfWindow) {
  ServiceConfig config;
  config.update_scheduling = UpdateScheduling::kCompressed;
  AdmissionController ac1(config, millis(2));
  AdmissionController ac2(config, millis(2));
  ASSERT_TRUE(ac1.admit(spec(1, millis(10), millis(20), millis(60))).ok());   // window 40
  ASSERT_TRUE(ac2.admit(spec(1, millis(10), millis(20), millis(400))).ok());  // window 380
  EXPECT_EQ(ac1.update_period(1), ac2.update_period(1));
}

TEST(Admission, RemoveRestoresConstraintPartnerPeriod) {
  // Regression: remove() used to erase the constraint but leave the
  // surviving partner pinned at the tightened period forever — a
  // permanent capacity leak (the partner kept transmitting at the δ_ij
  // rate and kept charging the RM aggregate for it).
  AdmissionController ac(default_config(), millis(2));
  ASSERT_TRUE(ac.admit(spec(1)).ok());
  ASSERT_TRUE(ac.admit(spec(2)).ok());
  const Duration baseline = ac.update_period(1);  // 39ms
  ASSERT_TRUE(ac.add_constraint({1, 2, millis(15)}).ok());
  ASSERT_EQ(ac.update_period(1), millis(15));
  const double tightened_util = ac.total_utilization();

  ac.remove(2);
  EXPECT_EQ(ac.update_period(1), baseline)
      << "partner stayed pinned at the removed object's delta_ij";
  EXPECT_TRUE(ac.constraints().empty());
  EXPECT_LT(ac.total_utilization(), tightened_util);
}

TEST(Admission, RemoveRestoresOnlyConstraintsOfRemovedObject) {
  // A partner bound by several constraints falls back to the tightest
  // *remaining* one, not all the way to its window baseline.
  AdmissionController ac(default_config(), millis(2));
  ASSERT_TRUE(ac.admit(spec(1)).ok());
  ASSERT_TRUE(ac.admit(spec(2)).ok());
  ASSERT_TRUE(ac.admit(spec(3)).ok());
  ASSERT_TRUE(ac.add_constraint({1, 2, millis(15)}).ok());
  ASSERT_TRUE(ac.add_constraint({1, 3, millis(25)}).ok());
  ASSERT_EQ(ac.update_period(1), millis(15));

  ac.remove(2);
  EXPECT_EQ(ac.update_period(1), millis(25));
  EXPECT_EQ(ac.update_period(3), millis(25));
  ASSERT_EQ(ac.constraints().size(), 1u);
}

TEST(Admission, RemoveConstraintRestoresBothMembers) {
  AdmissionController ac(default_config(), millis(2));
  ASSERT_TRUE(ac.admit(spec(1)).ok());
  ASSERT_TRUE(ac.admit(spec(2)).ok());
  const Duration baseline = ac.update_period(1);
  ASSERT_TRUE(ac.add_constraint({1, 2, millis(15)}).ok());
  ac.remove_constraint({1, 2, millis(15)});
  EXPECT_EQ(ac.update_period(1), baseline);
  EXPECT_EQ(ac.update_period(2), baseline);
  EXPECT_TRUE(ac.constraints().empty());
}

TEST(Admission, LinkDelayGrowthKeepsAdmittedBaselinesFrozen) {
  // Regression: set_link_delay_bound() documents that admitted objects
  // keep the ℓ they were negotiated under, but the schedulability check
  // used to re-derive *every* admitted baseline at the current ℓ — after
  // ℓ grew close to the admitted windows, the re-derived periods became
  // tiny, their utilisation exploded, and perfectly schedulable new
  // registrations were spuriously rejected.
  AdmissionController ac(default_config(), millis(2));
  for (ObjectId id = 1; id <= 4; ++id) ASSERT_TRUE(ac.admit(spec(id)).ok());
  ASSERT_EQ(ac.update_period(1), millis(39));

  ac.set_link_delay_bound(millis(79));  // admitted windows are 80ms

  // Already-admitted objects keep their negotiated periods...
  EXPECT_EQ(ac.update_period(1), millis(39));
  // ...and enter the RM aggregate at those periods, so a roomy candidate
  // still fits (re-deriving the old baselines at ℓ=79ms would charge
  // 0.2ms/0.5ms = 40% per object and reject everything).
  const auto roomy = ac.admit(spec(10, millis(10), millis(20), millis(1020)));
  EXPECT_TRUE(roomy.ok());

  // New admissions ARE judged against the new ℓ: same window as the old
  // objects now leaves only (80 − 79)/2 = 0.5ms.
  const auto tight = ac.admit(spec(11));
  ASSERT_TRUE(tight.ok());
  EXPECT_EQ(tight.value().update_period, micros(500));
}

TEST(Admission, CompressedPeriodNeverExceedsWindowDerivedBound) {
  // Regression: when client load ate the compressed-mode spare capacity
  // (the 5% floor split eight ways), the equal-share formula produced
  // periods LONGER than the window-derived §4.3 period the object was
  // admitted against — the backup could drift past δ_i even though
  // admission had promised the window.  Compressed scheduling may only
  // send more often than the baseline, never less.
  ServiceConfig config;
  config.update_scheduling = UpdateScheduling::kCompressed;
  config.compressed_target_utilization = 0.5;
  AdmissionController ac(config, millis(2));
  for (ObjectId id = 1; id <= 8; ++id) {
    ObjectSpec s = spec(id);
    s.client_exec = micros(600);  // 8 × 6% client load swamps the target
    s.update_exec = micros(500);  // uncapped share would be 80ms
    ASSERT_TRUE(ac.admit(s).ok()) << id;
  }
  for (ObjectId id = 1; id <= 8; ++id) {
    EXPECT_LE(ac.update_period(id), millis(39)) << id;  // (80 − 2)/2
  }
}

TEST(Admission, TotalUtilizationAccountsForBothTaskKinds) {
  AdmissionController ac(default_config(), millis(2));
  ASSERT_TRUE(ac.admit(spec(1)).ok());
  const ObjectSpec s = spec(1);
  const double expected = s.client_exec.ratio(s.client_period) +
                          s.update_exec.ratio(ac.update_period(1));
  EXPECT_NEAR(ac.total_utilization(), expected, 1e-12);
}

}  // namespace
}  // namespace rtpb::core
