#include "core/admission.hpp"

#include <gtest/gtest.h>

#include "sched/theory.hpp"

namespace rtpb::core {
namespace {

ObjectSpec spec(ObjectId id, Duration p = millis(10), Duration delta_p = millis(20),
                Duration delta_b = millis(100)) {
  ObjectSpec s;
  s.id = id;
  s.name = "obj" + std::to_string(id);
  s.client_period = p;
  s.client_exec = micros(200);
  s.update_exec = micros(200);
  s.delta_primary = delta_p;
  s.delta_backup = delta_b;
  return s;
}

ServiceConfig default_config() { return {}; }

TEST(Admission, AcceptsWellFormedObject) {
  AdmissionController ac(default_config(), millis(2));
  const auto r = ac.admit(spec(1));
  ASSERT_TRUE(r.ok());
  // window = 80ms, ell = 2ms, slack 2 -> r = 39ms
  EXPECT_EQ(r.value().update_period, millis(39));
  EXPECT_EQ(ac.admitted_count(), 1u);
}

TEST(Admission, RejectsDuplicate) {
  AdmissionController ac(default_config(), millis(2));
  ASSERT_TRUE(ac.admit(spec(1)).ok());
  const auto r = ac.admit(spec(1));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.code(), AdmissionError::kDuplicate);
}

TEST(Admission, RejectsMalformedSpec) {
  AdmissionController ac(default_config(), millis(2));
  ObjectSpec bad = spec(1);
  bad.client_period = Duration::zero();
  const auto r = ac.admit(bad);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.code(), AdmissionError::kInvalidSpec);
}

TEST(Admission, RejectsClientPeriodExceedingDeltaPrimary) {
  // Paper §4.2 check (1): p_i must be ≤ δ_iP.
  AdmissionController ac(default_config(), millis(2));
  const auto r = ac.admit(spec(1, /*p=*/millis(25), /*delta_p=*/millis(20)));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.code(), AdmissionError::kPeriodExceedsDelta);
}

TEST(Admission, RejectsWindowSmallerThanLinkDelay) {
  // Paper §4.2 check (2): δ_i = δ_iB − δ_iP must exceed ℓ.
  AdmissionController ac(default_config(), millis(50));
  const auto r = ac.admit(spec(1, millis(10), millis(20), millis(60)));  // window 40 < ell 50
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.code(), AdmissionError::kWindowTooSmall);
}

TEST(Admission, RejectsWhenUpdateTasksUnschedulable) {
  // Saturate the CPU with heavy client tasks until RM analysis fails.
  AdmissionController ac(default_config(), millis(1));
  ObjectId id = 1;
  bool saw_rejection = false;
  for (; id < 200; ++id) {
    ObjectSpec s = spec(id);
    s.client_exec = millis(4);   // 40% utilisation each
    s.update_exec = millis(2);
    const auto r = ac.admit(s);
    if (!r.ok()) {
      EXPECT_EQ(r.code(), AdmissionError::kUnschedulable);
      saw_rejection = true;
      break;
    }
  }
  EXPECT_TRUE(saw_rejection);
  EXPECT_GE(ac.admitted_count(), 1u);
}

TEST(Admission, DisabledAdmissionAcceptsEverything) {
  ServiceConfig config;
  config.admission_control_enabled = false;
  AdmissionController ac(config, millis(1));
  for (ObjectId id = 1; id <= 100; ++id) {
    ObjectSpec s = spec(id);
    s.client_exec = millis(4);
    EXPECT_TRUE(ac.admit(s).ok()) << id;
  }
  EXPECT_EQ(ac.admitted_count(), 100u);
}

TEST(Admission, UpdatePeriodFollowsWindowFormula) {
  // r_i = (δ_i − ℓ) / slack — §4.3 with the paper's 2x slack.
  const Duration ell = millis(3);
  AdmissionController ac(default_config(), ell);
  const auto r = ac.admit(spec(1, millis(10), millis(20), millis(120)));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().update_period,
            sched::theory::update_period(millis(100), ell, 2));
}

TEST(Admission, SlackFactorOneSendsAtFullWindow) {
  ServiceConfig config;
  config.slack_factor = 1;
  AdmissionController ac(config, millis(2));
  const auto r = ac.admit(spec(1));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().update_period, millis(78));  // (100-20) - 2
}

TEST(Admission, RemoveFreesCapacity) {
  AdmissionController ac(default_config(), millis(1));
  ObjectSpec heavy = spec(1);
  heavy.client_exec = millis(5);
  ASSERT_TRUE(ac.admit(heavy).ok());
  ac.remove(1);
  EXPECT_EQ(ac.admitted_count(), 0u);
  heavy.id = 2;
  EXPECT_TRUE(ac.admit(heavy).ok());
}

TEST(Admission, InterObjectConstraintRequiresKnownObjects) {
  AdmissionController ac(default_config(), millis(1));
  ASSERT_TRUE(ac.admit(spec(1)).ok());
  const auto s = ac.add_constraint({1, 99, millis(50)});
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), AdmissionError::kUnknownObject);
}

TEST(Admission, InterObjectConstraintRejectsSlowClients) {
  // §3: both client periods must be within δ_ij.
  AdmissionController ac(default_config(), millis(1));
  ASSERT_TRUE(ac.admit(spec(1, millis(10))).ok());
  ASSERT_TRUE(ac.admit(spec(2, millis(18))).ok());
  const auto s = ac.add_constraint({1, 2, millis(15)});
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), AdmissionError::kInterObjectViolation);
}

TEST(Admission, InterObjectConstraintTightensUpdatePeriods) {
  AdmissionController ac(default_config(), millis(2));
  ASSERT_TRUE(ac.admit(spec(1)).ok());
  ASSERT_TRUE(ac.admit(spec(2)).ok());
  const Duration before = ac.update_period(1);
  ASSERT_GT(before, millis(15));
  ASSERT_TRUE(ac.add_constraint({1, 2, millis(15)}).ok());
  EXPECT_EQ(ac.update_period(1), millis(15));
  EXPECT_EQ(ac.update_period(2), millis(15));
}

TEST(Admission, InterObjectConstraintLooserThanWindowChangesNothing) {
  AdmissionController ac(default_config(), millis(2));
  ASSERT_TRUE(ac.admit(spec(1)).ok());
  ASSERT_TRUE(ac.admit(spec(2)).ok());
  const Duration before = ac.update_period(1);
  ASSERT_TRUE(ac.add_constraint({1, 2, millis(500)}).ok());
  EXPECT_EQ(ac.update_period(1), before);
}

TEST(Admission, CompressedSchedulingUsesSpareCapacity) {
  ServiceConfig config;
  config.update_scheduling = UpdateScheduling::kCompressed;
  config.compressed_target_utilization = 0.8;
  AdmissionController ac(config, millis(2));
  ASSERT_TRUE(ac.admit(spec(1)).ok());
  // One object, client util = 0.02: update task gets ~0.78 utilisation:
  // r ≈ e'/0.78 ≈ 0.256ms — far more often than the window-derived 39ms.
  EXPECT_LT(ac.update_period(1), millis(1));
  const Duration solo = ac.update_period(1);
  // Admitting more objects shares the spare capacity: periods grow.
  ASSERT_TRUE(ac.admit(spec(2)).ok());
  EXPECT_GT(ac.update_period(1), solo);
}

TEST(Admission, CompressedPeriodIndependentOfWindow) {
  ServiceConfig config;
  config.update_scheduling = UpdateScheduling::kCompressed;
  AdmissionController ac1(config, millis(2));
  AdmissionController ac2(config, millis(2));
  ASSERT_TRUE(ac1.admit(spec(1, millis(10), millis(20), millis(60))).ok());   // window 40
  ASSERT_TRUE(ac2.admit(spec(1, millis(10), millis(20), millis(400))).ok());  // window 380
  EXPECT_EQ(ac1.update_period(1), ac2.update_period(1));
}

TEST(Admission, TotalUtilizationAccountsForBothTaskKinds) {
  AdmissionController ac(default_config(), millis(2));
  ASSERT_TRUE(ac.admit(spec(1)).ok());
  const ObjectSpec s = spec(1);
  const double expected = s.client_exec.ratio(s.client_period) +
                          s.update_exec.ratio(ac.update_period(1));
  EXPECT_NEAR(ac.total_utilization(), expected, 1e-12);
}

}  // namespace
}  // namespace rtpb::core
