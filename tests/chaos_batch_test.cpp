// Update batching under chaos: the kUpdateBatch coalescing path must
// satisfy exactly the same temporal-consistency oracles as the unbatched
// kUpdate path, and both modes must stay seed-reproducible.  (The two
// modes produce DIFFERENT byte streams — and so different trace digests —
// by design; see README's digest-stability note.)
#include <gtest/gtest.h>

#include "chaos/harness.hpp"

namespace rtpb::chaos {
namespace {

ChaosOptions batch_opts(bool batch) {
  ChaosOptions opts;
  opts.duration = millis(4000);
  opts.objects = 3;
  opts.config.batch_updates = batch;
  return opts;
}

TEST(ChaosBatch, BatchedAndUnbatchedBothSatisfyOracles) {
  for (std::uint64_t seed = 300; seed < 306; ++seed) {
    const SeedReport batched = run_seed(seed, batch_opts(true));
    const SeedReport unbatched = run_seed(seed, batch_opts(false));
    EXPECT_EQ(batched.violation_count, 0u)
        << "batched seed " << seed << "\n" << batched.reproducer;
    EXPECT_EQ(unbatched.violation_count, 0u)
        << "unbatched seed " << seed << "\n" << unbatched.reproducer;
    // Same workload either way: identical admission decisions and writes.
    EXPECT_EQ(batched.objects_admitted, unbatched.objects_admitted) << seed;
    EXPECT_EQ(batched.client_writes, unbatched.client_writes) << seed;
    // Both modes must actually replicate.
    EXPECT_GT(batched.updates_applied, 0u) << seed;
    EXPECT_GT(unbatched.updates_applied, 0u) << seed;
  }
}

TEST(ChaosBatch, EachModeIsSeedReproducible) {
  for (std::uint64_t seed = 310; seed < 313; ++seed) {
    const SeedReport b1 = run_seed(seed, batch_opts(true));
    const SeedReport b2 = run_seed(seed, batch_opts(true));
    EXPECT_EQ(b1.trace_digest, b2.trace_digest) << "batched seed " << seed;
    EXPECT_EQ(b1.sim_events, b2.sim_events) << "batched seed " << seed;
    EXPECT_EQ(b1.updates_applied, b2.updates_applied) << "batched seed " << seed;

    const SeedReport u1 = run_seed(seed, batch_opts(false));
    const SeedReport u2 = run_seed(seed, batch_opts(false));
    EXPECT_EQ(u1.trace_digest, u2.trace_digest) << "unbatched seed " << seed;
    EXPECT_EQ(u1.sim_events, u2.sim_events) << "unbatched seed " << seed;
  }
}

TEST(ChaosBatch, BatchingCoalescesFramesUnderCleanNetwork) {
  // With faults off, batching must visibly reduce wire frames while the
  // backup still converges (updates applied on every object).
  ChaosOptions opts = batch_opts(true);
  opts.enable_loss_storms = false;
  opts.enable_link_faults = false;
  opts.enable_crashes = false;
  const SeedReport batched = run_seed(42, opts);
  opts.config.batch_updates = false;
  const SeedReport unbatched = run_seed(42, opts);
  EXPECT_EQ(batched.violation_count, 0u);
  EXPECT_EQ(unbatched.violation_count, 0u);
  EXPECT_GT(batched.updates_applied, 0u);
  // Coalescing must not change what the backup ends up applying by more
  // than the in-flight tail (the last open window at shutdown).
  const auto lo = std::min(batched.updates_applied, unbatched.updates_applied);
  const auto hi = std::max(batched.updates_applied, unbatched.updates_applied);
  EXPECT_LE(hi - lo, hi / 10 + 8) << "batched=" << batched.updates_applied
                                  << " unbatched=" << unbatched.updates_applied;
}

}  // namespace
}  // namespace rtpb::chaos
