// End-to-end post-mortem regression: a sabotaged run that trips a
// temporal-consistency oracle must automatically dump the flight-recorder
// ring as a versioned JSONL artifact whose tail includes the violation
// record blaming the guilty span.  This is the acceptance gate for the
// observability plane — the artifact exists *because* the oracle fired,
// with no operator action.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "chaos/harness.hpp"

namespace rtpb::chaos {
namespace {

/// Read a JSONL artifact into lines (skipping blanks).
std::vector<std::string> read_lines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) lines.push_back(line);
  }
  return lines;
}

/// The slow-updates sabotage from chaos_main: transmission period far
/// beyond every negotiated window, admission control off, zero faults —
/// staleness oracles must fire deterministically.
ChaosOptions sabotaged_opts() {
  ChaosOptions opts;
  opts.duration = seconds(6);
  opts.config.update_period_override = millis(800);
  opts.config.admission_control_enabled = false;
  opts.enable_loss_storms = false;
  opts.enable_link_faults = false;
  opts.enable_crashes = false;
  return opts;
}

TEST(FlightRecorderPostmortem, OracleViolationDumpsArtifactWithGuiltySpan) {
  const std::string path = "pm_gtest_violation.jsonl";
  std::remove(path.c_str());

  ChaosOptions opts = sabotaged_opts();
  opts.telemetry = true;  // spans on, so violation records carry the span id
  opts.postmortem_path = path;

  const SeedReport report = run_seed(1, opts);
  ASSERT_GT(report.violation_count, 0u) << "sabotage failed to trip an oracle";
  EXPECT_TRUE(report.postmortem_written);
  EXPECT_EQ(report.postmortem_reason.rfind("oracle:", 0), 0u)
      << "dump reason was '" << report.postmortem_reason
      << "', expected the first oracle violation to trigger it";
  EXPECT_GT(report.flight_events, 0u);

  const std::vector<std::string> lines = read_lines(path);
  ASSERT_FALSE(lines.empty()) << "artifact file was not written";

  // Versioned header first, blaming the oracle.
  EXPECT_NE(lines.front().find("\"type\":\"postmortem\""), std::string::npos);
  EXPECT_NE(lines.front().find("\"version\":1"), std::string::npos);
  EXPECT_NE(lines.front().find("\"reason\":\"oracle:"), std::string::npos);

  // The retained tail must include the violation record, and — because
  // telemetry was on — it must carry the guilty span's nonzero id.
  bool violation_with_span = false;
  for (const std::string& line : lines) {
    if (line.find("\"kind\":\"violation\"") == std::string::npos) continue;
    const std::size_t span_at = line.find("\"span\":");
    if (span_at != std::string::npos &&
        line.compare(span_at + 7, 2, "0,") != 0 &&
        line.compare(span_at + 7, 2, "0}") != 0) {
      violation_with_span = true;
    }
  }
  EXPECT_TRUE(violation_with_span)
      << "no violation record with a nonzero span in the artifact";

  std::remove(path.c_str());
}

TEST(FlightRecorderPostmortem, FirstTriggerWinsAndHealthyRunsDumpAtEndOfRun) {
  // A healthy run never trips an oracle, so the only dump is the explicit
  // end-of-run one (the artifact is still useful as a "what happened last"
  // record), and its reason says so.
  const std::string path = "pm_gtest_healthy.jsonl";
  std::remove(path.c_str());

  ChaosOptions opts;
  opts.duration = seconds(6);
  opts.enable_crashes = false;
  opts.enable_loss_storms = false;
  opts.enable_link_faults = false;
  opts.postmortem_path = path;

  const SeedReport report = run_seed(5, opts);
  EXPECT_EQ(report.violation_count, 0u) << "expected a clean run";
  EXPECT_TRUE(report.postmortem_written);
  EXPECT_EQ(report.postmortem_reason, "end-of-run");

  const std::vector<std::string> lines = read_lines(path);
  ASSERT_FALSE(lines.empty());
  EXPECT_NE(lines.front().find("\"reason\":\"end-of-run\""), std::string::npos);
  // Exactly one header: the end-of-run trigger fired once, and a second
  // trigger (had one raced) would have been swallowed by first-wins.
  std::size_t headers = 0;
  for (const std::string& line : lines) {
    if (line.find("\"type\":\"postmortem\"") != std::string::npos) ++headers;
  }
  EXPECT_EQ(headers, 1u);

  std::remove(path.c_str());
}

}  // namespace
}  // namespace rtpb::chaos
