// The oracles must stay quiet on a healthy-but-stormy service and must
// fire when the service is deliberately broken.  Both directions matter:
// a silent oracle proves nothing until it has caught a planted bug.
#include <gtest/gtest.h>

#include "chaos/harness.hpp"

namespace rtpb::chaos {
namespace {

TEST(ChaosOracles, DefaultSeedsRunCleanUnderFaults) {
  ChaosOptions opts;
  opts.duration = seconds(8);
  for (std::uint64_t seed = 100; seed < 104; ++seed) {
    const SeedReport report = run_seed(seed, opts);
    EXPECT_TRUE(report.ok()) << report.summary() << "\n" << report.reproducer;
    EXPECT_GT(report.oracle_checks, 0u);
    EXPECT_GT(report.fired.size(), 0u) << "schedule should inject at least one fault";
  }
}

TEST(ChaosOracles, CrashFailoverSeedRunsClean) {
  ChaosOptions opts;  // default duration admits crash scenarios
  opts.crash_probability = 1.0;
  opts.crash_backup_bias = 0.0;  // force a primary crash + failover
  const SeedReport report = run_seed(9, opts);
  EXPECT_TRUE(report.ok()) << report.summary() << "\n" << report.reproducer;
  bool crashed = false;
  for (const std::string& label : report.fired) {
    if (label.find("crash-primary") != std::string::npos) crashed = true;
  }
  EXPECT_TRUE(crashed) << "expected the schedule to crash the primary";
}

TEST(ChaosOracles, DisabledFailoverIsCaughtWithReproducer) {
  // Plant the bug the harness exists to catch: a failure detector that
  // never declares.  The primary crashes, nobody takes over, and the
  // exactly-one-primary oracle must fire once the declared epoch closes.
  ChaosOptions opts;
  opts.config.ping_max_misses = 1000000;
  opts.crash_probability = 1.0;
  opts.crash_backup_bias = 0.0;

  const SeedReport report = run_seed(7, opts);
  ASSERT_FALSE(report.ok()) << "sabotaged failover must be caught";

  bool found = false;
  for (const OracleViolation& v : report.violations) {
    if (v.oracle == std::string("exactly-one-primary")) found = true;
  }
  EXPECT_TRUE(found) << "expected an exactly-one-primary violation";

  // The reproducer is ready to paste and names the killing action.
  EXPECT_NE(report.reproducer.find("crash_primary"), std::string::npos);
  EXPECT_NE(report.reproducer.find("plan.arm()"), std::string::npos);
  EXPECT_NE(report.reproducer.find("seed 7"), std::string::npos);
}

TEST(ChaosOracles, SlowUpdatesAreCaughtByStalenessWindow) {
  // Second planted bug: force a transmission period that dwarfs every
  // negotiated window.  No faults are injected, so nothing excuses the
  // violations and the staleness oracle must fire.
  ChaosOptions opts;
  opts.duration = seconds(5);
  opts.config.update_period_override = millis(800);
  opts.config.admission_control_enabled = false;
  opts.enable_loss_storms = false;
  opts.enable_link_faults = false;
  opts.enable_crashes = false;

  const SeedReport report = run_seed(1, opts);
  ASSERT_FALSE(report.ok());
  bool found = false;
  for (const OracleViolation& v : report.violations) {
    if (v.oracle == std::string("staleness-window")) found = true;
  }
  EXPECT_TRUE(found) << "expected a staleness-window violation";
}

TEST(ChaosOracles, ViolationCountKeepsCountingPastStorageCap) {
  ChaosOptions opts;
  opts.duration = seconds(10);
  opts.config.update_period_override = millis(800);
  opts.config.admission_control_enabled = false;
  opts.enable_loss_storms = false;
  opts.enable_link_faults = false;
  opts.enable_crashes = false;

  const SeedReport report = run_seed(2, opts);
  ASSERT_FALSE(report.ok());
  EXPECT_GE(report.violation_count, report.violations.size());
}

}  // namespace
}  // namespace rtpb::chaos
