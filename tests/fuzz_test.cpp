// Randomised robustness tests: the wire decoder, the x-kernel message
// buffer and the event queue are exercised with adversarial inputs and
// checked against reference models.  These are the surfaces that consume
// untrusted bytes (anything off the network) or carry the whole
// simulation's correctness.
#include <gtest/gtest.h>

#include <deque>
#include <map>

#include "core/object_store.hpp"
#include "core/wire.hpp"
#include "sim/simulator.hpp"
#include "store/wal.hpp"
#include "util/rng.hpp"
#include "xkernel/message.hpp"
#include "xkernel/udplite.hpp"

namespace rtpb {
namespace {

TEST(WireFuzz, RandomBytesNeverCrashDecoder) {
  Rng rng(0xF00D);
  for (int trial = 0; trial < 5000; ++trial) {
    Bytes junk(static_cast<std::size_t>(rng.uniform(0, 200)));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.uniform(0, 255));
    const auto decoded = core::wire::decode(junk);
    if (decoded) {
      // If it decoded, the tag must be a known one (1..15: kUpdate through
      // kStateDelta).
      const auto t = static_cast<std::uint8_t>(decoded->type);
      EXPECT_GE(t, 1);
      EXPECT_LE(t, 15);
    }
  }
}

TEST(WireFuzz, TruncationsOfValidMessagesNeverDecodeToWrongType) {
  core::wire::StateTransfer st;
  st.transfer_id = 42;
  core::wire::StateEntry e;
  e.spec.id = 1;
  e.spec.name = "fuzzed-object";
  e.spec.client_period = millis(10);
  e.value = Bytes(100, 0xAA);
  st.entries.push_back(e);
  const Bytes full = core::wire::encode(st);
  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    Bytes truncated(full.begin(), full.begin() + static_cast<std::ptrdiff_t>(cut));
    EXPECT_FALSE(core::wire::decode(truncated).has_value()) << "cut=" << cut;
  }
}

TEST(WireFuzz, SingleByteMutationsEitherFailOrKeepType) {
  const Bytes original = core::wire::encode(core::wire::Update{
      3, 77, TimePoint{123456}, false, Bytes{1, 2, 3, 4, 5, 6, 7, 8}});
  Rng rng(0xBEEF);
  for (int trial = 0; trial < 2000; ++trial) {
    Bytes mutated = original;
    const auto pos = static_cast<std::size_t>(
        rng.uniform(0, static_cast<std::int64_t>(mutated.size()) - 1));
    mutated[pos] ^= static_cast<std::uint8_t>(rng.uniform(1, 255));
    const auto decoded = core::wire::decode(mutated);
    // Mutating the tag byte may produce a different (or no) message; any
    // other single-byte flip must still decode as an Update or fail —
    // never crash or misattribute the payload length.
    if (decoded && pos != 0) {
      EXPECT_EQ(decoded->type, core::wire::MsgType::kUpdate);
    }
  }
}

TEST(WireFuzz, UpdateBatchMutationsNeverCrashOrMisparse) {
  core::wire::UpdateBatch batch;
  for (std::uint32_t i = 0; i < 6; ++i) {
    batch.entries.push_back(core::wire::UpdateBatchEntry{
        i + 1, i * 10 + 1, TimePoint{static_cast<std::int64_t>(i) * 1000},
        Bytes(8 + i * 4, static_cast<std::uint8_t>(i))});
  }
  batch.epoch = 12;
  const Bytes original = core::wire::encode(batch);
  Rng rng(0xD00F);
  for (int trial = 0; trial < 3000; ++trial) {
    Bytes mutated = original;
    // 1-3 random byte mutations per trial: hits the count field, the
    // per-entry length prefixes and the epoch tail.
    const int flips = static_cast<int>(rng.uniform(1, 3));
    for (int f = 0; f < flips; ++f) {
      const auto pos = static_cast<std::size_t>(
          rng.uniform(0, static_cast<std::int64_t>(mutated.size()) - 1));
      mutated[pos] ^= static_cast<std::uint8_t>(rng.uniform(1, 255));
    }
    const auto decoded = core::wire::decode(mutated);
    if (decoded && decoded->type == core::wire::MsgType::kUpdateBatch) {
      // If it still parsed as a batch, the entry list must be internally
      // consistent — the decoder never hands back a half-read frame.
      ASSERT_TRUE(decoded->update_batch.has_value());
      EXPECT_LE(decoded->update_batch->entries.size(), mutated.size() / 24 + 1);
    }
  }
}

TEST(WireFuzz, UpdateBatchTruncationsNeverDecode) {
  core::wire::UpdateBatch batch;
  for (std::uint32_t i = 0; i < 4; ++i) {
    batch.entries.push_back(core::wire::UpdateBatchEntry{
        i + 1, 100 + i, TimePoint{static_cast<std::int64_t>(i) * 500},
        Bytes(5 + i, static_cast<std::uint8_t>(0xB0 + i))});
  }
  batch.epoch = 7;
  const Bytes full = core::wire::encode(batch);
  // Every strict prefix must be rejected: the entry count pins the list
  // length and the trailing epoch pins the total, so no cut can silently
  // decode as a shorter batch.
  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    Bytes truncated(full.begin(), full.begin() + static_cast<std::ptrdiff_t>(cut));
    EXPECT_FALSE(core::wire::decode(truncated).has_value()) << "cut=" << cut;
  }
}

TEST(WireFuzz, UpdateBatchAdversarialEntryCountsRejectedWithoutAllocating) {
  core::wire::UpdateBatch batch;
  batch.entries.push_back(core::wire::UpdateBatchEntry{1, 1, TimePoint{1}, Bytes(8, 0xAA)});
  batch.epoch = 3;
  const Bytes original = core::wire::encode(batch);
  // Forge the u32 entry count (bytes 1..4, little-endian) to every kind of
  // lie: zero, off-by-one, huge, and all-ones.  The decoder must reject
  // each before reserving storage for the claimed count — a crash or an
  // out-of-memory here means the count was trusted.
  for (const std::uint32_t forged :
       {0u, 2u, 3u, 0x0000ffffu, 0x00ffffffu, 0x7fffffffu, 0xffffffffu}) {
    Bytes lied = original;
    lied[1] = static_cast<std::uint8_t>(forged & 0xff);
    lied[2] = static_cast<std::uint8_t>((forged >> 8) & 0xff);
    lied[3] = static_cast<std::uint8_t>((forged >> 16) & 0xff);
    lied[4] = static_cast<std::uint8_t>((forged >> 24) & 0xff);
    EXPECT_FALSE(core::wire::decode(lied).has_value()) << "count=" << forged;
  }
}

TEST(WireFuzz, UpdateBatchRoundTripPreservesEveryField) {
  core::wire::UpdateBatch batch;
  for (std::uint32_t i = 0; i < 5; ++i) {
    batch.entries.push_back(core::wire::UpdateBatchEntry{
        i * 7 + 1, (i + 1) * 1000, TimePoint{static_cast<std::int64_t>(i) * 12345},
        Bytes(i * 3, static_cast<std::uint8_t>(i))});
  }
  batch.epoch = 0xDEADBEEFULL;
  const auto decoded = core::wire::decode(core::wire::encode(batch));
  ASSERT_TRUE(decoded.has_value());
  ASSERT_EQ(decoded->type, core::wire::MsgType::kUpdateBatch);
  ASSERT_TRUE(decoded->update_batch.has_value());
  const auto& rt = *decoded->update_batch;
  EXPECT_EQ(rt.epoch, batch.epoch);
  ASSERT_EQ(rt.entries.size(), batch.entries.size());
  for (std::size_t i = 0; i < rt.entries.size(); ++i) {
    EXPECT_EQ(rt.entries[i].object, batch.entries[i].object);
    EXPECT_EQ(rt.entries[i].version, batch.entries[i].version);
    EXPECT_EQ(rt.entries[i].timestamp, batch.entries[i].timestamp);
    EXPECT_EQ(rt.entries[i].value, batch.entries[i].value);
  }
}

TEST(WireFuzz, ConstraintFramesRoundTripPreservesEveryField) {
  core::wire::ConstraintDowngrade down;
  down.object = 9;
  down.delta_primary = millis(30);
  down.delta_backup = millis(480);
  down.update_period = millis(55);
  down.qos_seq = 17;
  down.epoch = 4;
  const auto d = core::wire::decode(core::wire::encode(down));
  ASSERT_TRUE(d.has_value());
  ASSERT_EQ(d->type, core::wire::MsgType::kConstraintDowngrade);
  ASSERT_TRUE(d->constraint_downgrade.has_value());
  EXPECT_EQ(d->constraint_downgrade->object, down.object);
  EXPECT_EQ(d->constraint_downgrade->delta_primary, down.delta_primary);
  EXPECT_EQ(d->constraint_downgrade->delta_backup, down.delta_backup);
  EXPECT_EQ(d->constraint_downgrade->update_period, down.update_period);
  EXPECT_EQ(d->constraint_downgrade->qos_seq, down.qos_seq);
  EXPECT_EQ(d->constraint_downgrade->epoch, down.epoch);

  core::wire::ConstraintRestore rest;
  rest.object = 9;
  rest.delta_backup = millis(160);
  rest.update_period = millis(20);
  rest.qos_seq = 18;
  rest.epoch = 4;
  const auto r = core::wire::decode(core::wire::encode(rest));
  ASSERT_TRUE(r.has_value());
  ASSERT_EQ(r->type, core::wire::MsgType::kConstraintRestore);
  ASSERT_TRUE(r->constraint_restore.has_value());
  EXPECT_EQ(r->constraint_restore->object, rest.object);
  EXPECT_EQ(r->constraint_restore->delta_backup, rest.delta_backup);
  EXPECT_EQ(r->constraint_restore->update_period, rest.update_period);
  EXPECT_EQ(r->constraint_restore->qos_seq, rest.qos_seq);
  EXPECT_EQ(r->constraint_restore->epoch, rest.epoch);
}

TEST(WireFuzz, ConstraintTruncationsNeverDecode) {
  core::wire::ConstraintDowngrade down;
  down.object = 2;
  down.delta_backup = millis(320);
  down.qos_seq = 5;
  core::wire::ConstraintRestore rest;
  rest.object = 2;
  rest.delta_backup = millis(160);
  rest.qos_seq = 6;
  for (const Bytes& full : {core::wire::encode(down), core::wire::encode(rest)}) {
    for (std::size_t cut = 0; cut < full.size(); ++cut) {
      Bytes truncated(full.begin(), full.begin() + static_cast<std::ptrdiff_t>(cut));
      EXPECT_FALSE(core::wire::decode(truncated).has_value()) << "cut=" << cut;
    }
  }
}

TEST(WireFuzz, ConstraintMutationsKeepTypeOrFail) {
  // Both QoS frames are fixed-size with raw integer fields: every non-tag
  // single-byte mutation is still a structurally valid frame, so it MUST
  // decode, as the same type (a decode failure would mean the decoder is
  // conflating field bytes with framing).  Tag mutations may turn the
  // frame into anything or nothing — they only have to not crash.
  const Bytes down = core::wire::encode(core::wire::ConstraintDowngrade{
      4, millis(30), millis(480), millis(50), 21, 2});
  const Bytes rest = core::wire::encode(core::wire::ConstraintRestore{
      4, millis(160), millis(25), 22, 2});
  Rng rng(0xFACE);
  for (int trial = 0; trial < 2000; ++trial) {
    const bool use_down = rng.bernoulli(0.5);
    Bytes mutated = use_down ? down : rest;
    const auto pos = static_cast<std::size_t>(
        rng.uniform(0, static_cast<std::int64_t>(mutated.size()) - 1));
    mutated[pos] ^= static_cast<std::uint8_t>(rng.uniform(1, 255));
    const auto decoded = core::wire::decode(mutated);
    if (pos != 0) {
      ASSERT_TRUE(decoded.has_value()) << "pos=" << pos;
      EXPECT_EQ(decoded->type, use_down ? core::wire::MsgType::kConstraintDowngrade
                                        : core::wire::MsgType::kConstraintRestore);
    }
  }
}

TEST(WireFuzz, ResyncRequestRoundTripPreservesEveryField) {
  core::wire::ResyncRequest rq;
  for (std::uint32_t i = 0; i < 7; ++i) {
    rq.have.push_back(core::wire::ResyncEntry{i + 1, i * 1000 + 3, i * 2});
  }
  const auto decoded = core::wire::decode(core::wire::encode(rq));
  ASSERT_TRUE(decoded.has_value());
  ASSERT_EQ(decoded->type, core::wire::MsgType::kResyncRequest);
  ASSERT_TRUE(decoded->resync_request.has_value());
  const auto& rt = *decoded->resync_request;
  ASSERT_EQ(rt.have.size(), rq.have.size());
  for (std::size_t i = 0; i < rt.have.size(); ++i) {
    EXPECT_EQ(rt.have[i].object, rq.have[i].object);
    EXPECT_EQ(rt.have[i].version, rq.have[i].version);
    EXPECT_EQ(rt.have[i].qos_seq, rq.have[i].qos_seq);
  }
  // The epoch must round-trip as the bootstrap wildcard the protocol
  // relies on — a fenced resync request would strand every rejoiner.
  EXPECT_EQ(rt.epoch, 0u);
}

TEST(WireFuzz, ResyncRequestTruncationsNeverDecode) {
  core::wire::ResyncRequest rq;
  rq.have.push_back(core::wire::ResyncEntry{1, 42, 0});
  rq.have.push_back(core::wire::ResyncEntry{2, 7, 3});
  const Bytes full = core::wire::encode(rq);
  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    Bytes truncated(full.begin(), full.begin() + static_cast<std::ptrdiff_t>(cut));
    EXPECT_FALSE(core::wire::decode(truncated).has_value()) << "cut=" << cut;
  }
}

TEST(WireFuzz, ResyncRequestAdversarialEntryCountsRejected) {
  core::wire::ResyncRequest rq;
  rq.have.push_back(core::wire::ResyncEntry{1, 1, 0});
  const Bytes original = core::wire::encode(rq);
  // Forge the u32 entry count (bytes 1..4, little-endian): the decoder
  // must reject every lie before reserving storage for the claimed count.
  for (const std::uint32_t forged :
       {0u, 2u, 3u, 0x0000ffffu, 0x00ffffffu, 0x7fffffffu, 0xffffffffu}) {
    Bytes lied = original;
    lied[1] = static_cast<std::uint8_t>(forged & 0xff);
    lied[2] = static_cast<std::uint8_t>((forged >> 8) & 0xff);
    lied[3] = static_cast<std::uint8_t>((forged >> 16) & 0xff);
    lied[4] = static_cast<std::uint8_t>((forged >> 24) & 0xff);
    EXPECT_FALSE(core::wire::decode(lied).has_value()) << "count=" << forged;
  }
}

namespace {

core::wire::StateDelta sample_delta() {
  core::wire::StateDelta sd;
  sd.transfer_id = 99;
  for (std::uint32_t i = 0; i < 3; ++i) {
    core::wire::StateEntry e;
    e.spec.id = i + 1;
    e.spec.name = "delta-" + std::to_string(i + 1);
    e.spec.client_period = millis(10 + i);
    e.spec.delta_primary = millis(20);
    e.spec.delta_backup = millis(100 + i * 10);
    e.update_period = millis(5 + i);
    e.version = 1000 + i;
    e.timestamp = TimePoint{static_cast<std::int64_t>(i) * 777};
    e.value = Bytes(16 + i * 8, static_cast<std::uint8_t>(0xC0 + i));
    sd.entries.push_back(std::move(e));
  }
  sd.constraints.push_back(core::InterObjectConstraint{1, 2, millis(40)});
  sd.epoch = 6;
  return sd;
}

}  // namespace

TEST(WireFuzz, StateDeltaRoundTripPreservesEveryField) {
  const core::wire::StateDelta sd = sample_delta();
  const auto decoded = core::wire::decode(core::wire::encode(sd));
  ASSERT_TRUE(decoded.has_value());
  ASSERT_EQ(decoded->type, core::wire::MsgType::kStateDelta);
  ASSERT_TRUE(decoded->state_delta.has_value());
  const auto& rt = *decoded->state_delta;
  EXPECT_EQ(rt.transfer_id, sd.transfer_id);
  EXPECT_EQ(rt.epoch, sd.epoch);
  ASSERT_EQ(rt.entries.size(), sd.entries.size());
  for (std::size_t i = 0; i < rt.entries.size(); ++i) {
    EXPECT_EQ(rt.entries[i].spec.id, sd.entries[i].spec.id);
    EXPECT_EQ(rt.entries[i].spec.name, sd.entries[i].spec.name);
    EXPECT_EQ(rt.entries[i].spec.delta_backup, sd.entries[i].spec.delta_backup);
    EXPECT_EQ(rt.entries[i].update_period, sd.entries[i].update_period);
    EXPECT_EQ(rt.entries[i].version, sd.entries[i].version);
    EXPECT_EQ(rt.entries[i].timestamp, sd.entries[i].timestamp);
    EXPECT_EQ(rt.entries[i].value, sd.entries[i].value);
  }
  ASSERT_EQ(rt.constraints.size(), 1u);
  EXPECT_EQ(rt.constraints[0].first, 1u);
  EXPECT_EQ(rt.constraints[0].second, 2u);
  EXPECT_EQ(rt.constraints[0].delta, millis(40));
}

TEST(WireFuzz, StateDeltaTruncationsNeverDecode) {
  const Bytes full = core::wire::encode(sample_delta());
  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    Bytes truncated(full.begin(), full.begin() + static_cast<std::ptrdiff_t>(cut));
    EXPECT_FALSE(core::wire::decode(truncated).has_value()) << "cut=" << cut;
  }
}

TEST(WireFuzz, StateDeltaMutationsNeverCrashOrMisparse) {
  const Bytes original = core::wire::encode(sample_delta());
  Rng rng(0xD317A);
  for (int trial = 0; trial < 3000; ++trial) {
    Bytes mutated = original;
    const int flips = static_cast<int>(rng.uniform(1, 3));
    for (int f = 0; f < flips; ++f) {
      const auto pos = static_cast<std::size_t>(
          rng.uniform(0, static_cast<std::int64_t>(mutated.size()) - 1));
      mutated[pos] ^= static_cast<std::uint8_t>(rng.uniform(1, 255));
    }
    const auto decoded = core::wire::decode(mutated);
    if (decoded && decoded->type == core::wire::MsgType::kStateDelta) {
      // If it still parsed as a delta, the entry list must be internally
      // consistent — never a half-read frame.
      ASSERT_TRUE(decoded->state_delta.has_value());
      EXPECT_LE(decoded->state_delta->entries.size(), mutated.size());
    }
  }
}

TEST(WalFuzz, RandomLogsNeverCrashReplay) {
  Rng rng(0x3A11);
  for (int trial = 0; trial < 2000; ++trial) {
    Bytes junk(static_cast<std::size_t>(rng.uniform(0, 256)));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.uniform(0, 255));
    std::size_t delivered = 0;
    const store::ReplayStats s = store::replay(
        junk, [&delivered](std::span<const std::uint8_t>) { ++delivered; });
    // Whatever the bytes, the stats must balance: every delivered payload
    // was a valid record, and the torn tail accounts for the rest.
    EXPECT_EQ(s.records, delivered);
    EXPECT_LE(s.torn_bytes, junk.size());
    if (!s.clean) EXPECT_GT(s.torn_bytes, 0u);
  }
}

TEST(WalFuzz, CorruptionStopsReplayAtFirstBadFrame) {
  // Three framed records; flipping any byte inside record k must cut the
  // replay to exactly the k records before it (CRC prefix discipline).
  std::vector<Bytes> frames;
  std::vector<std::size_t> starts;
  Bytes log;
  for (std::uint32_t i = 0; i < 3; ++i) {
    store::WriteRecord w;
    w.object = i + 1;
    w.version = 10 + i;
    w.timestamp = TimePoint{static_cast<std::int64_t>(i) * 100};
    w.origin_timestamp = w.timestamp;
    w.value = Bytes(24, static_cast<std::uint8_t>(i));
    const Bytes frame = store::frame_record(store::encode(w));
    starts.push_back(log.size());
    frames.push_back(frame);
    log.insert(log.end(), frame.begin(), frame.end());
  }
  Rng rng(0xBADC);
  for (int trial = 0; trial < 500; ++trial) {
    const auto k = static_cast<std::size_t>(rng.uniform(0, 2));
    const auto off = static_cast<std::size_t>(
        rng.uniform(0, static_cast<std::int64_t>(frames[k].size()) - 1));
    Bytes corrupted = log;
    corrupted[starts[k] + off] ^= static_cast<std::uint8_t>(rng.uniform(1, 255));
    const store::ReplayStats s = store::replay(corrupted, [](auto) {});
    EXPECT_LE(s.records, k) << "k=" << k << " off=" << off;
    EXPECT_FALSE(s.clean && s.records < 3);
  }
}

TEST(WalFuzz, DuplicateAndOverlappingRecordsAreDeliveredVerbatim) {
  // Duplicate suppression is the recovery layer's job (version gating);
  // the codec must deliver every well-framed record, duplicates included.
  store::WriteRecord w;
  w.object = 5;
  w.version = 1;
  w.value = Bytes(8, 0xEE);
  const Bytes frame = store::frame_record(store::encode(w));
  Bytes log;
  for (int i = 0; i < 4; ++i) log.insert(log.end(), frame.begin(), frame.end());
  std::size_t seen = 0;
  const store::ReplayStats s = store::replay(log, [&seen](auto) { ++seen; });
  EXPECT_EQ(s.records, 4u);
  EXPECT_EQ(seen, 4u);
  EXPECT_TRUE(s.clean);

  // An "overlapping" log — a record whose length field swallows the next
  // frame's bytes — fails its CRC and cuts the replay there.
  Bytes overlap = log;
  overlap[0] = static_cast<std::uint8_t>(overlap[0] + 4);  // inflate len of record 0
  const store::ReplayStats o = store::replay(overlap, [](auto) {});
  EXPECT_EQ(o.records, 0u);
  EXPECT_FALSE(o.clean);
}

TEST(WalFuzz, AbsurdCheckpointCountsRejectedByRecordDecoder) {
  store::CheckpointRecord cp;
  cp.epoch = 2;
  core::ObjectState st;
  st.spec.id = 1;
  st.spec.client_period = millis(10);
  cp.states.push_back(st);
  Bytes payload = store::encode(cp);
  ASSERT_TRUE(store::decode_record(payload).has_value());
  // The state count sits after kind(1) + epoch(8) + next_transfer_id(8);
  // forge it to every kind of lie — each must be rejected, not reserved.
  const std::size_t count_at = 1 + 8 + 8;
  for (const std::uint32_t forged : {0u, 2u, 0x0000ffffu, 0x7fffffffu, 0xffffffffu}) {
    Bytes lied = payload;
    lied[count_at] = static_cast<std::uint8_t>(forged & 0xff);
    lied[count_at + 1] = static_cast<std::uint8_t>((forged >> 8) & 0xff);
    lied[count_at + 2] = static_cast<std::uint8_t>((forged >> 16) & 0xff);
    lied[count_at + 3] = static_cast<std::uint8_t>((forged >> 24) & 0xff);
    EXPECT_FALSE(store::decode_record(lied).has_value()) << "count=" << forged;
  }
}

TEST(MessageFuzz, RandomPushPopMatchesReferenceModel) {
  Rng rng(0xCAFE);
  for (int trial = 0; trial < 200; ++trial) {
    Bytes payload(static_cast<std::size_t>(rng.uniform(0, 64)), 0x11);
    xkernel::Message msg(payload, static_cast<std::size_t>(rng.uniform(0, 16)));
    std::deque<std::uint8_t> model(payload.begin(), payload.end());

    for (int op = 0; op < 50; ++op) {
      if (rng.bernoulli(0.5)) {
        Bytes hdr(static_cast<std::size_t>(rng.uniform(1, 40)));
        for (auto& b : hdr) b = static_cast<std::uint8_t>(rng.uniform(0, 255));
        msg.push(hdr);
        model.insert(model.begin(), hdr.begin(), hdr.end());
      } else if (!model.empty()) {
        const auto n = static_cast<std::size_t>(
            rng.uniform(1, static_cast<std::int64_t>(model.size())));
        const auto popped = msg.pop(n);
        ASSERT_EQ(popped.size(), n);
        for (std::size_t i = 0; i < n; ++i) {
          ASSERT_EQ(popped[i], model.front());
          model.pop_front();
        }
      }
      ASSERT_EQ(msg.size(), model.size());
    }
    const Bytes rest = msg.to_bytes();
    ASSERT_EQ(rest, Bytes(model.begin(), model.end()));
  }
}

TEST(EventQueueFuzz, RandomScheduleCancelRespectsOrderAndCancellation) {
  Rng rng(0xABCD);
  for (int trial = 0; trial < 50; ++trial) {
    sim::Simulator sim;
    struct Planned {
      TimePoint at;
      bool cancelled;
    };
    std::vector<Planned> plan;
    std::vector<sim::EventHandle> handles;
    std::vector<std::size_t> fired;

    for (std::size_t i = 0; i < 300; ++i) {
      const TimePoint at{rng.uniform(0, 10'000)};
      plan.push_back({at, false});
      handles.push_back(sim.schedule_at(at, [&fired, i] { fired.push_back(i); }));
    }
    for (std::size_t i = 0; i < plan.size(); ++i) {
      if (rng.bernoulli(0.3)) {
        plan[i].cancelled = true;
        EXPECT_TRUE(handles[i].cancel());
      }
    }
    sim.run();

    // Every non-cancelled event fired exactly once, in nondecreasing time,
    // with scheduling order breaking ties.
    std::size_t expected = 0;
    for (const auto& p : plan) {
      if (!p.cancelled) ++expected;
    }
    ASSERT_EQ(fired.size(), expected);
    for (std::size_t k = 1; k < fired.size(); ++k) {
      const auto a = fired[k - 1];
      const auto b = fired[k];
      ASSERT_TRUE(plan[a].at < plan[b].at || (plan[a].at == plan[b].at && a < b));
    }
    for (auto idx : fired) ASSERT_FALSE(plan[idx].cancelled);
  }
}

TEST(ChecksumFuzz, EverySingleBitFlipDetected) {
  Bytes data(64, 0);
  Rng rng(0x5151);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.uniform(0, 255));
  const auto good = xkernel::UdpLite::checksum(data);
  for (std::size_t byte = 0; byte < data.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      Bytes corrupted = data;
      corrupted[byte] ^= static_cast<std::uint8_t>(1u << bit);
      EXPECT_NE(xkernel::UdpLite::checksum(corrupted), good)
          << "byte " << byte << " bit " << bit;
    }
  }
}

TEST(StoreFuzz, RandomOpsMatchModel) {
  Rng rng(0x9999);
  core::ObjectStore store;
  std::map<core::ObjectId, std::pair<std::uint64_t, Bytes>> model;  // id -> (version, value)
  for (int op = 0; op < 2000; ++op) {
    const auto id = static_cast<core::ObjectId>(rng.uniform(1, 20));
    const int what = static_cast<int>(rng.uniform(0, 3));
    if (what == 0) {
      core::ObjectSpec spec;
      spec.id = id;
      spec.client_period = millis(10);
      const bool inserted = store.insert(spec);
      EXPECT_EQ(inserted, !model.contains(id));
      if (inserted) model[id] = {0, {}};
    } else if (what == 1 && model.contains(id)) {
      Bytes v{static_cast<std::uint8_t>(rng.uniform(0, 255))};
      const auto ver = store.write(id, v, TimePoint{op});
      auto& entry = model[id];
      ++entry.first;
      entry.second = v;
      EXPECT_EQ(ver, entry.first);
    } else if (what == 2 && model.contains(id)) {
      const auto version = static_cast<std::uint64_t>(rng.uniform(0, 8));
      Bytes v{static_cast<std::uint8_t>(rng.uniform(0, 255))};
      const bool applied = store.apply(id, version, TimePoint{op}, v, TimePoint{op});
      auto& entry = model[id];
      EXPECT_EQ(applied, version > entry.first);
      if (applied) entry = {version, v};
    }
    if (model.contains(id)) {
      const auto& s = store.get(id);
      EXPECT_EQ(s.version, model[id].first);
      EXPECT_EQ(s.value, model[id].second);
    }
  }
}

}  // namespace
}  // namespace rtpb
