// Multi-backup deployments (the paper's "support for multiple backups"
// future-work item): update fan-out to every backup, acked registration
// across all of them, successor-based failover, and re-pointing of the
// surviving backups at the new primary.
#include "core/rtpb.hpp"

#include <gtest/gtest.h>

namespace rtpb::core {
namespace {

ObjectSpec make_spec(ObjectId id) {
  ObjectSpec s;
  s.id = id;
  s.name = "obj" + std::to_string(id);
  s.size_bytes = 64;
  s.client_period = millis(10);
  s.client_exec = micros(200);
  s.update_exec = micros(200);
  s.delta_primary = millis(20);
  s.delta_backup = millis(100);
  return s;
}

ServiceParams make_params(std::size_t backups, std::uint64_t seed = 42) {
  ServiceParams p;
  p.seed = seed;
  p.link.propagation = millis(1);
  p.link.jitter = micros(200);
  p.backup_count = backups;
  return p;
}

TEST(MultiBackup, UpdatesFanOutToAllBackups) {
  RtpbService service(make_params(3));
  service.start();
  ASSERT_TRUE(service.register_object(make_spec(1)).ok());
  service.run_for(seconds(2));
  for (auto& b : service.backups()) {
    const auto state = b->read(1);
    ASSERT_TRUE(state.has_value());
    EXPECT_GT(state->version, 0u) << "backup node" << b->node();
  }
  // Versions should be closely aligned across backups.
  const auto v0 = service.backups()[0]->read(1)->version;
  for (auto& b : service.backups()) {
    EXPECT_NEAR(static_cast<double>(b->read(1)->version), static_cast<double>(v0), 3.0);
  }
}

TEST(MultiBackup, RegistrationReachesAllBackups) {
  RtpbService service(make_params(3));
  service.start();
  for (ObjectId id = 1; id <= 4; ++id) {
    ASSERT_TRUE(service.register_object(make_spec(id)).ok());
  }
  service.run_for(seconds(1));
  for (auto& b : service.backups()) {
    EXPECT_EQ(b->store().size(), 4u) << "backup node" << b->node();
  }
}

TEST(MultiBackup, OnlySuccessorPromotes) {
  RtpbService service(make_params(3));
  service.start();
  ASSERT_TRUE(service.register_object(make_spec(1)).ok());
  service.run_for(seconds(1));
  service.crash_primary();
  service.run_for(seconds(2));
  EXPECT_EQ(service.backups()[0]->role(), Role::kPrimary);
  EXPECT_EQ(service.backups()[1]->role(), Role::kBackup);
  EXPECT_EQ(service.backups()[2]->role(), Role::kBackup);
}

TEST(MultiBackup, SurvivorsFollowNewPrimary) {
  RtpbService service(make_params(3));
  service.start();
  ASSERT_TRUE(service.register_object(make_spec(1)).ok());
  service.run_for(seconds(1));
  service.crash_primary();
  service.run_for(seconds(3));

  ReplicaServer& new_primary = service.acting_primary();
  ASSERT_EQ(&new_primary, service.backups()[0].get());
  // The other backups re-peered with the new primary...
  for (std::size_t i = 1; i < service.backups().size(); ++i) {
    const auto& peers = service.backups()[i]->peers();
    ASSERT_EQ(peers.size(), 1u);
    EXPECT_EQ(peers.front(), new_primary.endpoint());
  }
  // ...and keep receiving the update stream from it.
  const auto v1 = service.backups()[1]->read(1)->version;
  const auto v2 = service.backups()[2]->read(1)->version;
  service.run_for(seconds(3));
  EXPECT_GT(service.backups()[1]->read(1)->version, v1);
  EXPECT_GT(service.backups()[2]->read(1)->version, v2);
}

TEST(MultiBackup, ReplicationContinuesThroughDoubleFailure) {
  // Crash the primary, then the promoted successor: the final backup is
  // re-pointed twice and must still end up following a live primary.
  RtpbService service(make_params(3, /*seed=*/9));
  service.start();
  ASSERT_TRUE(service.register_object(make_spec(1)).ok());
  service.run_for(seconds(1));

  service.crash_primary();
  service.run_for(seconds(2));
  ASSERT_EQ(service.backups()[0]->role(), Role::kPrimary);

  service.backups()[0]->crash();
  service.run_for(seconds(3));
  // The second backup is the new successor... but in this topology the
  // promotion policy designated only backup 0 as successor.  Survivors
  // stay backups; the service would need operator action — assert exactly
  // that nothing promoted spontaneously (split-brain safety).
  EXPECT_EQ(service.backups()[1]->role(), Role::kBackup);
  EXPECT_EQ(service.backups()[2]->role(), Role::kBackup);
}

TEST(MultiBackup, ConsistencyMetricsHealthyWithThreeBackups) {
  RtpbService service(make_params(3));
  service.start();
  for (ObjectId id = 1; id <= 3; ++id) {
    ASSERT_TRUE(service.register_object(make_spec(id)).ok());
  }
  service.warm_up(seconds(1));
  service.run_for(seconds(5));
  service.finish();
  EXPECT_EQ(service.metrics().inconsistency_intervals(), 0u);
}

TEST(MultiBackup, SingleBackupStillDefault) {
  RtpbService service(make_params(1));
  service.start();
  EXPECT_EQ(service.backups().size(), 1u);
  ASSERT_TRUE(service.register_object(make_spec(1)).ok());
  service.run_for(seconds(1));
  EXPECT_GT(service.backup().read(1)->version, 0u);
}

}  // namespace
}  // namespace rtpb::core
