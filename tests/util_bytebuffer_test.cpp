#include "util/bytebuffer.hpp"

#include <gtest/gtest.h>

namespace rtpb {
namespace {

TEST(ByteBuffer, RoundTripScalars) {
  ByteWriter w;
  w.u8(0xAB);
  w.u16(0x1234);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFULL);
  w.i64(-42);
  w.f64(3.14159);

  ByteReader r(w.data());
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u16(), 0x1234);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_DOUBLE_EQ(r.f64(), 3.14159);
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.at_end());
}

TEST(ByteBuffer, BigEndianLayout) {
  ByteWriter w;
  w.u32(0x01020304);
  ASSERT_EQ(w.size(), 4u);
  EXPECT_EQ(w.data()[0], 0x01);
  EXPECT_EQ(w.data()[3], 0x04);
}

TEST(ByteBuffer, ExactReserveNeverReallocates) {
  // Multi-byte appends go in as one bulk insert, so a writer reserved at
  // the exact frame size encodes without growing — the one-allocation
  // frame-encode invariant the wirepath bench asserts with a real
  // allocation counter.
  const std::size_t frame = 1 + 2 + 4 + 8 + 8 + (4 + 16);
  ByteWriter w(frame);
  const std::size_t cap = w.data().capacity();
  ASSERT_GE(cap, frame);
  w.u8(0xAB);
  w.u16(0x1234);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFULL);
  w.i64(-42);
  w.bytes(Bytes(16, 0x77));
  EXPECT_EQ(w.size(), frame);
  EXPECT_EQ(w.data().capacity(), cap);
}

TEST(ByteBuffer, AppendedScalarsDecodeAfterBulkInsert) {
  // The bulk big-endian path must keep byte order: round-trip mixed widths
  // back to back with no padding.
  ByteWriter w;
  for (std::uint32_t i = 0; i < 64; ++i) {
    w.u16(static_cast<std::uint16_t>(i * 257));
    w.u64(static_cast<std::uint64_t>(i) * 0x0101010101010101ULL);
  }
  ByteReader r(w.data());
  for (std::uint32_t i = 0; i < 64; ++i) {
    EXPECT_EQ(r.u16(), static_cast<std::uint16_t>(i * 257));
    EXPECT_EQ(r.u64(), static_cast<std::uint64_t>(i) * 0x0101010101010101ULL);
  }
  EXPECT_TRUE(r.ok() && r.at_end());
}

TEST(ByteBuffer, RoundTripTimeTypes) {
  ByteWriter w;
  w.duration(millis(17));
  w.timepoint(TimePoint{123456789});
  ByteReader r(w.data());
  EXPECT_EQ(r.duration(), millis(17));
  EXPECT_EQ(r.timepoint(), TimePoint{123456789});
  EXPECT_TRUE(r.ok());
}

TEST(ByteBuffer, RoundTripStringsAndBytes) {
  ByteWriter w;
  w.string("hello");
  w.string("");
  Bytes blob{1, 2, 3, 255};
  w.bytes(blob);
  ByteReader r(w.data());
  EXPECT_EQ(r.string(), "hello");
  EXPECT_EQ(r.string(), "");
  EXPECT_EQ(r.bytes(), blob);
  EXPECT_TRUE(r.at_end());
}

TEST(ByteBuffer, OverReadSetsFailed) {
  ByteWriter w;
  w.u16(7);
  ByteReader r(w.data());
  EXPECT_EQ(r.u16(), 7);
  EXPECT_EQ(r.u32(), 0u);  // past end: zero value
  EXPECT_FALSE(r.ok());
}

TEST(ByteBuffer, TruncatedLengthPrefixFails) {
  ByteWriter w;
  w.u32(1000);  // claims 1000 bytes follow but none do
  ByteReader r(w.data());
  EXPECT_TRUE(r.bytes().empty());
  EXPECT_FALSE(r.ok());
}

TEST(ByteBuffer, NegativeDurationSurvives) {
  ByteWriter w;
  w.duration(millis(-5));
  ByteReader r(w.data());
  EXPECT_EQ(r.duration(), millis(-5));
}

TEST(ByteBuffer, RawAppendHasNoPrefix) {
  ByteWriter w;
  Bytes raw{9, 8, 7};
  w.raw(raw);
  EXPECT_EQ(w.size(), 3u);
  EXPECT_EQ(w.data(), raw);
}

}  // namespace
}  // namespace rtpb
