#include "util/stats.hpp"

#include <gtest/gtest.h>

namespace rtpb {
namespace {

TEST(RunningStats, Moments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138089935, 1e-6);  // sample stddev
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, MergeMatchesCombined) {
  RunningStats a, b, all;
  for (int i = 0; i < 50; ++i) {
    const double x = static_cast<double>(i * i % 17);
    (i % 2 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(SampleSet, Quantiles) {
  SampleSet s;
  for (int i = 1; i <= 100; ++i) s.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 100.0);
  EXPECT_NEAR(s.quantile(0.5), 50.5, 1e-9);
  EXPECT_NEAR(s.quantile(0.99), 99.01, 1e-9);
  EXPECT_DOUBLE_EQ(s.mean(), 50.5);
}

TEST(SampleSet, SingleAndEmpty) {
  SampleSet s;
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 0.0);
  s.add(42.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 42.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 42.0);
}

TEST(SampleSet, AddDurationConvertsToMillis) {
  SampleSet s;
  s.add(millis(3));
  EXPECT_DOUBLE_EQ(s.max(), 3.0);
}

TEST(Histogram, BucketsAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);   // bucket 0
  h.add(9.5);   // bucket 9
  h.add(-5.0);  // clamps to 0
  h.add(50.0);  // clamps to 9
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.bucket(9), 2u);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_DOUBLE_EQ(h.bucket_lo(5), 5.0);
  EXPECT_FALSE(h.render().empty());
}

TEST(HistogramDeathTest, RejectsDegenerateConstruction) {
  // A lo >= hi range would make every bucket width non-positive and
  // add() divide by a zero-or-negative width; zero buckets would clamp
  // into an empty vector.  Both are precondition violations, not silent
  // degenerate histograms.
  EXPECT_DEATH(Histogram(1.0, 1.0, 4), "precondition");
  EXPECT_DEATH(Histogram(2.0, 1.0, 4), "precondition");
  EXPECT_DEATH(Histogram(0.0, 1.0, 0), "precondition");
}

TEST(IntervalRecorder, BasicOpenClose) {
  IntervalRecorder r;
  r.open(TimePoint{100});
  r.close(TimePoint{300});
  r.open(TimePoint{500});
  r.close(TimePoint{600});
  EXPECT_EQ(r.interval_count(), 2u);
  EXPECT_EQ(r.total(), Duration{300});
  EXPECT_FALSE(r.is_open());
}

TEST(IntervalRecorder, RedundantTransitionsIgnored) {
  IntervalRecorder r;
  r.close(TimePoint{50});  // not open: no-op
  r.open(TimePoint{100});
  r.open(TimePoint{150});  // already open: keeps original start
  r.close(TimePoint{200});
  EXPECT_EQ(r.interval_count(), 1u);
  EXPECT_EQ(r.total(), Duration{100});
}

TEST(IntervalRecorder, FinishClosesOpenInterval) {
  IntervalRecorder r;
  r.open(TimePoint{10});
  r.finish(TimePoint{40});
  EXPECT_EQ(r.interval_count(), 1u);
  EXPECT_EQ(r.total(), Duration{30});
}

}  // namespace
}  // namespace rtpb
