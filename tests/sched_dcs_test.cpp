// The DCS scheduler family: S_a (parametric base), S_x (minimum-period
// base) and S_r (searched base), plus their algebraic relationships.
#include <gtest/gtest.h>

#include "sched/analysis.hpp"
#include "util/rng.hpp"

namespace rtpb::sched {
namespace {

TaskSpec task(Duration period, Duration wcet) {
  TaskSpec t;
  t.period = period;
  t.wcet = wcet;
  return t;
}

TaskSet random_set(Rng& rng, std::size_t n, double util) {
  TaskSet set;
  for (std::size_t i = 0; i < n; ++i) {
    TaskSpec t;
    t.period = millis(rng.uniform(10, 250));
    t.wcet = std::max(micros(100), t.period.scaled(util / static_cast<double>(n)));
    set.push_back(t);
  }
  return set;
}

TEST(DcsSa, SpecializesToBaseTimesPowerOfTwo) {
  TaskSet set{task(millis(10), millis(1)), task(millis(37), millis(2)),
              task(millis(95), millis(4))};
  const auto s = dcs_specialize_with_base(set, millis(10));
  ASSERT_EQ(s.periods.size(), 3u);
  EXPECT_EQ(s.periods[0], millis(10));
  EXPECT_EQ(s.periods[1], millis(20));
  EXPECT_EQ(s.periods[2], millis(80));
}

TEST(DcsSa, BaseEqualToAllPeriodsIsIdentity) {
  TaskSet set{task(millis(10), millis(1)), task(millis(20), millis(1)),
              task(millis(40), millis(1))};
  const auto s = dcs_specialize_with_base(set, millis(10));
  EXPECT_EQ(s.periods[0], millis(10));
  EXPECT_EQ(s.periods[1], millis(20));
  EXPECT_EQ(s.periods[2], millis(40));
  EXPECT_NEAR(s.density, total_utilization(set), 1e-12);
}

TEST(DcsSx, UsesMinimumPeriodAsBase) {
  TaskSet set{task(millis(25), millis(1)), task(millis(12), millis(1)),
              task(millis(70), millis(1))};
  const auto s = dcs_specialize_sx(set);
  EXPECT_EQ(s.base, millis(12));
  EXPECT_EQ(s.periods[0], millis(24));
  EXPECT_EQ(s.periods[1], millis(12));
  EXPECT_EQ(s.periods[2], millis(48));
}

TEST(DcsSx, EmptySetIsTrivial) {
  const auto s = dcs_specialize_sx({});
  EXPECT_TRUE(s.periods.empty());
  EXPECT_DOUBLE_EQ(s.density, 0.0);
}

TEST(DcsFamily, SrNeverWorseThanSx) {
  Rng rng(555);
  for (int trial = 0; trial < 200; ++trial) {
    TaskSet set = random_set(rng, 2 + static_cast<std::size_t>(rng.uniform(0, 5)), 0.5);
    const auto sx = dcs_specialize_sx(set);
    const auto sr = dcs_specialize(set);
    EXPECT_LE(sr.density, sx.density + 1e-12) << "trial " << trial;
  }
}

TEST(DcsFamily, DensityInflationBoundedByTwo) {
  // Power-of-two specialisation at worst halves a period, so density at
  // most doubles relative to the raw utilisation.
  Rng rng(777);
  for (int trial = 0; trial < 200; ++trial) {
    TaskSet set = random_set(rng, 4, 0.4);
    const double u = total_utilization(set);
    EXPECT_LE(dcs_specialize_sx(set).density, 2.0 * u + 1e-9);
    EXPECT_LE(dcs_specialize(set).density, 2.0 * u + 1e-9);
  }
}

TEST(DcsFamily, SpecializedPeriodsNeverExceedOriginals) {
  Rng rng(999);
  for (int trial = 0; trial < 100; ++trial) {
    TaskSet set = random_set(rng, 5, 0.5);
    for (const DcsSpecialization& spec : {dcs_specialize_sx(set), dcs_specialize(set)}) {
      for (std::size_t i = 0; i < set.size(); ++i) {
        EXPECT_LE(spec.periods[i], set[i].period);
        EXPECT_GT(spec.periods[i], Duration::zero());
      }
    }
  }
}

TEST(DcsFamily, SrBaseLiesInHalfOpenIntervalAboveHalfMin) {
  Rng rng(1234);
  for (int trial = 0; trial < 100; ++trial) {
    TaskSet set = random_set(rng, 4, 0.5);
    Duration cmin = Duration::max();
    for (const auto& t : set) cmin = std::min(cmin, t.period);
    const auto sr = dcs_specialize(set);
    EXPECT_GT(sr.base * 2, cmin);
    EXPECT_LE(sr.base, cmin);
  }
}

TEST(DcsFamily, HarmonicChainProperty) {
  // All specialised periods divide one another pairwise (after sorting) —
  // the property that makes the fixed-priority schedule cyclic.
  Rng rng(4321);
  for (int trial = 0; trial < 100; ++trial) {
    TaskSet set = random_set(rng, 5, 0.4);
    const auto sr = dcs_specialize(set);
    std::vector<Duration> ps = sr.periods;
    std::sort(ps.begin(), ps.end());
    for (std::size_t i = 1; i < ps.size(); ++i) {
      EXPECT_EQ(ps[i].nanos() % ps[i - 1].nanos(), 0)
          << ps[i - 1].to_string() << " !| " << ps[i].to_string();
    }
  }
}

}  // namespace
}  // namespace rtpb::sched
