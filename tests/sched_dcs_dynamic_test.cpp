// Dynamic task arrival/departure under the DCS S_r policy: the harmonic
// specialisation is rebuilt and future releases follow the new periods.
#include <gtest/gtest.h>

#include "sched/cpu.hpp"

namespace rtpb::sched {
namespace {

TaskSpec make_task(Duration period, Duration wcet) {
  TaskSpec t;
  t.period = period;
  t.wcet = wcet;
  return t;
}

TEST(DcsDynamic, AddingTaskRespecializes) {
  sim::Simulator sim;
  Cpu cpu(sim, Policy::kDcsSr);
  const TaskId a = cpu.add_task(make_task(millis(10), millis(1)), nullptr);
  EXPECT_EQ(cpu.effective_period(a), millis(10));
  // A 25ms task specialises to 20ms with base 10.
  const TaskId b = cpu.add_task(make_task(millis(25), millis(2)), nullptr);
  EXPECT_EQ(cpu.effective_period(b), millis(20));
  EXPECT_EQ(cpu.effective_period(a), millis(10));
}

TEST(DcsDynamic, AddingShorterTaskMayChangeBase) {
  sim::Simulator sim;
  Cpu cpu(sim, Policy::kDcsSr);
  const TaskId a = cpu.add_task(make_task(millis(40), millis(2)), nullptr);
  EXPECT_EQ(cpu.effective_period(a), millis(40));
  // A 15ms task forces a base <= 15: 40 specialises down (e.g. 30 with
  // base 15, or another harmonic value <= 40).
  const TaskId b = cpu.add_task(make_task(millis(15), millis(1)), nullptr);
  EXPECT_LE(cpu.effective_period(b), millis(15));
  EXPECT_LE(cpu.effective_period(a), millis(40));
  const auto base = cpu.effective_period(b);
  EXPECT_EQ(cpu.effective_period(a).nanos() % base.nanos(), 0);
}

TEST(DcsDynamic, RuntimeAdditionKeepsZeroVarianceAfterResettle) {
  sim::Simulator sim;
  Cpu cpu(sim, Policy::kDcsSr);
  const TaskId a = cpu.add_task(make_task(millis(10), millis(1)), nullptr);
  cpu.start(TimePoint::zero());
  sim.run_until(TimePoint::zero() + seconds(1));
  const TaskId b = cpu.add_task(make_task(millis(20), millis(2)), nullptr);
  // Let the new schedule settle one hyperperiod, then measure cleanly.
  sim.run_until(sim.now() + millis(100));
  // Trackers were rebuilt at respecialisation; just run and verify.
  sim.run_until(sim.now() + seconds(5));
  EXPECT_EQ(cpu.tracker(a).phase_variance(), Duration::zero());
  EXPECT_EQ(cpu.tracker(b).phase_variance(), Duration::zero());
}

TEST(DcsDynamic, RemovalRespecializesRemaining) {
  sim::Simulator sim;
  Cpu cpu(sim, Policy::kDcsSr);
  const TaskId small = cpu.add_task(make_task(millis(15), millis(1)), nullptr);
  const TaskId big = cpu.add_task(make_task(millis(40), millis(2)), nullptr);
  ASSERT_LT(cpu.effective_period(big), millis(40));  // specialised down
  cpu.remove_task(small);
  // Alone again, the 40ms task runs at its own period.
  EXPECT_EQ(cpu.effective_period(big), millis(40));
}

}  // namespace
}  // namespace rtpb::sched
