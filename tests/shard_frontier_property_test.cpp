// FrontierTracker model check: random interleavings of track / forget /
// re-track / advance against a trivially-correct std::map model.
//
// The tracker's cached argmin is only rescanned when the minimum slot
// itself advances or dies, and forgotten slots are recycled for later
// track() calls — so the dangerous trajectories are exactly the ones this
// suite drives: forget the argmin, reuse its slot for a different object,
// advance through the cache, and read frontier() after every step.  A
// stale cache pointing at a dead or reused slot shows up as a frontier
// mismatch immediately.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <vector>

#include "shard/frontier.hpp"
#include "util/rng.hpp"

namespace rtpb::shard {
namespace {

TimePoint model_frontier(const std::map<core::ObjectId, TimePoint>& model) {
  if (model.empty()) return TimePoint::max();
  TimePoint min = TimePoint::max();
  for (const auto& [id, ts] : model) min = std::min(min, ts);
  return min;
}

/// One random trajectory: `ops` operations over a small id universe (so
/// forget/re-track collisions are frequent), checking the frontier after
/// every single operation.
void run_trajectory(std::uint64_t seed, int ops) {
  Rng rng(seed);
  FrontierTracker tracker;
  std::map<core::ObjectId, TimePoint> model;
  constexpr core::ObjectId kUniverse = 12;  // small: lots of slot reuse

  for (int op = 0; op < ops; ++op) {
    const core::ObjectId id = static_cast<core::ObjectId>(rng.uniform(1, kUniverse));
    const auto ts = TimePoint::zero() + millis(static_cast<std::int64_t>(rng.uniform(0, 1000)));
    switch (rng.uniform(0, 3)) {
      case 0:  // track (duplicate track must be ignored)
        tracker.track(id, ts);
        model.try_emplace(id, ts);
        break;
      case 1:  // forget (unknown id must be ignored)
        tracker.forget(id);
        model.erase(id);
        break;
      default: {  // advance (unknown id ignored; stale ts ignored)
        tracker.advance(id, ts);
        auto it = model.find(id);
        if (it != model.end() && ts > it->second) it->second = ts;
        break;
      }
    }
    ASSERT_EQ(tracker.frontier(), model_frontier(model))
        << "seed " << seed << " diverged at op " << op;
    ASSERT_EQ(tracker.size(), model.size());
  }
}

TEST(FrontierTrackerProperty, RandomTrajectoriesMatchModel) {
  for (std::uint64_t seed = 1; seed <= 50; ++seed) run_trajectory(seed, 2000);
}

TEST(FrontierTrackerProperty, ArgminSlotReuseIsExact) {
  // The targeted trajectory: make an object the argmin, cache it, kill
  // it, recycle its slot for an object with a LARGER timestamp, and
  // verify the cache did not keep the dead argmin's location authority.
  FrontierTracker tracker;
  tracker.track(1, TimePoint::zero() + millis(5));
  tracker.track(2, TimePoint::zero() + millis(50));
  ASSERT_EQ(tracker.frontier(), TimePoint::zero() + millis(5));  // cache argmin = obj 1

  tracker.forget(1);                                 // argmin dies, slot freed
  tracker.track(3, TimePoint::zero() + millis(99));  // reuses obj 1's slot
  EXPECT_EQ(tracker.frontier(), TimePoint::zero() + millis(50));

  // Re-track the ORIGINAL id into a different timestamp: no ghost state.
  tracker.track(1, TimePoint::zero() + millis(70));
  EXPECT_EQ(tracker.frontier(), TimePoint::zero() + millis(50));
  tracker.forget(2);
  EXPECT_EQ(tracker.frontier(), TimePoint::zero() + millis(70));

  // Advance the cached argmin past everyone: rescan must find obj 3.
  tracker.advance(1, TimePoint::zero() + millis(500));
  EXPECT_EQ(tracker.frontier(), TimePoint::zero() + millis(99));
}

TEST(FrontierTrackerProperty, DrainToEmptyAndRefill) {
  FrontierTracker tracker;
  for (core::ObjectId id = 1; id <= 8; ++id) {
    tracker.track(id, TimePoint::zero() + millis(static_cast<std::int64_t>(id)));
  }
  ASSERT_EQ(tracker.frontier(), TimePoint::zero() + millis(1));
  for (core::ObjectId id = 1; id <= 8; ++id) tracker.forget(id);
  EXPECT_TRUE(tracker.empty());
  EXPECT_EQ(tracker.frontier(), TimePoint::max());
  // Refill entirely out of the free list, in reverse id order.
  for (core::ObjectId id = 8; id >= 1; --id) {
    tracker.track(id, TimePoint::zero() + millis(static_cast<std::int64_t>(10 * id)));
  }
  EXPECT_EQ(tracker.frontier(), TimePoint::zero() + millis(10));
  EXPECT_EQ(tracker.size(), 8u);
}

}  // namespace
}  // namespace rtpb::shard
