// Property test for the UDPLITE Internet checksum: a single flipped bit
// must ALWAYS be detected.  The ones'-complement sum changes any 16-bit
// word by ±2^k, which can never vanish mod 65535, so no single-bit error
// class collides — the property is exact, not probabilistic.
//
// The end-to-end half drives the property through the real stack with the
// link-level corruption knob aimed past the lower-layer headers
// (corrupt_skip = IPLITE + UDPLITE header bytes), asserting that
// UdpLite::checksum_failures() counts exactly the frames the link
// corrupted and that no corrupted payload ever reaches the application.
#include <gtest/gtest.h>

#include "net/network.hpp"
#include "util/rng.hpp"
#include "xkernel/graph.hpp"
#include "xkernel/iplite.hpp"
#include "xkernel/udplite.hpp"

namespace rtpb::xkernel {
namespace {

TEST(ChecksumProperty, EverySingleBitFlipIsDetected) {
  Rng rng(0xC0FFEE);
  for (const std::size_t size : {1u, 2u, 3u, 8u, 17u, 64u, 263u, 1024u}) {
    Bytes data(size);
    for (auto& byte : data) {
      byte = static_cast<std::uint8_t>(rng.uniform(0, 255));
    }
    const std::uint16_t good = UdpLite::checksum(data);
    for (std::size_t i = 0; i < size; ++i) {
      for (int bit = 0; bit < 8; ++bit) {
        data[i] ^= static_cast<std::uint8_t>(1u << bit);
        EXPECT_NE(UdpLite::checksum(data), good)
            << "size " << size << " byte " << i << " bit " << bit;
        data[i] ^= static_cast<std::uint8_t>(1u << bit);
      }
    }
    EXPECT_EQ(UdpLite::checksum(data), good) << "flips must have been undone";
  }
}

TEST(ChecksumProperty, AllZeroAndAllOneBuffersStillDetectFlips) {
  // Degenerate inputs where ones'-complement arithmetic is at its
  // trickiest (0x0000 vs 0xFFFF are congruent mod 65535).
  for (const std::uint8_t fill : {std::uint8_t{0x00}, std::uint8_t{0xFF}}) {
    Bytes data(40, fill);
    const std::uint16_t good = UdpLite::checksum(data);
    for (std::size_t i = 0; i < data.size(); ++i) {
      for (int bit = 0; bit < 8; ++bit) {
        data[i] ^= static_cast<std::uint8_t>(1u << bit);
        EXPECT_NE(UdpLite::checksum(data), good);
        data[i] ^= static_cast<std::uint8_t>(1u << bit);
      }
    }
  }
}

struct CorruptingStackPair {
  sim::Simulator sim{99};
  net::Network network{sim};
  HostStack host_a{network};
  HostStack host_b{network};

  explicit CorruptingStackPair(double corrupt_probability) {
    network.connect(host_a.node(), host_b.node(), net::LinkParams{});
    net::LinkFaults faults;
    faults.corrupt_probability = corrupt_probability;
    // Aim every flip at the checksummed datagram body: spare the IPLITE
    // and UDPLITE headers (a port flip would misroute, not checksum-fail).
    faults.corrupt_skip = IpLite::kHeaderSize + UdpLite::kHeaderSize;
    network.set_faults(host_a.node(), host_b.node(), faults);
  }
};

TEST(ChecksumEndToEnd, EveryCorruptedDatagramIsCaughtAndCounted) {
  CorruptingStackPair env(1.0);
  std::size_t received = 0;
  env.host_b.udp().bind(1000, [&](Message&, const MsgAttrs&) { ++received; });

  const int n = 100;
  for (int i = 0; i < n; ++i) {
    env.host_a.send_datagram(2000, {env.host_b.node(), 1000},
                             Bytes(64, static_cast<std::uint8_t>(i)));
  }
  env.sim.run();

  EXPECT_EQ(received, 0u) << "no corrupted payload may reach the application";
  EXPECT_EQ(env.host_b.udp().checksum_failures(), static_cast<std::uint64_t>(n));
  EXPECT_EQ(env.network.stats(env.host_a.node(), env.host_b.node()).corrupted,
            static_cast<std::uint64_t>(n));
}

TEST(ChecksumEndToEnd, FailureCounterMatchesLinkCorruptionExactly) {
  CorruptingStackPair env(0.5);
  std::size_t received = 0;
  env.host_b.udp().bind(7, [&](Message&, const MsgAttrs&) { ++received; });

  const int n = 400;
  for (int i = 0; i < n; ++i) {
    env.host_a.send_datagram(8, {env.host_b.node(), 7},
                             Bytes(128, static_cast<std::uint8_t>(i)));
  }
  env.sim.run();

  const std::uint64_t corrupted =
      env.network.stats(env.host_a.node(), env.host_b.node()).corrupted;
  EXPECT_GT(corrupted, 0u);
  EXPECT_LT(corrupted, static_cast<std::uint64_t>(n));
  EXPECT_EQ(env.host_b.udp().checksum_failures(), corrupted)
      << "every corrupted frame, and only corrupted frames, must fail the checksum";
  EXPECT_EQ(received, static_cast<std::size_t>(n) - corrupted);
}

TEST(ChecksumEndToEnd, EmptyBodyDatagramsSurviveTheSkipClamp) {
  // A zero-body datagram is exactly header-sized, so the corruption knob
  // clamps its skip to the final wire byte — the low byte of the stored
  // UDPLITE checksum.  A flip there always mismatches the (empty-body)
  // checksum, so even the degenerate frame is detected, never delivered.
  CorruptingStackPair env(1.0);
  std::size_t received = 0;
  env.host_b.udp().bind(5, [&](Message&, const MsgAttrs&) { ++received; });
  for (int i = 0; i < 50; ++i) {
    env.host_a.send_datagram(6, {env.host_b.node(), 5}, Bytes{});
  }
  env.sim.run();
  EXPECT_EQ(received, 0u);
  EXPECT_EQ(env.host_b.udp().checksum_failures(), 50u);
}

}  // namespace
}  // namespace rtpb::xkernel
