#include "net/network.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace rtpb::net {
namespace {

struct TwoNodes {
  sim::Simulator sim{1234};
  Network network{sim};
  std::vector<Packet> at_a;
  std::vector<Packet> at_b;
  NodeId a;
  NodeId b;

  explicit TwoNodes(LinkParams params = {}) {
    a = network.add_node([this](const Packet& p) { at_a.push_back(p); });
    b = network.add_node([this](const Packet& p) { at_b.push_back(p); });
    network.connect(a, b, params);
  }
};

TEST(Network, DeliversPayloadIntact) {
  TwoNodes env;
  Bytes payload{1, 2, 3, 4, 5};
  EXPECT_TRUE(env.network.send(env.a, env.b, payload));
  env.sim.run();
  ASSERT_EQ(env.at_b.size(), 1u);
  EXPECT_EQ(env.at_b[0].payload, payload);
  EXPECT_EQ(env.at_b[0].src, env.a);
  EXPECT_EQ(env.at_b[0].dst, env.b);
}

TEST(Network, DeliveryDelayWithinBound) {
  LinkParams p;
  p.propagation = millis(2);
  p.jitter = millis(1);
  p.bandwidth_bps = 10e6;
  TwoNodes env(p);
  const std::size_t payload_size = 100;
  TimePoint sent = env.sim.now();
  env.network.send(env.a, env.b, Bytes(payload_size, 0));
  env.sim.run();
  ASSERT_EQ(env.at_b.size(), 1u);
  const Duration delay = env.sim.now() - sent;
  EXPECT_GE(delay, millis(2));
  EXPECT_LE(delay, p.delay_bound(payload_size + Packet::kFramingOverhead));
}

TEST(Network, NoLinkMeansNoDelivery) {
  sim::Simulator sim;
  Network network(sim);
  int delivered = 0;
  NodeId a = network.add_node([&](const Packet&) { ++delivered; });
  NodeId c = network.add_node([&](const Packet&) { ++delivered; });
  EXPECT_FALSE(network.send(a, c, Bytes{1}));
  sim.run();
  EXPECT_EQ(delivered, 0);
}

TEST(Network, FullLossDropsEverything) {
  LinkParams p;
  p.loss_probability = 1.0;
  TwoNodes env(p);
  for (int i = 0; i < 100; ++i) env.network.send(env.a, env.b, Bytes{1});
  env.sim.run();
  EXPECT_TRUE(env.at_b.empty());
  EXPECT_EQ(env.network.stats(env.a, env.b).dropped, 100u);
}

TEST(Network, LossRateApproximatesProbability) {
  LinkParams p;
  p.loss_probability = 0.2;
  TwoNodes env(p);
  const int n = 20'000;
  for (int i = 0; i < n; ++i) env.network.send(env.a, env.b, Bytes{1});
  env.sim.run();
  const double delivered = static_cast<double>(env.at_b.size()) / n;
  EXPECT_NEAR(delivered, 0.8, 0.02);
}

TEST(Network, FifoPerDirectionEvenWithJitter) {
  LinkParams p;
  p.propagation = millis(1);
  p.jitter = millis(5);  // jitter larger than the send spacing
  TwoNodes env(p);
  for (std::uint8_t i = 0; i < 50; ++i) {
    env.network.send(env.a, env.b, Bytes{i});
    env.sim.run_until(env.sim.now() + micros(100));
  }
  env.sim.run();
  ASSERT_EQ(env.at_b.size(), 50u);
  for (std::uint8_t i = 0; i < 50; ++i) EXPECT_EQ(env.at_b[i].payload[0], i);
}

TEST(Network, DownNodeReceivesNothing) {
  TwoNodes env;
  env.network.set_node_up(env.b, false);
  env.network.send(env.a, env.b, Bytes{1});
  env.sim.run();
  EXPECT_TRUE(env.at_b.empty());
  EXPECT_EQ(env.network.stats(env.a, env.b).dropped, 1u);
  // Back up: deliveries resume.
  env.network.set_node_up(env.b, true);
  env.network.send(env.a, env.b, Bytes{2});
  env.sim.run();
  ASSERT_EQ(env.at_b.size(), 1u);
}

TEST(Network, BidirectionalTraffic) {
  TwoNodes env;
  env.network.send(env.a, env.b, Bytes{1});
  env.network.send(env.b, env.a, Bytes{2});
  env.sim.run();
  ASSERT_EQ(env.at_b.size(), 1u);
  ASSERT_EQ(env.at_a.size(), 1u);
}

TEST(Network, SetLossProbabilityMidRun) {
  TwoNodes env;
  env.network.send(env.a, env.b, Bytes{1});
  env.sim.run();
  EXPECT_EQ(env.at_b.size(), 1u);
  env.network.set_loss_probability(env.a, env.b, 1.0);
  env.network.send(env.a, env.b, Bytes{2});
  env.sim.run();
  EXPECT_EQ(env.at_b.size(), 1u);  // dropped
}

TEST(Network, StatsCountSentDelivered) {
  TwoNodes env;
  for (int i = 0; i < 10; ++i) env.network.send(env.a, env.b, Bytes{1});
  env.sim.run();
  const LinkStats& s = env.network.stats(env.a, env.b);
  EXPECT_EQ(s.sent, 10u);
  EXPECT_EQ(s.delivered, 10u);
  EXPECT_EQ(s.dropped, 0u);
}

TEST(LinkParams, DelayBoundAccountsForBandwidth) {
  LinkParams p;
  p.propagation = millis(1);
  p.jitter = Duration::zero();
  p.bandwidth_bps = 1e6;  // 1 Mb/s: 1000 bytes take 8 ms
  EXPECT_EQ(p.delay_bound(1000), millis(9));
  p.bandwidth_bps = 0;  // infinite
  EXPECT_EQ(p.delay_bound(1000), millis(1));
}

}  // namespace
}  // namespace rtpb::net
