#include "util/time.hpp"

#include <gtest/gtest.h>

namespace rtpb {
namespace {

TEST(Duration, ConstructionAndAccessors) {
  EXPECT_EQ(millis(5).nanos(), 5'000'000);
  EXPECT_EQ(micros(7).nanos(), 7'000);
  EXPECT_EQ(seconds(2).nanos(), 2'000'000'000);
  EXPECT_DOUBLE_EQ(millis(1500).seconds(), 1.5);
  EXPECT_DOUBLE_EQ(millis_f(2.5).millis(), 2.5);
}

TEST(Duration, Arithmetic) {
  EXPECT_EQ(millis(3) + millis(4), millis(7));
  EXPECT_EQ(millis(10) - millis(4), millis(6));
  EXPECT_EQ(millis(3) * 4, millis(12));
  EXPECT_EQ(millis(12) / 4, millis(3));
  EXPECT_EQ(-millis(5), millis(-5));
}

TEST(Duration, CompoundAssignment) {
  Duration d = millis(1);
  d += millis(2);
  EXPECT_EQ(d, millis(3));
  d -= millis(1);
  EXPECT_EQ(d, millis(2));
}

TEST(Duration, Ordering) {
  EXPECT_LT(millis(1), millis(2));
  EXPECT_GT(millis(3), micros(2999));
  EXPECT_LE(millis(1), millis(1));
}

TEST(Duration, ScaledRoundsToNearest) {
  EXPECT_EQ(millis(10).scaled(0.5), millis(5));
  EXPECT_EQ(nanos(3).scaled(0.5), nanos(2));   // 1.5 rounds up
  EXPECT_EQ(nanos(-3).scaled(0.5), nanos(-2)); // symmetric
}

TEST(Duration, RatioAndAbs) {
  EXPECT_DOUBLE_EQ(millis(5).ratio(millis(10)), 0.5);
  EXPECT_EQ(millis(-7).abs(), millis(7));
  EXPECT_EQ(millis(7).abs(), millis(7));
}

TEST(TimePoint, ArithmeticWithDuration) {
  const TimePoint t0 = TimePoint::zero();
  const TimePoint t1 = t0 + millis(10);
  EXPECT_EQ(t1.nanos(), 10'000'000);
  EXPECT_EQ(t1 - t0, millis(10));
  EXPECT_EQ(t1 - millis(4), t0 + millis(6));
}

TEST(TimePoint, Ordering) {
  EXPECT_LT(TimePoint::zero(), TimePoint{1});
  EXPECT_EQ(TimePoint{5}, TimePoint{5});
}

TEST(TimeFormatting, ToString) {
  EXPECT_EQ(millis(2).to_string(), "2.000ms");
  EXPECT_EQ((TimePoint::zero() + millis_f(1.5)).to_string(), "1.500ms");
}

}  // namespace
}  // namespace rtpb
