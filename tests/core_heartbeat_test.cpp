#include "core/heartbeat.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace rtpb::core {
namespace {

struct DetectorFixture {
  sim::Simulator sim;
  std::vector<std::uint64_t> pings;
  bool dead = false;
  FailureDetector::Params params{millis(100), millis(50), 3};
  FailureDetector detector{sim, params, [this](std::uint64_t seq) { pings.push_back(seq); },
                           [this] { dead = true; }};
};

TEST(FailureDetector, SendsPeriodicPings) {
  DetectorFixture f;
  f.detector.start();
  // Answer every ping instantly so the peer stays alive.
  f.sim.schedule_after(millis(1), [] {});
  for (int i = 0; i < 10; ++i) {
    f.sim.run_until(f.sim.now() + millis(100));
    f.detector.note_traffic();
  }
  EXPECT_GE(f.detector.pings_sent(), 9u);
  EXPECT_FALSE(f.dead);
}

TEST(FailureDetector, DeclaresDeadAfterMaxMisses) {
  DetectorFixture f;
  f.detector.start();
  // Never answer: 3 misses at 100ms spacing -> dead by ~350ms.
  f.sim.run_until(f.sim.now() + millis(400));
  EXPECT_TRUE(f.dead);
  EXPECT_TRUE(f.detector.peer_declared_dead());
  // Pings stop after the declaration.
  const auto pings_at_death = f.detector.pings_sent();
  f.sim.run_until(f.sim.now() + millis(500));
  EXPECT_EQ(f.detector.pings_sent(), pings_at_death);
}

TEST(FailureDetector, AckWithinTimeoutPreventsMiss) {
  DetectorFixture f;
  f.detector.start();
  // Ack each ping right after it is sent.  Acks must name the ping they
  // answer: the detector credits liveness per matched seq, not per frame.
  for (int i = 0; i < 20; ++i) {
    f.sim.run_until(f.sim.now() + millis(100));  // ping fires at 100*i
    ASSERT_FALSE(f.pings.empty());
    f.detector.on_ping_ack(f.pings.back());
  }
  EXPECT_FALSE(f.dead);
  EXPECT_EQ(f.detector.consecutive_misses(), 0u);
  EXPECT_EQ(f.detector.stale_acks(), 0u);
}

TEST(FailureDetector, StaleOrDuplicateAcksDoNotKeepPeerAlive) {
  DetectorFixture f;
  f.detector.start();
  f.sim.run_until(f.sim.now() + millis(100));
  ASSERT_FALSE(f.pings.empty());
  f.detector.on_ping_ack(f.pings.front());  // genuine credit, once
  // A dup/reorder storm replaying that one old ack forever must not look
  // like liveness: the peer still dies on schedule.
  for (int i = 0; i < 20 && !f.dead; ++i) {
    f.sim.run_until(f.sim.now() + millis(50));
    f.detector.on_ping_ack(f.pings.front());
  }
  EXPECT_TRUE(f.dead);
  EXPECT_GT(f.detector.stale_acks(), 0u);
}

TEST(FailureDetector, AckForUnsentSeqIsIgnored) {
  DetectorFixture f;
  f.detector.start();
  // Acks naming pings never sent (forged / corrupted frames) prove
  // nothing and must not delay the declaration.
  for (int i = 0; i < 20 && !f.dead; ++i) {
    f.sim.run_until(f.sim.now() + millis(50));
    f.detector.on_ping_ack(999);
  }
  EXPECT_TRUE(f.dead);
  EXPECT_GT(f.detector.stale_acks(), 0u);
}

TEST(FailureDetector, OtherTrafficCountsAsLiveness) {
  DetectorFixture f;
  f.detector.start();
  for (int i = 0; i < 20; ++i) {
    f.sim.run_until(f.sim.now() + millis(30));
    f.detector.note_traffic();  // e.g. an UPDATE stream
  }
  EXPECT_FALSE(f.dead);
}

TEST(FailureDetector, TrafficExcusesOutstandingPingButNotPastMisses) {
  DetectorFixture f;
  f.detector.start();
  f.sim.run_until(f.sim.now() + millis(260));  // two timeouts elapsed
  EXPECT_GE(f.detector.consecutive_misses(), 2u);
  EXPECT_FALSE(f.dead);
  // Bare traffic must not rewind the accumulated count (a replayed
  // duplicate of an old frame is indistinguishable from real traffic)...
  f.detector.note_traffic();
  EXPECT_GE(f.detector.consecutive_misses(), 2u);
  // ...but traffic arriving after each subsequent ping's send keeps
  // excusing that ping, so a live update stream resets the count at the
  // next timeout and the peer stays alive.
  for (int i = 0; i < 10; ++i) {
    f.sim.run_until(f.sim.now() + millis(50));
    f.detector.note_traffic();
  }
  EXPECT_FALSE(f.dead);
  EXPECT_EQ(f.detector.consecutive_misses(), 0u);
}

TEST(FailureDetector, StopPreventsDeclaration) {
  DetectorFixture f;
  f.detector.start();
  f.sim.run_until(f.sim.now() + millis(120));
  f.detector.stop();
  f.sim.run_until(f.sim.now() + millis(1000));
  EXPECT_FALSE(f.dead);
}

TEST(FailureDetector, DetectionLatencyIsBounded) {
  // Detection should take roughly max_misses pings + one timeout:
  // 3 * 100ms + 50ms, plus the first ping at 100ms.
  DetectorFixture f;
  f.detector.start();
  TimePoint dead_at{};
  while (!f.dead && f.sim.now() < TimePoint{0} + seconds(2)) {
    f.sim.run_until(f.sim.now() + millis(10));
    if (f.dead) dead_at = f.sim.now();
  }
  ASSERT_TRUE(f.dead);
  EXPECT_LE(dead_at, TimePoint{0} + millis(400));
}

}  // namespace
}  // namespace rtpb::core
