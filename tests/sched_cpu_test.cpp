#include "sched/cpu.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "sched/theory.hpp"

namespace rtpb::sched {
namespace {

TaskSpec make_task(Duration period, Duration wcet, Duration phase = Duration::zero()) {
  TaskSpec t;
  t.period = period;
  t.wcet = wcet;
  t.phase = phase;
  return t;
}

TEST(Cpu, SingleTaskRunsPeriodically) {
  sim::Simulator sim;
  Cpu cpu(sim, Policy::kRateMonotonic);
  std::vector<JobInfo> jobs;
  cpu.add_task(make_task(millis(10), millis(2)), [&](const JobInfo& j) { jobs.push_back(j); });
  cpu.start(TimePoint::zero());
  sim.run_until(TimePoint::zero() + millis(50));
  ASSERT_EQ(jobs.size(), 5u);  // releases at 0,10,20,30,40
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(jobs[i].release, TimePoint::zero() + millis(10) * static_cast<std::int64_t>(i));
    EXPECT_EQ(jobs[i].finish - jobs[i].release, millis(2));
    EXPECT_FALSE(jobs[i].deadline_missed);
  }
}

TEST(Cpu, RmPreemptsLowerPriority) {
  sim::Simulator sim;
  Cpu cpu(sim, Policy::kRateMonotonic);
  std::vector<std::pair<TaskId, TimePoint>> finishes;
  // Long task released at 0, short task released at 1ms preempts it.
  const TaskId long_id = cpu.add_task(
      make_task(millis(100), millis(10)),
      [&](const JobInfo& j) { finishes.emplace_back(j.task, j.finish); });
  const TaskId short_id = cpu.add_task(
      make_task(millis(20), millis(3), millis(1)),
      [&](const JobInfo& j) { finishes.emplace_back(j.task, j.finish); });
  cpu.start(TimePoint::zero());
  sim.run_until(TimePoint::zero() + millis(15));
  ASSERT_EQ(finishes.size(), 2u);
  // Short task (higher RM priority) finishes first at 1+3=4ms...
  EXPECT_EQ(finishes[0].first, short_id);
  EXPECT_EQ(finishes[0].second, TimePoint::zero() + millis(4));
  // ...and the long task's completion is pushed out by the preemption.
  EXPECT_EQ(finishes[1].first, long_id);
  EXPECT_EQ(finishes[1].second, TimePoint::zero() + millis(13));
}

TEST(Cpu, EdfPrefersEarlierDeadline) {
  sim::Simulator sim;
  Cpu cpu(sim, Policy::kEdf);
  std::vector<TaskId> order;
  // Same release; task B has shorter deadline (= period), so runs first
  // under EDF even though A was added first.
  cpu.add_task(make_task(millis(50), millis(5)), [&](const JobInfo& j) { order.push_back(j.task); });
  const TaskId b = cpu.add_task(make_task(millis(20), millis(5)),
                                [&](const JobInfo& j) { order.push_back(j.task); });
  cpu.start(TimePoint::zero());
  sim.run_until(TimePoint::zero() + millis(15));
  ASSERT_GE(order.size(), 2u);
  EXPECT_EQ(order[0], b);
}

TEST(Cpu, FifoRunsInReleaseOrder) {
  sim::Simulator sim;
  Cpu cpu(sim, Policy::kFifo);
  std::vector<TaskId> order;
  const TaskId a = cpu.add_task(make_task(millis(100), millis(5)),
                                [&](const JobInfo& j) { order.push_back(j.task); });
  const TaskId b = cpu.add_task(make_task(millis(10), millis(1), millis(2)),
                                [&](const JobInfo& j) { order.push_back(j.task); });
  cpu.start(TimePoint::zero());
  sim.run_until(TimePoint::zero() + millis(8));
  // a released at 0 runs to completion (5ms) despite b arriving at 2ms.
  ASSERT_GE(order.size(), 2u);
  EXPECT_EQ(order[0], a);
  EXPECT_EQ(order[1], b);
}

TEST(Cpu, DeadlineMissDetectedUnderOverload) {
  sim::Simulator sim;
  Cpu cpu(sim, Policy::kRateMonotonic);
  cpu.add_task(make_task(millis(10), millis(8)), nullptr);
  cpu.add_task(make_task(millis(20), millis(8)), nullptr);  // U = 1.2: overload
  cpu.start(TimePoint::zero());
  sim.run_until(TimePoint::zero() + millis(200));
  EXPECT_GT(cpu.deadline_misses(), 0u);
}

TEST(Cpu, BusyFractionMatchesUtilization) {
  sim::Simulator sim;
  Cpu cpu(sim, Policy::kRateMonotonic);
  cpu.add_task(make_task(millis(10), millis(3)), nullptr);
  cpu.start(TimePoint::zero());
  sim.run_until(TimePoint::zero() + millis(1000));
  EXPECT_NEAR(cpu.busy_fraction(), 0.3, 0.01);
  EXPECT_NEAR(cpu.offered_utilization(), 0.3, 1e-9);
}

TEST(Cpu, RemoveTaskStopsReleases) {
  sim::Simulator sim;
  Cpu cpu(sim, Policy::kRateMonotonic);
  int count = 0;
  const TaskId id = cpu.add_task(make_task(millis(10), millis(1)),
                                 [&](const JobInfo&) { ++count; });
  cpu.start(TimePoint::zero());
  sim.run_until(TimePoint::zero() + millis(35));
  const int at_remove = count;
  cpu.remove_task(id);
  sim.run_until(TimePoint::zero() + millis(100));
  EXPECT_EQ(count, at_remove);
  EXPECT_FALSE(cpu.has_task(id));
}

TEST(Cpu, AddTaskWhileRunning) {
  sim::Simulator sim;
  Cpu cpu(sim, Policy::kRateMonotonic);
  cpu.start(TimePoint::zero());
  sim.run_until(TimePoint::zero() + millis(5));
  int count = 0;
  cpu.add_task(make_task(millis(10), millis(1)), [&](const JobInfo&) { ++count; });
  sim.run_until(TimePoint::zero() + millis(50));
  EXPECT_GE(count, 4);
}

TEST(Cpu, PhaseVarianceZeroWhenAlone) {
  sim::Simulator sim;
  Cpu cpu(sim, Policy::kRateMonotonic);
  const TaskId id = cpu.add_task(make_task(millis(10), millis(2)), nullptr);
  cpu.start(TimePoint::zero());
  sim.run_until(TimePoint::zero() + seconds(1));
  EXPECT_EQ(cpu.tracker(id).phase_variance(), Duration::zero());
}

TEST(Cpu, PhaseVarianceRespectsUniversalBound) {
  sim::Simulator sim;
  Cpu cpu(sim, Policy::kRateMonotonic);
  std::vector<TaskId> ids;
  ids.push_back(cpu.add_task(make_task(millis(7), millis(2)), nullptr));
  ids.push_back(cpu.add_task(make_task(millis(13), millis(3)), nullptr));
  ids.push_back(cpu.add_task(make_task(millis(29), millis(5)), nullptr));
  cpu.start(TimePoint::zero());
  sim.run_until(TimePoint::zero() + seconds(5));
  for (TaskId id : ids) {
    const auto& spec = cpu.spec(id);
    EXPECT_LE(cpu.tracker(id).phase_variance(),
              phase_variance_bound_universal(spec))
        << "task " << spec.id;
  }
}

TEST(Cpu, DcsHarmonicScheduleHasZeroPhaseVariance) {
  sim::Simulator sim;
  Cpu cpu(sim, Policy::kDcsSr);
  std::vector<TaskId> ids;
  // Σ e/p = 0.2 + 0.12 + 0.05 = 0.37 ≤ 3(2^{1/3}-1) ≈ 0.78: Theorem 3 applies.
  ids.push_back(cpu.add_task(make_task(millis(10), millis(2)), nullptr));
  ids.push_back(cpu.add_task(make_task(millis(25), millis(3)), nullptr));
  ids.push_back(cpu.add_task(make_task(millis(60), millis(3)), nullptr));
  cpu.start(TimePoint::zero());
  sim.run_until(TimePoint::zero() + seconds(5));
  for (TaskId id : ids) {
    EXPECT_EQ(cpu.tracker(id).phase_variance(), Duration::zero()) << id;
    EXPECT_LE(cpu.effective_period(id), cpu.spec(id).period);
  }
}

TEST(Cpu, StopHaltsExecution) {
  sim::Simulator sim;
  Cpu cpu(sim, Policy::kRateMonotonic);
  int count = 0;
  cpu.add_task(make_task(millis(10), millis(1)), [&](const JobInfo&) { ++count; });
  cpu.start(TimePoint::zero());
  sim.run_until(TimePoint::zero() + millis(25));
  cpu.stop();
  const int at_stop = count;
  sim.run_until(TimePoint::zero() + millis(200));
  EXPECT_EQ(count, at_stop);
}

}  // namespace
}  // namespace rtpb::sched
