#include "core/name_service.hpp"

#include <gtest/gtest.h>

namespace rtpb::core {
namespace {

TEST(NameService, PublishAndLookup) {
  NameService names;
  EXPECT_FALSE(names.lookup("svc").has_value());
  names.publish("svc", {7, 5000});
  const auto found = names.lookup("svc");
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->node, 7u);
  EXPECT_EQ(found->port, 5000);
}

TEST(NameService, RepublishOverwrites) {
  NameService names;
  names.publish("svc", {1, 5000});
  names.publish("svc", {2, 5000});  // failover rewrites the name file
  EXPECT_EQ(names.lookup("svc")->node, 2u);
}

TEST(NameService, MultipleServicesIndependent) {
  NameService names;
  names.publish("a", {1, 10});
  names.publish("b", {2, 20});
  EXPECT_EQ(names.lookup("a")->node, 1u);
  EXPECT_EQ(names.lookup("b")->node, 2u);
}

TEST(NameService, WithdrawRemoves) {
  NameService names;
  names.publish("svc", {1, 10});
  names.withdraw("svc");
  EXPECT_FALSE(names.lookup("svc").has_value());
  names.withdraw("svc");  // idempotent
}

}  // namespace
}  // namespace rtpb::core
