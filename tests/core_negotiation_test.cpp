// QoS negotiation (paper §4.2): a rejected registration carries a concrete
// feasible alternative, and re-submitting that alternative succeeds.
#include <gtest/gtest.h>

#include "core/admission.hpp"

namespace rtpb::core {
namespace {

ObjectSpec spec(ObjectId id, Duration p = millis(10), Duration delta_p = millis(20),
                Duration delta_b = millis(100)) {
  ObjectSpec s;
  s.id = id;
  s.name = "obj" + std::to_string(id);
  s.client_period = p;
  s.client_exec = micros(200);
  s.update_exec = micros(200);
  s.delta_primary = delta_p;
  s.delta_backup = delta_b;
  return s;
}

TEST(Negotiation, PeriodExceedsDeltaSuggestsWiderConstraint) {
  AdmissionController ac(ServiceConfig{}, millis(2));
  const auto r = ac.admit(spec(1, /*p=*/millis(50), /*delta_p=*/millis(20)));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.code(), AdmissionError::kPeriodExceedsDelta);
  ASSERT_TRUE(r.error().suggestion.has_value());
  const ObjectSpec& alt = *r.error().suggestion;
  EXPECT_GE(alt.delta_primary, alt.client_period);
  // The suggestion is admissible as promised.
  EXPECT_TRUE(ac.admit(alt).ok());
}

TEST(Negotiation, WindowTooSmallSuggestsWiderWindow) {
  AdmissionController ac(ServiceConfig{}, millis(10));
  const auto r = ac.admit(spec(1, millis(10), millis(20), millis(25)));  // window 5 < ell 10
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.code(), AdmissionError::kWindowTooSmall);
  ASSERT_TRUE(r.error().suggestion.has_value());
  EXPECT_GT(r.error().suggestion->window(), millis(10));
  EXPECT_TRUE(ac.admit(*r.error().suggestion).ok());
}

TEST(Negotiation, UnschedulableSuggestsSlowerRate) {
  AdmissionController ac(ServiceConfig{}, millis(2));
  // Fill most of the CPU.
  for (ObjectId id = 1; id <= 6; ++id) {
    ObjectSpec heavy = spec(id);
    heavy.client_exec = millis(1);
    ASSERT_TRUE(ac.admit(heavy).ok()) << id;
  }
  // This one does not fit at its requested rate...
  ObjectSpec demanding = spec(100);
  demanding.client_exec = millis(4);
  const auto r = ac.admit(demanding);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.code(), AdmissionError::kUnschedulable);
  // ...but a slower variant exists and is admissible.
  ASSERT_TRUE(r.error().suggestion.has_value());
  const ObjectSpec& alt = *r.error().suggestion;
  EXPECT_GT(alt.client_period, demanding.client_period);
  EXPECT_TRUE(ac.admit(alt).ok());
}

TEST(Negotiation, HopelessDemandGetsNoSuggestion) {
  AdmissionController ac(ServiceConfig{}, millis(2));
  // An object whose execution time exceeds any sane scaled period.
  ObjectSpec impossible = spec(1);
  impossible.client_period = micros(500);
  impossible.client_exec = micros(499);  // ~100% utilisation by itself
  impossible.delta_primary = micros(500);
  const auto r = ac.admit(impossible);
  ASSERT_FALSE(r.ok());
  // Doubling the period never reduces utilisation below 1 because exec is
  // fixed... (it does halve utilisation: 499us/1ms = 0.5, admissible).
  // So instead saturate the CPU first, then even 64x relaxation fails.
  AdmissionController full(ServiceConfig{}, millis(2));
  for (ObjectId id = 1; id <= 3; ++id) {
    ObjectSpec heavy = spec(id);
    heavy.client_exec = millis(2);  // 3 * 20% + update tasks
    ASSERT_TRUE(full.admit(heavy).ok());
  }
  // 16x overcommitted: even the negotiator's maximum 64x slowdown still
  // leaves 25% utilisation on a ~62%-loaded server — past the RM bound.
  ObjectSpec monster = spec(50);
  monster.client_period = millis(1);
  monster.client_exec = millis(16);
  const auto r2 = full.admit(monster);
  ASSERT_FALSE(r2.ok());
  EXPECT_FALSE(r2.error().suggestion.has_value());
}

TEST(Negotiation, DuplicateAndInvalidCarryNoSuggestion) {
  AdmissionController ac(ServiceConfig{}, millis(2));
  ASSERT_TRUE(ac.admit(spec(1)).ok());
  const auto dup = ac.admit(spec(1));
  ASSERT_FALSE(dup.ok());
  EXPECT_FALSE(dup.error().suggestion.has_value());

  ObjectSpec bad = spec(2);
  bad.client_period = Duration::zero();
  const auto invalid = ac.admit(bad);
  ASSERT_FALSE(invalid.ok());
  EXPECT_FALSE(invalid.error().suggestion.has_value());
}

TEST(Negotiation, SuggestAlternativeUsableProactively) {
  AdmissionController ac(ServiceConfig{}, millis(2));
  ObjectSpec demanding = spec(1, millis(50), millis(20));  // p > delta_P
  const auto alt = ac.suggest_alternative(demanding);
  ASSERT_TRUE(alt.has_value());
  EXPECT_TRUE(ac.admit(*alt).ok());
}

TEST(Negotiation, SuggestionPreservesIdentityAndCosts) {
  AdmissionController ac(ServiceConfig{}, millis(2));
  ObjectSpec demanding = spec(7, millis(50), millis(20));
  demanding.size_bytes = 1234;
  const auto alt = ac.suggest_alternative(demanding);
  ASSERT_TRUE(alt.has_value());
  EXPECT_EQ(alt->id, 7u);
  EXPECT_EQ(alt->size_bytes, 1234u);
  EXPECT_EQ(alt->client_exec, demanding.client_exec);
  EXPECT_EQ(alt->update_exec, demanding.update_exec);
}

}  // namespace
}  // namespace rtpb::core
