#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace rtpb::sim {
namespace {

TEST(Simulator, EventsFireInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(TimePoint{30}, [&] { order.push_back(3); });
  sim.schedule_at(TimePoint{10}, [&] { order.push_back(1); });
  sim.schedule_at(TimePoint{20}, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), TimePoint{30});
}

TEST(Simulator, TiesFireInSchedulingOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.schedule_at(TimePoint{100}, [&order, i] { order.push_back(i); });
  }
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulator, ScheduleAfterUsesCurrentTime) {
  Simulator sim;
  TimePoint fired{};
  sim.schedule_after(millis(5), [&] {
    sim.schedule_after(millis(3), [&] { fired = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(fired, TimePoint::zero() + millis(8));
}

TEST(Simulator, CancelPreventsFiring) {
  Simulator sim;
  bool fired = false;
  EventHandle h = sim.schedule_at(TimePoint{10}, [&] { fired = true; });
  EXPECT_TRUE(h.pending());
  EXPECT_TRUE(h.cancel());
  EXPECT_FALSE(h.pending());
  EXPECT_FALSE(h.cancel());  // second cancel is a no-op
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(Simulator, CancelAfterFiringIsNoop) {
  Simulator sim;
  EventHandle h = sim.schedule_at(TimePoint{10}, [] {});
  sim.run();
  EXPECT_FALSE(h.pending());
  EXPECT_FALSE(h.cancel());
}

TEST(Simulator, RunUntilStopsAtDeadlineAndAdvancesClock) {
  Simulator sim;
  int count = 0;
  sim.schedule_at(TimePoint{10}, [&] { ++count; });
  sim.schedule_at(TimePoint{20}, [&] { ++count; });
  sim.schedule_at(TimePoint{30}, [&] { ++count; });
  sim.run_until(TimePoint{20});
  EXPECT_EQ(count, 2);  // events at the deadline fire
  EXPECT_EQ(sim.now(), TimePoint{20});
  sim.run_until(TimePoint{100});
  EXPECT_EQ(count, 3);
  EXPECT_EQ(sim.now(), TimePoint{100});  // clock reaches deadline even when idle
}

TEST(Simulator, StopHaltsRun) {
  Simulator sim;
  int count = 0;
  sim.schedule_at(TimePoint{1}, [&] {
    ++count;
    sim.stop();
  });
  sim.schedule_at(TimePoint{2}, [&] { ++count; });
  sim.run();
  EXPECT_EQ(count, 1);
}

TEST(Simulator, StepFiresExactlyOne) {
  Simulator sim;
  int count = 0;
  sim.schedule_at(TimePoint{1}, [&] { ++count; });
  sim.schedule_at(TimePoint{2}, [&] { ++count; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(count, 2);
  EXPECT_FALSE(sim.step());
}

TEST(Simulator, EventCounters) {
  Simulator sim;
  auto h = sim.schedule_at(TimePoint{5}, [] {});
  sim.schedule_at(TimePoint{6}, [] {});
  EXPECT_EQ(sim.pending_events(), 2u);
  h.cancel();
  sim.run();
  EXPECT_EQ(sim.fired_events(), 1u);
}

TEST(PeriodicTimer, FiresAtFixedPeriod) {
  Simulator sim;
  std::vector<TimePoint> fires;
  PeriodicTimer timer(sim, millis(10), [&] { fires.push_back(sim.now()); });
  timer.start_at(TimePoint::zero() + millis(10));
  sim.run_until(TimePoint::zero() + millis(45));
  ASSERT_EQ(fires.size(), 4u);
  for (std::size_t i = 0; i < fires.size(); ++i) {
    EXPECT_EQ(fires[i], TimePoint::zero() + millis(10) * static_cast<std::int64_t>(i + 1));
  }
}

TEST(PeriodicTimer, StopFromCallback) {
  Simulator sim;
  int count = 0;
  PeriodicTimer timer(sim, millis(1), [&] {
    if (++count == 3) timer.stop();
  });
  timer.start();
  sim.run_until(TimePoint::zero() + millis(100));
  EXPECT_EQ(count, 3);
  EXPECT_FALSE(timer.running());
}

TEST(PeriodicTimer, RestartRearms) {
  Simulator sim;
  int count = 0;
  PeriodicTimer timer(sim, millis(10), [&] { ++count; });
  timer.start_at(TimePoint::zero() + millis(10));
  sim.run_until(TimePoint::zero() + millis(25));
  EXPECT_EQ(count, 2);
  timer.stop();
  sim.run_until(TimePoint::zero() + millis(50));
  EXPECT_EQ(count, 2);
  timer.start();  // re-arm at now + period
  sim.run_until(TimePoint::zero() + millis(70));
  EXPECT_EQ(count, 4);
}

TEST(Simulator, DeterministicRngStream) {
  Simulator a(99), b(99);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a.rng().next_u64(), b.rng().next_u64());
}

TEST(Simulator, NextEventTimeTracksQueueHead) {
  Simulator sim;
  EXPECT_EQ(sim.next_event_time(), TimePoint::max());
  sim.schedule_at(TimePoint{30}, [] {});
  sim.schedule_at(TimePoint{10}, [] {});
  EXPECT_EQ(sim.next_event_time(), TimePoint{10});
  sim.run();
  EXPECT_EQ(sim.next_event_time(), TimePoint::max());
}

// ---- PeriodicTimer::set_period re-arm regression ------------------------
//
// set_period() used to only update the stored period, leaving the armed
// event at the OLD cadence: a loosened timer fired one extra fast beat, a
// tightened one waited out the old, longer period.  The fix re-arms the
// pending event at `cycle base + new period` (clamped to now).

TEST(PeriodicTimer, SetPeriodLoosensPendingFire) {
  Simulator sim;
  std::vector<TimePoint> fires;
  PeriodicTimer timer(sim, millis(10), [&] { fires.push_back(sim.now()); });
  timer.start_at(TimePoint::zero() + millis(10));
  sim.run_until(TimePoint::zero() + millis(25));  // fired at 10, 20; armed for 30
  ASSERT_EQ(fires.size(), 2u);
  timer.set_period(millis(20));
  EXPECT_EQ(timer.next_fire(), TimePoint::zero() + millis(40));  // base 20 + 20
  sim.run_until(TimePoint::zero() + millis(39));
  EXPECT_EQ(fires.size(), 2u);  // the old 30 ms beat must NOT fire
  sim.run_until(TimePoint::zero() + millis(45));
  ASSERT_EQ(fires.size(), 3u);
  EXPECT_EQ(fires.back(), TimePoint::zero() + millis(40));
}

TEST(PeriodicTimer, SetPeriodTightensPendingFire) {
  Simulator sim;
  std::vector<TimePoint> fires;
  PeriodicTimer timer(sim, millis(10), [&] { fires.push_back(sim.now()); });
  timer.start_at(TimePoint::zero() + millis(10));
  sim.run_until(TimePoint::zero() + millis(25));  // fired at 10, 20; armed for 30
  timer.set_period(millis(2));
  // base 20 + 2 = 22 is already past: clamp to now (25), then every 2 ms.
  EXPECT_EQ(timer.next_fire(), TimePoint::zero() + millis(25));
  sim.run_until(TimePoint::zero() + millis(30));
  std::vector<TimePoint> expect_tail{TimePoint::zero() + millis(25),
                                     TimePoint::zero() + millis(27),
                                     TimePoint::zero() + millis(29)};
  ASSERT_EQ(fires.size(), 5u);
  EXPECT_EQ(std::vector<TimePoint>(fires.begin() + 2, fires.end()), expect_tail);
}

TEST(PeriodicTimer, SetPeriodFromInsideCallback) {
  Simulator sim;
  std::vector<TimePoint> fires;
  PeriodicTimer timer(sim, millis(10), [&] {
    fires.push_back(sim.now());
    if (fires.size() == 1) timer.set_period(millis(5));
  });
  timer.start_at(TimePoint::zero() + millis(10));
  sim.run_until(TimePoint::zero() + millis(26));
  // First fire at 10 had already armed 20; set_period(5) re-arms to
  // base 10 + 5 = 15, then the 5 ms cadence holds: 15, 20, 25.
  EXPECT_EQ(fires, (std::vector<TimePoint>{
                       TimePoint::zero() + millis(10), TimePoint::zero() + millis(15),
                       TimePoint::zero() + millis(20), TimePoint::zero() + millis(25)}));
}

TEST(PeriodicTimer, SetPeriodAnchorsOnStartInstantNotFabricatedBase) {
  // A timer armed via start_at(first) where `first` is NOT one period
  // after the start has no fire to anchor on: the cycle base is the
  // start_at() instant itself.  Deriving it as next_fire - period would
  // fabricate base 7 - 10 = -3 here and re-arm at 17 instead of 24.
  Simulator sim;
  std::vector<TimePoint> fires;
  PeriodicTimer timer(sim, millis(10), [&] { fires.push_back(sim.now()); });
  sim.run_until(TimePoint::zero() + millis(4));
  timer.start_at(TimePoint::zero() + millis(7));  // first fire 3ms out, not 10
  timer.set_period(millis(20));
  EXPECT_EQ(timer.next_fire(), TimePoint::zero() + millis(24));  // base 4 + 20
  sim.run_until(TimePoint::zero() + millis(50));
  EXPECT_EQ(fires, (std::vector<TimePoint>{TimePoint::zero() + millis(24),
                                           TimePoint::zero() + millis(44)}));
}

TEST(PeriodicTimer, SetPeriodTighteningDelayedFirstFire) {
  // The dual direction: a deliberately LATE first fire (start_at far in
  // the future) tightened before it lands must re-arm at start + p, not
  // at (first - old_period) + p.
  Simulator sim;
  std::vector<TimePoint> fires;
  PeriodicTimer timer(sim, millis(5), [&] { fires.push_back(sim.now()); });
  timer.start_at(TimePoint::zero() + millis(20));  // base 0, old code: base 15
  timer.set_period(millis(2));
  EXPECT_EQ(timer.next_fire(), TimePoint::zero() + millis(2));  // base 0 + 2
  sim.run_until(TimePoint::zero() + millis(7));
  EXPECT_EQ(fires, (std::vector<TimePoint>{TimePoint::zero() + millis(2),
                                           TimePoint::zero() + millis(4),
                                           TimePoint::zero() + millis(6)}));
}

TEST(PeriodicTimer, SetPeriodWhileStoppedOnlyStoresIt) {
  Simulator sim;
  int count = 0;
  PeriodicTimer timer(sim, millis(10), [&] { ++count; });
  timer.set_period(millis(3));
  EXPECT_EQ(timer.period(), millis(3));
  EXPECT_EQ(timer.next_fire(), TimePoint::max());
  timer.start();
  sim.run_until(TimePoint::zero() + millis(10));
  EXPECT_EQ(count, 3);  // 3, 6, 9
}

// ---- run_until deadline boundary under a ChoicePolicy -------------------
//
// The parallel driver chops one run_until(end) into lookahead windows, so
// the boundary semantics must be exact and policy-invariant: every event
// with timestamp <= deadline fires, none beyond it, and the clock lands
// on the deadline.  A policy may reorder SAME-INSTANT ties only.

namespace {

/// pick_event returning 0 must reproduce the FIFO tie-break bit for bit.
class PickFirstPolicy : public ChoicePolicy {
 public:
  bool decide(const ChoiceContext& ctx, Rng& rng) override {
    return rng.bernoulli(ctx.probability);
  }
};

/// Adversarial tie-break: always fire the LAST-scheduled tie first.
class PickLastPolicy : public ChoicePolicy {
 public:
  bool decide(const ChoiceContext& ctx, Rng& rng) override {
    return rng.bernoulli(ctx.probability);
  }
  std::size_t pick_event(const std::vector<EventTag>& tags) override {
    return tags.size() - 1;
  }
};

}  // namespace

TEST(Simulator, RunUntilBoundaryWithPolicyFiresDeadlineEvents) {
  PickLastPolicy policy;
  Simulator sim;
  sim.set_choice_policy(&policy);
  std::vector<int> order;
  sim.schedule_at(TimePoint{10}, [&] { order.push_back(0); });
  for (int i = 1; i <= 3; ++i) {
    sim.schedule_at(TimePoint{20}, [&order, i] { order.push_back(i); });
  }
  sim.schedule_at(TimePoint{21}, [&] { order.push_back(99); });
  sim.run_until(TimePoint{20});
  // All deadline events fired (reordered within the instant), none past.
  EXPECT_EQ(order, (std::vector<int>{0, 3, 2, 1}));
  EXPECT_EQ(sim.now(), TimePoint{20});
  sim.run_until(TimePoint{30});
  EXPECT_EQ(order.back(), 99);
}

TEST(Simulator, RunUntilPickZeroPolicyMatchesPolicyFreeOrder) {
  auto script = [](Simulator& sim, std::vector<int>& order) {
    for (int i = 0; i < 4; ++i) {
      sim.schedule_at(TimePoint{10}, [&order, i, &sim] {
        order.push_back(i);
        // Nested same-instant scheduling: joins the tie set mid-flight.
        if (i == 1) sim.schedule_at(TimePoint{10}, [&order] { order.push_back(100); });
      });
    }
    sim.schedule_at(TimePoint{20}, [&order] { order.push_back(200); });
  };
  Simulator plain;
  std::vector<int> plain_order;
  script(plain, plain_order);
  plain.run_until(TimePoint{20});

  PickFirstPolicy policy;
  Simulator seamed;
  seamed.set_choice_policy(&policy);
  std::vector<int> seamed_order;
  script(seamed, seamed_order);
  seamed.run_until(TimePoint{20});

  EXPECT_EQ(seamed_order, plain_order);
  EXPECT_EQ(seamed.now(), plain.now());
  EXPECT_EQ(seamed.fired_events(), plain.fired_events());
}

TEST(Simulator, PolicyReordersOnlySameInstantEvents) {
  PickLastPolicy policy;
  Simulator sim;
  sim.set_choice_policy(&policy);
  std::vector<int> order;
  sim.schedule_at(TimePoint{30}, [&] { order.push_back(3); });
  sim.schedule_at(TimePoint{10}, [&] { order.push_back(1); });
  sim.schedule_at(TimePoint{20}, [&] { order.push_back(2); });
  sim.run();
  // Distinct instants: time order wins no matter how ties are broken.
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, WindowedRunUntilMatchesSingleRun) {
  // The Partition seam's contract: run_until(a); run_until(b) fires the
  // identical sequence as run_until(b).
  auto run = [](bool windowed, std::vector<TimePoint>& fires) -> TimePoint {
    Simulator sim;
    PeriodicTimer timer(sim, millis(7), [&fires, &sim] { fires.push_back(sim.now()); });
    timer.start_at(TimePoint::zero() + millis(7));
    if (windowed) {
      for (std::int64_t h = 13; h <= 100; h += 13) {
        sim.run_until(TimePoint::zero() + millis(h));
      }
    }
    sim.run_until(TimePoint::zero() + millis(100));
    return sim.now();
  };
  std::vector<TimePoint> whole_fires, windowed_fires;
  const TimePoint whole_now = run(false, whole_fires);
  const TimePoint windowed_now = run(true, windowed_fires);
  EXPECT_EQ(windowed_fires, whole_fires);
  EXPECT_EQ(windowed_now, whole_now);
}

}  // namespace
}  // namespace rtpb::sim
