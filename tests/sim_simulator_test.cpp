#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace rtpb::sim {
namespace {

TEST(Simulator, EventsFireInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(TimePoint{30}, [&] { order.push_back(3); });
  sim.schedule_at(TimePoint{10}, [&] { order.push_back(1); });
  sim.schedule_at(TimePoint{20}, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), TimePoint{30});
}

TEST(Simulator, TiesFireInSchedulingOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.schedule_at(TimePoint{100}, [&order, i] { order.push_back(i); });
  }
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulator, ScheduleAfterUsesCurrentTime) {
  Simulator sim;
  TimePoint fired{};
  sim.schedule_after(millis(5), [&] {
    sim.schedule_after(millis(3), [&] { fired = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(fired, TimePoint::zero() + millis(8));
}

TEST(Simulator, CancelPreventsFiring) {
  Simulator sim;
  bool fired = false;
  EventHandle h = sim.schedule_at(TimePoint{10}, [&] { fired = true; });
  EXPECT_TRUE(h.pending());
  EXPECT_TRUE(h.cancel());
  EXPECT_FALSE(h.pending());
  EXPECT_FALSE(h.cancel());  // second cancel is a no-op
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(Simulator, CancelAfterFiringIsNoop) {
  Simulator sim;
  EventHandle h = sim.schedule_at(TimePoint{10}, [] {});
  sim.run();
  EXPECT_FALSE(h.pending());
  EXPECT_FALSE(h.cancel());
}

TEST(Simulator, RunUntilStopsAtDeadlineAndAdvancesClock) {
  Simulator sim;
  int count = 0;
  sim.schedule_at(TimePoint{10}, [&] { ++count; });
  sim.schedule_at(TimePoint{20}, [&] { ++count; });
  sim.schedule_at(TimePoint{30}, [&] { ++count; });
  sim.run_until(TimePoint{20});
  EXPECT_EQ(count, 2);  // events at the deadline fire
  EXPECT_EQ(sim.now(), TimePoint{20});
  sim.run_until(TimePoint{100});
  EXPECT_EQ(count, 3);
  EXPECT_EQ(sim.now(), TimePoint{100});  // clock reaches deadline even when idle
}

TEST(Simulator, StopHaltsRun) {
  Simulator sim;
  int count = 0;
  sim.schedule_at(TimePoint{1}, [&] {
    ++count;
    sim.stop();
  });
  sim.schedule_at(TimePoint{2}, [&] { ++count; });
  sim.run();
  EXPECT_EQ(count, 1);
}

TEST(Simulator, StepFiresExactlyOne) {
  Simulator sim;
  int count = 0;
  sim.schedule_at(TimePoint{1}, [&] { ++count; });
  sim.schedule_at(TimePoint{2}, [&] { ++count; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(count, 2);
  EXPECT_FALSE(sim.step());
}

TEST(Simulator, EventCounters) {
  Simulator sim;
  auto h = sim.schedule_at(TimePoint{5}, [] {});
  sim.schedule_at(TimePoint{6}, [] {});
  EXPECT_EQ(sim.pending_events(), 2u);
  h.cancel();
  sim.run();
  EXPECT_EQ(sim.fired_events(), 1u);
}

TEST(PeriodicTimer, FiresAtFixedPeriod) {
  Simulator sim;
  std::vector<TimePoint> fires;
  PeriodicTimer timer(sim, millis(10), [&] { fires.push_back(sim.now()); });
  timer.start_at(TimePoint::zero() + millis(10));
  sim.run_until(TimePoint::zero() + millis(45));
  ASSERT_EQ(fires.size(), 4u);
  for (std::size_t i = 0; i < fires.size(); ++i) {
    EXPECT_EQ(fires[i], TimePoint::zero() + millis(10) * static_cast<std::int64_t>(i + 1));
  }
}

TEST(PeriodicTimer, StopFromCallback) {
  Simulator sim;
  int count = 0;
  PeriodicTimer timer(sim, millis(1), [&] {
    if (++count == 3) timer.stop();
  });
  timer.start();
  sim.run_until(TimePoint::zero() + millis(100));
  EXPECT_EQ(count, 3);
  EXPECT_FALSE(timer.running());
}

TEST(PeriodicTimer, RestartRearms) {
  Simulator sim;
  int count = 0;
  PeriodicTimer timer(sim, millis(10), [&] { ++count; });
  timer.start_at(TimePoint::zero() + millis(10));
  sim.run_until(TimePoint::zero() + millis(25));
  EXPECT_EQ(count, 2);
  timer.stop();
  sim.run_until(TimePoint::zero() + millis(50));
  EXPECT_EQ(count, 2);
  timer.start();  // re-arm at now + period
  sim.run_until(TimePoint::zero() + millis(70));
  EXPECT_EQ(count, 4);
}

TEST(Simulator, DeterministicRngStream) {
  Simulator a(99), b(99);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a.rng().next_u64(), b.rng().next_u64());
}

}  // namespace
}  // namespace rtpb::sim
