// Sharded scale-out layer: directory placement, frontier tracking,
// per-shard admission with cross-shard constraint decomposition, the live
// ShardCluster kFrontier exchange — and the digest-purity regression that
// pins shards=1 chaos runs to the exact pre-sharding trace digests.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "chaos/harness.hpp"
#include "shard/admission.hpp"
#include "shard/cluster.hpp"
#include "shard/directory.hpp"
#include "shard/frontier.hpp"

namespace rtpb::shard {
namespace {

core::ObjectSpec spec(core::ObjectId id, Duration p = millis(10),
                      Duration delta_p = millis(20), Duration delta_b = millis(100)) {
  core::ObjectSpec s;
  s.id = id;
  s.name = "obj" + std::to_string(id);
  s.client_period = p;
  s.client_exec = micros(200);
  s.update_exec = micros(200);
  s.delta_primary = delta_p;
  s.delta_backup = delta_b;
  return s;
}

/// First `n` object ids (from 1) landing on each shard of `directory`.
std::map<ShardId, std::vector<core::ObjectId>> ids_by_shard(const ShardDirectory& directory,
                                                            std::size_t n_per_shard) {
  std::map<ShardId, std::vector<core::ObjectId>> by_shard;
  for (core::ObjectId id = 1; id < 100000; ++id) {
    auto& ids = by_shard[directory.shard_of(id)];
    if (ids.size() < n_per_shard) ids.push_back(id);
    bool done = by_shard.size() == directory.shard_count();
    for (const auto& [s, v] : by_shard) done = done && v.size() == n_per_shard;
    if (done) break;
  }
  return by_shard;
}

// ---- directory -----------------------------------------------------------

TEST(ShardDirectory, PlacementIsDeterministicAndSeedFree) {
  const ShardDirectory a(16, 4);
  const ShardDirectory b(16, 4);
  for (core::ObjectId id = 1; id <= 5000; ++id) {
    const ShardId s = a.shard_of(id);
    EXPECT_LT(s, 16u);
    // Same id, same shard — in a second directory instance too (no seed,
    // no registration-order dependence).
    EXPECT_EQ(s, b.shard_of(id));
  }
}

TEST(ShardDirectory, PlacementCoversAllShards) {
  const ShardDirectory directory(64, 1);
  std::vector<std::size_t> hits(64, 0);
  for (core::ObjectId id = 1; id <= 10000; ++id) ++hits[directory.shard_of(id)];
  for (ShardId s = 0; s < 64; ++s) {
    EXPECT_GT(hits[s], 0u) << "shard " << s << " never hit by 10k sequential ids";
  }
}

TEST(ShardDirectory, InitialMappingStripesRoundRobin) {
  const ShardDirectory directory(8, 3);
  for (ShardId s = 0; s < 8; ++s) EXPECT_EQ(directory.group_of_shard(s), s % 3);
}

TEST(ShardDirectory, RemapMovesOneShardAndOnlyThatShard) {
  ShardDirectory directory(8, 2);
  std::vector<GroupId> before;
  before.reserve(8);
  for (ShardId s = 0; s < 8; ++s) before.push_back(directory.group_of_shard(s));

  ASSERT_EQ(before[3], 1u);  // 3 % 2: moving it to group 0 is a real move
  directory.remap_shard(3, 1);  // already there: a no-op, not a remap
  EXPECT_EQ(directory.remap_count(), 0u);
  directory.remap_shard(3, 0);
  EXPECT_EQ(directory.group_of_shard(3), 0u);
  EXPECT_EQ(directory.remap_count(), 1u);
  for (ShardId s = 0; s < 8; ++s) {
    if (s == 3) continue;
    EXPECT_EQ(directory.group_of_shard(s), before[s]) << "remap leaked to shard " << s;
  }
  // Objects follow their shard — and only their shard.
  for (core::ObjectId id = 1; id <= 1000; ++id) {
    const ShardId s = directory.shard_of(id);
    EXPECT_EQ(directory.group_of(id), s == 3 ? 0u : before[s]);
  }
}

// ---- frontier tracker ----------------------------------------------------

TEST(FrontierTracker, EmptyShardConstrainsNothing) {
  const FrontierTracker t;
  EXPECT_EQ(t.frontier(), TimePoint::max());
}

TEST(FrontierTracker, FrontierIsTheMinimumAndAdvancesMonotonically) {
  FrontierTracker t;
  t.track(1, TimePoint{100});
  t.track(2, TimePoint{50});
  t.track(3, TimePoint{200});
  EXPECT_EQ(t.frontier(), TimePoint{50});

  t.advance(2, TimePoint{150});  // the argmin moves: rescan finds object 1
  EXPECT_EQ(t.frontier(), TimePoint{100});

  t.advance(1, TimePoint{40});  // regressions are ignored
  EXPECT_EQ(t.frontier(), TimePoint{100});

  t.advance(99, TimePoint{1});  // unknown ids are ignored
  EXPECT_EQ(t.frontier(), TimePoint{100});
}

TEST(FrontierTracker, ForgetRecyclesSlotsAndRecomputes) {
  FrontierTracker t;
  t.track(1, TimePoint{10});
  t.track(2, TimePoint{20});
  t.forget(1);  // the argmin dies
  EXPECT_EQ(t.frontier(), TimePoint{20});
  EXPECT_EQ(t.size(), 1u);

  t.track(3, TimePoint{5});  // reuses object 1's slot
  EXPECT_EQ(t.frontier(), TimePoint{5});
  t.forget(2);
  t.forget(3);
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.frontier(), TimePoint::max());
}

TEST(FrontierTracker, DuplicateTrackKeepsTheOriginal) {
  FrontierTracker t;
  t.track(1, TimePoint{10});
  t.track(1, TimePoint{99});
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(t.frontier(), TimePoint{10});
}

// ---- sharded admission ---------------------------------------------------

TEST(ShardedAdmission, RoutesRegistrationsToTheHomeShard) {
  const ShardDirectory directory(4, 1);
  ShardedAdmission admission(directory, core::ServiceConfig{}, millis(2));
  const auto by_shard = ids_by_shard(directory, 2);
  ASSERT_EQ(by_shard.size(), 4u);

  std::size_t total = 0;
  for (const auto& [s, ids] : by_shard) {
    for (core::ObjectId id : ids) {
      ASSERT_TRUE(admission.admit(spec(id)).ok());
      ++total;
    }
  }
  EXPECT_EQ(admission.admitted_count(), total);
  for (const auto& [s, ids] : by_shard) {
    EXPECT_EQ(admission.admitted_in_shard(s), ids.size());
  }
}

TEST(ShardedAdmission, CrossShardConstraintCapsBothSides) {
  const ShardDirectory directory(4, 1);
  ShardedAdmission admission(directory, core::ServiceConfig{}, millis(2));
  const auto by_shard = ids_by_shard(directory, 1);
  const core::ObjectId i = by_shard.at(0).front();
  const core::ObjectId j = by_shard.at(1).front();
  ASSERT_TRUE(admission.admit(spec(i)).ok());
  ASSERT_TRUE(admission.admit(spec(j)).ok());
  EXPECT_EQ(admission.update_period(i), millis(39));  // window-derived baseline

  ASSERT_TRUE(admission.add_constraint({i, j, millis(15)}).ok());
  EXPECT_LE(admission.update_period(i), millis(15));
  EXPECT_LE(admission.update_period(j), millis(15));
  ASSERT_EQ(admission.cross_constraints().size(), 1u);

  // Removing one member withdraws the constraint on BOTH home shards.
  admission.remove(i);
  EXPECT_TRUE(admission.cross_constraints().empty());
  EXPECT_EQ(admission.update_period(j), millis(39));
}

TEST(ShardedAdmission, RejectedCrossShardConstraintLeavesNoResidue) {
  const ShardDirectory directory(4, 1);
  ShardedAdmission admission(directory, core::ServiceConfig{}, millis(2));
  const auto by_shard = ids_by_shard(directory, 1);
  const core::ObjectId i = by_shard.at(0).front();
  const core::ObjectId ghost = by_shard.at(1).front();  // never admitted
  ASSERT_TRUE(admission.admit(spec(i)).ok());

  // Side A's cap commits, side B's is rejected (unknown object): the
  // rollback must restore side A's period and record nothing.
  EXPECT_FALSE(admission.add_constraint({i, ghost, millis(15)}).ok());
  EXPECT_EQ(admission.update_period(i), millis(39));
  EXPECT_TRUE(admission.cross_constraints().empty());
  EXPECT_TRUE(admission.shard(directory.shard_of(i)).constraints().empty());
}

TEST(ShardedAdmission, ExplicitRemoveConstraintRestoresBothSides) {
  const ShardDirectory directory(4, 1);
  ShardedAdmission admission(directory, core::ServiceConfig{}, millis(2));
  const auto by_shard = ids_by_shard(directory, 1);
  const core::ObjectId i = by_shard.at(0).front();
  const core::ObjectId j = by_shard.at(2).front();
  ASSERT_TRUE(admission.admit(spec(i)).ok());
  ASSERT_TRUE(admission.admit(spec(j)).ok());
  ASSERT_TRUE(admission.add_constraint({i, j, millis(15)}).ok());

  admission.remove_constraint({i, j, millis(15)});
  EXPECT_TRUE(admission.cross_constraints().empty());
  EXPECT_EQ(admission.update_period(i), millis(39));
  EXPECT_EQ(admission.update_period(j), millis(39));
}

// ---- live cluster --------------------------------------------------------

ShardClusterParams small_cluster() {
  ShardClusterParams params;
  params.seed = 7;
  params.shard_count = 4;
  params.group_count = 2;
  return params;
}

TEST(ShardCluster, FrontierFramesCrossTheWire) {
  ShardCluster cluster(small_cluster());
  cluster.start();
  std::size_t registered = 0;
  for (core::ObjectId id = 1; id <= 12 && registered < 8; ++id) {
    if (cluster.register_object(spec(id)).ok()) ++registered;
  }
  ASSERT_GE(registered, 4u);
  cluster.run_for(millis(500));
  cluster.exchange_frontiers();
  cluster.run_for(millis(100));

  std::uint64_t sent = 0;
  std::uint64_t received = 0;
  std::size_t remote_observed = 0;
  for (GroupId g = 0; g < cluster.group_count(); ++g) {
    sent += cluster.primary(g).frontier_frames_sent();
    received += cluster.primary(g).frontier_frames_received();
    for (ShardId s = 0; s < cluster.params().shard_count; ++s) {
      if (cluster.directory().group_of_shard(s) == g) continue;
      if (cluster.objects_of_shard(s).empty()) continue;
      // Learned over the wire, not by local computation.
      if (cluster.observed_frontier(g, s) > TimePoint::zero()) ++remote_observed;
    }
  }
  EXPECT_GT(sent, 0u);
  EXPECT_GT(received, 0u);
  EXPECT_GT(remote_observed, 0u);

  // After half a second of replication every populated shard's stable
  // frontier has moved off the epoch origin.
  for (ShardId s = 0; s < cluster.params().shard_count; ++s) {
    if (cluster.objects_of_shard(s).empty()) continue;
    EXPECT_GT(cluster.local_frontier(s), TimePoint::zero()) << "shard " << s;
    EXPECT_LT(cluster.local_frontier(s), cluster.simulator().now()) << "shard " << s;
  }
}

TEST(ShardCluster, CrossGroupConstraintChecksBothSidesBeforeCommitting) {
  ShardCluster cluster(small_cluster());
  cluster.start();
  // Find one admitted object in each group.
  core::ObjectId in_g0 = 0;
  core::ObjectId in_g1 = 0;
  for (core::ObjectId id = 1; id <= 32 && (in_g0 == 0 || in_g1 == 0); ++id) {
    const GroupId g = cluster.directory().group_of(id);
    if ((g == 0 && in_g0 != 0) || (g == 1 && in_g1 != 0)) continue;
    if (!cluster.register_object(spec(id)).ok()) continue;
    (g == 0 ? in_g0 : in_g1) = id;
  }
  ASSERT_NE(in_g0, 0u);
  ASSERT_NE(in_g1, 0u);

  // Rejection before anything commits: the partner is unknown, so neither
  // group may be left holding a one-sided cap.
  EXPECT_FALSE(cluster.add_constraint({in_g0, 9999, millis(15)}).ok());
  EXPECT_TRUE(cluster.primary(0).admission().constraints().empty());
  EXPECT_TRUE(cluster.cross_constraints().empty());

  ASSERT_TRUE(cluster.add_constraint({in_g0, in_g1, millis(15)}).ok());
  ASSERT_EQ(cluster.cross_constraints().size(), 1u);
  EXPECT_LE(cluster.primary(0).admission().update_period(in_g0), millis(15));
  EXPECT_LE(cluster.primary(1).admission().update_period(in_g1), millis(15));

  // The runtime form of δ_ij: after replication both frontiers are within
  // a generous delta of now, but not within a one-nanosecond delta.
  cluster.run_for(millis(500));
  cluster.exchange_frontiers();
  const auto& c = cluster.cross_constraints().front();
  const TimePoint now = cluster.simulator().now();
  EXPECT_TRUE(cluster.cross_constraint_satisfied({c.first, c.second, seconds(10)}, now));
  EXPECT_FALSE(cluster.cross_constraint_satisfied({c.first, c.second, nanos(1)}, now));
}

TEST(ShardCluster, SameGroupConstraintDelegatesToThatGroup) {
  ShardCluster cluster(small_cluster());
  cluster.start();
  std::vector<core::ObjectId> g0_ids;
  for (core::ObjectId id = 1; id <= 64 && g0_ids.size() < 2; ++id) {
    if (cluster.directory().group_of(id) != 0) continue;
    if (cluster.register_object(spec(id)).ok()) g0_ids.push_back(id);
  }
  ASSERT_EQ(g0_ids.size(), 2u);
  ASSERT_TRUE(cluster.add_constraint({g0_ids[0], g0_ids[1], millis(15)}).ok());
  // A same-group pair is a directly-enforced pair constraint, not a
  // frontier-checked cross-group one.
  EXPECT_TRUE(cluster.cross_constraints().empty());
  EXPECT_EQ(cluster.primary(0).admission().constraints().size(), 1u);
}

// ---- chaos digest purity -------------------------------------------------

TEST(ShardChaosPurity, ShardsOneIsByteIdenticalToPreShardDigests) {
  // Pinned from the build immediately before the shard layer existed
  // (chaos_main --seeds 4 --duration-ms 8000).  shards == 1 must not
  // perturb a single byte: the shard fault stream is never drawn from and
  // no per-object overrides are installed.
  constexpr std::uint64_t kPinned[4] = {0x608a966c3aa6b74bULL, 0xe3e9a0e22dd1ae33ULL,
                                        0xf3f1273e3b6fb71dULL, 0x0a356727dde672b9ULL};
  chaos::ChaosOptions opts;
  opts.duration = seconds(8);
  ASSERT_EQ(opts.shards, 1u);
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const chaos::SeedReport report = chaos::run_seed(seed, opts);
    EXPECT_EQ(report.trace_digest, kPinned[seed]) << "seed " << seed;
    EXPECT_EQ(report.violation_count, 0u) << "seed " << seed;
  }
}

TEST(ShardChaosPurity, ShardedRunsAreDeterministicAndActuallySharded) {
  chaos::ChaosOptions opts;
  opts.duration = seconds(8);
  opts.shards = 4;
  const chaos::SeedReport a = chaos::run_seed(0, opts);
  const chaos::SeedReport b = chaos::run_seed(0, opts);
  EXPECT_EQ(a.trace_digest, b.trace_digest);
  EXPECT_EQ(a.fired, b.fired);
  EXPECT_EQ(a.updates_applied, b.updates_applied);

  // The schedule really carries shard-scoped storms for this seed.
  bool shard_fault_fired = false;
  for (const std::string& label : a.fired) {
    if (label.find("shard-loss-storm") != std::string::npos) shard_fault_fired = true;
  }
  EXPECT_TRUE(shard_fault_fired);
}

}  // namespace
}  // namespace rtpb::shard
