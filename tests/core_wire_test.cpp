#include "core/wire.hpp"

#include <gtest/gtest.h>

namespace rtpb::core::wire {
namespace {

TEST(Wire, UpdateRoundTrip) {
  Update u;
  u.object = 17;
  u.version = 123456789;
  u.timestamp = TimePoint{987654321};
  u.retransmission = true;
  u.value = Bytes{9, 8, 7, 6};

  const auto decoded = decode(encode(u));
  ASSERT_TRUE(decoded.has_value());
  ASSERT_EQ(decoded->type, MsgType::kUpdate);
  ASSERT_TRUE(decoded->update.has_value());
  EXPECT_EQ(decoded->update->object, u.object);
  EXPECT_EQ(decoded->update->version, u.version);
  EXPECT_EQ(decoded->update->timestamp, u.timestamp);
  EXPECT_TRUE(decoded->update->retransmission);
  EXPECT_EQ(decoded->update->value, u.value);
}

TEST(Wire, UpdateAckRoundTrip) {
  const auto decoded = decode(encode(UpdateAck{5, 99}));
  ASSERT_TRUE(decoded.has_value());
  ASSERT_TRUE(decoded->update_ack.has_value());
  EXPECT_EQ(decoded->update_ack->object, 5u);
  EXPECT_EQ(decoded->update_ack->version, 99u);
}

TEST(Wire, RetransmitRequestRoundTrip) {
  const auto decoded = decode(encode(RetransmitRequest{3, 42}));
  ASSERT_TRUE(decoded.has_value());
  ASSERT_TRUE(decoded->retransmit.has_value());
  EXPECT_EQ(decoded->retransmit->object, 3u);
  EXPECT_EQ(decoded->retransmit->have_version, 42u);
}

TEST(Wire, PingAndAckRoundTrip) {
  auto p = decode(encode(Ping{77}));
  ASSERT_TRUE(p && p->ping);
  EXPECT_EQ(p->ping->seq, 77u);
  auto a = decode(encode(PingAck{77}));
  ASSERT_TRUE(a && a->ping_ack);
  EXPECT_EQ(a->ping_ack->seq, 77u);
}

TEST(Wire, StateTransferRoundTrip) {
  StateTransfer st;
  st.transfer_id = 1001;
  StateEntry e;
  e.spec.id = 4;
  e.spec.name = "altitude";
  e.spec.size_bytes = 16;
  e.spec.client_period = millis(10);
  e.spec.client_exec = millis(1);
  e.spec.update_exec = micros(500);
  e.spec.delta_primary = millis(20);
  e.spec.delta_backup = millis(80);
  e.update_period = millis(25);
  e.version = 9;
  e.timestamp = TimePoint{555};
  e.value = Bytes{1, 2, 3};
  st.entries.push_back(e);
  st.constraints.push_back(InterObjectConstraint{4, 5, millis(30)});

  const auto decoded = decode(encode(st));
  ASSERT_TRUE(decoded && decoded->state_transfer);
  const StateTransfer& d = *decoded->state_transfer;
  EXPECT_EQ(d.transfer_id, 1001u);
  ASSERT_EQ(d.entries.size(), 1u);
  EXPECT_EQ(d.entries[0].spec.name, "altitude");
  EXPECT_EQ(d.entries[0].spec.delta_backup, millis(80));
  EXPECT_EQ(d.entries[0].update_period, millis(25));
  EXPECT_EQ(d.entries[0].version, 9u);
  EXPECT_EQ(d.entries[0].value, (Bytes{1, 2, 3}));
  ASSERT_EQ(d.constraints.size(), 1u);
  EXPECT_EQ(d.constraints[0].delta, millis(30));
}

TEST(Wire, EmptyStateTransferRoundTrip) {
  StateTransfer st;
  st.transfer_id = 7;
  const auto decoded = decode(encode(st));
  ASSERT_TRUE(decoded && decoded->state_transfer);
  EXPECT_TRUE(decoded->state_transfer->entries.empty());
  EXPECT_TRUE(decoded->state_transfer->constraints.empty());
}

TEST(Wire, StateTransferAckRoundTrip) {
  const auto decoded = decode(encode(StateTransferAck{88}));
  ASSERT_TRUE(decoded && decoded->state_transfer_ack);
  EXPECT_EQ(decoded->state_transfer_ack->transfer_id, 88u);
}

TEST(Wire, EmptyBufferRejected) { EXPECT_FALSE(decode({}).has_value()); }

TEST(Wire, UnknownTypeRejected) {
  Bytes junk{0xEE, 1, 2, 3};
  EXPECT_FALSE(decode(junk).has_value());
}

TEST(Wire, TruncatedUpdateRejected) {
  Bytes full = encode(Update{1, 2, TimePoint{3}, false, Bytes{4, 5}});
  for (std::size_t cut = 1; cut < full.size(); ++cut) {
    Bytes truncated(full.begin(), full.begin() + static_cast<std::ptrdiff_t>(cut));
    EXPECT_FALSE(decode(truncated).has_value()) << "cut=" << cut;
  }
}

TEST(Wire, TrailingGarbageRejected) {
  Bytes msg = encode(Ping{1});
  msg.push_back(0x00);
  EXPECT_FALSE(decode(msg).has_value());
}

TEST(Wire, MsgTypeNames) {
  EXPECT_STREQ(msg_type_name(MsgType::kUpdate), "UPDATE");
  EXPECT_STREQ(msg_type_name(MsgType::kStateTransfer), "STATE_TRANSFER");
  EXPECT_STREQ(msg_type_name(MsgType::kUpdateBatch), "UPDATE_BATCH");
}

// ---------------------------------------------------------------------------
// kUpdateBatch
// ---------------------------------------------------------------------------

UpdateBatch sample_batch() {
  UpdateBatch b;
  b.entries.push_back(UpdateBatchEntry{10, 3, TimePoint{1000}, Bytes{1, 2, 3}});
  b.entries.push_back(UpdateBatchEntry{11, 7, TimePoint{2000}, Bytes{}});
  b.entries.push_back(UpdateBatchEntry{12, 1, TimePoint{3000}, Bytes(64, 0xAB)});
  b.epoch = 5;
  return b;
}

TEST(Wire, UpdateBatchRoundTrip) {
  const UpdateBatch b = sample_batch();
  const auto decoded = decode(encode(b));
  ASSERT_TRUE(decoded && decoded->update_batch);
  const UpdateBatch& d = *decoded->update_batch;
  EXPECT_EQ(d.epoch, 5u);
  ASSERT_EQ(d.entries.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(d.entries[i].object, b.entries[i].object) << i;
    EXPECT_EQ(d.entries[i].version, b.entries[i].version) << i;
    EXPECT_EQ(d.entries[i].timestamp, b.entries[i].timestamp) << i;
    EXPECT_EQ(d.entries[i].value, b.entries[i].value) << i;
  }
}

TEST(Wire, EmptyUpdateBatchRoundTrip) {
  UpdateBatch b;
  b.epoch = 9;
  const auto decoded = decode(encode(b));
  ASSERT_TRUE(decoded && decoded->update_batch);
  EXPECT_TRUE(decoded->update_batch->entries.empty());
  EXPECT_EQ(decoded->update_batch->epoch, 9u);
}

TEST(Wire, TruncatedUpdateBatchRejected) {
  const Bytes full = encode(sample_batch());
  for (std::size_t cut = 1; cut < full.size(); ++cut) {
    Bytes truncated(full.begin(), full.begin() + static_cast<std::ptrdiff_t>(cut));
    EXPECT_FALSE(decode(truncated).has_value()) << "cut=" << cut;
  }
}

TEST(Wire, UpdateBatchCountMismatchRejected) {
  // Inflate the entry count past the entries actually present: the decoder
  // must notice the list is short, not read the epoch field as an entry.
  Bytes frame = encode(sample_batch());
  // count is big-endian u32 at offset 1.  4 entries still fit the minimum
  // entry-size pre-check, so the decoder walks into the epoch field and
  // must fail the entry parse, not misattribute it.
  frame[4] = 4;
  EXPECT_FALSE(decode(frame).has_value());
  // An absurd count must be rejected up front, before any allocation.
  frame[1] = frame[2] = frame[3] = frame[4] = 0xFF;
  EXPECT_FALSE(decode(frame).has_value());
}

TEST(Wire, UpdateBatchUndercountRejected) {
  // Shrink the count: the leftover entries become trailing bytes.
  Bytes frame = encode(sample_batch());
  frame[4] = 1;
  EXPECT_FALSE(decode(frame).has_value());
}

TEST(Wire, UpdateBatchTrailingBytesRejected) {
  Bytes frame = encode(sample_batch());
  frame.push_back(0x00);
  EXPECT_FALSE(decode(frame).has_value());
}

// ---------------------------------------------------------------------------
// encoded_size() is the exact wire size (the one-allocation reserve).
// ---------------------------------------------------------------------------

TEST(Wire, EncodedSizeMatchesWireSize) {
  Update u{17, 42, TimePoint{7}, false, Bytes(33, 1), 3};
  EXPECT_EQ(encode(u).size(), encoded_size(u));

  EXPECT_EQ(encode(sample_batch()).size(), encoded_size(sample_batch()));

  StateTransfer st;
  st.transfer_id = 2;
  StateEntry e;
  e.spec.id = 4;
  e.spec.name = "altitude";
  e.value = Bytes(17, 9);
  st.entries.push_back(e);
  st.constraints.push_back(InterObjectConstraint{4, 5, millis(30)});
  EXPECT_EQ(encode(st).size(), encoded_size(st));

  ActivePrepare ap{1, 2, TimePoint{3}, Bytes(5, 4)};
  EXPECT_EQ(encode(ap).size(), encoded_size(ap));
}

// ---------------------------------------------------------------------------
// epoch_of() regression: a partially-populated AnyMessage (the per-type
// optional empty) must yield the bootstrap wildcard 0, not dereference.
// ---------------------------------------------------------------------------

TEST(Wire, EpochOfEmptyOptionalsIsZero) {
  for (std::uint8_t t = 1; t <= 10; ++t) {
    AnyMessage m;
    m.type = static_cast<MsgType>(t);
    EXPECT_EQ(epoch_of(m), 0u) << "type=" << msg_type_name(m.type);
  }
}

TEST(Wire, EpochOfDecodedMessages) {
  auto batch = sample_batch();
  EXPECT_EQ(epoch_of(*decode(encode(batch))), 5u);
  EXPECT_EQ(epoch_of(*decode(encode(Update{1, 2, TimePoint{3}, false, {}, 77}))), 77u);
  EXPECT_EQ(epoch_of(*decode(encode(Ping{1, 8}))), 8u);
  EXPECT_EQ(epoch_of(*decode(encode(ActiveAck{4}))), 0u);
}

}  // namespace
}  // namespace rtpb::core::wire
