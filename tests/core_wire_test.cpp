#include "core/wire.hpp"

#include <gtest/gtest.h>

namespace rtpb::core::wire {
namespace {

TEST(Wire, UpdateRoundTrip) {
  Update u;
  u.object = 17;
  u.version = 123456789;
  u.timestamp = TimePoint{987654321};
  u.retransmission = true;
  u.value = Bytes{9, 8, 7, 6};

  const auto decoded = decode(encode(u));
  ASSERT_TRUE(decoded.has_value());
  ASSERT_EQ(decoded->type, MsgType::kUpdate);
  ASSERT_TRUE(decoded->update.has_value());
  EXPECT_EQ(decoded->update->object, u.object);
  EXPECT_EQ(decoded->update->version, u.version);
  EXPECT_EQ(decoded->update->timestamp, u.timestamp);
  EXPECT_TRUE(decoded->update->retransmission);
  EXPECT_EQ(decoded->update->value, u.value);
}

TEST(Wire, UpdateAckRoundTrip) {
  const auto decoded = decode(encode(UpdateAck{5, 99}));
  ASSERT_TRUE(decoded.has_value());
  ASSERT_TRUE(decoded->update_ack.has_value());
  EXPECT_EQ(decoded->update_ack->object, 5u);
  EXPECT_EQ(decoded->update_ack->version, 99u);
}

TEST(Wire, RetransmitRequestRoundTrip) {
  const auto decoded = decode(encode(RetransmitRequest{3, 42}));
  ASSERT_TRUE(decoded.has_value());
  ASSERT_TRUE(decoded->retransmit.has_value());
  EXPECT_EQ(decoded->retransmit->object, 3u);
  EXPECT_EQ(decoded->retransmit->have_version, 42u);
}

TEST(Wire, PingAndAckRoundTrip) {
  auto p = decode(encode(Ping{77}));
  ASSERT_TRUE(p && p->ping);
  EXPECT_EQ(p->ping->seq, 77u);
  auto a = decode(encode(PingAck{77}));
  ASSERT_TRUE(a && a->ping_ack);
  EXPECT_EQ(a->ping_ack->seq, 77u);
}

TEST(Wire, StateTransferRoundTrip) {
  StateTransfer st;
  st.transfer_id = 1001;
  StateEntry e;
  e.spec.id = 4;
  e.spec.name = "altitude";
  e.spec.size_bytes = 16;
  e.spec.client_period = millis(10);
  e.spec.client_exec = millis(1);
  e.spec.update_exec = micros(500);
  e.spec.delta_primary = millis(20);
  e.spec.delta_backup = millis(80);
  e.update_period = millis(25);
  e.version = 9;
  e.timestamp = TimePoint{555};
  e.value = Bytes{1, 2, 3};
  st.entries.push_back(e);
  st.constraints.push_back(InterObjectConstraint{4, 5, millis(30)});

  const auto decoded = decode(encode(st));
  ASSERT_TRUE(decoded && decoded->state_transfer);
  const StateTransfer& d = *decoded->state_transfer;
  EXPECT_EQ(d.transfer_id, 1001u);
  ASSERT_EQ(d.entries.size(), 1u);
  EXPECT_EQ(d.entries[0].spec.name, "altitude");
  EXPECT_EQ(d.entries[0].spec.delta_backup, millis(80));
  EXPECT_EQ(d.entries[0].update_period, millis(25));
  EXPECT_EQ(d.entries[0].version, 9u);
  EXPECT_EQ(d.entries[0].value, (Bytes{1, 2, 3}));
  ASSERT_EQ(d.constraints.size(), 1u);
  EXPECT_EQ(d.constraints[0].delta, millis(30));
}

TEST(Wire, EmptyStateTransferRoundTrip) {
  StateTransfer st;
  st.transfer_id = 7;
  const auto decoded = decode(encode(st));
  ASSERT_TRUE(decoded && decoded->state_transfer);
  EXPECT_TRUE(decoded->state_transfer->entries.empty());
  EXPECT_TRUE(decoded->state_transfer->constraints.empty());
}

TEST(Wire, StateTransferAckRoundTrip) {
  const auto decoded = decode(encode(StateTransferAck{88}));
  ASSERT_TRUE(decoded && decoded->state_transfer_ack);
  EXPECT_EQ(decoded->state_transfer_ack->transfer_id, 88u);
}

TEST(Wire, EmptyBufferRejected) { EXPECT_FALSE(decode({}).has_value()); }

TEST(Wire, UnknownTypeRejected) {
  Bytes junk{0xEE, 1, 2, 3};
  EXPECT_FALSE(decode(junk).has_value());
}

TEST(Wire, TruncatedUpdateRejected) {
  Bytes full = encode(Update{1, 2, TimePoint{3}, false, Bytes{4, 5}});
  for (std::size_t cut = 1; cut < full.size(); ++cut) {
    Bytes truncated(full.begin(), full.begin() + static_cast<std::ptrdiff_t>(cut));
    EXPECT_FALSE(decode(truncated).has_value()) << "cut=" << cut;
  }
}

TEST(Wire, TrailingGarbageRejected) {
  Bytes msg = encode(Ping{1});
  msg.push_back(0x00);
  EXPECT_FALSE(decode(msg).has_value());
}

TEST(Wire, MsgTypeNames) {
  EXPECT_STREQ(msg_type_name(MsgType::kUpdate), "UPDATE");
  EXPECT_STREQ(msg_type_name(MsgType::kStateTransfer), "STATE_TRANSFER");
}

}  // namespace
}  // namespace rtpb::core::wire
