// Runtime QoS renegotiation: the kConstraintDowngrade / kConstraintRestore
// round trip, its interaction with in-flight state transfers, the epoch
// fence that kills stale renegotiations after failover, and the restore
// hysteresis that keeps downgrades from flapping.
#include <gtest/gtest.h>

#include "core/rtpb.hpp"

namespace rtpb::core {
namespace {

ObjectSpec make_spec(ObjectId id) {
  ObjectSpec s;
  s.id = id;
  s.name = "obj" + std::to_string(id);
  s.size_bytes = 64;
  s.client_period = millis(10);
  s.client_exec = micros(200);
  s.update_exec = micros(200);
  s.delta_primary = millis(20);
  s.delta_backup = millis(100);
  return s;
}

ServiceParams make_params(std::uint64_t seed, std::size_t backups = 1) {
  ServiceParams p;
  p.seed = seed;
  p.link.propagation = millis(1);
  p.link.jitter = micros(200);
  p.backup_count = backups;
  return p;
}

Duration backup_window(RtpbService& service, ObjectId id) {
  const auto state = service.backups().front()->store().find(id);
  return state ? state->spec.window() : Duration::zero();
}

TEST(QosRenegotiation, DowngradeRoundTripLoosensBothReplicas) {
  RtpbService service(make_params(201));
  service.start();
  ASSERT_TRUE(service.register_object(make_spec(1)).ok());
  service.run_for(seconds(1));

  const Duration original = make_spec(1).window();
  ASSERT_EQ(backup_window(service, 1), original);

  ASSERT_TRUE(service.primary().downgrade_object(1));
  EXPECT_TRUE(service.primary().qos_downgrade_active(1));
  EXPECT_EQ(service.primary().qos_downgrades_sent(), 1u);
  EXPECT_GT(service.primary().qos_last_notice_at(1), TimePoint::zero());

  // The loosened spec lands in the primary's own store immediately …
  const auto at_primary = service.primary().store().find(1);
  ASSERT_TRUE(at_primary.has_value());
  EXPECT_GT(at_primary->spec.window(), original);

  // … and the notice reaches the backup on the wire.
  service.run_for(millis(50));
  EXPECT_EQ(service.backups().front()->qos_downgrades_received(), 1u);
  EXPECT_EQ(backup_window(service, 1), at_primary->spec.window());

  // Restore puts the negotiated constraint back everywhere.
  ASSERT_TRUE(service.primary().restore_object(1));
  EXPECT_FALSE(service.primary().qos_downgrade_active(1));
  EXPECT_EQ(service.primary().qos_restores_sent(), 1u);
  service.run_for(millis(50));
  EXPECT_EQ(backup_window(service, 1), original);
  const auto restored = service.primary().store().find(1);
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(restored->spec.window(), original);
}

TEST(QosRenegotiation, DowngradeDuringPendingTransferRidesTheTransfer) {
  // Register while the replication link is black-holed: the registration
  // state transfer stays pending.  A downgrade issued in that gap updates
  // the store spec, so when the link heals the retried transfer carries
  // the *downgraded* constraint — the backup must not resurrect the
  // original.
  ServiceParams params = make_params(202);
  params.config.ping_max_misses = 1000000;  // keep the peer un-suspected
  params.config.transfer_retry_limit = 0;   // retry forever, no give-up
  // Keep the downgrade in force for the whole test: a healthy service
  // would otherwise restore the original before we can observe what the
  // retried transfer carried.
  params.config.degrade_restore_hold = seconds(60);
  RtpbService service(params);
  service.start();
  service.run_for(millis(50));

  const net::NodeId p = service.primary().node();
  const net::NodeId b = service.backup().node();
  service.network().set_loss_probability(p, b, 1.0);
  ASSERT_TRUE(service.register_object(make_spec(1)).ok());
  service.run_for(millis(100));
  ASSERT_FALSE(service.backups().front()->store().contains(1))
      << "transfer must still be pending behind the black hole";

  ASSERT_TRUE(service.primary().downgrade_object(1));
  const Duration downgraded = service.primary().store().find(1)->spec.window();

  service.network().set_loss_probability(p, b, 0.0);
  service.run_for(seconds(2));  // retries drain the pending transfer

  ASSERT_TRUE(service.backups().front()->store().contains(1));
  EXPECT_EQ(backup_window(service, 1), downgraded);
}

TEST(QosRenegotiation, StaleEpochDowngradeIsFencedAfterFailover) {
  // Drill-promote the backup while the old primary still believes it
  // leads, then have the deposed primary issue a downgrade.  The notice
  // carries the stale epoch and must be fenced — a zombie may not loosen
  // the new primary's constraints.
  RtpbService service(make_params(203));
  service.start();
  ASSERT_TRUE(service.register_object(make_spec(1)).ok());
  service.run_for(seconds(1));

  ReplicaServer& old_primary = service.primary();
  ReplicaServer& promoted = *service.backups().front();
  const Duration before = promoted.store().find(1)->spec.window();
  promoted.promote();  // epoch bumps past the old primary's

  ASSERT_TRUE(old_primary.downgrade_object(1));  // stale-epoch notice
  const std::uint64_t fenced_before = promoted.epoch_rejections();
  service.run_for(millis(100));

  EXPECT_EQ(promoted.qos_downgrades_received(), 0u)
      << "the stale downgrade must not be applied";
  EXPECT_EQ(promoted.store().find(1)->spec.window(), before);
  EXPECT_GT(promoted.epoch_rejections(), fenced_before)
      << "the fence (not luck) must have rejected it";
}

TEST(QosRenegotiation, RestoreWaitsOutTheHoldAndNeverFlaps) {
  // After a manual downgrade on an otherwise healthy service, the QoS
  // tick restores the original constraint — but only after the full
  // restore hold (≥ max(degrade_restore_hold, ping_period)), and exactly
  // once: no downgrade/restore flapping within a detector period.
  RtpbService service(make_params(204));
  service.start();
  ASSERT_TRUE(service.register_object(make_spec(1)).ok());
  service.run_for(seconds(1));

  ASSERT_TRUE(service.primary().downgrade_object(1));
  const TimePoint downgraded_at = service.simulator().now();
  const Duration hold = service.params().config.degrade_restore_hold;

  // Just inside the hold: still downgraded.
  service.run_for(hold - millis(20));
  EXPECT_TRUE(service.primary().qos_downgrade_active(1));
  EXPECT_EQ(service.primary().qos_restores_sent(), 0u);

  // Give the tick room past the hold boundary: restored, exactly once.
  service.run_for(seconds(2));
  EXPECT_FALSE(service.primary().qos_downgrade_active(1));
  EXPECT_EQ(service.primary().qos_restores_sent(), 1u);
  EXPECT_EQ(service.primary().qos_downgrades_sent(), 1u)
      << "a healthy service must not re-downgrade after the restore";
  EXPECT_GE(service.primary().qos_last_notice_at(1) - downgraded_at, hold);

  // And it stays quiet: two more detector periods, no further notices.
  service.run_for(service.params().config.ping_period * 2);
  EXPECT_EQ(service.primary().qos_restores_sent(), 1u);
  EXPECT_EQ(service.primary().qos_downgrades_sent(), 1u);
}

TEST(QosRenegotiation, DegradationAnnouncesInsteadOfViolatingSilently) {
  // Over-frontier load (forced slow transmission period) with degradation
  // on: the primary must renegotiate before the window is breached, so
  // the run shows downgrades but zero unannounced-violation time beyond
  // what the downgraded window permits.
  ServiceParams params = make_params(205);
  params.config.update_period_override = millis(100);  // window is 80 ms
  RtpbService service(params);
  service.start();
  ASSERT_TRUE(service.register_object(make_spec(1)).ok());
  service.run_for(seconds(3));
  service.finish();

  EXPECT_GT(service.primary().qos_downgrades_sent(), 0u)
      << "sustained over-frontier lag must trigger renegotiation";
  EXPECT_TRUE(service.primary().qos_downgrade_active(1))
      << "with the lag still present the downgrade must stay in force";
}

}  // namespace
}  // namespace rtpb::core
