// Unit tests of the paper's lemma/theorem predicates, plus empirical
// property tests: random task sets run on the simulated CPU must respect
// the phase-variance bounds the theorems rely on.
#include "sched/theory.hpp"

#include <gtest/gtest.h>

#include "sched/analysis.hpp"
#include "sched/cpu.hpp"
#include "util/rng.hpp"

namespace rtpb::sched {
namespace {

using namespace theory;

TEST(Theory, Lemma1Boundary) {
  // p ≤ (δ + e)/2.
  EXPECT_TRUE(lemma1_primary(millis(10), millis(2), millis(18)));   // 10 == (18+2)/2
  EXPECT_FALSE(lemma1_primary(millis(11), millis(2), millis(18)));
}

TEST(Theory, Theorem1Boundary) {
  // p ≤ δ − v.
  EXPECT_TRUE(theorem1_primary(millis(15), millis(5), millis(20)));
  EXPECT_FALSE(theorem1_primary(millis(16), millis(5), millis(20)));
  EXPECT_EQ(theorem1_max_period(millis(20), millis(5)), millis(15));
}

TEST(Theory, Theorem1RelaxesLemma1) {
  // With zero phase variance, Theorem 1 admits periods up to δ — roughly
  // double what Lemma 1's sufficient condition allows.
  const Duration delta = millis(20), e = millis(1);
  const Duration lemma_max = (delta + e) / 2;
  EXPECT_TRUE(theorem1_primary(delta, Duration::zero(), delta));
  EXPECT_FALSE(lemma1_primary(delta, e, delta));
  EXPECT_LT(lemma_max, delta);
}

TEST(Theory, Lemma2Boundary) {
  // r ≤ (δB + e + e' − ℓ)/2 − p.
  const Duration p = millis(10), e = millis(1), e2 = millis(1), ell = millis(2);
  const Duration delta_b = millis(60);
  // (60+1+1-2)/2 - 10 = 20.
  EXPECT_TRUE(lemma2_backup(millis(20), p, e, e2, ell, delta_b));
  EXPECT_FALSE(lemma2_backup(millis(21), p, e, e2, ell, delta_b));
}

TEST(Theory, Theorem4Boundary) {
  // r ≤ δB − v' − p − v − ℓ.
  const Duration p = millis(10), v = millis(2), vp = millis(1), ell = millis(2);
  const Duration delta_b = millis(60);
  EXPECT_TRUE(theorem4_backup(millis(45), p, v, vp, ell, delta_b));
  EXPECT_FALSE(theorem4_backup(millis(46), p, v, vp, ell, delta_b));
  EXPECT_EQ(theorem4_max_period(p, v, vp, ell, delta_b), millis(45));
}

TEST(Theory, Theorem5IsTheorem4WithMaximalPAndZeroVPrime) {
  // With v' = 0 and p = δP − v, Theorem 4 collapses to r ≤ (δB − δP) − ℓ.
  const Duration delta_p = millis(20), delta_b = millis(60), ell = millis(2);
  const Duration v = millis(3);
  const Duration p = theorem1_max_period(delta_p, v);
  const Duration t4 = theorem4_max_period(p, v, Duration::zero(), ell, delta_b);
  EXPECT_EQ(t4, (delta_b - delta_p) - ell);
  EXPECT_TRUE(theorem5_backup(t4, delta_p, delta_b, ell));
  EXPECT_FALSE(theorem5_backup(t4 + nanos(1), delta_p, delta_b, ell));
}

TEST(Theory, ConsistencyWindowAndUpdatePeriod) {
  EXPECT_EQ(consistency_window(millis(20), millis(100)), millis(80));
  EXPECT_EQ(update_period(millis(80), millis(2), 2), millis(39));
  EXPECT_EQ(update_period(millis(80), millis(2), 1), millis(78));
}

TEST(Theory, Lemma3AndTheorem6) {
  EXPECT_TRUE(lemma3_task(millis(10), millis(2), millis(18)));
  EXPECT_FALSE(lemma3_task(millis(11), millis(2), millis(18)));
  EXPECT_TRUE(theorem6_task(millis(18), Duration::zero(), millis(18)));
  EXPECT_FALSE(theorem6_task(millis(19), Duration::zero(), millis(18)));
  EXPECT_TRUE(theorem6_pair(millis(10), millis(1), millis(12), millis(2), millis(15)));
  EXPECT_FALSE(theorem6_pair(millis(10), millis(1), millis(14), millis(2), millis(15)));
}

// ---------------------------------------------------------------------------
// Empirical properties on the simulated CPU.
// ---------------------------------------------------------------------------

struct SweepParam {
  Policy policy;
  std::uint64_t seed;
  std::size_t n_tasks;
  double target_utilization;
};

class PhaseVarianceSweep : public ::testing::TestWithParam<SweepParam> {};

TaskSet random_task_set(Rng& rng, std::size_t n, double target_util) {
  TaskSet set;
  const double per_task = target_util / static_cast<double>(n);
  for (std::size_t i = 0; i < n; ++i) {
    TaskSpec t;
    t.id = static_cast<TaskId>(i + 1);
    t.period = millis(rng.uniform(8, 120));
    t.wcet = std::max(micros(100), t.period.scaled(per_task));
    set.push_back(t);
  }
  return set;
}

TEST_P(PhaseVarianceSweep, UniversalBoundHolds) {
  const SweepParam param = GetParam();
  Rng rng(param.seed);
  TaskSet set = random_task_set(rng, param.n_tasks, param.target_utilization);
  // Only run schedulable sets: the bound's derivation assumes deadlines met.
  if (param.policy == Policy::kRateMonotonic && !rm_exact_test(set)) GTEST_SKIP();
  if (param.policy == Policy::kEdf && !edf_test(set)) GTEST_SKIP();
  if (param.policy == Policy::kDcsSr && !dcs_specialize(set).feasible()) GTEST_SKIP();

  sim::Simulator sim(param.seed);
  Cpu cpu(sim, param.policy);
  std::vector<TaskId> ids;
  for (const auto& t : set) {
    TaskSpec copy = t;
    copy.id = kInvalidTask;  // Cpu assigns
    ids.push_back(cpu.add_task(copy, nullptr));
  }
  cpu.start(TimePoint::zero());
  sim.run_until(TimePoint::zero() + seconds(20));

  EXPECT_EQ(cpu.deadline_misses(), 0u);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const Duration period = cpu.effective_period(ids[i]);
    const Duration bound = period - set[i].wcet;  // Eq. 2.1 on the effective period
    EXPECT_LE(cpu.tracker(ids[i]).phase_variance(), bound)
        << "task " << i << " period " << period.to_string();
  }
}

TEST_P(PhaseVarianceSweep, DcsZeroVariance) {
  const SweepParam param = GetParam();
  if (param.policy != Policy::kDcsSr) GTEST_SKIP();
  Rng rng(param.seed);
  TaskSet set = random_task_set(rng, param.n_tasks, param.target_utilization);
  if (!dcs_zero_variance_condition(set)) GTEST_SKIP();
  if (!dcs_specialize(set).feasible()) GTEST_SKIP();

  sim::Simulator sim(param.seed);
  Cpu cpu(sim, Policy::kDcsSr);
  std::vector<TaskId> ids;
  for (const auto& t : set) {
    TaskSpec copy = t;
    copy.id = kInvalidTask;
    ids.push_back(cpu.add_task(copy, nullptr));
  }
  cpu.start(TimePoint::zero());
  sim.run_until(TimePoint::zero() + seconds(20));
  for (TaskId id : ids) {
    EXPECT_EQ(cpu.tracker(id).phase_variance(), Duration::zero());
  }
}

std::vector<SweepParam> sweep_params() {
  std::vector<SweepParam> params;
  std::uint64_t seed = 1000;
  for (Policy policy : {Policy::kEdf, Policy::kRateMonotonic, Policy::kDcsSr}) {
    for (std::size_t n : {2u, 4u, 8u}) {
      for (double util : {0.3, 0.5, 0.65}) {
        params.push_back({policy, seed++, n, util});
      }
    }
  }
  return params;
}

INSTANTIATE_TEST_SUITE_P(RandomTaskSets, PhaseVarianceSweep,
                         ::testing::ValuesIn(sweep_params()),
                         [](const ::testing::TestParamInfo<SweepParam>& param_info) {
                           const auto& p = param_info.param;
                           std::string name(policy_name(p.policy));
                           std::erase(name, '-');  // gtest names must be alnum
                           return name + "_n" +
                                  std::to_string(p.n_tasks) + "_u" +
                                  std::to_string(static_cast<int>(p.target_utilization * 100));
                         });

// Theorem 2's EDF bound checked on a deliberately contended set.
TEST(Theory, Theorem2EdfBoundEmpirically) {
  sim::Simulator sim(5);
  Cpu cpu(sim, Policy::kEdf);
  TaskSet set;
  {
    TaskSpec t;
    t.period = millis(10);
    t.wcet = millis(2);
    set.push_back(t);
    t.period = millis(20);
    t.wcet = millis(4);
    set.push_back(t);
    t.period = millis(40);
    t.wcet = millis(4);
    set.push_back(t);
  }
  const double x = total_utilization(set);  // 0.5
  std::vector<TaskId> ids;
  for (auto& t : set) ids.push_back(cpu.add_task(t, nullptr));
  cpu.start(TimePoint::zero());
  sim.run_until(TimePoint::zero() + seconds(30));
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const Duration bound = phase_variance_bound_edf(set[i], x);
    EXPECT_LE(cpu.tracker(ids[i]).phase_variance(), bound) << i;
  }
}

}  // namespace
}  // namespace rtpb::sched
