// Digest-purity oracle of the parallel chaos engine: every (shard, seed)
// stream must be bit-reproducible at ANY thread count, and must match the
// classic sequential harness run of the derived per-shard seed exactly.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "chaos/harness.hpp"
#include "psim/chaos.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"

namespace rtpb::psim {
namespace {

chaos::ChaosOptions fast_options(std::size_t shards) {
  chaos::ChaosOptions opts;
  opts.duration = seconds(6);
  opts.objects = 3;
  opts.shards = shards;
  return opts;
}

std::vector<std::uint64_t> shard_digests(const ParallelSeedReport& report) {
  std::vector<std::uint64_t> out;
  for (const ShardSeedReport& r : report.shard_reports) out.push_back(r.trace_digest);
  return out;
}

class ChaosParallelTest : public ::testing::Test {
 protected:
  void SetUp() override { Logger::instance().set_level(LogLevel::kError); }
};

TEST_F(ChaosParallelTest, DigestsAreThreadCountInvariant) {
  // threads == 1 is THE sequential build: the driver runs the identical
  // window schedule inline, spawning no std::thread at all.
  const chaos::ChaosOptions opts = fast_options(3);
  const ParallelSeedReport one = run_parallel_seed(11, opts, 1);
  const ParallelSeedReport two = run_parallel_seed(11, opts, 2);
  const ParallelSeedReport four = run_parallel_seed(11, opts, 4);
  ASSERT_EQ(one.shard_reports.size(), 3u);
  EXPECT_EQ(shard_digests(two), shard_digests(one));
  EXPECT_EQ(shard_digests(four), shard_digests(one));
  // The whole report agrees, not just the digests.
  for (std::size_t s = 0; s < 3; ++s) {
    EXPECT_EQ(two.shard_reports[s].trace_events, one.shard_reports[s].trace_events);
    EXPECT_EQ(four.shard_reports[s].sim_events, one.shard_reports[s].sim_events);
    EXPECT_EQ(four.shard_reports[s].client_writes, one.shard_reports[s].client_writes);
    EXPECT_EQ(four.shard_reports[s].fired, one.shard_reports[s].fired);
  }
  // Frontier exchange is part of the deterministic schedule too.
  EXPECT_EQ(two.frontier_records_published, one.frontier_records_published);
  EXPECT_EQ(four.frontier_records_ingested, one.frontier_records_ingested);
}

TEST_F(ChaosParallelTest, RerunAtSameThreadCountIsStable) {
  const chaos::ChaosOptions opts = fast_options(2);
  const ParallelSeedReport a = run_parallel_seed(5, opts, 2);
  const ParallelSeedReport b = run_parallel_seed(5, opts, 2);
  EXPECT_EQ(shard_digests(a), shard_digests(b));
  EXPECT_EQ(a.frontier_records_ingested, b.frontier_records_ingested);
}

TEST_F(ChaosParallelTest, PerShardDigestMatchesClassicHarness) {
  // The strongest purity statement: shard s of a parallel run IS a
  // classic chaos experiment of the derived seed — window chopping,
  // barrier exchange and frontier ingestion leave the trace untouched.
  const chaos::ChaosOptions opts = fast_options(2);
  const ParallelSeedReport parallel = run_parallel_seed(21, opts, 2);

  chaos::ChaosOptions classic = opts;
  classic.shards = 1;  // per-shard runs force shards=1 internally
  for (const ShardSeedReport& r : parallel.shard_reports) {
    const chaos::SeedReport reference = chaos::run_seed(r.shard_seed, classic);
    EXPECT_EQ(r.trace_digest, reference.trace_digest) << "shard " << r.shard;
    EXPECT_EQ(r.trace_events, reference.trace_events);
    EXPECT_EQ(r.sim_events, reference.sim_events);
    EXPECT_EQ(r.violation_count, reference.violation_count);
  }
}

TEST_F(ChaosParallelTest, ShardSeedsAreStreamDerived) {
  const chaos::ChaosOptions opts = fast_options(2);
  const ParallelSeedReport report = run_parallel_seed(33, opts, 1);
  const std::uint64_t root = derive_stream_seed(33, chaos::kStreamParallel);
  for (const ShardSeedReport& r : report.shard_reports) {
    EXPECT_EQ(r.shard_seed, derive_stream_seed(root, r.shard));
  }
  EXPECT_NE(report.shard_reports[0].trace_digest, report.shard_reports[1].trace_digest);
}

TEST_F(ChaosParallelTest, FrontierRecordsActuallyCross) {
  chaos::ChaosOptions opts = fast_options(3);
  opts.enable_crashes = false;  // keep every backup applying
  const ParallelSeedReport report = run_parallel_seed(2, opts, 3);
  EXPECT_GT(report.frontier_records_published, 0u);
  EXPECT_GT(report.frontier_records_ingested, 0u);
  // Fan-out bound: each publish lands in (shards-1) peer queues, and the
  // last window's publishes may never be drained.
  EXPECT_LE(report.frontier_records_ingested, report.frontier_records_published * 2);
}

TEST_F(ChaosParallelTest, ThreadCountAboveShardsClampsAndAgrees) {
  const chaos::ChaosOptions opts = fast_options(2);
  const ParallelSeedReport base = run_parallel_seed(8, opts, 2);
  const ParallelSeedReport over = run_parallel_seed(8, opts, 16);
  EXPECT_EQ(over.driver.threads, 2u);
  EXPECT_EQ(shard_digests(over), shard_digests(base));
}

}  // namespace
}  // namespace rtpb::psim
