// One-shot aperiodic jobs on the simulated CPU: background priority,
// retirement after completion, interaction with periodic load.
#include <gtest/gtest.h>

#include "sched/cpu.hpp"

namespace rtpb::sched {
namespace {

TaskSpec make_task(Duration period, Duration wcet) {
  TaskSpec t;
  t.period = period;
  t.wcet = wcet;
  return t;
}

TEST(AperiodicJob, RunsToCompletionOnIdleCpu) {
  sim::Simulator sim;
  Cpu cpu(sim, Policy::kRateMonotonic);
  cpu.start(TimePoint::zero());
  bool done = false;
  TimePoint finish{};
  cpu.submit_job("once", millis(3), [&](const JobInfo& j) {
    done = true;
    finish = j.finish;
  });
  sim.run_until(TimePoint::zero() + millis(10));
  EXPECT_TRUE(done);
  EXPECT_EQ(finish, TimePoint::zero() + millis(3));
}

TEST(AperiodicJob, RetiresAfterCompletion) {
  sim::Simulator sim;
  Cpu cpu(sim, Policy::kRateMonotonic);
  cpu.start(TimePoint::zero());
  const TaskId id = cpu.submit_job("once", millis(1), nullptr);
  EXPECT_TRUE(cpu.has_task(id));
  sim.run_until(TimePoint::zero() + millis(5));
  EXPECT_FALSE(cpu.has_task(id));
  EXPECT_EQ(cpu.jobs_completed(), 1u);
}

TEST(AperiodicJob, DoesNotDelayPeriodicTasks) {
  sim::Simulator sim;
  Cpu cpu(sim, Policy::kRateMonotonic);
  std::vector<TimePoint> finishes;
  cpu.add_task(make_task(millis(10), millis(2)),
               [&](const JobInfo& j) { finishes.push_back(j.finish); });
  cpu.start(TimePoint::zero());
  sim.run_until(TimePoint::zero() + millis(5));
  // A long background job lands mid-hyperperiod...
  cpu.submit_job("bg", millis(30), nullptr);
  sim.run_until(TimePoint::zero() + millis(100));
  // ...and every periodic job still finishes exactly 2ms after release.
  ASSERT_GE(finishes.size(), 9u);
  for (std::size_t i = 0; i < finishes.size(); ++i) {
    EXPECT_EQ(finishes[i],
              TimePoint::zero() + millis(10) * static_cast<std::int64_t>(i) + millis(2));
  }
}

TEST(AperiodicJob, PreemptedByPeriodicArrivals) {
  sim::Simulator sim;
  Cpu cpu(sim, Policy::kRateMonotonic);
  cpu.start(TimePoint::zero());
  TimePoint bg_finish{};
  cpu.submit_job("bg", millis(6), [&](const JobInfo& j) { bg_finish = j.finish; });
  sim.run_until(TimePoint::zero() + millis(2));
  // Periodic task arrives at t=2 and takes 3ms of CPU per 10ms period.
  cpu.add_task(make_task(millis(10), millis(3)), nullptr);
  sim.run_until(TimePoint::zero() + millis(30));
  // bg: ran 0-2 (2ms), preempted 2-5, ran 5-9 (4ms) -> finish at 9ms.
  EXPECT_EQ(bg_finish, TimePoint::zero() + millis(9));
}

TEST(AperiodicJob, MultipleJobsServeInIdOrder) {
  sim::Simulator sim;
  Cpu cpu(sim, Policy::kRateMonotonic);
  cpu.start(TimePoint::zero());
  std::vector<int> order;
  cpu.submit_job("a", millis(1), [&](const JobInfo&) { order.push_back(1); });
  cpu.submit_job("b", millis(1), [&](const JobInfo&) { order.push_back(2); });
  cpu.submit_job("c", millis(1), [&](const JobInfo&) { order.push_back(3); });
  sim.run_until(TimePoint::zero() + millis(10));
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(AperiodicJob, CallbackMaySubmitAnotherJob) {
  sim::Simulator sim;
  Cpu cpu(sim, Policy::kRateMonotonic);
  cpu.start(TimePoint::zero());
  int chain = 0;
  std::function<void(const JobInfo&)> again = [&](const JobInfo&) {
    if (++chain < 3) cpu.submit_job("chain", millis(1), again);
  };
  cpu.submit_job("chain", millis(1), again);
  sim.run_until(TimePoint::zero() + millis(20));
  EXPECT_EQ(chain, 3);
}

TEST(AperiodicJob, RemovableBeforeRunning) {
  sim::Simulator sim;
  Cpu cpu(sim, Policy::kRateMonotonic);
  // Keep the CPU busy so the background job cannot start immediately.
  cpu.add_task(make_task(millis(10), millis(9)), nullptr);
  cpu.start(TimePoint::zero());
  sim.run_until(TimePoint::zero() + millis(1));
  bool ran = false;
  const TaskId id = cpu.submit_job("bg", millis(1), [&](const JobInfo&) { ran = true; });
  cpu.remove_task(id);
  sim.run_until(TimePoint::zero() + millis(50));
  EXPECT_FALSE(ran);
}

}  // namespace
}  // namespace rtpb::sched
