#include "util/config.hpp"

#include <gtest/gtest.h>

namespace rtpb {
namespace {

TEST(Config, ParsesKeyValuePairs) {
  const Config c = Config::parse("a = 1\nb=hello\n  c  =  2.5  \n");
  EXPECT_EQ(c.get_int("a", 0), 1);
  EXPECT_EQ(c.get_string("b", ""), "hello");
  EXPECT_DOUBLE_EQ(c.get_double("c", 0.0), 2.5);
  EXPECT_TRUE(c.errors().empty());
}

TEST(Config, CommentsAndBlankLinesIgnored) {
  const Config c = Config::parse("# header\n\nkey = value # trailing comment\n\n");
  EXPECT_EQ(c.get_string("key", ""), "value");
  EXPECT_EQ(c.values().size(), 1u);
}

TEST(Config, MalformedLinesReported) {
  const Config c = Config::parse("good = 1\nno equals sign\n= empty key\n");
  EXPECT_EQ(c.errors().size(), 2u);
  EXPECT_EQ(c.get_int("good", 0), 1);
}

TEST(Config, FallbacksWhenMissingOrUnparsable) {
  const Config c = Config::parse("n = notanumber\n");
  EXPECT_EQ(c.get_int("missing", 42), 42);
  EXPECT_EQ(c.get_int("n", 7), 7);
  EXPECT_DOUBLE_EQ(c.get_double("n", 1.5), 1.5);
}

TEST(Config, Booleans) {
  const Config c = Config::parse("t1=true\nt2=YES\nt3=1\nf1=off\nf2=0\nx=maybe\n");
  EXPECT_TRUE(c.get_bool("t1", false));
  EXPECT_TRUE(c.get_bool("t2", false));
  EXPECT_TRUE(c.get_bool("t3", false));
  EXPECT_FALSE(c.get_bool("f1", true));
  EXPECT_FALSE(c.get_bool("f2", true));
  EXPECT_TRUE(c.get_bool("x", true));  // unparsable: fallback
}

TEST(Config, DurationLiterals) {
  EXPECT_EQ(Config::parse_duration("250ns"), nanos(250));
  EXPECT_EQ(Config::parse_duration("10us"), micros(10));
  EXPECT_EQ(Config::parse_duration("5ms"), millis(5));
  EXPECT_EQ(Config::parse_duration("2s"), seconds(2));
  EXPECT_EQ(Config::parse_duration("1.5ms"), millis_f(1.5));
  EXPECT_EQ(Config::parse_duration("7"), millis(7));  // bare = ms
  EXPECT_FALSE(Config::parse_duration("fast").has_value());
  EXPECT_FALSE(Config::parse_duration("10 lightyears").has_value());
  EXPECT_FALSE(Config::parse_duration("").has_value());
}

TEST(Config, GetDuration) {
  const Config c = Config::parse("period = 10ms\nbad = soon\n");
  EXPECT_EQ(c.get_duration("period", Duration::zero()), millis(10));
  EXPECT_EQ(c.get_duration("bad", millis(3)), millis(3));
  EXPECT_EQ(c.get_duration("missing", millis(9)), millis(9));
}

TEST(Config, UnusedKeyDetection) {
  const Config c = Config::parse("used = 1\ntypo_key = 2\n");
  (void)c.get_int("used", 0);
  const auto unused = c.unused_keys();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "typo_key");
}

TEST(Config, LoadMissingFileReturnsNullopt) {
  EXPECT_FALSE(Config::load("/nonexistent/path/to/config").has_value());
}

TEST(Config, LastDuplicateWins) {
  const Config c = Config::parse("k = 1\nk = 2\n");
  EXPECT_EQ(c.get_int("k", 0), 2);
}

}  // namespace
}  // namespace rtpb
