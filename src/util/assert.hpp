// Contract-check macros in the spirit of the Core Guidelines' Expects/Ensures.
// Violations are programming errors, so they abort with a location message
// rather than throwing (nothing above the call site can meaningfully recover).
#pragma once

#include <cstdio>
#include <cstdlib>

namespace rtpb::detail {
[[noreturn]] inline void contract_failure(const char* kind, const char* expr,
                                          const char* file, int line) {
  std::fprintf(stderr, "rtpb: %s violated: (%s) at %s:%d\n", kind, expr, file, line);
  std::abort();
}
}  // namespace rtpb::detail

#define RTPB_EXPECTS(cond)                                                       \
  do {                                                                           \
    if (!(cond)) ::rtpb::detail::contract_failure("precondition", #cond, __FILE__, __LINE__); \
  } while (false)

#define RTPB_ENSURES(cond)                                                       \
  do {                                                                           \
    if (!(cond)) ::rtpb::detail::contract_failure("postcondition", #cond, __FILE__, __LINE__); \
  } while (false)

#define RTPB_ASSERT(cond)                                                        \
  do {                                                                           \
    if (!(cond)) ::rtpb::detail::contract_failure("invariant", #cond, __FILE__, __LINE__); \
  } while (false)
