// Tiny leveled logger.  Components tag their lines; the global threshold
// makes disabled levels nearly free (an atomic load and a branch).  The
// simulator injects the virtual clock so log lines carry simulated time.
#pragma once

#include <atomic>
#include <cstdio>
#include <functional>
#include <string>
#include <utility>

#include "util/time.hpp"

namespace rtpb {

enum class LogLevel : int { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4, kOff = 5 };

class Logger {
 public:
  static Logger& instance();

  void set_level(LogLevel level) { level_.store(static_cast<int>(level), std::memory_order_relaxed); }
  [[nodiscard]] LogLevel level() const { return static_cast<LogLevel>(level_.load(std::memory_order_relaxed)); }
  [[nodiscard]] bool enabled(LogLevel level) const {
    return static_cast<int>(level) >= level_.load(std::memory_order_relaxed);
  }

  /// Install a virtual-clock source so log lines carry simulated time.
  void set_clock(std::function<TimePoint()> clock) { clock_ = std::move(clock); }
  void clear_clock() { clock_ = nullptr; }

  void write(LogLevel level, const char* component, const std::string& msg);

 private:
  Logger() = default;
  std::atomic<int> level_{static_cast<int>(LogLevel::kWarn)};
  std::function<TimePoint()> clock_;
};

namespace detail {
template <typename... Args>
std::string log_format(const char* fmt, Args&&... args) {
  char buf[512];
  std::snprintf(buf, sizeof buf, fmt, std::forward<Args>(args)...);
  return buf;
}
inline std::string log_format(const char* fmt) { return fmt; }
}  // namespace detail

#define RTPB_LOG(level, component, ...)                                             \
  do {                                                                              \
    if (::rtpb::Logger::instance().enabled(level)) {                                \
      ::rtpb::Logger::instance().write(level, component,                            \
                                       ::rtpb::detail::log_format(__VA_ARGS__));    \
    }                                                                               \
  } while (false)

#define RTPB_TRACE(component, ...) RTPB_LOG(::rtpb::LogLevel::kTrace, component, __VA_ARGS__)
#define RTPB_DEBUG(component, ...) RTPB_LOG(::rtpb::LogLevel::kDebug, component, __VA_ARGS__)
#define RTPB_INFO(component, ...) RTPB_LOG(::rtpb::LogLevel::kInfo, component, __VA_ARGS__)
#define RTPB_WARN(component, ...) RTPB_LOG(::rtpb::LogLevel::kWarn, component, __VA_ARGS__)
#define RTPB_ERROR(component, ...) RTPB_LOG(::rtpb::LogLevel::kError, component, __VA_ARGS__)

}  // namespace rtpb
