// Tiny leveled logger.  Components tag their lines; the global threshold
// makes disabled levels nearly free (an atomic load and a branch).  The
// simulator injects the virtual clock so log lines carry simulated time.
// Output goes to stderr by default; tests (or embedders) can install a
// sink to capture structured records instead.
#pragma once

#include <atomic>
#include <cstdio>
#include <functional>
#include <string>
#include <utility>

#include "util/time.hpp"

#if defined(__GNUC__) || defined(__clang__)
#define RTPB_PRINTF_FORMAT(fmt_index, first_arg) \
  __attribute__((format(printf, fmt_index, first_arg)))
#else
#define RTPB_PRINTF_FORMAT(fmt_index, first_arg)
#endif

namespace rtpb {

enum class LogLevel : int { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4, kOff = 5 };

/// One fully-formatted log line, as handed to an installed sink.
struct LogRecord {
  LogLevel level = LogLevel::kInfo;
  const char* component = "";
  bool has_time = false;  ///< true iff a virtual clock is installed
  TimePoint time{};       ///< simulated time (valid when has_time)
  std::string message;
};

class Logger {
 public:
  static Logger& instance();

  void set_level(LogLevel level) { level_.store(static_cast<int>(level), std::memory_order_relaxed); }
  [[nodiscard]] LogLevel level() const { return static_cast<LogLevel>(level_.load(std::memory_order_relaxed)); }
  [[nodiscard]] bool enabled(LogLevel level) const {
    return static_cast<int>(level) >= level_.load(std::memory_order_relaxed);
  }

  /// Install a virtual-clock source so log lines carry simulated time.
  void set_clock(std::function<TimePoint()> clock) { clock_ = std::move(clock); }
  void clear_clock() { clock_ = nullptr; }
  /// Swap in `clock` (may be nullptr) and return the previous source, so
  /// a caller that must silence the clock temporarily — e.g. around a
  /// parallel region where reading it would race — can restore it after.
  [[nodiscard]] std::function<TimePoint()> exchange_clock(std::function<TimePoint()> clock) {
    return std::exchange(clock_, std::move(clock));
  }

  /// Route records to `sink` instead of stderr (clear_sink restores the
  /// default).  The sink sees every record that passes the level filter.
  void set_sink(std::function<void(const LogRecord&)> sink) { sink_ = std::move(sink); }
  void clear_sink() { sink_ = nullptr; }

  void write(LogLevel level, const char* component, std::string msg);

 private:
  Logger() = default;
  std::atomic<int> level_{static_cast<int>(LogLevel::kWarn)};
  std::function<TimePoint()> clock_;
  std::function<void(const LogRecord&)> sink_;
};

namespace detail {
/// printf-style formatting with no truncation: a stack buffer serves the
/// common case and longer messages get a second, exactly-sized pass.  The
/// format attribute makes argument/format mismatches at RTPB_LOG call
/// sites compile errors instead of runtime garbage.
RTPB_PRINTF_FORMAT(1, 2) std::string log_format(const char* fmt, ...);
}  // namespace detail

#define RTPB_LOG(level, component, ...)                                             \
  do {                                                                              \
    if (::rtpb::Logger::instance().enabled(level)) {                                \
      ::rtpb::Logger::instance().write(level, component,                            \
                                       ::rtpb::detail::log_format(__VA_ARGS__));    \
    }                                                                               \
  } while (false)

#define RTPB_TRACE(component, ...) RTPB_LOG(::rtpb::LogLevel::kTrace, component, __VA_ARGS__)
#define RTPB_DEBUG(component, ...) RTPB_LOG(::rtpb::LogLevel::kDebug, component, __VA_ARGS__)
#define RTPB_INFO(component, ...) RTPB_LOG(::rtpb::LogLevel::kInfo, component, __VA_ARGS__)
#define RTPB_WARN(component, ...) RTPB_LOG(::rtpb::LogLevel::kWarn, component, __VA_ARGS__)
#define RTPB_ERROR(component, ...) RTPB_LOG(::rtpb::LogLevel::kError, component, __VA_ARGS__)

}  // namespace rtpb
