#include "util/config.hpp"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <vector>

namespace rtpb {

namespace {
std::string trim(std::string_view s) {
  const auto b = s.find_first_not_of(" \t\r");
  if (b == std::string_view::npos) return {};
  const auto e = s.find_last_not_of(" \t\r");
  return std::string{s.substr(b, e - b + 1)};
}
}  // namespace

Config Config::parse(std::string_view text) {
  Config config;
  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const auto nl = text.find('\n', pos);
    std::string_view line =
        text.substr(pos, nl == std::string_view::npos ? text.size() - pos : nl - pos);
    pos = nl == std::string_view::npos ? text.size() + 1 : nl + 1;
    ++line_no;

    const auto hash = line.find('#');
    if (hash != std::string_view::npos) line = line.substr(0, hash);
    const std::string trimmed = trim(line);
    if (trimmed.empty()) continue;

    const auto eq = trimmed.find('=');
    if (eq == std::string::npos) {
      config.errors_.push_back("line " + std::to_string(line_no) + ": missing '='");
      continue;
    }
    const std::string key = trim(std::string_view{trimmed}.substr(0, eq));
    const std::string value = trim(std::string_view{trimmed}.substr(eq + 1));
    if (key.empty()) {
      config.errors_.push_back("line " + std::to_string(line_no) + ": empty key");
      continue;
    }
    config.values_[key] = value;
  }
  return config;
}

std::optional<Config> Config::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse(buffer.str());
}

std::string Config::get_string(const std::string& key, std::string fallback) const {
  touched_.insert(key);
  auto it = values_.find(key);
  return it == values_.end() ? std::move(fallback) : it->second;
}

std::int64_t Config::get_int(const std::string& key, std::int64_t fallback) const {
  touched_.insert(key);
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  const long long v = std::strtoll(it->second.c_str(), &end, 10);
  return (end != nullptr && *end == '\0' && end != it->second.c_str()) ? v : fallback;
}

double Config::get_double(const std::string& key, double fallback) const {
  touched_.insert(key);
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  return (end != nullptr && *end == '\0' && end != it->second.c_str()) ? v : fallback;
}

bool Config::get_bool(const std::string& key, bool fallback) const {
  touched_.insert(key);
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  std::string v = it->second;
  std::transform(v.begin(), v.end(), v.begin(), [](unsigned char c) { return std::tolower(c); });
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  return fallback;
}

std::optional<Duration> Config::parse_duration(std::string_view text) {
  const std::string s = trim(text);
  if (s.empty()) return std::nullopt;
  char* end = nullptr;
  const double magnitude = std::strtod(s.c_str(), &end);
  if (end == s.c_str()) return std::nullopt;
  const std::string suffix = trim(std::string_view{s}.substr(static_cast<std::size_t>(end - s.c_str())));
  double scale = 1e6;  // bare number = milliseconds
  if (suffix == "ns") scale = 1.0;
  else if (suffix == "us") scale = 1e3;
  else if (suffix == "ms" || suffix.empty()) scale = 1e6;
  else if (suffix == "s") scale = 1e9;
  else return std::nullopt;
  return Duration{static_cast<std::int64_t>(magnitude * scale + (magnitude >= 0 ? 0.5 : -0.5))};
}

Duration Config::get_duration(const std::string& key, Duration fallback) const {
  touched_.insert(key);
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  const auto parsed = parse_duration(it->second);
  return parsed.value_or(fallback);
}

std::vector<std::string> Config::unused_keys() const {
  std::vector<std::string> out;
  for (const auto& [key, value] : values_) {
    if (!touched_.contains(key)) out.push_back(key);
  }
  return out;
}

}  // namespace rtpb
