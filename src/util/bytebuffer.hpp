// Endian-safe wire serialisation.  All multi-byte integers are encoded
// big-endian ("network order") regardless of host, so encoded frames are
// portable and byte-for-byte reproducible.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/assert.hpp"
#include "util/time.hpp"

namespace rtpb {

using Bytes = std::vector<std::uint8_t>;

/// Appends values to a growing byte vector.
class ByteWriter {
 public:
  ByteWriter() = default;
  explicit ByteWriter(std::size_t reserve) { buf_.reserve(reserve); }

  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) { append_be(v); }
  void u32(std::uint32_t v) { append_be(v); }
  void u64(std::uint64_t v) { append_be(v); }
  void i64(std::int64_t v) { append_be(static_cast<std::uint64_t>(v)); }
  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    append_be(bits);
  }
  void duration(Duration d) { i64(d.nanos()); }
  void timepoint(TimePoint t) { i64(t.nanos()); }

  /// Length-prefixed (u32) byte string.
  void bytes(std::span<const std::uint8_t> data) {
    u32(static_cast<std::uint32_t>(data.size()));
    raw(data);
  }
  void string(std::string_view s) {
    bytes({reinterpret_cast<const std::uint8_t*>(s.data()), s.size()});
  }
  /// Raw append without a length prefix.
  void raw(std::span<const std::uint8_t> data) {
    buf_.insert(buf_.end(), data.begin(), data.end());
  }

  [[nodiscard]] const Bytes& data() const& { return buf_; }
  [[nodiscard]] Bytes take() && { return std::move(buf_); }
  [[nodiscard]] std::size_t size() const { return buf_.size(); }

 private:
  template <typename T>
  void append_be(T v) {
    // One bulk insert instead of per-byte push_back: a frame encoded into
    // an exactly-reserved writer costs a single allocation.
    std::uint8_t be[sizeof(T)];
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      be[i] = static_cast<std::uint8_t>((v >> (8 * (sizeof(T) - 1 - i))) & 0xFF);
    }
    buf_.insert(buf_.end(), be, be + sizeof(T));
  }
  Bytes buf_;
};

/// Consumes values from a byte span.  Over-reads are flagged via ok();
/// reads past the end return zero values so callers can check once at the
/// end of a decode instead of after every field.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t u8() { return read_be<std::uint8_t>(); }
  std::uint16_t u16() { return read_be<std::uint16_t>(); }
  std::uint32_t u32() { return read_be<std::uint32_t>(); }
  std::uint64_t u64() { return read_be<std::uint64_t>(); }
  std::int64_t i64() { return static_cast<std::int64_t>(read_be<std::uint64_t>()); }
  double f64() {
    const std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }
  Duration duration() { return Duration{i64()}; }
  TimePoint timepoint() { return TimePoint{i64()}; }

  Bytes bytes() {
    const std::uint32_t n = u32();
    if (remaining() < n) { failed_ = true; pos_ = data_.size(); return {}; }
    Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
              data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
    pos_ += n;
    return out;
  }
  std::string string() {
    const Bytes b = bytes();
    return {b.begin(), b.end()};
  }

  [[nodiscard]] bool ok() const { return !failed_; }
  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
  [[nodiscard]] bool at_end() const { return pos_ == data_.size(); }

 private:
  template <typename T>
  T read_be() {
    if (remaining() < sizeof(T)) {
      failed_ = true;
      pos_ = data_.size();
      return T{};
    }
    T v{};
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      v = static_cast<T>(static_cast<T>(v << 8) | data_[pos_ + i]);
    }
    pos_ += sizeof(T);
    return v;
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  bool failed_ = false;
};

}  // namespace rtpb
