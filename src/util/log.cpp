#include "util/log.hpp"

namespace rtpb {

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

namespace {
const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?";
}
}  // namespace

void Logger::write(LogLevel level, const char* component, const std::string& msg) {
  if (clock_) {
    std::fprintf(stderr, "[%12.3fms] %s %-10s %s\n", clock_().millis(), level_name(level),
                 component, msg.c_str());
  } else {
    std::fprintf(stderr, "[        ----] %s %-10s %s\n", level_name(level), component, msg.c_str());
  }
}

}  // namespace rtpb
