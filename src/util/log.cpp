#include "util/log.hpp"

#include <cstdarg>

namespace rtpb {

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

namespace {
const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?";
}
}  // namespace

void Logger::write(LogLevel level, const char* component, std::string msg) {
  LogRecord record;
  record.level = level;
  record.component = component;
  if (clock_) {
    record.has_time = true;
    record.time = clock_();
  }
  record.message = std::move(msg);

  if (sink_) {
    sink_(record);
    return;
  }
  if (record.has_time) {
    std::fprintf(stderr, "[%12.3fms] %s %-10s %s\n", record.time.millis(), level_name(level),
                 component, record.message.c_str());
  } else {
    std::fprintf(stderr, "[        ----] %s %-10s %s\n", level_name(level), component,
                 record.message.c_str());
  }
}

namespace detail {

std::string log_format(const char* fmt, ...) {  // NOLINT(cert-dcl50-cpp)
  va_list args;
  va_start(args, fmt);
  va_list retry;
  va_copy(retry, args);

  char buf[512];
  const int n = std::vsnprintf(buf, sizeof buf, fmt, args);
  va_end(args);
  if (n < 0) {
    va_end(retry);
    return fmt;  // encoding error: fall back to the raw format string
  }
  if (static_cast<std::size_t>(n) < sizeof buf) {
    va_end(retry);
    return std::string(buf, static_cast<std::size_t>(n));
  }
  // Message longer than the stack buffer: re-format into an exactly-sized
  // string (the old fixed buffer silently truncated here).
  std::string out(static_cast<std::size_t>(n), '\0');
  std::vsnprintf(out.data(), out.size() + 1, fmt, retry);
  va_end(retry);
  return out;
}

}  // namespace detail
}  // namespace rtpb
