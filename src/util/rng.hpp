// Deterministic, seedable random number generation.  Every stochastic
// element of an experiment (message loss, delay jitter, workload phases)
// draws from an Rng that is seeded from the experiment config, so runs are
// reproducible bit-for-bit.
//
// The generator is xoshiro256** (public domain, Blackman & Vigna), seeded
// via SplitMix64 as its authors recommend.
#pragma once

#include <array>
#include <cstdint>

#include "util/assert.hpp"

namespace rtpb {

/// SplitMix64: used for seeding and as a cheap stateless mixer.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Seed-splitting: the seed of sub-stream `stream` of a root seed.
///
/// Unlike Rng::fork(), derivation is stateless — stream k of a given root
/// is always the same generator no matter how many other streams exist or
/// in what order they are drawn.  Consumers that each own a numbered
/// stream therefore stay decoupled: adding or removing one (say, disabling
/// crash injection in a chaos schedule) cannot shift the draws any other
/// stream sees.
[[nodiscard]] constexpr std::uint64_t derive_stream_seed(std::uint64_t root,
                                                         std::uint64_t stream) {
  std::uint64_t s = root ^ (0xa0761d6478bd642fULL * (stream + 1));
  std::uint64_t mixed = splitmix64(s);
  // A second round keeps nearby (root, stream) pairs far apart.
  return splitmix64(mixed);
}

class Rng {
 public:
  explicit Rng(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  /// Uniform over all 64-bit values.
  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform(std::int64_t lo, std::int64_t hi) {
    RTPB_EXPECTS(lo <= hi);
    const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
    if (range == 0) return static_cast<std::int64_t>(next_u64());  // full range
    // Debiased modulo (Lemire-style rejection).
    std::uint64_t x = next_u64();
    __uint128_t m = static_cast<__uint128_t>(x) * range;
    auto low = static_cast<std::uint64_t>(m);
    if (low < range) {
      const std::uint64_t threshold = (0 - range) % range;
      while (low < threshold) {
        x = next_u64();
        m = static_cast<__uint128_t>(x) * range;
        low = static_cast<std::uint64_t>(m);
      }
    }
    return lo + static_cast<std::int64_t>(m >> 64);
  }

  /// Uniform real in [lo, hi).
  double uniform_real(double lo, double hi) {
    RTPB_EXPECTS(lo <= hi);
    return lo + (hi - lo) * next_double();
  }

  /// Bernoulli trial with success probability p in [0, 1].
  bool bernoulli(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return next_double() < p;
  }

  /// Derive an independent child generator (for per-component streams).
  Rng fork() { return Rng{next_u64()}; }

  /// Stateless fork: derive sub-stream `stream` without consuming any
  /// randomness from this generator (see derive_stream_seed).  Two
  /// generators in identical states split identically.
  [[nodiscard]] Rng split(std::uint64_t stream) const {
    return Rng{derive_stream_seed(state_[0] ^ (state_[2] + 0x9e3779b97f4a7c15ULL), stream)};
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::array<std::uint64_t, 4> state_{};
};

}  // namespace rtpb
