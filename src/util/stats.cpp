#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace rtpb {

void RunningStats::add(double x) {
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  if (count_ == 1) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
}

double RunningStats::variance() const {
  return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void RunningStats::merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) { *this = other; return; }
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void SampleSet::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double SampleSet::mean() const {
  if (samples_.empty()) return 0.0;
  double s = 0.0;
  for (double x : samples_) s += x;
  return s / static_cast<double>(samples_.size());
}

double SampleSet::min() const {
  ensure_sorted();
  return samples_.empty() ? 0.0 : samples_.front();
}

double SampleSet::max() const {
  ensure_sorted();
  return samples_.empty() ? 0.0 : samples_.back();
}

double SampleSet::quantile(double q) const {
  RTPB_EXPECTS(q >= 0.0 && q <= 1.0);
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  if (samples_.size() == 1) return samples_[0];
  const double pos = q * static_cast<double>(samples_.size() - 1);
  const auto idx = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(idx);
  if (idx + 1 >= samples_.size()) return samples_.back();
  return samples_[idx] * (1.0 - frac) + samples_[idx + 1] * frac;
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), counts_(buckets, 0) {
  RTPB_EXPECTS(hi > lo);
  RTPB_EXPECTS(buckets > 0);
}

void Histogram::add(double x) {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  auto idx = static_cast<std::int64_t>((x - lo_) / width);
  idx = std::clamp<std::int64_t>(idx, 0, static_cast<std::int64_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

double Histogram::quantile(double q) const {
  RTPB_EXPECTS(q >= 0.0 && q <= 1.0);
  if (total_ == 0) return lo_;
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  const double target = q * static_cast<double>(total_);
  double cum = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    const double in_bucket = static_cast<double>(counts_[i]);
    if (cum + in_bucket >= target) {
      double frac = (target - cum) / in_bucket;
      frac = std::clamp(frac, 0.0, 1.0);
      // Pin exact cumulative boundaries to exact bucket edges (avoids
      // lo + i*w + w vs lo + (i+1)*w rounding skew).
      if (frac == 0.0) return bucket_lo(i);
      if (frac == 1.0) return i + 1 < counts_.size() ? bucket_lo(i + 1) : hi_;
      return bucket_lo(i) + frac * width;
    }
    cum += in_bucket;
  }
  return hi_;
}

double Histogram::bucket_lo(std::size_t i) const {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(i);
}

std::string Histogram::render(std::size_t width) const {
  std::string out;
  std::uint64_t peak = 1;
  for (auto c : counts_) peak = std::max(peak, c);
  char line[160];
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto bar = static_cast<std::size_t>(counts_[i] * width / peak);
    std::snprintf(line, sizeof line, "%10.3f | %-*s %llu\n", bucket_lo(i),
                  static_cast<int>(width), std::string(bar, '#').c_str(),
                  static_cast<unsigned long long>(counts_[i]));
    out += line;
  }
  return out;
}

void IntervalRecorder::open(TimePoint t) {
  if (open_) return;
  open_ = true;
  open_at_ = t;
}

void IntervalRecorder::close(TimePoint t) {
  if (!open_) return;
  RTPB_EXPECTS(t >= open_at_);
  open_ = false;
  const Duration d = t - open_at_;
  total_ += d;
  durations_.add(d);
}

void IntervalRecorder::finish(TimePoint t) { close(t); }

}  // namespace rtpb
