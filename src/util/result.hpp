// Minimal Expected-style result type (std::expected is C++23; we target
// C++20).  Used for fallible operations whose failure is an expected
// outcome — e.g. admission control rejecting an object — where exceptions
// would conflate "rejected" with "broken".
//
// The error type E is arbitrary; the only convention is that E exposes a
// `code` member so call sites can switch on the machine-readable reason
// (Result::code() forwards to it).  Error<Code> is the common minimal E.
#pragma once

#include <string>
#include <utility>
#include <variant>

#include "util/assert.hpp"

namespace rtpb {

/// Minimal error payload: a machine-readable code plus a human-readable
/// reason.
template <typename Code>
struct Error {
  Code code{};
  std::string reason;
};

template <typename T, typename E>
class Result {
 public:
  Result(T value) : data_(std::in_place_index<0>, std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(E err) : data_(std::in_place_index<1>, std::move(err)) {}      // NOLINT(google-explicit-constructor)

  [[nodiscard]] bool ok() const { return data_.index() == 0; }
  explicit operator bool() const { return ok(); }

  [[nodiscard]] const T& value() const& { RTPB_EXPECTS(ok()); return std::get<0>(data_); }
  [[nodiscard]] T& value() & { RTPB_EXPECTS(ok()); return std::get<0>(data_); }
  [[nodiscard]] T&& value() && { RTPB_EXPECTS(ok()); return std::get<0>(std::move(data_)); }

  [[nodiscard]] const E& error() const { RTPB_EXPECTS(!ok()); return std::get<1>(data_); }
  [[nodiscard]] auto code() const { return error().code; }

 private:
  std::variant<T, E> data_;
};

/// Result with no success payload.
template <typename E>
class Status {
 public:
  Status() = default;  // success
  Status(E err) : err_(std::move(err)), failed_(true) {}  // NOLINT(google-explicit-constructor)

  [[nodiscard]] bool ok() const { return !failed_; }
  explicit operator bool() const { return ok(); }
  [[nodiscard]] const E& error() const { RTPB_EXPECTS(failed_); return err_; }
  [[nodiscard]] auto code() const { return error().code; }

 private:
  E err_{};
  bool failed_ = false;
};

}  // namespace rtpb
