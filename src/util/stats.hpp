// Statistics collectors used by the metrics layer and the benchmark
// harness: running moments, exact percentiles over retained samples,
// fixed-width histograms, and an interval recorder for "how long was the
// system in state X" measurements (duration of backup inconsistency).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/assert.hpp"
#include "util/time.hpp"

namespace rtpb {

/// Welford running mean/variance plus min/max.  O(1) space.
class RunningStats {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return count_; }
  [[nodiscard]] double mean() const { return count_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return count_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return count_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const { return sum_; }

  void merge(const RunningStats& other);

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Retains every sample; exact quantiles by sorting on demand.
class SampleSet {
 public:
  void add(double x) { samples_.push_back(x); sorted_ = false; }
  void add(Duration d) { add(d.millis()); }

  [[nodiscard]] std::size_t count() const { return samples_.size(); }
  [[nodiscard]] bool empty() const { return samples_.empty(); }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  /// Quantile q in [0,1] over the sorted samples, linearly interpolated at
  /// rank position q·(n−1) (the "type 7" / numpy default estimator).  At
  /// positions that land exactly on a sample index — q = k/(n−1) — the
  /// estimate is exactly that sample, with no interpolation error; q=0.5
  /// is the median, q=0 the min, q=1 the max.
  [[nodiscard]] double quantile(double q) const;

  void clear() { samples_.clear(); sorted_ = false; }

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
  void ensure_sorted() const;
};

/// Fixed-width histogram over [lo, hi).
///
/// Bucket boundary semantics: with width w = (hi−lo)/buckets, bucket i
/// covers the half-open range [lo + i·w, lo + (i+1)·w) — the lower edge is
/// *inclusive*, the upper edge *exclusive* (a sample exactly on an interior
/// edge lands in the higher bucket).  Out-of-range samples clamp to the
/// edge buckets: x < lo counts in bucket 0, x ≥ hi in the last bucket, so
/// the edge buckets additionally absorb everything beyond their outer
/// boundary.  (Bucket selection is floor((x−lo)/w), so a sample an ulp
/// below an edge stays in the lower bucket.)
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x);
  [[nodiscard]] std::size_t bucket_count() const { return counts_.size(); }
  [[nodiscard]] std::uint64_t bucket(std::size_t i) const { return counts_.at(i); }
  [[nodiscard]] std::uint64_t total() const { return total_; }
  [[nodiscard]] double bucket_lo(std::size_t i) const;
  /// Quantile estimate from bucket counts: the q·total()-th sample is
  /// located by cumulative count and interpolated uniformly within its
  /// bucket.  When q·total() falls exactly on a cumulative bucket
  /// boundary, the estimate is exactly that bucket edge (lo + i·w) —
  /// the anchor the property tests pin.  Returns lo for an empty
  /// histogram.  Note that clamped out-of-range samples are attributed
  /// to the edge buckets' ranges.
  [[nodiscard]] double quantile(double q) const;
  [[nodiscard]] std::string render(std::size_t width = 40) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

/// Records half-open time intervals [begin, end) during which a monitored
/// predicate held (e.g. "backup out of window"), and summarises their
/// durations.  Tolerates a still-open interval at the end of a run.
class IntervalRecorder {
 public:
  /// Mark the predicate becoming true at t.  No-op if already open.
  void open(TimePoint t);
  /// Mark the predicate becoming false at t.  No-op if not open.
  void close(TimePoint t);
  /// Close any open interval at end-of-run time t.
  void finish(TimePoint t);

  [[nodiscard]] bool is_open() const { return open_; }
  [[nodiscard]] std::size_t interval_count() const { return durations_.count(); }
  [[nodiscard]] Duration total() const { return total_; }
  [[nodiscard]] double mean_millis() const { return durations_.mean(); }
  [[nodiscard]] double max_millis() const { return durations_.max(); }
  [[nodiscard]] const SampleSet& durations() const { return durations_; }

 private:
  bool open_ = false;
  TimePoint open_at_{};
  Duration total_{};
  SampleSet durations_;
};

}  // namespace rtpb
