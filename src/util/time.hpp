// Strong virtual-time types used throughout the simulator and the RTPB
// protocol stack.  All simulated time is an integral count of nanoseconds;
// wrapping it in distinct Duration / TimePoint types keeps "a point on the
// timeline" and "a span of time" from being mixed up at compile time.
#pragma once

#include <compare>
#include <cstdint>
#include <limits>
#include <ostream>
#include <string>

namespace rtpb {

/// A span of virtual time (signed; may be negative in intermediate math).
class Duration {
 public:
  constexpr Duration() = default;
  constexpr explicit Duration(std::int64_t nanos) : nanos_(nanos) {}

  [[nodiscard]] constexpr std::int64_t nanos() const { return nanos_; }
  [[nodiscard]] constexpr double micros() const { return static_cast<double>(nanos_) / 1e3; }
  [[nodiscard]] constexpr double millis() const { return static_cast<double>(nanos_) / 1e6; }
  [[nodiscard]] constexpr double seconds() const { return static_cast<double>(nanos_) / 1e9; }

  constexpr auto operator<=>(const Duration&) const = default;

  constexpr Duration operator+(Duration o) const { return Duration{nanos_ + o.nanos_}; }
  constexpr Duration operator-(Duration o) const { return Duration{nanos_ - o.nanos_}; }
  constexpr Duration operator-() const { return Duration{-nanos_}; }
  constexpr Duration operator*(std::int64_t k) const { return Duration{nanos_ * k}; }
  constexpr Duration operator/(std::int64_t k) const { return Duration{nanos_ / k}; }
  constexpr Duration& operator+=(Duration o) { nanos_ += o.nanos_; return *this; }
  constexpr Duration& operator-=(Duration o) { nanos_ -= o.nanos_; return *this; }

  /// Scale by a real factor, rounding to the nearest nanosecond.
  [[nodiscard]] constexpr Duration scaled(double f) const {
    return Duration{static_cast<std::int64_t>(static_cast<double>(nanos_) * f + (nanos_ >= 0 ? 0.5 : -0.5))};
  }

  /// Ratio of two durations as a real number (denominator must be nonzero).
  [[nodiscard]] constexpr double ratio(Duration denom) const {
    return static_cast<double>(nanos_) / static_cast<double>(denom.nanos_);
  }

  [[nodiscard]] constexpr Duration abs() const { return nanos_ < 0 ? Duration{-nanos_} : *this; }

  [[nodiscard]] static constexpr Duration zero() { return Duration{0}; }
  [[nodiscard]] static constexpr Duration max() { return Duration{std::numeric_limits<std::int64_t>::max()}; }

  [[nodiscard]] std::string to_string() const;

 private:
  std::int64_t nanos_ = 0;
};

constexpr Duration nanos(std::int64_t n) { return Duration{n}; }
constexpr Duration micros(std::int64_t u) { return Duration{u * 1'000}; }
constexpr Duration millis(std::int64_t m) { return Duration{m * 1'000'000}; }
constexpr Duration seconds(std::int64_t s) { return Duration{s * 1'000'000'000}; }
/// Fractional milliseconds, rounded to the nearest nanosecond.
constexpr Duration millis_f(double m) {
  return Duration{static_cast<std::int64_t>(m * 1e6 + (m >= 0 ? 0.5 : -0.5))};
}

/// An instant on the virtual timeline (nanoseconds since simulation start).
class TimePoint {
 public:
  constexpr TimePoint() = default;
  constexpr explicit TimePoint(std::int64_t nanos) : nanos_(nanos) {}

  [[nodiscard]] constexpr std::int64_t nanos() const { return nanos_; }
  [[nodiscard]] constexpr double millis() const { return static_cast<double>(nanos_) / 1e6; }
  [[nodiscard]] constexpr double seconds() const { return static_cast<double>(nanos_) / 1e9; }

  constexpr auto operator<=>(const TimePoint&) const = default;

  constexpr TimePoint operator+(Duration d) const { return TimePoint{nanos_ + d.nanos()}; }
  constexpr TimePoint operator-(Duration d) const { return TimePoint{nanos_ - d.nanos()}; }
  constexpr Duration operator-(TimePoint o) const { return Duration{nanos_ - o.nanos_}; }
  constexpr TimePoint& operator+=(Duration d) { nanos_ += d.nanos(); return *this; }

  [[nodiscard]] static constexpr TimePoint zero() { return TimePoint{0}; }
  [[nodiscard]] static constexpr TimePoint max() { return TimePoint{std::numeric_limits<std::int64_t>::max()}; }

  [[nodiscard]] std::string to_string() const;

 private:
  std::int64_t nanos_ = 0;
};

std::ostream& operator<<(std::ostream& os, Duration d);
std::ostream& operator<<(std::ostream& os, TimePoint t);

}  // namespace rtpb
