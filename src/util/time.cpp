#include "util/time.hpp"

#include <cinttypes>
#include <cstdio>

namespace rtpb {

namespace {
std::string format_nanos(std::int64_t n) {
  char buf[64];
  const double ms = static_cast<double>(n) / 1e6;
  std::snprintf(buf, sizeof buf, "%.3fms", ms);
  return buf;
}
}  // namespace

std::string Duration::to_string() const { return format_nanos(nanos_); }
std::string TimePoint::to_string() const { return format_nanos(nanos_); }

std::ostream& operator<<(std::ostream& os, Duration d) { return os << d.to_string(); }
std::ostream& operator<<(std::ostream& os, TimePoint t) { return os << t.to_string(); }

}  // namespace rtpb
