// Minimal key = value configuration parser for experiment definitions.
//
// Grammar: one `key = value` pair per line; `#` starts a comment; blank
// lines ignored.  Durations accept ns/us/ms/s suffixes ("10ms", "2s").
// Unknown keys are tracked so drivers can flag typos.
#pragma once

#include <map>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "util/time.hpp"

namespace rtpb {

class Config {
 public:
  Config() = default;

  /// Parse from text.  Malformed lines are recorded in errors().
  static Config parse(std::string_view text);
  /// Parse from a file; nullopt if the file cannot be read.
  static std::optional<Config> load(const std::string& path);

  [[nodiscard]] bool has(const std::string& key) const { return values_.contains(key); }

  [[nodiscard]] std::string get_string(const std::string& key, std::string fallback) const;
  [[nodiscard]] std::int64_t get_int(const std::string& key, std::int64_t fallback) const;
  [[nodiscard]] double get_double(const std::string& key, double fallback) const;
  [[nodiscard]] bool get_bool(const std::string& key, bool fallback) const;
  /// Durations: "250ns", "10us", "5ms", "2s", or bare numbers = ms.
  [[nodiscard]] Duration get_duration(const std::string& key, Duration fallback) const;

  [[nodiscard]] const std::map<std::string, std::string>& values() const { return values_; }
  [[nodiscard]] const std::vector<std::string>& errors() const { return errors_; }

  /// Keys present in the config that were never read through a getter —
  /// almost always a typo in an experiment file.
  [[nodiscard]] std::vector<std::string> unused_keys() const;

  /// Parse a duration literal ("5ms"); nullopt on failure.
  [[nodiscard]] static std::optional<Duration> parse_duration(std::string_view text);

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> errors_;
  mutable std::set<std::string> touched_;
};

}  // namespace rtpb
