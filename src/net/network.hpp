// Point-to-point link fabric with the failure model the paper assumes
// (§4.1): a known upper bound ℓ on delay, message loss (Bernoulli, i.e.
// the "performance failures" of an overloaded LAN), no partitions — a
// down node simply stops receiving.
//
// Delay model per packet: transmission (wire_size / bandwidth) +
// propagation (base + uniform jitter), FIFO-preserved per direction.
// With jitter j, the delay bound to feed admission control is
// ℓ = tx(max frame) + base + j.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <utility>

#include "net/packet.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace rtpb::net {

/// Chaos-injection knobs beyond plain Bernoulli loss (all off by default).
/// These deliberately break the link assumptions admission control relies
/// on (bounded delay, FIFO order), so experiments that enable them must
/// declare the interval as a fault epoch when judging consistency.
struct LinkFaults {
  double duplicate_probability = 0.0;   ///< deliver an extra copy with fresh delay
  double reorder_probability = 0.0;     ///< exempt a frame from FIFO, delay it extra
  Duration reorder_extra = millis(2);   ///< max extra delay for a reordered frame
  double corrupt_probability = 0.0;     ///< flip one random payload bit, still deliver
  /// First payload bytes spared by corruption (0 = corrupt anywhere).  Tests
  /// that assert on transport checksum detection aim past the lower-layer
  /// headers so every flip lands in the checksummed datagram body.
  std::size_t corrupt_skip = 0;
  double burst_loss_probability = 0.0;  ///< per-frame chance to open a drop burst
  std::uint32_t burst_length = 4;       ///< consecutive frames killed per burst
};

struct LinkParams {
  Duration propagation = millis(1);     ///< fixed one-way latency component
  Duration jitter = Duration::zero();   ///< uniform extra in [0, jitter)
  double loss_probability = 0.0;        ///< independent per-packet drop
  double bandwidth_bps = 10e6;          ///< 10 Mb/s LAN by default; <=0 → infinite
  std::size_t mtu = 1500;               ///< max frame payload; 0 → unlimited
  LinkFaults faults;                    ///< chaos knobs (duplication/reorder/…)
  /// Upper bound ℓ on one-way delay for a frame of `frame_size` bytes
  /// (assuming the fault knobs are quiet).
  [[nodiscard]] Duration delay_bound(std::size_t frame_size) const;
};

struct LinkStats {
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;
  std::uint64_t dropped = 0;
  std::uint64_t mtu_drops = 0;      ///< frames exceeding the link MTU
  std::uint64_t burst_dropped = 0;  ///< frames killed inside a loss burst
  std::uint64_t duplicated = 0;     ///< frames delivered twice
  std::uint64_t reordered = 0;      ///< frames exempted from FIFO ordering
  std::uint64_t corrupted = 0;      ///< frames delivered with a flipped bit
  SampleSet delays_ms;
};

class Network {
 public:
  explicit Network(sim::Simulator& sim);

  [[nodiscard]] sim::Simulator& simulator() { return sim_; }

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  using DeliveryFn = std::function<void(const Packet&)>;

  /// Register a host.  `on_deliver` is invoked, in virtual time, for each
  /// packet that survives the link.
  NodeId add_node(DeliveryFn on_deliver);

  /// Create (or replace) the bidirectional link between two hosts.
  void connect(NodeId a, NodeId b, LinkParams params);

  /// Inject a packet.  Returns false if there is no link or the
  /// destination is down (callers treat both as silent loss — UDP).
  bool send(NodeId src, NodeId dst, Bytes payload);

  /// Crash / restore a node.  A down node receives nothing; packets to it
  /// count as dropped.
  void set_node_up(NodeId node, bool up);
  [[nodiscard]] bool node_up(NodeId node) const;

  /// Update loss probability mid-run (failure injection).
  void set_loss_probability(NodeId a, NodeId b, double p);

  /// Update bandwidth mid-run, both directions (overload injection:
  /// `throttle_bandwidth`).  <=0 → infinite, matching LinkParams.  Queued
  /// deliveries keep their already-computed times; only frames sent after
  /// the change see the new transmission delay.
  void set_bandwidth(NodeId a, NodeId b, double bps);

  /// Update base propagation delay mid-run, both directions (overload
  /// injection: `inflate_latency`).  FIFO per direction is preserved — a
  /// shrink cannot reorder behind the queued floor.
  void set_propagation(NodeId a, NodeId b, Duration propagation);

  /// Replace the chaos knobs of the link, both directions (failure
  /// injection).  Delay/bandwidth parameters are untouched.
  void set_faults(NodeId a, NodeId b, const LinkFaults& faults);
  /// Current chaos knobs of the a→b direction (for read-modify-write
  /// injection of a single knob).
  [[nodiscard]] const LinkFaults& faults(NodeId a, NodeId b) const;

  [[nodiscard]] const LinkStats& stats(NodeId a, NodeId b) const;
  [[nodiscard]] std::optional<LinkParams> link_params(NodeId a, NodeId b) const;

 private:
  struct DirectedLink {
    LinkParams params;
    LinkStats stats;
    TimePoint last_delivery{};        ///< FIFO floor for this direction
    std::uint32_t burst_remaining = 0;  ///< frames left to kill in an open burst
  };
  struct Node {
    DeliveryFn on_deliver;
    bool up = true;
  };

  using LinkKey = std::pair<NodeId, NodeId>;  // directed (src, dst)

  DirectedLink* find_link(NodeId src, NodeId dst);
  /// Hand `pkt` to the destination at virtual time `at` (if it is still up).
  void schedule_delivery(Packet pkt, TimePoint at);

  sim::Simulator& sim_;
  Rng rng_;
  std::map<NodeId, Node> nodes_;
  std::map<LinkKey, DirectedLink> links_;
  NodeId next_node_ = 1;
  std::uint64_t next_seq_ = 1;
};

}  // namespace rtpb::net
