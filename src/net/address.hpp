// Addressing for the simulated network: hosts are NodeIds, transport
// endpoints add a port (UDPLITE-level).
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <string>

namespace rtpb::net {

using NodeId = std::uint32_t;
inline constexpr NodeId kInvalidNode = 0xFFFFFFFF;

using Port = std::uint16_t;

struct Endpoint {
  NodeId node = kInvalidNode;
  Port port = 0;

  auto operator<=>(const Endpoint&) const = default;

  [[nodiscard]] std::string to_string() const {
    return "node" + std::to_string(node) + ":" + std::to_string(port);
  }
};

}  // namespace rtpb::net

template <>
struct std::hash<rtpb::net::Endpoint> {
  std::size_t operator()(const rtpb::net::Endpoint& e) const noexcept {
    return (static_cast<std::size_t>(e.node) << 16) ^ e.port;
  }
};
