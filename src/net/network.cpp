#include "net/network.hpp"

#include <algorithm>
#include <string>

#include "telemetry/telemetry.hpp"
#include "util/log.hpp"

namespace rtpb::net {

namespace {
std::string net_track(NodeId node) { return "node" + std::to_string(node) + "/net"; }
}  // namespace

Duration LinkParams::delay_bound(std::size_t frame_size) const {
  Duration tx = Duration::zero();
  if (bandwidth_bps > 0) {
    const double secs = static_cast<double>(frame_size) * 8.0 / bandwidth_bps;
    tx = Duration{static_cast<std::int64_t>(secs * 1e9 + 0.5)};
  }
  return tx + propagation + jitter;
}

Network::Network(sim::Simulator& sim) : sim_(sim), rng_(sim.rng().fork()) {}

NodeId Network::add_node(DeliveryFn on_deliver) {
  RTPB_EXPECTS(on_deliver != nullptr);
  const NodeId id = next_node_++;
  nodes_.emplace(id, Node{std::move(on_deliver), true});
  return id;
}

void Network::connect(NodeId a, NodeId b, LinkParams params) {
  RTPB_EXPECTS(nodes_.contains(a) && nodes_.contains(b));
  RTPB_EXPECTS(a != b);
  links_[{a, b}] = DirectedLink{params, {}, sim_.now()};
  links_[{b, a}] = DirectedLink{params, {}, sim_.now()};
}

Network::DirectedLink* Network::find_link(NodeId src, NodeId dst) {
  auto it = links_.find({src, dst});
  return it == links_.end() ? nullptr : &it->second;
}

bool Network::send(NodeId src, NodeId dst, Bytes payload) {
  DirectedLink* link = find_link(src, dst);
  if (link == nullptr) {
    RTPB_WARN("net", "send node%u->node%u: no link", src, dst);
    return false;
  }
  ++link->stats.sent;

  telemetry::Hub& hub = sim_.telemetry();
  const auto link_tag = [src, dst] {
    return "node" + std::to_string(src) + "->node" + std::to_string(dst);
  };
  const auto count_drop = [&hub](const char* reason) {
    hub.registry().counter("net.link.drops").add();
    hub.registry().counter(std::string("net.link.drops_") + reason).add();
  };
  if (hub.enabled()) hub.registry().counter("net.link.sends").add();

  if (link->params.mtu > 0 && payload.size() > link->params.mtu) {
    ++link->stats.mtu_drops;
    ++link->stats.dropped;
    RTPB_DEBUG("net", "frame of %zu bytes exceeds MTU %zu; dropped", payload.size(),
               link->params.mtu);
    if (hub.enabled()) {
      count_drop("mtu");
      hub.record(hub.current_span(), src, telemetry::EventKind::kInstant, net_track(src),
                 "net-drop", link_tag() + " mtu");
    }
    return true;  // like UDP over a real link: silently gone
  }

  Packet pkt;
  pkt.src = src;
  pkt.dst = dst;
  pkt.payload = std::move(payload);
  pkt.seq = next_seq_++;
  pkt.span = hub.current_span();

  if (hub.enabled()) {
    hub.record(pkt.span, src, telemetry::EventKind::kInstant, net_track(src), "net-enqueue",
               link_tag() + " " + std::to_string(pkt.wire_size()) + "B");
  }

  const LinkFaults& faults = link->params.faults;

  // Every frame-fate decision routes through the simulator's choice seam:
  // with no policy installed, decide_fault() falls through to the same
  // bernoulli() call on the same RNG stream as before, so seeded chaos
  // digests are unchanged.  An explorer policy sees each frame on each
  // directed link as a potential branch point instead.
  const auto decide = [this, src, dst](sim::ChoiceKind kind, double p) {
    return sim_.decide_fault(sim::ChoiceContext{kind, p, src, dst, nullptr}, rng_);
  };

  // Burst loss: an open burst swallows frames until it is spent; a fresh
  // burst may open on any frame.  Models correlated loss (collision storms,
  // a switch buffer overrun) rather than independent Bernoulli drops.
  bool burst_kill = false;
  if (link->burst_remaining > 0) {
    --link->burst_remaining;
    burst_kill = true;
  } else if (faults.burst_loss_probability > 0.0 &&
             decide(sim::ChoiceKind::kFrameBurst, faults.burst_loss_probability)) {
    link->burst_remaining = faults.burst_length > 0 ? faults.burst_length - 1 : 0;
    burst_kill = true;
  }
  if (burst_kill) {
    ++link->stats.dropped;
    ++link->stats.burst_dropped;
    if (sim_.trace().enabled()) {
      sim_.trace().record(sim_.now(), sim::TraceCategory::kNet, "frame-drop",
                          link_tag() + " burst");
    }
    if (hub.enabled()) {
      count_drop("burst");
      hub.record(pkt.span, src, telemetry::EventKind::kInstant, net_track(src), "net-drop",
                 link_tag() + " burst");
    }
    return true;
  }

  if (decide(sim::ChoiceKind::kFrameLoss, link->params.loss_probability)) {
    ++link->stats.dropped;
    RTPB_TRACE("net", "drop pkt %llu node%u->node%u (loss)",
               static_cast<unsigned long long>(pkt.seq), src, dst);
    if (sim_.trace().enabled()) {
      sim_.trace().record(sim_.now(), sim::TraceCategory::kNet, "frame-drop", link_tag());
    }
    if (hub.enabled()) {
      count_drop("loss");
      hub.record(pkt.span, src, telemetry::EventKind::kInstant, net_track(src), "net-drop",
                 link_tag() + " loss");
    }
    return true;  // sender cannot tell — fire and forget
  }

  // Corruption: flip one random bit and deliver anyway — detecting it is
  // the transport checksum's job.
  if (faults.corrupt_probability > 0.0 && !pkt.payload.empty() &&
      decide(sim::ChoiceKind::kFrameCorrupt, faults.corrupt_probability)) {
    const std::size_t skip = std::min(faults.corrupt_skip, pkt.payload.size() - 1);
    const auto idx = static_cast<std::size_t>(
        rng_.uniform(static_cast<std::int64_t>(skip),
                     static_cast<std::int64_t>(pkt.payload.size() - 1)));
    pkt.payload[idx] ^= static_cast<std::uint8_t>(1u << rng_.uniform(0, 7));
    ++link->stats.corrupted;
    if (sim_.trace().enabled()) {
      sim_.trace().record(sim_.now(), sim::TraceCategory::kNet, "frame-corrupt",
                          link_tag() + " byte " + std::to_string(idx));
    }
    if (hub.enabled()) {
      hub.registry().counter("net.link.corrupted").add();
      hub.record(pkt.span, src, telemetry::EventKind::kInstant, net_track(src), "net-corrupt",
                 link_tag() + " byte " + std::to_string(idx));
    }
  }

  if (sim_.trace().enabled()) {
    sim_.trace().record(sim_.now(), sim::TraceCategory::kNet, "frame-send",
                        link_tag() + " " + std::to_string(pkt.wire_size()) + "B");
  }

  Duration delay = Duration::zero();
  if (link->params.bandwidth_bps > 0) {
    const double secs = static_cast<double>(pkt.wire_size()) * 8.0 / link->params.bandwidth_bps;
    delay += Duration{static_cast<std::int64_t>(secs * 1e9 + 0.5)};
  }
  delay += link->params.propagation;
  if (link->params.jitter > Duration::zero()) {
    delay += Duration{rng_.uniform(0, link->params.jitter.nanos() - 1)};
  }

  TimePoint deliver_at = sim_.now() + delay;
  const bool reordered = faults.reorder_probability > 0.0 &&
                         decide(sim::ChoiceKind::kFrameReorder, faults.reorder_probability);
  if (reordered) {
    // Exempt the frame from the FIFO floor and hold it back a little, so
    // frames sent after it can (and usually do) overtake it.
    if (faults.reorder_extra > Duration::zero()) {
      deliver_at += Duration{rng_.uniform(0, faults.reorder_extra.nanos())};
    }
    ++link->stats.reordered;
    if (sim_.trace().enabled()) {
      sim_.trace().record(sim_.now(), sim::TraceCategory::kNet, "frame-reorder", link_tag());
    }
    if (hub.enabled()) hub.registry().counter("net.link.reordered").add();
  } else {
    // Preserve FIFO per direction.
    deliver_at = std::max(deliver_at, link->last_delivery);
    link->last_delivery = deliver_at;
  }
  link->stats.delays_ms.add((deliver_at - sim_.now()).millis());
  if (hub.enabled()) {
    hub.registry().histogram("net.link.delay_ms").record(deliver_at - sim_.now());
  }

  if (faults.duplicate_probability > 0.0 &&
      decide(sim::ChoiceKind::kFrameDuplicate, faults.duplicate_probability)) {
    Duration dup_delay = link->params.propagation;
    if (link->params.jitter > Duration::zero()) {
      dup_delay += Duration{rng_.uniform(0, link->params.jitter.nanos() - 1)};
    }
    ++link->stats.duplicated;
    if (sim_.trace().enabled()) {
      sim_.trace().record(sim_.now(), sim::TraceCategory::kNet, "frame-dup", link_tag());
    }
    if (hub.enabled()) hub.registry().counter("net.link.duplicated").add();
    schedule_delivery(pkt, std::max(deliver_at, sim_.now() + delay + dup_delay));
  }

  schedule_delivery(std::move(pkt), deliver_at);
  return true;
}

void Network::schedule_delivery(Packet pkt, TimePoint at) {
  const sim::EventTag tag{sim::kTagNetDelivery, pkt.dst, pkt.src};
  sim_.schedule_at(at, tag, [this, pkt = std::move(pkt)]() mutable {
    telemetry::Hub& hub = sim_.telemetry();
    auto node_it = nodes_.find(pkt.dst);
    if (node_it == nodes_.end() || !node_it->second.up) {
      if (DirectedLink* l = find_link(pkt.src, pkt.dst)) ++l->stats.dropped;
      if (hub.enabled()) {
        hub.registry().counter("net.link.drops").add();
        hub.registry().counter("net.link.drops_node_down").add();
        hub.record(pkt.span, pkt.dst, telemetry::EventKind::kInstant, net_track(pkt.dst),
                   "net-drop", "node" + std::to_string(pkt.dst) + " down");
      }
      return;
    }
    if (DirectedLink* l = find_link(pkt.src, pkt.dst)) ++l->stats.delivered;
    if (hub.enabled()) {
      hub.registry().counter("net.link.delivers").add();
      hub.record(pkt.span, pkt.dst, telemetry::EventKind::kInstant, net_track(pkt.dst),
                 "net-deliver",
                 "node" + std::to_string(pkt.src) + "->node" + std::to_string(pkt.dst));
    }
    // Propagate the frame's causal span to everything the delivery triggers
    // synchronously: demux up the x-kernel stack and the backup apply path.
    telemetry::ScopedSpan span_scope(hub, pkt.span);
    node_it->second.on_deliver(pkt);
  });
}

void Network::set_node_up(NodeId node, bool up) {
  auto it = nodes_.find(node);
  RTPB_EXPECTS(it != nodes_.end());
  it->second.up = up;
}

bool Network::node_up(NodeId node) const {
  auto it = nodes_.find(node);
  RTPB_EXPECTS(it != nodes_.end());
  return it->second.up;
}

void Network::set_loss_probability(NodeId a, NodeId b, double p) {
  RTPB_EXPECTS(p >= 0.0 && p <= 1.0);
  if (DirectedLink* l = find_link(a, b)) l->params.loss_probability = p;
  if (DirectedLink* l = find_link(b, a)) l->params.loss_probability = p;
}

void Network::set_bandwidth(NodeId a, NodeId b, double bps) {
  if (DirectedLink* l = find_link(a, b)) l->params.bandwidth_bps = bps;
  if (DirectedLink* l = find_link(b, a)) l->params.bandwidth_bps = bps;
}

void Network::set_propagation(NodeId a, NodeId b, Duration propagation) {
  RTPB_EXPECTS(propagation >= Duration::zero());
  if (DirectedLink* l = find_link(a, b)) l->params.propagation = propagation;
  if (DirectedLink* l = find_link(b, a)) l->params.propagation = propagation;
}

void Network::set_faults(NodeId a, NodeId b, const LinkFaults& faults) {
  RTPB_EXPECTS(faults.duplicate_probability >= 0.0 && faults.duplicate_probability <= 1.0);
  RTPB_EXPECTS(faults.reorder_probability >= 0.0 && faults.reorder_probability <= 1.0);
  RTPB_EXPECTS(faults.corrupt_probability >= 0.0 && faults.corrupt_probability <= 1.0);
  RTPB_EXPECTS(faults.burst_loss_probability >= 0.0 && faults.burst_loss_probability <= 1.0);
  RTPB_EXPECTS(faults.reorder_extra >= Duration::zero());
  for (DirectedLink* l : {find_link(a, b), find_link(b, a)}) {
    if (l == nullptr) continue;
    l->params.faults = faults;
    // A dead burst knob must not keep killing frames.
    if (faults.burst_loss_probability <= 0.0) l->burst_remaining = 0;
  }
}

const LinkFaults& Network::faults(NodeId a, NodeId b) const {
  auto it = links_.find({a, b});
  RTPB_EXPECTS(it != links_.end());
  return it->second.params.faults;
}

const LinkStats& Network::stats(NodeId a, NodeId b) const {
  auto it = links_.find({a, b});
  RTPB_EXPECTS(it != links_.end());
  return it->second.stats;
}

std::optional<LinkParams> Network::link_params(NodeId a, NodeId b) const {
  auto it = links_.find({a, b});
  if (it == links_.end()) return std::nullopt;
  return it->second.params;
}

}  // namespace rtpb::net
