// A frame in flight on the simulated network.  The payload is an opaque
// byte string assembled by the x-kernel protocol stack (link header and
// up); wire_size additionally accounts for framing overhead so bandwidth
// modelling sees realistic sizes.
#pragma once

#include <cstdint>

#include "net/address.hpp"
#include "util/bytebuffer.hpp"

namespace rtpb::net {

struct Packet {
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  Bytes payload;
  std::uint64_t seq = 0;   ///< network-assigned, for tracing
  std::uint64_t span = 0;  ///< causal telemetry span (not on the wire; 0 = none)

  [[nodiscard]] std::size_t wire_size() const { return payload.size() + kFramingOverhead; }
  static constexpr std::size_t kFramingOverhead = 18;  // Ethernet-ish header+FCS
};

}  // namespace rtpb::net
