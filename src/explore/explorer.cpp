#include "explore/explorer.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <ostream>
#include <set>
#include <utility>

#include "core/faults.hpp"
#include "core/service.hpp"
#include "util/log.hpp"

namespace rtpb::explore {

namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

void fnv_mix(std::uint64_t& h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xffu;
    h *= kFnvPrime;
  }
}

/// Service config for exploration: a fast failure detector (3 misses at
/// 20 ms pings ≈ 65 ms detection) keeps failover arcs short, so exhaustive
/// horizons stay in the low seconds.  Safe here because the drop budget
/// (≤2 frames) cannot fake ping_max_misses consecutive misses.
core::ServiceConfig service_config(const ExploreConfig& cfg) {
  core::ServiceConfig c;
  c.ping_period = millis(20);
  c.ping_max_misses = cfg.ping_max_misses;
  c.variance_aware_admission = true;
  c.epoch_fencing = cfg.epoch_fencing;
  return c;
}

/// Fixed workload: client periods on the 20 ms grid, windows (120 ms) wide
/// enough that losing drop_budget frames can never cause an out-of-model
/// staleness violation — any violation the oracles report is a protocol
/// bug, not a scenario artifact.
std::vector<core::ObjectSpec> workload(const ExploreConfig& cfg) {
  std::vector<core::ObjectSpec> specs;
  for (std::size_t i = 0; i < cfg.objects; ++i) {
    core::ObjectSpec s;
    s.id = static_cast<core::ObjectId>(i + 1);
    s.name = "explored-" + std::to_string(i + 1);
    s.size_bytes = 64;
    s.client_period = millis(20);
    s.client_exec = micros(200);
    s.update_exec = micros(500);
    s.delta_primary = millis(30);
    s.delta_backup = millis(150);
    specs.push_back(std::move(s));
  }
  return specs;
}

/// Is "fire tied event j before events 0..j-1" an ordering the model
/// explores?  Only frame deliveries are schedulable nondeterminism: local
/// timers fire in deterministic scheduling (FIFO) order — that order is
/// part of the simulated host, not a race — and observers never matter.
/// Among deliveries, two frames on the same directed link must keep FIFO
/// (part of the network model), while the real race is two senders'
/// frames reaching one receiver in the same instant.  With `sleep_sets`
/// on, deliveries to *different* receivers are also skipped: they commute
/// (the sleep-set reduction, sound and reported).
bool order_alternative_matters(const std::vector<sim::EventTag>& tags, std::size_t j,
                               bool sleep_sets) {
  if (tags[j].kind != sim::kTagNetDelivery) return false;
  bool dependent = false;
  for (std::size_t i = 0; i < j; ++i) {
    if (tags[i].kind != sim::kTagNetDelivery) continue;
    if (tags[i].node == tags[j].node && tags[i].peer == tags[j].peer) {
      return false;  // would invert same-link frames: FIFO violation, out of model
    }
    if (!sleep_sets || tags[i].node == tags[j].node) dependent = true;
  }
  return dependent;
}

/// Identity of a choice point for the expansion-dedup set: the canonical
/// state it was taken in, plus what was being decided.
std::uint64_t expansion_key(std::uint64_t state_hash, const Choice& c) {
  std::uint64_t h = state_hash;
  fnv_mix(h, static_cast<std::uint64_t>(c.kind));
  fnv_mix(h, c.options);
  fnv_mix(h, c.a);
  fnv_mix(h, c.b);
  fnv_mix(h, c.frame);
  for (char ch : c.label) fnv_mix(h, static_cast<unsigned char>(ch));
  return h;
}

/// The per-trajectory strategy: replays a decision prefix, takes defaults
/// beyond it, and records every choice point it encounters.
class TrajectoryPolicy final : public sim::ChoicePolicy {
 public:
  TrajectoryPolicy(const ExploreConfig& cfg, core::RtpbService& service,
                   chaos::OracleMonitor& monitor, std::vector<core::ObjectId> admitted,
                   const std::vector<std::uint16_t>& trace)
      : cfg_(cfg),
        service_(service),
        monitor_(monitor),
        admitted_(std::move(admitted)),
        trace_(trace) {}

  bool decide(const sim::ChoiceContext& ctx, Rng& rng) override {
    switch (ctx.kind) {
      case sim::ChoiceKind::kFrameLoss: {
        // A partitioned link (loss 1.0) is a forced drop, not a branch; a
        // zero-loss link is a *potential* drop, budget and window allowing.
        if (ctx.probability >= 1.0) return true;
        if (ctx.probability > 0.0) return rng.bernoulli(ctx.probability);
        const std::uint64_t ordinal = frame_ordinals_[{ctx.a, ctx.b}]++;
        const TimePoint now = service_.simulator().now();
        const ExploreBounds& b = cfg_.bounds;
        if (bound_hit_ || drops_taken_ >= b.drop_budget) return false;
        if (b.drop_until <= b.drop_from || now < b.drop_from || now > b.drop_until) {
          return false;
        }
        Choice c;
        c.kind = ctx.kind;
        c.a = ctx.a;
        c.b = ctx.b;
        c.frame = ordinal;
        c.at = now;
        const bool drop = choose(std::move(c)) != 0;
        if (drop) {
          ++drops_taken_;
          actions_.push_back({"drop-frame", now, ctx.a, ctx.b, ordinal});
        }
        return drop;
      }
      case sim::ChoiceKind::kFault: {
        const TimePoint now = service_.simulator().now();
        const std::string label = ctx.label == nullptr ? "" : ctx.label;
        if (label == "add-standby") {
          // Recovery, not a fault: fires deterministically iff a crash
          // fired earlier (see ExploreConfig's candidate-instant doc).
          if (!crash_fired_) return false;
          actions_.push_back({label, now, 0, 0, 0});
          monitor_.declare_epoch({now, now + cfg_.failover_grace, chaos::FaultKind::kAddStandby});
          return true;
        }
        if (bound_hit_ || !fault_eligible(label)) return false;
        Choice c;
        c.kind = ctx.kind;
        c.label = label;
        c.at = now;
        const bool fire = choose(std::move(c)) != 0;
        if (fire) {
          ++faults_taken_;
          actions_.push_back({label, now, 0, 0, 0});
          declare_fault_epoch(label, now);
          maybe_tear_wal(label);
        }
        return fire;
      }
      default:
        // Burst/corrupt/reorder/duplicate knobs are zero in explorer
        // scenarios; fall through to the RNG semantics regardless.
        return rng.bernoulli(ctx.probability);
    }
  }

  std::size_t pick_event(const std::vector<sim::EventTag>& tags) override {
    if (tags.size() < 2 || bound_hit_) return 0;
    bool any = false;
    for (std::size_t j = 1; j < tags.size(); ++j) {
      if (order_alternative_matters(tags, j, cfg_.sleep_sets)) {
        any = true;
        break;
      }
    }
    if (!any) return 0;  // every alternative is fixed or commutes: no choice point
    Choice c;
    c.kind = sim::ChoiceKind::kEventOrder;
    c.options = static_cast<std::uint16_t>(std::min<std::size_t>(tags.size(), 0xffff));
    c.at = service_.simulator().now();
    c.tags = tags;
    return choose(std::move(c));
  }

  TrajectoryResult take_result() {
    TrajectoryResult r;
    r.final_hash = hash_state();
    r.choices = std::move(choices_);
    r.state_hashes = std::move(hashes_);
    r.actions = std::move(actions_);
    r.choice_bound_hit = bound_hit_;
    return r;
  }

 private:
  std::uint16_t choose(Choice c) {
    if (choices_.size() >= cfg_.bounds.max_choice_points) {
      bound_hit_ = true;
      return 0;
    }
    const std::size_t idx = choices_.size();
    std::uint16_t pick = idx < trace_.size() ? trace_[idx] : 0;
    if (pick >= c.options) pick = 0;
    c.chosen = pick;
    hashes_.push_back(hash_state());
    choices_.push_back(std::move(c));
    return pick;
  }

  bool fault_eligible(const std::string& name) const {
    if (faults_taken_ >= cfg_.bounds.fault_budget) return false;
    std::size_t live = 0;
    service_.for_each_replica([&live](const core::ReplicaServer& r) {
      if (!r.crashed()) ++live;
    });
    // Never offer crashing (or isolating) the last live replica: those
    // trajectories only prove the cluster dies when everyone dies.
    if (name == "crash-primary" || name == "crash-backup" || name == "partition-primary" ||
        name == "crash-restart-primary" || name == "crash-restart-backup") {
      return live >= 2;
    }
    return false;
  }

  /// Torn-write sabotage on a fired crash-restart candidate: the victim is
  /// about to crash (same fault action, no intervening sim time), so
  /// shearing its WAL tail now is equivalent to corrupting the disk while
  /// it is down.  The subsequent recovery replays a clean-but-short prefix
  /// and the durable-recovery oracle must notice the acked versions hole.
  void maybe_tear_wal(const std::string& label) {
    if (cfg_.torn_tail_bytes == 0) return;
    if (label != "crash-restart-primary" && label != "crash-restart-backup") return;
    store::SimStorageDevice* wal =
        service_.wal_device(label == "crash-restart-primary" ? 0 : 1);
    if (wal != nullptr) wal->tear_tail(cfg_.torn_tail_bytes);
  }

  void declare_fault_epoch(const std::string& label, TimePoint now) {
    if (label == "partition-primary") {
      // Matches the chaos schedule's split-brain arc: double grace, the
      // fencing-driven step-down takes a detection round longer.
      monitor_.declare_epoch({now, now + cfg_.failover_grace + cfg_.failover_grace,
                              chaos::FaultKind::kPartitionPrimary});
      return;
    }
    if (label == "crash-restart-primary" || label == "crash-restart-backup") {
      // Self-recovering: the replica restarts from its durable image after
      // restart_delay and resyncs, so the epoch runs outage + grace — and
      // crash_fired_ stays false, no add-standby recruit is owed.
      const chaos::FaultKind kind = label == "crash-restart-backup"
                                        ? chaos::FaultKind::kCrashRestartBackup
                                        : chaos::FaultKind::kCrashRestartPrimary;
      monitor_.declare_epoch({now, now + cfg_.restart_delay + cfg_.failover_grace, kind});
      return;
    }
    // A crash: the distance metric cannot recover until a standby has been
    // recruited and caught up, so the whole crash→recruit→catch-up arc is
    // one epoch (the exact shape the chaos schedule declares).  The
    // recovery rule guarantees the next add-standby candidate fires.
    crash_fired_ = true;
    TimePoint recovered = now;
    for (const Duration d : cfg_.add_standby_at) {
      const TimePoint at = TimePoint::zero() + d;
      if (at >= now && (recovered == now || at < recovered)) recovered = at;
    }
    const chaos::FaultKind kind = label == "crash-backup" ? chaos::FaultKind::kCrashBackup
                                                         : chaos::FaultKind::kCrashPrimary;
    monitor_.declare_epoch({now, recovered + cfg_.failover_grace, kind});
  }

  /// FNV-1a over the canonicalized protocol state: per replica (visit
  /// order is deterministic) role / crashed / epoch / pending transfers /
  /// per-object versions, plus virtual time and per-link in-flight frame
  /// counts.  Monotone counters are deliberately excluded — they would
  /// make every state unique and the pruning useless.
  std::uint64_t hash_state() {
    std::uint64_t h = kFnvOffset;
    std::vector<net::NodeId> nodes;
    service_.for_each_replica([&](const core::ReplicaServer& r) {
      nodes.push_back(r.node());
      fnv_mix(h, r.role() == core::Role::kPrimary ? 1 : 2);
      fnv_mix(h, r.crashed() ? 1 : 0);
      fnv_mix(h, r.epoch());
      fnv_mix(h, r.pending_transfer_count());
      for (const core::ObjectId id : admitted_) {
        const auto state = r.read(id);
        fnv_mix(h, id);
        fnv_mix(h, state ? state->version : 0);
      }
    });
    sim::Simulator& sim = service_.simulator();
    fnv_mix(h, static_cast<std::uint64_t>(sim.now().nanos()));
    fnv_mix(h, sim.pending_events());
    net::Network& net = service_.network();
    for (const net::NodeId a : nodes) {
      for (const net::NodeId b : nodes) {
        if (a == b || !net.link_params(a, b).has_value()) continue;
        const net::LinkStats& s = net.stats(a, b);
        const std::int64_t in_flight = static_cast<std::int64_t>(s.sent) -
                                       static_cast<std::int64_t>(s.delivered) -
                                       static_cast<std::int64_t>(s.dropped);
        fnv_mix(h, static_cast<std::uint64_t>(in_flight));
      }
    }
    return h;
  }

  const ExploreConfig& cfg_;
  core::RtpbService& service_;
  chaos::OracleMonitor& monitor_;
  std::vector<core::ObjectId> admitted_;
  const std::vector<std::uint16_t>& trace_;
  std::vector<Choice> choices_;
  std::vector<std::uint64_t> hashes_;
  std::vector<FaultAction> actions_;
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::uint64_t> frame_ordinals_;
  std::uint32_t faults_taken_ = 0;
  std::uint32_t drops_taken_ = 0;
  bool crash_fired_ = false;
  bool bound_hit_ = false;
};

}  // namespace

std::vector<std::uint16_t> TrajectoryResult::decisions() const {
  std::vector<std::uint16_t> out;
  out.reserve(choices.size());
  for (const Choice& c : choices) out.push_back(c.chosen);
  return out;
}

TrajectoryResult run_trajectory(const ExploreConfig& cfg,
                                const std::vector<std::uint16_t>& trace) {
  return run_trajectory(cfg, trace, ObserveOptions{});
}

TrajectoryResult run_trajectory(const ExploreConfig& cfg,
                                const std::vector<std::uint16_t>& trace,
                                const ObserveOptions& observe) {
  core::ServiceParams params;
  params.seed = cfg.service_seed;
  params.config = service_config(cfg);
  params.backup_count = cfg.backups;
  params.service_name = "explore-service";
  // Crash-restart candidates need a durable image to restart from; WAL
  // appends are synchronous and draw no randomness, so durable storage
  // never perturbs the explored choice tree by itself.
  params.durable =
      !cfg.crash_restart_primary_at.empty() || !cfg.crash_restart_backup_at.empty();
  core::RtpbService service(params);
  telemetry::Hub& hub = service.simulator().telemetry();
  if (observe.telemetry) {
    hub.enable();
    hub.slo().enable();
  }
  if (!observe.postmortem_path.empty()) {
    hub.flight_recorder().enable();
    hub.flight_recorder().set_dump_path(observe.postmortem_path);
  }
  service.start();

  std::vector<core::ObjectId> admitted;
  for (const core::ObjectSpec& spec : workload(cfg)) {
    if (service.register_object(spec).ok()) admitted.push_back(spec.id);
  }

  core::FaultPlan plan(service);
  for (const Duration d : cfg.crash_primary_at) plan.maybe_crash_primary(TimePoint::zero() + d);
  for (const Duration d : cfg.crash_backup_at) plan.maybe_crash_backup(TimePoint::zero() + d);
  for (const Duration d : cfg.add_standby_at) plan.maybe_add_standby(TimePoint::zero() + d);
  for (const Duration d : cfg.partition_at) plan.maybe_partition_primary(TimePoint::zero() + d);
  for (const Duration d : cfg.crash_restart_primary_at) {
    plan.maybe_crash_restart_primary(TimePoint::zero() + d, cfg.restart_delay);
  }
  for (const Duration d : cfg.crash_restart_backup_at) {
    plan.maybe_crash_restart_backup(TimePoint::zero() + d, cfg.restart_delay);
  }
  plan.arm();

  chaos::OracleMonitor monitor(service, admitted, {});
  monitor.start();

  TrajectoryPolicy policy(cfg, service, monitor, admitted, trace);
  service.simulator().set_choice_policy(&policy);
  service.run_for(cfg.bounds.horizon);
  service.simulator().set_choice_policy(nullptr);
  service.finish();

  telemetry::FlightRecorder& recorder = hub.flight_recorder();
  if (recorder.enabled() && !observe.postmortem_path.empty() && !recorder.dumped()) {
    recorder.trigger_dump("end-of-run", service.simulator().now());
  }
  if (observe.telemetry && !observe.metrics_json_path.empty()) {
    std::ofstream out(observe.metrics_json_path);
    if (out) out << hub.registry().to_json() << "\n";
  }

  TrajectoryResult result = policy.take_result();
  result.violations = monitor.violations();
  return result;
}

bool reproduces(const TrajectoryResult& result, const std::string& oracle) {
  for (const chaos::OracleViolation& v : result.violations) {
    if (v.oracle == oracle) return true;
  }
  return false;
}

TrajectoryResult replay(const Counterexample& ce) { return run_trajectory(ce.config, ce.trace); }

Counterexample minimize(const Counterexample& ce) {
  Counterexample best = ce;
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (std::size_t i = 0; i < best.trace.size(); ++i) {
      if (best.trace[i] == 0) continue;
      std::vector<std::uint16_t> candidate = best.trace;
      candidate[i] = 0;
      TrajectoryResult res = run_trajectory(best.config, candidate);
      if (!reproduces(res, best.oracle)) continue;
      best.trace = res.decisions();
      best.actions = res.actions;
      for (const chaos::OracleViolation& v : res.violations) {
        if (v.oracle == best.oracle) {
          best.detail = v.detail;
          break;
        }
      }
      progressed = true;
      break;
    }
  }
  while (!best.trace.empty() && best.trace.back() == 0) best.trace.pop_back();
  return best;
}

ExploreReport explore(const ExploreConfig& cfg, std::ostream* progress) {
  ExploreReport report;
  std::vector<std::vector<std::uint16_t>> stack;
  stack.emplace_back();
  std::set<std::uint64_t> states;
  std::set<std::pair<std::uint64_t, std::uint16_t>> expanded;

  while (!stack.empty()) {
    if (report.trajectories >= cfg.bounds.max_trajectories) {
      report.hit_trajectory_cap = true;
      break;
    }
    const std::vector<std::uint16_t> prefix = std::move(stack.back());
    stack.pop_back();

    TrajectoryResult res = run_trajectory(cfg, prefix);
    ++report.trajectories;
    report.choice_points += res.choices.size();
    if (res.choice_bound_hit) ++report.truncated;
    for (const std::uint64_t h : res.state_hashes) states.insert(h);
    states.insert(res.final_hash);

    if (!res.violations.empty()) {
      Counterexample ce;
      ce.config = cfg;
      ce.trace = res.decisions();
      ce.actions = res.actions;
      ce.oracle = res.violations.front().oracle;
      ce.detail = res.violations.front().detail;
      if (progress != nullptr) {
        *progress << "violation after " << report.trajectories << " trajectories: " << ce.oracle
                  << " — minimizing\n";
      }
      report.counterexamples.push_back(minimize(ce));
      break;
    }

    const std::vector<std::uint16_t> decisions = res.decisions();
    for (std::size_t i = prefix.size(); i < res.choices.size(); ++i) {
      const Choice& c = res.choices[i];
      const std::uint64_t key = expansion_key(res.state_hashes[i], c);
      for (std::uint16_t alt = 1; alt < c.options; ++alt) {
        if (c.kind == sim::ChoiceKind::kEventOrder &&
            !order_alternative_matters(c.tags, alt, cfg.sleep_sets)) {
          ++report.pruned_sleep;
          continue;
        }
        if (cfg.prune_visited && !expanded.insert({key, alt}).second) {
          ++report.pruned_visited;
          continue;
        }
        std::vector<std::uint16_t> next(decisions.begin(),
                                        decisions.begin() + static_cast<std::ptrdiff_t>(i));
        next.push_back(alt);
        stack.push_back(std::move(next));
      }
    }
    if (progress != nullptr && report.trajectories % 500 == 0) {
      *progress << "  " << report.trajectories << " trajectories, " << states.size()
                << " states, " << stack.size() << " pending prefixes\n";
    }
  }

  report.states_visited = states.size();
  return report;
}

std::string ExploreReport::summary() const {
  char line[256];
  std::snprintf(line, sizeof line,
                "%llu trajectories, %llu choice points, %llu states visited, "
                "pruned %llu visited / %llu commuting, %llu truncated%s, %zu counterexample(s)",
                static_cast<unsigned long long>(trajectories),
                static_cast<unsigned long long>(choice_points),
                static_cast<unsigned long long>(states_visited),
                static_cast<unsigned long long>(pruned_visited),
                static_cast<unsigned long long>(pruned_sleep),
                static_cast<unsigned long long>(truncated),
                hit_trajectory_cap ? " [TRAJECTORY CAP HIT]" : "", counterexamples.size());
  return line;
}

}  // namespace rtpb::explore
