// Counterexample serialization: a violation witness as a small text
// artifact that survives copy-paste.  `to_text` emits scenario + trace +
// the chosen fault actions; `parse_counterexample` round-trips everything
// a replay needs.  The embedded FaultPlan snippet is commented out ('#')
// so the parser skips it — it exists for the human who wants the bug as a
// plain PR-1 reproducer in a unit test.

#include <algorithm>
#include <sstream>

#include "explore/explorer.hpp"

namespace rtpb::explore {

namespace {

std::string one_line(const std::string& s) {
  std::string out = s;
  std::replace(out.begin(), out.end(), '\n', ' ');
  std::replace(out.begin(), out.end(), '\r', ' ');
  return out;
}

}  // namespace

std::string Counterexample::fault_plan() const {
  std::ostringstream os;
  os << "core::FaultPlan plan(service);\n";
  for (const FaultAction& a : actions) {
    if (a.label == "crash-primary") {
      os << "plan.crash_primary(TimePoint{" << a.at.nanos() << "});\n";
    } else if (a.label == "crash-backup") {
      os << "plan.crash_backup(TimePoint{" << a.at.nanos() << "});\n";
    } else if (a.label == "add-standby") {
      os << "plan.add_standby(TimePoint{" << a.at.nanos() << "});\n";
    } else if (a.label == "partition-primary") {
      os << "plan.partition_primary(TimePoint{" << a.at.nanos() << "});\n";
    } else if (a.label == "crash-restart-primary") {
      os << "plan.crash_restart_primary(TimePoint{" << a.at.nanos() << "}, TimePoint{"
         << (a.at + config.restart_delay).nanos() << "});\n";
    } else if (a.label == "crash-restart-backup") {
      os << "plan.crash_restart_backup(TimePoint{" << a.at.nanos() << "}, TimePoint{"
         << (a.at + config.restart_delay).nanos() << "});\n";
    } else if (a.label == "drop-frame") {
      os << "// drop frame #" << a.frame << " on link " << a.a << "->" << a.b << " at "
         << a.at.nanos() << " ns (replayed via the choice trace)\n";
    } else {
      os << "// unknown action '" << a.label << "' at " << a.at.nanos() << " ns\n";
    }
  }
  os << "plan.arm();\n";
  return os.str();
}

std::string Counterexample::to_text() const {
  std::ostringstream os;
  os << "# rtpb-explore counterexample v1\n";
  os << "oracle " << oracle << "\n";
  if (!detail.empty()) os << "detail " << one_line(detail) << "\n";
  os << "backups " << config.backups << "\n";
  os << "objects " << config.objects << "\n";
  os << "seed " << config.service_seed << "\n";
  os << "fencing " << (config.epoch_fencing ? 1 : 0) << "\n";
  os << "misses " << config.ping_max_misses << "\n";
  os << "grace-ns " << config.failover_grace.nanos() << "\n";
  os << "horizon-ns " << config.bounds.horizon.nanos() << "\n";
  os << "max-trajectories " << config.bounds.max_trajectories << "\n";
  os << "max-choices " << config.bounds.max_choice_points << "\n";
  os << "fault-budget " << config.bounds.fault_budget << "\n";
  os << "drop-budget " << config.bounds.drop_budget << "\n";
  os << "drop-from-ns " << config.bounds.drop_from.nanos() << "\n";
  os << "drop-until-ns " << config.bounds.drop_until.nanos() << "\n";
  os << "restart-delay-ns " << config.restart_delay.nanos() << "\n";
  os << "torn-bytes " << config.torn_tail_bytes << "\n";
  for (const Duration d : config.crash_primary_at) {
    os << "candidate crash-primary " << d.nanos() << "\n";
  }
  for (const Duration d : config.crash_backup_at) {
    os << "candidate crash-backup " << d.nanos() << "\n";
  }
  for (const Duration d : config.add_standby_at) {
    os << "candidate add-standby " << d.nanos() << "\n";
  }
  for (const Duration d : config.partition_at) {
    os << "candidate partition-primary " << d.nanos() << "\n";
  }
  for (const Duration d : config.crash_restart_primary_at) {
    os << "candidate crash-restart-primary " << d.nanos() << "\n";
  }
  for (const Duration d : config.crash_restart_backup_at) {
    os << "candidate crash-restart-backup " << d.nanos() << "\n";
  }
  os << "trace";
  for (const std::uint16_t t : trace) os << " " << t;
  os << "\n";
  for (const FaultAction& a : actions) {
    os << "action " << a.label << " " << a.a << " " << a.b << " " << a.frame << " "
       << a.at.nanos() << "\n";
  }
  os << "#\n# FaultPlan reproducer for the chosen actions:\n";
  std::istringstream plan(fault_plan());
  for (std::string line; std::getline(plan, line);) os << "#   " << line << "\n";
  return os.str();
}

std::optional<Counterexample> parse_counterexample(const std::string& text) {
  Counterexample ce;
  // A parsed config starts from hard zeroes, not the struct defaults: every
  // scenario knob must come from the artifact itself.
  ce.config.bounds.fault_budget = 0;
  ce.config.bounds.drop_budget = 0;
  bool versioned = false;
  bool have_oracle = false;
  std::istringstream is(text);
  for (std::string line; std::getline(is, line);) {
    if (line == "# rtpb-explore counterexample v1") {
      versioned = true;
      continue;
    }
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string key;
    ls >> key;
    if (key == "oracle") {
      ls >> ce.oracle;
      have_oracle = !ce.oracle.empty();
    } else if (key == "detail") {
      std::getline(ls, ce.detail);
      if (!ce.detail.empty() && ce.detail.front() == ' ') ce.detail.erase(0, 1);
    } else if (key == "backups") {
      ls >> ce.config.backups;
    } else if (key == "objects") {
      ls >> ce.config.objects;
    } else if (key == "seed") {
      ls >> ce.config.service_seed;
    } else if (key == "fencing") {
      int v = 1;
      ls >> v;
      ce.config.epoch_fencing = v != 0;
    } else if (key == "misses") {
      ls >> ce.config.ping_max_misses;
    } else if (key == "grace-ns") {
      std::int64_t ns = 0;
      ls >> ns;
      ce.config.failover_grace = Duration{ns};
    } else if (key == "horizon-ns") {
      std::int64_t ns = 0;
      ls >> ns;
      ce.config.bounds.horizon = Duration{ns};
    } else if (key == "max-trajectories") {
      ls >> ce.config.bounds.max_trajectories;
    } else if (key == "max-choices") {
      ls >> ce.config.bounds.max_choice_points;
    } else if (key == "fault-budget") {
      ls >> ce.config.bounds.fault_budget;
    } else if (key == "drop-budget") {
      ls >> ce.config.bounds.drop_budget;
    } else if (key == "drop-from-ns") {
      std::int64_t ns = 0;
      ls >> ns;
      ce.config.bounds.drop_from = TimePoint{ns};
    } else if (key == "drop-until-ns") {
      std::int64_t ns = 0;
      ls >> ns;
      ce.config.bounds.drop_until = TimePoint{ns};
    } else if (key == "restart-delay-ns") {
      std::int64_t ns = 0;
      ls >> ns;
      ce.config.restart_delay = Duration{ns};
    } else if (key == "torn-bytes") {
      ls >> ce.config.torn_tail_bytes;
    } else if (key == "candidate") {
      std::string label;
      std::int64_t ns = 0;
      ls >> label >> ns;
      const Duration d{ns};
      if (label == "crash-primary") {
        ce.config.crash_primary_at.push_back(d);
      } else if (label == "crash-backup") {
        ce.config.crash_backup_at.push_back(d);
      } else if (label == "add-standby") {
        ce.config.add_standby_at.push_back(d);
      } else if (label == "partition-primary") {
        ce.config.partition_at.push_back(d);
      } else if (label == "crash-restart-primary") {
        ce.config.crash_restart_primary_at.push_back(d);
      } else if (label == "crash-restart-backup") {
        ce.config.crash_restart_backup_at.push_back(d);
      } else {
        return std::nullopt;  // unknown candidate verb: cannot replay faithfully
      }
    } else if (key == "trace") {
      for (unsigned v = 0; ls >> v;) ce.trace.push_back(static_cast<std::uint16_t>(v));
    } else if (key == "action") {
      FaultAction a;
      std::int64_t ns = 0;
      ls >> a.label >> a.a >> a.b >> a.frame >> ns;
      a.at = TimePoint{ns};
      ce.actions.push_back(std::move(a));
    }
    // Unknown keys are skipped: forward compatibility over strictness.
  }
  if (!versioned || !have_oracle) return std::nullopt;
  return ce;
}

}  // namespace rtpb::explore
