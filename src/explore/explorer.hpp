// Bounded model checking for the failover/epoch protocol.
//
// The deterministic simulator makes the nondeterminism of a run explicit:
// which of several same-instant events fires first, which frames a link
// drops, and which scripted fault candidates (crash / recruit / partition)
// actually fire.  The explorer drives those decisions through the
// simulator's ChoicePoint seam (sim/choice.hpp) and enumerates the
// alternatives by stateless depth-first search: each trajectory is a fresh
// RtpbService run replaying a recorded decision prefix and taking defaults
// beyond it (CHESS-style trace replay).  Every trajectory is judged by the
// same OracleMonitor the chaos harness uses.
//
// Reductions (both on by default, both reported in the ExploreReport so
// nothing is silently capped):
//
//   sleep sets    only frame *deliveries* are schedulable nondeterminism —
//                 local timers fire in deterministic scheduler order (part
//                 of the simulated host, not a race) and two frames on one
//                 directed link keep FIFO (part of the network model).
//                 Among the remaining delivery orderings, those with
//                 different receivers commute and are skipped.
//   state hashing trajectories that reach a previously-expanded canonical
//                 state (FNV-1a over per-replica role / crashed / epoch /
//                 object versions / pending transfers, plus virtual time
//                 and per-link in-flight counts) do not re-expand their
//                 alternatives.  The hash does not capture in-flight frame
//                 *contents*, so this pruning is a documented heuristic:
//                 hash-equal states are treated as equivalent.  The seeded
//                 chaos sweep remains the probabilistic backstop.
//
// On a violation the explorer greedily minimizes the decision trace (every
// non-default choice is flipped back to default while the violation
// persists) and emits a Counterexample: a self-contained text artifact
// carrying the scenario, the chosen fault actions rendered as a FaultPlan
// reproducer (the PR-1 format), and the exact choice trace.  chaos_main
// --replay re-runs it and confirms the same oracle fires.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "chaos/oracles.hpp"
#include "sim/choice.hpp"

namespace rtpb::explore {

struct ExploreBounds {
  Duration horizon = millis(1500);           ///< virtual time per trajectory
  std::size_t max_trajectories = 20000;      ///< DFS size cap (reported if hit)
  std::size_t max_choice_points = 160;       ///< depth bound per trajectory
  std::uint32_t fault_budget = 2;            ///< fault candidates taken per trajectory
  std::uint32_t drop_budget = 1;             ///< frames dropped per trajectory
  /// Frames are droppable only inside [drop_from, drop_until] of virtual
  /// time; an empty window (until <= from) disables drop branching.
  TimePoint drop_from{};
  TimePoint drop_until{};
};

struct ExploreConfig {
  std::size_t backups = 1;    ///< 1 → the paper's 2-node pair
  std::size_t objects = 1;
  std::uint64_t service_seed = 1;
  bool epoch_fencing = true;  ///< false = the split-brain sabotage
  /// Failure-detector misses before declaring (the no-failover sabotage
  /// sets this absurdly high, exactly like the chaos mode).
  std::uint32_t ping_max_misses = 3;
  /// Oracle grace declared around a chosen fault candidate (partition
  /// candidates declare twice this, matching the chaos schedule's
  /// split-brain arc).
  Duration failover_grace = millis(700);
  /// Fault candidate instants.  Pick instants off the protocol's periodic
  /// grids (e.g. 251 ms against 20 ms pings) so candidates do not tie with
  /// unrelated timers.  crash/partition candidates are explored as binary
  /// choices; add_standby candidates are *recovery* actions, not faults —
  /// one fires deterministically when a crash fired earlier in the
  /// trajectory (the service has no autonomous re-recruitment, so a
  /// crash with no recruit ever is unrecoverable by construction: its
  /// stale distances would be scenario artifacts, not protocol bugs —
  /// exactly why the chaos generator always pairs a crash with a recruit).
  /// A crash's declared epoch therefore runs to the next recovery
  /// candidate + grace, the same arc the chaos schedule declares.
  std::vector<Duration> crash_primary_at;
  std::vector<Duration> crash_backup_at;
  std::vector<Duration> add_standby_at;
  std::vector<Duration> partition_at;
  /// Crash-restart candidates (durable replicas only — arming any of these
  /// switches the explored service to durable storage).  Unlike plain
  /// crashes these recover by *themselves* — the crashed replica restarts
  /// from WAL + checkpoint after `restart_delay` — so they neither consume
  /// an add-standby recovery candidate nor require one.
  std::vector<Duration> crash_restart_primary_at;
  std::vector<Duration> crash_restart_backup_at;
  Duration restart_delay = millis(400);
  /// Torn-write sabotage: when non-zero, a fired crash-restart candidate
  /// also shears this many bytes off the victim's WAL tail while it is
  /// down, so recovery silently loses acked updates — the durable-recovery
  /// oracle must catch it (sabotage canary, like the chaos harness's).
  std::size_t torn_tail_bytes = 0;
  ExploreBounds bounds;
  bool prune_visited = true;  ///< state-hash expansion pruning
  bool sleep_sets = true;     ///< commuting-delivery reduction
};

/// One recorded decision of a trajectory.
struct Choice {
  sim::ChoiceKind kind{};
  std::uint16_t options = 2;
  std::uint16_t chosen = 0;
  std::uint32_t a = 0;                ///< frame fates: directed link src
  std::uint32_t b = 0;                ///< frame fates: directed link dst
  std::uint64_t frame = 0;            ///< frame fates: per-link frame ordinal
  std::string label;                  ///< fault candidates: which one
  TimePoint at{};
  std::vector<sim::EventTag> tags;    ///< event-order ties: the candidates
};

/// A fault the trajectory actually took (for the FaultPlan rendering).
struct FaultAction {
  std::string label;                  ///< crash-primary / … / drop-frame
  TimePoint at{};
  std::uint32_t a = 0;                ///< drop-frame: directed link src
  std::uint32_t b = 0;                ///< drop-frame: directed link dst
  std::uint64_t frame = 0;            ///< drop-frame: per-link frame ordinal
};

struct TrajectoryResult {
  std::vector<Choice> choices;
  /// Canonical state hash at each choice point (parallel to `choices`).
  std::vector<std::uint64_t> state_hashes;
  std::uint64_t final_hash = 0;
  std::vector<chaos::OracleViolation> violations;
  std::vector<FaultAction> actions;
  bool choice_bound_hit = false;
  /// The decision sequence actually taken (what to feed back as a trace).
  [[nodiscard]] std::vector<std::uint16_t> decisions() const;
};

/// A minimized, replayable violation witness.
struct Counterexample {
  ExploreConfig config;
  std::vector<std::uint16_t> trace;   ///< exact decision sequence
  std::vector<FaultAction> actions;   ///< the faults that sequence takes
  std::string oracle;                 ///< violated oracle, e.g. "cross-epoch-apply"
  std::string detail;
  /// Serialize to the replayable text artifact (parse_counterexample
  /// round-trips it; the embedded FaultPlan snippet is for humans).
  [[nodiscard]] std::string to_text() const;
  /// Ready-to-paste C++ FaultPlan reproducer for the chosen actions.
  [[nodiscard]] std::string fault_plan() const;
};

[[nodiscard]] std::optional<Counterexample> parse_counterexample(const std::string& text);

struct ExploreReport {
  std::uint64_t trajectories = 0;
  std::uint64_t choice_points = 0;     ///< total decisions recorded
  std::uint64_t states_visited = 0;    ///< distinct canonical state hashes
  std::uint64_t pruned_visited = 0;    ///< expansions skipped: state already expanded
  std::uint64_t pruned_sleep = 0;      ///< expansions skipped: commuting deliveries
  std::uint64_t truncated = 0;         ///< trajectories cut by the choice bound
  bool hit_trajectory_cap = false;
  std::vector<Counterexample> counterexamples;  ///< minimized; empty on a clean sweep
  [[nodiscard]] bool ok() const { return counterexamples.empty(); }
  [[nodiscard]] std::string summary() const;
};

/// Optional observability attached to a single trajectory run (replay /
/// counterexample autopsy).  Pure observers: the decision sequence and
/// oracle outcomes are identical with or without them.
struct ObserveOptions {
  bool telemetry = false;         ///< causal spans + metrics + SLO monitor
  std::string metrics_json_path;  ///< final registry snapshot JSON
  std::string postmortem_path;    ///< flight-recorder post-mortem artifact
};

/// Run one trajectory: fresh service, replay `trace`, defaults beyond it.
[[nodiscard]] TrajectoryResult run_trajectory(const ExploreConfig& cfg,
                                              const std::vector<std::uint16_t>& trace);
/// Same, with observability attached (counterexample autopsies).
[[nodiscard]] TrajectoryResult run_trajectory(const ExploreConfig& cfg,
                                              const std::vector<std::uint16_t>& trace,
                                              const ObserveOptions& observe);

/// Exhaustive bounded sweep.  Stops at the first violation (after
/// minimizing it) or when the choice tree is exhausted / capped.
[[nodiscard]] ExploreReport explore(const ExploreConfig& cfg, std::ostream* progress = nullptr);

/// Greedily flip non-default choices back to default while the violation
/// persists, then drop trailing defaults.
[[nodiscard]] Counterexample minimize(const Counterexample& ce);

/// Re-run a counterexample.  The violation reproduced iff the result's
/// violations contain ce.oracle.
[[nodiscard]] TrajectoryResult replay(const Counterexample& ce);
[[nodiscard]] bool reproduces(const TrajectoryResult& result, const std::string& oracle);

}  // namespace rtpb::explore
