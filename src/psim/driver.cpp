#include "psim/driver.hpp"

#include <chrono>
#include <functional>
#include <thread>

#include "psim/barrier.hpp"
#include "util/assert.hpp"
#include "util/log.hpp"

namespace rtpb::psim {

namespace {

double wall_now_ms() {
  return static_cast<double>(std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
                                 .count()) /
         1000.0;
}

}  // namespace

ParallelDriver::ParallelDriver(std::vector<PartitionTask*> tasks, Duration window)
    : tasks_(std::move(tasks)), window_(window) {
  RTPB_EXPECTS(!tasks_.empty());
  RTPB_EXPECTS(window_ > Duration::zero());
  for (PartitionTask* t : tasks_) RTPB_EXPECTS(t != nullptr);
}

DriverStats ParallelDriver::run(TimePoint from, TimePoint to, std::size_t threads) {
  RTPB_EXPECTS(to >= from);
  DriverStats stats;
  if (threads < 1) threads = 1;
  if (threads > tasks_.size()) threads = tasks_.size();
  stats.threads = threads;
  const double t0 = wall_now_ms();

  // Precompute the window horizons once; workers index into the shared
  // vector instead of each redoing the clamp arithmetic.
  std::vector<TimePoint> horizons;
  for (TimePoint h = from; h < to;) {
    h = h + window_;
    if (h > to) h = to;
    horizons.push_back(h);
  }
  stats.windows = horizons.size();

  if (threads == 1) {
    // The sequential build: same windows, same two-phase order within
    // each window, no worker threads.  Running EVERY partition's
    // drain+advance before ANY partition's publish keeps the delivery
    // envelope identical to the threaded path — a record published in
    // window k is drained in window k+1 by every peer, regardless of
    // partition order.  Pinned by the digest- and ingest-count tests.
    TimePoint start = from;
    for (const TimePoint h : horizons) {
      for (PartitionTask* t : tasks_) {
        t->begin_window(start);
        t->advance_to(h);
      }
      for (PartitionTask* t : tasks_) t->end_window(h);
      start = h;
    }
    stats.wall_ms = wall_now_ms() - t0;
    return stats;
  }

  // The global Logger's virtual clock points at whichever simulator was
  // constructed last; during the parallel region that simulator advances
  // on a worker thread, so reading it from another would race.  Log
  // lines fall back to unclocked while workers run; the clock is put
  // back once they join, so post-run logging (harvest, later sequential
  // runs) keeps virtual timestamps at every thread count.
  std::function<TimePoint()> saved_clock = Logger::instance().exchange_clock(nullptr);

  SpinBarrier barrier(threads);
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (std::size_t w = 0; w < threads; ++w) {
    workers.emplace_back([this, w, threads, from, &horizons, &barrier] {
      TimePoint start = from;
      for (const TimePoint h : horizons) {
        // Static round-robin ownership: partition p belongs to worker
        // p % threads for the whole run, so each simulator is only ever
        // touched by one thread per window (and the same thread every
        // window — warm caches, deterministic streams).
        //
        // Two barrier-separated phases per window.  Phase 1 drains the
        // previous window's publishes and advances to the horizon;
        // phase 2 publishes.  The first barrier stops a publish of
        // window k racing a peer's drain of window k (which would let a
        // record cross in the same window it was published, under the
        // documented [l, 2l] lower bound); the second orders every
        // publish of window k before every drain of window k+1.
        for (std::size_t p = w; p < tasks_.size(); p += threads) {
          tasks_[p]->begin_window(start);
          tasks_[p]->advance_to(h);
        }
        barrier.arrive_and_wait();
        for (std::size_t p = w; p < tasks_.size(); p += threads) {
          tasks_[p]->end_window(h);
        }
        barrier.arrive_and_wait();
        start = h;
      }
    });
  }
  for (std::thread& t : workers) t.join();
  Logger::instance().set_clock(std::move(saved_clock));
  stats.barriers = 2 * stats.windows;
  stats.wall_ms = wall_now_ms() - t0;
  return stats;
}

}  // namespace rtpb::psim
