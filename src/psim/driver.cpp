#include "psim/driver.hpp"

#include <chrono>
#include <thread>

#include "psim/barrier.hpp"
#include "util/assert.hpp"
#include "util/log.hpp"

namespace rtpb::psim {

namespace {

double wall_now_ms() {
  return static_cast<double>(std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
                                 .count()) /
         1000.0;
}

}  // namespace

ParallelDriver::ParallelDriver(std::vector<PartitionTask*> tasks, Duration window)
    : tasks_(std::move(tasks)), window_(window) {
  RTPB_EXPECTS(!tasks_.empty());
  RTPB_EXPECTS(window_ > Duration::zero());
  for (PartitionTask* t : tasks_) RTPB_EXPECTS(t != nullptr);
}

DriverStats ParallelDriver::run(TimePoint from, TimePoint to, std::size_t threads) {
  RTPB_EXPECTS(to >= from);
  DriverStats stats;
  if (threads < 1) threads = 1;
  if (threads > tasks_.size()) threads = tasks_.size();
  stats.threads = threads;
  const double t0 = wall_now_ms();

  // Precompute the window horizons once; workers index into the shared
  // vector instead of each redoing the clamp arithmetic.
  std::vector<TimePoint> horizons;
  for (TimePoint h = from; h < to;) {
    h = h + window_;
    if (h > to) h = to;
    horizons.push_back(h);
  }
  stats.windows = horizons.size();

  if (threads == 1) {
    // The sequential build: same windows, same per-window phase order,
    // no worker threads.  Per-partition event streams are identical to
    // any multi-threaded run — pinned by the digest-equality tests.
    TimePoint start = from;
    for (const TimePoint h : horizons) {
      for (PartitionTask* t : tasks_) {
        t->begin_window(start);
        t->advance_to(h);
        t->end_window(h);
      }
      start = h;
    }
    stats.wall_ms = wall_now_ms() - t0;
    return stats;
  }

  // The global Logger's virtual clock points at whichever simulator was
  // constructed last; during the parallel region that simulator advances
  // on a worker thread, so reading it from another would race.  Log
  // lines fall back to unclocked while workers run.
  Logger::instance().clear_clock();

  SpinBarrier barrier(threads);
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (std::size_t w = 0; w < threads; ++w) {
    workers.emplace_back([this, w, threads, from, &horizons, &barrier] {
      TimePoint start = from;
      for (const TimePoint h : horizons) {
        // Static round-robin ownership: partition p belongs to worker
        // p % threads for the whole run, so each simulator is only ever
        // touched by one thread per window (and the same thread every
        // window — warm caches, deterministic streams).
        for (std::size_t p = w; p < tasks_.size(); p += threads) {
          tasks_[p]->begin_window(start);
          tasks_[p]->advance_to(h);
          tasks_[p]->end_window(h);
        }
        // One barrier per window: publishes from window k happen-before
        // the drains of window k+1 on every peer.
        barrier.arrive_and_wait();
        start = h;
      }
    });
  }
  for (std::thread& t : workers) t.join();
  stats.barriers = stats.windows;
  stats.wall_ms = wall_now_ms() - t0;
  return stats;
}

}  // namespace rtpb::psim
