// Central sense-reversing spin barrier for the parallel driver's
// lock-stepped lookahead windows.
//
// The driver runs at most a handful of workers (thread counts 2–8 on the
// scaling curve), and windows are short — ℓ of virtual time, typically a
// few hundred microseconds of real work — so a centralized barrier with a
// bounded spin before yielding beats the coordination cost of the
// tree/MCS barriers a NUMA runtime would want (see the katana-substrate
// Barrier_MCS/Barrier_Topo designs referenced from ROADMAP item 2b; at
// this scale the single cache line is the faster trade).
#pragma once

#include <atomic>
#include <cstdint>
#include <thread>

#include "util/assert.hpp"

namespace rtpb::psim {

class SpinBarrier {
 public:
  explicit SpinBarrier(std::size_t parties) : parties_(parties) {
    RTPB_EXPECTS(parties >= 1);
  }

  SpinBarrier(const SpinBarrier&) = delete;
  SpinBarrier& operator=(const SpinBarrier&) = delete;

  /// Block until all `parties` threads have arrived.  The last arrival
  /// releases the generation; everyone else spins briefly, then yields.
  void arrive_and_wait() {
    const std::uint64_t gen = generation_.load(std::memory_order_acquire);
    if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 == parties_) {
      arrived_.store(0, std::memory_order_relaxed);
      generation_.fetch_add(1, std::memory_order_acq_rel);
      return;
    }
    std::uint32_t spins = 0;
    while (generation_.load(std::memory_order_acquire) == gen) {
      if (++spins > kSpinLimit) std::this_thread::yield();
    }
  }

 private:
  static constexpr std::uint32_t kSpinLimit = 4096;

  const std::size_t parties_;
  std::atomic<std::size_t> arrived_{0};
  std::atomic<std::uint64_t> generation_{0};
};

}  // namespace rtpb::psim
