// Bounded single-producer single-consumer ring queue.
//
// The parallel driver exchanges cross-partition traffic through one of
// these per ordered partition pair: partition A's worker is the only
// producer of the A→B queue, partition B's worker the only consumer.
// Producers push during A's window-end phase, consumers drain during B's
// next window-begin phase, and the driver's lock-step barrier sits
// between the two — so the queue is never contended in practice, but the
// acquire/release protocol keeps it correct (and TSan-clean) even if an
// implementation detail ever lets the phases overlap.
//
// Capacity is fixed at construction; push() reports overflow instead of
// blocking (the driver sizes queues for the worst per-window record
// count and treats overflow as a logic error).
#pragma once

#include <atomic>
#include <cstddef>
#include <optional>
#include <vector>

#include "util/assert.hpp"

namespace rtpb::psim {

template <typename T>
class SpscQueue {
 public:
  /// `capacity` usable slots (one ring slot is sacrificed internally).
  explicit SpscQueue(std::size_t capacity) : buf_(capacity + 1) {
    RTPB_EXPECTS(capacity >= 1);
  }

  SpscQueue(const SpscQueue&) = delete;
  SpscQueue& operator=(const SpscQueue&) = delete;

  /// Producer side.  Returns false when the ring is full.
  bool push(const T& v) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    const std::size_t next = (tail + 1) % buf_.size();
    if (next == head_.load(std::memory_order_acquire)) return false;
    buf_[tail] = v;
    tail_.store(next, std::memory_order_release);
    return true;
  }

  /// Consumer side.  Empty queue yields nullopt.
  std::optional<T> pop() {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    if (head == tail_.load(std::memory_order_acquire)) return std::nullopt;
    T v = buf_[head];
    head_.store((head + 1) % buf_.size(), std::memory_order_release);
    return v;
  }

  /// Consumer-side view; racy if the producer is mid-push, exact at a
  /// barrier.
  [[nodiscard]] bool empty() const {
    return head_.load(std::memory_order_acquire) == tail_.load(std::memory_order_acquire);
  }

 private:
  std::vector<T> buf_;
  std::atomic<std::size_t> head_{0};  ///< next slot to pop (consumer-owned)
  std::atomic<std::size_t> tail_{0};  ///< next slot to fill (producer-owned)
};

}  // namespace rtpb::psim
