// Partitioned RTPB cluster: one primary-backup GROUP per partition, each
// with its OWN simulator, advanced in parallel by the conservative driver.
//
// This is the scale-out counterpart of shard::ShardCluster.  There every
// group shares one simulator and one event queue — correct, but serial by
// construction.  Here each group is a full core::RtpbService (own
// Simulator, Network, NameService, Metrics, RNG stream, trace recorder),
// so the groups are independent event streams that the ParallelDriver can
// advance on separate threads inside ℓ-wide lookahead windows.
//
// Cross-group coupling is exactly what the sharded design already reduced
// it to: stable-timestamp frontiers.  Because peer groups live in
// different simulators, frontier records cannot travel through a
// simulated link; instead each partition publishes its frontier into
// per-pair SPSC queues at window end and drains its peers' queues —
// always in ascending source-group order — at the next window begin,
// feeding ReplicaServer::ingest_frontier.  The driver runs each window as
// two barrier-separated phases (drain+advance, then publish), so a record
// published in window k is drained in window k+1 by every peer and
// crosses in [ℓ, 2ℓ]: the same staleness envelope the link bound ℓ
// already budgets for in-simulator frontier frames.
//
// Determinism: every partition's event stream is a pure function of its
// (seed, window schedule, ingested frontier sequence), and all three are
// thread-count-invariant.  The per-shard digest equality tests pin this.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/service.hpp"
#include "core/wire.hpp"
#include "psim/driver.hpp"
#include "psim/spsc.hpp"
#include "shard/directory.hpp"
#include "shard/frontier.hpp"
#include "sim/partition.hpp"

namespace rtpb::psim {

/// One primary-backup group as a driver partition.  Owns the frontier
/// tracker and the inbound halves of its SPSC pair queues; the service is
/// borrowed and must outlive the partition.
class GroupPartition final : public PartitionTask {
 public:
  GroupPartition(std::uint32_t id, core::RtpbService& service,
                 std::size_t queue_capacity = 64);

  /// Wire the full mesh over `parts` (canonical pair order).  Call once,
  /// after every partition is constructed and before the first window.
  static void wire_mesh(const std::vector<std::unique_ptr<GroupPartition>>& parts);

  /// Start tracking an admitted object in this partition's frontier.
  void track(core::ObjectId id);

  // ---- PartitionTask (called from the owning worker thread) ----
  void begin_window(TimePoint start) override;
  void advance_to(TimePoint horizon) override;
  void end_window(TimePoint horizon) override;

  [[nodiscard]] std::uint32_t id() const { return id_; }
  [[nodiscard]] core::RtpbService& service() { return service_; }
  [[nodiscard]] const core::RtpbService& service() const { return service_; }
  [[nodiscard]] const shard::FrontierTracker& frontier_tracker() const { return frontier_; }
  /// Lookahead windows this partition has been advanced through.
  [[nodiscard]] std::uint64_t windows() const { return partition_.windows(); }
  /// Frontier records this partition published to its peers / drained
  /// from them (a publish fans out to every peer but counts once).
  [[nodiscard]] std::uint64_t records_published() const { return records_published_; }
  [[nodiscard]] std::uint64_t records_ingested() const { return records_ingested_; }

 private:
  struct Inbound {
    std::uint32_t source = 0;
    std::unique_ptr<SpscQueue<core::wire::Frontier>> queue;
  };

  /// Directed edge: `from`'s worker produces into a queue owned (and
  /// drained) by `to`'s worker.
  static void connect(GroupPartition& from, GroupPartition& to);

  const std::uint32_t id_;
  core::RtpbService& service_;
  sim::Partition partition_;
  const std::size_t queue_capacity_;

  shard::FrontierTracker frontier_;
  std::vector<core::ObjectId> tracked_;
  TimePoint last_published_{};

  std::vector<Inbound> inbound_;                      ///< sorted by source id
  std::vector<SpscQueue<core::wire::Frontier>*> outbound_;  ///< peers' inbound queues

  std::uint64_t records_published_ = 0;
  std::uint64_t records_ingested_ = 0;
};

struct PartitionedClusterParams {
  std::uint64_t seed = 1;
  net::LinkParams link;          ///< primary↔backup link, every group
  core::ServiceConfig config;
  std::uint32_t group_count = 2;
  std::size_t backup_count = 1;
  /// Lookahead window width.  Zero (the default) derives it as the link
  /// delay bound ℓ — the widest window the frontier-staleness argument
  /// above supports without exceeding the admission budget.
  Duration window{};
  std::string service_prefix = "pgroup";
  /// Per-group service seeds.  Empty derives group g's seed statelessly
  /// from `seed` (stream g), so adding groups never reshuffles existing
  /// ones.  When set, must have exactly group_count entries.
  std::vector<std::uint64_t> group_seeds;
};

/// The assembled partitioned cluster.  Construction, registration and
/// constraint admission are single-threaded control-plane operations;
/// only run_for() enters the parallel region.
class PartitionedCluster {
 public:
  explicit PartitionedCluster(PartitionedClusterParams params);

  PartitionedCluster(const PartitionedCluster&) = delete;
  PartitionedCluster& operator=(const PartitionedCluster&) = delete;

  /// Start every group's servers.  Call before registering objects.
  void start();

  /// Route by the directory's hash placement (shard s == group s here:
  /// the directory is created with shard_count == group_count).
  core::AdmissionResult register_object(const core::ObjectSpec& spec);
  /// Place directly into `group`, bypassing hash routing (bench workloads
  /// that want an exact per-group object count).
  core::AdmissionResult register_object_in(std::uint32_t group, const core::ObjectSpec& spec);

  /// Same-group constraints go to that group's admission; cross-group
  /// constraints decompose into per-side caps (shard/admission.hpp) with
  /// a dry-run pre-flight on both sides before either commits.  Control
  /// plane only — never call from inside the parallel region.
  core::AdmissionStatus add_constraint(const core::InterObjectConstraint& c);
  /// Frontier arithmetic over the partitions' local trackers.
  [[nodiscard]] bool cross_constraint_satisfied(const core::InterObjectConstraint& c,
                                                TimePoint at) const;

  /// Advance every group by `d` in lock-stepped windows on `threads`
  /// workers (1 = inline sequential reference run).
  DriverStats run_for(Duration d, std::size_t threads);
  /// Close metric intervals on every group (end of experiment).
  void finish();

  [[nodiscard]] std::uint32_t group_count() const {
    return static_cast<std::uint32_t>(services_.size());
  }
  [[nodiscard]] core::RtpbService& service(std::uint32_t g) { return *services_[g]; }
  [[nodiscard]] GroupPartition& partition(std::uint32_t g) { return *partitions_[g]; }
  [[nodiscard]] const shard::ShardDirectory& directory() const { return directory_; }
  /// The lookahead window actually in use (ℓ unless overridden).
  [[nodiscard]] Duration window() const { return window_; }
  /// Common virtual clock (all groups agree between run_for calls).
  [[nodiscard]] TimePoint now() const { return services_.front()->simulator().now(); }
  /// Per-group trace digests, in group order (recorders must have been
  /// enabled by the caller before start()).
  [[nodiscard]] std::vector<std::uint64_t> digests() const;
  [[nodiscard]] const std::vector<core::InterObjectConstraint>& cross_constraints() const {
    return cross_;
  }
  /// Σ records published / ingested over partitions.
  [[nodiscard]] std::uint64_t frontier_records_published() const;
  [[nodiscard]] std::uint64_t frontier_records_ingested() const;

 private:
  PartitionedClusterParams params_;
  shard::ShardDirectory directory_;
  Duration window_{};
  std::vector<std::unique_ptr<core::RtpbService>> services_;
  std::vector<std::unique_ptr<GroupPartition>> partitions_;
  std::vector<core::InterObjectConstraint> cross_;
  std::uint64_t registered_ = 0;
  bool started_ = false;
};

}  // namespace rtpb::psim
