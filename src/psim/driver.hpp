// ParallelDriver — conservative parallel discrete-event execution over
// shard partitions (ROADMAP item 2a).
//
// RTPB's admission-frozen link delay bound ℓ is exactly the conservative
// lookahead a parallel DES needs: no partition can affect another sooner
// than ℓ, so every partition may advance independently inside a window of
// width ℓ.  The driver runs all partitions through lock-stepped windows
//
//   [W_k, W_{k+1}]   with   W_{k+1} = W_k + ℓ
//
// on a fixed worker pool.  Each window runs as TWO barrier-separated
// phases.  Phase 1: every worker, for every partition it owns, drains
// that partition's inbound inject queues in a FIXED source order and
// advances the partition's simulator to the window horizon.  Phase 2
// (after a barrier): every worker publishes its partitions' outbound
// records into per-pair SPSC queues; a second barrier then opens the next
// window.  The first barrier keeps a publish of window k from racing a
// peer's drain of window k; the second orders all publishes of window k
// before all drains of window k+1.  A record published at the end of
// window k is therefore visible to (and only to) the consumer's
// begin-phase of window k+1: cross-partition latency lands in [ℓ, 2ℓ],
// which the ℓ-lookahead makes safe by construction.
//
// Determinism: partition assignment never moves a partition between
// threads mid-run, each partition's simulator is touched by exactly one
// thread per window, and the drain order at every window start is a pure
// function of (partition, window).  Each (partition, seed) stream is
// therefore bit-reproducible at ANY thread count — the per-shard digest
// equality the chaos harness asserts.
#pragma once

#include <cstdint>
#include <vector>

#include "util/time.hpp"

namespace rtpb::psim {

/// One shard partition as the driver sees it.  All three hooks are called
/// from the worker thread that owns the partition; only end_window() may
/// touch another partition's state, and only through its SPSC queues.
class PartitionTask {
 public:
  virtual ~PartitionTask() = default;

  /// Window begin: drain inbound inject queues (fixed source order) and
  /// schedule/apply what they carried.  The partition's clock is exactly
  /// `start`.
  virtual void begin_window(TimePoint start) = 0;
  /// Run every local event with timestamp <= horizon.
  virtual void advance_to(TimePoint horizon) = 0;
  /// Window end: publish outbound records into peer inject queues.  The
  /// partition's clock is exactly `horizon`.
  virtual void end_window(TimePoint horizon) = 0;
};

struct DriverStats {
  std::uint64_t windows = 0;      ///< lookahead windows executed
  std::uint64_t barriers = 0;     ///< barrier episodes: 2/window (0 when threads == 1)
  std::size_t threads = 0;        ///< worker threads actually used
  double wall_ms = 0.0;           ///< real time spent inside run()
};

class ParallelDriver {
 public:
  /// `window` is the lookahead ℓ (must be positive).  Tasks are not
  /// owned and must outlive the driver.
  ParallelDriver(std::vector<PartitionTask*> tasks, Duration window);

  ParallelDriver(const ParallelDriver&) = delete;
  ParallelDriver& operator=(const ParallelDriver&) = delete;

  /// Advance every partition from `from` to `to` in lock-stepped windows
  /// of the configured width (the last window clamps to `to`), using
  /// `threads` workers.  threads == 1 runs the identical schedule inline
  /// on the calling thread — THE sequential build, no std::thread spawned
  /// — which is the reference the digest-equality oracle compares
  /// against.  Thread counts above the partition count are clamped.
  DriverStats run(TimePoint from, TimePoint to, std::size_t threads);

 private:
  std::vector<PartitionTask*> tasks_;
  Duration window_;
};

}  // namespace rtpb::psim
