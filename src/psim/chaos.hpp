// Parallel chaos harness: one chaos experiment PER SHARD, all advanced by
// the conservative parallel driver, coupled only through window-barrier
// frontier records.
//
// Seed discipline: shard s of parallel seed S runs the classic chaos
// pipeline (schedule, workload, fault plan, oracles) under the derived
// seed  derive_stream_seed(derive_stream_seed(S, kStreamParallel), s).
// That derivation is stateless, so shard s's entire trajectory — and its
// trace digest — is a pure function of (S, s, opts), independent of the
// shard count AND of the thread count.  The purity oracle asserts exactly
// this: running the same (S, opts) at threads ∈ {1, 2, 4} must reproduce
// every per-shard digest bit for bit, where threads == 1 is the inline
// sequential build (no std::thread spawned).
//
// Observability sinks (telemetry export files, health feeds, post-mortem
// paths) are force-disabled per shard: the per-sim hubs themselves are
// thread-confined, but the file paths in ChaosOptions are single-run
// names that N shards would trample.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "chaos/harness.hpp"
#include "psim/driver.hpp"

namespace rtpb::psim {

/// What one shard's chaos experiment produced.  The same fields two runs
/// of the same (seed, shard, opts) must agree on.
struct ShardSeedReport {
  std::uint32_t shard = 0;
  std::uint64_t shard_seed = 0;    ///< derived per-shard chaos seed
  std::uint64_t trace_digest = 0;  ///< FNV-1a over the shard's event trace
  std::uint64_t trace_events = 0;
  std::uint64_t sim_events = 0;
  std::uint64_t violation_count = 0;
  std::uint64_t oracle_checks = 0;
  std::vector<chaos::OracleViolation> violations;  ///< capped, like SeedReport
  std::vector<std::string> fired;
  std::size_t objects_offered = 0;
  std::size_t objects_admitted = 0;
  std::uint64_t client_writes = 0;
  std::uint64_t updates_applied = 0;
  /// Ready-to-paste single-shard reproducer (filled when violations > 0):
  /// replay with the classic harness under shard_seed.
  std::string reproducer;

  [[nodiscard]] bool ok() const { return violation_count == 0; }
};

struct ParallelSeedReport {
  std::uint64_t seed = 0;
  std::size_t shards = 0;
  std::size_t threads = 0;  ///< as requested (driver may clamp)
  DriverStats driver;
  std::vector<ShardSeedReport> shard_reports;  ///< in shard order
  std::uint64_t frontier_records_published = 0;
  std::uint64_t frontier_records_ingested = 0;

  [[nodiscard]] bool ok() const;
  [[nodiscard]] std::uint64_t violation_count() const;
  [[nodiscard]] std::uint64_t oracle_checks() const;
  /// One line per shard plus a driver line, for sweep output.
  [[nodiscard]] std::string summary() const;
};

/// Run one parallel chaos seed: opts.shards independent experiments in
/// lock-stepped lookahead windows on `threads` workers.  Deterministic at
/// any thread count.  Requires opts.shards >= 1; opts.shards inside each
/// per-shard run is forced to 1 (shard-scoped storms don't compose with
/// one-group-per-shard partitioning).
[[nodiscard]] ParallelSeedReport run_parallel_seed(std::uint64_t seed,
                                                   const chaos::ChaosOptions& opts,
                                                   std::size_t threads);

struct ParallelSweepResult {
  std::size_t seeds_run = 0;
  std::vector<ParallelSeedReport> failures;
  std::uint64_t total_checks = 0;
  [[nodiscard]] bool ok() const { return failures.empty(); }
};

/// Run parallel seeds [first_seed, first_seed + count).
[[nodiscard]] ParallelSweepResult run_parallel_sweep(std::uint64_t first_seed,
                                                     std::size_t count,
                                                     const chaos::ChaosOptions& opts,
                                                     std::size_t threads,
                                                     std::ostream* progress = nullptr);

}  // namespace rtpb::psim
