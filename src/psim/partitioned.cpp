#include "psim/partitioned.hpp"

#include <algorithm>
#include <utility>

#include "shard/admission.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace rtpb::psim {

// ---------------------------------------------------------------------------
// GroupPartition
// ---------------------------------------------------------------------------

GroupPartition::GroupPartition(std::uint32_t id, core::RtpbService& service,
                               std::size_t queue_capacity)
    : id_(id),
      service_(service),
      partition_(service.simulator()),
      queue_capacity_(queue_capacity) {
  RTPB_EXPECTS(queue_capacity >= 1);
}

void GroupPartition::connect(GroupPartition& from, GroupPartition& to) {
  RTPB_EXPECTS(from.id_ != to.id_);
  auto queue = std::make_unique<SpscQueue<core::wire::Frontier>>(to.queue_capacity_);
  from.outbound_.push_back(queue.get());
  to.inbound_.push_back({from.id_, std::move(queue)});
}

void GroupPartition::wire_mesh(const std::vector<std::unique_ptr<GroupPartition>>& parts) {
  for (std::size_t i = 0; i < parts.size(); ++i) {
    for (std::size_t j = i + 1; j < parts.size(); ++j) {
      connect(*parts[i], *parts[j]);
      connect(*parts[j], *parts[i]);
    }
  }
  // The drain order at window begin must be a pure function of the
  // partition, independent of wiring order: ascending source id.
  for (const auto& p : parts) {
    std::sort(p->inbound_.begin(), p->inbound_.end(),
              [](const Inbound& a, const Inbound& b) { return a.source < b.source; });
  }
}

void GroupPartition::track(core::ObjectId id) {
  tracked_.push_back(id);
  // Frontier starts at the epoch origin: nothing has been made stable
  // for this object yet (same convention as ShardCluster).
  frontier_.track(id, TimePoint::zero());
}

void GroupPartition::begin_window(TimePoint /*start*/) {
  // Drain peers' publishes from the previous window, ascending source id.
  // The driver's barrier ordered those pushes before this drain.
  for (Inbound& in : inbound_) {
    while (std::optional<core::wire::Frontier> f = in.queue->pop()) {
      service_.acting_primary().ingest_frontier(*f);
      ++records_ingested_;
    }
  }
}

void GroupPartition::advance_to(TimePoint horizon) { partition_.advance_to(horizon); }

void GroupPartition::end_window(TimePoint /*horizon*/) {
  // Stability is judged at the group's successor backup: the origin
  // timestamp it has APPLIED is what survives a primary crash.  A crashed
  // backup's store freezes, stalling the frontier — conservative.
  const core::ObjectStore& stable = service_.backups().front()->store();
  for (core::ObjectId id : tracked_) {
    const std::optional<core::ObjectState> state = stable.find(id);
    if (!state || state->version == 0) continue;
    frontier_.advance(id, state->origin_timestamp);
  }
  const TimePoint f = frontier_.frontier();
  // Publish only on advance: an empty partition (max) constrains nothing,
  // and peers' merge is monotone so a repeat carries no information.
  if (f == TimePoint::max() || f <= last_published_) return;
  last_published_ = f;
  core::wire::Frontier record;
  record.shard = id_;
  record.stable_ts = f;
  for (SpscQueue<core::wire::Frontier>* q : outbound_) {
    const bool pushed = q->push(record);
    // At most one publish per window per source; queues are sized far
    // above the worst backlog a slow consumer window could leave.
    RTPB_ASSERT(pushed);
  }
  ++records_published_;
}

// ---------------------------------------------------------------------------
// PartitionedCluster
// ---------------------------------------------------------------------------

PartitionedCluster::PartitionedCluster(PartitionedClusterParams params)
    : params_(std::move(params)),
      directory_(params_.group_count, params_.group_count) {
  RTPB_EXPECTS(params_.group_count >= 1);
  RTPB_EXPECTS(params_.backup_count >= 1);
  RTPB_EXPECTS(params_.group_seeds.empty() ||
               params_.group_seeds.size() == params_.group_count);

  for (std::uint32_t g = 0; g < params_.group_count; ++g) {
    core::ServiceParams sp;
    sp.seed = params_.group_seeds.empty() ? derive_stream_seed(params_.seed, g)
                                          : params_.group_seeds[g];
    sp.link = params_.link;
    sp.config = params_.config;
    sp.service_name = params_.service_prefix + "-" + std::to_string(g);
    sp.backup_count = params_.backup_count;
    services_.push_back(std::make_unique<core::RtpbService>(std::move(sp)));
    partitions_.push_back(std::make_unique<GroupPartition>(g, *services_.back()));
  }
  GroupPartition::wire_mesh(partitions_);

  if (params_.window > Duration::zero()) {
    window_ = params_.window;
  } else {
    // ℓ as admission control sees it; identical link params everywhere,
    // but take the max anyway so a future heterogeneous config stays
    // conservative.
    for (const auto& s : services_) window_ = std::max(window_, s->link_delay_bound());
    RTPB_ASSERT(window_ > Duration::zero());
  }
}

void PartitionedCluster::start() {
  RTPB_EXPECTS(!started_);
  started_ = true;
  for (auto& s : services_) s->start();
}

core::AdmissionResult PartitionedCluster::register_object(const core::ObjectSpec& spec) {
  return register_object_in(directory_.group_of(spec.id), spec);
}

core::AdmissionResult PartitionedCluster::register_object_in(std::uint32_t group,
                                                             const core::ObjectSpec& spec) {
  core::AdmissionResult r = services_[group]->register_object(spec);
  if (r.ok()) {
    partitions_[group]->track(spec.id);
    ++registered_;
  }
  return r;
}

core::AdmissionStatus PartitionedCluster::add_constraint(const core::InterObjectConstraint& c) {
  const std::uint32_t ga = directory_.group_of(c.first);
  const std::uint32_t gb = directory_.group_of(c.second);
  if (ga == gb) return services_[ga]->add_constraint(c);

  // Cross-group: dry-run both sides before either commits (a committed
  // cap replicates immediately and cannot be rolled back).
  const shard::CrossShardCaps caps = shard::decompose_cross_constraint(c);
  core::AdmissionStatus a =
      services_[ga]->acting_primary().admission().check_constraint(caps.first);
  if (!a.ok()) return a;
  core::AdmissionStatus b =
      services_[gb]->acting_primary().admission().check_constraint(caps.second);
  if (!b.ok()) return b;
  // Control plane is single-threaded: nothing can invalidate the
  // dry-runs between check and commit, so the commits must succeed.
  a = services_[ga]->add_constraint(caps.first);
  RTPB_ASSERT(a.ok());
  b = services_[gb]->add_constraint(caps.second);
  RTPB_ASSERT(b.ok());
  cross_.push_back(c);
  return {};
}

bool PartitionedCluster::cross_constraint_satisfied(const core::InterObjectConstraint& c,
                                                    TimePoint at) const {
  const std::uint32_t ga = directory_.group_of(c.first);
  const std::uint32_t gb = directory_.group_of(c.second);
  const TimePoint fa = partitions_[ga]->frontier_tracker().frontier();
  const TimePoint fb = partitions_[gb]->frontier_tracker().frontier();
  // An untracked partition (no objects) imposes nothing.
  if (fa != TimePoint::max() && at - fa > c.delta) return false;
  if (fb != TimePoint::max() && at - fb > c.delta) return false;
  return true;
}

DriverStats PartitionedCluster::run_for(Duration d, std::size_t threads) {
  std::vector<PartitionTask*> tasks;
  tasks.reserve(partitions_.size());
  for (auto& p : partitions_) tasks.push_back(p.get());
  const TimePoint from = now();
  for (const auto& s : services_) RTPB_ASSERT(s->simulator().now() == from);
  ParallelDriver driver(std::move(tasks), window_);
  return driver.run(from, from + d, threads);
}

void PartitionedCluster::finish() {
  for (auto& s : services_) s->finish();
}

std::vector<std::uint64_t> PartitionedCluster::digests() const {
  std::vector<std::uint64_t> out;
  out.reserve(services_.size());
  for (const auto& s : services_) out.push_back(s->simulator().trace().digest());
  return out;
}

std::uint64_t PartitionedCluster::frontier_records_published() const {
  std::uint64_t n = 0;
  for (const auto& p : partitions_) n += p->records_published();
  return n;
}

std::uint64_t PartitionedCluster::frontier_records_ingested() const {
  std::uint64_t n = 0;
  for (const auto& p : partitions_) n += p->records_ingested();
  return n;
}

}  // namespace rtpb::psim
