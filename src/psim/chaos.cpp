#include "psim/chaos.hpp"

#include <cstdio>
#include <memory>
#include <ostream>

#include "chaos/oracles.hpp"
#include "chaos/schedule.hpp"
#include "core/faults.hpp"
#include "psim/partitioned.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace rtpb::psim {

namespace {

/// Per-shard options: the classic single-group chaos pipeline, with every
/// file-emitting observer stripped (N shards would trample one path) and
/// shard-scoped storms off (each shard IS its own group here).
chaos::ChaosOptions shard_options(const chaos::ChaosOptions& opts) {
  chaos::ChaosOptions sopts = opts;
  sopts.shards = 1;
  sopts.telemetry = false;
  sopts.flight_recorder = false;
  sopts.trace_json_path.clear();
  sopts.trace_jsonl_path.clear();
  sopts.postmortem_path.clear();
  sopts.health_jsonl_path.clear();
  sopts.metrics_json_path.clear();
  return sopts;
}

/// Everything one shard's experiment owns.  Construction order mirrors
/// chaos::run_seed exactly — the per-shard trace must be byte-identical
/// to a classic run_seed(shard_seed) run, which the parallel regression
/// test asserts.
struct ShardExperiment {
  std::uint64_t shard_seed = 0;
  chaos::ChaosSchedule schedule;
  chaos::Workload workload;
  std::unique_ptr<core::RtpbService> service;
  std::vector<core::ObjectId> admitted;
  std::unique_ptr<core::FaultPlan> plan;
  std::unique_ptr<chaos::OracleMonitor> monitor;
};

}  // namespace

bool ParallelSeedReport::ok() const {
  for (const ShardSeedReport& r : shard_reports) {
    if (!r.ok()) return false;
  }
  return true;
}

std::uint64_t ParallelSeedReport::violation_count() const {
  std::uint64_t n = 0;
  for (const ShardSeedReport& r : shard_reports) n += r.violation_count;
  return n;
}

std::uint64_t ParallelSeedReport::oracle_checks() const {
  std::uint64_t n = 0;
  for (const ShardSeedReport& r : shard_reports) n += r.oracle_checks;
  return n;
}

std::string ParallelSeedReport::summary() const {
  char line[224];
  std::snprintf(line, sizeof line,
                "parallel seed %6llu  %s  shards %zu  threads %zu  windows %llu  "
                "frontier %llu/%llu  violations %llu",
                static_cast<unsigned long long>(seed), ok() ? "ok  " : "FAIL", shards,
                threads, static_cast<unsigned long long>(driver.windows),
                static_cast<unsigned long long>(frontier_records_published),
                static_cast<unsigned long long>(frontier_records_ingested),
                static_cast<unsigned long long>(violation_count()));
  std::string out = line;
  for (const ShardSeedReport& r : shard_reports) {
    std::snprintf(line, sizeof line,
                  "\n  shard %2u  seed %20llu  %s  digest %016llx  admitted %zu/%zu  "
                  "writes %llu  applied %llu  faults %zu  violations %llu",
                  r.shard, static_cast<unsigned long long>(r.shard_seed),
                  r.ok() ? "ok  " : "FAIL",
                  static_cast<unsigned long long>(r.trace_digest), r.objects_admitted,
                  r.objects_offered, static_cast<unsigned long long>(r.client_writes),
                  static_cast<unsigned long long>(r.updates_applied), r.fired.size(),
                  static_cast<unsigned long long>(r.violation_count));
    out += line;
  }
  return out;
}

ParallelSeedReport run_parallel_seed(std::uint64_t seed, const chaos::ChaosOptions& opts,
                                     std::size_t threads) {
  RTPB_EXPECTS(opts.shards >= 1);
  const chaos::ChaosOptions sopts = shard_options(opts);
  const std::uint64_t parallel_root = derive_stream_seed(seed, chaos::kStreamParallel);

  // ---- control plane: build every shard's experiment, single-threaded ----
  std::vector<ShardExperiment> experiments(opts.shards);
  std::vector<std::unique_ptr<GroupPartition>> partitions;
  Duration window{};
  for (std::uint32_t s = 0; s < opts.shards; ++s) {
    ShardExperiment& e = experiments[s];
    e.shard_seed = derive_stream_seed(parallel_root, s);
    e.schedule = chaos::generate_schedule(e.shard_seed, sopts);

    core::ServiceParams params;
    params.seed = e.schedule.service_seed;
    params.link = sopts.link;
    params.config = sopts.config;
    params.backup_count = sopts.backups;
    e.service = std::make_unique<core::RtpbService>(params);
    e.service->simulator().trace().enable();
    e.service->start();

    e.workload = chaos::generate_workload(e.shard_seed, sopts);
    for (const core::ObjectSpec& spec : e.workload.objects) {
      if (e.service->register_object(spec).ok()) e.admitted.push_back(spec.id);
    }
    for (const core::InterObjectConstraint& c : e.workload.constraints) {
      e.service->add_constraint(c);  // rejection is a legal outcome
    }

    e.plan = std::make_unique<core::FaultPlan>(*e.service);
    chaos::apply(e.schedule, *e.plan);
    e.plan->arm();

    e.monitor = std::make_unique<chaos::OracleMonitor>(
        *e.service, e.admitted, chaos::declared_epochs(e.schedule, sopts));
    e.monitor->start();

    auto part = std::make_unique<GroupPartition>(s, *e.service);
    for (core::ObjectId id : e.admitted) part->track(id);
    partitions.push_back(std::move(part));
    window = std::max(window, e.service->link_delay_bound());
  }
  GroupPartition::wire_mesh(partitions);
  RTPB_ASSERT(window > Duration::zero());

  // ---- parallel region: lock-stepped lookahead windows ----
  std::vector<PartitionTask*> tasks;
  tasks.reserve(partitions.size());
  for (auto& p : partitions) tasks.push_back(p.get());
  const TimePoint from = experiments.front().service->simulator().now();
  ParallelDriver driver(std::move(tasks), window);

  ParallelSeedReport report;
  report.seed = seed;
  report.shards = opts.shards;
  report.threads = threads;
  report.driver = driver.run(from, from + opts.duration, threads);

  // ---- harvest, single-threaded again ----
  for (std::uint32_t s = 0; s < opts.shards; ++s) {
    ShardExperiment& e = experiments[s];
    e.service->finish();

    ShardSeedReport r;
    r.shard = s;
    r.shard_seed = e.shard_seed;
    r.trace_digest = e.service->simulator().trace().digest();
    r.trace_events = e.service->simulator().trace().recorded();
    r.sim_events = e.service->simulator().fired_events();
    r.violation_count = e.monitor->violation_count();
    r.oracle_checks = e.monitor->checks();
    r.violations = e.monitor->violations();
    r.fired = e.plan->fired();
    r.objects_offered = e.workload.objects.size();
    r.objects_admitted = e.admitted.size();
    r.client_writes =
        e.service->client().writes_issued() + e.service->backup_client().writes_issued();
    e.service->for_each_replica([&r](const core::ReplicaServer& replica) {
      r.updates_applied += replica.updates_applied();
    });
    if (!r.ok()) r.reproducer = chaos::render_reproducer(e.schedule, sopts);
    report.shard_reports.push_back(std::move(r));

    report.frontier_records_published += partitions[s]->records_published();
    report.frontier_records_ingested += partitions[s]->records_ingested();
  }
  return report;
}

ParallelSweepResult run_parallel_sweep(std::uint64_t first_seed, std::size_t count,
                                       const chaos::ChaosOptions& opts, std::size_t threads,
                                       std::ostream* progress) {
  ParallelSweepResult result;
  for (std::size_t i = 0; i < count; ++i) {
    ParallelSeedReport report = run_parallel_seed(first_seed + i, opts, threads);
    ++result.seeds_run;
    result.total_checks += report.oracle_checks();
    if (progress != nullptr) *progress << report.summary() << "\n";
    if (!report.ok()) {
      if (progress != nullptr) {
        for (const ShardSeedReport& r : report.shard_reports) {
          if (r.ok()) continue;
          for (const chaos::OracleViolation& v : r.violations) {
            *progress << "  shard " << r.shard << " [" << v.at.to_string() << "] "
                      << v.oracle << ": " << v.detail << "\n";
          }
          *progress << "  replay: classic harness, seed "
                    << static_cast<unsigned long long>(r.shard_seed) << "\n"
                    << r.reproducer;
        }
      }
      result.failures.push_back(std::move(report));
    }
  }
  return result;
}

}  // namespace rtpb::psim
