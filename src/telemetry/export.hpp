// Telemetry exporters.
//
//   write_chrome_trace  Chrome trace-event JSON (the format Perfetto and
//                       chrome://tracing load): one process per node, one
//                       thread per protocol layer / CPU, duration slices for
//                       CPU job possession, instants for protocol hops, and
//                       one async track per update span so a single update's
//                       journey primary → net → backup reads as one row.
//   write_jsonl         Flat JSONL event stream (one JSON object per line;
//                       span records first, then events) — the input format
//                       of tools/trace_inspect.
#pragma once

#include <iosfwd>

#include "telemetry/telemetry.hpp"

namespace rtpb::telemetry {

void write_chrome_trace(const Hub& hub, std::ostream& os);
void write_jsonl(const Hub& hub, std::ostream& os);

/// JSON string escaping shared by the exporters (and tests).
[[nodiscard]] std::string json_escape(const std::string& s);

}  // namespace rtpb::telemetry
