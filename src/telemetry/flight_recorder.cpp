#include "telemetry/flight_recorder.hpp"

#include <cstdio>
#include <fstream>
#include <ostream>

#include "util/assert.hpp"

namespace rtpb::telemetry {

const char* flight_kind_name(FlightKind k) {
  switch (k) {
    case FlightKind::kRoleChange: return "role-change";
    case FlightKind::kEpoch: return "epoch";
    case FlightKind::kUpdateSend: return "update-send";
    case FlightKind::kUpdateBatch: return "update-batch";
    case FlightKind::kUpdateApply: return "update-apply";
    case FlightKind::kAck: return "ack";
    case FlightKind::kRetransmitReq: return "retransmit-req";
    case FlightKind::kShed: return "shed";
    case FlightKind::kQosDowngrade: return "qos-downgrade";
    case FlightKind::kQosRestore: return "qos-restore";
    case FlightKind::kCrash: return "crash";
    case FlightKind::kOracleCheck: return "oracle-check";
    case FlightKind::kViolation: return "violation";
    case FlightKind::kTrigger: return "trigger";
  }
  return "?";
}

void FlightRecorder::enable(std::size_t capacity) {
  RTPB_EXPECTS(capacity > 0);
  if (ring_.size() != capacity) {
    ring_.assign(capacity, FlightRecord{});
    head_ = 0;
    size_ = 0;
  }
  enabled_ = true;
}

std::vector<FlightRecord> FlightRecorder::snapshot() const {
  std::vector<FlightRecord> out;
  out.reserve(size_);
  // Oldest record sits at head_ once the ring has wrapped, at 0 before.
  const std::size_t start = size_ == ring_.size() ? head_ : 0;
  for (std::size_t i = 0; i < size_; ++i) {
    out.push_back(ring_[(start + i) % ring_.size()]);
  }
  return out;
}

namespace {

void escape_into(std::string& out, const char* s) {
  for (; *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) >= 0x20) {
      out += c;
    }
  }
}

}  // namespace

void FlightRecorder::dump(std::ostream& os, const std::string& reason, TimePoint at) const {
  std::string line = "{\"type\":\"postmortem\",\"version\":1,\"reason\":\"";
  escape_into(line, reason.c_str());
  char buf[96];
  std::snprintf(buf, sizeof buf, "\",\"at_ms\":%.6f,\"recorded\":%llu,\"retained\":%llu,"
                "\"overwritten\":%llu}\n",
                at.millis(), static_cast<unsigned long long>(recorded_),
                static_cast<unsigned long long>(size_),
                static_cast<unsigned long long>(overwritten_));
  line += buf;
  os << line;
  for (const FlightRecord& r : snapshot()) {
    line = "{\"type\":\"fr\"";
    std::snprintf(buf, sizeof buf, ",\"ts_ms\":%.6f,\"node\":%u,\"kind\":\"%s\"",
                  r.at.millis(), r.node, flight_kind_name(r.kind));
    line += buf;
    if (r.object != 0) line += ",\"object\":" + std::to_string(r.object);
    if (r.version != 0) line += ",\"version\":" + std::to_string(r.version);
    if (r.epoch != 0) line += ",\"epoch\":" + std::to_string(r.epoch);
    if (r.span != 0) line += ",\"span\":" + std::to_string(r.span);
    if (r.arg != 0) line += ",\"arg\":" + std::to_string(r.arg);
    if (r.label != nullptr) {
      line += ",\"label\":\"";
      escape_into(line, r.label);
      line += '"';
    }
    line += "}\n";
    os << line;
  }
}

bool FlightRecorder::trigger_dump(const std::string& reason, TimePoint at) {
  if (!enabled_) return false;
  record(FlightRecord{at, 0, 0, 0, 0, 0, nullptr, 0, FlightKind::kTrigger});
  if (dumped_ || dump_path_.empty()) return false;
  std::ofstream out(dump_path_);
  if (!out) return false;
  dump(out, reason, at);
  dumped_ = true;
  dump_reason_ = reason;
  return true;
}

void FlightRecorder::clear() {
  head_ = 0;
  size_ = 0;
  recorded_ = 0;
  overwritten_ = 0;
  dumped_ = false;
  dump_reason_.clear();
}

}  // namespace rtpb::telemetry
