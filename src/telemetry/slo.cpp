#include "telemetry/slo.hpp"

#include "telemetry/telemetry.hpp"
#include "util/assert.hpp"

namespace rtpb::telemetry {

void SloMonitor::BurnWindow::reset(Duration window) {
  RTPB_EXPECTS(window > Duration::zero());
  bucket_width_ = Duration{window.nanos() / static_cast<std::int64_t>(kBuckets)};
  if (bucket_width_ <= Duration::zero()) bucket_width_ = nanos(1);
  current_ = -1;
  violations_.fill(0);
  samples_.fill(0);
}

void SloMonitor::BurnWindow::rotate_to(std::int64_t bucket) {
  if (current_ < 0 || bucket - current_ >= static_cast<std::int64_t>(kBuckets)) {
    violations_.fill(0);
    samples_.fill(0);
  } else {
    for (std::int64_t b = current_ + 1; b <= bucket; ++b) {
      const auto slot = static_cast<std::size_t>(b % static_cast<std::int64_t>(kBuckets));
      violations_[slot] = 0;
      samples_[slot] = 0;
    }
  }
  current_ = bucket;
}

void SloMonitor::BurnWindow::add(TimePoint now, bool violating) {
  const std::int64_t bucket = now.nanos() / bucket_width_.nanos();
  if (bucket > current_) rotate_to(bucket);
  const auto slot =
      static_cast<std::size_t>(current_ % static_cast<std::int64_t>(kBuckets));
  ++samples_[slot];
  if (violating) ++violations_[slot];
}

double SloMonitor::BurnWindow::violating_fraction() const {
  std::uint64_t viol = 0;
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    viol += violations_[i];
    total += samples_[i];
  }
  return total == 0 ? 0.0 : static_cast<double>(viol) / static_cast<double>(total);
}

void SloMonitor::enable() { enable(Params{}); }

void SloMonitor::enable(Params p) {
  RTPB_EXPECTS(p.violation_budget > 0.0);
  RTPB_EXPECTS(p.burn_short > Duration::zero());
  RTPB_EXPECTS(p.burn_long > Duration::zero());
  params_ = p;
  enabled_ = true;
}

void SloMonitor::observe(std::uint64_t object, TimePoint now, Duration staleness,
                         Duration window) {
  if (!enabled_ || window <= Duration::zero()) return;
  auto it = objects_.find(object);
  if (it == objects_.end()) {
    it = objects_.emplace(object, ObjectSlo{}).first;
    it->second.burn_short.reset(params_.burn_short);
    it->second.burn_long.reset(params_.burn_long);
  }
  ObjectSlo& slo = it->second;
  slo.window = window;

  const Duration margin = window - staleness;
  if (margin < slo.min_margin) slo.min_margin = margin;
  slo.margins_ms.add(margin.millis());
  ++slo.samples;
  ++total_samples_;

  const bool violating = margin < Duration::zero();
  if (violating) {
    ++slo.violations;
    ++total_violations_;
  }
  if (margin < window.scaled(params_.near_frac_tight)) ++slo.near_tight;
  if (margin < window.scaled(params_.near_frac_loose)) ++slo.near_loose;
  slo.burn_short.add(now, violating);
  slo.burn_long.add(now, violating);
}

void SloMonitor::on_degradation_signal(TimePoint /*now*/, const char* kind) {
  if (!enabled_) return;
  ++degradation_signals_;
  ++signals_by_kind_[kind];
}

double SloMonitor::burn_rate(std::uint64_t object, bool long_window) const {
  const auto it = objects_.find(object);
  if (it == objects_.end()) return 0.0;
  const BurnWindow& w = long_window ? it->second.burn_long : it->second.burn_short;
  return w.violating_fraction() / params_.violation_budget;
}

void SloMonitor::export_to(Registry& reg) const {
  reg.counter("core.slo.samples").add(total_samples_);
  reg.counter("core.slo.violation_samples").add(total_violations_);
  reg.counter("core.slo.degradation_signals").add(degradation_signals_);
  for (const auto& [kind, count] : signals_by_kind_) {
    reg.counter("core.slo.signal." + kind).add(count);
  }
  for (const auto& [id, slo] : objects_) {
    const std::string prefix = "core.slo.obj" + std::to_string(id) + ".";
    reg.counter(prefix + "samples").add(slo.samples);
    reg.counter(prefix + "near_miss_tight").add(slo.near_tight);
    reg.counter(prefix + "near_miss_loose").add(slo.near_loose);
    reg.counter(prefix + "violation_samples").add(slo.violations);
    reg.gauge(prefix + "window_ms").set(slo.window.millis());
    if (slo.samples > 0) {
      reg.gauge(prefix + "margin_min_ms").set(slo.min_margin.millis());
      reg.gauge(prefix + "margin_p01_ms").set(slo.margins_ms.quantile(0.01));
      reg.gauge(prefix + "margin_p10_ms").set(slo.margins_ms.quantile(0.10));
      reg.gauge(prefix + "margin_p50_ms").set(slo.margins_ms.quantile(0.50));
    }
    reg.gauge(prefix + "burn_rate_short").set(slo.burn_short.violating_fraction() /
                                              params_.violation_budget);
    reg.gauge(prefix + "burn_rate_long").set(slo.burn_long.violating_fraction() /
                                             params_.violation_budget);
  }
}

void SloMonitor::clear() {
  total_samples_ = 0;
  total_violations_ = 0;
  degradation_signals_ = 0;
  signals_by_kind_.clear();
  objects_.clear();
}

}  // namespace rtpb::telemetry
