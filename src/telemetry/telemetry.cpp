#include "telemetry/telemetry.hpp"

#include <cstdio>
#include <vector>

#include "util/assert.hpp"

namespace rtpb::telemetry {

const char* event_kind_name(EventKind k) {
  switch (k) {
    case EventKind::kInstant: return "i";
    case EventKind::kBegin: return "B";
    case EventKind::kEnd: return "E";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// Registry.
// ---------------------------------------------------------------------------

Counter& Registry::counter(const std::string& name) {
  const std::lock_guard<std::mutex> guard(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(name, std::make_unique<Counter>(enabled_)).first;
  }
  return *it->second;
}

Gauge& Registry::gauge(const std::string& name) {
  const std::lock_guard<std::mutex> guard(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(name, std::make_unique<Gauge>(enabled_)).first;
  }
  return *it->second;
}

LatencyHistogram& Registry::histogram(const std::string& name) {
  const std::lock_guard<std::mutex> guard(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(name, std::make_unique<LatencyHistogram>(enabled_)).first;
  }
  return *it->second;
}

void Registry::clear() {
  const std::lock_guard<std::mutex> guard(mu_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

namespace {

std::vector<std::string> split_dots(const std::string& name) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (start <= name.size()) {
    const std::size_t dot = name.find('.', start);
    if (dot == std::string::npos) {
      parts.push_back(name.substr(start));
      break;
    }
    parts.push_back(name.substr(start, dot - start));
    start = dot + 1;
  }
  return parts;
}

void json_escape_into(std::string& out, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

/// Emit a sorted map of (dotted name → prerendered JSON value) as nested
/// objects.  Sorted iteration means shared prefixes are adjacent, so a
/// simple open/close-brace walk over the common-prefix depth suffices.
void write_nested(std::string& out, const std::map<std::string, std::string>& leaves) {
  out += '{';
  std::vector<std::string> open;  // currently open path
  bool first_leaf = true;
  for (const auto& [name, value] : leaves) {
    std::vector<std::string> parts = split_dots(name);
    RTPB_ASSERT(!parts.empty());
    // Longest common prefix with the open path (leaf level excluded).
    std::size_t common = 0;
    while (common < open.size() && common + 1 < parts.size() && open[common] == parts[common]) {
      ++common;
    }
    for (std::size_t i = open.size(); i > common; --i) out += '}';
    open.resize(common);
    if (!first_leaf) out += ',';
    first_leaf = false;
    for (std::size_t i = common; i + 1 < parts.size(); ++i) {
      out += '"';
      json_escape_into(out, parts[i]);
      out += "\":{";
      open.push_back(parts[i]);
    }
    out += '"';
    json_escape_into(out, parts.back());
    out += "\":";
    out += value;
  }
  for (std::size_t i = open.size(); i > 0; --i) out += '}';
  out += '}';
}

std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

}  // namespace

std::string Registry::to_json() const {
  // Snapshot every instrument under the registry lock (so a concurrent
  // writer registering new instruments cannot invalidate iteration), then
  // render outside it.  Individual values are atomically loaded / copied
  // under their own locks, giving a coherent point-in-time view.
  std::map<std::string, std::uint64_t> counter_values;
  std::map<std::string, double> gauge_values;
  std::map<std::string, SampleSet> histogram_values;
  {
    const std::lock_guard<std::mutex> guard(mu_);
    for (const auto& [name, c] : counters_) counter_values[name] = c->value();
    for (const auto& [name, g] : gauges_) gauge_values[name] = g->value();
    for (const auto& [name, h] : histograms_) histogram_values[name] = h->snapshot();
  }

  std::map<std::string, std::string> counters;
  for (const auto& [name, v] : counter_values) {
    counters[name] = std::to_string(v);
  }
  std::map<std::string, std::string> gauges;
  for (const auto& [name, v] : gauge_values) {
    gauges[name] = format_double(v);
  }
  std::map<std::string, std::string> histograms;
  for (const auto& [name, s] : histogram_values) {
    std::string v = "{\"count\":" + std::to_string(s.count());
    v += ",\"mean_ms\":" + format_double(s.mean());
    v += ",\"p50_ms\":" + format_double(s.quantile(0.5));
    v += ",\"p90_ms\":" + format_double(s.quantile(0.9));
    v += ",\"p99_ms\":" + format_double(s.quantile(0.99));
    v += ",\"max_ms\":" + format_double(s.max());
    v += '}';
    histograms[name] = v;
  }

  std::string out = "{\"counters\":";
  write_nested(out, counters);
  out += ",\"gauges\":";
  write_nested(out, gauges);
  out += ",\"histograms\":";
  write_nested(out, histograms);
  out += '}';
  return out;
}

// ---------------------------------------------------------------------------
// Hub.
// ---------------------------------------------------------------------------

void Hub::enable(std::size_t event_capacity, std::size_t span_capacity) {
  RTPB_EXPECTS(event_capacity > 0);
  RTPB_EXPECTS(span_capacity > 0);
  enabled_ = true;
  event_capacity_ = event_capacity;
  span_capacity_ = span_capacity;
}

SpanId Hub::begin_span(std::uint64_t object, std::uint64_t version, std::uint64_t epoch) {
  if (!enabled_) return kNoSpan;
  const SpanId id = next_span_++;
  ++spans_started_;

  if (spans_.size() >= span_capacity_ && !span_order_.empty()) {
    const SpanId victim = span_order_.front();
    span_order_.pop_front();
    auto it = spans_.find(victim);
    if (it != spans_.end()) {
      by_key_.erase({it->second.object, it->second.version});
      auto lt = latest_.find(it->second.object);
      if (lt != latest_.end() && lt->second == victim) latest_.erase(lt);
      spans_.erase(it);
    }
  }

  SpanInfo info;
  info.id = id;
  info.object = object;
  info.version = version;
  info.epoch = epoch;
  info.begin = now();
  spans_.emplace(id, std::move(info));
  span_order_.push_back(id);
  by_key_[{object, version}] = id;
  latest_[object] = id;
  return id;
}

SpanId Hub::span_for(std::uint64_t object, std::uint64_t version) const {
  auto it = by_key_.find({object, version});
  return it == by_key_.end() ? kNoSpan : it->second;
}

SpanId Hub::latest_span(std::uint64_t object) const {
  auto it = latest_.find(object);
  return it == latest_.end() ? kNoSpan : it->second;
}

void Hub::mark_violation(SpanId span, const std::string& oracle, std::string detail) {
  if (!enabled_ || span == kNoSpan) return;
  auto it = spans_.find(span);
  if (it == spans_.end()) return;
  if (it->second.violation.empty()) {
    it->second.violation = oracle;
    ++spans_violated_;
  }
  record(span, 0, EventKind::kInstant, "oracle", "violation:" + oracle, std::move(detail));
}

void Hub::record_at(TimePoint at, SpanId span, std::uint32_t node, EventKind kind,
                    std::string track, std::string name, std::string detail) {
  if (!enabled_) return;
  ++recorded_events_;
  if (events_.size() >= event_capacity_) {
    events_.pop_front();
    ++dropped_events_;
  }
  events_.push_back(
      Event{span, at, node, kind, std::move(track), std::move(name), std::move(detail)});
}

void Hub::clear() {
  current_ = kNoSpan;
  spans_started_ = 0;
  spans_violated_ = 0;
  recorded_events_ = 0;
  dropped_events_ = 0;
  events_.clear();
  spans_.clear();
  span_order_.clear();
  by_key_.clear();
  latest_.clear();
  registry_.clear();
  recorder_.clear();
  slo_.clear();
}

}  // namespace rtpb::telemetry
