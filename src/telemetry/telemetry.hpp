// Unified telemetry: a metrics registry (named counters / gauges / latency
// histograms with a dotted component hierarchy) plus causal update spans.
//
// A SpanId is minted per client update at the primary and carried — via the
// Hub's scoped "current span" context — through the CPU scheduler, the
// x-kernel protocol stack, the network fabric and the backup apply path, so
// each update yields a complete latency breakdown and a lost update shows
// exactly which hop ate it.
//
// Everything here is passive and deterministic: the Hub draws no randomness,
// schedules no simulator events, and when disabled every instrument costs a
// single predicted branch.  Components therefore instrument unconditionally;
// chaos-harness trace digests are byte-identical whether or not a Hub is
// attached.
//
// Thread-safety contract (the real-clock substrate reports through this):
//   * Counter / Gauge writes are relaxed atomics — any number of concurrent
//     writer threads, no ordering implied between instruments.
//   * LatencyHistogram::record*() serialises on a per-instrument spinlock;
//     snapshot() returns a consistent copy taken under the same lock.
//   * Registry::counter()/gauge()/histogram() (find-or-create) are guarded
//     by a registry mutex; the references handed out stay stable and can be
//     used concurrently thereafter.  to_json() snapshots every instrument
//     under the registry lock, so an export racing writers sees a coherent
//     point-in-time view.
//   * Span/event recording (begin_span, record, ScopedSpan) remains
//     single-threaded by design: it is fed by the deterministic simulator
//     loop only.  enable()/disable()/clear() likewise happen outside any
//     concurrent writer window.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>

#include "telemetry/flight_recorder.hpp"
#include "telemetry/slo.hpp"
#include "util/stats.hpp"
#include "util/time.hpp"

namespace rtpb::telemetry {

/// Causal span identifier: one per client update (object, version) pair.
/// 0 means "no span" — events carrying it are plain track events.
using SpanId = std::uint64_t;
inline constexpr SpanId kNoSpan = 0;

/// Tiny test-and-set lock for per-histogram sample buffers: writers hold it
/// for a few instructions (append one double), so spinning beats a futex.
class SpinLock {
 public:
  void lock() {
    while (flag_.test_and_set(std::memory_order_acquire)) {
    }
  }
  void unlock() { flag_.clear(std::memory_order_release); }

 private:
  std::atomic_flag flag_ = ATOMIC_FLAG_INIT;
};

// ---------------------------------------------------------------------------
// Instruments.  Each holds a pointer to the owning Hub's enabled flag, so a
// disabled instrument is one load + one branch.  References handed out by
// the Registry are stable for the Registry's lifetime.
// ---------------------------------------------------------------------------

class Counter {
 public:
  explicit Counter(const bool* enabled) : enabled_(enabled) {}
  void add(std::uint64_t n = 1) {
    if (*enabled_) value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  const bool* enabled_;
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  explicit Gauge(const bool* enabled) : enabled_(enabled) {}
  void set(double v) {
    if (*enabled_) value_.store(v, std::memory_order_relaxed);
  }
  [[nodiscard]] double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  const bool* enabled_;
  std::atomic<double> value_{0.0};
};

/// Latency distribution; retains samples so snapshots report exact
/// quantiles (sim-scale sample counts make this affordable).
class LatencyHistogram {
 public:
  explicit LatencyHistogram(const bool* enabled) : enabled_(enabled) {}
  void record(Duration d) { record_ms(d.millis()); }
  void record_ms(double ms) {
    if (!*enabled_) return;
    const std::lock_guard<SpinLock> guard(lock_);
    samples_.add(ms);
  }
  /// Consistent copy of the sample buffer (taken under the writer lock).
  [[nodiscard]] SampleSet snapshot() const {
    const std::lock_guard<SpinLock> guard(lock_);
    return samples_;
  }
  /// Convenience alias for snapshot(); note this copies.
  [[nodiscard]] SampleSet samples() const { return snapshot(); }

 private:
  const bool* enabled_;
  mutable SpinLock lock_;
  SampleSet samples_;
};

/// Named-instrument registry.  Names are dotted component paths
/// ("net.link.drops", "core.backup.applies", "sched.preemptions"); the
/// JSON snapshot nests along the dots.  Instruments are created on first
/// use and live as long as the registry.
class Registry {
 public:
  explicit Registry(const bool* enabled) : enabled_(enabled) {}

  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  [[nodiscard]] Counter& counter(const std::string& name);
  [[nodiscard]] Gauge& gauge(const std::string& name);
  [[nodiscard]] LatencyHistogram& histogram(const std::string& name);

  // Whole-map accessors for exporters.  These return references into the
  // registry; call them only when no thread can be registering new
  // instruments (e.g. post-run export).
  [[nodiscard]] const std::map<std::string, std::unique_ptr<Counter>>& counters() const {
    return counters_;
  }
  [[nodiscard]] const std::map<std::string, std::unique_ptr<Gauge>>& gauges() const {
    return gauges_;
  }
  [[nodiscard]] const std::map<std::string, std::unique_ptr<LatencyHistogram>>& histograms()
      const {
    return histograms_;
  }

  /// Nested-JSON snapshot of every instrument, dots becoming object levels.
  /// Safe to call while writer threads are live: instrument values are
  /// snapshotted under the registry mutex, then rendered outside it.
  [[nodiscard]] std::string to_json() const;

  void clear();

 private:
  const bool* enabled_;
  mutable std::mutex mu_;  ///< guards map mutation (find-or-create, clear)
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<LatencyHistogram>> histograms_;
};

// ---------------------------------------------------------------------------
// Span events.
// ---------------------------------------------------------------------------

enum class EventKind : std::uint8_t {
  kInstant,  ///< point event on a track (hop, drop, apply, …)
  kBegin,    ///< open a duration slice on a track (CPU job possession)
  kEnd,      ///< close the most recent open slice on the same track
};

[[nodiscard]] const char* event_kind_name(EventKind k);

struct Event {
  SpanId span = kNoSpan;   ///< causal span, or kNoSpan for plain track events
  TimePoint at{};
  std::uint32_t node = 0;  ///< originating host (0 = not node-scoped)
  EventKind kind = EventKind::kInstant;
  std::string track;       ///< timeline this renders on, e.g. "node1/udplite"
  std::string name;        ///< short event name, e.g. "udp-push"
  std::string detail;      ///< free-form context
};

struct SpanInfo {
  SpanId id = kNoSpan;
  std::uint64_t object = 0;
  std::uint64_t version = 0;
  /// Replication epoch of the primary that minted this update (0 when the
  /// producer predates epochs or does not carry one).
  std::uint64_t epoch = 0;
  TimePoint begin{};
  /// Set by mark_violation(): which oracle blamed this update, if any.
  std::string violation;
};

// ---------------------------------------------------------------------------
// Hub: the per-simulation telemetry runtime.
// ---------------------------------------------------------------------------

class Hub {
 public:
  Hub() : registry_(&enabled_) {}

  Hub(const Hub&) = delete;
  Hub& operator=(const Hub&) = delete;

  /// Start collecting.  At most `event_capacity` most-recent events and
  /// `span_capacity` most-recent spans are retained (older ones evicted,
  /// counted in dropped_events()).
  void enable(std::size_t event_capacity = 1u << 18, std::size_t span_capacity = 1u << 16);
  void disable() { enabled_ = false; }
  [[nodiscard]] bool enabled() const { return enabled_; }

  /// Timestamp source for events recorded without an explicit time; the
  /// simulator installs its virtual clock here.
  void set_clock(std::function<TimePoint()> clock) { clock_ = std::move(clock); }
  [[nodiscard]] TimePoint now() const { return clock_ ? clock_() : TimePoint{}; }

  [[nodiscard]] Registry& registry() { return registry_; }
  [[nodiscard]] const Registry& registry() const { return registry_; }

  /// Flight recorder: a fixed-capacity ring of compact binary events,
  /// enabled independently of the metrics/span machinery (it costs nothing
  /// in steady state, so chaos runs keep it on even with telemetry off).
  [[nodiscard]] FlightRecorder& flight_recorder() { return recorder_; }
  [[nodiscard]] const FlightRecorder& flight_recorder() const { return recorder_; }

  /// Temporal-slack SLO monitor (margin vs the negotiated window δ);
  /// enabled independently, exported as core.slo.* via export_to().
  [[nodiscard]] SloMonitor& slo() { return slo_; }
  [[nodiscard]] const SloMonitor& slo() const { return slo_; }

  // ---- spans ----
  /// Mint the span for update (object, version); remembers it as the
  /// object's latest span.  `epoch` tags the span with the minting
  /// primary's replication epoch.  Returns kNoSpan when disabled.
  SpanId begin_span(std::uint64_t object, std::uint64_t version, std::uint64_t epoch = 0);
  /// The span minted for (object, version), or kNoSpan if unknown/evicted.
  [[nodiscard]] SpanId span_for(std::uint64_t object, std::uint64_t version) const;
  /// The most recently minted span for `object`, or kNoSpan.
  [[nodiscard]] SpanId latest_span(std::uint64_t object) const;
  /// Blame `span` for an oracle violation: flags the SpanInfo and records a
  /// violation event attached to it.
  void mark_violation(SpanId span, const std::string& oracle, std::string detail = {});

  [[nodiscard]] const std::map<SpanId, SpanInfo>& spans() const { return spans_; }
  [[nodiscard]] std::uint64_t spans_started() const { return spans_started_; }
  [[nodiscard]] std::uint64_t spans_violated() const { return spans_violated_; }

  // ---- context ----
  /// The span currently being worked on (propagated through synchronous
  /// protocol pushes/demuxes and across simulated frame delivery).
  [[nodiscard]] SpanId current_span() const { return current_; }

  // ---- events ----
  void record(SpanId span, std::uint32_t node, EventKind kind, std::string track,
              std::string name, std::string detail = {}) {
    record_at(now(), span, node, kind, std::move(track), std::move(name), std::move(detail));
  }
  /// Record with an explicit timestamp (retroactive scheduling events).
  void record_at(TimePoint at, SpanId span, std::uint32_t node, EventKind kind,
                 std::string track, std::string name, std::string detail = {});

  [[nodiscard]] const std::deque<Event>& events() const { return events_; }
  [[nodiscard]] std::uint64_t recorded_events() const { return recorded_events_; }
  [[nodiscard]] std::uint64_t dropped_events() const { return dropped_events_; }

  /// Forget all spans, events, instrument values, flight-recorder rings and
  /// SLO accounting (not enabled state).
  void clear();

 private:
  friend class ScopedSpan;

  bool enabled_ = false;
  std::function<TimePoint()> clock_;
  Registry registry_;
  FlightRecorder recorder_;
  SloMonitor slo_;

  SpanId current_ = kNoSpan;
  SpanId next_span_ = 1;
  std::uint64_t spans_started_ = 0;
  std::uint64_t spans_violated_ = 0;

  std::size_t event_capacity_ = 0;
  std::size_t span_capacity_ = 0;
  std::uint64_t recorded_events_ = 0;
  std::uint64_t dropped_events_ = 0;
  std::deque<Event> events_;

  std::map<SpanId, SpanInfo> spans_;
  std::deque<SpanId> span_order_;                       ///< FIFO for eviction
  std::map<std::pair<std::uint64_t, std::uint64_t>, SpanId> by_key_;  ///< (object, version)
  std::map<std::uint64_t, SpanId> latest_;              ///< object → newest span
};

/// RAII "current span" context.  Protocol layers record against
/// hub.current_span() without knowing what an update is; the sender and the
/// network delivery path scope the right span around their synchronous work.
class ScopedSpan {
 public:
  ScopedSpan(Hub& hub, SpanId span) : hub_(hub), prev_(hub.current_) { hub_.current_ = span; }
  ~ScopedSpan() { hub_.current_ = prev_; }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  Hub& hub_;
  SpanId prev_;
};

}  // namespace rtpb::telemetry
