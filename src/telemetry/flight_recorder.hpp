// Flight recorder: a fixed-capacity ring of compact binary event records
// (role changes, epochs, sends/acks, shed/downgrade decisions, oracle
// checks).  Recording costs O(1) and performs no steady-state allocations —
// the ring is pre-allocated at enable() — so chaos and bench runs keep it
// on without perturbing the alloc-counting gates.
//
// On an oracle violation, a crash fault, or an explicit trigger, the
// recorder dumps the last-N events as a versioned post-mortem JSONL
// artifact ({"type":"postmortem",...} header followed by {"type":"fr",...}
// records, oldest first) that tools/trace_inspect renders.
//
// Like the rest of the telemetry plane this is a pure observer: it draws no
// randomness and schedules nothing, so trace digests are byte-identical
// with the recorder on or off.  Recording is single-threaded (fed by the
// deterministic simulator loop).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "util/time.hpp"

namespace rtpb::telemetry {

enum class FlightKind : std::uint8_t {
  kRoleChange,     ///< arg: 1 = promoted to primary, 0 = stepped down
  kEpoch,          ///< epoch adopted (field `epoch`)
  kUpdateSend,     ///< arg: 1 = retransmission
  kUpdateBatch,    ///< arg: entries coalesced in the batch frame
  kUpdateApply,    ///< backup applied an update
  kAck,            ///< arg: acking peer node
  kRetransmitReq,  ///< backup nacked a missing version (arg: blamed span ok)
  kShed,           ///< staged update shed under overload
  kQosDowngrade,   ///< window downgrade decided / received
  kQosRestore,     ///< window restore decided / received
  kCrash,          ///< node crash fault (triggers a dump)
  kOracleCheck,    ///< periodic oracle sweep (arg: violations so far)
  kViolation,      ///< oracle violation (label: oracle; triggers a dump)
  kTrigger,        ///< explicit dump trigger
};

[[nodiscard]] const char* flight_kind_name(FlightKind k);

/// One ring slot.  Plain data, no owned memory: `label` must point at a
/// string literal (static storage) or be null.
struct FlightRecord {
  TimePoint at{};
  std::uint64_t span = 0;    ///< causal span, 0 = none
  std::uint64_t object = 0;
  std::uint64_t version = 0;
  std::uint64_t epoch = 0;
  std::int64_t arg = 0;      ///< kind-specific scalar (see FlightKind)
  const char* label = nullptr;  ///< optional static-string annotation
  std::uint32_t node = 0;
  FlightKind kind = FlightKind::kRoleChange;
};

class FlightRecorder {
 public:
  FlightRecorder() = default;
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Pre-allocate the ring and start recording.  The one allocation
  /// happens here; record() never allocates.
  void enable(std::size_t capacity = 8192);
  void disable() { enabled_ = false; }
  [[nodiscard]] bool enabled() const { return enabled_; }

  /// O(1): copy the record into the ring, overwriting the oldest slot
  /// once full.  No-op when disabled.
  void record(const FlightRecord& r) {
    if (!enabled_) return;
    ring_[head_] = r;
    head_ = head_ + 1 == ring_.size() ? 0 : head_ + 1;
    if (size_ < ring_.size()) {
      ++size_;
    } else {
      ++overwritten_;
    }
    ++recorded_;
  }

  [[nodiscard]] std::uint64_t recorded() const { return recorded_; }
  [[nodiscard]] std::uint64_t overwritten() const { return overwritten_; }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] std::size_t capacity() const { return ring_.size(); }

  /// Retained records, oldest first.
  [[nodiscard]] std::vector<FlightRecord> snapshot() const;

  /// Where trigger_dump() writes the post-mortem artifact.  Empty (the
  /// default) means triggers are recorded in the ring but nothing is
  /// written to disk.
  void set_dump_path(std::string path) { dump_path_ = std::move(path); }
  [[nodiscard]] const std::string& dump_path() const { return dump_path_; }

  /// Dump the retained ring as a versioned post-mortem artifact to the
  /// configured path.  Only the *first* trigger writes (the events nearest
  /// the first fault are the interesting ones); later triggers are
  /// recorded in the ring but do not overwrite the artifact.  Returns true
  /// if the artifact was written by this call.
  bool trigger_dump(const std::string& reason, TimePoint at);
  [[nodiscard]] bool dumped() const { return dumped_; }
  /// Reason of the trigger that wrote the artifact; empty if none did.
  [[nodiscard]] const std::string& dump_reason() const { return dump_reason_; }

  /// Serialise the retained ring as post-mortem JSONL to `os`.
  void dump(std::ostream& os, const std::string& reason, TimePoint at) const;

  /// Forget recorded events and dump state; keeps enablement + capacity.
  void clear();

 private:
  bool enabled_ = false;
  bool dumped_ = false;
  std::size_t head_ = 0;  ///< next slot to write
  std::size_t size_ = 0;  ///< retained records
  std::uint64_t recorded_ = 0;
  std::uint64_t overwritten_ = 0;
  std::vector<FlightRecord> ring_;
  std::string dump_path_;
  std::string dump_reason_;
};

}  // namespace rtpb::telemetry
