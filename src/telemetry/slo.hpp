// Temporal-slack SLO monitor.
//
// RTPB's guarantee is a *temporal* window δ per object: the backup may lag
// the primary, but never by more than δ.  This monitor watches the *margin*
// — δ minus the observed staleness — online, per object, the quantity an
// operator (or a latency fast path exploiting the slack) actually cares
// about:
//
//   * min / percentile margin over the run (how close did we sail?),
//   * near-miss counters at configurable fractions of δ (margin below
//     10% / 25% of the window),
//   * multi-window burn rate of the violation budget: the fraction of
//     samples violating δ over a short and a long trailing window,
//     normalised by the allowed budget (SRE-style burn rate > 1 means the
//     budget is being spent faster than sustainable).
//
// Samples arrive from the replication path itself (backup applies and the
// oracle sweep) and from degradation signals (shed / missed-window /
// overload triggers) — no timers of its own, no randomness, no scheduled
// events: a pure observer, safe to enable without moving a single
// simulator event.  Steady-state accounting is O(1) per sample with no
// allocations except the margin SampleSet used for end-of-run percentiles.
//
// Exported as core.slo.* via export_to().
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>

#include "util/stats.hpp"
#include "util/time.hpp"

namespace rtpb::telemetry {

class Registry;

class SloMonitor {
 public:
  struct Params {
    double near_frac_tight = 0.10;  ///< near-miss: margin < 10% of δ
    double near_frac_loose = 0.25;  ///< near-miss: margin < 25% of δ
    /// Allowed violating fraction of samples (the error budget): burn
    /// rate = violating-fraction / budget, so > 1 burns the budget.
    double violation_budget = 0.01;
    Duration burn_short = seconds(1);  ///< fast-burn trailing window
    Duration burn_long = seconds(10);  ///< slow-burn trailing window
  };

  /// Trailing-window violation accounting: a ring of fixed time buckets
  /// rotated in place — O(1) per sample, no allocations.
  class BurnWindow {
   public:
    static constexpr std::size_t kBuckets = 8;

    void reset(Duration window);
    void add(TimePoint now, bool violating);
    /// Violating fraction over the trailing window (0 if no samples).
    [[nodiscard]] double violating_fraction() const;

   private:
    void rotate_to(std::int64_t bucket);

    Duration bucket_width_{};
    std::int64_t current_ = -1;  ///< absolute index of the newest bucket
    std::array<std::uint32_t, kBuckets> violations_{};
    std::array<std::uint32_t, kBuckets> samples_{};
  };

  struct ObjectSlo {
    Duration window{};          ///< most recent negotiated δ seen
    Duration min_margin = Duration::max();
    std::uint64_t samples = 0;
    std::uint64_t near_tight = 0;  ///< margin < near_frac_tight · δ
    std::uint64_t near_loose = 0;  ///< margin < near_frac_loose · δ
    std::uint64_t violations = 0;  ///< margin < 0 (staleness exceeded δ)
    SampleSet margins_ms;          ///< retained for percentile export
    BurnWindow burn_short;
    BurnWindow burn_long;
  };

  void enable(Params p);
  void enable();  ///< enable with default Params
  void disable() { enabled_ = false; }
  [[nodiscard]] bool enabled() const { return enabled_; }
  [[nodiscard]] const Params& params() const { return params_; }

  /// One staleness observation for `object`: the backup lagged the primary
  /// by `staleness`, judged against the currently negotiated window δ.
  /// Margin = δ − staleness; negative margin is a violation sample.
  void observe(std::uint64_t object, TimePoint now, Duration staleness, Duration window);

  /// Degradation signal (shed / missed-window / overload trigger), fed by
  /// the DegradationController.  `kind` must be a string literal.
  void on_degradation_signal(TimePoint now, const char* kind);

  [[nodiscard]] std::uint64_t total_samples() const { return total_samples_; }
  [[nodiscard]] std::uint64_t total_violations() const { return total_violations_; }
  [[nodiscard]] std::uint64_t degradation_signals() const { return degradation_signals_; }
  [[nodiscard]] const std::map<std::uint64_t, ObjectSlo>& objects() const { return objects_; }
  /// Burn rate (violating fraction / budget) for `object` over the short
  /// or long trailing window; 0 for unknown objects.
  [[nodiscard]] double burn_rate(std::uint64_t object, bool long_window) const;

  /// Write the core.slo.* snapshot into `reg`: global counters plus
  /// per-object margin gauges, near-miss counters and burn rates.
  /// Call once per run (counters are add-only).
  void export_to(Registry& reg) const;

  /// Forget all accounting; keeps enablement and params.
  void clear();

 private:
  bool enabled_ = false;
  Params params_{};
  std::uint64_t total_samples_ = 0;
  std::uint64_t total_violations_ = 0;
  std::uint64_t degradation_signals_ = 0;
  std::map<std::string, std::uint64_t> signals_by_kind_;
  std::map<std::uint64_t, ObjectSlo> objects_;
};

}  // namespace rtpb::telemetry
