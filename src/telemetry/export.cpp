#include "telemetry/export.hpp"

#include <cstdio>
#include <map>
#include <ostream>
#include <set>
#include <string>

namespace rtpb::telemetry {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

std::string micros_ts(TimePoint t) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.3f", static_cast<double>(t.nanos()) / 1e3);
  return buf;
}

std::string millis_ts(TimePoint t) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.6f", t.millis());
  return buf;
}

std::string span_title(const SpanInfo& info) {
  return "obj" + std::to_string(info.object) + " v" + std::to_string(info.version);
}

}  // namespace

void write_chrome_trace(const Hub& hub, std::ostream& os) {
  // Stable (pid, tid) assignment: pid = originating node (0 = the
  // simulation-global process), tid = rank of the track name within its pid.
  std::map<std::uint32_t, std::set<std::string>> tracks_by_pid;
  for (const Event& e : hub.events()) {
    tracks_by_pid[e.node].insert(e.track);
  }
  std::map<std::pair<std::uint32_t, std::string>, int> tid_of;
  for (const auto& [pid, tracks] : tracks_by_pid) {
    int tid = 1;
    for (const std::string& track : tracks) tid_of[{pid, track}] = tid++;
  }

  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  const auto emit = [&os, &first](const std::string& json) {
    if (!first) os << ",";
    first = false;
    os << "\n" << json;
  };

  // Process / thread naming metadata.
  for (const auto& [pid, tracks] : tracks_by_pid) {
    const std::string pname = pid == 0 ? "sim" : "node" + std::to_string(pid);
    emit("{\"ph\":\"M\",\"pid\":" + std::to_string(pid) +
         ",\"name\":\"process_name\",\"args\":{\"name\":\"" + json_escape(pname) + "\"}}");
    for (const std::string& track : tracks) {
      emit("{\"ph\":\"M\",\"pid\":" + std::to_string(pid) +
           ",\"tid\":" + std::to_string(tid_of[{pid, track}]) +
           ",\"name\":\"thread_name\",\"args\":{\"name\":\"" + json_escape(track) + "\"}}");
    }
  }

  // Track events: duration slices (CPU possession) and instants (hops).
  // First/last timestamps per span double as the async span bounds.
  std::map<SpanId, std::pair<TimePoint, TimePoint>> span_bounds;
  for (const Event& e : hub.events()) {
    if (e.span != kNoSpan) {
      auto [it, inserted] = span_bounds.try_emplace(e.span, std::make_pair(e.at, e.at));
      if (!inserted) {
        if (e.at < it->second.first) it->second.first = e.at;
        if (e.at > it->second.second) it->second.second = e.at;
      }
    }
    std::string line = "{\"ph\":\"" + std::string(event_kind_name(e.kind)) + "\",\"pid\":" +
                       std::to_string(e.node) +
                       ",\"tid\":" + std::to_string(tid_of[{e.node, e.track}]) +
                       ",\"ts\":" + micros_ts(e.at) + ",\"name\":\"" + json_escape(e.name) +
                       "\",\"cat\":\"rtpb\"";
    if (e.kind == EventKind::kInstant) line += ",\"s\":\"t\"";
    line += ",\"args\":{";
    line += "\"span\":" + std::to_string(e.span);
    if (!e.detail.empty()) line += ",\"detail\":\"" + json_escape(e.detail) + "\"";
    line += "}}";
    emit(line);
  }

  // One nestable-async track per update span: b at mint, n per hop, e at the
  // last recorded hop.  Perfetto renders each id as one row, so an update's
  // primary → net → backup journey reads left to right.
  for (const auto& [id, info] : hub.spans()) {
    auto bounds = span_bounds.find(id);
    const TimePoint begin = info.begin;
    const TimePoint end =
        bounds == span_bounds.end() ? info.begin : std::max(info.begin, bounds->second.second);
    std::string args = "\"object\":" + std::to_string(info.object) +
                       ",\"version\":" + std::to_string(info.version) +
                       ",\"epoch\":" + std::to_string(info.epoch);
    if (!info.violation.empty()) args += ",\"violation\":\"" + json_escape(info.violation) + "\"";
    emit("{\"ph\":\"b\",\"cat\":\"update\",\"id\":" + std::to_string(id) +
         ",\"pid\":0,\"tid\":0,\"ts\":" + micros_ts(begin) + ",\"name\":\"" +
         json_escape(span_title(info)) + "\",\"args\":{" + args + "}}");
    emit("{\"ph\":\"e\",\"cat\":\"update\",\"id\":" + std::to_string(id) +
         ",\"pid\":0,\"tid\":0,\"ts\":" + micros_ts(end) + ",\"name\":\"" +
         json_escape(span_title(info)) + "\",\"args\":{}}");
  }
  for (const Event& e : hub.events()) {
    if (e.span == kNoSpan) continue;
    emit("{\"ph\":\"n\",\"cat\":\"update\",\"id\":" + std::to_string(e.span) +
         ",\"pid\":0,\"tid\":0,\"ts\":" + micros_ts(e.at) + ",\"name\":\"" +
         json_escape(e.name) + "\",\"args\":{\"track\":\"" + json_escape(e.track) + "\"}}");
  }

  os << "\n]}\n";
}

void write_jsonl(const Hub& hub, std::ostream& os) {
  os << "{\"type\":\"meta\",\"spans_started\":" << hub.spans_started()
     << ",\"spans_violated\":" << hub.spans_violated()
     << ",\"events_recorded\":" << hub.recorded_events()
     << ",\"events_dropped\":" << hub.dropped_events() << "}\n";
  for (const auto& [id, info] : hub.spans()) {
    os << "{\"type\":\"span\",\"span\":" << id << ",\"object\":" << info.object
       << ",\"version\":" << info.version << ",\"epoch\":" << info.epoch
       << ",\"begin_ms\":" << millis_ts(info.begin);
    if (!info.violation.empty()) {
      os << ",\"violation\":\"" << json_escape(info.violation) << "\"";
    }
    os << "}\n";
  }
  for (const Event& e : hub.events()) {
    os << "{\"type\":\"event\",\"span\":" << e.span << ",\"ts_ms\":" << millis_ts(e.at)
       << ",\"node\":" << e.node << ",\"kind\":\"" << event_kind_name(e.kind)
       << "\",\"track\":\"" << json_escape(e.track) << "\",\"name\":\"" << json_escape(e.name)
       << "\"";
    if (!e.detail.empty()) os << ",\"detail\":\"" << json_escape(e.detail) << "\"";
    os << "}\n";
  }
  // End-of-run registry snapshot, one line per instrument, so downstream
  // tools (trace_inspect) can read final counters without re-deriving them
  // from the event stream.
  for (const auto& [name, counter] : hub.registry().counters()) {
    os << "{\"type\":\"counter\",\"name\":\"" << json_escape(name)
       << "\",\"value\":" << counter->value() << "}\n";
  }
  for (const auto& [name, gauge] : hub.registry().gauges()) {
    char buf[48];
    std::snprintf(buf, sizeof buf, "%.6g", gauge->value());
    os << "{\"type\":\"gauge\",\"name\":\"" << json_escape(name) << "\",\"value\":" << buf
       << "}\n";
  }
}

}  // namespace rtpb::telemetry
