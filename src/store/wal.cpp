#include "store/wal.hpp"

#include <array>

namespace rtpb::store {
namespace {

// ---- record body codecs -----------------------------------------------
//
// Same discipline as the wire codec: exact little helpers per struct,
// big-endian integers via ByteWriter/ByteReader, and decoders that
// validate `ok() && at_end()` so trailing garbage is malformation, not
// slack.

void put_spec(ByteWriter& w, const core::ObjectSpec& spec) {
  w.u32(spec.id);
  w.string(spec.name);
  w.u32(spec.size_bytes);
  w.duration(spec.client_period);
  w.duration(spec.client_exec);
  w.duration(spec.update_exec);
  w.duration(spec.delta_primary);
  w.duration(spec.delta_backup);
}

core::ObjectSpec get_spec(ByteReader& r) {
  core::ObjectSpec spec;
  spec.id = r.u32();
  spec.name = r.string();
  spec.size_bytes = r.u32();
  spec.client_period = r.duration();
  spec.client_exec = r.duration();
  spec.update_exec = r.duration();
  spec.delta_primary = r.duration();
  spec.delta_backup = r.duration();
  return spec;
}

// Minimum encoded sizes, used to reject absurd counts before allocating.
constexpr std::size_t kMinSpec = 4 + 4 + 4 + 5 * 8;          // empty name
constexpr std::size_t kMinState = kMinSpec + 4 + 8 + 8 + 8;  // empty value

}  // namespace

std::uint32_t crc32(std::span<const std::uint8_t> data) {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (const std::uint8_t b : data) crc = table[(crc ^ b) & 0xFFu] ^ (crc >> 8);
  return crc ^ 0xFFFFFFFFu;
}

Bytes encode(const InsertRecord& r) {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(RecordKind::kInsert));
  put_spec(w, r.spec);
  return std::move(w).take();
}

Bytes encode(const WriteRecord& r) {
  ByteWriter w(1 + 4 + 8 + 8 + 8 + 4 + r.value.size());
  w.u8(static_cast<std::uint8_t>(RecordKind::kWrite));
  w.u32(r.object);
  w.u64(r.version);
  w.timepoint(r.timestamp);
  w.timepoint(r.origin_timestamp);
  w.bytes(r.value);
  return std::move(w).take();
}

Bytes encode(const MetaRecord& r) {
  ByteWriter w(1 + 8 + 8);
  w.u8(static_cast<std::uint8_t>(RecordKind::kMeta));
  w.u64(r.epoch);
  w.u64(r.next_transfer_id);
  return std::move(w).take();
}

Bytes encode(const CheckpointRecord& r) {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(RecordKind::kCheckpoint));
  w.u64(r.epoch);
  w.u64(r.next_transfer_id);
  w.u32(static_cast<std::uint32_t>(r.states.size()));
  for (const core::ObjectState& s : r.states) {
    put_spec(w, s.spec);
    w.bytes(s.value);
    w.u64(s.version);
    w.timepoint(s.timestamp);
    w.timepoint(s.origin_timestamp);
  }
  return std::move(w).take();
}

std::optional<AnyRecord> decode_record(std::span<const std::uint8_t> payload) {
  ByteReader r(payload);
  AnyRecord out;
  const std::uint8_t kind = r.u8();
  switch (kind) {
    case static_cast<std::uint8_t>(RecordKind::kInsert): {
      out.kind = RecordKind::kInsert;
      InsertRecord rec;
      rec.spec = get_spec(r);
      out.insert = std::move(rec);
      break;
    }
    case static_cast<std::uint8_t>(RecordKind::kWrite): {
      out.kind = RecordKind::kWrite;
      WriteRecord rec;
      rec.object = r.u32();
      rec.version = r.u64();
      rec.timestamp = r.timepoint();
      rec.origin_timestamp = r.timepoint();
      rec.value = r.bytes();
      out.write = std::move(rec);
      break;
    }
    case static_cast<std::uint8_t>(RecordKind::kMeta): {
      out.kind = RecordKind::kMeta;
      MetaRecord rec;
      rec.epoch = r.u64();
      rec.next_transfer_id = r.u64();
      out.meta = rec;
      break;
    }
    case static_cast<std::uint8_t>(RecordKind::kCheckpoint): {
      out.kind = RecordKind::kCheckpoint;
      CheckpointRecord rec;
      rec.epoch = r.u64();
      rec.next_transfer_id = r.u64();
      const std::uint32_t n = r.u32();
      // Adversarial count guard: a forged count must not drive a huge
      // reserve — every state needs at least kMinState bytes.
      if (static_cast<std::uint64_t>(n) * kMinState > r.remaining()) return std::nullopt;
      rec.states.reserve(n);
      for (std::uint32_t i = 0; i < n; ++i) {
        core::ObjectState s;
        s.spec = get_spec(r);
        s.value = r.bytes();
        s.version = r.u64();
        s.timestamp = r.timepoint();
        s.origin_timestamp = r.timepoint();
        rec.states.push_back(std::move(s));
      }
      out.checkpoint = std::move(rec);
      break;
    }
    default:
      return std::nullopt;
  }
  if (!r.ok() || !r.at_end()) return std::nullopt;
  return out;
}

Bytes frame_record(std::span<const std::uint8_t> payload) {
  ByteWriter w(4 + 4 + payload.size());
  w.u32(static_cast<std::uint32_t>(payload.size()));
  w.u32(crc32(payload));
  w.raw(payload);
  return std::move(w).take();
}

ReplayStats replay(std::span<const std::uint8_t> log,
                   const std::function<void(std::span<const std::uint8_t>)>& fn) {
  ReplayStats stats;
  std::size_t pos = 0;
  while (pos < log.size()) {
    if (log.size() - pos < 8) break;  // torn frame header
    std::uint32_t len = 0;
    std::uint32_t crc = 0;
    for (int i = 0; i < 4; ++i) len = (len << 8) | log[pos + static_cast<std::size_t>(i)];
    for (int i = 4; i < 8; ++i) crc = (crc << 8) | log[pos + static_cast<std::size_t>(i)];
    if (log.size() - pos - 8 < len) break;  // torn payload
    const auto payload = log.subspan(pos + 8, len);
    if (crc32(payload) != crc) break;  // bit-rot or a torn rewrite
    fn(payload);
    ++stats.records;
    pos += 8 + len;
  }
  stats.torn_bytes = log.size() - pos;
  stats.clean = stats.torn_bytes == 0;
  return stats;
}

}  // namespace rtpb::store
