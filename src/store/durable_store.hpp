// Durability layer feeding core::ObjectStore: a CRC-framed write-ahead
// log plus periodic full-snapshot checkpoints, each on its own
// StorageDevice.
//
// Discipline (log-before-apply): the replica appends the WAL record FIRST
// and only mutates its in-memory store — and acknowledges the client —
// when the append succeeded.  An append failure is fail-stop: the replica
// crashes with the write unapplied and unacked, so recovered state is
// never behind anything a client was told about.
//
// Checkpoints are append-only on the checkpoint device with
// last-valid-checkpoint-wins recovery; the WAL is truncated only AFTER
// the checkpoint append succeeded.  A crash between the two leaves WAL
// records that are already inside the checkpoint — replay is idempotent
// (version-gated) so that window is harmless.
#pragma once

#include <cstdint>
#include <vector>

#include "core/object_store.hpp"
#include "core/types.hpp"
#include "store/device.hpp"
#include "store/wal.hpp"

namespace rtpb::store {

struct RecoveryResult {
  std::vector<core::ObjectState> states;  ///< ascending object id
  std::uint64_t epoch = 0;
  std::uint64_t next_transfer_id = 1;
  std::size_t checkpoint_records = 0;  ///< valid checkpoints found
  std::size_t wal_records = 0;         ///< valid WAL records replayed
  bool wal_torn = false;               ///< WAL had a discarded torn tail
  bool checkpoint_torn = false;        ///< checkpoint device had one
};

class DurableStore {
 public:
  /// `checkpoint_every`: WAL records between automatic checkpoint
  /// suggestions (should_checkpoint()).
  DurableStore(StorageDevice& wal, StorageDevice& checkpoint,
               std::size_t checkpoint_every = 64);

  // Each logger returns false on device failure — the caller must treat
  // that as fail-stop and NOT apply the mutation.
  [[nodiscard]] bool log_insert(const core::ObjectSpec& spec);
  [[nodiscard]] bool log_write(core::ObjectId id, std::uint64_t version, TimePoint timestamp,
                               TimePoint origin_timestamp, const Bytes& value);
  [[nodiscard]] bool log_meta(std::uint64_t epoch, std::uint64_t next_transfer_id);

  [[nodiscard]] bool should_checkpoint() const {
    return records_since_checkpoint_ >= checkpoint_every_;
  }

  /// Snapshot the full store state to the checkpoint device, then
  /// truncate the WAL.  Returns false (fail-stop) on device failure.
  [[nodiscard]] bool checkpoint(const std::vector<core::ObjectState>& states,
                                std::uint64_t epoch, std::uint64_t next_transfer_id);

  /// Rebuild state from the devices: last valid checkpoint, then the WAL
  /// tail on top (insert/write version-gated, meta monotone).
  [[nodiscard]] RecoveryResult recover();

  // ---- plain statistics ----
  [[nodiscard]] std::uint64_t wal_appends() const { return wal_appends_; }
  [[nodiscard]] std::uint64_t wal_bytes() const { return wal_bytes_; }
  [[nodiscard]] std::uint64_t checkpoints() const { return checkpoints_; }
  [[nodiscard]] std::uint64_t recoveries() const { return recoveries_; }
  [[nodiscard]] StorageDevice& wal_device() { return wal_; }
  [[nodiscard]] StorageDevice& checkpoint_device() { return checkpoint_; }

 private:
  [[nodiscard]] bool append_wal(const Bytes& payload);

  StorageDevice& wal_;
  StorageDevice& checkpoint_;
  std::size_t checkpoint_every_;
  std::size_t records_since_checkpoint_ = 0;
  std::uint64_t wal_appends_ = 0;
  std::uint64_t wal_bytes_ = 0;
  std::uint64_t checkpoints_ = 0;
  std::uint64_t recoveries_ = 0;
};

}  // namespace rtpb::store
