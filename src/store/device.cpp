#include "store/device.hpp"

#include <algorithm>

namespace rtpb::store {

bool SimStorageDevice::append(std::span<const std::uint8_t> data) {
  if (failed_) return false;
  if (crash_after_ != kNoCrash && data.size() > crash_after_) {
    // The crash point lands inside this append: a torn prefix reaches the
    // medium, then the device dies.
    bytes_.insert(bytes_.end(), data.begin(),
                  data.begin() + static_cast<std::ptrdiff_t>(crash_after_));
    bytes_written_ += crash_after_;
    crash_after_ = 0;
    failed_ = true;
    ++torn_appends_;
    return false;
  }
  bytes_.insert(bytes_.end(), data.begin(), data.end());
  if (crash_after_ != kNoCrash) crash_after_ -= data.size();
  ++appends_;
  bytes_written_ += data.size();
  return true;
}

void SimStorageDevice::tear_tail(std::size_t n) {
  bytes_.resize(bytes_.size() - std::min(n, bytes_.size()));
}

void SimStorageDevice::corrupt_byte(std::size_t offset) {
  if (offset < bytes_.size()) bytes_[offset] ^= 0x40;
}

}  // namespace rtpb::store
