// Pluggable storage-device seam for the durability subsystem.
//
// A StorageDevice is the minimal append-only abstraction a write-ahead
// log needs: append bytes, read everything back, truncate.  The simulated
// implementation models the failure envelope ALICE-style crash testing
// cares about — the device can be killed at ANY byte boundary (a crash
// mid-write leaves a torn prefix of the record on "disk"), an already
// written tail can be torn off (a sector that never made it out of the
// drive cache), and individual bytes can rot.  All injection is explicit
// and deterministic: no RNG, no simulator events — attaching a device to
// a replica cannot shift a trace digest by itself.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace rtpb::store {

class StorageDevice {
 public:
  virtual ~StorageDevice() = default;

  /// Append `data` atomically-or-torn: on success all bytes are durable
  /// and true is returned; on a device failure a PREFIX of the bytes may
  /// have reached the medium and false is returned.  A failed append
  /// leaves the device dead (every later append fails) until the hosting
  /// machine "power-cycles" it via clear_failure().
  virtual bool append(std::span<const std::uint8_t> data) = 0;

  /// The full persisted contents, first byte to last.
  [[nodiscard]] virtual std::span<const std::uint8_t> contents() const = 0;

  /// Discard all contents (used after a successful checkpoint).
  virtual void truncate() = 0;

  [[nodiscard]] virtual std::size_t size() const = 0;

  /// True once an append has failed; cleared by clear_failure().
  [[nodiscard]] virtual bool failed() const = 0;

  /// Restore the device to working order (restart / power-cycle).  The
  /// contents — including any torn prefix — survive.
  virtual void clear_failure() = 0;
};

/// In-memory simulated device with deterministic fault injection.
class SimStorageDevice final : public StorageDevice {
 public:
  bool append(std::span<const std::uint8_t> data) override;
  [[nodiscard]] std::span<const std::uint8_t> contents() const override { return bytes_; }
  void truncate() override { bytes_.clear(); }
  [[nodiscard]] std::size_t size() const override { return bytes_.size(); }
  [[nodiscard]] bool failed() const override { return failed_; }
  void clear_failure() override {
    failed_ = false;
    crash_after_ = kNoCrash;
  }

  // ---- deterministic fault injection (ALICE-style crash points) ----

  /// Kill the device after `budget` MORE bytes reach the medium: the
  /// append in flight when the budget runs out writes exactly the
  /// remaining budget (a torn record prefix) and fails.  budget == 0
  /// fails the very next append before any byte lands.
  void arm_crash_after(std::size_t budget) { crash_after_ = budget; }

  /// Tear the last `n` bytes off the medium — a tail that never left the
  /// drive cache before the power went out.
  void tear_tail(std::size_t n);

  /// Flip one bit of a persisted byte (bit-rot / corruption on the
  /// medium).  Out-of-range offsets are ignored.
  void corrupt_byte(std::size_t offset);

  // ---- plain statistics (read by telemetry, never the other way) ----
  [[nodiscard]] std::uint64_t appends() const { return appends_; }
  [[nodiscard]] std::uint64_t bytes_written() const { return bytes_written_; }
  [[nodiscard]] std::uint64_t torn_appends() const { return torn_appends_; }

 private:
  static constexpr std::size_t kNoCrash = static_cast<std::size_t>(-1);

  std::vector<std::uint8_t> bytes_;
  std::size_t crash_after_ = kNoCrash;
  bool failed_ = false;
  std::uint64_t appends_ = 0;
  std::uint64_t bytes_written_ = 0;
  std::uint64_t torn_appends_ = 0;
};

}  // namespace rtpb::store
