// Write-ahead-log record format.
//
// Every record on the device is CRC-framed:
//
//     u32 payload_len | u32 crc32(payload) | payload
//
// and the payload is a 1-byte record kind followed by the body.  Replay
// walks the device front to back and stops at the FIRST record whose
// frame is short or whose CRC mismatches — the single-file prefix-
// durability discipline (recall ALICE): a torn tail never resurrects as
// state, and everything before it is exactly what was acknowledged.
//
// The codec layer here is deliberately link-light (util only): the
// durable store compiles underneath rtpb_core, so record bodies reuse
// the header-only core structs (ObjectSpec / ObjectState) but call no
// core-compiled functions.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <vector>

#include "core/object_store.hpp"
#include "core/types.hpp"
#include "util/bytebuffer.hpp"

namespace rtpb::store {

/// IEEE 802.3 CRC-32 (reflected, poly 0xEDB88320).
[[nodiscard]] std::uint32_t crc32(std::span<const std::uint8_t> data);

enum class RecordKind : std::uint8_t {
  kInsert = 1,      ///< object registered (spec only, version 0)
  kWrite = 2,       ///< one object write/apply: id, version, timestamps, value
  kMeta = 3,        ///< fenced replica metadata: epoch + next transfer id
  kCheckpoint = 4,  ///< full store snapshot (checkpoint device only)
};

struct InsertRecord {
  core::ObjectSpec spec;
};

struct WriteRecord {
  core::ObjectId object = core::kInvalidObject;
  std::uint64_t version = 0;
  TimePoint timestamp{};
  TimePoint origin_timestamp{};
  Bytes value;
};

/// Replica identity that must survive a restart FENCED: a recovered
/// replica that forgot its epoch could accept a deposed primary's
/// traffic, and one that forgot its transfer-id high water could mint
/// transfer ids peers silently discard as stale.
struct MetaRecord {
  std::uint64_t epoch = 0;
  std::uint64_t next_transfer_id = 1;
};

struct CheckpointRecord {
  std::uint64_t epoch = 0;
  std::uint64_t next_transfer_id = 1;
  std::vector<core::ObjectState> states;
};

struct AnyRecord {
  RecordKind kind{};
  std::optional<InsertRecord> insert;
  std::optional<WriteRecord> write;
  std::optional<MetaRecord> meta;
  std::optional<CheckpointRecord> checkpoint;
};

[[nodiscard]] Bytes encode(const InsertRecord& r);
[[nodiscard]] Bytes encode(const WriteRecord& r);
[[nodiscard]] Bytes encode(const MetaRecord& r);
[[nodiscard]] Bytes encode(const CheckpointRecord& r);

/// Decode one record payload (the bytes inside a frame).  nullopt on any
/// malformation — short body, trailing garbage, absurd counts.
[[nodiscard]] std::optional<AnyRecord> decode_record(std::span<const std::uint8_t> payload);

/// Wrap a payload in the length+CRC frame.
[[nodiscard]] Bytes frame_record(std::span<const std::uint8_t> payload);

struct ReplayStats {
  std::size_t records = 0;     ///< valid records delivered to the callback
  std::size_t torn_bytes = 0;  ///< bytes after the valid prefix, discarded
  bool clean = true;           ///< false when a torn/corrupt tail was cut
};

/// Walk `log` record by record, handing each valid payload to `fn`.
/// Stops at the first short frame or CRC mismatch (prefix durability).
ReplayStats replay(std::span<const std::uint8_t> log,
                   const std::function<void(std::span<const std::uint8_t>)>& fn);

}  // namespace rtpb::store
