#include "store/durable_store.hpp"

#include <algorithm>
#include <map>

namespace rtpb::store {

DurableStore::DurableStore(StorageDevice& wal, StorageDevice& checkpoint,
                           std::size_t checkpoint_every)
    : wal_(wal), checkpoint_(checkpoint), checkpoint_every_(checkpoint_every) {}

bool DurableStore::append_wal(const Bytes& payload) {
  const Bytes frame = frame_record(payload);
  if (!wal_.append(frame)) return false;
  ++wal_appends_;
  wal_bytes_ += frame.size();
  ++records_since_checkpoint_;
  return true;
}

bool DurableStore::log_insert(const core::ObjectSpec& spec) {
  return append_wal(encode(InsertRecord{spec}));
}

bool DurableStore::log_write(core::ObjectId id, std::uint64_t version, TimePoint timestamp,
                             TimePoint origin_timestamp, const Bytes& value) {
  WriteRecord rec;
  rec.object = id;
  rec.version = version;
  rec.timestamp = timestamp;
  rec.origin_timestamp = origin_timestamp;
  rec.value = value;
  return append_wal(encode(rec));
}

bool DurableStore::log_meta(std::uint64_t epoch, std::uint64_t next_transfer_id) {
  return append_wal(encode(MetaRecord{epoch, next_transfer_id}));
}

bool DurableStore::checkpoint(const std::vector<core::ObjectState>& states,
                              std::uint64_t epoch, std::uint64_t next_transfer_id) {
  CheckpointRecord rec;
  rec.epoch = epoch;
  rec.next_transfer_id = next_transfer_id;
  rec.states = states;
  const Bytes frame = frame_record(encode(rec));
  if (!checkpoint_.append(frame)) return false;
  // The checkpoint is durable; only now is it safe to drop the log it
  // subsumes.  A crash landing exactly here merely replays records the
  // checkpoint already holds — version-gated, hence idempotent.
  wal_.truncate();
  records_since_checkpoint_ = 0;
  ++checkpoints_;
  return true;
}

RecoveryResult DurableStore::recover() {
  RecoveryResult out;
  ++recoveries_;

  // Last-valid-checkpoint-wins: every older checkpoint (and a torn tail
  // from a crash mid-checkpoint) is simply superseded.
  std::optional<CheckpointRecord> base;
  const ReplayStats ckpt_stats = replay(checkpoint_.contents(), [&](auto payload) {
    if (auto rec = decode_record(payload); rec && rec->kind == RecordKind::kCheckpoint) {
      base = std::move(rec->checkpoint);
      ++out.checkpoint_records;
    }
  });
  out.checkpoint_torn = !ckpt_stats.clean;

  std::map<core::ObjectId, core::ObjectState> objects;
  if (base) {
    out.epoch = base->epoch;
    out.next_transfer_id = base->next_transfer_id;
    for (core::ObjectState& s : base->states) objects.emplace(s.spec.id, std::move(s));
  }

  const ReplayStats wal_stats = replay(wal_.contents(), [&](auto payload) {
    auto rec = decode_record(payload);
    if (!rec) return;  // decodable garbage behind a valid CRC cannot occur; be safe
    ++out.wal_records;
    switch (rec->kind) {
      case RecordKind::kInsert: {
        const core::ObjectSpec& spec = rec->insert->spec;
        core::ObjectState s;
        s.spec = spec;
        objects.emplace(spec.id, std::move(s));  // no-op on re-insert
        break;
      }
      case RecordKind::kWrite: {
        auto it = objects.find(rec->write->object);
        if (it == objects.end()) break;
        core::ObjectState& s = it->second;
        if (rec->write->version <= s.version) break;  // idempotent replay
        s.version = rec->write->version;
        s.timestamp = rec->write->timestamp;
        s.origin_timestamp = rec->write->origin_timestamp;
        s.value = std::move(rec->write->value);
        break;
      }
      case RecordKind::kMeta:
        out.epoch = std::max(out.epoch, rec->meta->epoch);
        out.next_transfer_id = std::max(out.next_transfer_id, rec->meta->next_transfer_id);
        break;
      case RecordKind::kCheckpoint:
        break;  // checkpoints never land on the WAL device
    }
  });
  out.wal_torn = !wal_stats.clean;

  out.states.reserve(objects.size());
  for (auto& [id, state] : objects) out.states.push_back(std::move(state));
  return out;
}

}  // namespace rtpb::store
