// Periodic task model (Liu & Layland) used by the schedulability analysis
// and the preemptive CPU simulation.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/assert.hpp"
#include "util/time.hpp"

namespace rtpb::sched {

using TaskId = std::uint32_t;
inline constexpr TaskId kInvalidTask = 0xFFFFFFFF;

/// Static parameters of a periodic task.
struct TaskSpec {
  TaskId id = kInvalidTask;
  std::string name;
  Duration period{};     ///< p_i: inter-release time
  Duration wcet{};       ///< e_i: worst-case execution time
  Duration deadline{};   ///< relative deadline; zero means "= period"
  Duration phase{};      ///< release offset of the first job relative to CPU start

  [[nodiscard]] Duration effective_deadline() const {
    return deadline > Duration::zero() ? deadline : period;
  }
  [[nodiscard]] double utilization() const {
    RTPB_EXPECTS(period > Duration::zero());
    return wcet.ratio(period);
  }
  [[nodiscard]] bool valid() const {
    return period > Duration::zero() && wcet > Duration::zero() && wcet <= period;
  }
};

/// One completed (or in-flight) job of a task, as reported by the CPU.
struct JobInfo {
  TaskId task = kInvalidTask;
  std::uint64_t index = 0;   ///< k-th invocation, 0-based
  TimePoint release{};
  TimePoint start{};         ///< first time the job got the CPU
  TimePoint finish{};
  bool deadline_missed = false;
};

using TaskSet = std::vector<TaskSpec>;

/// Total utilisation Σ e_i / p_i of a task set.
[[nodiscard]] double total_utilization(const TaskSet& tasks);

}  // namespace rtpb::sched
