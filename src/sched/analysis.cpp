#include "sched/analysis.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace rtpb::sched {

double total_utilization(const TaskSet& tasks) {
  double u = 0.0;
  for (const auto& t : tasks) u += t.utilization();
  return u;
}

double liu_layland_bound(std::size_t n) {
  if (n == 0) return 1.0;
  const auto nd = static_cast<double>(n);
  return nd * (std::pow(2.0, 1.0 / nd) - 1.0);
}

bool rm_utilization_test(const TaskSet& tasks) {
  return total_utilization(tasks) <= liu_layland_bound(tasks.size()) + 1e-12;
}

bool rm_hyperbolic_test(const TaskSet& tasks) {
  double prod = 1.0;
  for (const auto& t : tasks) prod *= t.utilization() + 1.0;
  return prod <= 2.0 + 1e-12;
}

std::optional<std::vector<Duration>> rm_response_times(const TaskSet& tasks) {
  // Sort by period (RM priority order), remembering original positions.
  std::vector<std::size_t> order(tasks.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (tasks[a].period != tasks[b].period) return tasks[a].period < tasks[b].period;
    return tasks[a].id < tasks[b].id;
  });

  std::vector<Duration> response(tasks.size());
  for (std::size_t rank = 0; rank < order.size(); ++rank) {
    const TaskSpec& t = tasks[order[rank]];
    const Duration deadline = t.effective_deadline();
    // Fixed-point iteration: R = e + Σ_{hp} ceil(R / p_j) e_j.
    Duration r = t.wcet;
    for (;;) {
      Duration interference = Duration::zero();
      for (std::size_t j = 0; j < rank; ++j) {
        const TaskSpec& hp = tasks[order[j]];
        const std::int64_t jobs =
            (r.nanos() + hp.period.nanos() - 1) / hp.period.nanos();
        interference += hp.wcet * jobs;
      }
      const Duration next = t.wcet + interference;
      if (next > deadline) return std::nullopt;
      if (next == r) break;
      r = next;
    }
    response[order[rank]] = r;
  }
  return response;
}

bool rm_exact_test(const TaskSet& tasks) { return rm_response_times(tasks).has_value(); }

bool edf_test(const TaskSet& tasks) { return total_utilization(tasks) <= 1.0 + 1e-12; }

namespace {
/// Largest b * 2^k that is ≤ c, for base b.
Duration specialize_down(Duration c, Duration b) {
  Duration s = b;
  while (s * 2 <= c) s = s * 2;
  return s;
}
}  // namespace

DcsSpecialization dcs_specialize_with_base(const TaskSet& tasks, Duration base) {
  RTPB_EXPECTS(base > Duration::zero());
  DcsSpecialization out;
  out.base = base;
  out.periods.reserve(tasks.size());
  double density = 0.0;
  for (const auto& t : tasks) {
    RTPB_EXPECTS(t.period >= base);
    const Duration s = specialize_down(t.period, base);
    out.periods.push_back(s);
    density += t.wcet.ratio(s);
  }
  out.density = density;
  return out;
}

DcsSpecialization dcs_specialize_sx(const TaskSet& tasks) {
  if (tasks.empty()) return {};
  Duration cmin = Duration::max();
  for (const auto& t : tasks) cmin = std::min(cmin, t.period);
  return dcs_specialize_with_base(tasks, cmin);
}

DcsSpecialization dcs_specialize(const TaskSet& tasks) {
  DcsSpecialization best;
  if (tasks.empty()) {
    best.density = 0.0;
    return best;
  }
  Duration cmin = Duration::max();
  for (const auto& t : tasks) cmin = std::min(cmin, t.period);

  // Candidate bases: for every task, c_i / 2^k brought into (cmin/2, cmin].
  std::vector<Duration> candidates;
  for (const auto& t : tasks) {
    Duration b = t.period;
    while (b > cmin) b = b / 2;
    if (b * 2 > cmin && b <= cmin) candidates.push_back(b);
  }
  candidates.push_back(cmin);

  best.density = std::numeric_limits<double>::infinity();
  for (Duration b : candidates) {
    DcsSpecialization cand;
    cand.base = b;
    cand.periods.reserve(tasks.size());
    double density = 0.0;
    for (const auto& t : tasks) {
      const Duration s = specialize_down(t.period, b);
      cand.periods.push_back(s);
      density += t.wcet.ratio(s);
    }
    cand.density = density;
    if (density < best.density) best = std::move(cand);
  }
  return best;
}

bool dcs_zero_variance_condition(const TaskSet& tasks) {
  return total_utilization(tasks) <= liu_layland_bound(tasks.size()) + 1e-12;
}

Duration phase_variance_bound_universal(const TaskSpec& t) { return t.period - t.wcet; }

Duration phase_variance_bound_edf(const TaskSpec& t, double utilization) {
  const Duration b = t.period.scaled(utilization) - t.wcet;
  return std::max(b, Duration::zero());
}

Duration phase_variance_bound_rm(const TaskSpec& t, double utilization, std::size_t n_tasks) {
  const double bound = liu_layland_bound(n_tasks);
  const Duration b = t.period.scaled(utilization / bound) - t.wcet;
  return std::max(b, Duration::zero());
}

}  // namespace rtpb::sched
