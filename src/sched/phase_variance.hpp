// Phase variance (paper Definitions 1 and 2).
//
// The k-th phase variance of a task is | (I_k - I_{k-1}) - p | where I_k
// is the finish time of the k-th invocation; the phase variance v is the
// maximum over k.  The temporal-consistency theorems (1, 4, 6) are all
// stated in terms of v, so measuring it accurately on the simulated CPU is
// what lets the benches check the theory empirically.
#pragma once

#include <cstdint>
#include <optional>

#include "util/stats.hpp"
#include "util/time.hpp"

namespace rtpb::sched {

class PhaseVarianceTracker {
 public:
  explicit PhaseVarianceTracker(Duration period) : period_(period) {}

  /// Record the finish time of the next invocation (must be monotone).
  void record_finish(TimePoint finish) {
    if (last_finish_) {
      const Duration gap = finish - *last_finish_;
      const Duration vk = (gap - period_).abs();
      samples_.add(vk.millis());
      if (vk > max_) max_ = vk;
      max_gap_ = std::max(max_gap_, gap);
    }
    last_finish_ = finish;
  }

  /// v_i = max_k v_i^k over everything recorded so far.
  [[nodiscard]] Duration phase_variance() const { return max_; }
  /// Largest finish-to-finish gap observed (useful for Theorem 1 checks:
  /// consistency holds iff every gap ≤ δ).
  [[nodiscard]] Duration max_gap() const { return max_gap_; }
  [[nodiscard]] Duration period() const { return period_; }
  [[nodiscard]] std::size_t invocations() const { return samples_.count() + (last_finish_ ? 1 : 0); }
  [[nodiscard]] const SampleSet& samples() const { return samples_; }

  /// Drop history accumulated before steady state (e.g. the first
  /// hyperperiod of a DCS schedule) but keep the last finish time so the
  /// next sample is still a valid gap.
  void reset_statistics() {
    samples_.clear();
    max_ = Duration::zero();
    max_gap_ = Duration::zero();
  }

 private:
  Duration period_;
  std::optional<TimePoint> last_finish_;
  Duration max_{};
  Duration max_gap_{};
  SampleSet samples_;
};

}  // namespace rtpb::sched
