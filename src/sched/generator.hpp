// Random task-set generation for property tests and validation benches.
//
// UUniFast (Bini & Buttazzo) samples n per-task utilisations summing to a
// target without the bias of naive splitting; periods are drawn
// log-uniformly so short and long periods are equally represented — the
// standard methodology for schedulability experiments.
#pragma once

#include "sched/task.hpp"
#include "util/rng.hpp"

namespace rtpb::sched {

struct GeneratorParams {
  std::size_t tasks = 5;
  double total_utilization = 0.5;
  Duration min_period = millis(5);
  Duration max_period = millis(500);
  /// Lower bound on a task's execution time regardless of its sampled
  /// utilisation (keeps WCETs physically plausible).
  Duration min_wcet = micros(50);
};

/// Sample per-task utilisations with UUniFast: u_i sum to
/// `total_utilization`, uniformly over the simplex.
[[nodiscard]] std::vector<double> uunifast(Rng& rng, std::size_t n, double total_utilization);

/// Generate a full task set: UUniFast utilisations × log-uniform periods.
/// Tasks are named t1..tn with ids assigned in order.
[[nodiscard]] TaskSet generate_task_set(Rng& rng, const GeneratorParams& params);

}  // namespace rtpb::sched
