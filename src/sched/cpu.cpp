#include "sched/cpu.hpp"

#include <algorithm>

#include "util/log.hpp"

namespace rtpb::sched {

const char* policy_name(Policy p) {
  switch (p) {
    case Policy::kEdf: return "EDF";
    case Policy::kRateMonotonic: return "RM";
    case Policy::kDcsSr: return "DCS-Sr";
    case Policy::kFifo: return "FIFO";
  }
  return "?";
}

Cpu::Cpu(sim::Simulator& sim, Policy policy, std::string name)
    : sim_(sim), policy_(policy), name_(std::move(name)) {}

Cpu::~Cpu() { stop(); }

TaskId Cpu::add_task(TaskSpec spec, JobCallback on_complete) {
  RTPB_EXPECTS(spec.valid());
  const TaskId id = next_id_++;
  spec.id = id;
  Task task;
  task.spec = spec;
  task.on_complete = std::move(on_complete);
  task.effective_period = spec.period;
  auto [it, inserted] = tasks_.emplace(id, std::move(task));
  RTPB_ASSERT(inserted);
  if (policy_ == Policy::kDcsSr) {
    respecialize();
  } else {
    it->second.tracker = std::make_unique<PhaseVarianceTracker>(it->second.effective_period);
  }
  if (started_) {
    it->second.next_release = sim_.now() + it->second.spec.phase;
    arm_release(it->second);
  }
  return id;
}

TaskId Cpu::submit_job(std::string name, Duration exec, JobCallback on_complete) {
  RTPB_EXPECTS(started_);
  RTPB_EXPECTS(exec > Duration::zero());
  const TaskId id = next_id_++;
  Task task;
  task.spec.id = id;
  task.spec.name = std::move(name);
  // An effectively-infinite period puts the job at background priority
  // under every fixed-priority policy and gives EDF a far-future deadline.
  task.spec.period = seconds(1'000'000);
  task.spec.wcet = exec;
  task.on_complete = std::move(on_complete);
  task.one_shot = true;
  task.effective_period = task.spec.period;
  task.tracker = std::make_unique<PhaseVarianceTracker>(task.spec.period);

  Job job;
  job.index = 0;
  job.release = sim_.now();
  job.remaining = exec;
  task.backlog.push_back(job);

  auto [it, inserted] = tasks_.emplace(id, std::move(task));
  RTPB_ASSERT(inserted);
  dispatch();
  return id;
}

void Cpu::remove_task(TaskId id) {
  auto it = tasks_.find(id);
  if (it == tasks_.end()) return;
  it->second.release_event.cancel();
  if (running_ == id) {
    // Abort the running job: charge busy time up to now, no callback.
    completion_event_.cancel();
    busy_time_ += sim_.now() - running_since_;
    running_ = kInvalidTask;
  }
  tasks_.erase(it);
  if (policy_ == Policy::kDcsSr) respecialize();
  if (started_) dispatch();
}

void Cpu::respecialize() {
  // Rebuild the harmonic specialisation over the current task set.  Only
  // future releases use the new periods; trackers restart because the
  // reference period changed.
  TaskSet set;
  set.reserve(tasks_.size());
  for (const auto& [id, task] : tasks_) set.push_back(task.spec);
  const DcsSpecialization spec = dcs_specialize(set);
  std::size_t i = 0;
  for (auto& [id, task] : tasks_) {
    task.effective_period = spec.periods.empty() ? task.spec.period : spec.periods[i];
    task.tracker = std::make_unique<PhaseVarianceTracker>(task.effective_period);
    ++i;
  }
}

void Cpu::start(TimePoint at) {
  RTPB_EXPECTS(!started_);
  RTPB_EXPECTS(at >= sim_.now());
  started_ = true;
  started_at_ = at;
  for (auto& [id, task] : tasks_) {
    task.next_release = at + task.spec.phase;
    arm_release(task);
  }
}

void Cpu::stop() {
  if (!started_) return;
  for (auto& [id, task] : tasks_) task.release_event.cancel();
  if (running_ != kInvalidTask) {
    completion_event_.cancel();
    busy_time_ += sim_.now() - running_since_;
    running_ = kInvalidTask;
  }
  started_ = false;
}

void Cpu::arm_release(Task& task) {
  const TaskId id = task.spec.id;
  task.release_event = sim_.schedule_at(task.next_release, [this, id] { on_release(id); });
}

void Cpu::on_release(TaskId id) {
  auto it = tasks_.find(id);
  if (it == tasks_.end()) return;
  Task& task = it->second;

  Job job;
  job.index = task.next_index++;
  job.release = sim_.now();
  job.remaining = task.spec.wcet;
  task.backlog.push_back(job);
  if (sim_.trace().enabled()) {
    sim_.trace().record(sim_.now(), sim::TraceCategory::kCpu, "job-release",
                        name_ + " " + task.spec.name + " #" + std::to_string(job.index));
  }
  telemetry::Hub& hub = sim_.telemetry();
  if (hub.enabled()) {
    hub.registry().counter("sched.releases").add();
    hub.record(telemetry::kNoSpan, 0, telemetry::EventKind::kInstant, name_, "job-release",
               task.spec.name + " #" + std::to_string(job.index));
  }

  // Periodic re-arm.
  task.next_release += task.effective_period;
  arm_release(task);

  dispatch();
}

void Cpu::on_completion() {
  RTPB_ASSERT(running_ != kInvalidTask);
  auto it = tasks_.find(running_);
  RTPB_ASSERT(it != tasks_.end());
  Task& task = it->second;
  RTPB_ASSERT(!task.backlog.empty());

  busy_time_ += sim_.now() - running_since_;
  running_ = kInvalidTask;

  Job job = task.backlog.front();
  task.backlog.pop_front();

  JobInfo info;
  info.task = task.spec.id;
  info.index = job.index;
  info.release = job.release;
  info.start = job.start;
  info.finish = sim_.now();
  info.deadline_missed = (sim_.now() - job.release) > task.spec.effective_deadline();
  if (info.deadline_missed) ++deadline_misses_;
  ++jobs_completed_;

  task.tracker->record_finish(info.finish);
  if (sim_.trace().enabled()) {
    sim_.trace().record(sim_.now(), sim::TraceCategory::kCpu, "job-finish",
                        name_ + " " + task.spec.name + " #" + std::to_string(info.index) +
                            (info.deadline_missed ? " MISSED" : ""));
  }
  telemetry::Hub& hub = sim_.telemetry();
  if (hub.enabled()) {
    hub.registry().counter("sched.completions").add();
    if (info.deadline_missed) hub.registry().counter("sched.deadline_misses").add();
    hub.registry().histogram("sched.response_ms").record(info.finish - info.release);
    hub.record(telemetry::kNoSpan, 0, telemetry::EventKind::kInstant, name_, "job-finish",
               task.spec.name + " #" + std::to_string(info.index) +
                   (info.deadline_missed ? " MISSED" : ""));
  }
  const bool retire = task.one_shot && task.backlog.empty();
  auto on_complete = task.on_complete;  // survives the erase below
  if (retire) tasks_.erase(it);
  if (on_complete) on_complete(info);

  dispatch();
}

bool Cpu::higher_priority(const Task& a, const Task& b) const {
  switch (policy_) {
    case Policy::kEdf: {
      const TimePoint da = a.backlog.front().release + a.spec.effective_deadline();
      const TimePoint db = b.backlog.front().release + b.spec.effective_deadline();
      if (da != db) return da < db;
      break;
    }
    case Policy::kRateMonotonic:
      if (a.spec.period != b.spec.period) return a.spec.period < b.spec.period;
      break;
    case Policy::kDcsSr:
      if (a.effective_period != b.effective_period) return a.effective_period < b.effective_period;
      break;
    case Policy::kFifo: {
      const TimePoint ra = a.backlog.front().release;
      const TimePoint rb = b.backlog.front().release;
      if (ra != rb) return ra < rb;
      break;
    }
  }
  return a.spec.id < b.spec.id;
}

Cpu::Task* Cpu::pick_ready() {
  Task* best = nullptr;
  for (auto& [id, task] : tasks_) {
    if (task.backlog.empty()) continue;
    if (best == nullptr || higher_priority(task, *best)) best = &task;
  }
  return best;
}

void Cpu::dispatch() {
  if (!started_) return;

  // Charge the running job for the time it has had the CPU.
  const TaskId prev = running_;
  bool prev_unfinished = false;
  if (running_ != kInvalidTask) {
    auto it = tasks_.find(running_);
    RTPB_ASSERT(it != tasks_.end());
    Job& job = it->second.backlog.front();
    const Duration used = sim_.now() - running_since_;
    job.remaining -= used;
    RTPB_ASSERT(job.remaining >= Duration::zero());
    prev_unfinished = job.remaining > Duration::zero();
    busy_time_ += used;
    completion_event_.cancel();
    running_ = kInvalidTask;
  }

  Task* next = pick_ready();

  telemetry::Hub& hub = sim_.telemetry();
  if (hub.enabled()) {
    // Maintain the CPU-possession slice (one open begin/end pair per job
    // tenure) and count true preemptions: the incumbent still had work
    // left but a different job takes the CPU.
    const bool same_tenure = slice_open_ && next != nullptr && next->spec.id == slice_task_ &&
                             !next->backlog.empty() && next->backlog.front().index == slice_index_;
    if (slice_open_ && !same_tenure) {
      hub.record(telemetry::kNoSpan, 0, telemetry::EventKind::kEnd, name_, slice_name_);
      slice_open_ = false;
    }
    if (next != nullptr && !same_tenure) {
      slice_open_ = true;
      slice_task_ = next->spec.id;
      slice_index_ = next->backlog.front().index;
      slice_name_ = next->spec.name + " #" + std::to_string(slice_index_);
      hub.record(telemetry::kNoSpan, 0, telemetry::EventKind::kBegin, name_, slice_name_);
    }
    if (prev != kInvalidTask && prev_unfinished && next != nullptr && next->spec.id != prev) {
      hub.registry().counter("sched.preemptions").add();
      hub.record(telemetry::kNoSpan, 0, telemetry::EventKind::kInstant, name_, "preempt",
                 next->spec.name + " preempts task " + std::to_string(prev));
    }
  }

  if (next == nullptr) return;

  Job& job = next->backlog.front();
  if (!job.started) {
    job.started = true;
    job.start = sim_.now();
    if (sim_.trace().enabled()) {
      sim_.trace().record(sim_.now(), sim::TraceCategory::kCpu, "job-start",
                          name_ + " " + next->spec.name + " #" + std::to_string(job.index));
    }
  }
  running_ = next->spec.id;
  running_since_ = sim_.now();
  completion_event_ = sim_.schedule_after(job.remaining, [this] { on_completion(); });
}

Duration Cpu::effective_period(TaskId id) const {
  auto it = tasks_.find(id);
  RTPB_EXPECTS(it != tasks_.end());
  return it->second.effective_period;
}

const PhaseVarianceTracker& Cpu::tracker(TaskId id) const {
  auto it = tasks_.find(id);
  RTPB_EXPECTS(it != tasks_.end());
  return *it->second.tracker;
}

const TaskSpec& Cpu::spec(TaskId id) const {
  auto it = tasks_.find(id);
  RTPB_EXPECTS(it != tasks_.end());
  return it->second.spec;
}

double Cpu::offered_utilization() const {
  double u = 0.0;
  for (const auto& [id, task] : tasks_) {
    u += task.spec.wcet.ratio(task.effective_period);
  }
  return u;
}

double Cpu::busy_fraction() const {
  if (!started_) return 0.0;
  const Duration elapsed = sim_.now() - started_at_;
  if (elapsed <= Duration::zero()) return 0.0;
  Duration busy = busy_time_;
  if (running_ != kInvalidTask) busy += sim_.now() - running_since_;
  return busy.ratio(elapsed);
}

}  // namespace rtpb::sched
