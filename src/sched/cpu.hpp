// Preemptive single-CPU scheduling simulation.
//
// Each host in the RTPB system (primary, backup) owns a Cpu.  Periodic
// tasks release jobs; the active policy (EDF, Rate-Monotonic, DCS S_r, or
// FIFO) picks which ready job runs; jobs are preempted mid-execution when
// a higher-priority job arrives.  Job completion times — the I_k of the
// paper's phase-variance definition — are reported to per-task trackers
// and to the registered completion callbacks, which is how client updates
// and backup transmissions actually take effect in the protocol layer.
//
// Under DCS S_r the task set's periods are specialised to a harmonic base
// (Han & Lin); with synchronous release and fixed priorities the schedule
// is cyclic, so each task finishes at a fixed offset in every period and
// its phase variance is exactly zero (paper Theorem 3).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "sched/analysis.hpp"
#include "sched/phase_variance.hpp"
#include "sched/task.hpp"
#include "sim/simulator.hpp"

namespace rtpb::sched {

enum class Policy { kEdf, kRateMonotonic, kDcsSr, kFifo };

[[nodiscard]] const char* policy_name(Policy p);

using JobCallback = std::function<void(const JobInfo&)>;

class Cpu {
 public:
  Cpu(sim::Simulator& sim, Policy policy, std::string name = "cpu");
  ~Cpu();

  Cpu(const Cpu&) = delete;
  Cpu& operator=(const Cpu&) = delete;

  /// Register a periodic task.  `on_complete` fires at each job's finish
  /// time (may be null for pure load tasks).  If the CPU is already
  /// started, releases begin at now + spec.phase.
  TaskId add_task(TaskSpec spec, JobCallback on_complete);

  /// Unregister a task: pending jobs are discarded; a running job is
  /// aborted without a completion callback.
  void remove_task(TaskId id);

  /// Submit a one-shot aperiodic job, released now and served at
  /// background priority (it never delays a periodic task under RM/DCS;
  /// under EDF it carries an effectively infinite deadline).  The pseudo
  /// task disappears after the job completes.  Requires a started CPU.
  TaskId submit_job(std::string name, Duration exec, JobCallback on_complete);

  /// Begin releasing jobs.  Task phases are relative to `at`.
  void start(TimePoint at);
  void start() { start(sim_.now()); }
  void stop();
  [[nodiscard]] bool started() const { return started_; }

  [[nodiscard]] Policy policy() const { return policy_; }
  /// The task whose job currently holds the CPU (kInvalidTask when idle).
  [[nodiscard]] TaskId running() const { return running_; }
  [[nodiscard]] std::size_t task_count() const { return tasks_.size(); }
  [[nodiscard]] bool has_task(TaskId id) const { return tasks_.contains(id); }

  /// The period at which jobs are actually released: equals the spec
  /// period except under DCS S_r, where it is the specialised (harmonic)
  /// period ≤ the spec period.
  [[nodiscard]] Duration effective_period(TaskId id) const;

  [[nodiscard]] const PhaseVarianceTracker& tracker(TaskId id) const;
  [[nodiscard]] const TaskSpec& spec(TaskId id) const;

  [[nodiscard]] std::uint64_t deadline_misses() const { return deadline_misses_; }
  [[nodiscard]] std::uint64_t jobs_completed() const { return jobs_completed_; }
  [[nodiscard]] std::uint64_t jobs_dropped() const { return jobs_dropped_; }
  [[nodiscard]] double offered_utilization() const;
  /// Fraction of time the CPU was busy since start().
  [[nodiscard]] double busy_fraction() const;

 private:
  struct Job {
    std::uint64_t index = 0;
    TimePoint release{};
    TimePoint start{};
    Duration remaining{};
    bool started = false;
  };

  struct Task {
    TaskSpec spec;
    JobCallback on_complete;
    bool one_shot = false;
    Duration effective_period{};
    std::unique_ptr<PhaseVarianceTracker> tracker;
    std::deque<Job> backlog;  ///< released, unfinished jobs (head may be running)
    std::uint64_t next_index = 0;
    TimePoint next_release{};
    sim::EventHandle release_event;
  };

  void arm_release(Task& task);
  void on_release(TaskId id);
  void on_completion();
  /// Charge the running job for CPU time since it was last resumed, then
  /// re-pick the highest-priority ready job and (re)schedule completion.
  void dispatch();
  [[nodiscard]] Task* pick_ready();
  /// Strictly-less comparison: does job of `a` beat job of `b`?
  [[nodiscard]] bool higher_priority(const Task& a, const Task& b) const;
  void respecialize();

  sim::Simulator& sim_;
  Policy policy_;
  std::string name_;
  std::map<TaskId, Task> tasks_;  // ordered: deterministic iteration
  TaskId next_id_ = 1;
  bool started_ = false;
  TimePoint started_at_{};

  TaskId running_ = kInvalidTask;
  TimePoint running_since_{};
  sim::EventHandle completion_event_;

  // Open CPU-possession slice on the telemetry track named after this CPU
  // (begin/end pairs survive preemption round-trips of the same job).
  bool slice_open_ = false;
  TaskId slice_task_ = kInvalidTask;
  std::uint64_t slice_index_ = 0;
  std::string slice_name_;

  std::uint64_t deadline_misses_ = 0;
  std::uint64_t jobs_completed_ = 0;
  std::uint64_t jobs_dropped_ = 0;
  Duration busy_time_{};
};

}  // namespace rtpb::sched
