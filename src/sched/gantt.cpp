#include "sched/gantt.hpp"

#include <map>
#include <vector>

#include "sim/simulator.hpp"
#include "util/assert.hpp"

namespace rtpb::sched {

std::string render_gantt(const TaskSet& tasks, Policy policy, const GanttOptions& options) {
  RTPB_EXPECTS(!tasks.empty());
  RTPB_EXPECTS(options.resolution > Duration::zero());
  RTPB_EXPECTS(options.horizon >= options.resolution);

  sim::Simulator sim;
  Cpu cpu(sim, policy);
  std::map<TaskId, std::size_t> row_of;
  std::vector<std::string> names;
  std::vector<std::vector<std::size_t>> releases(tasks.size());
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    TaskSpec spec = tasks[i];
    spec.id = kInvalidTask;  // Cpu assigns its own ids
    const TaskId id = cpu.add_task(spec, nullptr);
    row_of[id] = i;
    names.push_back(spec.name.empty() ? "task" + std::to_string(i + 1) : spec.name);
  }
  cpu.start(TimePoint::zero());

  const auto columns =
      static_cast<std::size_t>(options.horizon.nanos() / options.resolution.nanos());
  std::vector<std::string> rows(tasks.size(), std::string(columns, '.'));
  std::string idle(columns, ' ');

  // Track releases via each task's effective period (synchronous start).
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    const TaskId id = [&] {
      for (const auto& [tid, row] : row_of) {
        if (row == i) return tid;
      }
      return kInvalidTask;
    }();
    const Duration period = cpu.effective_period(id);
    for (Duration t = Duration::zero(); t < options.horizon; t += period) {
      releases[i].push_back(static_cast<std::size_t>(t.nanos() / options.resolution.nanos()));
    }
  }

  // Sample the running task one column at a time (sampling at the middle
  // of each column avoids boundary ambiguity).
  for (std::size_t col = 0; col < columns; ++col) {
    const TimePoint sample =
        TimePoint::zero() + options.resolution * static_cast<std::int64_t>(col) +
        options.resolution / 2;
    sim.run_until(sample);
    const TaskId running = cpu.running();
    if (running == kInvalidTask) {
      idle[col] = '_';
    } else {
      auto it = row_of.find(running);
      if (it != row_of.end()) rows[it->second][col] = '#';
    }
  }

  // Compose: header ruler, one line per task, idle line.
  std::string out = "policy: " + std::string(policy_name(policy)) + ", one column = " +
                    options.resolution.to_string() + "\n";
  std::size_t name_width = 4;
  for (const auto& n : names) name_width = std::max(name_width, n.size());
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    std::string line = names[i];
    line.resize(name_width, ' ');
    line += " |";
    line += rows[i];
    line += "|\n";
    if (options.show_releases) {
      std::string marks(columns, ' ');
      for (std::size_t col : releases[i]) {
        if (col < columns) marks[col] = '^';
      }
      line += std::string(name_width, ' ') + " |" + marks + "|\n";
    }
    out += line;
  }
  std::string idle_line(name_width, ' ');
  out += "idle";
  out += std::string(name_width > 4 ? name_width - 4 : 0, ' ');
  out += " |" + idle + "|\n";
  return out;
}

}  // namespace rtpb::sched
