// ASCII Gantt chart of a task set's schedule under a chosen policy —
// the classic way to *see* phase variance: each task's row shows when its
// jobs hold the CPU, so drifting completion offsets (EDF/RM) versus the
// locked cyclic pattern of DCS S_r are visible at a glance.
#pragma once

#include <string>

#include "sched/cpu.hpp"
#include "sched/task.hpp"

namespace rtpb::sched {

struct GanttOptions {
  Duration horizon = millis(100);     ///< how much of the schedule to draw
  Duration resolution = millis(1);    ///< one output column per this much time
  bool show_releases = true;          ///< mark job releases with '^'
};

/// Simulate `tasks` under `policy` from a synchronous start and render one
/// row per task ('#' = task holds the CPU, '.' = not running, '^' under a
/// column = job released there) plus an idle row.
[[nodiscard]] std::string render_gantt(const TaskSet& tasks, Policy policy,
                                       const GanttOptions& options = {});

}  // namespace rtpb::sched
