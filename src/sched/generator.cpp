#include "sched/generator.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace rtpb::sched {

std::vector<double> uunifast(Rng& rng, std::size_t n, double total_utilization) {
  RTPB_EXPECTS(n > 0);
  RTPB_EXPECTS(total_utilization > 0.0);
  std::vector<double> utils(n);
  double remaining = total_utilization;
  for (std::size_t i = 0; i + 1 < n; ++i) {
    const double next =
        remaining * std::pow(rng.next_double(), 1.0 / static_cast<double>(n - 1 - i));
    utils[i] = remaining - next;
    remaining = next;
  }
  utils[n - 1] = remaining;
  return utils;
}

TaskSet generate_task_set(Rng& rng, const GeneratorParams& params) {
  RTPB_EXPECTS(params.tasks > 0);
  RTPB_EXPECTS(params.min_period > Duration::zero());
  RTPB_EXPECTS(params.max_period >= params.min_period);

  const std::vector<double> utils = uunifast(rng, params.tasks, params.total_utilization);
  TaskSet set;
  set.reserve(params.tasks);
  const double log_lo = std::log(static_cast<double>(params.min_period.nanos()));
  const double log_hi = std::log(static_cast<double>(params.max_period.nanos()));
  for (std::size_t i = 0; i < params.tasks; ++i) {
    TaskSpec t;
    t.id = static_cast<TaskId>(i + 1);
    t.name = "t" + std::to_string(i + 1);
    const double log_p = rng.uniform_real(log_lo, log_hi);
    t.period = Duration{static_cast<std::int64_t>(std::exp(log_p))};
    t.wcet = std::max(params.min_wcet, t.period.scaled(utils[i]));
    t.wcet = std::min(t.wcet, t.period);  // keep the spec valid
    set.push_back(t);
  }
  return set;
}

}  // namespace rtpb::sched
