// Schedulability analysis: the classical tests the paper's admission
// control and theorems rely on.
//
//  - Liu & Layland utilisation bound and exact response-time analysis for
//    Rate Monotonic (used by admission control, paper §4.2),
//  - EDF utilisation test,
//  - Han & Lin distance-constrained (pinwheel) specialisation used by the
//    DCS S_r scheduler (paper Theorem 3),
//  - analytic phase-variance bounds (Eq. 2.1 and Theorem 2).
#pragma once

#include <optional>
#include <vector>

#include "sched/task.hpp"
#include "util/time.hpp"

namespace rtpb::sched {

/// n(2^{1/n} - 1): the Liu–Layland RM utilisation bound for n tasks.
[[nodiscard]] double liu_layland_bound(std::size_t n);

/// Sufficient RM test: total utilisation ≤ n(2^{1/n}-1).
[[nodiscard]] bool rm_utilization_test(const TaskSet& tasks);

/// Sufficient RM test (tighter): hyperbolic bound Π(U_i + 1) ≤ 2.
[[nodiscard]] bool rm_hyperbolic_test(const TaskSet& tasks);

/// Exact RM test via response-time analysis (deadline = period assumed for
/// tasks with zero deadline).  Returns per-task worst-case response times,
/// or nullopt if some task is unschedulable.
[[nodiscard]] std::optional<std::vector<Duration>> rm_response_times(const TaskSet& tasks);
[[nodiscard]] bool rm_exact_test(const TaskSet& tasks);

/// Necessary and sufficient EDF test for implicit deadlines: U ≤ 1.
[[nodiscard]] bool edf_test(const TaskSet& tasks);

// ---------------------------------------------------------------------------
// Distance-constrained scheduling (Han & Lin's pinwheel specialisation).
// ---------------------------------------------------------------------------

/// Result of specialising a task set's periods to a harmonic base:
/// each specialised period is base * 2^k ≤ original period, so a
/// fixed-priority schedule of the specialised set is cyclic and each task
/// completes at a fixed offset in every period — zero phase variance.
struct DcsSpecialization {
  Duration base{};                      ///< chosen base b
  std::vector<Duration> periods;        ///< specialised period per task (same order)
  double density = 0.0;                 ///< Σ e_i / c'_i of the specialised set
  [[nodiscard]] bool feasible() const { return density <= 1.0 + 1e-12; }
};

/// Han & Lin S_a: specialise every period to base * 2^k ≤ period for a
/// caller-chosen base (each period must be ≥ base).
[[nodiscard]] DcsSpecialization dcs_specialize_with_base(const TaskSet& tasks, Duration base);

/// Han & Lin S_x: S_a with base fixed to the minimum period.
[[nodiscard]] DcsSpecialization dcs_specialize_sx(const TaskSet& tasks);

/// Han & Lin S_r: search candidate bases b = c_j / 2^k in (c_min/2, c_min]
/// and pick the one minimising the specialised density.  Dominates S_x:
/// its density is never larger.
[[nodiscard]] DcsSpecialization dcs_specialize(const TaskSet& tasks);

/// The paper's Theorem 3 admission condition for zero phase variance under
/// S_r: Σ e_i/p_i ≤ n(2^{1/n} - 1).
[[nodiscard]] bool dcs_zero_variance_condition(const TaskSet& tasks);

// ---------------------------------------------------------------------------
// Phase-variance bounds.
// ---------------------------------------------------------------------------

/// Universal bound, Eq. 2.1: v_i ≤ p_i - e_i.
[[nodiscard]] Duration phase_variance_bound_universal(const TaskSpec& t);

/// Theorem 2 (EDF): v_i ≤ x·p_i - e_i, where x is the set utilisation.
[[nodiscard]] Duration phase_variance_bound_edf(const TaskSpec& t, double utilization);

/// Theorem 2 (RM): v_i ≤ x·p_i / (n(2^{1/n}-1)) - e_i.
[[nodiscard]] Duration phase_variance_bound_rm(const TaskSpec& t, double utilization,
                                               std::size_t n_tasks);

}  // namespace rtpb::sched
