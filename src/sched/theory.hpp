// The paper's temporal-consistency conditions (Lemmas 1–3, Theorems 1–6)
// as named, unit-tested predicates.  Admission control (core/admission)
// and the validation benches evaluate exactly these functions, so the
// implementation and the theory cannot drift apart silently.
//
// Notation (paper §2–§3):
//   p_i  period of the client task updating object i at the primary
//   e_i  execution time of that task
//   r_i  period of the primary→backup update-transmission task
//   e'_i execution time of that task
//   v_i, v'_i  phase variances of the two tasks
//   ℓ    upper bound on primary→backup communication delay
//   δ_iP / δ_iB  external temporal constraint at primary / backup
//   δ_ij inter-object temporal constraint between objects i and j
#pragma once

#include "util/time.hpp"

namespace rtpb::sched::theory {

/// Lemma 1 (sufficient): external consistency at the primary holds if
/// p_i ≤ (δ_iP + e_i) / 2.
[[nodiscard]] constexpr bool lemma1_primary(Duration p, Duration e, Duration delta_p) {
  return p * 2 <= delta_p + e;
}

/// Theorem 1 (necessary and sufficient): p_i ≤ δ_iP − v_i.
[[nodiscard]] constexpr bool theorem1_primary(Duration p, Duration v, Duration delta_p) {
  return p <= delta_p - v;
}

/// The largest primary update period Theorem 1 admits: p_i = δ_iP − v_i.
[[nodiscard]] constexpr Duration theorem1_max_period(Duration delta_p, Duration v) {
  return delta_p - v;
}

/// Lemma 2 (sufficient): consistency at the backup holds if
/// r_i ≤ (δ_iB + e_i + e'_i − ℓ)/2 − p_i.
[[nodiscard]] constexpr bool lemma2_backup(Duration r, Duration p, Duration e, Duration e_prime,
                                           Duration ell, Duration delta_b) {
  return r * 2 <= delta_b + e + e_prime - ell - p * 2;
}

/// Theorem 4 (necessary and sufficient): r_i ≤ δ_iB − v'_i − p_i − v_i − ℓ.
[[nodiscard]] constexpr bool theorem4_backup(Duration r, Duration p, Duration v,
                                             Duration v_prime, Duration ell, Duration delta_b) {
  return r <= delta_b - v_prime - p - v - ell;
}

[[nodiscard]] constexpr Duration theorem4_max_period(Duration p, Duration v, Duration v_prime,
                                                     Duration ell, Duration delta_b) {
  return delta_b - v_prime - p - v - ell;
}

/// Theorem 5 (v'_i = 0, p_i maximal): r_i ≤ (δ_iB − δ_iP) − ℓ.
[[nodiscard]] constexpr bool theorem5_backup(Duration r, Duration delta_p, Duration delta_b,
                                             Duration ell) {
  return r <= (delta_b - delta_p) - ell;
}

/// The window of inconsistency between primary and backup: δ_i = δ_iB − δ_iP.
[[nodiscard]] constexpr Duration consistency_window(Duration delta_p, Duration delta_b) {
  return delta_b - delta_p;
}

/// The paper's §4.3 update-transmission period: the primary must send at
/// least every δ_i − ℓ; the implementation halves it (slack_factor = 2) to
/// ride out a lost message.
[[nodiscard]] constexpr Duration update_period(Duration window, Duration ell,
                                               std::int64_t slack_factor = 2) {
  return (window - ell) / slack_factor;
}

/// Lemma 3 (sufficient, inter-object, per task): p ≤ (δ_ij + e)/2.
[[nodiscard]] constexpr bool lemma3_task(Duration p, Duration e, Duration delta_ij) {
  return p * 2 <= delta_ij + e;
}

/// Theorem 6 (necessary and sufficient, inter-object, per task): p ≤ δ_ij − v.
/// Applies to both primary-update and backup-transmission tasks with the
/// respective phase variances.
[[nodiscard]] constexpr bool theorem6_task(Duration p, Duration v, Duration delta_ij) {
  return p <= delta_ij - v;
}

/// Theorem 6 for an object pair at one site.
[[nodiscard]] constexpr bool theorem6_pair(Duration p_i, Duration v_i, Duration p_j,
                                           Duration v_j, Duration delta_ij) {
  return theorem6_task(p_i, v_i, delta_ij) && theorem6_task(p_j, v_j, delta_ij);
}

}  // namespace rtpb::sched::theory
