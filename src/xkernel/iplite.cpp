#include "xkernel/iplite.hpp"

#include "util/bytebuffer.hpp"
#include "util/log.hpp"

namespace rtpb::xkernel {

void IpLite::register_upper(std::uint8_t proto, Protocol* up) {
  RTPB_EXPECTS(up != nullptr);
  uppers_[proto] = up;
}

void IpLite::push_as(std::uint8_t proto, Message& msg, const MsgAttrs& attrs) {
  RTPB_EXPECTS(down() != nullptr);
  if (tele_enabled()) {
    tele_hub()->registry().counter("xkernel.iplite.pushes").add();
    tele_record("ip-push", "proto " + std::to_string(proto) + " node" +
                               std::to_string(attrs.src.node) + "->node" +
                               std::to_string(attrs.dst.node));
  }
  ByteWriter w(kHeaderSize);
  w.u32(attrs.src.node);
  w.u32(attrs.dst.node);
  w.u8(proto);
  w.u32(static_cast<std::uint32_t>(msg.size()));
  msg.push(w.data());
  down()->push(msg, attrs);
}

void IpLite::push(Message& msg, const MsgAttrs& attrs) {
  // Default pushes go out as UDP — the stack the paper used.
  push_as(kProtoUdp, msg, attrs);
}

void IpLite::demux(Message& msg, MsgAttrs& attrs) {
  if (msg.size() < kHeaderSize) {
    ++bad_headers_;
    RTPB_WARN("iplite", "runt packet (%zu bytes); dropped", msg.size());
    if (tele_enabled()) {
      tele_hub()->registry().counter("xkernel.iplite.bad_headers").add();
      tele_record("ip-drop", "runt");
    }
    return;
  }
  ByteReader r(msg.pop(kHeaderSize));
  const std::uint32_t src = r.u32();
  const std::uint32_t dst = r.u32();
  const std::uint8_t proto = r.u8();
  const std::uint32_t length = r.u32();
  if (!r.ok() || length != msg.size()) {
    ++bad_headers_;
    RTPB_WARN("iplite", "bad header (len %u vs %zu); dropped", length, msg.size());
    if (tele_enabled()) {
      tele_hub()->registry().counter("xkernel.iplite.bad_headers").add();
      tele_record("ip-drop", "bad header");
    }
    return;
  }
  attrs.src.node = src;
  attrs.dst.node = dst;
  auto it = uppers_.find(proto);
  if (it == uppers_.end()) {
    ++unknown_proto_;
    RTPB_WARN("iplite", "no upper for proto %u; dropped", proto);
    if (tele_enabled()) {
      tele_hub()->registry().counter("xkernel.iplite.unknown_proto").add();
      tele_record("ip-drop", "unknown proto " + std::to_string(proto));
    }
    return;
  }
  if (tele_enabled()) {
    tele_hub()->registry().counter("xkernel.iplite.demuxes").add();
    tele_record("ip-demux", "proto " + std::to_string(proto));
  }
  it->second->demux(msg, attrs);
}

}  // namespace rtpb::xkernel
