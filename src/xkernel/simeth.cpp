#include "xkernel/simeth.hpp"

#include "util/log.hpp"

namespace rtpb::xkernel {

SimEth::SimEth(net::Network& network) : Protocol("simeth"), network_(network) {
  node_ = network_.add_node([this](const net::Packet& pkt) {
    ++frames_received_;
    Message msg = Message::from_wire(pkt.payload);
    MsgAttrs attrs;
    attrs.src.node = pkt.src;
    attrs.dst.node = pkt.dst;
    demux(msg, attrs);
  });
}

void SimEth::push(Message& msg, const MsgAttrs& attrs) {
  RTPB_EXPECTS(attrs.dst.node != net::kInvalidNode);
  ++frames_sent_;
  network_.send(node_, attrs.dst.node, msg.to_bytes());
}

void SimEth::demux(Message& msg, MsgAttrs& attrs) {
  if (up_ == nullptr) {
    RTPB_WARN("simeth", "frame with no upper protocol configured; dropped");
    return;
  }
  up_->demux(msg, attrs);
}

}  // namespace rtpb::xkernel
