#include "xkernel/simeth.hpp"

#include "util/log.hpp"

namespace rtpb::xkernel {

SimEth::SimEth(net::Network& network) : Protocol("simeth"), network_(network) {
  node_ = network_.add_node([this](const net::Packet& pkt) {
    ++frames_received_;
    Message msg = Message::from_wire(pkt.payload);
    MsgAttrs attrs;
    attrs.src.node = pkt.src;
    attrs.dst.node = pkt.dst;
    demux(msg, attrs);
  });
}

void SimEth::push(Message& msg, const MsgAttrs& attrs) {
  RTPB_EXPECTS(attrs.dst.node != net::kInvalidNode);
  ++frames_sent_;
  if (tele_enabled()) {
    tele_hub()->registry().counter("xkernel.simeth.frames_sent").add();
    tele_record("eth-push", std::to_string(msg.size()) + "B to node" +
                                std::to_string(attrs.dst.node));
  }
  network_.send(node_, attrs.dst.node, msg.to_bytes());
}

void SimEth::demux(Message& msg, MsgAttrs& attrs) {
  if (up_ == nullptr) {
    RTPB_WARN("simeth", "frame with no upper protocol configured; dropped");
    if (tele_enabled()) {
      tele_hub()->registry().counter("xkernel.simeth.no_upper").add();
      tele_record("eth-drop", "no upper protocol");
    }
    return;
  }
  if (tele_enabled()) {
    tele_hub()->registry().counter("xkernel.simeth.frames_received").add();
    tele_record("eth-demux", std::to_string(msg.size()) + "B from node" +
                                 std::to_string(attrs.src.node));
  }
  up_->demux(msg, attrs);
}

}  // namespace rtpb::xkernel
