// IPLITE: minimal host-to-host layer.  Carries source/destination node ids
// and an upper-protocol number, and demuxes upward by that number — the
// same role IP played in the paper's stack (Figure 5).
#pragma once

#include <cstdint>
#include <map>

#include "xkernel/protocol.hpp"

namespace rtpb::xkernel {

class IpLite final : public Protocol {
 public:
  IpLite() : Protocol("iplite") {}

  static constexpr std::uint8_t kProtoUdp = 17;

  /// Register the protocol that handles a given protocol number.
  void register_upper(std::uint8_t proto, Protocol* up);

  /// The protocol number used for pushes from above (set per upper via
  /// attrs-independent configuration: each upper pushes through its own
  /// bound number).
  void push_as(std::uint8_t proto, Message& msg, const MsgAttrs& attrs);

  void push(Message& msg, const MsgAttrs& attrs) override;
  void demux(Message& msg, MsgAttrs& attrs) override;

  [[nodiscard]] std::uint64_t bad_headers() const { return bad_headers_; }
  [[nodiscard]] std::uint64_t unknown_proto() const { return unknown_proto_; }

  /// Header: src node (u32), dst node (u32), proto (u8), length (u32).
  static constexpr std::size_t kHeaderSize = 4 + 4 + 1 + 4;

 private:
  std::map<std::uint8_t, Protocol*> uppers_;
  std::uint64_t bad_headers_ = 0;
  std::uint64_t unknown_proto_ = 0;
};

}  // namespace rtpb::xkernel
