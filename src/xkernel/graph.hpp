// Protocol graph composition — the analogue of x-kernel's graph.comp.
//
// A HostStack instantiates and wires one host's protocol graph
// (SIMETH ← IPLITE ← UDPLITE) over the shared link fabric.  Higher-level
// anchor protocols (RTPB) bind to UDPLITE ports on top.  The textual
// graph spec is parsed so configurations remain declarative, as in the
// original system.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "net/network.hpp"
#include "xkernel/iplite.hpp"
#include "xkernel/simeth.hpp"
#include "xkernel/udplite.hpp"

namespace rtpb::xkernel {

/// One host's configured protocol stack.
class HostStack {
 public:
  /// Build the standard stack on `network`.  `graph_spec` is a
  /// semicolon-separated bottom-up list; the default matches the paper.
  explicit HostStack(net::Network& network,
                     const std::string& graph_spec = "simeth;iplite;udplite");

  [[nodiscard]] net::NodeId node() const { return eth_->node(); }
  [[nodiscard]] SimEth& eth() { return *eth_; }
  [[nodiscard]] IpLite& ip() { return *ip_; }
  [[nodiscard]] UdpLite& udp() { return *udp_; }

  /// Convenience: send an application payload to a remote endpoint from a
  /// local port.
  void send_datagram(net::Port local_port, net::Endpoint remote, Bytes payload);
  /// Same, for a pre-built message.  Taken by value: callers fanning one
  /// encoded payload out to N peers pass copies that share the body
  /// buffer, so only per-peer headers are materialised.
  void send_message(net::Port local_port, net::Endpoint remote, Message msg);

  /// The protocol names in bottom-up order, as configured.
  [[nodiscard]] const std::vector<std::string>& graph() const { return graph_; }

 private:
  std::vector<std::string> graph_;
  std::unique_ptr<SimEth> eth_;
  std::unique_ptr<IpLite> ip_;
  std::unique_ptr<UdpLite> udp_;
};

/// Parse "a;b;c" into {"a","b","c"} (whitespace trimmed, empties dropped).
[[nodiscard]] std::vector<std::string> parse_graph_spec(const std::string& spec);

}  // namespace rtpb::xkernel
