// FRAGLITE: fragmentation / reassembly protocol, the analogue of
// x-kernel's BLAST.  Sits between an anchor protocol (RTPB) and UDPLITE so
// that objects larger than the link MTU can be replicated: pushes split a
// message into MTU-sized fragments, demux reassembles them and delivers
// the original message upward.  Incomplete reassemblies are garbage
// collected after a timeout (a lost fragment loses the whole message —
// the RTPB layer's periodic updates / NACKs recover, as for any loss).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <tuple>

#include "sim/simulator.hpp"
#include "xkernel/protocol.hpp"

namespace rtpb::xkernel {

class FragLite final : public Protocol {
 public:
  FragLite(sim::Simulator& sim, std::size_t max_fragment_payload = 1400,
           Duration reassembly_timeout = millis(500));

  using Handler = std::function<void(Message&, const MsgAttrs&)>;
  /// Deliver reassembled messages here (single upper, like an anchor
  /// protocol's dedicated channel).
  void set_handler(Handler handler) { handler_ = std::move(handler); }

  /// Fragment and forward downward.  Single-fragment messages still carry
  /// the FRAGLITE header so the receiver needs no out-of-band signal.
  void push(Message& msg, const MsgAttrs& attrs) override;
  /// Reassemble fragments; deliver the complete message to the handler.
  void demux(Message& msg, MsgAttrs& attrs) override;

  [[nodiscard]] std::uint64_t fragments_sent() const { return fragments_sent_; }
  [[nodiscard]] std::uint64_t messages_sent() const { return messages_sent_; }
  [[nodiscard]] std::uint64_t messages_reassembled() const { return messages_reassembled_; }
  [[nodiscard]] std::uint64_t reassembly_timeouts() const { return reassembly_timeouts_; }
  [[nodiscard]] std::uint64_t bad_fragments() const { return bad_fragments_; }
  /// Replayed/duplicated fragments ignored (slot already filled).
  [[nodiscard]] std::uint64_t duplicate_fragments() const { return duplicate_fragments_; }
  [[nodiscard]] std::size_t pending_reassemblies() const { return reassembly_.size(); }

  /// Header: msg id (u32), fragment index (u16), fragment count (u16),
  /// total length (u32).
  static constexpr std::size_t kHeaderSize = 4 + 2 + 2 + 4;

  /// Upper bound on one fragment's payload as carried by UDPLITE (16-bit
  /// length field) — used to reject absurd `total` claims before they size
  /// the reassembly table.
  static constexpr std::size_t kMaxFragmentSize = 0xFFFF;

 private:
  using Key = std::tuple<net::NodeId, net::Port, std::uint32_t>;  // src node, src port, msg id

  struct Reassembly {
    /// Zero-copy views into the arriving wire buffers, indexed by fragment
    /// number; a null buf marks a missing fragment.
    std::vector<Message::SharedView> fragments;
    std::size_t received = 0;
    std::size_t bytes_received = 0;
    std::uint32_t total_length = 0;
    sim::EventHandle gc;
  };

  void expire(const Key& key);

  sim::Simulator& sim_;
  std::size_t max_payload_;
  Duration timeout_;
  Handler handler_;
  std::uint32_t next_msg_id_ = 1;
  std::map<Key, Reassembly> reassembly_;

  std::uint64_t fragments_sent_ = 0;
  std::uint64_t messages_sent_ = 0;
  std::uint64_t messages_reassembled_ = 0;
  std::uint64_t reassembly_timeouts_ = 0;
  std::uint64_t bad_fragments_ = 0;
  std::uint64_t duplicate_fragments_ = 0;
};

}  // namespace rtpb::xkernel
