// UDPLITE: unreliable datagram transport with ports and a checksum — the
// transport the RTPB anchor protocol rides on (paper §4.1: "the underlying
// transport protocol is UDP", with explicit acknowledgment left to the
// layers above).
#pragma once

#include <cstdint>
#include <functional>
#include <map>

#include "xkernel/iplite.hpp"
#include "xkernel/protocol.hpp"

namespace rtpb::xkernel {

class UdpLite final : public Protocol {
 public:
  UdpLite() : Protocol("udplite") {}

  using Handler = std::function<void(Message&, const MsgAttrs&)>;

  /// Passive open: deliver datagrams addressed to `port` to `handler`.
  void bind(net::Port port, Handler handler);
  void unbind(net::Port port);

  /// Send `msg` from attrs.src.port to attrs.dst (node + port).
  void push(Message& msg, const MsgAttrs& attrs) override;
  void demux(Message& msg, MsgAttrs& attrs) override;

  /// xOpen: an outgoing channel to `remote` from `local`.  The session
  /// caches everything except the per-message length and checksum.
  [[nodiscard]] std::unique_ptr<Session> open(net::Endpoint local, net::Endpoint remote);

  [[nodiscard]] std::uint64_t checksum_failures() const { return checksum_failures_; }
  [[nodiscard]] std::uint64_t no_listener() const { return no_listener_; }

  /// Header: src port (u16), dst port (u16), length (u16), checksum (u16).
  static constexpr std::size_t kHeaderSize = 8;

  /// Internet-style ones'-complement sum over the datagram body.
  [[nodiscard]] static std::uint16_t checksum(std::span<const std::uint8_t> data);
  /// Same sum over the concatenation of two segments — lets the push path
  /// checksum a message's (header, shared body) pair without gathering it
  /// into a contiguous copy first.
  [[nodiscard]] static std::uint16_t checksum(std::span<const std::uint8_t> a,
                                              std::span<const std::uint8_t> b);

 private:
  std::map<net::Port, Handler> bindings_;
  std::uint64_t checksum_failures_ = 0;
  std::uint64_t no_listener_ = 0;
};

}  // namespace rtpb::xkernel
