#include "xkernel/fraglite.hpp"

#include <algorithm>

#include "util/bytebuffer.hpp"
#include "util/log.hpp"

namespace rtpb::xkernel {

FragLite::FragLite(sim::Simulator& sim, std::size_t max_fragment_payload,
                   Duration reassembly_timeout)
    : Protocol("fraglite"),
      sim_(sim),
      max_payload_(max_fragment_payload),
      timeout_(reassembly_timeout) {
  RTPB_EXPECTS(max_payload_ > 0);
  RTPB_EXPECTS(timeout_ > Duration::zero());
}

void FragLite::push(Message& msg, const MsgAttrs& attrs) {
  RTPB_EXPECTS(down() != nullptr);
  // Fragment over the message's shared body: each fragment is an
  // offset/length view into the SAME ref-counted buffer, so a 10-fragment
  // message (or one update fanned out to N backups) costs zero payload
  // copies here — only the per-fragment headers are owned storage.
  const Message::SharedView whole = msg.shared_contents();
  const std::uint32_t msg_id = next_msg_id_++;
  const auto total = static_cast<std::uint32_t>(whole.length);
  const std::size_t count = std::max<std::size_t>(1, (whole.length + max_payload_ - 1) / max_payload_);
  RTPB_EXPECTS(count <= 0xFFFF);

  ++messages_sent_;
  if (tele_enabled()) {
    tele_hub()->registry().counter("xkernel.fraglite.messages_sent").add();
    tele_record("frag-push", std::to_string(count) + " fragment(s), " +
                                 std::to_string(whole.length) + "B");
  }
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t begin = i * max_payload_;
    const std::size_t end = std::min<std::size_t>(whole.length, begin + max_payload_);
    Message fragment =
        whole.buf ? Message::from_shared(whole.buf, whole.offset + begin, end - begin)
                  : Message{};
    ByteWriter header(kHeaderSize);
    header.u32(msg_id);
    header.u16(static_cast<std::uint16_t>(i));
    header.u16(static_cast<std::uint16_t>(count));
    header.u32(total);
    fragment.push(header.data());
    ++fragments_sent_;
    down()->push(fragment, attrs);
  }
}

void FragLite::demux(Message& msg, MsgAttrs& attrs) {
  if (msg.size() < kHeaderSize) {
    ++bad_fragments_;
    return;
  }
  ByteReader r(msg.pop(kHeaderSize));
  const std::uint32_t msg_id = r.u32();
  const std::uint16_t index = r.u16();
  const std::uint16_t count = r.u16();
  const std::uint32_t total = r.u32();
  // Header sanity: a fragment index outside [0, count) or a total length
  // no fragment split could produce (each fragment's payload rides in a
  // UDPLITE datagram whose length field is 16 bits) is corruption — it
  // must never size or index the fragment table.
  if (!r.ok() || count == 0 || index >= count ||
      total > static_cast<std::uint64_t>(count) * kMaxFragmentSize) {
    ++bad_fragments_;
    return;
  }

  // Fast path: unfragmented message.
  if (count == 1) {
    if (msg.size() != total) {
      ++bad_fragments_;
      return;
    }
    ++messages_reassembled_;
    if (tele_enabled()) {
      tele_hub()->registry().counter("xkernel.fraglite.messages_reassembled").add();
      tele_record("frag-demux", "unfragmented");
    }
    if (handler_) handler_(msg, attrs);
    return;
  }

  const Key key{attrs.src.node, attrs.src.port, msg_id};
  Reassembly& re = reassembly_[key];
  if (re.fragments.empty()) {
    re.fragments.resize(count);
    re.total_length = total;
    re.gc = sim_.schedule_after(timeout_, [this, key] { expire(key); });
  }
  if (re.fragments.size() != count || re.total_length != total) {
    // Conflicting fragment metadata for the same id: drop everything.
    ++bad_fragments_;
    re.gc.cancel();
    reassembly_.erase(key);
    return;
  }
  if (re.fragments[index].buf != nullptr) {
    // Replayed or duplicated fragment: the slot is taken; it must neither
    // overwrite the stored payload nor count toward completion again.
    ++duplicate_fragments_;
    return;
  }
  const Message::SharedView payload = msg.shared_contents();
  if (re.bytes_received + payload.length > re.total_length) {
    // An over-long (corrupted) fragment would push the reassembled size
    // past the declared total; reject the fragment, keep the reassembly.
    ++bad_fragments_;
    return;
  }
  // Store a zero-copy view of the arriving wire buffer; bytes are gathered
  // exactly once, at completion.  An empty fragment still takes its slot
  // (shared empty buffer) so `buf != nullptr` doubles as the presence bit.
  re.fragments[index] =
      payload.buf ? payload : Message::SharedView{std::make_shared<const Bytes>(), 0, 0};
  re.bytes_received += payload.length;
  ++re.received;
  if (re.received < count) return;

  // Complete: stitch and deliver.
  if (re.bytes_received != re.total_length) {
    ++bad_fragments_;
    re.gc.cancel();
    reassembly_.erase(key);
    return;
  }
  Bytes whole;
  whole.reserve(re.bytes_received);
  for (const auto& frag : re.fragments) {
    const auto s = frag.span();
    whole.insert(whole.end(), s.begin(), s.end());
  }
  re.gc.cancel();
  reassembly_.erase(key);
  ++messages_reassembled_;
  if (tele_enabled()) {
    tele_hub()->registry().counter("xkernel.fraglite.messages_reassembled").add();
    tele_record("frag-demux", "reassembled " + std::to_string(count) + " fragments");
  }
  Message complete{std::move(whole)};
  if (handler_) handler_(complete, attrs);
}

void FragLite::expire(const Key& key) {
  auto it = reassembly_.find(key);
  if (it == reassembly_.end()) return;
  ++reassembly_timeouts_;
  RTPB_DEBUG("fraglite", "reassembly timed out (%zu/%zu fragments)", it->second.received,
             it->second.fragments.size());
  if (tele_enabled()) {
    tele_hub()->registry().counter("xkernel.fraglite.reassembly_timeouts").add();
    tele_record("frag-timeout", std::to_string(it->second.received) + "/" +
                                    std::to_string(it->second.fragments.size()) + " fragments");
  }
  reassembly_.erase(it);
}

}  // namespace rtpb::xkernel
