#include "xkernel/fraglite.hpp"

#include <algorithm>

#include "util/bytebuffer.hpp"
#include "util/log.hpp"

namespace rtpb::xkernel {

FragLite::FragLite(sim::Simulator& sim, std::size_t max_fragment_payload,
                   Duration reassembly_timeout)
    : Protocol("fraglite"),
      sim_(sim),
      max_payload_(max_fragment_payload),
      timeout_(reassembly_timeout) {
  RTPB_EXPECTS(max_payload_ > 0);
  RTPB_EXPECTS(timeout_ > Duration::zero());
}

void FragLite::push(Message& msg, const MsgAttrs& attrs) {
  RTPB_EXPECTS(down() != nullptr);
  const Bytes whole = msg.to_bytes();
  const std::uint32_t msg_id = next_msg_id_++;
  const auto total = static_cast<std::uint32_t>(whole.size());
  const std::size_t count = std::max<std::size_t>(1, (whole.size() + max_payload_ - 1) / max_payload_);
  RTPB_EXPECTS(count <= 0xFFFF);

  ++messages_sent_;
  if (tele_enabled()) {
    tele_hub()->registry().counter("xkernel.fraglite.messages_sent").add();
    tele_record("frag-push", std::to_string(count) + " fragment(s), " +
                                 std::to_string(whole.size()) + "B");
  }
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t begin = i * max_payload_;
    const std::size_t end = std::min(whole.size(), begin + max_payload_);
    Message fragment{Bytes(whole.begin() + static_cast<std::ptrdiff_t>(begin),
                           whole.begin() + static_cast<std::ptrdiff_t>(end))};
    ByteWriter header(kHeaderSize);
    header.u32(msg_id);
    header.u16(static_cast<std::uint16_t>(i));
    header.u16(static_cast<std::uint16_t>(count));
    header.u32(total);
    fragment.push(header.data());
    ++fragments_sent_;
    down()->push(fragment, attrs);
  }
}

void FragLite::demux(Message& msg, MsgAttrs& attrs) {
  if (msg.size() < kHeaderSize) {
    ++bad_fragments_;
    return;
  }
  ByteReader r(msg.pop(kHeaderSize));
  const std::uint32_t msg_id = r.u32();
  const std::uint16_t index = r.u16();
  const std::uint16_t count = r.u16();
  const std::uint32_t total = r.u32();
  if (!r.ok() || count == 0 || index >= count) {
    ++bad_fragments_;
    return;
  }

  // Fast path: unfragmented message.
  if (count == 1) {
    if (msg.size() != total) {
      ++bad_fragments_;
      return;
    }
    ++messages_reassembled_;
    if (tele_enabled()) {
      tele_hub()->registry().counter("xkernel.fraglite.messages_reassembled").add();
      tele_record("frag-demux", "unfragmented");
    }
    if (handler_) handler_(msg, attrs);
    return;
  }

  const Key key{attrs.src.node, attrs.src.port, msg_id};
  Reassembly& re = reassembly_[key];
  if (re.fragments.empty()) {
    re.fragments.resize(count);
    re.present.assign(count, false);
    re.total_length = total;
    re.gc = sim_.schedule_after(timeout_, [this, key] { expire(key); });
  }
  if (re.fragments.size() != count || re.total_length != total) {
    // Conflicting fragment metadata for the same id: drop everything.
    ++bad_fragments_;
    re.gc.cancel();
    reassembly_.erase(key);
    return;
  }
  if (re.present[index]) return;  // duplicate
  re.fragments[index] = msg.to_bytes();
  re.present[index] = true;
  ++re.received;
  if (re.received < count) return;

  // Complete: stitch and deliver.
  Bytes whole;
  whole.reserve(total);
  for (auto& frag : re.fragments) whole.insert(whole.end(), frag.begin(), frag.end());
  re.gc.cancel();
  reassembly_.erase(key);
  if (whole.size() != total) {
    ++bad_fragments_;
    return;
  }
  ++messages_reassembled_;
  if (tele_enabled()) {
    tele_hub()->registry().counter("xkernel.fraglite.messages_reassembled").add();
    tele_record("frag-demux", "reassembled " + std::to_string(count) + " fragments");
  }
  Message complete{std::move(whole)};
  if (handler_) handler_(complete, attrs);
}

void FragLite::expire(const Key& key) {
  auto it = reassembly_.find(key);
  if (it == reassembly_.end()) return;
  ++reassembly_timeouts_;
  RTPB_DEBUG("fraglite", "reassembly timed out (%zu/%zu fragments)", it->second.received,
             it->second.fragments.size());
  if (tele_enabled()) {
    tele_hub()->registry().counter("xkernel.fraglite.reassembly_timeouts").add();
    tele_record("frag-timeout", std::to_string(it->second.received) + "/" +
                                    std::to_string(it->second.fragments.size()) + " fragments");
  }
  reassembly_.erase(it);
}

}  // namespace rtpb::xkernel
