// x-kernel style message object.
//
// Protocols prepend their header on the way down (push) and strip it on
// the way up (pop).  A message is split into two regions:
//
//   [ header region (owned, headroom in front) | body (shared, immutable) ]
//
// The body is a ref-counted immutable buffer plus an offset/length view,
// so copying a Message — the primary fanning one encoded update out to N
// backups, FRAGLITE slicing a large message into fragments — shares one
// underlying allocation instead of deep-copying the payload.  Headers are
// per-message: pushes write into the small owned header region (with
// headroom reserved in front, mirroring x-kernel's optimisation for
// layered header addition) and never touch the shared body.  Pops consume
// the header region first, then advance the body view in place.
#pragma once

#include <cstdint>
#include <memory>
#include <span>

#include "util/assert.hpp"
#include "util/bytebuffer.hpp"

namespace rtpb::xkernel {

class Message {
 public:
  using SharedBytes = std::shared_ptr<const Bytes>;

  /// A view into a shared immutable buffer: the zero-copy currency of the
  /// wire path (fan-out, fragmentation).
  struct SharedView {
    SharedBytes buf;
    std::size_t offset = 0;
    std::size_t length = 0;

    [[nodiscard]] std::span<const std::uint8_t> span() const {
      return buf ? std::span<const std::uint8_t>{buf->data() + offset, length}
                 : std::span<const std::uint8_t>{};
    }
  };

  Message() = default;

  /// Build a message around an application payload.  The payload is taken
  /// by value and MOVED into the shared body — no copy; `headroom` bytes
  /// are reserved in front for protocol headers.
  explicit Message(Bytes payload, std::size_t headroom = kDefaultHeadroom)
      : head_reserve_(headroom), body_(std::make_shared<const Bytes>(std::move(payload))) {
    body_len_ = body_->size();
  }

  /// Reconstruct a message from raw wire bytes (no headroom; pops only).
  static Message from_wire(std::span<const std::uint8_t> wire) {
    Message m;
    m.body_ = std::make_shared<const Bytes>(wire.begin(), wire.end());
    m.body_len_ = m.body_->size();
    m.head_reserve_ = 0;
    return m;
  }

  /// Zero-copy: view `length` bytes of `body` starting at `offset`.  The
  /// buffer is shared, never copied — the encode-once fan-out and the
  /// fragmentation path build all their messages through here.
  static Message from_shared(SharedBytes body, std::size_t offset, std::size_t length,
                             std::size_t headroom = kDefaultHeadroom) {
    RTPB_EXPECTS(body != nullptr);
    RTPB_EXPECTS(offset + length <= body->size());
    Message m;
    m.body_ = std::move(body);
    m.body_off_ = offset;
    m.body_len_ = length;
    m.head_reserve_ = headroom;
    return m;
  }

  /// Prepend a header (written into the owned header region; the shared
  /// body is untouched).
  void push(std::span<const std::uint8_t> header) {
    if (header.size() > head_) grow_headroom(header.size());
    head_ -= header.size();
    std::copy(header.begin(), header.end(), hdr_.begin() + static_cast<std::ptrdiff_t>(head_));
  }

  /// Strip `n` bytes from the front, returning them.  The returned span is
  /// valid until the next mutation of this message.
  [[nodiscard]] std::span<const std::uint8_t> pop(std::size_t n) {
    RTPB_EXPECTS(n <= size());
    const std::size_t in_hdr = header_size();
    if (in_hdr == 0) {
      auto out = std::span<const std::uint8_t>{body_->data() + body_off_, n};
      body_off_ += n;
      body_len_ -= n;
      return out;
    }
    if (n <= in_hdr) {
      auto out = std::span<const std::uint8_t>{hdr_.data() + head_, n};
      head_ += n;
      return out;
    }
    // Straddles the header/body seam (never on the normal protocol paths,
    // where pops mirror earlier pushes): linearise, then pop.
    linearize();
    return pop(n);
  }

  /// Current contents (front header through end of payload) as one
  /// contiguous span.  Linearises first if headers and body are both
  /// present; receive-path messages (pops only) and freshly-built payloads
  /// are always contiguous already.
  [[nodiscard]] std::span<const std::uint8_t> contents() {
    if (header_size() == 0) return body_view();
    if (body_len_ == 0) return {hdr_.data() + head_, header_size()};
    linearize();
    return body_view();
  }

  /// The two storage segments (header, body) without linearising — for
  /// consumers that can gather, e.g. the UDPLITE checksum.
  [[nodiscard]] std::span<const std::uint8_t> header_segment() const {
    return {hdr_.data() + head_, header_size()};
  }
  [[nodiscard]] std::span<const std::uint8_t> body_segment() const { return body_view(); }

  /// The full contents as a shared immutable view.  Zero-copy when no
  /// headers have been pushed (the fragmentation fast path); otherwise the
  /// message is linearised into a fresh shared buffer first.
  [[nodiscard]] SharedView shared_contents() {
    if (header_size() != 0) linearize();
    if (!body_) return {};
    return {body_, body_off_, body_len_};
  }

  [[nodiscard]] std::size_t size() const { return header_size() + body_len_; }
  [[nodiscard]] bool empty() const { return size() == 0; }

  /// Copy out the remaining bytes (typically the application payload after
  /// all headers are stripped).
  [[nodiscard]] Bytes to_bytes() const {
    Bytes out;
    out.reserve(size());
    const auto h = header_segment();
    out.insert(out.end(), h.begin(), h.end());
    const auto b = body_view();
    out.insert(out.end(), b.begin(), b.end());
    return out;
  }

  static constexpr std::size_t kDefaultHeadroom = 64;

 private:
  [[nodiscard]] std::size_t header_size() const { return hdr_.size() - head_; }
  [[nodiscard]] std::span<const std::uint8_t> body_view() const {
    return body_ ? std::span<const std::uint8_t>{body_->data() + body_off_, body_len_}
                 : std::span<const std::uint8_t>{};
  }

  /// Collapse header region + body view into a fresh shared body, keeping
  /// the configured headroom available for further pushes.
  void linearize() {
    Bytes flat;
    flat.reserve(size());
    const auto h = header_segment();
    flat.insert(flat.end(), h.begin(), h.end());
    const auto b = body_view();
    flat.insert(flat.end(), b.begin(), b.end());
    body_ = std::make_shared<const Bytes>(std::move(flat));
    body_off_ = 0;
    body_len_ = body_->size();
    hdr_.clear();
    head_ = 0;
  }

  void grow_headroom(std::size_t need) {
    const std::size_t extra = std::max(std::max(need, head_reserve_), kDefaultHeadroom);
    Bytes bigger(hdr_.size() - head_ + extra);
    std::copy(hdr_.begin() + static_cast<std::ptrdiff_t>(head_), hdr_.end(),
              bigger.begin() + static_cast<std::ptrdiff_t>(extra));
    hdr_ = std::move(bigger);
    head_ = extra;
  }

  Bytes hdr_;               ///< owned header region; [head_, hdr_.size()) valid
  std::size_t head_ = 0;    ///< front of the valid header bytes
  std::size_t head_reserve_ = kDefaultHeadroom;  ///< headroom hint for first push
  SharedBytes body_;        ///< shared immutable payload (may be null = empty)
  std::size_t body_off_ = 0;
  std::size_t body_len_ = 0;
};

}  // namespace rtpb::xkernel
