// x-kernel style message object.
//
// Protocols prepend their header on the way down (push) and strip it on
// the way up (pop).  The buffer keeps headroom in front of the payload so
// a push is normally a copy into reserved space, not a reallocation —
// mirroring x-kernel's optimisation for layered header addition.
#pragma once

#include <cstdint>
#include <span>

#include "util/assert.hpp"
#include "util/bytebuffer.hpp"

namespace rtpb::xkernel {

class Message {
 public:
  Message() : Message(Bytes{}) {}

  /// Build a message around an application payload, reserving `headroom`
  /// bytes in front for protocol headers.
  explicit Message(Bytes payload, std::size_t headroom = kDefaultHeadroom)
      : head_(headroom) {
    buf_.resize(headroom + payload.size());
    std::copy(payload.begin(), payload.end(), buf_.begin() + static_cast<std::ptrdiff_t>(headroom));
  }

  /// Reconstruct a message from raw wire bytes (no headroom; pops only).
  static Message from_wire(std::span<const std::uint8_t> wire) {
    Message m;
    m.buf_ = Bytes(wire.begin(), wire.end());
    m.head_ = 0;
    return m;
  }

  /// Prepend a header.
  void push(std::span<const std::uint8_t> header) {
    if (header.size() > head_) {
      grow_headroom(header.size());
    }
    head_ -= header.size();
    std::copy(header.begin(), header.end(), buf_.begin() + static_cast<std::ptrdiff_t>(head_));
  }

  /// Strip `n` bytes from the front, returning them.
  [[nodiscard]] std::span<const std::uint8_t> pop(std::size_t n) {
    RTPB_EXPECTS(n <= size());
    auto out = std::span<const std::uint8_t>{buf_.data() + head_, n};
    head_ += n;
    return out;
  }

  /// Current contents (front header through end of payload).
  [[nodiscard]] std::span<const std::uint8_t> contents() const {
    return {buf_.data() + head_, buf_.size() - head_};
  }

  [[nodiscard]] std::size_t size() const { return buf_.size() - head_; }
  [[nodiscard]] bool empty() const { return size() == 0; }

  /// Copy out the remaining bytes (typically the application payload after
  /// all headers are stripped).
  [[nodiscard]] Bytes to_bytes() const {
    return Bytes(buf_.begin() + static_cast<std::ptrdiff_t>(head_), buf_.end());
  }

  static constexpr std::size_t kDefaultHeadroom = 64;

 private:
  void grow_headroom(std::size_t need) {
    const std::size_t extra = std::max(need, kDefaultHeadroom);
    Bytes bigger(buf_.size() + extra);
    std::copy(buf_.begin(), buf_.end(), bigger.begin() + static_cast<std::ptrdiff_t>(extra));
    buf_ = std::move(bigger);
    head_ += extra;
  }

  Bytes buf_;
  std::size_t head_ = 0;
};

}  // namespace rtpb::xkernel
