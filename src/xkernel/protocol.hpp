// x-kernel uniform protocol interface (Hutchinson & Peterson).
//
// A Protocol object sits at a fixed place in a per-host protocol graph.
// Downcalls travel via push() (xPush), upcalls via demux() (xDemux).  The
// graph is composed at configuration time (see graph.hpp), mirroring the
// x-kernel's graph.comp: protocols are written against the uniform
// interface and can be stacked in any compatible order.
#pragma once

#include <memory>
#include <string>
#include <string_view>

#include "net/address.hpp"
#include "telemetry/telemetry.hpp"
#include "xkernel/message.hpp"

namespace rtpb::xkernel {

/// Demux attributes that accompany a message on its way up the stack.
/// Lower protocols fill in what they know (SIMETH the nodes, UDPLITE the
/// ports).
struct MsgAttrs {
  net::Endpoint src;
  net::Endpoint dst;
};

/// An open channel through a protocol (x-kernel's session object): the
/// demux keys are fixed at open time, so per-message work is reduced to
/// prepending a precomputed header template.  Obtained via a protocol's
/// open() and used for repeated sends to the same participant.
class Session {
 public:
  virtual ~Session() = default;
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// xPush on the open channel.
  virtual void push(Message& msg) = 0;
  [[nodiscard]] const net::Endpoint& remote() const { return remote_; }
  [[nodiscard]] const net::Endpoint& local() const { return local_; }

 protected:
  Session(net::Endpoint local, net::Endpoint remote) : local_(local), remote_(remote) {}
  net::Endpoint local_;
  net::Endpoint remote_;
};

class Protocol {
 public:
  explicit Protocol(std::string name) : name_(std::move(name)) {}
  virtual ~Protocol() = default;

  Protocol(const Protocol&) = delete;
  Protocol& operator=(const Protocol&) = delete;

  [[nodiscard]] std::string_view name() const { return name_; }

  /// xPush: accept a message from the protocol above and move it toward
  /// the wire.  `attrs` names the intended destination endpoint.
  virtual void push(Message& msg, const MsgAttrs& attrs) = 0;

  /// xDemux: accept a message from the protocol below and deliver it to
  /// the protocol above (or consume it).
  virtual void demux(Message& msg, MsgAttrs& attrs) = 0;

  /// Wire this protocol above `down` in the graph.
  void connect_down(Protocol& down) { down_ = &down; }
  [[nodiscard]] Protocol* down() const { return down_; }

  /// Attach the telemetry hub and the owning host's node id so xPush/xPop
  /// hops show up on a per-host, per-layer track.  Optional — protocols
  /// run fine without it.
  void set_telemetry(telemetry::Hub* hub, net::NodeId node) {
    hub_ = hub;
    tele_node_ = node;
  }

 protected:
  [[nodiscard]] bool tele_enabled() const { return hub_ != nullptr && hub_->enabled(); }
  /// Record an instant event on this protocol's track ("node<N>/<name>"),
  /// attached to the hub's current causal span.  Callers guard with
  /// tele_enabled() so detail strings are only built when collecting.
  void tele_record(const char* event, std::string detail = {}) {
    if (!tele_enabled()) return;
    hub_->record(hub_->current_span(), tele_node_, telemetry::EventKind::kInstant,
                 "node" + std::to_string(tele_node_) + "/" + name_, event, std::move(detail));
  }
  [[nodiscard]] telemetry::Hub* tele_hub() const { return hub_; }
  [[nodiscard]] net::NodeId tele_node() const { return tele_node_; }

 private:
  std::string name_;
  Protocol* down_ = nullptr;
  telemetry::Hub* hub_ = nullptr;
  net::NodeId tele_node_ = 0;
};

}  // namespace rtpb::xkernel
