// x-kernel uniform protocol interface (Hutchinson & Peterson).
//
// A Protocol object sits at a fixed place in a per-host protocol graph.
// Downcalls travel via push() (xPush), upcalls via demux() (xDemux).  The
// graph is composed at configuration time (see graph.hpp), mirroring the
// x-kernel's graph.comp: protocols are written against the uniform
// interface and can be stacked in any compatible order.
#pragma once

#include <memory>
#include <string>
#include <string_view>

#include "net/address.hpp"
#include "xkernel/message.hpp"

namespace rtpb::xkernel {

/// Demux attributes that accompany a message on its way up the stack.
/// Lower protocols fill in what they know (SIMETH the nodes, UDPLITE the
/// ports).
struct MsgAttrs {
  net::Endpoint src;
  net::Endpoint dst;
};

/// An open channel through a protocol (x-kernel's session object): the
/// demux keys are fixed at open time, so per-message work is reduced to
/// prepending a precomputed header template.  Obtained via a protocol's
/// open() and used for repeated sends to the same participant.
class Session {
 public:
  virtual ~Session() = default;
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// xPush on the open channel.
  virtual void push(Message& msg) = 0;
  [[nodiscard]] const net::Endpoint& remote() const { return remote_; }
  [[nodiscard]] const net::Endpoint& local() const { return local_; }

 protected:
  Session(net::Endpoint local, net::Endpoint remote) : local_(local), remote_(remote) {}
  net::Endpoint local_;
  net::Endpoint remote_;
};

class Protocol {
 public:
  explicit Protocol(std::string name) : name_(std::move(name)) {}
  virtual ~Protocol() = default;

  Protocol(const Protocol&) = delete;
  Protocol& operator=(const Protocol&) = delete;

  [[nodiscard]] std::string_view name() const { return name_; }

  /// xPush: accept a message from the protocol above and move it toward
  /// the wire.  `attrs` names the intended destination endpoint.
  virtual void push(Message& msg, const MsgAttrs& attrs) = 0;

  /// xDemux: accept a message from the protocol below and deliver it to
  /// the protocol above (or consume it).
  virtual void demux(Message& msg, MsgAttrs& attrs) = 0;

  /// Wire this protocol above `down` in the graph.
  void connect_down(Protocol& down) { down_ = &down; }
  [[nodiscard]] Protocol* down() const { return down_; }

 private:
  std::string name_;
  Protocol* down_ = nullptr;
};

}  // namespace rtpb::xkernel
