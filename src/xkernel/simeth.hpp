// SIMETH: the bottom anchor of every host's protocol graph.  It adapts the
// uniform protocol interface to the simulated link fabric — the role the
// real x-kernel's ethernet driver protocol played on the 10 Mb/s LAN of
// the paper's testbed.
#pragma once

#include "net/network.hpp"
#include "xkernel/protocol.hpp"

namespace rtpb::xkernel {

class SimEth final : public Protocol {
 public:
  /// Registers a host with the fabric; delivered frames are demuxed to the
  /// protocol configured above via set_up().
  explicit SimEth(net::Network& network);

  [[nodiscard]] net::NodeId node() const { return node_; }

  void set_up(Protocol* up) { up_ = up; }

  void push(Message& msg, const MsgAttrs& attrs) override;
  void demux(Message& msg, MsgAttrs& attrs) override;

  [[nodiscard]] std::uint64_t frames_sent() const { return frames_sent_; }
  [[nodiscard]] std::uint64_t frames_received() const { return frames_received_; }

 private:
  net::Network& network_;
  net::NodeId node_ = net::kInvalidNode;
  Protocol* up_ = nullptr;
  std::uint64_t frames_sent_ = 0;
  std::uint64_t frames_received_ = 0;
};

}  // namespace rtpb::xkernel
