#include "xkernel/graph.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace rtpb::xkernel {

std::vector<std::string> parse_graph_spec(const std::string& spec) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : spec + ";") {
    if (c == ';') {
      // trim
      const auto b = cur.find_first_not_of(" \t");
      const auto e = cur.find_last_not_of(" \t");
      if (b != std::string::npos) out.push_back(cur.substr(b, e - b + 1));
      cur.clear();
    } else {
      cur += c;
    }
  }
  return out;
}

HostStack::HostStack(net::Network& network, const std::string& graph_spec)
    : graph_(parse_graph_spec(graph_spec)) {
  // The composition rules: the graph must be the supported linear stack.
  RTPB_EXPECTS(graph_.size() == 3);
  RTPB_EXPECTS(graph_[0] == "simeth" && graph_[1] == "iplite" && graph_[2] == "udplite");

  eth_ = std::make_unique<SimEth>(network);
  ip_ = std::make_unique<IpLite>();
  udp_ = std::make_unique<UdpLite>();

  ip_->connect_down(*eth_);
  eth_->set_up(ip_.get());
  udp_->connect_down(*ip_);
  ip_->register_upper(IpLite::kProtoUdp, udp_.get());

  telemetry::Hub& hub = network.simulator().telemetry();
  eth_->set_telemetry(&hub, node());
  ip_->set_telemetry(&hub, node());
  udp_->set_telemetry(&hub, node());
}

void HostStack::send_datagram(net::Port local_port, net::Endpoint remote, Bytes payload) {
  send_message(local_port, remote, Message{std::move(payload)});
}

void HostStack::send_message(net::Port local_port, net::Endpoint remote, Message msg) {
  MsgAttrs attrs;
  attrs.src = {node(), local_port};
  attrs.dst = remote;
  udp_->push(msg, attrs);
}

}  // namespace rtpb::xkernel
