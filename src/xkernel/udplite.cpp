#include "xkernel/udplite.hpp"

#include "util/bytebuffer.hpp"
#include "util/log.hpp"

namespace rtpb::xkernel {

void UdpLite::bind(net::Port port, Handler handler) {
  RTPB_EXPECTS(handler != nullptr);
  RTPB_EXPECTS(!bindings_.contains(port));
  bindings_[port] = std::move(handler);
}

void UdpLite::unbind(net::Port port) { bindings_.erase(port); }

std::uint16_t UdpLite::checksum(std::span<const std::uint8_t> data) {
  return checksum(data, {});
}

std::uint16_t UdpLite::checksum(std::span<const std::uint8_t> a,
                                std::span<const std::uint8_t> b) {
  // Ones'-complement sum over the virtual concatenation a‖b, identical
  // byte-for-byte to summing a gathered copy.
  std::uint32_t sum = 0;
  const std::size_t total = a.size() + b.size();
  const auto at = [&](std::size_t i) { return i < a.size() ? a[i] : b[i - a.size()]; };
  for (std::size_t i = 0; i < total; i += 2) {
    std::uint16_t word = static_cast<std::uint16_t>(at(i) << 8);
    if (i + 1 < total) word = static_cast<std::uint16_t>(word | at(i + 1));
    sum += word;
    sum = (sum & 0xFFFF) + (sum >> 16);
  }
  return static_cast<std::uint16_t>(~sum & 0xFFFF);
}

void UdpLite::push(Message& msg, const MsgAttrs& attrs) {
  RTPB_EXPECTS(down() != nullptr);
  if (tele_enabled()) {
    tele_hub()->registry().counter("xkernel.udplite.pushes").add();
    tele_record("udp-push", "port " + std::to_string(attrs.src.port) + "->" +
                                std::to_string(attrs.dst.port));
  }
  const std::uint16_t csum = checksum(msg.header_segment(), msg.body_segment());
  ByteWriter w(kHeaderSize);
  w.u16(attrs.src.port);
  w.u16(attrs.dst.port);
  w.u16(static_cast<std::uint16_t>(msg.size()));
  w.u16(csum);
  msg.push(w.data());
  down()->push(msg, attrs);
}

namespace {
class UdpSession final : public Session {
 public:
  UdpSession(UdpLite& udp, net::Endpoint local, net::Endpoint remote)
      : Session(local, remote), udp_(udp) {
    attrs_.src = local;
    attrs_.dst = remote;
  }
  void push(Message& msg) override { udp_.push(msg, attrs_); }

 private:
  UdpLite& udp_;
  MsgAttrs attrs_;
};
}  // namespace

std::unique_ptr<Session> UdpLite::open(net::Endpoint local, net::Endpoint remote) {
  RTPB_EXPECTS(remote.node != net::kInvalidNode);
  return std::make_unique<UdpSession>(*this, local, remote);
}

void UdpLite::demux(Message& msg, MsgAttrs& attrs) {
  if (msg.size() < kHeaderSize) {
    ++checksum_failures_;
    if (tele_enabled()) {
      tele_hub()->registry().counter("xkernel.udplite.checksum_failures").add();
      tele_record("udp-drop", "runt");
    }
    return;
  }
  ByteReader r(msg.pop(kHeaderSize));
  const std::uint16_t src_port = r.u16();
  const std::uint16_t dst_port = r.u16();
  const std::uint16_t length = r.u16();
  const std::uint16_t csum = r.u16();
  if (!r.ok() || length != msg.size() || checksum(msg.contents()) != csum) {
    ++checksum_failures_;
    RTPB_WARN("udplite", "checksum/length failure on datagram to port %u", dst_port);
    if (tele_enabled()) {
      tele_hub()->registry().counter("xkernel.udplite.checksum_failures").add();
      tele_record("udp-drop", "checksum port " + std::to_string(dst_port));
    }
    return;
  }
  attrs.src.port = src_port;
  attrs.dst.port = dst_port;
  auto it = bindings_.find(dst_port);
  if (it == bindings_.end()) {
    ++no_listener_;
    RTPB_DEBUG("udplite", "no listener on port %u; dropped", dst_port);
    if (tele_enabled()) {
      tele_hub()->registry().counter("xkernel.udplite.no_listener").add();
      tele_record("udp-drop", "no listener port " + std::to_string(dst_port));
    }
    return;
  }
  if (tele_enabled()) {
    tele_hub()->registry().counter("xkernel.udplite.demuxes").add();
    tele_record("udp-demux", "port " + std::to_string(dst_port));
  }
  it->second(msg, attrs);
}

}  // namespace rtpb::xkernel
