// Invariant oracles evaluated continuously while a chaos scenario runs.
//
// The monitor samples the service on a periodic simulator event and checks
// the temporal-consistency guarantees the paper proves, gated by the
// schedule's declared fault epochs (dense-time model checking in spirit:
// every explored trajectory is judged, not just the end state):
//
//   staleness-window     while a primary is up and no fault epoch is open,
//                        no admitted object's primary–backup distance may
//                        exceed its negotiated window δ_i
//   inconsistency-epoch  a window-violation interval may only *open*
//                        inside a declared fault epoch
//   exactly-one-primary  outside fault epochs (i.e. once failover has
//                        settled), exactly one live replica claims the
//                        primary role — zero means failover never
//                        happened, two means split brain
//   monotone-versions    object versions at every replica never decrease
//   cross-epoch-apply    no replica ever applies an update minted under an
//                        older epoch than one it has already accepted —
//                        epoch fencing's core guarantee.  Unconditional:
//                        not even a declared fault epoch excuses it.
//   durable-recovery     no client-acked update may be lost across a
//                        crash-restart: every version a replica held when
//                        it died must be present (or newer) in the image
//                        it recovers from WAL + checkpoint.  Unconditional
//                        like cross-epoch-apply — a declared crash epoch
//                        excuses staleness during the outage, never a
//                        durability hole.
//   no-silent-violation  graceful degradation's contract: when overload
//                        (not message loss or a crash) pushes an object out
//                        of its window, the primary must have renegotiated
//                        — the object is currently downgraded, or a QoS
//                        notice preceded the violation.  Judged whenever no
//                        crash/loss epoch is open (overload epochs do NOT
//                        excuse it: they starve messages rather than break
//                        them, and shedding + renegotiation exist precisely
//                        to keep the resulting violations announced).
//
// The monitor is passive: it draws no randomness and only reads state, so
// attaching it cannot change what the simulation does (trace records it
// emits on violation are themselves deterministic).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "chaos/schedule.hpp"
#include "core/service.hpp"

namespace rtpb::chaos {

struct OracleViolation {
  TimePoint at{};
  std::string oracle;  ///< which invariant broke, e.g. "staleness-window"
  std::string detail;
};

class OracleMonitor {
 public:
  /// `admitted` are the object ids that passed admission control — only
  /// those carry guarantees.  `epochs` come from declared_epochs().
  OracleMonitor(core::RtpbService& service, std::vector<core::ObjectId> admitted,
                std::vector<FaultEpoch> epochs);

  OracleMonitor(const OracleMonitor&) = delete;
  OracleMonitor& operator=(const OracleMonitor&) = delete;

  /// Begin sampling every `check_period` of virtual time.
  void start(Duration check_period = millis(10));

  /// Declare a fault epoch mid-run.  The explorer calls this when a fault
  /// candidate it chose actually fires — unlike chaos runs, the set of
  /// faults is not known before the trajectory executes.
  void declare_epoch(const FaultEpoch& epoch) { epochs_.push_back(epoch); }

  [[nodiscard]] const std::vector<OracleViolation>& violations() const {
    return violations_;
  }
  /// Total violations observed (violations() is capped; this is not).
  [[nodiscard]] std::uint64_t violation_count() const { return violation_count_; }
  [[nodiscard]] std::uint64_t checks() const { return checks_; }
  [[nodiscard]] bool ok() const { return violation_count_ == 0; }

  [[nodiscard]] bool in_fault_epoch(TimePoint t) const;
  /// True when an epoch caused by message-breaking faults (loss, crash,
  /// partition, …) is open at `t`.  Overload epochs are excluded: they are
  /// the no-silent-violation oracle's jurisdiction, not an excuse.
  [[nodiscard]] bool in_disruptive_epoch(TimePoint t) const;

 private:
  static constexpr std::size_t kMaxStored = 64;
  /// Unannounced violating samples an object may accumulate before the
  /// no-silent-violation oracle reports.  Cumulative, not consecutive:
  /// overload violations flap with every applied update (open a few ms,
  /// close, reopen), and a run of short silent excursions is exactly as
  /// silent as one long one.  The budget gives the 10 ms QoS tick a few
  /// rounds to catch a between-samples window crossing; a notice resets it.
  static constexpr std::uint32_t kSilentSampleBudget = 5;
  /// How recent a downgrade/restore notice counts as "preceding" a
  /// violation once the object is no longer actively downgraded.
  static constexpr Duration kNoticeGrace = millis(500);

  void check();
  /// Record a violation.  `span` (when not kNoSpan and telemetry is on)
  /// names the guilty update: the newest span of the object that broke the
  /// invariant, so traces show which update's journey went wrong.
  void report(TimePoint now, const char* oracle, std::string detail,
              telemetry::SpanId span = telemetry::kNoSpan);

  core::RtpbService& service_;
  std::vector<core::ObjectId> admitted_;
  std::vector<FaultEpoch> epochs_;
  std::unique_ptr<sim::PeriodicTimer> timer_;

  std::vector<OracleViolation> violations_;
  std::uint64_t violation_count_ = 0;
  std::uint64_t checks_ = 0;

  /// (replica index, object) → last seen version, for monotonicity.
  std::map<std::pair<std::size_t, core::ObjectId>, std::uint64_t> last_version_;
  /// Objects already reported stale (one report per excursion, not per sample).
  std::map<core::ObjectId, bool> stale_reported_;
  /// Unannounced violating samples accumulated per object
  /// (no-silent-violation pending state; reset by a QoS notice).
  std::map<core::ObjectId, std::uint32_t> silent_samples_;
  std::map<core::ObjectId, bool> silent_reported_;
  /// Last sampled violation state per object (edge detection).
  std::map<core::ObjectId, bool> was_violating_;
  bool primary_count_reported_ = false;
  /// Last seen sum of cross_epoch_applies() over replicas (edge detection).
  std::uint64_t last_cross_epoch_applies_ = 0;
  /// Last seen sum of recovery_lost_updates() over replicas (edge detection).
  std::uint64_t last_recovery_lost_ = 0;
};

}  // namespace rtpb::chaos
