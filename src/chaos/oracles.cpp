#include "chaos/oracles.hpp"

#include <utility>

namespace rtpb::chaos {

OracleMonitor::OracleMonitor(core::RtpbService& service,
                             std::vector<core::ObjectId> admitted,
                             std::vector<FaultEpoch> epochs)
    : service_(service), admitted_(std::move(admitted)), epochs_(std::move(epochs)) {}

void OracleMonitor::start(Duration check_period) {
  RTPB_EXPECTS(timer_ == nullptr);
  // Tagged as an observer: the monitor only reads state, so the explorer
  // never branches on its order against same-instant protocol events.
  timer_ = std::make_unique<sim::PeriodicTimer>(service_.simulator(), check_period,
                                                [this] { check(); },
                                                sim::EventTag{sim::kTagObserver, 0, 0});
  timer_->start();
}

bool OracleMonitor::in_fault_epoch(TimePoint t) const {
  for (const FaultEpoch& e : epochs_) {
    if (t >= e.from && t <= e.until) return true;
  }
  return false;
}

namespace {
bool is_overload_kind(FaultKind k) {
  return k == FaultKind::kCpuSpike || k == FaultKind::kThrottleBandwidth ||
         k == FaultKind::kInflateLatency;
}
}  // namespace

bool OracleMonitor::in_disruptive_epoch(TimePoint t) const {
  for (const FaultEpoch& e : epochs_) {
    if (t >= e.from && t <= e.until && !is_overload_kind(e.cause)) return true;
  }
  return false;
}

void OracleMonitor::report(TimePoint now, const char* oracle, std::string detail,
                           telemetry::SpanId span) {
  ++violation_count_;
  if (violations_.size() < kMaxStored) {
    violations_.push_back({now, oracle, detail});
  }
  auto& sim = service_.simulator();
  if (sim.telemetry().enabled()) {
    sim.telemetry().registry().counter(std::string("chaos.violations.") + oracle).add();
    sim.telemetry().mark_violation(span, oracle, detail);
  }
  // Flight-record the violation (with the guilty span) and trip the
  // post-mortem dump: the recorder's last-N events ending in this record
  // are exactly the context an operator wants first.
  telemetry::FlightRecorder& fr = sim.telemetry().flight_recorder();
  if (fr.enabled()) {
    telemetry::FlightRecord rec;
    rec.at = now;
    rec.span = span == telemetry::kNoSpan ? 0 : span;
    rec.kind = telemetry::FlightKind::kViolation;
    rec.label = oracle;
    fr.record(rec);
    fr.trigger_dump(std::string("oracle:") + oracle, now);
  }
  if (sim.trace().enabled()) {
    sim.trace().record(now, sim::TraceCategory::kUser,
                       std::string("oracle-violation:") + oracle, std::move(detail));
  }
}

void OracleMonitor::check() {
  ++checks_;
  const TimePoint now = service_.simulator().now();
  const bool in_epoch = in_fault_epoch(now);

  // Re-evaluate window violations at the sampling instant, not just at the
  // last write/apply.
  service_.metrics().poll(now);

  telemetry::Hub& hub = service_.simulator().telemetry();
  if (hub.flight_recorder().enabled()) {
    telemetry::FlightRecord rec;
    rec.at = now;
    rec.arg = static_cast<std::int64_t>(violation_count_);
    rec.kind = telemetry::FlightKind::kOracleCheck;
    hub.flight_recorder().record(rec);
  }
  // Feed the SLO monitor at the sampling instant too: the apply path only
  // observes staleness when an update arrives, so a *lost* update's growing
  // staleness would otherwise never be sampled.
  if (hub.slo().enabled()) {
    for (const core::ObjectId id : admitted_) {
      hub.slo().observe(id, now, service_.metrics().current_distance(id),
                        service_.metrics().window_of(id));
    }
  }

  // exactly-one-primary: outside epochs the cluster must have settled on a
  // single live primary.  Reported once per excursion.
  const std::size_t primaries = service_.primaries_alive();
  if (!in_epoch && primaries != 1) {
    if (!primary_count_reported_) {
      primary_count_reported_ = true;
      report(now, "exactly-one-primary",
             std::to_string(primaries) + " live primaries (want exactly 1)");
    }
  } else if (primaries == 1) {
    primary_count_reported_ = false;
  }

  const bool primary_up = primaries >= 1;

  for (const core::ObjectId id : admitted_) {
    const bool violating = service_.metrics().in_violation(id);
    const bool was = was_violating_[id];
    was_violating_[id] = violating;

    // The update whose journey is implicated: the newest span minted for
    // this object at the primary (the write the backup has not applied).
    const telemetry::SpanId guilty = service_.simulator().telemetry().latest_span(id);

    // inconsistency-epoch: an interval may only OPEN inside an epoch.
    if (violating && !was && !in_epoch) {
      report(now, "inconsistency-epoch",
             "object " + std::to_string(id) +
                 " opened a violation interval outside any declared fault epoch",
             guilty);
    }

    // staleness-window: with a primary up and no epoch open, the object
    // must be inside its window.  One report per excursion.
    if (violating && primary_up && !in_epoch) {
      if (!stale_reported_[id]) {
        stale_reported_[id] = true;
        report(now, "staleness-window",
               "object " + std::to_string(id) + " out of window (max distance " +
                   std::to_string(service_.metrics().max_distance(id).millis()) + " ms)",
               guilty);
      }
    } else if (!violating) {
      stale_reported_[id] = false;
    }

    // no-silent-violation: overload never excuses an *unannounced* window
    // violation.  While no message-breaking epoch is open, a violating
    // object must either be actively downgraded or have received a QoS
    // notice recently.  Silent samples accumulate — violations under
    // overload flap with every applied update, and many short silent
    // excursions are as damning as one long one — until a notice resets
    // the budget or it runs out and the oracle reports.
    if (violating && primary_up && !in_disruptive_epoch(now)) {
      core::ReplicaServer& primary = service_.acting_primary();
      const TimePoint notice = primary.qos_last_notice_at(id);
      const bool announced =
          primary.qos_downgrade_active(id) ||
          (notice > TimePoint::zero() && now - notice <= kNoticeGrace);
      if (announced) {
        silent_samples_[id] = 0;
      } else if (++silent_samples_[id] >= kSilentSampleBudget && !silent_reported_[id]) {
        silent_reported_[id] = true;
        report(now, "no-silent-violation",
               "object " + std::to_string(id) +
                   " violated its window with no downgrade notice (distance " +
                   std::to_string(service_.metrics().max_distance(id).millis()) + " ms)",
               guilty);
      }
    }
  }

  // monotone-versions: no replica may ever move an object backwards.
  std::size_t replica_idx = 0;
  service_.for_each_replica([&](const core::ReplicaServer& replica) {
    const std::size_t idx = replica_idx++;
    for (const core::ObjectId id : admitted_) {
      const auto state = replica.read(id);
      if (!state) continue;
      auto [it, inserted] = last_version_.try_emplace({idx, id}, state->version);
      if (!inserted) {
        if (state->version < it->second) {
          report(now, "monotone-versions",
                 "replica " + std::to_string(idx) + " object " + std::to_string(id) +
                     " went from version " + std::to_string(it->second) + " to " +
                     std::to_string(state->version));
        }
        it->second = state->version;
      }
    }
  });

  // cross-epoch-apply: epoch fencing's core guarantee, checked even inside
  // declared fault epochs — a fault may delay convergence but never
  // licenses applying a deposed primary's updates.
  std::uint64_t cross = 0;
  service_.for_each_replica(
      [&cross](const core::ReplicaServer& r) { cross += r.cross_epoch_applies(); });
  if (cross > last_cross_epoch_applies_) {
    report(now, "cross-epoch-apply",
           std::to_string(cross - last_cross_epoch_applies_) +
               " update(s) applied from a deposed epoch");
    last_cross_epoch_applies_ = cross;
  }

  // durable-recovery: checked unconditionally, like cross-epoch-apply.
  // Each replica diffs its recovered image against the versions it held
  // (and had acked) at the instant it died; any shortfall is a durability
  // hole no declared epoch excuses.
  std::uint64_t lost = 0;
  service_.for_each_replica(
      [&lost](const core::ReplicaServer& r) { lost += r.recovery_lost_updates(); });
  if (lost > last_recovery_lost_) {
    report(now, "durable-recovery",
           std::to_string(lost - last_recovery_lost_) +
               " client-acked update(s) lost across crash recovery");
    last_recovery_lost_ = lost;
  }
}

}  // namespace rtpb::chaos
