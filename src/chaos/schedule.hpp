// Seeded random fault schedules for the deterministic chaos harness.
//
// A ChaosSchedule is a timeline of typed fault events (loss storms, link
// degradation, duplication/reorder/burst-loss/corruption bursts, crashes,
// standby recruitment) generated from a single seed.  Every random choice
// is quantised (1 ms times, 0.01 probabilities) so that rendering the
// schedule as source code reproduces it exactly, and each fault family
// draws from its own derive_stream_seed() sub-stream, so toggling one
// family off cannot shift what another family generates.
//
// The schedule also *declares* its fault epochs: the intervals during
// which the temporal-consistency oracles must tolerate window violations.
// Everything outside a declared epoch is fair game for the oracles — that
// asymmetry is what turns a random soak into a checked experiment.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/faults.hpp"
#include "core/types.hpp"
#include "net/network.hpp"
#include "util/time.hpp"

namespace rtpb::chaos {

enum class FaultKind : std::uint8_t {
  kLossStorm,         ///< §5 update-stream loss at the primary
  kLinkDegradation,   ///< Bernoulli loss on the genuine link (all traffic)
  kDuplicationBurst,  ///< frames delivered twice
  kReorderBurst,      ///< frames exempted from FIFO
  kBurstLoss,         ///< correlated frame loss
  kCorruptionBurst,   ///< single-bit frame corruption
  kCrashPrimary,
  kCrashBackup,
  kAddStandby,
  kPartitionPrimary,  ///< isolate primary from its successor (split brain)
  kCpuSpike,           ///< steal a CPU fraction on the acting primary
  kThrottleBandwidth,  ///< shrink link bandwidth to a fraction (queueing)
  kInflateLatency,     ///< add base propagation delay (RTT inflation)
  kShardLossStorm,     ///< update loss confined to one shard's objects
  kCrashRestartPrimary,  ///< crash, then power up from durable state
  kCrashRestartBackup,
};

[[nodiscard]] const char* fault_kind_name(FaultKind k);

struct ChaosEvent {
  FaultKind kind{};
  TimePoint at{};                  ///< start (the instant, for crash/standby)
  TimePoint until{};               ///< end of interval faults; == at otherwise
  double probability = 0.0;        ///< loss/dup/…; also cpu/bandwidth fraction
  Duration extra{};                ///< reorder extra delay / latency inflation
  std::uint32_t burst_length = 0;  ///< burst-loss run length
  std::uint32_t shard = 0;         ///< target shard (kShardLossStorm only)
};

/// An interval during which oracles must tolerate inconsistency (the
/// underlying fault interval widened by the settle/failover grace).
struct FaultEpoch {
  TimePoint from{};
  TimePoint until{};
  FaultKind cause{};
};

struct ChaosOptions {
  Duration duration = seconds(20);  ///< virtual run length
  /// Grace appended after a network fault epoch before oracles re-arm
  /// (lost updates are healed by the next transmission or watchdog nack).
  Duration settle = seconds(1);
  /// Grace after a crash (and after standby recruitment) covering failure
  /// detection, promotion, state transfer and catch-up.  Independent of
  /// the service config on purpose: a sabotaged failover (the harness's
  /// canary) must NOT stretch the declared epoch.
  Duration failover_grace = seconds(2);
  double intensity = 1.0;  ///< scales how many fault events are generated

  bool enable_loss_storms = true;   ///< update-stream loss (detector-safe)
  bool enable_link_faults = true;   ///< degradation/dup/reorder/burst/corrupt
  bool enable_crashes = true;       ///< crash + failover + recruitment
  /// Overload family (off by default): cpu_spike / throttle_bandwidth /
  /// inflate_latency.  These do not break messages, they starve them —
  /// the graceful-degradation machinery (shedding, QoS renegotiation,
  /// adaptive timeouts) is what keeps the resulting violations announced.
  bool enable_overload = false;
  double crash_probability = 0.6;   ///< chance a run includes a crash
  double crash_backup_bias = 0.3;   ///< of crashes, fraction hitting the backup

  /// Partition the primary from its successor instead of crashing anyone
  /// (replaces the crash family: the two scenarios contend for the same
  /// failover machinery and would double-promote).  The old primary keeps
  /// running — split brain — which epoch fencing must resolve, so the
  /// scenario needs `backups >= 2`: the surviving backup is the deposed
  /// primary's only path to learning of the new epoch.  Ignored when
  /// backups < 2 or the run is too short for a failover arc.
  bool enable_partition = false;

  /// Crash–restart family (off by default): one crash of a durable replica
  /// followed by a power-up from its WAL + checkpoint and an incremental
  /// rejoin.  Turning it on makes run_seed build the service with durable
  /// replicas — WAL appends are synchronous and draw no randomness, so a
  /// seed whose schedule happens to contain no crash-restart event keeps
  /// its digest.  Replaces the plain crash family (same failover
  /// machinery), like enable_partition.
  bool enable_crash_restart = false;
  /// Sabotage knob for the crash-restart arc: shear this many bytes off
  /// the downed replica's WAL before it restarts (0 = off).  A torn
  /// durable suffix forges exactly the bug the durable-recovery oracle
  /// exists to catch — the harness canary asserts it fires.
  std::size_t torn_tail_bytes = 0;

  std::size_t objects = 4;  ///< workload size offered to admission

  /// Shard the workload: objects are placed by the ShardDirectory hash and
  /// the generator adds shard-scoped loss storms (kShardLossStorm) that
  /// hit only one shard's update streams — per-object loss overrides, so a
  /// fault in one shard cannot perturb another shard's traffic.  At the
  /// default of 1 the stream is never drawn from and no overrides are
  /// installed: digests are byte-identical to a build without sharding
  /// (the shard digest-purity regression pins this).
  std::size_t shards = 1;

  /// Number of backups in the replication chain (1 = the paper's classic
  /// primary/backup pair).  Backup 0 is the designated successor.
  std::size_t backups = 1;

  /// Service configuration for chaos runs.  Defaults are hardened for an
  /// adversarial network: variance-aware admission (Lemma 2) so CPU phase
  /// variance cannot cause out-of-model violations, and a patient failure
  /// detector (12 misses at 50 ms pings ≈ 600 ms detection) so declared
  /// link-fault probabilities cannot plausibly starve it into a false —
  /// split-brain — failover.
  core::ServiceConfig config = hardened_config();
  net::LinkParams link = default_link();

  /// Collect causal spans / metrics during the run (also enables the
  /// temporal-slack SLO monitor, exported as core.slo.*).  Purely
  /// observational: digests are byte-identical with it on or off.
  bool telemetry = false;
  /// When non-empty (and telemetry is on), run_seed writes a Chrome
  /// trace-event JSON / JSONL event stream for the seed there.
  std::string trace_json_path;
  std::string trace_jsonl_path;
  /// Enable the flight recorder (implied by a non-empty postmortem_path).
  /// Pure observer like telemetry: digests are byte-identical either way.
  bool flight_recorder = false;
  /// Post-mortem artifact path.  The first oracle violation or crash fault
  /// dumps the recorder's last-N events there; if the run ends untriggered
  /// the full ring is dumped with reason "end-of-run".
  std::string postmortem_path;
  /// When non-empty, a HealthFeed emits per-replica JSONL health snapshots
  /// there every health_period (rendered by tools/rtpb_top).
  std::string health_jsonl_path;
  Duration health_period = millis(100);
  /// When non-empty (and telemetry is on), write the final registry
  /// snapshot JSON there (the --metrics-out flag).
  std::string metrics_json_path;

  [[nodiscard]] static core::ServiceConfig hardened_config();
  [[nodiscard]] static net::LinkParams default_link();
};

struct ChaosSchedule {
  std::uint64_t seed = 0;          ///< the chaos seed it was generated from
  std::uint64_t service_seed = 0;  ///< derived seed for ServiceParams
  std::vector<ChaosEvent> events;  ///< sorted by `at`
};

/// Sub-stream numbers of the chaos seed (derive_stream_seed streams).
/// Fixed constants: renumbering breaks seed reproducibility across
/// versions, so append only.
enum ChaosStream : std::uint64_t {
  kStreamService = 1,   ///< ServiceParams::seed for the simulation itself
  kStreamWorkload = 2,  ///< object specs and inter-object constraints
  kStreamLoss = 3,      ///< update-stream loss storms
  kStreamLink = 4,      ///< link-level fault bursts
  kStreamCrash = 5,      ///< crash / recruitment scenario
  kStreamPartition = 6,  ///< split-brain partition scenario
  kStreamOverload = 7,   ///< cpu/bandwidth/latency overload bursts
  kStreamShard = 8,      ///< shard-scoped loss storms (shards > 1 only)
  kStreamParallel = 9,   ///< per-shard chaos seeds of the parallel engine
  kStreamCrashRestart = 10,  ///< crash–restart scenario (durable replicas)
};

/// Generate the fault schedule for `seed`.  Pure function of (seed, opts).
[[nodiscard]] ChaosSchedule generate_schedule(std::uint64_t seed, const ChaosOptions& opts);

/// Translate the schedule into FaultPlan calls (does not arm()).
void apply(const ChaosSchedule& schedule, core::FaultPlan& plan);

/// The intervals during which oracles must tolerate violations.
[[nodiscard]] std::vector<FaultEpoch> declared_epochs(const ChaosSchedule& schedule,
                                                      const ChaosOptions& opts);

/// Generate the chaos workload for `seed`: object specs (admission may
/// still reject some) plus occasional inter-object constraints.
struct Workload {
  std::vector<core::ObjectSpec> objects;
  std::vector<core::InterObjectConstraint> constraints;
};
[[nodiscard]] Workload generate_workload(std::uint64_t seed, const ChaosOptions& opts);

/// Render the schedule as a ready-to-paste C++ FaultPlan reproducer.
[[nodiscard]] std::string render_reproducer(const ChaosSchedule& schedule,
                                            const ChaosOptions& opts);

}  // namespace rtpb::chaos
